file(REMOVE_RECURSE
  "CMakeFiles/openmp_sema_test.dir/openmp_sema_test.cpp.o"
  "CMakeFiles/openmp_sema_test.dir/openmp_sema_test.cpp.o.d"
  "openmp_sema_test"
  "openmp_sema_test.pdb"
  "openmp_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
