# Empty compiler generated dependencies file for openmp_sema_test.
# This may be replaced when dependencies are built.
