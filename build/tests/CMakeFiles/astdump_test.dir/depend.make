# Empty dependencies file for astdump_test.
# This may be replaced when dependencies are built.
