file(REMOVE_RECURSE
  "CMakeFiles/astdump_test.dir/astdump_test.cpp.o"
  "CMakeFiles/astdump_test.dir/astdump_test.cpp.o.d"
  "astdump_test"
  "astdump_test.pdb"
  "astdump_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astdump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
