# Empty dependencies file for canonical_loop_test.
# This may be replaced when dependencies are built.
