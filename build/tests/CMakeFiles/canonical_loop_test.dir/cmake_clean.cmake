file(REMOVE_RECURSE
  "CMakeFiles/canonical_loop_test.dir/canonical_loop_test.cpp.o"
  "CMakeFiles/canonical_loop_test.dir/canonical_loop_test.cpp.o.d"
  "canonical_loop_test"
  "canonical_loop_test.pdb"
  "canonical_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canonical_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
