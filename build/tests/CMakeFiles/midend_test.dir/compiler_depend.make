# Empty compiler generated dependencies file for midend_test.
# This may be replaced when dependencies are built.
