file(REMOVE_RECURSE
  "CMakeFiles/midend_test.dir/midend_test.cpp.o"
  "CMakeFiles/midend_test.dir/midend_test.cpp.o.d"
  "midend_test"
  "midend_test.pdb"
  "midend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
