file(REMOVE_RECURSE
  "CMakeFiles/ompirbuilder_test.dir/ompirbuilder_test.cpp.o"
  "CMakeFiles/ompirbuilder_test.dir/ompirbuilder_test.cpp.o.d"
  "ompirbuilder_test"
  "ompirbuilder_test.pdb"
  "ompirbuilder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompirbuilder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
