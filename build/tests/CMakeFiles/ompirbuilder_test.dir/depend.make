# Empty dependencies file for ompirbuilder_test.
# This may be replaced when dependencies are built.
