# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/preprocessor_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/canonical_loop_test[1]_include.cmake")
include("/root/repo/build/tests/openmp_sema_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/ompirbuilder_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/midend_test[1]_include.cmake")
include("/root/repo/build/tests/astdump_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/exec_sweep_test[1]_include.cmake")
