# Empty dependencies file for mcc_midend.
# This may be replaced when dependencies are built.
