file(REMOVE_RECURSE
  "CMakeFiles/mcc_midend.dir/Cloning.cpp.o"
  "CMakeFiles/mcc_midend.dir/Cloning.cpp.o.d"
  "CMakeFiles/mcc_midend.dir/LoopUnroll.cpp.o"
  "CMakeFiles/mcc_midend.dir/LoopUnroll.cpp.o.d"
  "CMakeFiles/mcc_midend.dir/Passes.cpp.o"
  "CMakeFiles/mcc_midend.dir/Passes.cpp.o.d"
  "libmcc_midend.a"
  "libmcc_midend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_midend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
