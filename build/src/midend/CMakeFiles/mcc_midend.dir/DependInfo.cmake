
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/midend/Cloning.cpp" "src/midend/CMakeFiles/mcc_midend.dir/Cloning.cpp.o" "gcc" "src/midend/CMakeFiles/mcc_midend.dir/Cloning.cpp.o.d"
  "/root/repo/src/midend/LoopUnroll.cpp" "src/midend/CMakeFiles/mcc_midend.dir/LoopUnroll.cpp.o" "gcc" "src/midend/CMakeFiles/mcc_midend.dir/LoopUnroll.cpp.o.d"
  "/root/repo/src/midend/Passes.cpp" "src/midend/CMakeFiles/mcc_midend.dir/Passes.cpp.o" "gcc" "src/midend/CMakeFiles/mcc_midend.dir/Passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mcc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
