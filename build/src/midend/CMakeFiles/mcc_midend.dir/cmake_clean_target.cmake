file(REMOVE_RECURSE
  "libmcc_midend.a"
)
