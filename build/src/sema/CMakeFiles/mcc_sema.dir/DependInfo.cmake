
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sema/Sema.cpp" "src/sema/CMakeFiles/mcc_sema.dir/Sema.cpp.o" "gcc" "src/sema/CMakeFiles/mcc_sema.dir/Sema.cpp.o.d"
  "/root/repo/src/sema/SemaOpenMP.cpp" "src/sema/CMakeFiles/mcc_sema.dir/SemaOpenMP.cpp.o" "gcc" "src/sema/CMakeFiles/mcc_sema.dir/SemaOpenMP.cpp.o.d"
  "/root/repo/src/sema/SemaOpenMPTransform.cpp" "src/sema/CMakeFiles/mcc_sema.dir/SemaOpenMPTransform.cpp.o" "gcc" "src/sema/CMakeFiles/mcc_sema.dir/SemaOpenMPTransform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/mcc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/mcc_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
