file(REMOVE_RECURSE
  "CMakeFiles/mcc_sema.dir/Sema.cpp.o"
  "CMakeFiles/mcc_sema.dir/Sema.cpp.o.d"
  "CMakeFiles/mcc_sema.dir/SemaOpenMP.cpp.o"
  "CMakeFiles/mcc_sema.dir/SemaOpenMP.cpp.o.d"
  "CMakeFiles/mcc_sema.dir/SemaOpenMPTransform.cpp.o"
  "CMakeFiles/mcc_sema.dir/SemaOpenMPTransform.cpp.o.d"
  "libmcc_sema.a"
  "libmcc_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
