# Empty dependencies file for mcc_sema.
# This may be replaced when dependencies are built.
