file(REMOVE_RECURSE
  "libmcc_sema.a"
)
