file(REMOVE_RECURSE
  "libmcc_ast.a"
)
