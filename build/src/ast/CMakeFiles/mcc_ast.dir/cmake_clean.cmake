file(REMOVE_RECURSE
  "CMakeFiles/mcc_ast.dir/ASTContext.cpp.o"
  "CMakeFiles/mcc_ast.dir/ASTContext.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/ASTDumper.cpp.o"
  "CMakeFiles/mcc_ast.dir/ASTDumper.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/ExprConstant.cpp.o"
  "CMakeFiles/mcc_ast.dir/ExprConstant.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/OpenMPKinds.cpp.o"
  "CMakeFiles/mcc_ast.dir/OpenMPKinds.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/Stmt.cpp.o"
  "CMakeFiles/mcc_ast.dir/Stmt.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/TreeTransform.cpp.o"
  "CMakeFiles/mcc_ast.dir/TreeTransform.cpp.o.d"
  "CMakeFiles/mcc_ast.dir/Type.cpp.o"
  "CMakeFiles/mcc_ast.dir/Type.cpp.o.d"
  "libmcc_ast.a"
  "libmcc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
