# Empty compiler generated dependencies file for mcc_ast.
# This may be replaced when dependencies are built.
