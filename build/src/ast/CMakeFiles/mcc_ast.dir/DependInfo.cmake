
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ASTContext.cpp" "src/ast/CMakeFiles/mcc_ast.dir/ASTContext.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/ASTContext.cpp.o.d"
  "/root/repo/src/ast/ASTDumper.cpp" "src/ast/CMakeFiles/mcc_ast.dir/ASTDumper.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/ASTDumper.cpp.o.d"
  "/root/repo/src/ast/ExprConstant.cpp" "src/ast/CMakeFiles/mcc_ast.dir/ExprConstant.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/ExprConstant.cpp.o.d"
  "/root/repo/src/ast/OpenMPKinds.cpp" "src/ast/CMakeFiles/mcc_ast.dir/OpenMPKinds.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/OpenMPKinds.cpp.o.d"
  "/root/repo/src/ast/Stmt.cpp" "src/ast/CMakeFiles/mcc_ast.dir/Stmt.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/Stmt.cpp.o.d"
  "/root/repo/src/ast/TreeTransform.cpp" "src/ast/CMakeFiles/mcc_ast.dir/TreeTransform.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/TreeTransform.cpp.o.d"
  "/root/repo/src/ast/Type.cpp" "src/ast/CMakeFiles/mcc_ast.dir/Type.cpp.o" "gcc" "src/ast/CMakeFiles/mcc_ast.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
