file(REMOVE_RECURSE
  "libmcc_ir.a"
)
