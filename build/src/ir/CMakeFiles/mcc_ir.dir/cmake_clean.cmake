file(REMOVE_RECURSE
  "CMakeFiles/mcc_ir.dir/IR.cpp.o"
  "CMakeFiles/mcc_ir.dir/IR.cpp.o.d"
  "CMakeFiles/mcc_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/mcc_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/mcc_ir.dir/Verifier.cpp.o"
  "CMakeFiles/mcc_ir.dir/Verifier.cpp.o.d"
  "libmcc_ir.a"
  "libmcc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
