# Empty dependencies file for mcc_ir.
# This may be replaced when dependencies are built.
