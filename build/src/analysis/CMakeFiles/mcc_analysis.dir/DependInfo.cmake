
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AnalysisManager.cpp" "src/analysis/CMakeFiles/mcc_analysis.dir/AnalysisManager.cpp.o" "gcc" "src/analysis/CMakeFiles/mcc_analysis.dir/AnalysisManager.cpp.o.d"
  "/root/repo/src/analysis/CanonicalLoopCheck.cpp" "src/analysis/CMakeFiles/mcc_analysis.dir/CanonicalLoopCheck.cpp.o" "gcc" "src/analysis/CMakeFiles/mcc_analysis.dir/CanonicalLoopCheck.cpp.o.d"
  "/root/repo/src/analysis/OMPRaceLinter.cpp" "src/analysis/CMakeFiles/mcc_analysis.dir/OMPRaceLinter.cpp.o" "gcc" "src/analysis/CMakeFiles/mcc_analysis.dir/OMPRaceLinter.cpp.o.d"
  "/root/repo/src/analysis/TransformVerifier.cpp" "src/analysis/CMakeFiles/mcc_analysis.dir/TransformVerifier.cpp.o" "gcc" "src/analysis/CMakeFiles/mcc_analysis.dir/TransformVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/mcc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
