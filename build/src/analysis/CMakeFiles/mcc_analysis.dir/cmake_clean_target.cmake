file(REMOVE_RECURSE
  "libmcc_analysis.a"
)
