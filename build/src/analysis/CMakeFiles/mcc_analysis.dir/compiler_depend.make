# Empty compiler generated dependencies file for mcc_analysis.
# This may be replaced when dependencies are built.
