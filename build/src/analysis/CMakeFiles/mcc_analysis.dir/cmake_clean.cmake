file(REMOVE_RECURSE
  "CMakeFiles/mcc_analysis.dir/AnalysisManager.cpp.o"
  "CMakeFiles/mcc_analysis.dir/AnalysisManager.cpp.o.d"
  "CMakeFiles/mcc_analysis.dir/CanonicalLoopCheck.cpp.o"
  "CMakeFiles/mcc_analysis.dir/CanonicalLoopCheck.cpp.o.d"
  "CMakeFiles/mcc_analysis.dir/OMPRaceLinter.cpp.o"
  "CMakeFiles/mcc_analysis.dir/OMPRaceLinter.cpp.o.d"
  "CMakeFiles/mcc_analysis.dir/TransformVerifier.cpp.o"
  "CMakeFiles/mcc_analysis.dir/TransformVerifier.cpp.o.d"
  "libmcc_analysis.a"
  "libmcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
