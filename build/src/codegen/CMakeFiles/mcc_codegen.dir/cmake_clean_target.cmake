file(REMOVE_RECURSE
  "libmcc_codegen.a"
)
