# Empty compiler generated dependencies file for mcc_codegen.
# This may be replaced when dependencies are built.
