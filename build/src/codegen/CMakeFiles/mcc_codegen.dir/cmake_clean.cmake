file(REMOVE_RECURSE
  "CMakeFiles/mcc_codegen.dir/CGOpenMP.cpp.o"
  "CMakeFiles/mcc_codegen.dir/CGOpenMP.cpp.o.d"
  "CMakeFiles/mcc_codegen.dir/CodeGenFunction.cpp.o"
  "CMakeFiles/mcc_codegen.dir/CodeGenFunction.cpp.o.d"
  "CMakeFiles/mcc_codegen.dir/CodeGenModule.cpp.o"
  "CMakeFiles/mcc_codegen.dir/CodeGenModule.cpp.o.d"
  "libmcc_codegen.a"
  "libmcc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
