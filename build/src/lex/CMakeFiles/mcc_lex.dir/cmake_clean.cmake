file(REMOVE_RECURSE
  "CMakeFiles/mcc_lex.dir/Lexer.cpp.o"
  "CMakeFiles/mcc_lex.dir/Lexer.cpp.o.d"
  "CMakeFiles/mcc_lex.dir/Preprocessor.cpp.o"
  "CMakeFiles/mcc_lex.dir/Preprocessor.cpp.o.d"
  "libmcc_lex.a"
  "libmcc_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
