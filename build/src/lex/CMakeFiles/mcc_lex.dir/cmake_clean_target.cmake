file(REMOVE_RECURSE
  "libmcc_lex.a"
)
