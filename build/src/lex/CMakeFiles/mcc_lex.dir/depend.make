# Empty dependencies file for mcc_lex.
# This may be replaced when dependencies are built.
