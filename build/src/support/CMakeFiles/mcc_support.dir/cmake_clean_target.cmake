file(REMOVE_RECURSE
  "libmcc_support.a"
)
