file(REMOVE_RECURSE
  "CMakeFiles/mcc_support.dir/Diagnostic.cpp.o"
  "CMakeFiles/mcc_support.dir/Diagnostic.cpp.o.d"
  "CMakeFiles/mcc_support.dir/FileManager.cpp.o"
  "CMakeFiles/mcc_support.dir/FileManager.cpp.o.d"
  "CMakeFiles/mcc_support.dir/SourceManager.cpp.o"
  "CMakeFiles/mcc_support.dir/SourceManager.cpp.o.d"
  "libmcc_support.a"
  "libmcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
