# Empty compiler generated dependencies file for mcc_support.
# This may be replaced when dependencies are built.
