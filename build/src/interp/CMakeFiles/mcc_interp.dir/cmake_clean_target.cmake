file(REMOVE_RECURSE
  "libmcc_interp.a"
)
