# Empty compiler generated dependencies file for mcc_interp.
# This may be replaced when dependencies are built.
