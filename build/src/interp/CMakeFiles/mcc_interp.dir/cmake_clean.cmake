file(REMOVE_RECURSE
  "CMakeFiles/mcc_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/mcc_interp.dir/Interpreter.cpp.o.d"
  "libmcc_interp.a"
  "libmcc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
