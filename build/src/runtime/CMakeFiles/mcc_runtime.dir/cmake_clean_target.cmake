file(REMOVE_RECURSE
  "libmcc_runtime.a"
)
