# Empty compiler generated dependencies file for mcc_runtime.
# This may be replaced when dependencies are built.
