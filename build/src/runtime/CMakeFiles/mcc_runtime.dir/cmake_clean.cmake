file(REMOVE_RECURSE
  "CMakeFiles/mcc_runtime.dir/KMPRuntime.cpp.o"
  "CMakeFiles/mcc_runtime.dir/KMPRuntime.cpp.o.d"
  "libmcc_runtime.a"
  "libmcc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
