# Empty dependencies file for mcc_driver.
# This may be replaced when dependencies are built.
