# Empty compiler generated dependencies file for mcc_driver.
# This may be replaced when dependencies are built.
