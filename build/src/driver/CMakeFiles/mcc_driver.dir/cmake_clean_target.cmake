file(REMOVE_RECURSE
  "libmcc_driver.a"
)
