file(REMOVE_RECURSE
  "CMakeFiles/mcc_driver.dir/CompilerInstance.cpp.o"
  "CMakeFiles/mcc_driver.dir/CompilerInstance.cpp.o.d"
  "libmcc_driver.a"
  "libmcc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
