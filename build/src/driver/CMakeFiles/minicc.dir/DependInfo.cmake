
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/minicc.cpp" "src/driver/CMakeFiles/minicc.dir/minicc.cpp.o" "gcc" "src/driver/CMakeFiles/minicc.dir/minicc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mcc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mcc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/mcc_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/mcc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/mcc_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/mcc_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/irbuilder/CMakeFiles/mcc_irbuilder.dir/DependInfo.cmake"
  "/root/repo/build/src/midend/CMakeFiles/mcc_midend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/mcc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mcc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mcc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
