# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lex")
subdirs("ast")
subdirs("parse")
subdirs("sema")
subdirs("analysis")
subdirs("ir")
subdirs("irbuilder")
subdirs("runtime")
subdirs("interp")
subdirs("midend")
subdirs("codegen")
subdirs("driver")
