file(REMOVE_RECURSE
  "libmcc_parse.a"
)
