file(REMOVE_RECURSE
  "CMakeFiles/mcc_parse.dir/ParseOpenMP.cpp.o"
  "CMakeFiles/mcc_parse.dir/ParseOpenMP.cpp.o.d"
  "CMakeFiles/mcc_parse.dir/Parser.cpp.o"
  "CMakeFiles/mcc_parse.dir/Parser.cpp.o.d"
  "libmcc_parse.a"
  "libmcc_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
