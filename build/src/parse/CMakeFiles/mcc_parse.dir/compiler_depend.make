# Empty compiler generated dependencies file for mcc_parse.
# This may be replaced when dependencies are built.
