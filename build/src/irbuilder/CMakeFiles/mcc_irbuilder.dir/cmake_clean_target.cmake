file(REMOVE_RECURSE
  "libmcc_irbuilder.a"
)
