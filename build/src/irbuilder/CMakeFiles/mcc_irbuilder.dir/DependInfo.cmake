
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/irbuilder/IRBuilder.cpp" "src/irbuilder/CMakeFiles/mcc_irbuilder.dir/IRBuilder.cpp.o" "gcc" "src/irbuilder/CMakeFiles/mcc_irbuilder.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/irbuilder/OpenMPIRBuilder.cpp" "src/irbuilder/CMakeFiles/mcc_irbuilder.dir/OpenMPIRBuilder.cpp.o" "gcc" "src/irbuilder/CMakeFiles/mcc_irbuilder.dir/OpenMPIRBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mcc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
