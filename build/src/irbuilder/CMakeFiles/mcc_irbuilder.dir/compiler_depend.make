# Empty compiler generated dependencies file for mcc_irbuilder.
# This may be replaced when dependencies are built.
