file(REMOVE_RECURSE
  "CMakeFiles/mcc_irbuilder.dir/IRBuilder.cpp.o"
  "CMakeFiles/mcc_irbuilder.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/mcc_irbuilder.dir/OpenMPIRBuilder.cpp.o"
  "CMakeFiles/mcc_irbuilder.dir/OpenMPIRBuilder.cpp.o.d"
  "libmcc_irbuilder.a"
  "libmcc_irbuilder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcc_irbuilder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
