file(REMOVE_RECURSE
  "CMakeFiles/bench_tile.dir/bench_tile.cpp.o"
  "CMakeFiles/bench_tile.dir/bench_tile.cpp.o.d"
  "bench_tile"
  "bench_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
