# Empty dependencies file for bench_tile.
# This may be replaced when dependencies are built.
