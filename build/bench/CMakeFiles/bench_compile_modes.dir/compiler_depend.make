# Empty compiler generated dependencies file for bench_compile_modes.
# This may be replaced when dependencies are built.
