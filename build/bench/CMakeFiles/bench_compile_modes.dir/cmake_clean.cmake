file(REMOVE_RECURSE
  "CMakeFiles/bench_compile_modes.dir/bench_compile_modes.cpp.o"
  "CMakeFiles/bench_compile_modes.dir/bench_compile_modes.cpp.o.d"
  "bench_compile_modes"
  "bench_compile_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compile_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
