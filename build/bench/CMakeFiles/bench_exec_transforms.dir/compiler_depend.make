# Empty compiler generated dependencies file for bench_exec_transforms.
# This may be replaced when dependencies are built.
