file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_transforms.dir/bench_exec_transforms.cpp.o"
  "CMakeFiles/bench_exec_transforms.dir/bench_exec_transforms.cpp.o.d"
  "bench_exec_transforms"
  "bench_exec_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
