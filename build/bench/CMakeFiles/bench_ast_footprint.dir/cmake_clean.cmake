file(REMOVE_RECURSE
  "CMakeFiles/bench_ast_footprint.dir/bench_ast_footprint.cpp.o"
  "CMakeFiles/bench_ast_footprint.dir/bench_ast_footprint.cpp.o.d"
  "bench_ast_footprint"
  "bench_ast_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ast_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
