# Empty dependencies file for bench_ast_footprint.
# This may be replaced when dependencies are built.
