# Empty compiler generated dependencies file for bench_unroll_strategies.
# This may be replaced when dependencies are built.
