file(REMOVE_RECURSE
  "CMakeFiles/bench_unroll_strategies.dir/bench_unroll_strategies.cpp.o"
  "CMakeFiles/bench_unroll_strategies.dir/bench_unroll_strategies.cpp.o.d"
  "bench_unroll_strategies"
  "bench_unroll_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unroll_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
