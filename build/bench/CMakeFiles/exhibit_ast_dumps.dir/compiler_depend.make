# Empty compiler generated dependencies file for exhibit_ast_dumps.
# This may be replaced when dependencies are built.
