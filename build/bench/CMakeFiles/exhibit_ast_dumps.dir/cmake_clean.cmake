file(REMOVE_RECURSE
  "CMakeFiles/exhibit_ast_dumps.dir/exhibit_ast_dumps.cpp.o"
  "CMakeFiles/exhibit_ast_dumps.dir/exhibit_ast_dumps.cpp.o.d"
  "exhibit_ast_dumps"
  "exhibit_ast_dumps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhibit_ast_dumps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
