# Empty compiler generated dependencies file for bench_workshare.
# This may be replaced when dependencies are built.
