file(REMOVE_RECURSE
  "CMakeFiles/bench_workshare.dir/bench_workshare.cpp.o"
  "CMakeFiles/bench_workshare.dir/bench_workshare.cpp.o.d"
  "bench_workshare"
  "bench_workshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
