# Empty dependencies file for stencil_tile.
# This may be replaced when dependencies are built.
