file(REMOVE_RECURSE
  "CMakeFiles/stencil_tile.dir/stencil_tile.cpp.o"
  "CMakeFiles/stencil_tile.dir/stencil_tile.cpp.o.d"
  "stencil_tile"
  "stencil_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
