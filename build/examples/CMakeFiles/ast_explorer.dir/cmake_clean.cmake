file(REMOVE_RECURSE
  "CMakeFiles/ast_explorer.dir/ast_explorer.cpp.o"
  "CMakeFiles/ast_explorer.dir/ast_explorer.cpp.o.d"
  "ast_explorer"
  "ast_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
