# Empty compiler generated dependencies file for ast_explorer.
# This may be replaced when dependencies are built.
