# Empty dependencies file for unroll_composition.
# This may be replaced when dependencies are built.
