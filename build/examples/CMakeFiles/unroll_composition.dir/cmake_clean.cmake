file(REMOVE_RECURSE
  "CMakeFiles/unroll_composition.dir/unroll_composition.cpp.o"
  "CMakeFiles/unroll_composition.dir/unroll_composition.cpp.o.d"
  "unroll_composition"
  "unroll_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unroll_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
