//===--- astdump_test.cpp - AST dump fidelity (exhibits E3-E6) ------------===//
//
// Checks that our -ast-dump output reproduces the structure of the paper's
// listings: Listing 3 (parallel for + CapturedStmt), Listing 6 (stacked
// unroll), Listing 8 (the shadow transformed AST), and Listing 10
// (OMPCanonicalLoop).
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mcc;
using namespace mcc::test;

namespace {

bool containsInOrder(const std::string &Text,
                     std::initializer_list<const char *> Needles) {
  std::size_t Pos = 0;
  for (const char *N : Needles) {
    Pos = Text.find(N, Pos);
    if (Pos == std::string::npos) {
      ADD_FAILURE() << "missing (in order): " << N << "\nin:\n" << Text;
      return false;
    }
    Pos += std::strlen(N);
  }
  return true;
}

// The paper's Listing 3: "#pragma omp parallel for schedule(static)".
TEST(ASTDumpTest, ParallelForWithCapturedStmt) {
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp parallel for schedule(static)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  std::string Dump = dumpToString(F.findStmt<OMPParallelForDirective>("f"));

  EXPECT_TRUE(containsInOrder(
      Dump, {
                "OMPParallelForDirective",
                "OMPScheduleClause static",
                "CapturedStmt",
                "CapturedDecl nothrow",
                "ForStmt",
                "DeclStmt",
                "VarDecl", "i 'int' cinit",
                "IntegerLiteral 'int' 7",
                "CallExpr 'void'",
                "ImplicitParamDecl implicit .global_tid.",
                "ImplicitParamDecl implicit .bound_tid.",
                "ImplicitParamDecl implicit __context",
            }));
  // Shadow helper expressions are NOT in the default dump.
  EXPECT_EQ(Dump.find(".omp.iv"), std::string::npos);
  EXPECT_EQ(Dump.find(".capture_expr."), std::string::npos);
}

// The paper's Listing 6: stacked "unroll full" over "unroll partial(2)".
TEST(ASTDumpTest, StackedUnrollDirectives) {
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll full
      #pragma omp unroll partial(2)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Outer = F.findStmt<OMPUnrollDirective>("f");
  std::string Dump = dumpToString(Outer);

  EXPECT_TRUE(containsInOrder(Dump, {
                                        "OMPUnrollDirective",
                                        "OMPFullClause",
                                        "OMPUnrollDirective",
                                        "OMPPartialClause",
                                        "ConstantExpr 'int'",
                                        "value: Int 2",
                                        "IntegerLiteral 'int' 2",
                                        "ForStmt",
                                        "VarDecl", "i 'int' cinit",
                                        "IntegerLiteral 'int' 7",
                                        "CallExpr 'void'",
                                    }));
  // No CapturedStmt for loop transformations (Section 2.1) and no shadow
  // AST in the default dump.
  EXPECT_EQ(Dump.find("CapturedStmt"), std::string::npos);
  EXPECT_EQ(Dump.find("unrolled.iv"), std::string::npos);
}

// The paper's Listing 8: the transformed (shadow) AST of unroll partial(2).
TEST(ASTDumpTest, TransformedUnrollAST) {
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll->getTransformedStmt(), nullptr);
  std::string Dump = dumpToString(Unroll->getTransformedStmt());

  EXPECT_TRUE(containsInOrder(Dump, {
                                        "ForStmt",
                                        "unrolled.iv.i",
                                        "AttributedStmt",
                                        "LoopHintAttr Implicit loop "
                                        "UnrollCount Numeric",
                                        "IntegerLiteral 'int' 2",
                                        "ForStmt",
                                        "unroll_inner.iv.i",
                                    }));
  // The trip count folded to the constant 4 (i = 7, 10, 13, 16).
  EXPECT_NE(Dump.find("IntegerLiteral 'unsigned int' 4"),
            std::string::npos)
      << Dump;

  // -ast-dump-shadow reveals the transformed statement under the
  // directive.
  std::string ShadowDump = dumpToString(Unroll, /*ShowShadowAST=*/true);
  EXPECT_NE(ShadowDump.find("shadow: TransformedStmt"), std::string::npos);
  EXPECT_NE(ShadowDump.find("unrolled.iv.i"), std::string::npos);
}

// The tile analogue of Listing 8: the transformed AST of tile sizes(4, 2)
// is the 4-loop floor/tile spine with the user IVs rematerialized innermost.
TEST(ASTDumpTest, TransformedTileAST) {
  Frontend F(R"(
    void body(int x, int y);
    void f() {
      #pragma omp tile sizes(4, 2)
      for (int i = 0; i < 32; i += 1)
        for (int j = 0; j < 8; j += 1)
          body(i, j);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Tile = F.findStmt<OMPTileDirective>("f");
  ASSERT_NE(Tile->getTransformedStmt(), nullptr);
  std::string Dump = dumpToString(Tile->getTransformedStmt());

  EXPECT_TRUE(containsInOrder(Dump, {
                                        "ForStmt",
                                        ".floor.0.iv.i",
                                        "ForStmt",
                                        ".floor.1.iv.j",
                                        "ForStmt",
                                        ".tile.0.iv.i",
                                        "ForStmt",
                                        ".tile.1.iv.j",
                                        "DeclStmt",
                                        "i 'int' cinit",
                                        "j 'int' cinit",
                                        "CallExpr 'void'",
                                    }));

  // The shadow spine is hidden from the default dump of the directive but
  // revealed by -ast-dump-shadow.
  std::string Plain = dumpToString(Tile);
  EXPECT_EQ(Plain.find(".floor.0.iv"), std::string::npos);
  std::string ShadowDump = dumpToString(Tile, /*ShowShadowAST=*/true);
  EXPECT_NE(ShadowDump.find("shadow: TransformedStmt"), std::string::npos);
  EXPECT_NE(ShadowDump.find(".floor.0.iv.i"), std::string::npos);
  EXPECT_NE(ShadowDump.find(".tile.1.iv.j"), std::string::npos);
}

// The paper's Listing 10: OMPCanonicalLoop with its meta-functions.
TEST(ASTDumpTest, OMPCanonicalLoopStructure) {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )",
             LO);
  ASSERT_EQ(F.errors(), 0u);
  std::string Dump = dumpToString(F.findStmt<OMPUnrollDirective>("f"));

  EXPECT_TRUE(containsInOrder(Dump, {
                                        "OMPUnrollDirective",
                                        "OMPPartialClause",
                                        "OMPCanonicalLoop",
                                        "ForStmt",
                                        "CallExpr 'void'",
                                        "CapturedStmt", // distance function
                                        "CapturedStmt", // loop-var function
                                        "DeclRefExpr 'int' lvalue Var 'i'",
                                    }));
  // The distance function's Result parameter.
  EXPECT_NE(Dump.find("ImplicitParamDecl implicit Result"),
            std::string::npos);
  // The loop-var function has the logical iteration parameter.
  EXPECT_NE(Dump.find("ImplicitParamDecl implicit Logical"),
            std::string::npos);
}

TEST(ASTDumpTest, TreePrefixesWellFormed) {
  Frontend F("int main() { if (1 < 2) return 3; return 4; }");
  std::string Dump = dumpToString(F.getFunction("main")->getBody());
  // Lines use the clang connector glyphs.
  EXPECT_NE(Dump.find("|-"), std::string::npos);
  EXPECT_NE(Dump.find("`-"), std::string::npos);
  // No line starts with a stray space-only prefix before a connector gap.
  std::size_t Start = 0;
  int Lines = 0;
  while (Start < Dump.size()) {
    std::size_t End = Dump.find('\n', Start);
    if (End == std::string::npos)
      break;
    ++Lines;
    Start = End + 1;
  }
  EXPECT_GT(Lines, 5);
}

TEST(ASTDumpTest, ForStmtNullSlotsPrinted) {
  Frontend F("void f() { for (;;) { break; } }");
  std::string Dump = dumpToString(F.findStmt<ForStmt>("f"));
  // Clang prints <<<NULL>>> placeholders for missing init/cond/inc.
  unsigned Nulls = 0;
  std::size_t Pos = 0;
  while ((Pos = Dump.find("<<<NULL>>>", Pos)) != std::string::npos) {
    ++Nulls;
    Pos += 10;
  }
  EXPECT_EQ(Nulls, 3u);
}

TEST(ASTDumpTest, AddressesOptional) {
  Frontend F("int x = 1;");
  std::string NoAddr = dumpToString(F.TU);
  EXPECT_EQ(NoAddr.find("0x"), std::string::npos);

  std::string WithAddr;
  ASTDumper D(WithAddr);
  D.setShowAddresses(true);
  D.dumpDecl(F.TU);
  EXPECT_NE(WithAddr.find("0x"), std::string::npos);
}

TEST(ASTDumpTest, LoopDirectiveShadowHelpersHiddenButCountable) {
  // Section 1.2's footnote: shadow children are not enumerated by
  // children() and not dumped, but they exist (countShadowNodes sees
  // them).
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp for
      for (int i = 0; i < N; ++i)
        body(i);
    }
  )");
  auto *Dir = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(Dir, nullptr);
  EXPECT_GE(Dir->getLoopHelpers().countShadowNodes(), 20u);
  std::string Dump = dumpToString(Dir);
  EXPECT_EQ(Dump.find(".omp.iv"), std::string::npos);
  EXPECT_EQ(Dump.find(".omp.lb"), std::string::npos);
}

} // namespace
