//===--- codegen_test.cpp - Serial AST->IR->execution tests ---------------===//
#include "ExecutionTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

std::int64_t run(const std::string &Source) {
  Execution E(Source);
  return E.runMain();
}

TEST(CodeGenTest, ReturnConstant) {
  EXPECT_EQ(run("int main() { return 42; }"), 42);
}

TEST(CodeGenTest, Arithmetic) {
  EXPECT_EQ(run("int main() { return (2 + 3) * 4 - 6 / 2; }"), 17);
  EXPECT_EQ(run("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(run("int main() { return 1 << 6; }"), 64);
  EXPECT_EQ(run("int main() { return -64 >> 3; }"), -8);
  EXPECT_EQ(run("int main() { return (12 & 10) | (1 ^ 3); }"), 10);
}

TEST(CodeGenTest, UnsignedSemantics) {
  EXPECT_EQ(run("int main() { unsigned int x = 0u - 1u; "
                "return x / 1000000000u; }"),
            4);
  EXPECT_EQ(run("int main() { unsigned int x = 0u - 6u; "
                "return x >> 29; }"),
            7);
}

TEST(CodeGenTest, LocalsAndAssignment) {
  EXPECT_EQ(run("int main() { int a = 1; int b; b = a + 2; a += b; "
                "a *= 2; a -= 1; a /= 3; return a; }"),
            2); // a=1,b=3,a=4,a=8,a=7,a=2
}

TEST(CodeGenTest, IfElse) {
  EXPECT_EQ(run("int main() { int x = 5; if (x > 3) return 1; else "
                "return 2; }"),
            1);
  EXPECT_EQ(run("int main() { int x = 2; if (x > 3) return 1; return 2; }"),
            2);
}

TEST(CodeGenTest, Loops) {
  EXPECT_EQ(run("int main() { int s = 0; for (int i = 0; i < 10; ++i) "
                "s += i; return s; }"),
            45);
  EXPECT_EQ(run("int main() { int s = 0; int i = 0; while (i < 5) { s += "
                "i; ++i; } return s; }"),
            10);
  EXPECT_EQ(run("int main() { int s = 0; int i = 0; do { s += i; ++i; } "
                "while (i < 5); return s; }"),
            10);
}

TEST(CodeGenTest, NestedLoops) {
  EXPECT_EQ(run("int main() { int s = 0; for (int i = 0; i < 4; ++i) "
                "for (int j = 0; j < 4; ++j) s += i * j; return s; }"),
            36);
}

TEST(CodeGenTest, BreakAndContinue) {
  EXPECT_EQ(run("int main() { int s = 0; for (int i = 0; i < 100; ++i) { "
                "if (i == 5) break; s += i; } return s; }"),
            10);
  EXPECT_EQ(run("int main() { int s = 0; for (int i = 0; i < 10; ++i) { "
                "if (i % 2 == 0) continue; s += i; } return s; }"),
            25);
}

TEST(CodeGenTest, FunctionsAndRecursion) {
  EXPECT_EQ(run("int fact(int n) { if (n < 2) return 1; return n * "
                "fact(n - 1); } int main() { return fact(6); }"),
            720);
}

TEST(CodeGenTest, GlobalVariables) {
  EXPECT_EQ(run("int g = 10;\nvoid bump() { g += 5; }\n"
                "int main() { bump(); bump(); return g; }"),
            20);
}

TEST(CodeGenTest, GlobalArrays) {
  EXPECT_EQ(run("int arr[8];\nint main() { for (int i = 0; i < 8; ++i) "
                "arr[i] = i * i; return arr[5] + arr[7]; }"),
            74);
}

TEST(CodeGenTest, LocalArrays) {
  EXPECT_EQ(run("int main() { int a[4][4]; for (int i = 0; i < 4; ++i) "
                "for (int j = 0; j < 4; ++j) a[i][j] = i + j; "
                "return a[3][2]; }"),
            5);
}

TEST(CodeGenTest, Pointers) {
  EXPECT_EQ(run("int main() { int x = 3; int *p = &x; *p = 7; "
                "return x; }"),
            7);
  EXPECT_EQ(run("void set(int *p, int v) { *p = v; }\n"
                "int main() { int x = 0; set(&x, 9); return x; }"),
            9);
}

TEST(CodeGenTest, PointerArithmetic) {
  EXPECT_EQ(run("int main() { int a[5]; for (int i = 0; i < 5; ++i) "
                "a[i] = i * 10; int *p = a; p += 2; int *q = a + 4; "
                "return *p + *q + (q - p); }"),
            62);
}

TEST(CodeGenTest, PointerLoop) {
  EXPECT_EQ(run("int main() { int a[6]; int *end = a + 6; int k = 1; "
                "for (int *p = a; p != end; ++p) { *p = k; k = k * 2; } "
                "return a[5]; }"),
            32);
}

TEST(CodeGenTest, Doubles) {
  EXPECT_EQ(run("int main() { double d = 2.5; d = d * 4.0; int r = d; "
                "return r; }"),
            10);
  EXPECT_EQ(run("double half(double x) { return x / 2.0; }\n"
                "int main() { double r = half(9.0); int i = r; "
                "return i; }"),
            4);
}

TEST(CodeGenTest, MixedArithmeticConversions) {
  EXPECT_EQ(run("int main() { int i = 7; double d = 0.5; double r = i * "
                "d; int out = r * 2.0; return out; }"),
            7);
}

TEST(CodeGenTest, Booleans) {
  EXPECT_EQ(run("int main() { bool t = true; bool f = false; "
                "return (t && !f) ? 5 : 6; }"),
            5);
}

TEST(CodeGenTest, ShortCircuitEvaluation) {
  // The right operand must not run when the left decides.
  EXPECT_EQ(run("int calls = 0;\nbool touch() { calls += 1; return true; }\n"
                "int main() { bool a = false && touch(); "
                "bool b = true || touch(); if (a || !b) return 100; "
                "return calls; }"),
            0);
}

TEST(CodeGenTest, ConditionalOperator) {
  EXPECT_EQ(run("int main() { int x = 3; return x > 2 ? x * 10 : -1; }"),
            30);
}

TEST(CodeGenTest, IncrementSemantics) {
  EXPECT_EQ(run("int main() { int i = 5; int a = i++; int b = ++i; "
                "return a * 100 + b * 10 + i; }"),
            577); // a=5, b=7, i=7
}

TEST(CodeGenTest, CharType) {
  EXPECT_EQ(run("int main() { char c = 200; return c < 0 ? 1 : 0; }"),
            1); // char is signed; 200 wraps negative
}

TEST(CodeGenTest, RecordChannel) {
  Execution E("void record(long v);\nint main() { for (int i = 0; i < 4; "
              "++i) record(i * 2); return 0; }");
  E.runMain();
  EXPECT_EQ(E.Recorded, (std::vector<std::int64_t>{0, 2, 4, 6}));
}

TEST(CodeGenTest, PreprocessorIntegration) {
  EXPECT_EQ(run("#define N 12\n#define DOUBLE(x) ((x) * 2)\n"
                "int main() { return DOUBLE(N) + 1; }"),
            25);
}

TEST(CodeGenTest, VerifierAcceptsAllGeneratedIR) {
  // A kitchen-sink program; the CompilerInstance runs the verifier.
  Execution E(R"(
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    double avg(double a, double b) { return (a + b) / 2.0; }
    int data[16];
    int main() {
      for (int i = 0; i < 16; ++i) data[i] = fib(i % 8);
      double m = avg(data[3], data[4]);
      int mi = m;
      int s = 0;
      for (int *p = data; p < data + 16; ++p) s += *p;
      return s + mi;
    }
  )");
  ASSERT_TRUE(E.CompiledOK) << E.diagnostics();
  E.runMain();
}

// --- The mid-end on serial code ---

TEST(MidendIntegrationTest, O1PreservesSemantics) {
  const char *Source = "int main() { int s = 0; for (int i = 0; i < 37; "
                       "++i) s += i * i; return s; }";
  Execution Plain(Source);
  Execution O1(Source, midendOpts());
  EXPECT_EQ(Plain.runMain(), O1.runMain());
}

TEST(MidendIntegrationTest, DCERemovesDeadValues) {
  // Hand-built IR with a dead pure chain (stores keep values alive in
  // front-end output, so this is tested at the IR level).
  ir::Module M;
  ir::Function *F = M.createFunction("f", ir::IRType::getI32(),
                                     {ir::IRType::getI32()});
  ir::IRBuilder B(M, /*FoldConstants=*/false);
  B.setInsertPoint(F->createBlock("entry"));
  ir::Value *Dead1 = B.createAdd(F->getArg(0), M.getI32(1), "dead1");
  B.createMul(Dead1, M.getI32(2), "dead2");
  B.createRet(F->getArg(0));
  EXPECT_EQ(mcc::midend::runDCE(M), 2u);
  // The trapping division must survive even when unused.
  ir::Function *G = M.createFunction("g", ir::IRType::getI32(),
                                     {ir::IRType::getI32()});
  B.setInsertPoint(G->createBlock("entry"));
  B.createBinOp(ir::Opcode::SDiv, M.getI32(1), G->getArg(0), "maytrap");
  B.createRet(G->getArg(0));
  EXPECT_EQ(mcc::midend::runDCE(M), 0u);
}

} // namespace
