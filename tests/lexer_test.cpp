//===--- lexer_test.cpp - Unit tests for the Lexer layer ------------------===//
#include "lex/Lexer.h"
#include "support/FileManager.h"

#include <gtest/gtest.h>

#include <vector>

using namespace mcc;

namespace {

struct LexResult {
  std::vector<Token> Tokens;
  unsigned NumErrors = 0;
};

LexResult lexAll(std::string_view Source) {
  static FileManager FM; // keeps buffers alive for the returned tokens
  static unsigned Counter = 0;
  std::string Name = "lex" + std::to_string(Counter++) + ".c";
  FM.addVirtualFile(Name, Source);
  static SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer(Name));
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Lexer L(F, SM, Diags);
  LexResult R;
  Token Tok;
  while (L.lex(Tok))
    R.Tokens.push_back(Tok);
  R.NumErrors = Diags.getNumErrors();
  return R;
}

std::vector<tok::TokenKind> kindsOf(const LexResult &R) {
  std::vector<tok::TokenKind> Kinds;
  for (const Token &T : R.Tokens)
    Kinds.push_back(T.getKind());
  return Kinds;
}

TEST(LexerTest, EmptyBuffer) {
  LexResult R = lexAll("");
  EXPECT_TRUE(R.Tokens.empty());
  EXPECT_EQ(R.NumErrors, 0u);
}

TEST(LexerTest, Identifiers) {
  LexResult R = lexAll("foo _bar baz42 _");
  ASSERT_EQ(R.Tokens.size(), 4u);
  for (const Token &T : R.Tokens)
    EXPECT_EQ(T.getKind(), tok::identifier);
  EXPECT_EQ(R.Tokens[0].getText(), "foo");
  EXPECT_EQ(R.Tokens[1].getText(), "_bar");
  EXPECT_EQ(R.Tokens[2].getText(), "baz42");
}

TEST(LexerTest, Keywords) {
  LexResult R = lexAll("int for while if else return double unsigned");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::kw_int, tok::kw_for, tok::kw_while, tok::kw_if,
                   tok::kw_else, tok::kw_return, tok::kw_double,
                   tok::kw_unsigned}));
}

TEST(LexerTest, KeywordLookupIsExact) {
  LexResult R = lexAll("inty forkForward");
  for (const Token &T : R.Tokens)
    EXPECT_EQ(T.getKind(), tok::identifier);
}

TEST(LexerTest, IntegerLiterals) {
  LexResult R = lexAll("0 42 0x1F 100u 100l 100ul");
  ASSERT_EQ(R.Tokens.size(), 6u);
  for (const Token &T : R.Tokens)
    EXPECT_EQ(T.getKind(), tok::numeric_constant);
  EXPECT_EQ(R.Tokens[2].getText(), "0x1F");
  EXPECT_EQ(R.Tokens[5].getText(), "100ul");
}

TEST(LexerTest, FloatingLiterals) {
  LexResult R = lexAll("1.5 0.25 1e10 2.5e-3 3.f");
  ASSERT_EQ(R.Tokens.size(), 5u);
  for (const Token &T : R.Tokens)
    EXPECT_EQ(T.getKind(), tok::numeric_constant);
  EXPECT_EQ(R.Tokens[3].getText(), "2.5e-3");
}

TEST(LexerTest, Punctuators) {
  LexResult R = lexAll("( ) { } [ ] ; , ? : ~");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::l_paren, tok::r_paren, tok::l_brace, tok::r_brace,
                   tok::l_square, tok::r_square, tok::semi, tok::comma,
                   tok::question, tok::colon, tok::tilde}));
}

TEST(LexerTest, MaximalMunchOperators) {
  LexResult R = lexAll("++ += + -- -= -> - == = <= << < >= >> > && & || |");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::plusplus, tok::plusequal, tok::plus, tok::minusminus,
                   tok::minusequal, tok::arrow, tok::minus, tok::equalequal,
                   tok::equal, tok::lessequal, tok::lessless, tok::less,
                   tok::greaterequal, tok::greatergreater, tok::greater,
                   tok::ampamp, tok::amp, tok::pipepipe, tok::pipe}));
}

TEST(LexerTest, CompoundAssignOperators) {
  LexResult R = lexAll("*= /= %= &= |= ^= !=");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::starequal, tok::slashequal, tok::percentequal,
                   tok::ampequal, tok::pipeequal, tok::caretequal,
                   tok::exclaimequal}));
}

TEST(LexerTest, AdjacentOperatorsNoSpaces) {
  LexResult R = lexAll("i+=1;i<N;++i");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::identifier, tok::plusequal, tok::numeric_constant,
                   tok::semi, tok::identifier, tok::less, tok::identifier,
                   tok::semi, tok::plusplus, tok::identifier}));
}

TEST(LexerTest, LineComments) {
  LexResult R = lexAll("a // comment with * tokens + 42\nb");
  ASSERT_EQ(R.Tokens.size(), 2u);
  EXPECT_EQ(R.Tokens[0].getText(), "a");
  EXPECT_EQ(R.Tokens[1].getText(), "b");
}

TEST(LexerTest, BlockComments) {
  LexResult R = lexAll("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(R.Tokens.size(), 2u);
  EXPECT_EQ(R.Tokens[1].getText(), "b");
  EXPECT_EQ(R.NumErrors, 0u);
}

TEST(LexerTest, UnterminatedBlockComment) {
  LexResult R = lexAll("a /* never closed");
  EXPECT_EQ(R.NumErrors, 1u);
}

TEST(LexerTest, StringAndCharLiterals) {
  LexResult R = lexAll(R"("hello" 'c' "with \" escape")");
  ASSERT_EQ(R.Tokens.size(), 3u);
  EXPECT_EQ(R.Tokens[0].getKind(), tok::string_literal);
  EXPECT_EQ(R.Tokens[1].getKind(), tok::char_constant);
  EXPECT_EQ(R.Tokens[2].getKind(), tok::string_literal);
  EXPECT_EQ(R.Tokens[2].getText(), "\"with \\\" escape\"");
}

TEST(LexerTest, UnterminatedString) {
  LexResult R = lexAll("\"no end");
  EXPECT_EQ(R.NumErrors, 1u);
}

TEST(LexerTest, StartOfLineFlag) {
  LexResult R = lexAll("a b\nc d");
  ASSERT_EQ(R.Tokens.size(), 4u);
  EXPECT_TRUE(R.Tokens[0].isAtStartOfLine());
  EXPECT_FALSE(R.Tokens[1].isAtStartOfLine());
  EXPECT_TRUE(R.Tokens[2].isAtStartOfLine());
  EXPECT_FALSE(R.Tokens[3].isAtStartOfLine());
}

TEST(LexerTest, LeadingSpaceFlag) {
  LexResult R = lexAll("a b(c");
  ASSERT_EQ(R.Tokens.size(), 4u);
  EXPECT_TRUE(R.Tokens[1].hasLeadingSpace());  // b
  EXPECT_FALSE(R.Tokens[2].hasLeadingSpace()); // (
}

TEST(LexerTest, LineContinuation) {
  LexResult R = lexAll("ab\\\ncd");
  // A line continuation inside whitespace doesn't join identifiers in our
  // lexer (it is whitespace-level), so we expect two identifiers.
  ASSERT_EQ(R.Tokens.size(), 2u);
}

TEST(LexerTest, InvalidCharacter) {
  LexResult R = lexAll("a @ b");
  EXPECT_EQ(R.NumErrors, 1u);
  ASSERT_EQ(R.Tokens.size(), 3u);
  EXPECT_EQ(R.Tokens[1].getKind(), tok::unknown);
}

TEST(LexerTest, TokenLocationsPointIntoSource) {
  FileManager FM;
  FM.addVirtualFile("loc.c", "int  foo;\nbar");
  SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer("loc.c"));
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Lexer L(F, SM, Diags);

  Token Tok;
  L.lex(Tok); // int
  EXPECT_EQ(SM.getPresumedLoc(Tok.getLocation()).Column, 1u);
  L.lex(Tok); // foo
  EXPECT_EQ(SM.getPresumedLoc(Tok.getLocation()).Column, 6u);
  L.lex(Tok); // ;
  L.lex(Tok); // bar
  PresumedLoc P = SM.getPresumedLoc(Tok.getLocation());
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Column, 1u);
}

TEST(LexerTest, EodModeInDirectives) {
  FileManager FM;
  FM.addVirtualFile("d.c", "a b\nc");
  SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer("d.c"));
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Lexer L(F, SM, Diags);
  L.setParsingPreprocessorDirective(true);
  Token Tok;
  L.lex(Tok);
  EXPECT_EQ(Tok.getKind(), tok::identifier);
  L.lex(Tok);
  EXPECT_EQ(Tok.getKind(), tok::identifier);
  L.lex(Tok);
  EXPECT_EQ(Tok.getKind(), tok::eod); // newline reported in directive mode
  L.setParsingPreprocessorDirective(false);
  L.lex(Tok);
  EXPECT_EQ(Tok.getKind(), tok::identifier);
  EXPECT_EQ(Tok.getText(), "c");
}

TEST(LexerTest, PaperExampleLoopHeader) {
  // The exact loop from the paper's Listing 3.
  LexResult R = lexAll("for (int i = 7; i < 17; i += 3)");
  auto K = kindsOf(R);
  EXPECT_EQ(K, (std::vector<tok::TokenKind>{
                   tok::kw_for, tok::l_paren, tok::kw_int, tok::identifier,
                   tok::equal, tok::numeric_constant, tok::semi,
                   tok::identifier, tok::less, tok::numeric_constant,
                   tok::semi, tok::identifier, tok::plusequal,
                   tok::numeric_constant, tok::r_paren}));
}

} // namespace
