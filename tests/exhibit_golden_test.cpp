//===--- exhibit_golden_test.cpp - Golden files for the paper's exhibits ---===//
//
// The exhibit_ast_dumps tool reproduces the paper's listings (Fig. 3 /
// lst:astdump, the shadow-AST stack of Listing 6, the transformed tile
// and unroll subtrees). These dumps are documentation-grade output — a
// formatting or structural drift would silently invalidate the paper
// reproduction — so each exhibit is pinned against a golden file under
// tests/golden/.
//
// To regenerate after an intentional AST/dump change:
//   MCC_REGEN_GOLDEN=1 ./exhibit_golden_test
// then review the diff like any other source change.
//
//===----------------------------------------------------------------------===//
#include "ast/RecursiveASTVisitor.h"
#include "driver/CompilerInstance.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace mcc;

namespace {

template <typename T> T *findNode(TranslationUnitDecl *TU) {
  struct Finder : RecursiveASTVisitor<Finder> {
    T *Found = nullptr;
    bool visitStmt(Stmt *S) {
      if (auto *Node = stmt_dyn_cast<T>(S)) {
        Found = Node;
        return false;
      }
      return true;
    }
  } F;
  for (Decl *D : TU->decls())
    if (!F.traverseDecl(D))
      break;
  return F.Found;
}

std::string goldenPath(const std::string &Name) {
  return std::string(MCC_GOLDEN_DIR) + "/" + Name + ".golden";
}

void compareWithGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("MCC_REGEN_GOLDEN")) {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with MCC_REGEN_GOLDEN=1 to create)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "exhibit '" << Name << "' drifted from " << Path
      << "\nIf the change is intentional, regenerate with "
         "MCC_REGEN_GOLDEN=1 and review the diff.";
}

/// Parses \p Source and dumps the first node of type T (optionally its
/// transformed shadow statement instead).
template <typename T>
std::string dumpExhibit(const char *Source, bool Transformed = false,
                        bool IRBuilderMode = false) {
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  CompilerInstance CI(Options);
  CI.addVirtualFile("x.c", Source);
  if (!CI.parseToAST("x.c")) {
    ADD_FAILURE() << CI.renderDiagnostics();
    return {};
  }
  T *Node = findNode<T>(CI.getTranslationUnit());
  if (!Node) {
    ADD_FAILURE() << "exhibit node not found";
    return {};
  }
  if (Transformed) {
    if constexpr (requires { Node->getTransformedStmt(); }) {
      Stmt *TS = Node->getTransformedStmt();
      if (!TS) {
        ADD_FAILURE() << "no transformed statement";
        return {};
      }
      return dumpToString(TS);
    } else {
      ADD_FAILURE() << "directive has no shadow transform";
      return {};
    }
  }
  return dumpToString(Node);
}

// Paper Listing 3 / Fig. 3: parallel for schedule(static) including the
// CapturedStmt machinery.
TEST(ExhibitGolden, AstDumpParallelForStatic) {
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp parallel for schedule(static)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  compareWithGolden(
      "astdump_parallel_for",
      dumpExhibit<OMPParallelForDirective>(Source));
}

// Paper Listing 6: the shadow-AST stack of unroll full over
// unroll partial(2).
TEST(ExhibitGolden, ShadowAstUnrollStack) {
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  compareWithGolden("shadow_unroll_stack",
                    dumpExhibit<OMPUnrollDirective>(Source));
}

// Paper Listing 8 (Fig. 8): the transformed shadow AST of a partial
// unroll — strip-mined loop plus LoopHintAttr.
TEST(ExhibitGolden, ShadowAstUnrollTransformed) {
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  compareWithGolden(
      "shadow_unroll_transformed",
      dumpExhibit<OMPUnrollDirective>(Source, /*Transformed=*/true));
}

// The reverse directive's shadow AST: the generated loop runs the same
// logical iterations backwards. The body is call-free array arithmetic
// so the dependence legality oracle admits the transformation.
TEST(ExhibitGolden, ShadowAstReverseTransformed) {
  const char *Source = R"(
void f() {
  int a[32];
  #pragma omp reverse
  for (int i = 0; i < 32; i += 1)
    a[i] = a[i] + i;
}
)";
  compareWithGolden(
      "shadow_reverse_transformed",
      dumpExhibit<OMPReverseDirective>(Source, /*Transformed=*/true));
}

// The interchange counterpart: permutation(2, 1) swaps a dependence-free
// 2-D nest with an injective subscript.
TEST(ExhibitGolden, ShadowAstInterchangeTransformed) {
  const char *Source = R"(
void f() {
  int a[512];
  #pragma omp interchange permutation(2, 1)
  for (int i = 0; i < 16; i += 1)
    for (int j = 0; j < 32; j += 1)
      a[i * 32 + j] = a[i * 32 + j] * 2;
}
)";
  compareWithGolden(
      "shadow_interchange_transformed",
      dumpExhibit<OMPInterchangeDirective>(Source, /*Transformed=*/true));
}

// The tile counterpart: the shadow AST a tile directive constructs
// (floor + tile loop nest) for a 2-D sizes clause.
TEST(ExhibitGolden, ShadowAstTileTransformed) {
  const char *Source = R"(
void body(int i, int j);
void f() {
  #pragma omp tile sizes(4, 8)
  for (int i = 0; i < 32; i += 1)
    for (int j = 0; j < 16; j += 1)
      body(i, j);
}
)";
  compareWithGolden(
      "shadow_tile_transformed",
      dumpExhibit<OMPTileDirective>(Source, /*Transformed=*/true));
}

// The fuse directive's shadow AST: two adjacent sibling loops rewritten
// into one loop whose body runs both members per shared iteration, the
// shorter member guarded by its own trip count.
TEST(ExhibitGolden, ShadowAstFuseTransformed) {
  const char *Source = R"(
void f() {
  int a[64];
  int b[64];
  #pragma omp fuse
  {
    for (int i = 0; i < 64; i += 1)
      a[i] = 2 * i;
    for (int k = 0; k < 16; k += 1)
      b[k] = a[k] + 1;
  }
}
)";
  compareWithGolden(
      "shadow_fuse_transformed",
      dumpExhibit<OMPFuseDirective>(Source, /*Transformed=*/true));
}

// The distribute_loop counterpart: one loop split into per-statement-
// group loops (legal here — the inter-group dependence is forward).
TEST(ExhibitGolden, ShadowAstDistributeTransformed) {
  const char *Source = R"(
void f() {
  int a[64];
  int b[64];
  #pragma omp distribute_loop
  for (int i = 0; i < 64; i += 1) {
    a[i] = 2 * i;
    b[i] = a[i] + 1;
  }
}
)";
  compareWithGolden(
      "shadow_distribute_transformed",
      dumpExhibit<OMPDistributeLoopDirective>(Source, /*Transformed=*/true));
}

// Composition in the style of the paper's stacked-directive discussion:
// the first fuse member is itself a tile directive, so the fuse shadow is
// built over the tile's post-transform loop.
TEST(ExhibitGolden, ShadowAstFuseAfterTileTransformed) {
  const char *Source = R"(
void f() {
  int a[64];
  int b[64];
  #pragma omp fuse
  {
    #pragma omp tile sizes(4)
    for (int i = 0; i < 64; i += 1)
      a[i] = i;
    for (int k = 0; k < 16; k += 1)
      b[k] = k;
  }
}
)";
  compareWithGolden(
      "shadow_fuse_after_tile",
      dumpExhibit<OMPFuseDirective>(Source, /*Transformed=*/true));
}

} // namespace
