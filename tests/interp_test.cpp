//===--- interp_test.cpp - Execution engine unit tests --------------------===//
#include "interp/Interpreter.h"
#include "irbuilder/OpenMPIRBuilder.h"
#include "runtime/KMPRuntime.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace mcc::ir;
using namespace mcc::interp;

namespace {

TEST(InterpTest, ReturnsConstant) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getI32(42));

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("f", {}).I, 42);
}

TEST(InterpTest, Arithmetic) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI64(),
                                 {IRType::getI64(), IRType::getI64()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Sum = B.createAdd(F->getArg(0), F->getArg(1));
  Value *Prod = B.createMul(Sum, M.getI64(3));
  B.createRet(Prod);

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("f", {RTValue::ofInt(4), RTValue::ofInt(6)}).I,
            30);
}

TEST(InterpTest, SignedVsUnsignedDivision) {
  Module M;
  IRBuilder B(M);
  Function *S = M.createFunction("s", IRType::getI32(),
                                 {IRType::getI32(), IRType::getI32()});
  B.setInsertPoint(S->createBlock("entry"));
  B.createRet(B.createBinOp(Opcode::SDiv, S->getArg(0), S->getArg(1), "d"));
  Function *U = M.createFunction("u", IRType::getI32(),
                                 {IRType::getI32(), IRType::getI32()});
  B.setInsertPoint(U->createBlock("entry"));
  B.createRet(B.createBinOp(Opcode::UDiv, U->getArg(0), U->getArg(1), "d"));

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("s", {RTValue::ofInt(-6), RTValue::ofInt(2)}).I,
            -3);
  // -6 as u32 is 0xFFFFFFFA; udiv by 2 = 0x7FFFFFFD.
  EXPECT_EQ(EE.runFunction("u", {RTValue::ofInt(-6), RTValue::ofInt(2)}).I,
            0x7FFFFFFD);
}

TEST(InterpTest, MemoryOperations) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Slot = B.createAlloca(IRType::getI32());
  B.createStore(M.getI32(7), Slot);
  Value *L = B.createLoad(IRType::getI32(), Slot);
  Value *Doubled = B.createAdd(L, L);
  B.createStore(Doubled, Slot);
  B.createRet(B.createLoad(IRType::getI32(), Slot));

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("f", {}).I, 14);
}

TEST(InterpTest, GEPIndexing) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI64(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Arr = B.createAlloca(IRType::getI64(), M.getI64(4));
  for (int I = 0; I < 4; ++I) {
    Value *P = B.createGEP(IRType::getI64(), Arr, M.getI64(I));
    B.createStore(M.getI64(10 * I), P);
  }
  Value *P2 = B.createGEP(IRType::getI64(), Arr, M.getI64(2));
  B.createRet(B.createLoad(IRType::getI64(), P2));

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("f", {}).I, 20);
}

TEST(InterpTest, GlobalVariables) {
  Module M;
  GlobalVariable *G = M.createGlobal("counter", IRType::getI64(), 1);
  G->IntInit = {100};
  Function *F = M.createFunction("bump", IRType::getI64(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *V = B.createLoad(IRType::getI64(), G);
  Value *Inc = B.createAdd(V, M.getI64(1));
  B.createStore(Inc, G);
  B.createRet(Inc);

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("bump", {}).I, 101);
  EXPECT_EQ(EE.runFunction("bump", {}).I, 102);
  auto *Raw = static_cast<std::int64_t *>(EE.getGlobalAddress("counter"));
  EXPECT_EQ(*Raw, 102);
}

TEST(InterpTest, ControlFlowAndPhi) {
  // abs(x) via phi join.
  Module M;
  Function *F = M.createFunction("abs", IRType::getI64(),
                                 {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Neg = F->createBlock("neg");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertPoint(Entry);
  Value *IsNeg = B.createICmp(CmpPred::SLT, F->getArg(0), M.getI64(0));
  B.createCondBr(IsNeg, Neg, Join);
  B.setInsertPoint(Neg);
  Value *Negated = B.createSub(M.getI64(0), F->getArg(0));
  B.createBr(Join);
  B.setInsertPoint(Join);
  Instruction *Phi = B.createPhi(IRType::getI64(), "res");
  Phi->addIncoming(F->getArg(0), Entry);
  Phi->addIncoming(Negated, Neg);
  B.createRet(Phi);

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("abs", {RTValue::ofInt(-9)}).I, 9);
  EXPECT_EQ(EE.runFunction("abs", {RTValue::ofInt(9)}).I, 9);
}

TEST(InterpTest, RecursiveCalls) {
  // fib(n)
  Module M;
  Function *F = M.createFunction("fib", IRType::getI64(),
                                 {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  B.setInsertPoint(Entry);
  Value *IsBase = B.createICmp(CmpPred::SLT, F->getArg(0), M.getI64(2));
  B.createCondBr(IsBase, Base, Rec);
  B.setInsertPoint(Base);
  B.createRet(F->getArg(0));
  B.setInsertPoint(Rec);
  Value *A = B.createCall(F, {B.createSub(F->getArg(0), M.getI64(1))});
  Value *C = B.createCall(F, {B.createSub(F->getArg(0), M.getI64(2))});
  B.createRet(B.createAdd(A, C));

  ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("fib", {RTValue::ofInt(10)}).I, 55);
}

TEST(InterpTest, DoubleArithmetic) {
  Module M;
  Function *F = M.createFunction("f", IRType::getDouble(),
                                 {IRType::getDouble()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Sq = B.createBinOp(Opcode::FMul, F->getArg(0), F->getArg(0), "sq");
  B.createRet(B.createBinOp(Opcode::FAdd, Sq, M.getDouble(0.5), "r"));

  ExecutionEngine EE(M);
  EXPECT_DOUBLE_EQ(EE.runFunction("f", {RTValue::ofDouble(3.0)}).D, 9.5);
}

TEST(InterpTest, ExternalBinding) {
  Module M;
  Function *Ext = M.createFunction("magic", IRType::getI64(),
                                   {IRType::getI64()});
  Function *F = M.createFunction("f", IRType::getI64(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createCall(Ext, {M.getI64(5)}));

  ExecutionEngine EE(M);
  EE.bindExternal("magic", [](std::span<const RTValue> Args) {
    return RTValue::ofInt(Args[0].I * 100);
  });
  EXPECT_EQ(EE.runFunction("f", {}).I, 500);
}

TEST(InterpTest, UnboundExternalThrows) {
  Module M;
  Function *Ext = M.createFunction("missing", IRType::getVoid(), {});
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createCall(Ext, {});
  B.createRetVoid();

  ExecutionEngine EE(M);
  EXPECT_THROW(EE.runFunction("f", {}), std::runtime_error);
}

TEST(InterpTest, DivisionByZeroThrows) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(),
                                 {IRType::getI32()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createSDiv(M.getI32(1), F->getArg(0)));
  ExecutionEngine EE(M);
  EXPECT_THROW(EE.runFunction("f", {RTValue::ofInt(0)}), std::runtime_error);
}

TEST(InterpTest, CountsInstructions) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  IRBuilder B(M, /*FoldConstants=*/false);
  B.setInsertPoint(F->createBlock("entry"));
  Value *V = B.createAdd(M.getI32(1), M.getI32(2));
  B.createRet(V);
  ExecutionEngine EE(M);
  EE.runFunction("f", {});
  EXPECT_EQ(EE.getInstructionsExecuted(), 2u);
}

// --- Runtime integration: real threads through the interpreter ---

TEST(RuntimeInterpTest, ForkCallRunsAllThreads) {
  // Outlined function: context[0] is a pointer to an i64 array indexed by
  // thread id; each thread writes its id + 1.
  Module M;
  Function *Outlined = M.createFunction(
      "outlined", IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()},
      {".global_tid.", ".bound_tid.", "__context"});
  Function *GetTid =
      M.getOrInsertFunction("omp_get_thread_num", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(Outlined->createBlock("entry"));
  // arr = *(ptr*)context
  Value *ArrPtr = B.createLoad(IRType::getPtr(), Outlined->getArg(2));
  Value *Tid = B.createCall(GetTid, {}, "tid");
  Value *Tid64 = B.createCast(Opcode::SExt, Tid, IRType::getI64(), "tid64");
  Value *Slot = B.createGEP(IRType::getI64(), ArrPtr, Tid64);
  B.createStore(B.createAdd(Tid64, B.getI64(1)), Slot);
  B.createRetVoid();

  // Driver: allocate the array, build the context, fork.
  Function *ForkFn = M.getOrInsertFunction(
      "__kmpc_fork_call", IRType::getVoid(),
      {IRType::getPtr(), IRType::getI32(), IRType::getPtr(),
       IRType::getI32()});
  Function *Main = M.createFunction("main", IRType::getI64(), {});
  B.setInsertPoint(Main->createBlock("entry"));
  Instruction *Arr = B.createAlloca(IRType::getI64(), M.getI64(8), "arr");
  Instruction *Ctx = B.createAlloca(IRType::getPtr(), M.getI64(1), "ctx");
  B.createStore(Arr, Ctx);
  B.createCall(ForkFn, {Outlined, B.getI32(1), Ctx, B.getI32(4)});
  // Sum the array.
  Value *Sum = M.getI64(0);
  for (int I = 0; I < 4; ++I) {
    Value *P = B.createGEP(IRType::getI64(), Arr, M.getI64(I));
    Sum = B.createAdd(Sum, B.createLoad(IRType::getI64(), P));
  }
  B.createRet(Sum);

  ASSERT_EQ(verifyModule(M), "");
  ExecutionEngine EE(M);
  // Threads 0..3 wrote 1..4 -> sum 10.
  EXPECT_EQ(EE.runFunction("main", {}).I, 10);
}

TEST(RuntimeTest, StaticInitPartitionsDisjointlyAndCompletely) {
  using namespace mcc::rt;
  // Property sweep over (tripcount, nthreads): the static schedule must
  // partition [0, trip) disjointly and completely.
  for (std::int64_t Trip : {0, 1, 5, 16, 17, 100, 101}) {
    for (int Threads : {1, 2, 3, 4, 8}) {
      std::vector<char> Covered(static_cast<std::size_t>(Trip), 0);
      OpenMPRuntime &RT = OpenMPRuntime::get();
      std::mutex Mx;
      bool Overlap = false;
      RT.forkCall(
          [&](int) {
            std::int32_t Last = 0;
            std::int64_t Lb = 0, Ub = Trip - 1, Stride = 1;
            RT.forStaticInit(SchedStatic, &Last, &Lb, &Ub, &Stride, 1, 0);
            std::lock_guard<std::mutex> Lock(Mx);
            for (std::int64_t I = Lb; I <= Ub; ++I) {
              if (I < 0 || I >= Trip || Covered[static_cast<std::size_t>(I)])
                Overlap = true;
              else
                Covered[static_cast<std::size_t>(I)] = 1;
            }
          },
          Threads);
      EXPECT_FALSE(Overlap) << "trip=" << Trip << " threads=" << Threads;
      EXPECT_EQ(std::count(Covered.begin(), Covered.end(), 1),
                static_cast<std::ptrdiff_t>(Trip))
          << "trip=" << Trip << " threads=" << Threads;
    }
  }
}

TEST(RuntimeTest, DynamicDispatchCoversRange) {
  using namespace mcc::rt;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  for (std::int32_t Sched :
       {SchedDynamic, SchedGuided, SchedStaticChunked}) {
    constexpr std::int64_t Trip = 1000;
    std::vector<std::atomic<int>> Hits(Trip);
    RT.forkCall(
        [&](int) {
          RT.dispatchInit(Sched, 0, Trip - 1, 7);
          std::int32_t Last;
          std::int64_t Lb, Ub;
          while (RT.dispatchNext(&Last, &Lb, &Ub))
            for (std::int64_t I = Lb; I <= Ub; ++I)
              Hits[static_cast<std::size_t>(I)]++;
        },
        4);
    for (std::int64_t I = 0; I < Trip; ++I)
      ASSERT_EQ(Hits[static_cast<std::size_t>(I)].load(), 1)
          << "sched=" << Sched << " i=" << I;
  }
}

TEST(RuntimeTest, BarrierSynchronizes) {
  using namespace mcc::rt;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  std::atomic<int> Before{0};
  std::atomic<bool> Violation{false};
  RT.forkCall(
      [&](int) {
        Before.fetch_add(1);
        RT.barrier();
        // After the barrier every thread must observe all arrivals.
        if (Before.load() != 8)
          Violation = true;
      },
      8);
  EXPECT_FALSE(Violation.load());
}

TEST(RuntimeTest, CriticalSectionIsExclusive) {
  using namespace mcc::rt;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  long long Counter = 0; // unguarded except by the critical section
  RT.forkCall(
      [&](int) {
        for (int I = 0; I < 10000; ++I) {
          RT.critical();
          ++Counter;
          RT.endCritical();
        }
      },
      4);
  EXPECT_EQ(Counter, 40000);
}

TEST(RuntimeTest, NestedForkJoin) {
  using namespace mcc::rt;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  std::atomic<int> Count{0};
  RT.forkCall(
      [&](int) {
        RT.forkCall([&](int) { Count.fetch_add(1); }, 2);
      },
      2);
  EXPECT_EQ(Count.load(), 4);
}

// --- Engine parity: the same module under all four backends ---
// (Native and tiered degrade to bytecode per function on hosts without
// JIT support, so the sweep is portable.)

class EngineParityTest : public ::testing::TestWithParam<ExecEngineKind> {};

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineParityTest,
    ::testing::Values(ExecEngineKind::Walker, ExecEngineKind::Bytecode,
                      ExecEngineKind::Native, ExecEngineKind::Tiered),
    [](const ::testing::TestParamInfo<ExecEngineKind> &Info) {
      return std::string(execEngineKindName(Info.param));
    });

TEST_P(EngineParityTest, PhiParallelCopySwapOnBackEdge) {
  // (a, b) <- (b, a) every iteration: a phi cycle on the back edge that
  // the bytecode translator must break with the scratch register. After
  // an odd trip count the values are swapped.
  Module M;
  Function *F = M.createFunction(
      "swapper", IRType::getI64(), {IRType::getI64(), IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *A = B.createPhi(IRType::getI64(), "a");
  Instruction *Bv = B.createPhi(IRType::getI64(), "b");
  Instruction *I = B.createPhi(IRType::getI64(), "i");
  Value *Next = B.createAdd(I, M.getI64(1));
  Value *Done = B.createICmp(CmpPred::SGE, Next, M.getI64(5));
  A->addIncoming(F->getArg(0), Entry);
  Bv->addIncoming(F->getArg(1), Entry);
  I->addIncoming(M.getI64(0), Entry);
  A->addIncoming(Bv, Loop); // the swap: a <- b, b <- a, in parallel
  Bv->addIncoming(A, Loop);
  I->addIncoming(Next, Loop);
  B.createCondBr(Done, Exit, Loop);
  B.setInsertPoint(Exit);
  // a * 1000 + b distinguishes swapped from unswapped.
  B.createRet(B.createAdd(B.createMul(A, M.getI64(1000)), Bv));
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, GetParam());
  // 5 iterations entered, 4 back-edge swaps -> (a, b) unchanged at exit
  // observed *inside* iteration 5, which saw 4 swaps: even -> original.
  EXPECT_EQ(EE.runFunction("swapper", {RTValue::ofInt(7), RTValue::ofInt(9)})
                .I,
            7009);
}

TEST_P(EngineParityTest, NegativeStepLoop) {
  // for (i = 10; i > 0; i -= 3) sum += i  ->  10 + 7 + 4 + 1 = 22.
  Module M;
  Function *F = M.createFunction("down", IRType::getI64(), {});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *IPhi = B.createPhi(IRType::getI64(), "i");
  Instruction *SumPhi = B.createPhi(IRType::getI64(), "sum");
  Value *Sum = B.createAdd(SumPhi, IPhi);
  Value *Next = B.createSub(IPhi, M.getI64(3));
  Value *More = B.createICmp(CmpPred::SGT, Next, M.getI64(0));
  IPhi->addIncoming(M.getI64(10), Entry);
  IPhi->addIncoming(Next, Loop);
  SumPhi->addIncoming(M.getI64(0), Entry);
  SumPhi->addIncoming(Sum, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  B.createRet(Sum);
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, GetParam());
  EXPECT_EQ(EE.runFunction("down", {}).I, 22);
}

TEST_P(EngineParityTest, FusedCanonicalLoopCFG) {
  // The guarded multi-body CFG fuseLoops produces (one shared skeleton,
  // member bodies of unequal trip counts each behind its own guard) must
  // agree across every execution tier. The accumulator recurrence is
  // order-sensitive, so any interleaving or guard divergence changes the
  // result.
  Module M;
  IRBuilder B(M);
  OpenMPIRBuilder OMPB(M);
  Function *F = M.createFunction("fused", IRType::getI64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Acc = B.createAlloca(IRType::getI64());
  B.createStore(M.getI64(0), Acc);
  std::vector<CanonicalLoopInfo *> Sibs(2);
  Sibs[0] = OMPB.createCanonicalLoop(
      B, M.getI64(6),
      [&](IRBuilder &Bld, Value *IV) {
        Value *Old = Bld.createLoad(IRType::getI64(), Acc);
        Value *New = Bld.createAdd(Bld.createMul(Old, M.getI64(3)),
                                   Bld.createAdd(IV, M.getI64(1)));
        Bld.createStore(New, Acc);
      },
      "first");
  Sibs[1] = OMPB.createCanonicalLoop(
      B, M.getI64(4),
      [&](IRBuilder &Bld, Value *IV) {
        Value *Old = Bld.createLoad(IRType::getI64(), Acc);
        Value *New = Bld.createAdd(Bld.createMul(Old, M.getI64(2)),
                                   Bld.createMul(IV, M.getI64(7)));
        Bld.createStore(New, Acc);
      },
      "second");
  OMPB.fuseLoops(Sibs);
  B.createRet(B.createLoad(IRType::getI64(), Acc));
  ASSERT_EQ(verifyModule(M), "");

  std::int64_t Expected = 0;
  for (std::int64_t I = 0; I < 6; ++I) {
    Expected = Expected * 3 + (I + 1);
    if (I < 4)
      Expected = Expected * 2 + I * 7;
  }

  ExecutionEngine EE(M, GetParam());
  EXPECT_EQ(EE.runFunction("fused", {}).I, Expected);
}

TEST_P(EngineParityTest, ForkThroughFunctionPointerConstant) {
  // __kmpc_fork_call's first operand is a Function* constant — the
  // bytecode translator bakes it into the constant pool as a host
  // pointer and the runtime trampoline casts it back.
  Module M;
  Function *Outlined = M.createFunction(
      "outlined", IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()},
      {".global_tid.", ".bound_tid.", "__context"});
  Function *GetTid =
      M.getOrInsertFunction("omp_get_thread_num", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(Outlined->createBlock("entry"));
  Value *ArrPtr = B.createLoad(IRType::getPtr(), Outlined->getArg(2));
  Value *Tid = B.createCall(GetTid, {}, "tid");
  Value *Tid64 = B.createCast(Opcode::SExt, Tid, IRType::getI64(), "tid64");
  Value *Slot = B.createGEP(IRType::getI64(), ArrPtr, Tid64);
  B.createStore(B.createAdd(Tid64, B.getI64(1)), Slot);
  B.createRetVoid();

  Function *ForkFn = M.getOrInsertFunction(
      "__kmpc_fork_call", IRType::getVoid(),
      {IRType::getPtr(), IRType::getI32(), IRType::getPtr(),
       IRType::getI32()});
  Function *Main = M.createFunction("main", IRType::getI64(), {});
  B.setInsertPoint(Main->createBlock("entry"));
  Instruction *Arr = B.createAlloca(IRType::getI64(), M.getI64(4), "arr");
  Instruction *Ctx = B.createAlloca(IRType::getPtr(), M.getI64(1), "ctx");
  B.createStore(Arr, Ctx);
  B.createCall(ForkFn, {Outlined, B.getI32(1), Ctx, B.getI32(4)});
  Value *Sum = M.getI64(0);
  for (int K = 0; K < 4; ++K) {
    Value *P = B.createGEP(IRType::getI64(), Arr, M.getI64(K));
    Sum = B.createAdd(Sum, B.createLoad(IRType::getI64(), P));
  }
  B.createRet(Sum);
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, GetParam());
  EXPECT_EQ(EE.runFunction("main", {}).I, 10);
}

TEST_P(EngineParityTest, ExternalBindingReceivesArgs) {
  Module M;
  Function *Ext = M.getOrInsertFunction(
      "host_mul", IRType::getI64(), {IRType::getI64(), IRType::getI64()});
  Function *F = M.createFunction("f", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createCall(Ext, {F->getArg(0), M.getI64(3)}));

  ExecutionEngine EE(M, GetParam());
  EE.bindExternal("host_mul", [](std::span<const RTValue> Args) {
    return RTValue::ofInt(Args[0].I * Args[1].I);
  });
  EXPECT_EQ(EE.runFunction("f", {RTValue::ofInt(14)}).I, 42);
}

TEST_P(EngineParityTest, DivisionByZeroThrowsSameMessage) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {IRType::getI32()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createSDiv(M.getI32(1), F->getArg(0)));

  ExecutionEngine EE(M, GetParam());
  try {
    EE.runFunction("f", {RTValue::ofInt(0)});
    FAIL() << "expected a division trap";
  } catch (const std::runtime_error &Ex) {
    EXPECT_STREQ(Ex.what(), "integer division by zero");
  }
  // The engine stays usable after unwinding (frame stack released).
  EXPECT_EQ(EE.runFunction("f", {RTValue::ofInt(1)}).I, 1);
}

TEST_P(EngineParityTest, LoadOpStoreAliasedOperand) {
  // *p = *p + *p: the fused LoadOpStore's rhs register IS the load's
  // destination register — the handler must write the load before
  // reading the rhs for the doubling to come out right.
  Module M;
  GlobalVariable *G = M.createGlobal("g", IRType::getI64(), 1);
  G->IntInit = {21};
  Function *F = M.createFunction("f", IRType::getI64(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *L = B.createLoad(IRType::getI64(), G, "v");
  B.createStore(B.createAdd(L, L), G);
  B.createRet(B.createLoad(IRType::getI64(), G, "out"));
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, GetParam());
  EXPECT_EQ(EE.runFunction("f", {}).I, 42);
}

TEST_P(EngineParityTest, RegisterPressureManyLiveAccumulators) {
  // Five loop-carried int accumulators plus one double — more than the
  // native tier's GPR pool, so some run from registers and some from
  // frame memory. The expected value is computed independently below;
  // every engine must hit it exactly.
  Module M;
  Function *F =
      M.createFunction("acc", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *I = B.createPhi(IRType::getI64(), "i");
  Instruction *A[5];
  for (int K = 0; K < 5; ++K)
    A[K] = B.createPhi(IRType::getI64(), "a");
  Instruction *D = B.createPhi(IRType::getDouble(), "d");
  Value *U[5];
  for (int K = 0; K < 5; ++K)
    U[K] = B.createAdd(A[K], B.createMul(I, M.getI64(K + 2)));
  Value *D2 = B.createBinOp(Opcode::FAdd, D, M.getDouble(0.5), "d2");
  Value *Next = B.createAdd(I, M.getI64(1));
  Value *More = B.createICmp(CmpPred::SLT, Next, F->getArg(0));
  I->addIncoming(M.getI64(0), Entry);
  I->addIncoming(Next, Loop);
  for (int K = 0; K < 5; ++K) {
    A[K]->addIncoming(M.getI64(K), Entry);
    A[K]->addIncoming(U[K], Loop);
  }
  D->addIncoming(M.getDouble(0.0), Entry);
  D->addIncoming(D2, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  Value *S = U[0];
  for (int K = 1; K < 5; ++K)
    S = B.createAdd(S, U[K]);
  B.createRet(
      B.createAdd(S, B.createCast(Opcode::FPToSI, D2, IRType::getI64())));
  ASSERT_EQ(verifyModule(M), "");

  const std::int64_t N = 1000;
  std::int64_t Acc[5] = {0, 1, 2, 3, 4};
  double Dv = 0.0;
  for (std::int64_t It = 0; It < N; ++It) {
    for (int K = 0; K < 5; ++K)
      Acc[K] += It * (K + 2);
    Dv += 0.5;
  }
  std::int64_t Want = static_cast<std::int64_t>(Dv);
  for (int K = 0; K < 5; ++K)
    Want += Acc[K];

  ExecutionEngine EE(M, GetParam());
  EXPECT_EQ(EE.runFunction("acc", {RTValue::ofInt(N)}).I, Want);
}

TEST(InterpTest, BytecodeFusesSuperinstructions) {
  // A loop whose body is a[i] += expr and whose latch is cmp+condbr:
  // the bytecode engine must retire fewer instructions than the walker
  // and record superinstruction hits; checksums must still agree.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f", IRType::getI64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  Instruction *Arr = B.createAlloca(IRType::getI64(), M.getI64(64), "arr");
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *I = B.createPhi(IRType::getI64(), "i");
  Value *Slot = B.createGEP(IRType::getI64(), Arr, I);
  Value *Old = B.createLoad(IRType::getI64(), Slot, "old");
  B.createStore(B.createAdd(Old, I), Slot);
  Value *Next = B.createAdd(I, M.getI64(1));
  Value *Done = B.createICmp(CmpPred::SGE, Next, M.getI64(64));
  I->addIncoming(M.getI64(0), Entry);
  I->addIncoming(Next, Loop);
  B.createCondBr(Done, Exit, Loop);
  B.setInsertPoint(Exit);
  Value *P = B.createGEP(IRType::getI64(), Arr, M.getI64(63));
  B.createRet(B.createLoad(IRType::getI64(), P));
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine Walker(M, ExecEngineKind::Walker);
  ExecutionEngine Bytecode(M, ExecEngineKind::Bytecode);
  EXPECT_EQ(Walker.runFunction("f", {}).I, 63);
  EXPECT_EQ(Bytecode.runFunction("f", {}).I, 63);

  ExecStats WS = Walker.statsSnapshot();
  ExecStats BS = Bytecode.statsSnapshot();
  EXPECT_EQ(WS.SuperinstHits, 0u);
  EXPECT_GT(BS.SuperinstHits, 0u);
  EXPECT_GT(BS.SuperinstsEmitted, 0u);
  EXPECT_GT(BS.BytecodeBytes, 0u);
  // Fused instructions count once, so the bytecode engine retires
  // strictly fewer instructions for the same work.
  EXPECT_LT(BS.InstructionsExecuted, WS.InstructionsExecuted);
}

TEST(InterpTest, ExecStatsRender) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getI32(0));

  ExecutionEngine EE(M, ExecEngineKind::Bytecode);
  EE.runFunction("f", {});
  std::string S = EE.renderExecStats();
  EXPECT_NE(S.find("== execution engine statistics =="), std::string::npos);
  EXPECT_NE(S.find("engine:    bytecode"), std::string::npos);
  EXPECT_NE(S.find("frames=1"), std::string::npos);

  ExecutionEngine WE(M, ExecEngineKind::Walker);
  std::string W = WE.renderExecStats();
  EXPECT_NE(W.find("engine:    walker dispatch=tree-walk"),
            std::string::npos);
}

TEST(InterpTest, PrecompiledBytecodeIsReused) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getI32(7));

  auto BC = mcc::interp::bc::compileToBytecode(M);
  ExecutionEngine EE(M, ExecEngineKind::Bytecode, BC);
  EXPECT_EQ(EE.runFunction("f", {}).I, 7);
  // The engine adopted the shared translation instead of re-translating.
  EXPECT_FALSE(EE.statsSnapshot().TranslatedHere);
  ExecutionEngine Fresh(M, ExecEngineKind::Bytecode);
  EXPECT_TRUE(Fresh.statsSnapshot().TranslatedHere);
}

TEST(RuntimeTest, ThreadNumbersAreDense) {
  using namespace mcc::rt;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  std::set<int> Seen;
  std::mutex Mx;
  RT.forkCall(
      [&](int Tid) {
        std::lock_guard<std::mutex> Lock(Mx);
        EXPECT_EQ(RT.getThreadNum(), Tid);
        EXPECT_EQ(RT.getNumThreads(), 5);
        Seen.insert(Tid);
      },
      5);
  EXPECT_EQ(Seen.size(), 5u);
}

} // namespace
