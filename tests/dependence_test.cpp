//===--- dependence_test.cpp - Affine dependence-analysis tests ------------===//
//
// Unit coverage for the dependence analysis layer (DESIGN.md "Dependence
// analysis layer"): affine subscript extraction over canonical nests,
// distance/direction vector computation (flow/anti/output, negative
// steps, coupled subscripts), the transform-legality oracle
// (reverse/interchange/fuse), the parallel-conflict query the race
// linter uses, and the Sema gate that refuses illegal transforms with
// dependence-citing diagnostics.
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include "analysis/Analysis.h"
#include "analysis/DependenceAnalysis.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;
using analysis::DepDir;
using analysis::DepKind;
using analysis::Dependence;
using analysis::DependenceInfo;
using analysis::Legality;

namespace {

/// Analyzes the first for-loop of function \p Name.
DependenceInfo analyzeNest(Frontend &F, std::string_view Name,
                           unsigned MinDepth = 1) {
  ForStmt *For = F.findStmt<ForStmt>(Name);
  EXPECT_NE(For, nullptr);
  return DependenceInfo::analyze(For, MinDepth);
}

const Dependence *findDep(const DependenceInfo &DI, DepKind K) {
  for (const Dependence &D : DI.getDependences())
    if (D.Kind == K)
      return &D;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Distance/direction vectors
// ---------------------------------------------------------------------------

TEST(DependenceTest, FlowDependenceDistanceOne) {
  Frontend F(R"(
    void f() {
      int a[64];
      a[0] = 1;
      for (int i = 1; i < 64; i += 1)
        a[i] = a[i - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  EXPECT_EQ(DI.getDepth(), 1u);

  const Dependence *D = findDep(DI, DepKind::Flow);
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Dirs.size(), 1u);
  EXPECT_EQ(D->Dirs[0], DepDir::Lt);
  ASSERT_TRUE(D->Dist[0].has_value());
  EXPECT_EQ(*D->Dist[0], 1);
  EXPECT_EQ(D->carrierLevel(), 0u);
  EXPECT_FALSE(D->isLoopIndependent());
  EXPECT_TRUE(D->isExact());
  EXPECT_NE(D->describe().find("flow"), std::string::npos);
  EXPECT_NE(D->describe().find("'a'"), std::string::npos);
}

TEST(DependenceTest, AntiDependence) {
  Frontend F(R"(
    void f() {
      int a[65];
      for (int i = 0; i < 64; i += 1)
        a[i] = a[i + 1] * 2;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());

  // Read of a[i+1] at iteration i precedes the write at iteration i+1:
  // an anti dependence of distance 1 (vectors are canonicalized to
  // lexicographic non-negativity).
  const Dependence *D = findDep(DI, DepKind::Anti);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Dirs[0], DepDir::Lt);
  ASSERT_TRUE(D->Dist[0].has_value());
  EXPECT_EQ(*D->Dist[0], 1);
  EXPECT_EQ(findDep(DI, DepKind::Flow), nullptr);
}

TEST(DependenceTest, OutputDependence) {
  Frontend F(R"(
    void f() {
      int a[65];
      for (int i = 0; i < 64; i += 1) {
        a[i] = i;
        a[i + 1] = i * 2;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());

  const Dependence *D = findDep(DI, DepKind::Output);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Dirs[0], DepDir::Lt);
  ASSERT_TRUE(D->Dist[0].has_value());
  EXPECT_EQ(*D->Dist[0], 1);
}

// A descending loop writing a[i] and reading a[i-1]: in *execution*
// order the read happens before the write of the same cell (i-1 comes
// one iteration later), so the logical-space dependence is anti, not
// flow. This is exactly the normalization reverse/interchange rely on.
TEST(DependenceTest, NegativeStepNormalizesToLogicalSpace) {
  Frontend F(R"(
    void f() {
      int a[65];
      for (int i = 64; i > 0; i -= 1)
        a[i] = a[i - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  ASSERT_EQ(DI.getLoops().size(), 1u);
  EXPECT_EQ(DI.getLoops()[0].Step, -1);

  const Dependence *D = findDep(DI, DepKind::Anti);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Dirs[0], DepDir::Lt);
  ASSERT_TRUE(D->Dist[0].has_value());
  EXPECT_EQ(*D->Dist[0], 1);
  EXPECT_EQ(findDep(DI, DepKind::Flow), nullptr);
}

// Coupled subscript a[i+j]: the dependence between a[i+j] and
// a[i+j-1] has no single constant distance vector — the direction at
// the inner level depends on the outer one, so (<,*) is the sound
// summary.
TEST(DependenceTest, CoupledSubscriptsYieldDirectionVectors) {
  Frontend F(R"(
    void f() {
      int a[128];
      a[0] = 1;
      for (int i = 0; i < 16; i += 1)
        for (int j = 1; j < 16; j += 1)
          a[i + j] = a[i + j - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f", 2);
  ASSERT_TRUE(DI.isAnalyzable());
  EXPECT_EQ(DI.getDepth(), 2u);

  const Dependence *D = findDep(DI, DepKind::Flow);
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Dirs.size(), 2u);
  // Some level must admit uncertainty or a carried direction; the exact
  // encoding may be a '*' or a per-combination record, but it must not
  // claim full independence.
  EXPECT_FALSE(D->isLoopIndependent());
}

TEST(DependenceTest, IndependentInjectiveWritesProduceNoDeps) {
  Frontend F(R"(
    void f() {
      int a[512];
      for (int i = 0; i < 16; i += 1)
        for (int j = 0; j < 32; j += 1)
          a[i * 32 + j] = i + j;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f", 2);
  ASSERT_TRUE(DI.isAnalyzable());
  EXPECT_EQ(DI.getDepth(), 2u);
  EXPECT_TRUE(DI.getDependences().empty());
  EXPECT_GE(DI.getNumAnalyzableAccesses(), 1u);
}

// ---------------------------------------------------------------------------
// Transform-legality oracle
// ---------------------------------------------------------------------------

TEST(DependenceLegalityTest, ReverseLegalOnIndependentLoop) {
  Frontend F(R"(
    void f() {
      int a[64];
      for (int i = 0; i < 64; i += 1)
        a[i] = 2 * i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  Legality L = DI.isLegalReverse(0);
  EXPECT_TRUE(L.Legal) << L.Reason;
}

TEST(DependenceLegalityTest, ReverseIllegalUnderCarriedDependence) {
  Frontend F(R"(
    void f() {
      int a[64];
      a[0] = 1;
      for (int i = 1; i < 64; i += 1)
        a[i] = a[i - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());

  Legality L = DI.isLegalReverse(0);
  EXPECT_FALSE(L.Legal);
  ASSERT_NE(L.Blocking, nullptr);
  EXPECT_EQ(L.Blocking->Base->getName(), "a");
  EXPECT_FALSE(L.Reason.empty());
}

TEST(DependenceLegalityTest, InterchangeLegalForPureSwapSafeNest) {
  Frontend F(R"(
    void f() {
      int a[512];
      for (int i = 0; i < 16; i += 1)
        for (int j = 0; j < 32; j += 1)
          a[i * 32 + j] = a[i * 32 + j] * 2;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f", 2);
  ASSERT_TRUE(DI.isAnalyzable());
  Legality L = DI.isLegalInterchange(0, 1);
  EXPECT_TRUE(L.Legal) << L.Reason;
}

// a[i+j] = a[i+j-1]: the dependence set contains a (<,>)-style
// component (source (i,j), sink (i+1,j-1)), which interchange would
// flip lexicographically negative — must be refused.
TEST(DependenceLegalityTest, InterchangeIllegalOnSkewedDependence) {
  Frontend F(R"(
    void f() {
      int a[128];
      a[0] = 1;
      for (int i = 0; i < 16; i += 1)
        for (int j = 1; j < 16; j += 1)
          a[i + j] = a[i + j - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f", 2);
  ASSERT_TRUE(DI.isAnalyzable());

  Legality Swap = DI.isLegalInterchange(0, 1);
  EXPECT_FALSE(Swap.Legal);

  const unsigned Perm[] = {1, 0};
  Legality Full = DI.isLegalInterchange(Perm);
  EXPECT_FALSE(Full.Legal);
  // The identity permutation is trivially fine.
  const unsigned Id[] = {0, 1};
  EXPECT_TRUE(DI.isLegalInterchange(Id).Legal);
}

TEST(DependenceLegalityTest, CallsBlockTheOracle) {
  Frontend F(R"(
    void body(int x);
    void f() {
      int a[64];
      for (int i = 0; i < 64; i += 1) {
        a[i] = i;
        body(i);
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  EXPECT_TRUE(DI.hasCall());
  Legality L = DI.isLegalReverse(0);
  EXPECT_FALSE(L.Legal);
  EXPECT_NE(L.Reason.find("call"), std::string::npos);
}

TEST(DependenceLegalityTest, FuseLegalForForwardProducerConsumer) {
  Frontend F(R"(
    void f() {
      int a[64];
      int b[64];
      for (int i = 0; i < 64; i += 1)
        a[i] = 2 * i;
      for (int k = 0; k < 64; k += 1)
        b[k] = a[k] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Body = stmt_dyn_cast<CompoundStmt>(F.getFunction("f")->getBody());
  ASSERT_NE(Body, nullptr);
  std::vector<ForStmt *> Loops;
  for (Stmt *S : Body->body())
    if (auto *For = stmt_dyn_cast<ForStmt>(S))
      Loops.push_back(For);
  ASSERT_EQ(Loops.size(), 2u);

  DependenceInfo First = DependenceInfo::analyze(Loops[0]);
  DependenceInfo Second = DependenceInfo::analyze(Loops[1]);
  ASSERT_TRUE(First.isAnalyzable());
  ASSERT_TRUE(Second.isAnalyzable());
  Legality L = DependenceInfo::isLegalFuse(First, Second);
  EXPECT_TRUE(L.Legal) << L.Reason;
}

// The second loop reads a[k+1], written by a *later* iteration of the
// fused loop — fusing would read the new value where the original
// program read the old one.
TEST(DependenceLegalityTest, FuseIllegalOnBackwardDependence) {
  Frontend F(R"(
    void f() {
      int a[65];
      int b[64];
      for (int i = 0; i < 65; i += 1)
        a[i] = 2 * i;
      for (int k = 0; k < 64; k += 1)
        b[k] = a[k + 1];
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Body = stmt_dyn_cast<CompoundStmt>(F.getFunction("f")->getBody());
  ASSERT_NE(Body, nullptr);
  std::vector<ForStmt *> Loops;
  for (Stmt *S : Body->body())
    if (auto *For = stmt_dyn_cast<ForStmt>(S))
      Loops.push_back(For);
  ASSERT_EQ(Loops.size(), 2u);

  DependenceInfo First = DependenceInfo::analyze(Loops[0]);
  DependenceInfo Second = DependenceInfo::analyze(Loops[1]);
  Legality L = DependenceInfo::isLegalFuse(First, Second);
  EXPECT_FALSE(L.Legal);
  EXPECT_FALSE(L.Reason.empty());
}

TEST(DependenceLegalityTest, DistributeLegalWithSingleStatementBody) {
  Frontend F(R"(
    void f() {
      int a[64];
      for (int i = 0; i < 64; i += 1)
        a[i] = 2 * i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  Legality L = DI.isLegalDistribute();
  EXPECT_TRUE(L.Legal) << L.Reason;
}

// Group 2 reads what group 1 wrote in the same iteration: after
// distribution the producer loop finishes before the consumer loop
// starts, which only strengthens the ordering.
TEST(DependenceLegalityTest, DistributeLegalOnForwardGroupDependence) {
  Frontend F(R"(
    void f() {
      int a[64];
      int b[64];
      for (int i = 0; i < 64; i += 1) {
        a[i] = 2 * i;
        b[i] = a[i] + 1;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  Legality L = DI.isLegalDistribute();
  EXPECT_TRUE(L.Legal) << L.Reason;
}

// Group 1 reads a[i-1], written by group 2 in the *previous* iteration.
// Distributing would run all of group 1 before any of group 2, so every
// read past the first would miss its producer: the backward (group 2 →
// group 1) carried flow dependence makes distribution illegal.
TEST(DependenceLegalityTest, DistributeIllegalOnBackwardGroupDependence) {
  Frontend F(R"(
    void f() {
      int a[64];
      int b[64];
      a[0] = 1;
      for (int i = 1; i < 64; i += 1) {
        b[i] = a[i - 1] * 2;
        a[i] = i;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  Legality L = DI.isLegalDistribute();
  EXPECT_FALSE(L.Legal);
  ASSERT_NE(L.Blocking, nullptr);
  EXPECT_EQ(L.Blocking->Base->getName(), "a");
  EXPECT_NE(L.Reason.find("group"), std::string::npos) << L.Reason;
}

// ---------------------------------------------------------------------------
// Parallel-conflict query (race-linter backend)
// ---------------------------------------------------------------------------

TEST(DependenceParallelTest, CarriedDependenceIsAConflict) {
  Frontend F(R"(
    void f() {
      int a[64];
      a[0] = 1;
      for (int i = 1; i < 64; i += 1)
        a[i] = a[i - 1] + 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  const Dependence *C = DI.findParallelConflict(1);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Base->getName(), "a");
}

TEST(DependenceParallelTest, InjectiveWritesHaveNoConflict) {
  Frontend F(R"(
    void f() {
      int a[64];
      for (int i = 0; i < 64; i += 1)
        a[i] = 2 * i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  DependenceInfo DI = analyzeNest(F, "f");
  ASSERT_TRUE(DI.isAnalyzable());
  EXPECT_EQ(DI.findParallelConflict(1), nullptr);
}

// ---------------------------------------------------------------------------
// Sema gate: reverse / interchange refusal with dependence-citing
// diagnostics, in both pipelines
// ---------------------------------------------------------------------------

const char *IllegalReverseProgram = R"(
  void f() {
    int a[64];
    a[0] = 1;
    #pragma omp reverse
    for (int i = 1; i < 64; i += 1)
      a[i] = a[i - 1] + 1;
  }
)";

TEST(TransformGateTest, IllegalReverseRefusedWithDependenceNote) {
  Frontend F(IllegalReverseProgram);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_illegal_dep));
  auto Errors = F.diagsWithID(diag::err_omp_transform_illegal_dep);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("reverse"), std::string::npos);
  EXPECT_NE(Errors[0].Message.find("'a'"), std::string::npos);
  auto Notes = F.diagsWithID(diag::note_omp_dependence_source);
  ASSERT_GE(Notes.size(), 1u);
  EXPECT_TRUE(Notes[0].Loc.isValid());
}

TEST(TransformGateTest, IllegalReverseRefusedInIRBuilderMode) {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  Frontend F(IllegalReverseProgram, LO);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_illegal_dep));
}

TEST(TransformGateTest, LegalReverseBuildsShadowAST) {
  Frontend F(R"(
    void f() {
      int a[64];
      #pragma omp reverse
      for (int i = 0; i < 64; i += 1)
        a[i] = a[i] + i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Rev = F.findStmt<OMPReverseDirective>("f");
  ASSERT_NE(Rev, nullptr);
  EXPECT_NE(Rev->getTransformedStmt(), nullptr);
}

TEST(TransformGateTest, IllegalInterchangeRefused) {
  Frontend F(R"(
    void f() {
      int a[128];
      a[0] = 1;
      #pragma omp interchange
      for (int i = 0; i < 16; i += 1)
        for (int j = 1; j < 16; j += 1)
          a[i + j] = a[i + j - 1] + 1;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_illegal_dep));
  auto Errors = F.diagsWithID(diag::err_omp_transform_illegal_dep);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("interchange"), std::string::npos);
}

TEST(TransformGateTest, UnanalyzableNestRefusedConservatively) {
  Frontend F(R"(
    int g(int x);
    void f() {
      int a[64];
      #pragma omp reverse
      for (int i = 0; i < 64; i += 1)
        a[i] = g(i);
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_not_analyzable));
  EXPECT_FALSE(F.hasDiag(diag::err_omp_transform_illegal_dep));
}

// ---------------------------------------------------------------------------
// Sema gate: fuse / distribute_loop legality, in both pipelines
// ---------------------------------------------------------------------------

const char *LegalFuseProgram = R"(
  void f() {
    int a[64];
    int b[64];
    #pragma omp fuse
    {
      for (int i = 0; i < 64; i += 1)
        a[i] = 2 * i;
      for (int k = 0; k < 64; k += 1)
        b[k] = a[k] + 1;
    }
  }
)";

TEST(TransformGateTest, LegalFuseBuildsShadowAST) {
  Frontend F(LegalFuseProgram);
  ASSERT_EQ(F.errors(), 0u);
  auto *Fuse = F.findStmt<OMPFuseDirective>("f");
  ASSERT_NE(Fuse, nullptr);
  EXPECT_NE(Fuse->getTransformedStmt(), nullptr);
}

TEST(TransformGateTest, LegalFuseAcceptedInIRBuilderMode) {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  Frontend F(LegalFuseProgram, LO);
  ASSERT_EQ(F.errors(), 0u);
  auto *Fuse = F.findStmt<OMPFuseDirective>("f");
  ASSERT_NE(Fuse, nullptr);
  // IRBuilder mode composes on canonical-loop handles at codegen time;
  // no shadow AST is materialized.
  EXPECT_EQ(Fuse->getTransformedStmt(), nullptr);
}

// The second member reads a[k+1], written by a later iteration of the
// fused loop: inter-member legality cannot be established, so the gate
// refuses conservatively in both pipelines.
const char *BlockedFuseProgram = R"(
  void f() {
    int a[65];
    int b[64];
    #pragma omp fuse
    {
      for (int i = 0; i < 65; i += 1)
        a[i] = 2 * i;
      for (int k = 0; k < 64; k += 1)
        b[k] = a[k + 1];
    }
  }
)";

TEST(TransformGateTest, DependenceBlockedFuseRefused) {
  Frontend F(BlockedFuseProgram);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_not_analyzable));
  auto Errors = F.diagsWithID(diag::err_omp_transform_not_analyzable);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("fuse"), std::string::npos);
}

TEST(TransformGateTest, DependenceBlockedFuseRefusedInIRBuilderMode) {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  Frontend F(BlockedFuseProgram, LO);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_not_analyzable));
}

TEST(TransformGateTest, UnanalyzableFuseMemberRefusedConservatively) {
  Frontend F(R"(
    int g(int x);
    void f() {
      int a[64];
      int b[64];
      #pragma omp fuse
      {
        for (int i = 0; i < 64; i += 1)
          a[i] = g(i);
        for (int k = 0; k < 64; k += 1)
          b[k] = k;
      }
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_not_analyzable));
  EXPECT_FALSE(F.hasDiag(diag::err_omp_transform_illegal_dep));
}

// looprange(3, 2) selects loops 3..4 but only 3 siblings follow.
TEST(TransformGateTest, LooprangeOutOfRangeDiagnosed) {
  Frontend F(R"(
    void f() {
      int a[64];
      int b[64];
      int c[64];
      #pragma omp fuse looprange(3, 2)
      {
        for (int i = 0; i < 64; i += 1)
          a[i] = i;
        for (int k = 0; k < 64; k += 1)
          b[k] = k;
        for (int m = 0; m < 64; m += 1)
          c[m] = m;
      }
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_looprange_out_of_range));
}

const char *BlockedDistributeProgram = R"(
  void f() {
    int a[64];
    int b[64];
    a[0] = 1;
    #pragma omp distribute_loop
    for (int i = 1; i < 64; i += 1) {
      b[i] = a[i - 1] * 2;
      a[i] = i;
    }
  }
)";

TEST(TransformGateTest, BackwardDependenceBlockedDistributeRefused) {
  Frontend F(BlockedDistributeProgram);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_illegal_dep));
  auto Errors = F.diagsWithID(diag::err_omp_transform_illegal_dep);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("distribute"), std::string::npos);
  EXPECT_NE(Errors[0].Message.find("'a'"), std::string::npos);
  auto Notes = F.diagsWithID(diag::note_omp_dependence_source);
  ASSERT_GE(Notes.size(), 1u);
  EXPECT_TRUE(Notes[0].Loc.isValid());
}

TEST(TransformGateTest, BlockedDistributeRefusedInIRBuilderMode) {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  Frontend F(BlockedDistributeProgram, LO);
  EXPECT_TRUE(F.hasDiag(diag::err_omp_transform_illegal_dep));
}

TEST(TransformGateTest, LegalDistributeBuildsShadowAST) {
  Frontend F(R"(
    void f() {
      int a[64];
      int b[64];
      #pragma omp distribute_loop
      for (int i = 0; i < 64; i += 1) {
        a[i] = 2 * i;
        b[i] = a[i] + 1;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Dist = F.findStmt<OMPDistributeLoopDirective>("f");
  ASSERT_NE(Dist, nullptr);
  EXPECT_NE(Dist->getTransformedStmt(), nullptr);
}

// Fuse composes with a preceding transform: the first member is itself
// a tile directive, so the fuse oracle must analyze the *post-transform*
// shadow loop it produces.
TEST(TransformGateTest, FuseAcceptsTiledMember) {
  const char *Source = R"(
    void f() {
      int a[64];
      int b[64];
      #pragma omp fuse
      {
        #pragma omp tile sizes(4)
        for (int i = 0; i < 64; i += 1)
          a[i] = i;
        for (int k = 0; k < 16; k += 1)
          b[k] = k;
      }
    }
  )";
  {
    Frontend F(Source);
    EXPECT_EQ(F.errors(), 0u);
  }
  {
    LangOptions LO;
    LO.OpenMPEnableIRBuilder = true;
    Frontend F(Source, LO);
    EXPECT_EQ(F.errors(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Index-aware race linter (the ISSUE acceptance scenario)
// ---------------------------------------------------------------------------

void runLinters(Frontend &F) {
  ASSERT_NE(F.TU, nullptr);
  analysis::AnalysisManager AM(F.Ctx, F.Diags);
  analysis::registerDefaultAnalyses(AM, /*EnableLinters=*/true,
                                    /*EnableVerifier=*/false);
  AM.run(F.TU);
}

TEST(IndexAwareRaceLintTest, FlagsCarriedArrayDependence) {
  Frontend F(R"(
    void f(int x) {
      int a[64];
      a[0] = x;
      #pragma omp parallel for
      for (int i = 1; i < 64; i += 1)
        a[i] = a[i - 1] + x;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runLinters(F);
  auto Warnings = F.diagsWithID(diag::warn_analysis_array_write_race);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].Message.find("'a'"), std::string::npos);
  EXPECT_NE(Warnings[0].Message.find("parallel for"), std::string::npos);
  EXPECT_TRUE(Warnings[0].Loc.isValid());
}

TEST(IndexAwareRaceLintTest, InjectiveWritesDoNotWarn) {
  Frontend F(R"(
    void f(int x) {
      int a[64];
      #pragma omp parallel for
      for (int i = 0; i < 64; i += 1)
        a[i] = a[i] + x;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runLinters(F);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_array_write_race));
  EXPECT_EQ(F.warnings(), 0u);
}

// Satellite observability: writes the analysis cannot model surface a
// remark instead of silently passing.
TEST(IndexAwareRaceLintTest, UnanalyzableWriteEmitsSkipRemark) {
  Frontend F(R"(
    void f(int x) {
      int a[64];
      int b[64];
      #pragma omp parallel for
      for (int i = 0; i < 64; i += 1)
        a[b[i]] = x;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runLinters(F);
  EXPECT_TRUE(F.hasDiag(diag::remark_analysis_write_skipped));
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_array_write_race));
}

} // namespace
