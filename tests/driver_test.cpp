//===--- driver_test.cpp - CompilerInstance & minicc driver behavior ------===//
#include "ExecutionTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

TEST(DriverTest, CompileSourceFullPipeline) {
  CompilerInstance CI;
  EXPECT_TRUE(CI.compileSource("int main() { return 7; }"));
  EXPECT_NE(CI.getIRModule(), nullptr);
  EXPECT_NE(CI.getIRText().find("define i32 @main"), std::string::npos);
}

TEST(DriverTest, ParseErrorsReported) {
  CompilerInstance CI;
  EXPECT_FALSE(CI.compileSource("int main() { return ; }"));
  std::string Diags = CI.renderDiagnostics();
  EXPECT_NE(Diags.find("error:"), std::string::npos);
  EXPECT_NE(Diags.find("input.c:"), std::string::npos);
}

TEST(DriverTest, DiagnosticsCarryCaretLines) {
  CompilerInstance CI;
  CI.addVirtualFile("main.c", "int main() { return x; }\n");
  EXPECT_FALSE(CI.parseToAST("main.c"));
  std::string Diags = CI.renderDiagnostics();
  EXPECT_NE(Diags.find("use of undeclared identifier 'x'"),
            std::string::npos);
  EXPECT_NE(Diags.find("^"), std::string::npos);
}

TEST(DriverTest, MissingMainFile) {
  CompilerInstance CI;
  EXPECT_FALSE(CI.parseToAST("nope.c"));
}

TEST(DriverTest, DefinesReachThePreprocessor) {
  CompilerOptions Options;
  Options.Defines.emplace_back("LIMIT", "21");
  CompilerInstance CI(Options);
  EXPECT_TRUE(CI.compileSource("int main() { return LIMIT * 2; }"));
  interp::ExecutionEngine EE(*CI.getIRModule());
  EXPECT_EQ(EE.runFunction("main", {}).I, 42);
}

TEST(DriverTest, IncludeDirsSearched) {
  CompilerOptions Options;
  Options.IncludeDirs.push_back("inc");
  CompilerInstance CI(Options);
  CI.addVirtualFile("inc/defs.h", "#define BASE 40\n");
  CI.addVirtualFile("main.c",
                    "#include <defs.h>\nint main() { return BASE + 2; }\n");
  ASSERT_TRUE(CI.parseToAST("main.c"));
  ASSERT_TRUE(CI.emitIR());
  interp::ExecutionEngine EE(*CI.getIRModule());
  EXPECT_EQ(EE.runFunction("main", {}).I, 42);
}

TEST(DriverTest, OpenMPCanBeDisabled) {
  CompilerOptions Options;
  Options.LangOpts.OpenMP = false;
  CompilerInstance CI(Options);
  // Pragma is discarded: the loop runs serially, no runtime calls appear.
  EXPECT_TRUE(CI.compileSource(R"(
    int main() {
      int s = 0;
      #pragma omp parallel for
      for (int i = 0; i < 10; ++i) s += i;
      return s;
    }
  )"));
  EXPECT_EQ(CI.getIRText().find("__kmpc_fork_call"), std::string::npos);
  interp::ExecutionEngine EE(*CI.getIRModule());
  EXPECT_EQ(EE.runFunction("main", {}).I, 45);
}

TEST(DriverTest, InvalidIRWouldBeRejected) {
  // The verifier gate: all pipelines must produce verifiable IR for a
  // directive-heavy program.
  for (bool IRB : {false, true}) {
    CompilerOptions Options;
    Options.LangOpts.OpenMPEnableIRBuilder = IRB;
    Options.RunMidend = true;
    CompilerInstance CI(Options);
    EXPECT_TRUE(CI.compileSource(R"(
      int out = 0;
      int main() {
        #pragma omp parallel for schedule(dynamic, 3) reduction(+: out)
        #pragma omp tile sizes(4)
        #pragma omp unroll partial(2)
        for (int i = 0; i < 50; ++i)
          out += i;
        return out;
      }
    )")) << "irbuilder=" << IRB << "\n"
         << CI.renderDiagnostics();
  }
}

TEST(DriverTest, CollapseOverSingleLoopUnrollDiagnosed) {
  // collapse(2) cannot find a second loop inside the unroll-generated one.
  CompilerInstance CI;
  EXPECT_FALSE(CI.compileSource(R"(
    int main() {
      int s = 0;
      #pragma omp parallel for collapse(2)
      #pragma omp unroll partial(2)
      for (int i = 0; i < 10; ++i)
        s += i;
      return s;
    }
  )"));
  std::string Diags = CI.renderDiagnostics();
  EXPECT_NE(Diags.find("canonical loops"), std::string::npos);
}

TEST(DriverTest, MidendStatsExposed) {
  CompilerOptions Options;
  Options.RunMidend = true;
  CompilerInstance CI(Options);
  EXPECT_TRUE(CI.compileSource(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll partial(4)
      for (int i = 0; i < 16; ++i) acc += i;
      return acc;
    }
  )"));
  EXPECT_GE(CI.getMidendStats().Unroll.LoopsUnrolled, 1u);
}

TEST(DriverTest, HeuristicUnrollFactorOption) {
  // LangOptions::HeuristicUnrollFactor drives the consumed-heuristic case.
  CompilerOptions Options;
  Options.LangOpts.HeuristicUnrollFactor = 3;
  CompilerInstance CI(Options);
  EXPECT_TRUE(CI.compileSource(R"(
    int s = 0;
    int main() {
      #pragma omp parallel for
      #pragma omp unroll
      for (int i = 0; i < 9; ++i) s += 1;
      return s;
    }
  )"));
  // The warning names the forced factor.
  bool Found = false;
  for (const Diagnostic &D : CI.getDiagStore().getDiagnostics())
    if (D.ID == diag::warn_omp_unroll_factor_forced &&
        D.Message.find("3") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(DriverTest, RuntimeStatsObservableAfterRun) {
  // The --rt-stats surface: reset the runtime (the interp hook the driver
  // and deterministic tests share), execute an OpenMP program, and check
  // the counters describe exactly what ran.
  interp::ExecutionEngine::resetOpenMPRuntime();
  CompilerOptions Options;
  Options.LangOpts.OpenMPDefaultNumThreads = 4;
  Execution E(R"(
    int main() {
      int sum = 0;
      for (int rep = 0; rep < 3; ++rep) {
        #pragma omp parallel for reduction(+:sum) schedule(dynamic, 5)
        for (int i = 0; i < 40; ++i) sum += 1;
      }
      return sum;
    }
  )",
              Options);
  EXPECT_EQ(E.runMain(), 120);

  rt::OpenMPRuntime::StatsSnapshot S =
      rt::OpenMPRuntime::get().statsSnapshot();
  EXPECT_EQ(S.NumForkJoins, 3u);
  EXPECT_EQ(S.NumHotTeamForks, 3u);
  EXPECT_EQ(S.NumTeamReuses, 2u);
  EXPECT_EQ(S.NumPoolThreadsSpawned, 3u);
  // 3 regions x ceil(40/5) chunks.
  EXPECT_EQ(S.NumChunksDynamic, 24u);

  std::string Text = rt::OpenMPRuntime::get().renderStats();
  EXPECT_NE(Text.find("total=3"), std::string::npos) << Text;
  EXPECT_NE(Text.find("dynamic=24"), std::string::npos) << Text;
}

} // namespace
