//===--- composition_test.cpp - E9: directive composition equivalence -----===//
//
// The paper's central semantic claims, validated end-to-end by executing
// generated code under all four pipeline configurations (legacy shadow-AST
// and IRBuilder mode, each with and without the mid-end):
//
//   * "#pragma omp parallel for" over "#pragma omp unroll partial(2)" is
//     semantically equivalent to the manually unrolled loop (Section 1.1);
//   * transformations apply in reverse order of their appearance;
//   * tiling preserves the iteration *set*; worksharing executes every
//     iteration exactly once; reductions combine correctly.
//
//===----------------------------------------------------------------------===//
#include "ExecutionTestHelper.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mcc;
using namespace mcc::test;

namespace {

TEST(CompositionTest, ParallelForPlusUnrollEqualsManualUnroll) {
  // The exact example of the paper's Section 1.1. With N not divisible by
  // the unroll factor, the remainder conditional matters.
  const char *Directive = R"(
    int N = 17;
    long sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      #pragma omp unroll partial(2)
      for (int i = 0; i < N; i += 1)
        sum += i * i;
      long r = sum;
      int out = r;
      return out;
    }
  )";
  const char *Manual = R"(
    int N = 17;
    long sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      for (int i = 0; i < N; i += 2) {
        sum += i * i;
        if (i + 1 < N) sum += (i + 1) * (i + 1);
      }
      long r = sum;
      int out = r;
      return out;
    }
  )";
  std::int64_t Expected = 0;
  for (int I = 0; I < 17; ++I)
    Expected += I * I;
  expectAllPipelinesReturn(Directive, Expected);
  expectAllPipelinesReturn(Manual, Expected);
}

TEST(CompositionTest, StackedUnrollFullOverPartial) {
  // Paper Listing 6: unroll full consuming the partially unrolled loop.
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll full
      #pragma omp unroll partial(2)
      for (int i = 7; i < 17; i += 3)
        acc += i;
      return acc;
    }
  )",
                           7 + 10 + 13 + 16);
}

TEST(CompositionTest, UnrollPartialAlone) {
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll partial(4)
      for (int i = 0; i < 10; ++i)
        acc += i + 1;
      return acc;
    }
  )",
                           55);
}

TEST(CompositionTest, UnrollPartialNonUnitStepDownward) {
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll partial(3)
      for (int i = 20; i > 0; i -= 4)
        acc += i;
      return acc;
    }
  )",
                           20 + 16 + 12 + 8 + 4);
}

TEST(CompositionTest, UnrollFullAlone) {
  expectAllPipelinesReturn(R"(
    int acc = 1;
    int main() {
      #pragma omp unroll full
      for (int i = 1; i <= 5; ++i)
        acc *= i;
      return acc;
    }
  )",
                           120);
}

TEST(CompositionTest, UnrollHeuristicAlone) {
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll
      for (int i = 0; i < 23; ++i)
        acc += 2;
      return acc;
    }
  )",
                           46);
}

TEST(CompositionTest, TilePreservesIterationSet) {
  // Record the visited (i, j) pairs; tiling permutes but preserves them.
  const char *Source = R"(
    void record(long v);
    int main() {
      #pragma omp tile sizes(3, 5)
      for (int i = 0; i < 7; ++i)
        for (int j = 0; j < 11; ++j)
          record(i * 100 + j);
      return 0;
    }
  )";
  std::vector<std::int64_t> Expected;
  for (int I = 0; I < 7; ++I)
    for (int J = 0; J < 11; ++J)
      Expected.push_back(I * 100 + J);

  for (bool IRB : {false, true}) {
    CompilerOptions O;
    O.LangOpts.OpenMPEnableIRBuilder = IRB;
    Execution E(Source, O);
    E.runMain();
    std::vector<std::int64_t> Got = E.Recorded;
    std::sort(Got.begin(), Got.end());
    EXPECT_EQ(Got, Expected) << "irbuilder=" << IRB;
  }
}

TEST(CompositionTest, TileVisitsTilesInBlockedOrder) {
  // For one loop of 6 with size 2 the visit order is exactly blocked:
  // (0,1),(2,3),(4,5) — same as original here, but for 2D the order
  // differs from row-major: check the first tile is completed first.
  const char *Source = R"(
    void record(long v);
    int main() {
      #pragma omp tile sizes(2, 2)
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          record(i * 10 + j);
      return 0;
    }
  )";
  for (bool IRB : {false, true}) {
    CompilerOptions O;
    O.LangOpts.OpenMPEnableIRBuilder = IRB;
    Execution E(Source, O);
    E.runMain();
    ASSERT_EQ(E.Recorded.size(), 16u);
    // First four visits are the first 2x2 tile.
    std::vector<std::int64_t> FirstTile(E.Recorded.begin(),
                                        E.Recorded.begin() + 4);
    EXPECT_EQ(FirstTile, (std::vector<std::int64_t>{0, 1, 10, 11}))
        << "irbuilder=" << IRB;
  }
}

TEST(CompositionTest, ParallelForOverTile) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      #pragma omp tile sizes(8)
      for (int i = 0; i < 50; ++i)
        sum += i;
      return sum;
    }
  )",
                           49 * 50 / 2);
}

TEST(CompositionTest, ForOverTileTwoLoops) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for collapse(2) reduction(+: sum)
      #pragma omp tile sizes(4, 4)
      for (int i = 0; i < 10; ++i)
        for (int j = 0; j < 14; ++j)
          sum += i * j;
      return sum;
    }
  )",
                           45 * 91);
}

TEST(CompositionTest, Collapse2WorkshareCoversAll) {
  expectAllPipelinesReturn(R"(
    int hits[60];
    int main() {
      #pragma omp parallel for collapse(2)
      for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 10; ++j)
          hits[i * 10 + j] += 1;
      int bad = 0;
      for (int k = 0; k < 60; ++k)
        if (hits[k] != 1) bad += 1;
      return bad;
    }
  )",
                           0);
}

TEST(CompositionTest, TileOverUnrollPartial) {
  // Reverse-order application: the tile consumes the loop generated by
  // unroll.
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp tile sizes(4)
      #pragma omp unroll partial(2)
      for (int i = 0; i < 37; ++i)
        acc += i;
      return acc;
    }
  )",
                           36 * 37 / 2);
}

TEST(CompositionTest, UnrollPartialOverTile) {
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp unroll partial(2)
      #pragma omp tile sizes(8)
      for (int i = 0; i < 30; ++i)
        acc += i;
      return acc;
    }
  )",
                           29 * 30 / 2);
}

struct ScheduleCase {
  const char *Schedule;
  int Threads;
};

class ScheduleSweep : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleSweep, EveryIterationExactlyOnce) {
  const ScheduleCase &C = GetParam();
  std::string Source = R"(
    int hits[97];
    int main() {
      #pragma omp parallel for schedule()" +
                       std::string(C.Schedule) + R"()
      for (int i = 0; i < 97; ++i)
        hits[i] += 1;
      int bad = 0;
      for (int k = 0; k < 97; ++k)
        if (hits[k] != 1) bad += 1;
      return bad;
    }
  )";
  for (bool IRB : {false, true}) {
    CompilerOptions O;
    O.LangOpts.OpenMPEnableIRBuilder = IRB;
    O.LangOpts.OpenMPDefaultNumThreads = static_cast<unsigned>(C.Threads);
    Execution E(Source, O);
    EXPECT_EQ(E.runMain(), 0)
        << "schedule=" << C.Schedule << " threads=" << C.Threads
        << " irbuilder=" << IRB;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleSweep,
    ::testing::Values(ScheduleCase{"static", 1}, ScheduleCase{"static", 4},
                      ScheduleCase{"static, 7", 4},
                      ScheduleCase{"dynamic", 4},
                      ScheduleCase{"dynamic, 5", 3},
                      ScheduleCase{"guided", 4},
                      ScheduleCase{"guided, 2", 8}));

TEST(CompositionTest, ReductionOperators) {
  expectAllPipelinesReturn(R"(
    int mx = -1000;
    int mn = 1000;
    int main() {
      #pragma omp parallel for reduction(max: mx) reduction(min: mn)
      for (int i = 0; i < 40; ++i) {
        int v = (i * 7) % 23 - 11;
        mx = mx > v ? mx : v;
        mn = mn < v ? mn : v;
      }
      return mx * 100 + (mn + 50);
    }
  )",
                           [] {
                             int Mx = -1000, Mn = 1000;
                             for (int I = 0; I < 40; ++I) {
                               int V = (I * 7) % 23 - 11;
                               Mx = std::max(Mx, V);
                               Mn = std::min(Mn, V);
                             }
                             return Mx * 100 + (Mn + 50);
                           }());
}

TEST(CompositionTest, PrivateAndFirstprivate) {
  expectAllPipelinesReturn(R"(
    int base = 100;
    int sum = 0;
    int main() {
      #pragma omp parallel for firstprivate(base) reduction(+: sum)
      for (int i = 0; i < 10; ++i) {
        int local = base + i;
        sum += local;
      }
      return sum;
    }
  )",
                           10 * 100 + 45);
}

TEST(CompositionTest, ParallelPlusInnerFor) {
  // Orphaned-style composition: parallel region containing a worksharing
  // loop directive.
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel
      {
        #pragma omp for reduction(+: sum)
        for (int i = 0; i < 64; ++i)
          sum += 1;
      }
      return sum;
    }
  )",
                           64);
}

TEST(CompositionTest, SimdLoopExecutesSerially) {
  expectAllPipelinesReturn(R"(
    int acc = 0;
    int main() {
      #pragma omp simd
      for (int i = 0; i < 16; ++i)
        acc += i;
      return acc;
    }
  )",
                           120);
}

TEST(CompositionTest, ForSimdComposite) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel
      {
        #pragma omp for simd reduction(+: sum)
        for (int i = 0; i < 48; ++i)
          sum += i % 5;
      }
      return sum;
    }
  )",
                           [] {
                             int S = 0;
                             for (int I = 0; I < 48; ++I)
                               S += I % 5;
                             return S;
                           }());
}

// The paper's conclusion: "after tiling a loop, it is possible to apply
// worksharing to the outer loop and simd to the inner loop" — the OpenMP
// 6.0-bound composition, expressed directly on CanonicalLoopInfo handles
// in ompirbuilder_test and here at source level as worksharing over the
// tile-generated loop with a simd-annotated body structure.
TEST(CompositionTest, FutureWorkWorkshareOverTileGeneratedLoop) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      #pragma omp tile sizes(16)
      for (int i = 0; i < 77; ++i)
        sum += i;
      return sum;
    }
  )",
                           76 * 77 / 2);
}

TEST(CompositionTest, BarrierAndCritical) {
  expectAllPipelinesReturn(R"(
    int counter = 0;
    int main() {
      #pragma omp parallel num_threads(4)
      {
        #pragma omp critical
        {
          counter += 1;
        }
        #pragma omp barrier
        ;
      }
      return counter;
    }
  )",
                           4);
}

TEST(CompositionTest, MasterRunsOnce) {
  expectAllPipelinesReturn(R"(
    int counter = 0;
    int main() {
      #pragma omp parallel num_threads(4)
      {
        #pragma omp master
        {
          counter += 1;
        }
      }
      return counter;
    }
  )",
                           1);
}

TEST(CompositionTest, DownwardWorkshareLoop) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      for (int i = 100; i > 0; i -= 2)
        sum += i;
      return sum;
    }
  )",
                           2550); // 2+4+...+100
}

TEST(CompositionTest, UnsignedIVWorkshare) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      for (unsigned int i = 0u; i < 33u; i += 3)
        sum += i;
      return sum;
    }
  )",
                           0 + 3 + 6 + 9 + 12 + 15 + 18 + 21 + 24 + 27 + 30);
}

TEST(CompositionTest, VariableBoundsEvaluatedCorrectly) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int compute(int lo, int hi, int step) {
      #pragma omp parallel for reduction(+: sum)
      #pragma omp unroll partial(2)
      for (int i = lo; i < hi; i += step)
        sum += i;
      return sum;
    }
    int main() { return compute(3, 50, 5); }
  )",
                           3 + 8 + 13 + 18 + 23 + 28 + 33 + 38 + 43 + 48);
}

TEST(CompositionTest, PointerIVWorkshareLoop) {
  // A pointer-typed iteration variable exercises the non-trivial distance
  // function (divide a byte distance by the step) and loop-variable
  // function (pointer reconstruction) — the MiniC stand-in for the
  // paper's iterator-based loops (DESIGN.md substitution #2).
  expectAllPipelinesReturn(R"(
    int data[40];
    int sum = 0;
    int main() {
      for (int k = 0; k < 40; ++k) data[k] = k;
      #pragma omp parallel for reduction(+: sum)
      for (int *p = data; p < data + 40; p += 1)
        sum += *p;
      return sum;
    }
  )",
                           39 * 40 / 2);
}

TEST(CompositionTest, PointerIVStridedUnroll) {
  expectAllPipelinesReturn(R"(
    int data[32];
    int sum = 0;
    int main() {
      for (int k = 0; k < 32; ++k) data[k] = k + 1;
      #pragma omp unroll partial(2)
      for (int *p = data; p < data + 32; p += 3)
        sum += *p;
      return sum;
    }
  )",
                           [] {
                             int S = 0;
                             for (int K = 0; K < 32; K += 3)
                               S += K + 1;
                             return S;
                           }());
}

TEST(CompositionTest, Collapse3TripleNest) {
  expectAllPipelinesReturn(R"(
    int hits[120];
    int main() {
      #pragma omp parallel for collapse(3)
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 5; ++j)
          for (int k = 0; k < 6; ++k)
            hits[i * 30 + j * 6 + k] += 1;
      int bad = 0;
      for (int n = 0; n < 120; ++n)
        if (hits[n] != 1) bad += 1;
      return bad;
    }
  )",
                           0);
}

struct ComposeCase {
  int Trip, UnrollFactor, TileSize;
};

class ComposeSweep : public ::testing::TestWithParam<ComposeCase> {};

TEST_P(ComposeSweep, TileOverUnrollAllPipelines) {
  const ComposeCase &C = GetParam();
  std::string Source =
      "int acc = 0;\nint main() {\n"
      "  #pragma omp tile sizes(" + std::to_string(C.TileSize) + ")\n" +
      "  #pragma omp unroll partial(" + std::to_string(C.UnrollFactor) +
      ")\n" +
      "  for (int i = 0; i < " + std::to_string(C.Trip) +
      "; ++i)\n    acc += i;\n  return acc;\n}\n";
  expectAllPipelinesReturn(
      Source, static_cast<std::int64_t>(C.Trip) * (C.Trip - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComposeSweep,
    ::testing::Values(ComposeCase{16, 2, 4}, ComposeCase{17, 2, 4},
                      ComposeCase{30, 3, 5}, ComposeCase{7, 4, 8},
                      ComposeCase{100, 8, 4}));

TEST(CompositionTest, NonCanonicalLoopNoteEmitted) {
  Execution E(R"(
    int main() {
      #pragma omp for
      for (int i = 1; i < 100; i *= 2) ;
      return 0;
    }
  )");
  EXPECT_FALSE(E.CompiledOK);
  std::string Diags = E.diagnostics();
  EXPECT_NE(Diags.find("increment clause"), std::string::npos);
  // The "note: loop must conform to the OpenMP canonical loop form"
  // companion diagnostic.
  EXPECT_NE(Diags.find("note:"), std::string::npos);
  EXPECT_NE(Diags.find("canonical loop form"), std::string::npos);
}

TEST(CompositionTest, ZeroTripWorkshareLoop) {
  expectAllPipelinesReturn(R"(
    int sum = 0;
    int main() {
      int n = 0;
      #pragma omp parallel for reduction(+: sum)
      for (int i = 0; i < n; ++i)
        sum += 1;
      return sum;
    }
  )",
                           0);
}

TEST(CompositionTest, NumThreadsClauseRespected) {
  const char *Source = R"(
    int ids[16];
    int main() {
      #pragma omp parallel num_threads(3)
      {
        ids[omp_get_thread_num()] = 1;
      }
      int n = 0;
      for (int i = 0; i < 16; ++i) n += ids[i];
      return n;
    }
  )";
  // omp_get_thread_num must be declared for Sema; prepend a prototype.
  std::string WithProto = std::string("int omp_get_thread_num();\n") + Source;
  expectAllPipelinesReturn(WithProto, 3);
}

} // namespace
