//===--- exec_sweep_test.cpp - Loop-shape × transformation × pipeline sweep ===//
//
// The broadest equivalence property in the suite: for a grid of canonical
// loop shapes (bounds, direction, step, comparison) and transformation
// stacks, the executed iteration sum must equal the host-computed
// reference under all four pipeline configurations. This is the E9
// property pushed across the whole loop-shape space.
//
//===----------------------------------------------------------------------===//
#include "ExecutionTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

struct LoopShapeCase {
  int Lb, Ub, Step;       // step sign encodes direction
  const char *Rel;        // <, <=, >, >=
  const char *Pragmas;    // directive stack (may be "")
};

std::int64_t reference(const LoopShapeCase &C) {
  std::int64_t Sum = 0;
  auto Test = [&](long long I) {
    std::string R = C.Rel;
    if (R == "<")
      return I < C.Ub;
    if (R == "<=")
      return I <= C.Ub;
    if (R == ">")
      return I > C.Ub;
    return I >= C.Ub;
  };
  for (long long I = C.Lb; Test(I); I += C.Step)
    Sum += I;
  return Sum;
}

class LoopShapeSweep : public ::testing::TestWithParam<LoopShapeCase> {};

TEST_P(LoopShapeSweep, SumMatchesReferenceInAllPipelines) {
  const LoopShapeCase &C = GetParam();
  std::string Source = "long sum = 0;\nint main() {\n" +
                       std::string(C.Pragmas) + "  for (int i = " +
                       std::to_string(C.Lb) + "; i " + C.Rel + " " +
                       std::to_string(C.Ub) + "; i += " +
                       std::to_string(C.Step) +
                       ")\n    sum += i;\n"
                       "  int out = sum % 100000;\n  return out;\n}\n";
  std::int64_t Expected = reference(C) % 100000;
  expectAllPipelinesReturn(Source, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Plain, LoopShapeSweep,
    ::testing::Values(
        LoopShapeCase{0, 100, 1, "<", ""},
        LoopShapeCase{-50, 49, 7, "<=", ""},
        LoopShapeCase{100, 0, -3, ">", ""},
        LoopShapeCase{99, -1, -1, ">=", ""},
        LoopShapeCase{5, 5, 1, "<", ""},   // zero-trip
        LoopShapeCase{7, 17, 3, "<", ""}));

INSTANTIATE_TEST_SUITE_P(
    Unrolled, LoopShapeSweep,
    ::testing::Values(
        LoopShapeCase{0, 100, 1, "<", "  #pragma omp unroll partial(4)\n"},
        LoopShapeCase{-50, 49, 7, "<=",
                      "  #pragma omp unroll partial(3)\n"},
        LoopShapeCase{100, 0, -3, ">",
                      "  #pragma omp unroll partial(2)\n"},
        LoopShapeCase{5, 5, 1, "<", "  #pragma omp unroll partial(8)\n"},
        LoopShapeCase{0, 7, 1, "<", "  #pragma omp unroll partial(16)\n"}));

INSTANTIATE_TEST_SUITE_P(
    Tiled, LoopShapeSweep,
    ::testing::Values(
        LoopShapeCase{0, 100, 1, "<", "  #pragma omp tile sizes(8)\n"},
        LoopShapeCase{-50, 49, 7, "<=", "  #pragma omp tile sizes(3)\n"},
        LoopShapeCase{100, 0, -3, ">", "  #pragma omp tile sizes(5)\n"},
        LoopShapeCase{99, -1, -1, ">=", "  #pragma omp tile sizes(64)\n"}));

INSTANTIATE_TEST_SUITE_P(
    ParallelStacked, LoopShapeSweep,
    ::testing::Values(
        LoopShapeCase{0, 101, 1, "<",
                      "  #pragma omp parallel for reduction(+: sum)\n"
                      "  #pragma omp unroll partial(4)\n"},
        LoopShapeCase{-30, 70, 4, "<=",
                      "  #pragma omp parallel for reduction(+: sum)\n"
                      "  #pragma omp tile sizes(8)\n"},
        LoopShapeCase{200, 3, -7, ">",
                      "  #pragma omp parallel for reduction(+: sum)\n"},
        LoopShapeCase{0, 64, 2, "<",
                      "  #pragma omp parallel for reduction(+: sum)\n"
                      "  #pragma omp tile sizes(4)\n"
                      "  #pragma omp unroll partial(2)\n"}));

// Every schedule over a strided downward loop — the least-covered corner
// of the logical-iteration normalization.
class ScheduleShapeSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(ScheduleShapeSweep, StridedDownwardLoop) {
  std::string Source = R"(
long sum = 0;
int main() {
  sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule()" +
                       std::string(GetParam()) + R"()
  for (int i = 83; i >= -20; i -= 9)
    sum += i * 2;
  int out = sum % 100000;
  return out;
}
)";
  std::int64_t Expected = 0;
  for (int I = 83; I >= -20; I -= 9)
    Expected += I * 2;
  expectAllPipelinesReturn(Source, Expected % 100000);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleShapeSweep,
                         ::testing::Values("static", "static, 2",
                                           "dynamic, 3", "guided"));

} // namespace
