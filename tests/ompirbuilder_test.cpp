//===--- ompirbuilder_test.cpp - OpenMPIRBuilder unit tests ---------------===//
//
// Exercises createCanonicalLoop (the Fig. 9 skeleton + CanonicalLoopInfo
// invariants), tileLoops, collapseLoops, unrollLoop*, and
// applyWorkshareLoop — executing the produced IR through the interpreter
// (with real threads for the worksharing tests).
//
//===----------------------------------------------------------------------===//
#include "interp/Interpreter.h"
#include "irbuilder/OpenMPIRBuilder.h"
#include "runtime/KMPRuntime.h"

#include <gtest/gtest.h>

#include <map>

#include <mutex>
#include <numeric>
#include <set>
#include <vector>

using namespace mcc::ir;
using namespace mcc::interp;

namespace {

/// Builds "void f()" whose body records every visited logical iteration by
/// calling the external "record" function. Returns the function; the
/// BodyGen passed in emits the loop(s).
struct LoopHarness {
  Module M;
  IRBuilder B{M};
  OpenMPIRBuilder OMPB{M};
  Function *F = nullptr;
  Function *Record = nullptr;

  LoopHarness() {
    Record = M.getOrInsertFunction("record", IRType::getVoid(),
                                   {IRType::getI64()});
    F = M.createFunction("f", IRType::getVoid(), {});
    B.setInsertPoint(F->createBlock("entry"));
  }

  void finish() {
    B.createRetVoid();
    ASSERT_EQ(verifyModule(M), "") << printModule(M);
  }

  std::vector<std::int64_t> run() {
    ExecutionEngine EE(M);
    std::vector<std::int64_t> Recorded;
    std::mutex Mx;
    EE.bindExternal("record", [&](std::span<const RTValue> Args) {
      std::lock_guard<std::mutex> Lock(Mx);
      Recorded.push_back(Args[0].I);
      return RTValue{};
    });
    EE.runFunction("f", {});
    return Recorded;
  }

  void recordValue(Value *V) {
    B.createCall(Record,
                 {B.createIntCast(V, IRType::getI64(), false, "rec")});
  }
};

TEST(OMPIRBuilderTest, SkeletonHasAllSevenBlocks) {
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(10), [](IRBuilder &, Value *) {}, "loop");
  H.finish();

  // The paper's Fig. 9 block roles.
  ASSERT_NE(CLI->getPreheader(), nullptr);
  ASSERT_NE(CLI->getHeader(), nullptr);
  ASSERT_NE(CLI->getCond(), nullptr);
  ASSERT_NE(CLI->getBody(), nullptr);
  ASSERT_NE(CLI->getLatch(), nullptr);
  ASSERT_NE(CLI->getExit(), nullptr);
  ASSERT_NE(CLI->getAfter(), nullptr);
  EXPECT_EQ(CLI->validate(), "");

  // Identifiable IV (a header phi) and trip count, "without requiring
  // analysis by ScalarEvolution".
  EXPECT_EQ(CLI->getIndVar()->getOpcode(), Opcode::Phi);
  EXPECT_EQ(CLI->getIndVar()->getParent(), CLI->getHeader());
  auto *TC = ir_dyn_cast<ConstantInt>(CLI->getTripCount());
  ASSERT_NE(TC, nullptr);
  EXPECT_EQ(TC->getValue(), 10);

  std::string Text = printFunction(*H.F);
  EXPECT_NE(Text.find("loop.preheader"), std::string::npos);
  EXPECT_NE(Text.find("loop.header"), std::string::npos);
  EXPECT_NE(Text.find("loop.inc"), std::string::npos);
  EXPECT_NE(Text.find("loop.after"), std::string::npos);
}

TEST(OMPIRBuilderTest, CanonicalLoopIteratesLogicalSpace) {
  LoopHarness H;
  H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(5),
      [&](IRBuilder &, Value *IV) { H.recordValue(IV); }, "loop");
  H.finish();
  EXPECT_EQ(H.run(), (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(OMPIRBuilderTest, ZeroTripLoopBodyNeverRuns) {
  LoopHarness H;
  H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(0),
      [&](IRBuilder &, Value *IV) { H.recordValue(IV); }, "loop");
  H.finish();
  EXPECT_TRUE(H.run().empty());
}

TEST(OMPIRBuilderTest, RuntimeTripCount) {
  Module M;
  IRBuilder B(M);
  OpenMPIRBuilder OMPB(M);
  Function *Record =
      M.getOrInsertFunction("record", IRType::getVoid(), {IRType::getI64()});
  Function *F = M.createFunction("f", IRType::getVoid(), {IRType::getI64()});
  B.setInsertPoint(F->createBlock("entry"));
  OMPB.createCanonicalLoop(
      B, F->getArg(0),
      [&](IRBuilder &Bld, Value *IV) { Bld.createCall(Record, {IV}); },
      "loop");
  B.createRetVoid();
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M);
  int Count = 0;
  EE.bindExternal("record", [&](std::span<const RTValue>) {
    ++Count;
    return RTValue{};
  });
  EE.runFunction("f", {RTValue::ofInt(123)});
  EXPECT_EQ(Count, 123);
}

TEST(OMPIRBuilderTest, NestedLoops) {
  LoopHarness H;
  Value *TripOuter = H.M.getI64(3);
  Value *TripInner = H.M.getI64(4);
  H.OMPB.createCanonicalLoop(
      H.B, TripOuter,
      [&](IRBuilder &Bld, Value *I) {
        H.OMPB.createCanonicalLoop(
            Bld, TripInner,
            [&](IRBuilder &Bld2, Value *J) {
              Value *Lin = Bld2.createAdd(
                  Bld2.createMul(I, H.M.getI64(10), "i10"), J, "lin");
              H.recordValue(Lin);
            },
            "inner");
      },
      "outer");
  H.finish();
  std::vector<std::int64_t> Expected;
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 4; ++J)
      Expected.push_back(10 * I + J);
  EXPECT_EQ(H.run(), Expected);
}

// --- tileLoops ---

/// Builds a perfect 2-nest with hoisted trip counts and records
/// (i * 100 + j); returns the two CLIs.
std::vector<CanonicalLoopInfo *> buildPerfectNest(LoopHarness &H,
                                                  std::int64_t TripI,
                                                  std::int64_t TripJ) {
  std::vector<CanonicalLoopInfo *> Loops(2);
  Value *TI = H.M.getI64(TripI);
  Value *TJ = H.M.getI64(TripJ);
  Loops[0] = H.OMPB.createCanonicalLoop(
      H.B, TI,
      [&](IRBuilder &Bld, Value *I) {
        Loops[1] = H.OMPB.createCanonicalLoop(
            Bld, TJ,
            [&](IRBuilder &Bld2, Value *J) {
              Value *Lin = Bld2.createAdd(
                  Bld2.createMul(I, H.M.getI64(100), "i100"), J, "lin");
              H.recordValue(Lin);
            },
            "j");
      },
      "i");
  return Loops;
}

TEST(OMPIRBuilderTest, TileLoopsProducesTwiceAsMany) {
  LoopHarness H;
  auto Loops = buildPerfectNest(H, 8, 8);
  std::vector<CanonicalLoopInfo *> Tiled =
      H.OMPB.tileLoops(Loops, {H.M.getI64(4), H.M.getI64(2)});
  H.finish();
  ASSERT_EQ(Tiled.size(), 4u);
  for (CanonicalLoopInfo *CLI : Tiled)
    EXPECT_EQ(CLI->validate(), "");
  // Floor loops first: trips ceil(8/4)=2 and ceil(8/2)=4.
  auto *FC0 = ir_dyn_cast<ConstantInt>(Tiled[0]->getTripCount());
  ASSERT_NE(FC0, nullptr);
  EXPECT_EQ(FC0->getValue(), 2);
  auto *FC1 = ir_dyn_cast<ConstantInt>(Tiled[1]->getTripCount());
  ASSERT_NE(FC1, nullptr);
  EXPECT_EQ(FC1->getValue(), 4);
}

struct TileCase {
  std::int64_t TripI, TripJ, SizeI, SizeJ;
};

class TileSweep : public ::testing::TestWithParam<TileCase> {};

TEST_P(TileSweep, VisitsEveryIterationExactlyOnce) {
  const TileCase &C = GetParam();
  LoopHarness H;
  auto Loops = buildPerfectNest(H, C.TripI, C.TripJ);
  H.OMPB.tileLoops(Loops, {H.M.getI64(C.SizeI), H.M.getI64(C.SizeJ)});
  H.finish();

  std::vector<std::int64_t> Visited = H.run();
  // Same multiset of iterations as the untiled nest.
  std::multiset<std::int64_t> Got(Visited.begin(), Visited.end());
  std::multiset<std::int64_t> Expected;
  for (std::int64_t I = 0; I < C.TripI; ++I)
    for (std::int64_t J = 0; J < C.TripJ; ++J)
      Expected.insert(I * 100 + J);
  EXPECT_EQ(Got, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileSweep,
    ::testing::Values(TileCase{8, 8, 4, 2},    // even division
                      TileCase{7, 5, 3, 2},    // boundary tiles
                      TileCase{1, 1, 4, 4},    // tiles larger than space
                      TileCase{16, 1, 4, 1},   // degenerate inner
                      TileCase{5, 9, 5, 9},    // tile == whole space
                      TileCase{10, 10, 1, 1}, // unit tiles
                      TileCase{13, 17, 7, 3}));

TEST(OMPIRBuilderTest, TiledLoopVisitsTilesInOrder) {
  // For trip 4 tile 2 over one loop, the visit order must be
  // 0,1 (tile 0), 2,3 (tile 1).
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4),
      [&](IRBuilder &, Value *IV) { H.recordValue(IV); }, "loop");
  H.OMPB.tileLoops({CLI}, {H.M.getI64(2)});
  H.finish();
  EXPECT_EQ(H.run(), (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(OMPIRBuilderTest, TileInvalidatesInputHandles) {
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4), [](IRBuilder &, Value *) {}, "loop");
  EXPECT_TRUE(CLI->isValid());
  H.OMPB.tileLoops({CLI}, {H.M.getI64(2)});
  EXPECT_FALSE(CLI->isValid());
}

// --- collapseLoops ---

TEST(OMPIRBuilderTest, CollapseLoopsCombinesIterationSpace) {
  LoopHarness H;
  auto Loops = buildPerfectNest(H, 3, 5);
  CanonicalLoopInfo *Collapsed = H.OMPB.collapseLoops(Loops);
  H.finish();
  EXPECT_EQ(Collapsed->validate(), "");
  auto *TC = ir_dyn_cast<ConstantInt>(Collapsed->getTripCount());
  ASSERT_NE(TC, nullptr);
  EXPECT_EQ(TC->getValue(), 15);

  std::vector<std::int64_t> Expected;
  for (std::int64_t I = 0; I < 3; ++I)
    for (std::int64_t J = 0; J < 5; ++J)
      Expected.push_back(I * 100 + J);
  EXPECT_EQ(H.run(), Expected); // order preserved by de-linearization
}

// --- fuseLoops ---

/// Two adjacent sibling loops recording 100+i (trip 5) and 200+k
/// (trip 3): fusion interleaves the bodies per shared logical iteration
/// and guards the shorter member past its own trip count.
TEST(OMPIRBuilderTest, FuseLoopsInterleavesGuardedBodies) {
  LoopHarness H;
  std::vector<CanonicalLoopInfo *> Sibs(2);
  Sibs[0] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(5),
      [&](IRBuilder &Bld, Value *IV) {
        H.recordValue(Bld.createAdd(H.M.getI64(100), IV, "a"));
      },
      "first");
  Sibs[1] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(3),
      [&](IRBuilder &Bld, Value *IV) {
        H.recordValue(Bld.createAdd(H.M.getI64(200), IV, "b"));
      },
      "second");
  CanonicalLoopInfo *Fused = H.OMPB.fuseLoops(Sibs);
  H.finish();
  ASSERT_NE(Fused, nullptr);
  EXPECT_EQ(Fused->validate(), "");
  EXPECT_EQ(H.run(), (std::vector<std::int64_t>{100, 200, 101, 201, 102,
                                                202, 103, 104}));
}

TEST(OMPIRBuilderTest, FuseLoopsEqualTripsAlternatesBodies) {
  LoopHarness H;
  std::vector<CanonicalLoopInfo *> Sibs(2);
  Sibs[0] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4),
      [&](IRBuilder &Bld, Value *IV) {
        H.recordValue(Bld.createAdd(H.M.getI64(10), IV, "a"));
      },
      "first");
  Sibs[1] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4),
      [&](IRBuilder &Bld, Value *IV) {
        H.recordValue(Bld.createAdd(H.M.getI64(20), IV, "b"));
      },
      "second");
  H.OMPB.fuseLoops(Sibs);
  H.finish();
  EXPECT_EQ(H.run(), (std::vector<std::int64_t>{10, 20, 11, 21, 12, 22,
                                                13, 23}));
}

TEST(OMPIRBuilderTest, FuseInvalidatesInputHandles) {
  LoopHarness H;
  std::vector<CanonicalLoopInfo *> Sibs(2);
  Sibs[0] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4), [](IRBuilder &, Value *) {}, "first");
  Sibs[1] = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(4), [](IRBuilder &, Value *) {}, "second");
  EXPECT_TRUE(Sibs[0]->isValid());
  EXPECT_TRUE(Sibs[1]->isValid());
  CanonicalLoopInfo *Fused = H.OMPB.fuseLoops(Sibs);
  H.finish();
  EXPECT_FALSE(Sibs[0]->isValid());
  EXPECT_FALSE(Sibs[1]->isValid());
  EXPECT_TRUE(Fused->isValid());
}

// --- unrolling metadata ---

TEST(OMPIRBuilderTest, UnrollFullAttachesMetadata) {
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(8), [](IRBuilder &, Value *) {}, "loop");
  H.OMPB.unrollLoopFull(CLI);
  H.finish();
  EXPECT_TRUE(CLI->getLatch()->getTerminator()->LoopMD.UnrollFull);
}

TEST(OMPIRBuilderTest, UnrollHeuristicAttachesMetadata) {
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(8), [](IRBuilder &, Value *) {}, "loop");
  H.OMPB.unrollLoopHeuristic(CLI);
  H.finish();
  EXPECT_TRUE(CLI->getLatch()->getTerminator()->LoopMD.UnrollEnable);
}

TEST(OMPIRBuilderTest, UnrollPartialTilesAndAnnotates) {
  // "unrollLoopPartial tiles the loop and lets the mid-end unroll the
  // inner loop" — the generated (outer) loop handle must be returned for
  // consumption by enclosing directives.
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(10),
      [&](IRBuilder &, Value *IV) { H.recordValue(IV); }, "loop");
  CanonicalLoopInfo *Unrolled = nullptr;
  H.OMPB.unrollLoopPartial(CLI, 4, &Unrolled);
  H.finish();

  ASSERT_NE(Unrolled, nullptr);
  EXPECT_EQ(Unrolled->validate(), "");
  // ceil(10/4) = 3 outer iterations.
  auto *TC = ir_dyn_cast<ConstantInt>(Unrolled->getTripCount());
  ASSERT_NE(TC, nullptr);
  EXPECT_EQ(TC->getValue(), 3);

  // Semantics unchanged even before the mid-end runs (metadata only).
  EXPECT_EQ(H.run(), (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8,
                                                9}));
}

// --- worksharing ---

struct WorkshareCase {
  std::int64_t Trip;
  int Threads;
  OMPScheduleType Sched;
  std::int64_t Chunk; // 0 = none
};

class WorkshareSweep : public ::testing::TestWithParam<WorkshareCase> {};

TEST_P(WorkshareSweep, AllIterationsExecutedExactlyOnce) {
  const WorkshareCase &C = GetParam();
  mcc::rt::OpenMPRuntime::get().setDefaultNumThreads(C.Threads);

  // Build: outlined(gtid, btid, ctx) { workshare-loop { hits[iv]++ } }
  // and f() { fork_call(outlined) }. hits is a global of Trip slots;
  // increments are racy only if the schedule hands an iteration to two
  // threads, which is exactly what the test checks.
  Module M;
  IRBuilder B(M);
  OpenMPIRBuilder OMPB(M);
  GlobalVariable *Hits = M.createGlobal(
      "hits", IRType::getI64(), static_cast<std::uint64_t>(C.Trip));

  Function *Outlined = M.createFunction(
      "outlined", IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()});
  B.setInsertPoint(Outlined->createBlock("entry"));
  CanonicalLoopInfo *CLI = OMPB.createCanonicalLoop(
      B, M.getI64(C.Trip),
      [&](IRBuilder &Bld, Value *IV) {
        Value *Slot = Bld.createGEP(IRType::getI64(), Hits, IV);
        Value *Old = Bld.createLoad(IRType::getI64(), Slot);
        Bld.createStore(Bld.createAdd(Old, M.getI64(1)), Slot);
      },
      "wsloop");
  OMPB.applyWorkshareLoop(CLI, C.Sched,
                          C.Chunk ? M.getI64(C.Chunk) : nullptr,
                          /*NoWait=*/false);
  B.createRetVoid();

  Function *ForkFn = OMPB.getOrCreateRuntimeFunction("__kmpc_fork_call");
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Ctx = B.createAlloca(IRType::getPtr(), M.getI64(1), "ctx");
  B.createCall(ForkFn, {Outlined, B.getI32(0), Ctx, B.getI32(C.Threads)});
  B.createRetVoid();

  ASSERT_EQ(verifyModule(M), "") << printModule(M);
  ExecutionEngine EE(M);
  EE.runFunction("f", {});

  auto *Raw = static_cast<std::int64_t *>(EE.getGlobalAddress("hits"));
  for (std::int64_t I = 0; I < C.Trip; ++I)
    ASSERT_EQ(Raw[I], 1) << "iteration " << I << " trip=" << C.Trip
                         << " threads=" << C.Threads
                         << " sched=" << static_cast<int>(C.Sched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkshareSweep,
    ::testing::Values(
        WorkshareCase{100, 4, OMPScheduleType::Static, 0},
        WorkshareCase{7, 4, OMPScheduleType::Static, 0},
        WorkshareCase{1, 4, OMPScheduleType::Static, 0},
        WorkshareCase{101, 3, OMPScheduleType::Static, 0},
        WorkshareCase{100, 4, OMPScheduleType::StaticChunked, 8},
        WorkshareCase{100, 4, OMPScheduleType::DynamicChunked, 8},
        WorkshareCase{97, 3, OMPScheduleType::DynamicChunked, 5},
        WorkshareCase{100, 4, OMPScheduleType::GuidedChunked, 4},
        WorkshareCase{1000, 8, OMPScheduleType::DynamicChunked, 1}));

TEST(OMPIRBuilderTest, WorkshareStaticPartitionsContiguously) {
  // With schedule(static), thread t gets one contiguous range; verify via
  // per-thread recording.
  mcc::rt::OpenMPRuntime::get().setDefaultNumThreads(4);
  Module M;
  IRBuilder B(M);
  OpenMPIRBuilder OMPB(M);
  Function *Record = M.getOrInsertFunction(
      "record2", IRType::getVoid(), {IRType::getI32(), IRType::getI64()});
  Function *GetTid =
      M.getOrInsertFunction("omp_get_thread_num", IRType::getI32(), {});

  Function *Outlined = M.createFunction(
      "outlined", IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()});
  B.setInsertPoint(Outlined->createBlock("entry"));
  CanonicalLoopInfo *CLI = OMPB.createCanonicalLoop(
      B, M.getI64(16),
      [&](IRBuilder &Bld, Value *IV) {
        Value *Tid = Bld.createCall(GetTid, {}, "tid");
        Bld.createCall(Record, {Tid, IV});
      },
      "wsloop");
  OMPB.applyWorkshareLoop(CLI, OMPScheduleType::Static, nullptr, false);
  B.createRetVoid();

  Function *ForkFn = OMPB.getOrCreateRuntimeFunction("__kmpc_fork_call");
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Ctx = B.createAlloca(IRType::getPtr(), M.getI64(1), "ctx");
  B.createCall(ForkFn, {Outlined, B.getI32(0), Ctx, B.getI32(4)});
  B.createRetVoid();
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M);
  std::mutex Mx;
  std::map<int, std::vector<std::int64_t>> PerThread;
  EE.bindExternal("record2", [&](std::span<const RTValue> Args) {
    std::lock_guard<std::mutex> Lock(Mx);
    PerThread[static_cast<int>(Args[0].I)].push_back(Args[1].I);
    return RTValue{};
  });
  EE.runFunction("f", {});

  ASSERT_EQ(PerThread.size(), 4u);
  for (auto &[Tid, Iters] : PerThread) {
    ASSERT_EQ(Iters.size(), 4u) << "thread " << Tid;
    // Contiguous ascending range 4*tid .. 4*tid+3.
    for (std::size_t K = 0; K < Iters.size(); ++K)
      EXPECT_EQ(Iters[K], 4 * Tid + static_cast<std::int64_t>(K));
  }
}

TEST(OMPIRBuilderTest, SimdAttachesVectorizeMetadata) {
  LoopHarness H;
  CanonicalLoopInfo *CLI = H.OMPB.createCanonicalLoop(
      H.B, H.M.getI64(8), [](IRBuilder &, Value *) {}, "loop");
  H.OMPB.applySimd(CLI);
  H.finish();
  EXPECT_TRUE(CLI->getLatch()->getTerminator()->LoopMD.Vectorize);
}

TEST(OMPIRBuilderTest, TileComposesWithWorkshare) {
  // tile a loop, then workshare the floor loop — the OpenMP 6.0-bound
  // composition the paper's conclusion describes.
  mcc::rt::OpenMPRuntime::get().setDefaultNumThreads(3);
  Module M;
  IRBuilder B(M);
  OpenMPIRBuilder OMPB(M);
  GlobalVariable *Hits = M.createGlobal("hits", IRType::getI64(), 50);

  Function *Outlined = M.createFunction(
      "outlined", IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()});
  B.setInsertPoint(Outlined->createBlock("entry"));
  CanonicalLoopInfo *CLI = OMPB.createCanonicalLoop(
      B, M.getI64(50),
      [&](IRBuilder &Bld, Value *IV) {
        Value *Slot = Bld.createGEP(IRType::getI64(), Hits, IV);
        Value *Old = Bld.createLoad(IRType::getI64(), Slot);
        Bld.createStore(Bld.createAdd(Old, M.getI64(1)), Slot);
      },
      "loop");
  auto Tiled = OMPB.tileLoops({CLI}, {M.getI64(8)});
  // The paper's conclusion's OpenMP 6.0 example: worksharing on the outer
  // (floor) loop, simd on the inner (tile) loop.
  OMPB.applyWorkshareLoop(Tiled[0], OMPScheduleType::Static, nullptr,
                          false);
  OMPB.applySimd(Tiled[1]);
  B.createRetVoid();

  Function *ForkFn = OMPB.getOrCreateRuntimeFunction("__kmpc_fork_call");
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *Ctx = B.createAlloca(IRType::getPtr(), M.getI64(1), "ctx");
  B.createCall(ForkFn, {Outlined, B.getI32(0), Ctx, B.getI32(3)});
  B.createRetVoid();
  ASSERT_EQ(verifyModule(M), "") << printModule(M);

  ExecutionEngine EE(M);
  EE.runFunction("f", {});
  auto *Raw = static_cast<std::int64_t *>(EE.getGlobalAddress("hits"));
  for (int I = 0; I < 50; ++I)
    ASSERT_EQ(Raw[I], 1) << "iteration " << I;
}

} // namespace
