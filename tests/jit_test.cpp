//===--- jit_test.cpp - Native execution tier unit tests ------------------===//
//
// Covers the template JIT's engine-facing contract: code-page lifecycle
// (compile, run, reset, re-run in one process — W^X clean under ASan),
// on-stack replacement of a hot bytecode frame, the forced-fallback
// knob, and the engine-name diagnostics for both the flag and the
// environment spelling.
//
//===----------------------------------------------------------------------===//
#include "interp/Interpreter.h"
#include "irbuilder/IRBuilder.h"
#include "jit/JIT.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mcc::ir;
using namespace mcc::interp;

namespace {

/// Scoped setenv: restores the previous value (or unsets) on destruction
/// so env-sensitive tests cannot leak state into each other.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    ::setenv(Name, Value, 1);
  }
  ~ScopedEnv() {
    if (HadOld)
      ::setenv(Name.c_str(), OldValue.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name, OldValue;
  bool HadOld = false;
};

/// for (i = 0; i < n; ++i) sum += i * 3 + (sum >> 5); return sum.
/// Long enough to cross any OSR threshold, pure int math so the JIT
/// supports every op.
void buildHotLoop(Module &M) {
  Function *F = M.createFunction("hot", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *IPhi = B.createPhi(IRType::getI64(), "i");
  Instruction *SumPhi = B.createPhi(IRType::getI64(), "sum");
  Value *Shift = B.createBinOp(Opcode::AShr, SumPhi, M.getI64(5), "sh");
  Value *Term = B.createAdd(B.createMul(IPhi, M.getI64(3)), Shift);
  Value *Sum = B.createAdd(SumPhi, Term);
  Value *Next = B.createAdd(IPhi, M.getI64(1));
  Value *More = B.createICmp(CmpPred::SLT, Next, F->getArg(0));
  IPhi->addIncoming(M.getI64(0), Entry);
  IPhi->addIncoming(Next, Loop);
  SumPhi->addIncoming(M.getI64(0), Entry);
  SumPhi->addIncoming(Sum, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  B.createRet(Sum);
  ASSERT_EQ(verifyModule(M), "");
}

std::int64_t runHot(ExecEngineKind Kind, std::int64_t N,
                    ExecStats *StatsOut = nullptr) {
  Module M;
  buildHotLoop(M);
  ExecutionEngine EE(M, Kind);
  RTValue R = EE.runFunction("hot", {RTValue::ofInt(N)});
  if (StatsOut)
    *StatsOut = EE.statsSnapshot();
  return R.I;
}

TEST(JITTest, NativeMatchesBytecodeOnHotLoop) {
  ExecStats Native;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 10000);
  EXPECT_EQ(runHot(ExecEngineKind::Native, 10000, &Native), Ref);
  if (mcc::interp::jit::isSupported()) {
    EXPECT_GE(Native.JITFunctionsCompiled, 1u);
    EXPECT_GT(Native.JITCodeBytes, 0u);
    EXPECT_GE(Native.JITNativeFrames, 1u);
  } else {
    // Unsupported hosts publish fallback units and stay on bytecode.
    EXPECT_EQ(Native.JITFunctionsCompiled, 0u);
    EXPECT_GE(Native.JITFallbacks, 1u);
  }
}

// The W^X lifecycle: map RW, patch, flip to RX, execute, unmap — twice in
// one process, so a leaked or double-freed code page trips ASan and a
// stale mapping trips the second run.
TEST(JITTest, CodePagesSurviveEngineResetAndRerun) {
  std::int64_t First = runHot(ExecEngineKind::Native, 4096);
  std::int64_t Second = runHot(ExecEngineKind::Native, 4096);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First, runHot(ExecEngineKind::Bytecode, 4096));
}

TEST(JITTest, CompiledUnitIsExecutableAndPatched) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  Module M;
  buildHotLoop(M);
  auto BCMod = mcc::interp::bc::compileToBytecode(M);
  auto CF = mcc::interp::jit::compileFunction(BCMod->Functions[0]);
  ASSERT_TRUE(CF->Supported);
  EXPECT_TRUE(CF->Code.executable());
  EXPECT_GT(CF->Code.size(), 0u);
  // One resume point per bytecode instruction: OSR can land anywhere.
  EXPECT_GE(CF->InstOffsets.size(), BCMod->Functions[0].Code.size());
}

TEST(JITTest, OSRPromotesRunningLoopWithIdenticalResult) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  // A call threshold far above 1 forces the *running* frame to get hot:
  // the only way to native is promotion on the loop back-edge.
  ScopedEnv CallT("MCC_JIT_CALL_THRESHOLD", "1000000");
  ScopedEnv OSRT("MCC_JIT_OSR_THRESHOLD", "100");
  ExecStats Bytecode, Tiered;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 20000, &Bytecode);
  EXPECT_EQ(runHot(ExecEngineKind::Tiered, 20000, &Tiered), Ref);
  EXPECT_GE(Tiered.JITOSRPromotions, 1u);
  EXPECT_GE(Tiered.JITFunctionsCompiled, 1u);
  // The promoted frame finished natively: the bytecode tier retired only
  // the pre-promotion prefix, a small fraction of the full loop.
  EXPECT_LT(Tiered.InstructionsExecuted, Bytecode.InstructionsExecuted / 2);
}

TEST(JITTest, ForcedFallbackKeepsFunctionOnBytecode) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  ScopedEnv Force("MCC_JIT_FORCE_FALLBACK_OP", "Add");
  ExecStats Native;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 1000);
  EXPECT_EQ(runHot(ExecEngineKind::Native, 1000, &Native), Ref);
  EXPECT_GE(Native.JITFallbacks, 1u);
  EXPECT_EQ(Native.JITNativeFrames, 0u);
}

TEST(JITTest, TrapInNativeFrameUnwindsCleanly) {
  Module M;
  Function *F = M.createFunction("div", IRType::getI64(),
                                 {IRType::getI64(), IRType::getI64()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createSDiv(F->getArg(0), F->getArg(1)));
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, ExecEngineKind::Native);
  try {
    EE.runFunction("div", {RTValue::ofInt(1), RTValue::ofInt(0)});
    FAIL() << "expected a division trap";
  } catch (const std::runtime_error &Ex) {
    EXPECT_STREQ(Ex.what(), "integer division by zero");
  }
  // The engine (and its frame stack) stays usable after the unwind.
  EXPECT_EQ(EE.runFunction("div", {RTValue::ofInt(6), RTValue::ofInt(2)}).I,
            3);
}

// --- Engine-name diagnostics: flag and environment spellings ---

TEST(JITTest, FlagSpellingRejectsUnknownEngineNames) {
  ExecEngineKind K;
  EXPECT_TRUE(parseExecEngineKind("walker", K));
  EXPECT_TRUE(parseExecEngineKind("bytecode", K));
  EXPECT_TRUE(parseExecEngineKind("native", K));
  EXPECT_EQ(K, ExecEngineKind::Native);
  EXPECT_TRUE(parseExecEngineKind("tiered", K));
  EXPECT_EQ(K, ExecEngineKind::Tiered);
  EXPECT_FALSE(parseExecEngineKind("turbo", K));
  EXPECT_FALSE(parseExecEngineKind("", K));
}

TEST(JITTest, EnvSpellingDiagnosesUnknownEngineNames) {
  {
    ScopedEnv Env("MCC_EXEC_ENGINE", "turbo");
    std::string Err = execEngineEnvError();
    EXPECT_NE(Err.find("turbo"), std::string::npos) << Err;
    EXPECT_NE(Err.find("MCC_EXEC_ENGINE"), std::string::npos) << Err;
    // The library itself stays permissive (drivers enforce).
    EXPECT_EQ(resolveExecEngineKind(ExecEngineKind::Default),
              ExecEngineKind::Bytecode);
  }
  for (const char *Good : {"walker", "bytecode", "native", "tiered"}) {
    ScopedEnv Env("MCC_EXEC_ENGINE", Good);
    EXPECT_EQ(execEngineEnvError(), "") << Good;
  }
}

TEST(JITTest, OpNameRoundTrip) {
  using mcc::interp::bc::Op;
  Op O = Op::NumOps;
  ASSERT_TRUE(mcc::interp::jit::parseOpName("CmpBr", O));
  EXPECT_EQ(O, Op::CmpBr);
  EXPECT_STREQ(mcc::interp::jit::opName(Op::CmpBr), "CmpBr");
  EXPECT_FALSE(mcc::interp::jit::parseOpName("NotAnOp", O));
}

} // namespace
