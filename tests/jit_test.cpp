//===--- jit_test.cpp - Native execution tier unit tests ------------------===//
//
// Covers the template JIT's engine-facing contract: code-page lifecycle
// (compile, run, reset, re-run in one process — W^X clean under ASan),
// on-stack replacement of a hot bytecode frame, the forced-fallback
// knob, and the engine-name diagnostics for both the flag and the
// environment spelling.
//
//===----------------------------------------------------------------------===//
#include "interp/Interpreter.h"
#include "irbuilder/IRBuilder.h"
#include "jit/JIT.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mcc::ir;
using namespace mcc::interp;

namespace {

/// Scoped setenv: restores the previous value (or unsets) on destruction
/// so env-sensitive tests cannot leak state into each other.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    ::setenv(Name, Value, 1);
  }
  ~ScopedEnv() {
    if (HadOld)
      ::setenv(Name.c_str(), OldValue.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name, OldValue;
  bool HadOld = false;
};

/// for (i = 0; i < n; ++i) sum += i * 3 + (sum >> 5); return sum.
/// Long enough to cross any OSR threshold, pure int math so the JIT
/// supports every op.
void buildHotLoop(Module &M) {
  Function *F = M.createFunction("hot", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *IPhi = B.createPhi(IRType::getI64(), "i");
  Instruction *SumPhi = B.createPhi(IRType::getI64(), "sum");
  Value *Shift = B.createBinOp(Opcode::AShr, SumPhi, M.getI64(5), "sh");
  Value *Term = B.createAdd(B.createMul(IPhi, M.getI64(3)), Shift);
  Value *Sum = B.createAdd(SumPhi, Term);
  Value *Next = B.createAdd(IPhi, M.getI64(1));
  Value *More = B.createICmp(CmpPred::SLT, Next, F->getArg(0));
  IPhi->addIncoming(M.getI64(0), Entry);
  IPhi->addIncoming(Next, Loop);
  SumPhi->addIncoming(M.getI64(0), Entry);
  SumPhi->addIncoming(Sum, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  B.createRet(Sum);
  ASSERT_EQ(verifyModule(M), "");
}

std::int64_t runHot(ExecEngineKind Kind, std::int64_t N,
                    ExecStats *StatsOut = nullptr) {
  Module M;
  buildHotLoop(M);
  ExecutionEngine EE(M, Kind);
  RTValue R = EE.runFunction("hot", {RTValue::ofInt(N)});
  if (StatsOut)
    *StatsOut = EE.statsSnapshot();
  return R.I;
}

TEST(JITTest, NativeMatchesBytecodeOnHotLoop) {
  ExecStats Native;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 10000);
  EXPECT_EQ(runHot(ExecEngineKind::Native, 10000, &Native), Ref);
  if (mcc::interp::jit::isSupported()) {
    EXPECT_GE(Native.JITFunctionsCompiled, 1u);
    EXPECT_GT(Native.JITCodeBytes, 0u);
    EXPECT_GE(Native.JITNativeFrames, 1u);
  } else {
    // Unsupported hosts publish fallback units and stay on bytecode.
    EXPECT_EQ(Native.JITFunctionsCompiled, 0u);
    EXPECT_GE(Native.JITFallbacks, 1u);
  }
}

// The W^X lifecycle: map RW, patch, flip to RX, execute, unmap — twice in
// one process, so a leaked or double-freed code page trips ASan and a
// stale mapping trips the second run.
TEST(JITTest, CodePagesSurviveEngineResetAndRerun) {
  std::int64_t First = runHot(ExecEngineKind::Native, 4096);
  std::int64_t Second = runHot(ExecEngineKind::Native, 4096);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First, runHot(ExecEngineKind::Bytecode, 4096));
}

TEST(JITTest, CompiledUnitIsExecutableAndPatched) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  Module M;
  buildHotLoop(M);
  auto BCMod = mcc::interp::bc::compileToBytecode(M);
  auto CF = mcc::interp::jit::compileFunction(BCMod->Functions[0]);
  ASSERT_TRUE(CF->Supported);
  EXPECT_TRUE(CF->Code.executable());
  EXPECT_GT(CF->Code.size(), 0u);
  // One resume point per bytecode instruction: OSR can land anywhere.
  EXPECT_GE(CF->InstOffsets.size(), BCMod->Functions[0].Code.size());
}

TEST(JITTest, OSRPromotesRunningLoopWithIdenticalResult) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  // A call threshold far above 1 forces the *running* frame to get hot:
  // the only way to native is promotion on the loop back-edge.
  ScopedEnv CallT("MCC_JIT_CALL_THRESHOLD", "1000000");
  ScopedEnv OSRT("MCC_JIT_OSR_THRESHOLD", "100");
  ExecStats Bytecode, Tiered;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 20000, &Bytecode);
  EXPECT_EQ(runHot(ExecEngineKind::Tiered, 20000, &Tiered), Ref);
  EXPECT_GE(Tiered.JITOSRPromotions, 1u);
  EXPECT_GE(Tiered.JITFunctionsCompiled, 1u);
  // The promoted frame finished natively: the bytecode tier retired only
  // the pre-promotion prefix, a small fraction of the full loop.
  EXPECT_LT(Tiered.InstructionsExecuted, Bytecode.InstructionsExecuted / 2);
}

TEST(JITTest, ForcedFallbackKeepsFunctionOnBytecode) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  ScopedEnv Force("MCC_JIT_FORCE_FALLBACK_OP", "Add");
  ExecStats Native;
  std::int64_t Ref = runHot(ExecEngineKind::Bytecode, 1000);
  EXPECT_EQ(runHot(ExecEngineKind::Native, 1000, &Native), Ref);
  EXPECT_GE(Native.JITFallbacks, 1u);
  EXPECT_EQ(Native.JITNativeFrames, 0u);
}

TEST(JITTest, TrapInNativeFrameUnwindsCleanly) {
  Module M;
  Function *F = M.createFunction("div", IRType::getI64(),
                                 {IRType::getI64(), IRType::getI64()});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createSDiv(F->getArg(0), F->getArg(1)));
  ASSERT_EQ(verifyModule(M), "");

  ExecutionEngine EE(M, ExecEngineKind::Native);
  try {
    EE.runFunction("div", {RTValue::ofInt(1), RTValue::ofInt(0)});
    FAIL() << "expected a division trap";
  } catch (const std::runtime_error &Ex) {
    EXPECT_STREQ(Ex.what(), "integer division by zero");
  }
  // The engine (and its frame stack) stays usable after the unwind.
  EXPECT_EQ(EE.runFunction("div", {RTValue::ofInt(6), RTValue::ofInt(2)}).I,
            3);
}

// --- Engine-name diagnostics: flag and environment spellings ---

TEST(JITTest, FlagSpellingRejectsUnknownEngineNames) {
  ExecEngineKind K;
  EXPECT_TRUE(parseExecEngineKind("walker", K));
  EXPECT_TRUE(parseExecEngineKind("bytecode", K));
  EXPECT_TRUE(parseExecEngineKind("native", K));
  EXPECT_EQ(K, ExecEngineKind::Native);
  EXPECT_TRUE(parseExecEngineKind("tiered", K));
  EXPECT_EQ(K, ExecEngineKind::Tiered);
  EXPECT_FALSE(parseExecEngineKind("turbo", K));
  EXPECT_FALSE(parseExecEngineKind("", K));
}

TEST(JITTest, EnvSpellingDiagnosesUnknownEngineNames) {
  {
    ScopedEnv Env("MCC_EXEC_ENGINE", "turbo");
    std::string Err = execEngineEnvError();
    EXPECT_NE(Err.find("turbo"), std::string::npos) << Err;
    EXPECT_NE(Err.find("MCC_EXEC_ENGINE"), std::string::npos) << Err;
    // The library itself stays permissive (drivers enforce).
    EXPECT_EQ(resolveExecEngineKind(ExecEngineKind::Default),
              ExecEngineKind::Bytecode);
  }
  for (const char *Good : {"walker", "bytecode", "native", "tiered"}) {
    ScopedEnv Env("MCC_EXEC_ENGINE", Good);
    EXPECT_EQ(execEngineEnvError(), "") << Good;
  }
}

// --- Register allocation, template fusion, direct native→native calls ---

/// Loop with more live loop-carried values than the allocator has
/// registers: six int accumulators against a three-GPR pool, plus two FP
/// accumulators. The overflow slots must stay coherent in frame memory
/// while the allocated ones live in registers.
void buildPressureLoop(Module &M) {
  Function *F =
      M.createFunction("press", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *IPhi = B.createPhi(IRType::getI64(), "i");
  Instruction *Acc[6];
  for (int K = 0; K < 6; ++K)
    Acc[K] = B.createPhi(IRType::getI64(), "a");
  Instruction *D0 = B.createPhi(IRType::getDouble(), "d0");
  Instruction *D1 = B.createPhi(IRType::getDouble(), "d1");
  Value *Upd[6];
  for (int K = 0; K < 6; ++K)
    Upd[K] = B.createAdd(Acc[K], B.createMul(IPhi, M.getI64(K + 1)));
  Value *D0n = B.createBinOp(Opcode::FAdd, D0, M.getDouble(0.5), "d0n");
  Value *D1n = B.createBinOp(Opcode::FAdd, D1, D0, "d1n");
  Value *Next = B.createAdd(IPhi, M.getI64(1));
  Value *More = B.createICmp(CmpPred::SLT, Next, F->getArg(0));
  IPhi->addIncoming(M.getI64(0), Entry);
  IPhi->addIncoming(Next, Loop);
  for (int K = 0; K < 6; ++K) {
    Acc[K]->addIncoming(M.getI64(K), Entry);
    Acc[K]->addIncoming(Upd[K], Loop);
  }
  D0->addIncoming(M.getDouble(0.0), Entry);
  D0->addIncoming(D0n, Loop);
  D1->addIncoming(M.getDouble(1.0), Entry);
  D1->addIncoming(D1n, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  Value *S = Upd[0];
  for (int K = 1; K < 6; ++K)
    S = B.createAdd(S, Upd[K]);
  Value *DS = B.createCast(Opcode::FPToSI,
                           B.createBinOp(Opcode::FAdd, D0n, D1n, "ds"),
                           IRType::getI64());
  B.createRet(B.createAdd(S, DS));
  ASSERT_EQ(verifyModule(M), "");
}

std::int64_t runPressure(ExecEngineKind Kind, std::int64_t N,
                         ExecStats *StatsOut = nullptr) {
  Module M;
  buildPressureLoop(M);
  ExecutionEngine EE(M, Kind);
  RTValue R = EE.runFunction("press", {RTValue::ofInt(N)});
  if (StatsOut)
    *StatsOut = EE.statsSnapshot();
  return R.I;
}

TEST(JITTest, RegisterPressureSpillParity) {
  ExecStats Native;
  std::int64_t Ref = runPressure(ExecEngineKind::Walker, 5000);
  EXPECT_EQ(runPressure(ExecEngineKind::Bytecode, 5000), Ref);
  EXPECT_EQ(runPressure(ExecEngineKind::Native, 5000, &Native), Ref);
  EXPECT_EQ(runPressure(ExecEngineKind::Tiered, 5000), Ref);
  if (mcc::interp::jit::isSupported()) {
    // Demand exceeds the GPR pool: the allocator filled every register
    // and the remaining accumulators ran from frame memory.
    EXPECT_GE(Native.JITRegAllocSlots, 3u);
    // The loop's icmp+br back edge compiles to a fused CmpBr template.
    EXPECT_GE(Native.JITFusedTemplates, 1u);
  }
}

TEST(JITTest, HelperCallClobberPreservesAllocatedRegisters) {
  // Int and FP accumulators stay live across an SDiv helper call every
  // iteration: caller-saved xmm allocations must spill/reload around the
  // call, and the helper's frame writes must flow back into registers.
  Module M;
  Function *F =
      M.createFunction("clob", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *IPhi = B.createPhi(IRType::getI64(), "i");
  Instruction *SPhi = B.createPhi(IRType::getI64(), "s");
  Instruction *FPhi = B.createPhi(IRType::getDouble(), "f");
  Value *Num = B.createAdd(B.createMul(IPhi, M.getI64(7)), M.getI64(3));
  Value *Den =
      B.createAdd(B.createBinOp(Opcode::And, IPhi, M.getI64(1), "par"),
                  M.getI64(1));
  Value *Q = B.createSDiv(Num, Den);
  Value *S2 = B.createAdd(SPhi, Q);
  Value *F2 = B.createBinOp(Opcode::FAdd, FPhi, M.getDouble(1.25), "f2");
  Value *Next = B.createAdd(IPhi, M.getI64(1));
  Value *More = B.createICmp(CmpPred::SLT, Next, F->getArg(0));
  IPhi->addIncoming(M.getI64(0), Entry);
  IPhi->addIncoming(Next, Loop);
  SPhi->addIncoming(M.getI64(0), Entry);
  SPhi->addIncoming(S2, Loop);
  FPhi->addIncoming(M.getDouble(0.0), Entry);
  FPhi->addIncoming(F2, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  Value *FI = B.createCast(Opcode::FPToSI, F2, IRType::getI64());
  B.createRet(B.createAdd(S2, FI));
  ASSERT_EQ(verifyModule(M), "");

  auto Run = [&](ExecEngineKind Kind, ExecStats *StatsOut = nullptr) {
    ExecutionEngine EE(M, Kind);
    RTValue R = EE.runFunction("clob", {RTValue::ofInt(3000)});
    if (StatsOut)
      *StatsOut = EE.statsSnapshot();
    return R.I;
  };
  ExecStats Native;
  std::int64_t Ref = Run(ExecEngineKind::Walker);
  EXPECT_EQ(Run(ExecEngineKind::Bytecode), Ref);
  EXPECT_EQ(Run(ExecEngineKind::Native, &Native), Ref);
  EXPECT_EQ(Run(ExecEngineKind::Tiered), Ref);
  if (mcc::interp::jit::isSupported()) {
    EXPECT_GE(Native.JITRegAllocSlots, 1u);
    EXPECT_GE(Native.JITSpills, 1u); // the div forced spill/reload traffic
  }
}

TEST(JITTest, FusedFCmpBranchParity) {
  // while (d < limit) { d += 0.25; ++n; } — an FCmp whose only consumer
  // is the loop branch, the exact shape the flags→jcc peephole fuses.
  Module M;
  Function *F =
      M.createFunction("fsum", IRType::getI64(), {IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  Value *Limit =
      B.createCast(Opcode::SIToFP, F->getArg(0), IRType::getDouble());
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *NPhi = B.createPhi(IRType::getI64(), "n");
  Instruction *DPhi = B.createPhi(IRType::getDouble(), "d");
  Value *D2 = B.createBinOp(Opcode::FAdd, DPhi, M.getDouble(0.25), "d2");
  Value *N2 = B.createAdd(NPhi, M.getI64(1));
  Value *More = B.createFCmp(CmpPred::OLT, D2, Limit);
  NPhi->addIncoming(M.getI64(0), Entry);
  NPhi->addIncoming(N2, Loop);
  DPhi->addIncoming(M.getDouble(0.0), Entry);
  DPhi->addIncoming(D2, Loop);
  B.createCondBr(More, Loop, Exit);
  B.setInsertPoint(Exit);
  B.createRet(N2);
  ASSERT_EQ(verifyModule(M), "");

  auto Run = [&](ExecEngineKind Kind, ExecStats *StatsOut = nullptr) {
    ExecutionEngine EE(M, Kind);
    RTValue R = EE.runFunction("fsum", {RTValue::ofInt(500)});
    if (StatsOut)
      *StatsOut = EE.statsSnapshot();
    return R.I;
  };
  ExecStats Native;
  std::int64_t Ref = Run(ExecEngineKind::Walker);
  EXPECT_EQ(Run(ExecEngineKind::Bytecode), Ref);
  EXPECT_EQ(Run(ExecEngineKind::Native, &Native), Ref);
  EXPECT_EQ(Run(ExecEngineKind::Tiered), Ref);
  if (mcc::interp::jit::isSupported())
    EXPECT_GE(Native.JITFusedTemplates, 1u);
}

/// deep(n, d): n <= 0 ? 100 / d : deep(n - 1, d) + 1 — every frame of
/// the recursion is a direct native→native call once compiled.
void buildDeepRecursion(Module &M) {
  Function *F = M.createFunction("deep", IRType::getI64(),
                                 {IRType::getI64(), IRType::getI64()});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  B.setInsertPoint(Entry);
  B.createCondBr(
      B.createICmp(CmpPred::SLE, F->getArg(0), M.getI64(0)), Base, Rec);
  B.setInsertPoint(Base);
  B.createRet(B.createSDiv(M.getI64(100), F->getArg(1)));
  B.setInsertPoint(Rec);
  Value *R = B.createCall(
      F, {B.createSub(F->getArg(0), M.getI64(1)), F->getArg(1)});
  B.createRet(B.createAdd(R, M.getI64(1)));
  ASSERT_EQ(verifyModule(M), "");
}

TEST(JITTest, DirectCallRecursionMatchesAcrossEngines) {
  Module M;
  buildDeepRecursion(M);
  ExecStats Native;
  for (ExecEngineKind Kind :
       {ExecEngineKind::Walker, ExecEngineKind::Bytecode,
        ExecEngineKind::Native, ExecEngineKind::Tiered}) {
    ExecutionEngine EE(M, Kind);
    EXPECT_EQ(
        EE.runFunction("deep", {RTValue::ofInt(200), RTValue::ofInt(2)}).I,
        250);
    if (Kind == ExecEngineKind::Native)
      Native = EE.statsSnapshot();
  }
  if (mcc::interp::jit::isSupported())
    EXPECT_GE(Native.JITDirectCallSites, 1u);
}

TEST(JITTest, DirectCallsDisabledFallsBackToHelperWithSameResult) {
  // MCC_JIT_DIRECT_CALLS=0 withholds the module call context: every
  // CallBC routes through the host helper, sites report zero, and the
  // result is unchanged — the measurement baseline for the direct-call
  // speedup and a bisection knob for call-related miscompiles.
  ScopedEnv Off("MCC_JIT_DIRECT_CALLS", "0");
  Module M;
  buildDeepRecursion(M);
  ExecutionEngine EE(M, ExecEngineKind::Native);
  EXPECT_EQ(
      EE.runFunction("deep", {RTValue::ofInt(200), RTValue::ofInt(2)}).I,
      250);
  EXPECT_EQ(EE.statsSnapshot().JITDirectCallSites, 0u);
}

TEST(JITTest, DeepNativeRecursionTrapUnwindsDirectCallChain) {
  // Division by zero 200 direct-call frames down: the trap must hand the
  // parked exception up every inline frame, reach the host wrapper, and
  // surface the same message every engine produces — with the engine
  // still usable afterwards.
  Module M;
  buildDeepRecursion(M);
  for (ExecEngineKind Kind :
       {ExecEngineKind::Walker, ExecEngineKind::Bytecode,
        ExecEngineKind::Native, ExecEngineKind::Tiered}) {
    ExecutionEngine EE(M, Kind);
    try {
      EE.runFunction("deep", {RTValue::ofInt(200), RTValue::ofInt(0)});
      FAIL() << "expected a division trap ("
             << execEngineKindName(Kind) << ")";
    } catch (const std::runtime_error &Ex) {
      EXPECT_STREQ(Ex.what(), "integer division by zero");
    }
    EXPECT_EQ(
        EE.runFunction("deep", {RTValue::ofInt(10), RTValue::ofInt(4)}).I,
        35);
  }
}

TEST(JITTest, OSRPromotionWithValuesLiveInRegisters) {
  if (!mcc::interp::jit::isSupported())
    GTEST_SKIP() << "no JIT on this host";
  // Promotion happens mid-loop with accumulators live in allocated
  // registers on the bytecode side; the prologue must re-establish the
  // full register state from the (authoritative) frame at the resume
  // boundary.
  ScopedEnv CallT("MCC_JIT_CALL_THRESHOLD", "1000000");
  ScopedEnv OSRT("MCC_JIT_OSR_THRESHOLD", "100");
  ExecStats Tiered;
  std::int64_t Ref = runPressure(ExecEngineKind::Bytecode, 20000);
  EXPECT_EQ(runPressure(ExecEngineKind::Tiered, 20000, &Tiered), Ref);
  EXPECT_GE(Tiered.JITOSRPromotions, 1u);
  EXPECT_GE(Tiered.JITRegAllocSlots, 3u);
}

TEST(JITTest, JITEnvKnobDiagnostics) {
  {
    ScopedEnv Env("MCC_JIT_CALL_THRESHOLD", "banana");
    std::string Err = jitEnvError();
    EXPECT_NE(Err.find("MCC_JIT_CALL_THRESHOLD"), std::string::npos) << Err;
    EXPECT_NE(Err.find("banana"), std::string::npos) << Err;
  }
  {
    ScopedEnv Env("MCC_JIT_OSR_THRESHOLD", "0");
    EXPECT_NE(jitEnvError(), ""); // zero would divide the tier by zero
  }
  {
    ScopedEnv Env("MCC_JIT_FORCE_FALLBACK_OP", "NotAnOp");
    std::string Err = jitEnvError();
    EXPECT_NE(Err.find("MCC_JIT_FORCE_FALLBACK_OP"), std::string::npos)
        << Err;
  }
  {
    ScopedEnv Env("MCC_JIT_DIRECT_CALLS", "maybe");
    std::string Err = jitEnvError();
    EXPECT_NE(Err.find("MCC_JIT_DIRECT_CALLS"), std::string::npos) << Err;
  }
  {
    ScopedEnv CallT("MCC_JIT_CALL_THRESHOLD", "16");
    ScopedEnv OSRT("MCC_JIT_OSR_THRESHOLD", "1024");
    ScopedEnv Force("MCC_JIT_FORCE_FALLBACK_OP", "CmpBr");
    ScopedEnv Direct("MCC_JIT_DIRECT_CALLS", "0");
    EXPECT_EQ(jitEnvError(), "");
  }
}

TEST(JITTest, OpNameRoundTrip) {
  using mcc::interp::bc::Op;
  Op O = Op::NumOps;
  ASSERT_TRUE(mcc::interp::jit::parseOpName("CmpBr", O));
  EXPECT_EQ(O, Op::CmpBr);
  EXPECT_STREQ(mcc::interp::jit::opName(Op::CmpBr), "CmpBr");
  EXPECT_FALSE(mcc::interp::jit::parseOpName("NotAnOp", O));
}

} // namespace
