//===--- parser_test.cpp - Parser + core Sema unit tests ------------------===//
#include "FrontendTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

TEST(ParserTest, EmptyTranslationUnit) {
  Frontend F("");
  ASSERT_NE(F.TU, nullptr);
  EXPECT_EQ(F.TU->decls().size(), 0u);
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, GlobalVariable) {
  Frontend F("int x = 42;");
  ASSERT_EQ(F.TU->decls().size(), 1u);
  auto *VD = decl_dyn_cast<VarDecl>(F.TU->decls()[0]);
  ASSERT_NE(VD, nullptr);
  EXPECT_EQ(VD->getName(), "x");
  EXPECT_TRUE(VD->isFileScope());
  EXPECT_TRUE(VD->hasInit());
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, FunctionDefinition) {
  Frontend F("int add(int a, int b) { return a + b; }");
  FunctionDecl *FD = F.getFunction("add");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->getNumParams(), 2u);
  EXPECT_TRUE(FD->hasBody());
  EXPECT_EQ(FD->getReturnType().getAsString(), "int");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, FunctionPrototypeAndDefinition) {
  Frontend F("int f(int x);\nint f(int x) { return x; }");
  EXPECT_EQ(F.errors(), 0u);
  FunctionDecl *FD = F.getFunction("f");
  ASSERT_NE(FD, nullptr);
  EXPECT_TRUE(FD->hasBody());
}

TEST(ParserTest, VoidParamList) {
  Frontend F("void f(void) { }");
  FunctionDecl *FD = F.getFunction("f");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->getNumParams(), 0u);
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, TypeSpecifiers) {
  Frontend F("unsigned int a; long b; unsigned long c; double d; float e;\n"
             "bool g; char h; size_t i; ptrdiff_t j; const int k = 1;");
  EXPECT_EQ(F.errors(), 0u);
  auto TypeOf = [&](unsigned Index) {
    return decl_cast<VarDecl>(F.TU->decls()[Index])->getType().getAsString();
  };
  EXPECT_EQ(TypeOf(0), "unsigned int");
  EXPECT_EQ(TypeOf(1), "long");
  EXPECT_EQ(TypeOf(2), "unsigned long");
  EXPECT_EQ(TypeOf(3), "double");
  EXPECT_EQ(TypeOf(4), "float");
  EXPECT_EQ(TypeOf(5), "bool");
  EXPECT_EQ(TypeOf(6), "char");
  EXPECT_EQ(TypeOf(7), "unsigned long");
  EXPECT_EQ(TypeOf(8), "long");
  EXPECT_EQ(TypeOf(9), "const int");
}

TEST(ParserTest, PointerAndArrayDeclarators) {
  Frontend F("int *p; double **q; int arr[10]; int matrix[4][8];");
  EXPECT_EQ(F.errors(), 0u);
  auto TypeOf = [&](unsigned I) {
    return decl_cast<VarDecl>(F.TU->decls()[I])->getType().getAsString();
  };
  EXPECT_EQ(TypeOf(0), "int *");
  EXPECT_EQ(TypeOf(1), "double * *");
  EXPECT_EQ(TypeOf(2), "int[10]");
  EXPECT_EQ(TypeOf(3), "int[4][8]");
}

TEST(ParserTest, ArraySizeMustBePositive) {
  Frontend F("int a[0];");
  EXPECT_TRUE(F.hasDiag(diag::err_array_size_not_positive));
}

TEST(ParserTest, MultiDeclaratorStatement) {
  Frontend F("void f() { int a = 1, b = 2, c; }");
  EXPECT_EQ(F.errors(), 0u);
  auto *DS = F.findStmt<DeclStmt>("f");
  ASSERT_NE(DS, nullptr);
  EXPECT_EQ(DS->decls().size(), 3u);
}

TEST(ParserTest, OperatorPrecedence) {
  Frontend F("int x = 2 + 3 * 4;");
  auto *VD = decl_cast<VarDecl>(F.TU->decls()[0]);
  // Must fold to 14 if precedence is right.
  auto V = evaluateInteger(VD->getInit());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 14);
}

TEST(ParserTest, PrecedenceFullLadder) {
  Frontend F("int x = 1 | 2 ^ 3 & 4 == 4;"); // 1 | (2 ^ (3 & (4==4)))
  auto V = evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[0])->getInit());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 1 | (2 ^ (3 & 1)));
}

TEST(ParserTest, RightAssociativeAssignment) {
  Frontend F("void f() { int a; int b; a = b = 3; }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, ConditionalOperator) {
  Frontend F("int x = 1 < 2 ? 10 : 20;");
  auto V = evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[0])->getInit());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 10);
}

TEST(ParserTest, UnaryOperators) {
  Frontend F("int a = -5; int b = !0; int c = ~0; int d = +7;");
  EXPECT_EQ(F.errors(), 0u);
  EXPECT_EQ(*evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[0])->getInit()),
            -5);
  EXPECT_EQ(*evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[1])->getInit()),
            1);
  EXPECT_EQ(*evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[2])->getInit()),
            -1);
}

TEST(ParserTest, AllStatementKinds) {
  Frontend F(R"(
    void f(int n) {
      ;
      int i = 0;
      if (n > 0) i = 1; else i = 2;
      while (i < n) i = i + 1;
      do { i = i - 1; } while (i > 0);
      for (int j = 0; j < n; j = j + 1) { }
      for (;;) { break; }
      for (int k = 0; k < 3; ++k) { continue; }
      return;
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  EXPECT_NE(F.findStmt<IfStmt>("f"), nullptr);
  EXPECT_NE(F.findStmt<WhileStmt>("f"), nullptr);
  EXPECT_NE(F.findStmt<DoStmt>("f"), nullptr);
  EXPECT_NE(F.findStmt<ForStmt>("f"), nullptr);
  EXPECT_NE(F.findStmt<BreakStmt>("f"), nullptr);
  EXPECT_NE(F.findStmt<ContinueStmt>("f"), nullptr);
}

TEST(ParserTest, CallsAndSubscripts) {
  Frontend F(R"(
    int g(int x) { return x; }
    void f() {
      int arr[4];
      arr[0] = g(1);
      arr[1 + 2] = g(arr[0]);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  EXPECT_NE(F.findStmt<CallExpr>("f"), nullptr);
  EXPECT_NE(F.findStmt<ArraySubscriptExpr>("f"), nullptr);
}

TEST(ParserTest, PointerOperations) {
  Frontend F(R"(
    void f() {
      int x = 1;
      int *p = &x;
      *p = 2;
      int y = *p + 1;
      p = p + 1;
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(ParserTest, IncrementDecrement) {
  Frontend F("void f() { int i = 0; ++i; i++; --i; i--; }");
  EXPECT_EQ(F.errors(), 0u);
}

// --- Sema diagnostics ---

TEST(SemaTest, UndeclaredIdentifier) {
  Frontend F("void f() { x = 1; }");
  EXPECT_TRUE(F.hasDiag(diag::err_undeclared_identifier));
}

TEST(SemaTest, Redefinition) {
  Frontend F("void f() { int x; int x; }");
  EXPECT_TRUE(F.hasDiag(diag::err_redefinition));
  // The note must point at the first definition.
  EXPECT_TRUE(F.hasDiag(diag::note_previous_definition));
}

TEST(SemaTest, ShadowingInNestedScopeIsAllowed) {
  Frontend F("void f() { int x = 1; { int x = 2; } }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(SemaTest, ForInitScopeIsSeparate) {
  // Two consecutive loops may both declare 'i'.
  Frontend F("void f() { for (int i = 0; i < 3; ++i) ; "
             "for (int i = 0; i < 3; ++i) ; }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(SemaTest, BreakOutsideLoop) {
  Frontend F("void f() { break; }");
  EXPECT_TRUE(F.hasDiag(diag::err_break_outside_loop));
}

TEST(SemaTest, ContinueOutsideLoop) {
  Frontend F("void f() { continue; }");
  EXPECT_TRUE(F.hasDiag(diag::err_continue_outside_loop));
}

TEST(SemaTest, AssignToConst) {
  Frontend F("void f() { const int x = 1; x = 2; }");
  EXPECT_TRUE(F.hasDiag(diag::err_not_assignable));
}

TEST(SemaTest, AssignToRValue) {
  Frontend F("void f() { int x; (x + 1) = 2; }");
  EXPECT_TRUE(F.hasDiag(diag::err_not_assignable));
}

TEST(SemaTest, CallWrongArity) {
  Frontend F("int g(int a) { return a; } void f() { g(1, 2); }");
  EXPECT_TRUE(F.hasDiag(diag::err_wrong_arg_count));
}

TEST(SemaTest, CallNonFunction) {
  Frontend F("void f() { int x; x(1); }");
  EXPECT_TRUE(F.hasDiag(diag::err_not_a_function));
}

TEST(SemaTest, DerefNonPointer) {
  Frontend F("void f() { int x; *x = 1; }");
  EXPECT_TRUE(F.hasDiag(diag::err_deref_non_pointer));
}

TEST(SemaTest, SubscriptNonPointer) {
  Frontend F("void f() { int x; x[0] = 1; }");
  EXPECT_TRUE(F.hasDiag(diag::err_subscript_non_pointer));
}

TEST(SemaTest, ReturnFromVoid) {
  Frontend F("void f() { return 1; }");
  EXPECT_TRUE(F.hasDiag(diag::err_return_type_mismatch));
}

TEST(SemaTest, ImplicitConversionsInserted) {
  Frontend F("void f() { double d = 1; int i = 2.5; }");
  EXPECT_EQ(F.errors(), 0u);
  FunctionDecl *FD = F.getFunction("f");
  unsigned Casts = countStmts<ImplicitCastExpr>(FD->getBody());
  EXPECT_GE(Casts, 2u); // IntegralToFloating + FloatingToIntegral
}

TEST(SemaTest, UsualArithmeticConversions) {
  Frontend F("void f() { int i = 1; double d = 2.0; d = i + d; }");
  EXPECT_EQ(F.errors(), 0u);
  FunctionDecl *FD = F.getFunction("f");
  struct Finder : RecursiveASTVisitor<Finder> {
    const BinaryOperator *Add = nullptr;
    bool visitStmt(Stmt *S) {
      if (auto *BO = stmt_dyn_cast<BinaryOperator>(S))
        if (BO->getOpcode() == BinaryOperatorKind::Add)
          Add = BO;
      return true;
    }
  } Fd;
  Fd.traverseStmt(FD->getBody());
  ASSERT_NE(Fd.Add, nullptr);
  EXPECT_EQ(Fd.Add->getType().getAsString(), "double");
}

TEST(SemaTest, ComparisonYieldsBool) {
  Frontend F("void f() { int a; int b; bool c = a < b; }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(SemaTest, ArrayDecaysInCall) {
  Frontend F("void g(int *p) { } void f() { int a[8]; g(a); }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(SemaTest, ArrayParamDecaysToPointer) {
  Frontend F("void g(int p[10]) { p[0] = 1; }");
  EXPECT_EQ(F.errors(), 0u);
  FunctionDecl *FD = F.getFunction("g");
  EXPECT_EQ(FD->parameters()[0]->getType().getAsString(), "int *");
}

TEST(SemaTest, PointerMinusPointer) {
  Frontend F("void f(int *a, int *b) { long d = b - a; }");
  EXPECT_EQ(F.errors(), 0u);
}

TEST(SemaTest, IncompatiblePointerAddition) {
  Frontend F("void f(int *a, int *b) { a = a + b; }");
  EXPECT_TRUE(F.hasDiag(diag::err_invalid_operands));
}

// --- Parser error recovery ---

TEST(ParserRecoveryTest, MissingSemicolonRecovers) {
  Frontend F("void f() { int a = 1 int b = 2; }");
  EXPECT_GE(F.errors(), 1u);
  EXPECT_NE(F.TU, nullptr);
}

TEST(ParserRecoveryTest, GarbageStatementDoesNotCrash) {
  Frontend F("void f() { @@@; int ok = 1; }");
  EXPECT_GE(F.errors(), 1u);
}

TEST(ParserRecoveryTest, ContinuesAfterBadFunction) {
  Frontend F("void bad( { } int good() { return 1; }");
  EXPECT_GE(F.errors(), 1u);
}

} // namespace
