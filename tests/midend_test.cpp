//===--- midend_test.cpp - LoopUnroll / SimplifyCFG / DCE unit tests ------===//
#include "ExecutionTestHelper.h"
#include "midend/Passes.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

/// Compiles, optionally unrolls with explicit options, executes, and also
/// returns structural facts for assertions.
struct UnrollHarness {
  std::unique_ptr<CompilerInstance> CI;
  midend::LoopUnrollStats Stats;

  UnrollHarness(const std::string &Source,
                midend::LoopUnrollOptions Opts,
                bool IRBuilderMode = false) {
    CompilerOptions O;
    O.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
    CI = std::make_unique<CompilerInstance>(O);
    EXPECT_TRUE(CI->compileSource(Source)) << CI->renderDiagnostics();
    Stats = midend::runLoopUnroll(*CI->getIRModule(), Opts);
    midend::runSimplifyCFG(*CI->getIRModule());
    midend::runDCE(*CI->getIRModule());
    EXPECT_EQ(ir::verifyModule(*CI->getIRModule()), "")
        << ir::printModule(*CI->getIRModule());
  }

  std::int64_t runMain() {
    interp::ExecutionEngine EE(*CI->getIRModule());
    return EE.runFunction("main", {}).I;
  }

  /// Occurrences of a substring in the IR text (e.g. body markers).
  unsigned countInIR(const std::string &Needle) {
    std::string Text = CI->getIRText();
    unsigned N = 0;
    std::size_t Pos = 0;
    while ((Pos = Text.find(Needle, Pos)) != std::string::npos) {
      ++N;
      Pos += Needle.size();
    }
    return N;
  }
};

const char *UnrollPartial4 = R"(
  int acc = 0;
  int main() {
    #pragma omp unroll partial(4)
    for (int i = 0; i < 10; ++i)
      acc += i * 3;
    return acc;
  }
)";

TEST(LoopUnrollTest, ConditionalExitStrategyCorrect) {
  midend::LoopUnrollOptions Opts;
  Opts.Strat = midend::LoopUnrollOptions::Strategy::ConditionalExit;
  UnrollHarness H(UnrollPartial4, Opts);
  EXPECT_EQ(H.runMain(), 135); // 3 * 45
  EXPECT_GE(H.Stats.LoopsUnrolled, 1u);
  // The multiplication by 3 appears once per replicated body copy.
  EXPECT_GE(H.countInIR("mul i32"), 4u);
}

TEST(LoopUnrollTest, RemainderStrategyCorrect) {
  midend::LoopUnrollOptions Opts;
  Opts.Strat = midend::LoopUnrollOptions::Strategy::Remainder;
  // The remainder strategy needs the canonical skeleton: IRBuilder mode.
  UnrollHarness H(UnrollPartial4, Opts, /*IRBuilderMode=*/true);
  EXPECT_EQ(H.runMain(), 135);
  EXPECT_GE(H.Stats.LoopsWithRemainder, 1u);
  // The paper's Listing 2 structure: a separate remainder loop exists.
  EXPECT_GE(H.countInIR(".remainder"), 1u);
}

struct UnrollCase {
  int Trip;
  int Factor;
};

class UnrollSweep
    : public ::testing::TestWithParam<std::tuple<UnrollCase, int, int>> {};

TEST_P(UnrollSweep, SemanticsPreservedForAllFactorsAndTrips) {
  auto [C, StratIdx, Mode] = GetParam();
  std::string Source = "int acc = 0;\nint main() {\n#pragma omp unroll "
                       "partial(" +
                       std::to_string(C.Factor) +
                       ")\nfor (int i = 0; i < " + std::to_string(C.Trip) +
                       "; ++i)\n  acc += i + 1;\nreturn acc;\n}\n";
  midend::LoopUnrollOptions Opts;
  Opts.Strat = StratIdx == 0
                   ? midend::LoopUnrollOptions::Strategy::ConditionalExit
                   : midend::LoopUnrollOptions::Strategy::Remainder;
  UnrollHarness H(Source, Opts, /*IRBuilderMode=*/Mode == 1);
  std::int64_t Expected = static_cast<std::int64_t>(C.Trip) * (C.Trip + 1) / 2;
  EXPECT_EQ(H.runMain(), Expected)
      << "trip=" << C.Trip << " factor=" << C.Factor
      << " strat=" << StratIdx << " irbuilder=" << Mode;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnrollSweep,
    ::testing::Combine(
        ::testing::Values(UnrollCase{0, 2}, UnrollCase{1, 4},
                          UnrollCase{7, 2}, UnrollCase{8, 2},
                          UnrollCase{9, 2}, UnrollCase{100, 8},
                          UnrollCase{13, 5}, UnrollCase{64, 16}),
        ::testing::Values(0, 1),   // strategy
        ::testing::Values(0, 1))); // pipeline mode

TEST(LoopUnrollTest, FullUnrollEliminatesBackEdgeTraffic) {
  const char *Source = R"(
    int acc = 0;
    int main() {
      #pragma omp unroll full
      for (int i = 0; i < 6; ++i)
        acc += i * i;
      return acc;
    }
  )";
  midend::LoopUnrollOptions Opts;
  UnrollHarness H(Source, Opts, /*IRBuilderMode=*/true);
  EXPECT_EQ(H.runMain(), 55);
  EXPECT_EQ(H.Stats.LoopsFullyUnrolled, 1u);
}

TEST(LoopUnrollTest, FullUnrollOverLimitFallsBack) {
  const char *Source = R"(
    int acc = 0;
    int main() {
      #pragma omp unroll full
      for (int i = 0; i < 100; ++i)
        acc += 1;
      return acc;
    }
  )";
  midend::LoopUnrollOptions Opts;
  Opts.FullUnrollMax = 16; // force the fallback path
  UnrollHarness H(Source, Opts, /*IRBuilderMode=*/true);
  EXPECT_EQ(H.runMain(), 100);
  EXPECT_EQ(H.Stats.LoopsFullyUnrolled, 0u);
  EXPECT_GE(H.Stats.LoopsUnrolled, 1u);
}

TEST(LoopUnrollTest, HeuristicRespectsSizeLimit) {
  const char *Source = R"(
    int acc = 0;
    int main() {
      #pragma omp unroll
      for (int i = 0; i < 10; ++i)
        acc += i;
      return acc;
    }
  )";
  {
    midend::LoopUnrollOptions Opts;
    Opts.HeuristicSizeLimit = 1; // too small: skip
    UnrollHarness H(Source, Opts);
    EXPECT_EQ(H.Stats.LoopsSkipped, 1u);
    EXPECT_EQ(H.runMain(), 45);
  }
  {
    midend::LoopUnrollOptions Opts; // default: unroll
    UnrollHarness H(Source, Opts);
    EXPECT_GE(H.Stats.LoopsUnrolled, 1u);
    EXPECT_EQ(H.runMain(), 45);
  }
}

TEST(LoopUnrollTest, MetadataClearedAfterProcessing) {
  midend::LoopUnrollOptions Opts;
  UnrollHarness H(UnrollPartial4, Opts);
  // Re-running the pass must be a no-op.
  midend::LoopUnrollStats Again =
      midend::runLoopUnroll(*H.CI->getIRModule(), Opts);
  EXPECT_EQ(Again.LoopsUnrolled, 0u);
}

TEST(LoopUnrollTest, VectorizeOnlyMetadataIgnored) {
  const char *Source = R"(
    int acc = 0;
    int main() {
      #pragma omp simd
      for (int i = 0; i < 10; ++i)
        acc += i;
      return acc;
    }
  )";
  midend::LoopUnrollOptions Opts;
  UnrollHarness H(Source, Opts);
  EXPECT_EQ(H.Stats.LoopsUnrolled, 0u);
  EXPECT_EQ(H.runMain(), 45);
}

TEST(SimplifyCFGTest, RemovesUnreachableBlocks) {
  ir::Module M;
  ir::Function *F = M.createFunction("f", ir::IRType::getI32(), {});
  ir::IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getI32(1));
  ir::BasicBlock *Dead = F->createBlock("dead");
  B.setInsertPoint(Dead);
  B.createRet(M.getI32(2));
  EXPECT_EQ(F->blocks().size(), 2u);
  EXPECT_EQ(midend::runSimplifyCFG(M), 1u);
  EXPECT_EQ(F->blocks().size(), 1u);
  EXPECT_EQ(ir::verifyModule(M), "");
}

TEST(SimplifyCFGTest, PrunesPhisOfRemovedPredecessors) {
  ir::Module M;
  ir::Function *F = M.createFunction("f", ir::IRType::getI32(), {});
  ir::IRBuilder B(M);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Dead = F->createBlock("dead");
  ir::BasicBlock *Join = F->createBlock("join");
  B.setInsertPoint(Entry);
  B.createBr(Join);
  B.setInsertPoint(Dead);
  B.createBr(Join);
  B.setInsertPoint(Join);
  ir::Instruction *Phi = B.createPhi(ir::IRType::getI32(), "p");
  Phi->addIncoming(M.getI32(1), Entry);
  Phi->addIncoming(M.getI32(2), Dead);
  B.createRet(Phi);

  EXPECT_EQ(midend::runSimplifyCFG(M), 1u);
  EXPECT_EQ(Phi->getNumIncoming(), 1u);
  EXPECT_EQ(ir::verifyModule(M), "");

  interp::ExecutionEngine EE(M);
  EXPECT_EQ(EE.runFunction("f", {}).I, 1);
}

TEST(PipelineTest, FullPipelineOnParallelTiledUnrolledLoop) {
  // The whole stack at once, checked for semantics.
  const char *Source = R"(
    int sum = 0;
    int main() {
      #pragma omp parallel for reduction(+: sum)
      #pragma omp tile sizes(8)
      #pragma omp unroll partial(2)
      for (int i = 0; i < 100; ++i)
        sum += i;
      return sum;
    }
  )";
  expectAllPipelinesReturn(Source, 4950);
}

//===----------------------------------------------------------------------===//
// Store-to-load forwarding and loop scalar promotion
//===----------------------------------------------------------------------===//

/// Compiles without the default pipeline so individual passes can be
/// applied and inspected.
struct PassHarness {
  std::unique_ptr<CompilerInstance> CI;

  explicit PassHarness(const std::string &Source) {
    CI = std::make_unique<CompilerInstance>(CompilerOptions{});
    EXPECT_TRUE(CI->compileSource(Source)) << CI->renderDiagnostics();
    midend::runSimplifyCFG(*CI->getIRModule());
  }

  std::int64_t runMain() {
    interp::ExecutionEngine EE(*CI->getIRModule());
    return EE.runFunction("main", {}).I;
  }

  unsigned countInIR(const std::string &Needle) {
    std::string Text = ir::printModule(*CI->getIRModule());
    unsigned N = 0;
    std::size_t Pos = 0;
    while ((Pos = Text.find(Needle, Pos)) != std::string::npos) {
      ++N;
      Pos += Needle.size();
    }
    return N;
  }
};

TEST(StoreForwardTest, ForwardsBlockLocalStoreToLoad) {
  PassHarness H(R"(
    int main() {
      int x = 0;
      x = 5;
      int y = x + 2;
      return y;
    }
  )");
  EXPECT_GE(midend::runStoreForward(*H.CI->getIRModule()), 1u);
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 7);
}

TEST(StoreForwardTest, CallsInvalidateKnownValues) {
  // f() rewrites the global between the store and the load: the load
  // must not be forwarded across the call.
  PassHarness H(R"(
    int g = 1;
    int f() { g = 2; return 0; }
    int main() {
      g = 5;
      int ignored = f();
      return g;
    }
  )");
  midend::runStoreForward(*H.CI->getIRModule());
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 2);
}

TEST(ScalarPromoteTest, PromotesAccumulatorAndIVOutOfLoop) {
  PassHarness H(R"(
    long acc = 0;
    int main() {
      for (int i = 0; i < 100; ++i)
        acc = acc + i;
      int out = acc % 1000;
      return out;
    }
  )");
  // Both the global accumulator and the alloca-resident induction
  // variable leave the loop.
  EXPECT_GE(midend::runScalarPromote(*H.CI->getIRModule()), 2u);
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  // Only the preheader load and the post-loop read remain; the loop
  // body itself carries the value in SSA.
  EXPECT_EQ(H.countInIR("load i64, ptr @acc"), 2u);
  EXPECT_EQ(H.runMain(), 950);
}

TEST(ScalarPromoteTest, CallInLoopBlocksPromotion) {
  PassHarness H(R"(
    int g = 0;
    int bump() { g = g + 1; return 0; }
    int main() {
      for (int i = 0; i < 5; ++i) {
        int ignored = bump();
      }
      return g;
    }
  )");
  midend::runScalarPromote(*H.CI->getIRModule());
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 5);
}

TEST(ScalarPromoteTest, ZeroTripLoopKeepsInitialValue) {
  PassHarness H(R"(
    long acc = 7;
    int main() {
      for (int i = 0; i < 0; ++i)
        acc = acc + 1;
      return acc;
    }
  )");
  midend::runScalarPromote(*H.CI->getIRModule());
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 7);
}

TEST(ScalarPromoteTest, ArrayTrafficDoesNotBlockDistinctScalar) {
  // GEP accesses into @a provably stay inside @a, so the scalar @s is
  // still promotable alongside them.
  PassHarness H(R"(
    long a[4];
    long s = 0;
    int main() {
      for (int i = 0; i < 4; ++i) {
        a[i] = i;
        s = s + a[i];
      }
      return s;
    }
  )");
  EXPECT_GE(midend::runScalarPromote(*H.CI->getIRModule()), 1u);
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 6);
}

TEST(ScalarPromoteTest, UnrollRemainderExitPromotes) {
  // The main unrolled loop exits into the remainder loop's header: the
  // writeback needs a split exit edge, and the accumulator must be
  // promoted out of both loops.
  PassHarness H(R"(
    long acc = 0;
    int main() {
      #pragma omp unroll partial(4)
      for (int i = 0; i < 10; ++i)
        acc = acc + i;
      return acc;
    }
  )");
  midend::runLoopUnroll(*H.CI->getIRModule(), {});
  midend::runSimplifyCFG(*H.CI->getIRModule());
  midend::runStoreForward(*H.CI->getIRModule());
  EXPECT_GE(midend::runScalarPromote(*H.CI->getIRModule()), 1u);
  midend::runDCE(*H.CI->getIRModule());
  EXPECT_EQ(ir::verifyModule(*H.CI->getIRModule()), "");
  EXPECT_EQ(H.runMain(), 45);
}

} // namespace
