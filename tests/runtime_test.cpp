//===--- runtime_test.cpp - KMP runtime unit tests --------------*- C++ -*-===//
//
// The miniature libomp as a unit, independent of the compiler pipeline:
// hot-team reuse across repeated fork/join, sense-reversing barrier
// correctness from 1 up to 2x hardware_concurrency threads, exactly-once
// chunk coverage for every dispatcher schedule under contention, and the
// serial-dispatch context restoration. Designed to run clean under
// -DMCC_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//
#include "runtime/KMPRuntime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

using namespace mcc::rt;

#if defined(__SANITIZE_THREAD__)
#define MCC_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCC_UNDER_TSAN 1
#endif
#endif

namespace {

/// Quiesce the pool and zero counters so each test sees exact numbers.
OpenMPRuntime &freshRuntime() {
  OpenMPRuntime &RT = OpenMPRuntime::get();
  RT.shutdown();
  RT.resetStats();
  RT.setHotTeamsEnabled(true);
  RT.setSpinCount(-1);
  return RT;
}

unsigned hwThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// True when a team of \p N threads cannot run truly concurrently here.
/// Exact spin/sleep wake counters are timing-dependent in that regime
/// (a waiter may observe the flipped sense before ever parking, or
/// exhaust its spin budget while descheduled), so tests only assert them
/// on machines with enough cores — completion and coverage invariants
/// still hold everywhere.
bool oversubscribed(unsigned TeamSize) { return TeamSize > hwThreads(); }

/// Runs \p Body on a separate thread and aborts the whole binary with a
/// diagnostic if it does not finish within \p Limit. A barrier or
/// dispatcher bug would otherwise hang the suite until the global CTest
/// timeout with no indication of the culprit. The deadline is generous —
/// it bounds the spin-wait stress tests, it does not race them.
template <typename Fn>
void withDeadline(const char *What, std::chrono::seconds Limit, Fn &&Body) {
#ifdef MCC_UNDER_TSAN
  Limit *= 20; // TSan serializes and instruments everything
#endif
  std::packaged_task<void()> Task(std::forward<Fn>(Body));
  std::future<void> Done = Task.get_future();
  std::thread Runner(std::move(Task));
  if (Done.wait_for(Limit) == std::future_status::timeout) {
    std::fprintf(stderr,
                 "runtime_test: '%s' exceeded its %llds deadline — "
                 "aborting to unhang the suite\n",
                 What, static_cast<long long>(Limit.count()));
    std::abort();
  }
  Runner.join();
}

TEST(HotTeamTest, ReusesWorkersAcrossRepeatedForkJoin) {
  OpenMPRuntime &RT = freshRuntime();
  constexpr int Forks = 16;
  std::atomic<int> Sum{0};
  for (int I = 0; I < Forks; ++I)
    RT.forkCall([&](int Tid) { Sum.fetch_add(Tid + 1); }, 4);
  EXPECT_EQ(Sum.load(), Forks * (1 + 2 + 3 + 4));

  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_EQ(S.NumForkJoins, static_cast<std::uint64_t>(Forks));
  EXPECT_EQ(S.NumHotTeamForks, static_cast<std::uint64_t>(Forks));
  EXPECT_EQ(S.NumTransientForks, 0u);
  // Workers are created once, then re-dispatched.
  EXPECT_EQ(S.NumPoolThreadsSpawned, 3u);
  EXPECT_EQ(S.NumTransientThreadsSpawned, 0u);
  EXPECT_EQ(S.NumTeamReuses, static_cast<std::uint64_t>(Forks - 1));
}

TEST(HotTeamTest, PoolGrowsLazilyToWidestTeam) {
  OpenMPRuntime &RT = freshRuntime();
  for (int N : {2, 4, 3, 8, 8}) {
    std::atomic<int> Count{0};
    RT.forkCall([&](int) { Count.fetch_add(1); }, N);
    EXPECT_EQ(Count.load(), N);
  }
  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  // 1 + 2 + 0 + 4 + 0 new workers; the widest team needs 7.
  EXPECT_EQ(S.NumPoolThreadsSpawned, 7u);
  // Only the repeated 8-wide team could recycle its ThreadTeam.
  EXPECT_EQ(S.NumTeamReuses, 1u);
}

TEST(HotTeamTest, NestedRegionsFallBackToTransientWorkers) {
  OpenMPRuntime &RT = freshRuntime();
  std::atomic<int> Count{0};
  RT.forkCall(
      [&](int) { RT.forkCall([&](int) { Count.fetch_add(1); }, 3); }, 2);
  EXPECT_EQ(Count.load(), 6);

  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_EQ(S.NumForkJoins, 3u); // outer + two inner
  EXPECT_EQ(S.NumHotTeamForks, 1u);
  EXPECT_EQ(S.NumTransientForks, 2u);
  EXPECT_EQ(S.NumTransientThreadsSpawned, 4u); // 2 inner regions x 2
}

TEST(HotTeamTest, ConcurrentTopLevelForksStayCorrect) {
  OpenMPRuntime &RT = freshRuntime();
  // Two application threads forking simultaneously: one may win the pool,
  // the other must fall back transiently — both must run all work.
  std::atomic<int> Sum{0};
  std::vector<std::thread> Apps;
  for (int A = 0; A < 2; ++A)
    Apps.emplace_back([&] {
      for (int I = 0; I < 8; ++I)
        RT.forkCall([&](int) { Sum.fetch_add(1); }, 4);
    });
  for (std::thread &T : Apps)
    T.join();
  EXPECT_EQ(Sum.load(), 2 * 8 * 4);
  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_EQ(S.NumHotTeamForks + S.NumTransientForks, 16u);
}

TEST(HotTeamTest, HotTeamsCanBeDisabled) {
  OpenMPRuntime &RT = freshRuntime();
  RT.setHotTeamsEnabled(false);
  std::atomic<int> Count{0};
  RT.forkCall([&](int) { Count.fetch_add(1); }, 4);
  RT.forkCall([&](int) { Count.fetch_add(1); }, 4);
  EXPECT_EQ(Count.load(), 8);
  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_EQ(S.NumHotTeamForks, 0u);
  EXPECT_EQ(S.NumTransientForks, 2u);
  EXPECT_EQ(S.NumTransientThreadsSpawned, 6u);
  RT.setHotTeamsEnabled(true);
}

TEST(HotTeamTest, ShutdownIsIdempotentAndPoolRespawns) {
  OpenMPRuntime &RT = freshRuntime();
  std::atomic<int> Count{0};
  RT.forkCall([&](int) { Count.fetch_add(1); }, 4);
  RT.shutdown();
  RT.shutdown(); // idempotent
  RT.forkCall([&](int) { Count.fetch_add(1); }, 4);
  EXPECT_EQ(Count.load(), 8);
  // Pool was rebuilt after the shutdown.
  EXPECT_EQ(RT.statsSnapshot().NumPoolThreadsSpawned, 6u);
  RT.shutdown();
}

TEST(BarrierTest, SynchronizesAllPhases) {
  OpenMPRuntime &RT = freshRuntime();
  const int HW = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> Sizes = {1, 2, 3, HW, 2 * HW};
  Sizes.push_back(8); // a definitely-oversubscribed team on small boxes
  for (int N : Sizes) {
    constexpr int Rounds = 20;
    std::vector<std::atomic<int>> Phase(static_cast<std::size_t>(N));
    for (auto &P : Phase)
      P.store(0);
    std::atomic<bool> Violation{false};
    withDeadline("BarrierTest.SynchronizesAllPhases",
                 std::chrono::seconds(60), [&] {
                   RT.forkCall(
                       [&](int Tid) {
                         for (int R = 0; R < Rounds; ++R) {
                           Phase[static_cast<std::size_t>(Tid)].store(R + 1);
                           RT.barrier();
                           // After the barrier every teammate must have
                           // finished round R.
                           for (int T = 0; T < N; ++T)
                             if (Phase[static_cast<std::size_t>(T)].load() <
                                 R + 1)
                               Violation = true;
                           RT.barrier();
                         }
                       },
                       N);
                 });
    EXPECT_FALSE(Violation.load()) << "team size " << N;
  }
}

TEST(BarrierTest, SpinAndSleepPathsBothComplete) {
  OpenMPRuntime &RT = freshRuntime();
  std::atomic<int> Count{0};
  // Force the sleep path: zero spin budget.
  RT.setSpinCount(0);
  withDeadline("BarrierTest sleep path", std::chrono::seconds(30), [&] {
    RT.forkCall(
        [&](int) {
          Count.fetch_add(1);
          RT.barrier();
        },
        4);
  });
  OpenMPRuntime::StatsSnapshot Slept = RT.statsSnapshot();
  EXPECT_EQ(Slept.BarrierSpinWakes, 0u);

  // Force the spin path: effectively unbounded budget. (Backoff yields,
  // so this terminates even when the team oversubscribes the hardware.)
  RT.setSpinCount(1 << 30);
  withDeadline("BarrierTest spin path", std::chrono::seconds(30), [&] {
    RT.forkCall(
        [&](int) {
          Count.fetch_add(1);
          RT.barrier();
        },
        4);
  });
  OpenMPRuntime::StatsSnapshot Spun = RT.statsSnapshot();
  EXPECT_EQ(Count.load(), 8);
  RT.setSpinCount(-1);

  // Wake-path accounting is only exact when all four threads can truly
  // run at once: under oversubscription the runtime clamps the spin
  // budget to zero (spinning while descheduled wastes the core the
  // release needs), so the "forced spin" fork legitimately sleeps.
  if (oversubscribed(4)) {
    GTEST_SKIP() << "team of 4 oversubscribes " << hwThreads()
                 << " hardware threads; skipping exact wake-path counters";
  }
  EXPECT_GE(Slept.BarrierSleepWakes, 3u);
  EXPECT_GE(Spun.BarrierSpinWakes, 3u);
  EXPECT_EQ(Spun.BarrierSleepWakes, Slept.BarrierSleepWakes);
}

TEST(DispatchTest, ExactlyOnceCoverageUnderContention) {
  OpenMPRuntime &RT = freshRuntime();
  // Both waiting policies, all dispatcher schedules, uneven chunking.
  for (int Spin : {0, 1 << 30}) {
    RT.setSpinCount(Spin);
    for (std::int32_t Sched :
         {SchedDynamic, SchedGuided, SchedStaticChunked}) {
      constexpr std::int64_t Trip = 2000;
      std::vector<std::atomic<int>> Hits(Trip);
      for (auto &H : Hits)
        H.store(0);
      withDeadline("DispatchTest.ExactlyOnceCoverageUnderContention",
                   std::chrono::seconds(60), [&] {
                     RT.forkCall(
                         [&](int) {
                           RT.dispatchInit(Sched, 0, Trip - 1, 7);
                           std::int32_t Last;
                           std::int64_t Lb, Ub;
                           while (RT.dispatchNext(&Last, &Lb, &Ub))
                             for (std::int64_t I = Lb; I <= Ub; ++I)
                               Hits[static_cast<std::size_t>(I)].fetch_add(1);
                         },
                         4);
                   });
      for (std::int64_t I = 0; I < Trip; ++I)
        ASSERT_EQ(Hits[static_cast<std::size_t>(I)].load(), 1)
            << "spin=" << Spin << " sched=" << Sched << " i=" << I;
    }
  }
  RT.setSpinCount(-1);
  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_GT(S.NumChunksDynamic, 0u);
  EXPECT_GT(S.NumChunksGuided, 0u);
  EXPECT_GT(S.NumChunksStaticChunked, 0u);
}

TEST(DispatchTest, GuidedChunksShrinkAndRespectMinimum) {
  OpenMPRuntime &RT = freshRuntime();
  constexpr std::int64_t Trip = 10000;
  std::mutex Mx;
  std::vector<std::int64_t> Sizes;
  RT.forkCall(
      [&](int) {
        RT.dispatchInit(SchedGuided, 0, Trip - 1, 4);
        std::int32_t Last;
        std::int64_t Lb, Ub;
        while (RT.dispatchNext(&Last, &Lb, &Ub)) {
          std::lock_guard<std::mutex> Lock(Mx);
          Sizes.push_back(Ub - Lb + 1);
        }
      },
      4);
  std::int64_t Total = 0;
  for (std::int64_t Sz : Sizes) {
    EXPECT_GE(Sz, 1);
    Total += Sz;
  }
  EXPECT_EQ(Total, Trip);
  // The first claimed chunk is proportional (trip / 2T), far above the
  // minimum; the tail collapses to the minimum chunk size.
  EXPECT_GT(*std::max_element(Sizes.begin(), Sizes.end()), 4);
}

TEST(DispatchTest, SerialDispatchRestoresOutsideContext) {
  OpenMPRuntime &RT = freshRuntime();
  ASSERT_EQ(RT.getCurrentTeam(), nullptr);
  RT.dispatchInit(SchedDynamic, 0, 9, 4);
  // Mid-loop the serial team is current...
  EXPECT_NE(RT.getCurrentTeam(), nullptr);
  EXPECT_EQ(RT.getNumThreads(), 1);
  std::int32_t Last;
  std::int64_t Lb, Ub;
  std::int64_t Seen = 0;
  while (RT.dispatchNext(&Last, &Lb, &Ub))
    Seen += Ub - Lb + 1;
  EXPECT_EQ(Seen, 10);
  // ...but once it drains the outside-parallel context is restored.
  EXPECT_EQ(RT.getCurrentTeam(), nullptr);

  // dispatchFini is an alternative (early) release point.
  RT.dispatchInit(SchedDynamic, 0, 9, 4);
  EXPECT_NE(RT.getCurrentTeam(), nullptr);
  RT.dispatchFini();
  EXPECT_EQ(RT.getCurrentTeam(), nullptr);
}

TEST(DispatchTest, StaticInitCountsChunkStats) {
  OpenMPRuntime &RT = freshRuntime();
  RT.forkCall(
      [&](int) {
        std::int32_t Last = 0;
        std::int64_t Lb = 0, Ub = 99, Stride = 1;
        RT.forStaticInit(SchedStatic, &Last, &Lb, &Ub, &Stride, 1, 0);
      },
      4);
  EXPECT_EQ(RT.statsSnapshot().NumChunksStatic, 4u);
}

// Death tests fork, which TSan dislikes; skip only there.
#ifndef MCC_UNDER_TSAN
TEST(DispatchTest, StaticInitRejectsNonStaticSchedules) {
  OpenMPRuntime &RT = freshRuntime();
  std::int32_t Last = 0;
  std::int64_t Lb = 0, Ub = 99, Stride = 1;
  EXPECT_DEATH(
      RT.forStaticInit(SchedDynamic, &Last, &Lb, &Ub, &Stride, 1, 0),
      "unsupported schedule");
}
#endif

TEST(StatsTest, WorkerWakePolicyIsObservable) {
  OpenMPRuntime &RT = freshRuntime();
  // First fork spawns the workers (no wake); subsequent forks re-dispatch
  // parked workers through the chosen waiting policy.
  RT.setSpinCount(0); // park = sleep immediately
  RT.forkCall([](int) {}, 4);
  RT.forkCall([](int) {}, 4);
  RT.forkCall([](int) {}, 4);
  OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  EXPECT_EQ(S.NumTeamReuses, 2u);
  EXPECT_GE(S.WorkerSleepWakes + S.WorkerSpinWakes, 6u);
  // Whether a parked worker is woken through the sleep or the spin path
  // depends on it reaching the park point before the next dispatch; only
  // guaranteed when the team fits the hardware.
  if (!oversubscribed(4)) {
    EXPECT_GE(S.WorkerSleepWakes, 1u);
  }
  RT.setSpinCount(-1);
}

TEST(StatsTest, RenderStatsMentionsEveryCounterGroup) {
  OpenMPRuntime &RT = freshRuntime();
  RT.forkCall([](int) {}, 2);
  std::string Text = RT.renderStats();
  for (const char *Needle :
       {"forks:", "threads:", "chunks:", "barriers:", "workers:", "hot="})
    EXPECT_NE(Text.find(Needle), std::string::npos) << Needle;
}

} // namespace
