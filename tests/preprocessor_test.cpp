//===--- preprocessor_test.cpp - Unit tests for the Preprocessor ----------===//
#include "lex/Preprocessor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace mcc;

namespace {

/// Harness owning all the state a preprocess run needs.
struct PPHarness {
  FileManager FM;
  SourceManager SM;
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags{&Consumer};
  std::unique_ptr<Preprocessor> PP;

  explicit PPHarness(std::string_view MainSource) {
    FM.addVirtualFile("main.c", MainSource);
    PP = std::make_unique<Preprocessor>(FM, SM, Diags);
  }

  void addFile(const std::string &Name, std::string_view Text) {
    FM.addVirtualFile(Name, Text);
  }

  std::vector<Token> run() {
    EXPECT_TRUE(PP->enterMainFile("main.c"));
    std::vector<Token> Toks;
    Token Tok;
    while (true) {
      PP->lex(Tok);
      if (Tok.is(tok::eof))
        break;
      Toks.push_back(Tok);
    }
    return Toks;
  }

  static std::string spelling(const std::vector<Token> &Toks) {
    std::string S;
    for (const Token &T : Toks) {
      if (!S.empty())
        S += ' ';
      if (T.is(tok::annot_pragma_openmp))
        S += "<omp>";
      else if (T.is(tok::annot_pragma_openmp_end))
        S += "</omp>";
      else
        S += std::string(T.getText());
    }
    return S;
  }
};

TEST(PreprocessorTest, PassthroughWithoutDirectives) {
  PPHarness H("int main ( ) { return 0 ; }");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int main ( ) { return 0 ; }");
  EXPECT_EQ(H.Diags.getNumErrors(), 0u);
}

TEST(PreprocessorTest, ObjectMacroExpansion) {
  PPHarness H("#define N 100\nint x = N;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 100 ;");
}

TEST(PreprocessorTest, MacroExpandsToMultipleTokens) {
  PPHarness H("#define EXPR (a + b)\nint x = EXPR;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = ( a + b ) ;");
}

TEST(PreprocessorTest, NestedMacroExpansion) {
  PPHarness H("#define A B\n#define B 42\nint x = A;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 42 ;");
}

TEST(PreprocessorTest, RecursiveMacroDoesNotLoop) {
  PPHarness H("#define X X + 1\nint y = X;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int y = X + 1 ;");
}

TEST(PreprocessorTest, MutuallyRecursiveMacros) {
  PPHarness H("#define A B\n#define B A\nint x = A;");
  // A -> B -> A, where the final A is hidden; must terminate.
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = A ;");
}

TEST(PreprocessorTest, FunctionLikeMacro) {
  PPHarness H("#define SQR(x) ((x) * (x))\nint y = SQR(a + 1);");
  EXPECT_EQ(PPHarness::spelling(H.run()),
            "int y = ( ( a + 1 ) * ( a + 1 ) ) ;");
}

TEST(PreprocessorTest, FunctionLikeMacroTwoParams) {
  PPHarness H("#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint m = MIN(x, y);");
  EXPECT_EQ(PPHarness::spelling(H.run()),
            "int m = ( ( x ) < ( y ) ? ( x ) : ( y ) ) ;");
}

TEST(PreprocessorTest, FunctionLikeMacroNameWithoutParens) {
  PPHarness H("#define F(x) x\nint F;");
  // Without an argument list, F is an ordinary identifier.
  EXPECT_EQ(PPHarness::spelling(H.run()), "int F ;");
}

TEST(PreprocessorTest, FunctionLikeMacroNestedParensInArg) {
  PPHarness H("#define ID(x) x\nint y = ID(f(a, b));");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int y = f ( a , b ) ;");
}

TEST(PreprocessorTest, Undef) {
  PPHarness H("#define N 1\n#undef N\nint x = N;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = N ;");
}

TEST(PreprocessorTest, RedefinitionWarns) {
  PPHarness H("#define N 1\n#define N 2\nint x = N;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 2 ;");
  EXPECT_EQ(H.Diags.getNumWarnings(), 1u);
}

TEST(PreprocessorTest, Ifdef) {
  PPHarness H("#define YES 1\n#ifdef YES\nint a;\n#endif\n#ifdef NO\nint "
              "b;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int a ;");
}

TEST(PreprocessorTest, IfndefElse) {
  PPHarness H("#ifndef X\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int a ;");
}

TEST(PreprocessorTest, ElseBranchTaken) {
  PPHarness H("#ifdef X\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int b ;");
}

TEST(PreprocessorTest, NestedConditionals) {
  PPHarness H("#define A 1\n"
              "#ifdef A\n"
              "#ifdef B\nint x;\n#else\nint y;\n#endif\n"
              "#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int y ;");
}

TEST(PreprocessorTest, SkippedRegionsIgnoreDirectives) {
  PPHarness H("#ifdef NOPE\n#define N 1\n#endif\nint x = N;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = N ;");
}

TEST(PreprocessorTest, IfWithConstantExpression) {
  PPHarness H("#if 2 + 2 == 4\nint a;\n#endif\n#if 1 > 2\nint b;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int a ;");
}

TEST(PreprocessorTest, IfDefined) {
  PPHarness H("#define F 1\n#if defined(F) && !defined(G)\nint a;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int a ;");
}

TEST(PreprocessorTest, IfWithMacroValue) {
  PPHarness H("#define LEVEL 3\n#if LEVEL >= 2\nint a;\n#endif\n"
              "#if LEVEL >= 5\nint b;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int a ;");
}

TEST(PreprocessorTest, ElifChain) {
  PPHarness H("#define V 2\n"
              "#if V == 1\nint a;\n#elif V == 2\nint b;\n#elif V == "
              "3\nint c;\n#else\nint d;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int b ;");
}

TEST(PreprocessorTest, UnterminatedConditionalDiagnosed) {
  PPHarness H("#ifdef X\nint a;\n");
  H.run();
  EXPECT_GE(H.Diags.getNumErrors(), 1u);
}

TEST(PreprocessorTest, ElseWithoutIf) {
  PPHarness H("#else\n");
  H.run();
  EXPECT_EQ(H.Diags.getNumErrors(), 1u);
}

TEST(PreprocessorTest, Include) {
  PPHarness H("#include \"decl.h\"\nint y = x;");
  H.addFile("decl.h", "int x = 1;\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 1 ; int y = x ;");
}

TEST(PreprocessorTest, NestedInclude) {
  PPHarness H("#include \"a.h\"\nint end;");
  H.addFile("a.h", "#include \"b.h\"\nint a;\n");
  H.addFile("b.h", "int b;\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int b ; int a ; int end ;");
}

TEST(PreprocessorTest, IncludeNotFound) {
  PPHarness H("#include \"missing.h\"\n");
  H.run();
  EXPECT_EQ(H.Diags.getNumErrors(), 1u);
}

TEST(PreprocessorTest, IncludeGuardIdiom) {
  PPHarness H("#include \"g.h\"\n#include \"g.h\"\nint z;");
  H.addFile("g.h", "#ifndef G_H\n#define G_H\nint g;\n#endif\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int g ; int z ;");
}

TEST(PreprocessorTest, MacroDefinedInInclude) {
  PPHarness H("#include \"n.h\"\nint x = N;");
  H.addFile("n.h", "#define N 7\n");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 7 ;");
}

TEST(PreprocessorTest, OpenMPPragmaAnnotation) {
  PPHarness H("#pragma omp parallel for\nfor (;;) ;");
  std::vector<Token> Toks = H.run();
  EXPECT_EQ(PPHarness::spelling(Toks),
            "<omp> parallel for </omp> for ( ; ; ) ;");
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].getKind(), tok::annot_pragma_openmp);
  EXPECT_EQ(Toks[1].getKind(), tok::identifier);
  EXPECT_EQ(Toks[2].getKind(), tok::kw_for); // 'for' keyword inside pragma
  EXPECT_EQ(Toks[3].getKind(), tok::annot_pragma_openmp_end);
}

TEST(PreprocessorTest, OpenMPPragmaMacroExpansion) {
  // OpenMP 5.1 requires macro expansion inside pragma directives.
  PPHarness H("#define TILE 32\n#pragma omp tile sizes(TILE, TILE)\n");
  EXPECT_EQ(PPHarness::spelling(H.run()),
            "<omp> tile sizes ( 32 , 32 ) </omp>");
}

TEST(PreprocessorTest, NonOmpPragmaDiscarded) {
  PPHarness H("#pragma once\nint x;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x ;");
}

TEST(PreprocessorTest, OpenMPDisabled) {
  PPHarness H("#pragma omp parallel for\nint x;");
  H.PP->setOpenMPEnabled(false);
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x ;");
}

TEST(PreprocessorTest, PragmaInsideSkippedRegion) {
  PPHarness H("#ifdef NO\n#pragma omp parallel\n#endif\nint x;");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x ;");
}

TEST(PreprocessorTest, MetadirectiveStylePerTargetSelection) {
  // The paper's motivation: choose different optimizations per hardware
  // using the preprocessor while keeping the algorithm source identical.
  const char *Source = "#if TARGET == 1\n"
                       "#pragma omp unroll partial(4)\n"
                       "#else\n"
                       "#pragma omp tile sizes(16)\n"
                       "#endif\n"
                       "for (;;) ;";
  {
    PPHarness H(Source);
    H.PP->defineCommandLineMacro("TARGET", "1");
    EXPECT_EQ(PPHarness::spelling(H.run()),
              "<omp> unroll partial ( 4 ) </omp> for ( ; ; ) ;");
  }
  {
    PPHarness H(Source);
    H.PP->defineCommandLineMacro("TARGET", "2");
    EXPECT_EQ(PPHarness::spelling(H.run()),
              "<omp> tile sizes ( 16 ) </omp> for ( ; ; ) ;");
  }
}

TEST(PreprocessorTest, CommandLineMacro) {
  PPHarness H("int x = VALUE;");
  H.PP->defineCommandLineMacro("VALUE", "123");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int x = 123 ;");
}

TEST(PreprocessorTest, IncludeSearchPath) {
  PPHarness H("#include <lib.h>\n");
  H.addFile("sys/lib.h", "int fromlib;\n");
  H.PP->addIncludeDir("sys");
  EXPECT_EQ(PPHarness::spelling(H.run()), "int fromlib ;");
}

} // namespace
