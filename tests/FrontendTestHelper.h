//===--- FrontendTestHelper.h - Shared test harness --------------*- C++ -*-===//
//
// Drives the full front-end pipeline (FileManager -> SourceManager ->
// Lexer -> Preprocessor -> Parser -> Sema) over in-memory source and hands
// tests the resulting AST plus collected diagnostics.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_TESTS_FRONTENDTESTHELPER_H
#define MCC_TESTS_FRONTENDTESTHELPER_H

#include "ast/ASTDumper.h"
#include "ast/RecursiveASTVisitor.h"
#include "lex/Preprocessor.h"
#include "parse/Parser.h"
#include "sema/Sema.h"

#include <memory>
#include <string>

namespace mcc::test {

struct Frontend {
  FileManager FM;
  SourceManager SM;
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags{&Consumer};
  ASTContext Ctx;
  LangOptions Opts;
  std::unique_ptr<Preprocessor> PP;
  std::unique_ptr<Sema> Actions;
  TranslationUnitDecl *TU = nullptr;

  explicit Frontend(std::string_view Source, LangOptions LO = {}) : Opts(LO) {
    FM.addVirtualFile("test.c", Source);
    PP = std::make_unique<Preprocessor>(FM, SM, Diags);
    PP->setOpenMPEnabled(Opts.OpenMP);
    Actions = std::make_unique<Sema>(Ctx, Diags, Opts);
    PP->enterMainFile("test.c");
    Parser P(*PP, *Actions);
    TU = P.parseTranslationUnit();
  }

  [[nodiscard]] unsigned errors() const { return Diags.getNumErrors(); }
  [[nodiscard]] unsigned warnings() const { return Diags.getNumWarnings(); }

  /// All diagnostics with the given ID.
  [[nodiscard]] std::vector<Diagnostic> diagsWithID(diag::DiagID ID) const {
    std::vector<Diagnostic> Out;
    for (const Diagnostic &D : Consumer.getDiagnostics())
      if (D.ID == ID)
        Out.push_back(D);
    return Out;
  }

  [[nodiscard]] bool hasDiag(diag::DiagID ID) const {
    return !diagsWithID(ID).empty();
  }

  [[nodiscard]] std::string diagMessages() const {
    std::string Out;
    for (const Diagnostic &D : Consumer.getDiagnostics()) {
      Out += D.Message;
      Out += '\n';
    }
    return Out;
  }

  /// The first function named \p Name, or nullptr.
  [[nodiscard]] FunctionDecl *getFunction(std::string_view Name) const {
    if (!TU)
      return nullptr;
    for (Decl *D : TU->decls())
      if (auto *FD = decl_dyn_cast<FunctionDecl>(D))
        if (FD->getName() == Name)
          return FD;
    return nullptr;
  }

  /// First statement of the given class anywhere in \p Name's body
  /// (searches the syntactic tree only, not shadow AST).
  template <typename T> [[nodiscard]] T *findStmt(std::string_view Name) const {
    FunctionDecl *FD = getFunction(Name);
    if (!FD || !FD->hasBody())
      return nullptr;
    struct Finder : RecursiveASTVisitor<Finder> {
      T *Found = nullptr;
      bool visitStmt(Stmt *S) {
        if (auto *Typed = stmt_dyn_cast<T>(S)) {
          Found = Typed;
          return false;
        }
        return true;
      }
    } F;
    F.traverseStmt(FD->getBody());
    return F.Found;
  }
};

/// Counts nodes of class T in a subtree (optionally including shadow AST).
template <typename T>
unsigned countStmts(Stmt *Root, bool IncludeShadow = false) {
  struct Counter : RecursiveASTVisitor<Counter> {
    unsigned N = 0;
    bool visitStmt(Stmt *S) {
      if (stmt_dyn_cast<T>(S))
        ++N;
      return true;
    }
  } C;
  C.ShouldVisitShadowAST = IncludeShadow;
  C.traverseStmt(Root);
  return C.N;
}

} // namespace mcc::test

#endif // MCC_TESTS_FRONTENDTESTHELPER_H
