//===--- ir_test.cpp - IR core, printer, verifier, IRBuilder tests --------===//
#include "irbuilder/IRBuilder.h"

#include <gtest/gtest.h>

using namespace mcc::ir;

namespace {

TEST(IRTypeTest, SizesAndNames) {
  EXPECT_EQ(IRType::getI32()->getSizeInBytes(), 4u);
  EXPECT_EQ(IRType::getI64()->getSizeInBytes(), 8u);
  EXPECT_EQ(IRType::getDouble()->getSizeInBytes(), 8u);
  EXPECT_EQ(IRType::getPtr()->getSizeInBytes(), 8u);
  EXPECT_STREQ(IRType::getI1()->getName(), "i1");
  EXPECT_TRUE(IRType::getI32()->isInteger());
  EXPECT_FALSE(IRType::getDouble()->isInteger());
  EXPECT_TRUE(IRType::getPtr()->isPointer());
}

TEST(IRTest, ConstantsAreUniqued) {
  Module M;
  EXPECT_EQ(M.getI32(42), M.getI32(42));
  EXPECT_NE(M.getI32(42), M.getI32(43));
  EXPECT_NE(static_cast<Value *>(M.getI32(42)),
            static_cast<Value *>(M.getI64(42)));
  EXPECT_EQ(M.getDouble(1.5), M.getDouble(1.5));
}

TEST(IRTest, FunctionCreation) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(),
                                 {IRType::getI32(), IRType::getPtr()},
                                 {"x", "p"});
  EXPECT_EQ(F->getNumArgs(), 2u);
  EXPECT_EQ(F->getArg(0)->getName(), "x");
  EXPECT_TRUE(F->isDeclaration());
  F->createBlock("entry");
  EXPECT_FALSE(F->isDeclaration());
  EXPECT_EQ(M.getFunction("f"), F);
  EXPECT_EQ(M.getFunction("g"), nullptr);
}

TEST(IRTest, GetOrInsertFunctionReuses) {
  Module M;
  Function *A = M.getOrInsertFunction("ext", IRType::getVoid(), {});
  Function *B = M.getOrInsertFunction("ext", IRType::getVoid(), {});
  EXPECT_EQ(A, B);
}

TEST(IRTest, BlockPredecessors) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B = F->createBlock("b");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder Bld(M);
  Bld.setInsertPoint(Entry);
  Bld.createCondBr(M.getI1(true), A, B);
  Bld.setInsertPoint(A);
  Bld.createBr(Join);
  Bld.setInsertPoint(B);
  Bld.createBr(Join);
  Bld.setInsertPoint(Join);
  Bld.createRetVoid();

  std::vector<BasicBlock *> Preds = Join->predecessors();
  EXPECT_EQ(Preds.size(), 2u);
  EXPECT_EQ(Entry->predecessors().size(), 0u);
}

TEST(IRBuilderTest, ConstantFolding) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {IRType::getI32()});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);

  // 2 + 3 folds without creating an instruction.
  Value *V = B.createAdd(M.getI32(2), M.getI32(3));
  auto *C = ir_dyn_cast<ConstantInt>(V);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getValue(), 5);
  EXPECT_EQ(BB->size(), 0u);
  EXPECT_GE(B.getNumFolds(), 1u);
}

TEST(IRBuilderTest, AlgebraicSimplifications) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {IRType::getI32()});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *X = F->getArg(0);

  EXPECT_EQ(B.createAdd(X, M.getI32(0)), X); // x + 0 = x
  EXPECT_EQ(B.createMul(X, M.getI32(1)), X); // x * 1 = x
  EXPECT_EQ(B.createSub(X, M.getI32(0)), X); // x - 0 = x
  Value *Zero = B.createMul(X, M.getI32(0)); // x * 0 = 0
  auto *C = ir_dyn_cast<ConstantInt>(Zero);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getValue(), 0);
  EXPECT_EQ(BB->size(), 0u);
}

TEST(IRBuilderTest, FoldingCanBeDisabled) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M, /*FoldConstants=*/false);
  B.setInsertPoint(BB);
  Value *V = B.createAdd(M.getI32(2), M.getI32(3));
  EXPECT_EQ(ir_dyn_cast<ConstantInt>(V), nullptr);
  EXPECT_EQ(BB->size(), 1u);
}

TEST(IRBuilderTest, FoldedTruncationRespectsWidth) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  // 0x7FFFFFFF + 1 in i32 wraps to INT32_MIN.
  Value *V = B.createAdd(M.getI32(0x7FFFFFFF), M.getI32(1));
  auto *C = ir_dyn_cast<ConstantInt>(V);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getValue(), INT32_MIN);
}

TEST(IRBuilderTest, IntCastFolding) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI64(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *V = B.createIntCast(M.getI32(-5), IRType::getI64(), true);
  auto *C = ir_dyn_cast<ConstantInt>(V);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getValue(), -5);
  EXPECT_EQ(C->getType(), IRType::getI64());
}

TEST(IRBuilderTest, AllocaInEntryStaysInEntry) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Other = F->createBlock("other");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Other);
  B.setInsertPoint(Other);
  Instruction *A = B.createAllocaInEntry(IRType::getI64(), 1, "slot");
  EXPECT_EQ(A->getParent(), Entry);
  EXPECT_EQ(Entry->front(), A); // before the branch
}

TEST(IRPrinterTest, PrintsStructure) {
  Module M("test");
  Function *F =
      M.createFunction("sum", IRType::getI32(),
                       {IRType::getI32(), IRType::getI32()}, {"a", "b"});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *S = B.createAdd(F->getArg(0), F->getArg(1), "sum");
  B.createRet(S);

  std::string Text = printModule(M);
  EXPECT_NE(Text.find("define i32 @sum(i32 %a, i32 %b)"), std::string::npos);
  EXPECT_NE(Text.find("%sum = add i32 %a, %b"), std::string::npos);
  EXPECT_NE(Text.find("ret i32 %sum"), std::string::npos);
}

TEST(IRPrinterTest, PrintsLoopMetadata) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *A = F->createBlock("a");
  IRBuilder B(M);
  B.setInsertPoint(A);
  Instruction *Br = B.createBr(A);
  Br->LoopMD.UnrollCount = 4;
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("!unroll.count(4)"), std::string::npos);
}

TEST(VerifierTest, AcceptsWellFormed) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {IRType::getI32()});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet(F->getArg(0));
  EXPECT_EQ(verifyModule(M), "");
}

TEST(VerifierTest, DetectsMissingTerminator) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createAlloca(IRType::getI32());
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("not terminated"), std::string::npos);
}

TEST(VerifierTest, DetectsTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *BB = F->createBlock("entry");
  // Hand-build a mistyped add (the builder would assert/fold).
  auto Bad = std::make_unique<Instruction>(
      Opcode::Add, IRType::getI32(),
      std::vector<Value *>{M.getI32(1), M.getI64(2)}, "bad");
  BB->append(std::move(Bad));
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRetVoid();
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("type mismatch"), std::string::npos);
}

TEST(VerifierTest, DetectsRetTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", IRType::getI32(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet(M.getI64(0));
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("ret value type mismatch"), std::string::npos);
}

TEST(VerifierTest, DetectsBadPhi) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Next);
  B.setInsertPoint(Next);
  Instruction *Phi = B.createPhi(IRType::getI32(), "p");
  // Incoming from a non-predecessor block.
  Phi->addIncoming(M.getI32(1), Next);
  B.createRetVoid();
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("not a predecessor"), std::string::npos);
}

TEST(VerifierTest, DetectsMidBlockTerminator) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRetVoid();
  // Hand-append a second terminator; the first is now mid-block.
  BB->append(std::make_unique<Instruction>(Opcode::Ret, IRType::getVoid(),
                                           std::vector<Value *>{}, ""));
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("terminator in the middle of a block"),
            std::string::npos);
}

TEST(VerifierTest, DetectsSelfReferencingInstruction) {
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *BB = F->createBlock("entry");
  auto Bad = std::make_unique<Instruction>(
      Opcode::Add, IRType::getI32(),
      std::vector<Value *>{M.getI32(1), M.getI32(2)}, "selfref");
  Bad->setOperand(0, Bad.get());
  BB->append(std::move(Bad));
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRetVoid();
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("uses itself as an operand"), std::string::npos);
}

TEST(VerifierTest, AcceptsPhiSelfReference) {
  // A loop-carried phi legitimately appears among its own incoming values.
  Module M;
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  Instruction *Phi = B.createPhi(IRType::getI32(), "p");
  Phi->addIncoming(M.getI32(0), Entry);
  Phi->addIncoming(Phi, Loop);
  B.createBr(Loop);
  std::string Err = verifyFunction(*F);
  EXPECT_EQ(Err.find("uses itself as an operand"), std::string::npos);
}

TEST(VerifierTest, DetectsCallArityMismatch) {
  Module M;
  Function *Callee = M.createFunction("g", IRType::getVoid(),
                                      {IRType::getI32()});
  Function *F = M.createFunction("f", IRType::getVoid(), {});
  BasicBlock *BB = F->createBlock("entry");
  auto Bad = std::make_unique<Instruction>(
      Opcode::Call, IRType::getVoid(), std::vector<Value *>{Callee}, "");
  BB->append(std::move(Bad));
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRetVoid();
  std::string Err = verifyFunction(*F);
  EXPECT_NE(Err.find("arity mismatch"), std::string::npos);
}

} // namespace
