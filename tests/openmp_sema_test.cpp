//===--- openmp_sema_test.cpp - OpenMP directive construction tests -------===//
//
// Verifies the AST-level design points of the paper:
//   * class hierarchy (Fig. 4/5/6) and clause attachment
//   * shadow AST hidden from children() (Section 1.2 footnote)
//   * transformed statement construction for tile / unroll (Section 2)
//   * OMPCanonicalLoop construction in IRBuilder mode (Section 3)
//   * the 36-vs-3 meta-information reduction (E8)
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

LangOptions irBuilderMode() {
  LangOptions LO;
  LO.OpenMPEnableIRBuilder = true;
  return LO;
}

const char *UnrollPartial2 = R"(
  void body(int x);
  void f(int N) {
    #pragma omp unroll partial(2)
    for (int i = 7; i < 17; i += 3)
      body(i);
  }
)";

TEST(OpenMPSemaTest, ParallelForDirective) {
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp parallel for schedule(static)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Dir = F.findStmt<OMPParallelForDirective>("f");
  ASSERT_NE(Dir, nullptr);
  EXPECT_EQ(Dir->getDirectiveKind(), OpenMPDirectiveKind::ParallelFor);
  EXPECT_EQ(Dir->getNumClauses(), 1u);
  const auto *Sched = Dir->getSingleClause<OMPScheduleClause>();
  ASSERT_NE(Sched, nullptr);
  EXPECT_EQ(Sched->getScheduleKind(), OpenMPScheduleKind::Static);

  // The associated statement is wrapped in a CapturedStmt borrowing from
  // the lambda/block implementation (Section 1.2).
  auto *CS = stmt_dyn_cast<CapturedStmt>(Dir->getAssociatedStmt());
  ASSERT_NE(CS, nullptr);
  EXPECT_EQ(CS->getCapturedDecl()->getNumParams(), 3u);
  EXPECT_EQ(CS->getCapturedDecl()->getParam(0)->getName(), ".global_tid.");
  EXPECT_EQ(CS->getCapturedDecl()->getParam(1)->getName(), ".bound_tid.");
  EXPECT_EQ(CS->getCapturedDecl()->getParam(2)->getName(), "__context");
  // All bounds are constants and 'i' is declared inside: nothing crosses
  // the outlining boundary.
  EXPECT_EQ(CS->captures().size(), 0u);

  // The loop is an ordinary ForStmt, same node as without OpenMP.
  EXPECT_NE(stmt_dyn_cast<ForStmt>(Dir->getInnermostAssociatedStmt()),
            nullptr);

  // Legacy pipeline: the shadow helper expressions exist...
  const OMPLoopHelperExprs &H =
      stmt_cast<OMPLoopDirective>(Dir)->getLoopHelpers();
  EXPECT_GE(H.countShadowNodes(), 20u);
  EXPECT_NE(H.IterationVar, nullptr);
  EXPECT_EQ(std::string(H.IterationVar->getName()), ".omp.iv");
  ASSERT_EQ(H.Loops.size(), 1u);
  EXPECT_EQ(H.Loops[0].CounterVar->getName(), "i");

  // ...but are NOT enumerated by children() (Section 1.2 footnote).
  std::vector<Stmt *> Children = Dir->children();
  ASSERT_EQ(Children.size(), 1u);
  EXPECT_EQ(Children[0], Dir->getAssociatedStmt());
}

TEST(OpenMPSemaTest, CapturesVariablesCrossingTheOutliningBoundary) {
  Frontend F(R"(
    void use(int x);
    void f(int N) {
      int scale = 3;
      int local = 0;
      #pragma omp parallel for
      for (int i = 0; i < N; ++i)
        use(i * scale + local);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Dir = F.findStmt<OMPParallelForDirective>("f");
  ASSERT_NE(Dir, nullptr);
  auto *CS = stmt_dyn_cast<CapturedStmt>(Dir->getAssociatedStmt());
  ASSERT_NE(CS, nullptr);
  // N (bound), scale and local (body) are declared outside -> captured.
  std::vector<std::string> Names;
  for (const CapturedStmt::Capture &C : CS->captures())
    Names.emplace_back(C.Var->getName());
  EXPECT_EQ(Names.size(), 3u);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "N"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "scale"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "local"), Names.end());
}

TEST(OpenMPSemaTest, GlobalsAreNotCaptured) {
  Frontend F(R"(
    int g = 0;
    void f(int N) {
      #pragma omp parallel for
      for (int i = 0; i < N; ++i)
        g = g < i ? i : g;
    }
  )");
  // Note: the unsynchronized write to g races at runtime; capture analysis
  // is what is under test here.
  EXPECT_EQ(F.errors(), 0u);
  auto *Dir = F.findStmt<OMPParallelForDirective>("f");
  auto *CS = stmt_dyn_cast<CapturedStmt>(Dir->getAssociatedStmt());
  ASSERT_NE(CS, nullptr);
  for (const CapturedStmt::Capture &C : CS->captures())
    EXPECT_NE(C.Var->getName(), "g");
}

TEST(OpenMPSemaTest, ClassHierarchy) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp tile sizes(4)
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Tile = F.findStmt<OMPTileDirective>("f");
  ASSERT_NE(Tile, nullptr);
  // Fig. 5: OMPTileDirective is an OMPLoopBasedDirective (and transitively
  // an OMPExecutableDirective) but NOT an OMPLoopDirective.
  EXPECT_TRUE(OMPLoopBasedDirective::classof(Tile));
  EXPECT_TRUE(OMPExecutableDirective::classof(Tile));
  EXPECT_TRUE(OMPLoopTransformationDirective::classof(Tile));
  EXPECT_FALSE(OMPLoopDirective::classof(Tile));
}

TEST(OpenMPSemaTest, UnrollPartialBuildsTransformedStmt) {
  Frontend F(UnrollPartial2);
  EXPECT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  EXPECT_TRUE(Unroll->hasPartialClause());
  ASSERT_NE(Unroll->getTransformedStmt(), nullptr);

  // Paper Fig. 8: the transformed AST is a strip-mined outer loop whose
  // body is an AttributedStmt carrying an implicit LoopHintAttr
  // UnrollCount(2) on the kept inner loop — no body duplication.
  auto *Outer = stmt_dyn_cast<ForStmt>(Unroll->getTransformedStmt());
  ASSERT_NE(Outer, nullptr);
  auto *OuterInit = stmt_dyn_cast<DeclStmt>(Outer->getInit());
  ASSERT_NE(OuterInit, nullptr);
  EXPECT_EQ(OuterInit->getSingleDecl()->getName(), "unrolled.iv.i");
  EXPECT_TRUE(OuterInit->getSingleDecl()->isImplicit());

  auto *Attributed = stmt_dyn_cast<AttributedStmt>(Outer->getBody());
  ASSERT_NE(Attributed, nullptr);
  ASSERT_EQ(Attributed->getAttrs().size(), 1u);
  const auto *Hint =
      static_cast<const LoopHintAttr *>(Attributed->getAttrs()[0]);
  EXPECT_EQ(Hint->getOption(), LoopHintAttr::OptionKind::UnrollCount);
  EXPECT_TRUE(Hint->isImplicit());
  EXPECT_EQ(*evaluateInteger(Hint->getValue()), 2);

  auto *Inner = stmt_dyn_cast<ForStmt>(Attributed->getSubStmt());
  ASSERT_NE(Inner, nullptr);
  auto *InnerInit = stmt_dyn_cast<DeclStmt>(Inner->getInit());
  ASSERT_NE(InnerInit, nullptr);
  EXPECT_EQ(InnerInit->getSingleDecl()->getName(), "unroll_inner.iv.i");

  // The shadow AST is not reachable through children().
  std::vector<Stmt *> Children = Unroll->children();
  ASSERT_EQ(Children.size(), 1u);
  EXPECT_NE(Children[0], Unroll->getTransformedStmt());
}

TEST(OpenMPSemaTest, UnrollFullHasNoTransformedStmt) {
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll full
      for (int i = 0; i < 8; ++i)
        body(i);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  EXPECT_TRUE(Unroll->hasFullClause());
  // Full unrolling produces no generated loop; CodeGen defers to the
  // mid-end LoopUnroll pass via metadata (Section 2.2).
  EXPECT_EQ(Unroll->getTransformedStmt(), nullptr);
}

TEST(OpenMPSemaTest, UnrollFullRequiresConstantTripCount) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp unroll full
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_unroll_full_variable_trip_count));
}

TEST(OpenMPSemaTest, UnrollFullAndPartialMutuallyExclusive) {
  Frontend F(R"(
    void f() {
      #pragma omp unroll full partial(2)
      for (int i = 0; i < 8; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_unroll_full_with_partial));
}

TEST(OpenMPSemaTest, UnrollHeuristicHasNoTransformedStmt) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp unroll
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  EXPECT_EQ(Unroll->getTransformedStmt(), nullptr);
}

TEST(OpenMPSemaTest, StackedUnrollDirectives) {
  // The paper's Listing 6: unroll full applied to the loop generated by
  // unroll partial(2).
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll full
      #pragma omp unroll partial(2)
      for (int i = 7; i < 17; i += 3)
        body(i);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *OuterUnroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(OuterUnroll, nullptr);
  EXPECT_TRUE(OuterUnroll->hasFullClause());
  // Its associated statement is the inner unroll directive.
  auto *InnerUnroll =
      stmt_dyn_cast<OMPUnrollDirective>(OuterUnroll->getAssociatedStmt());
  ASSERT_NE(InnerUnroll, nullptr);
  EXPECT_TRUE(InnerUnroll->hasPartialClause());
  ASSERT_NE(InnerUnroll->getTransformedStmt(), nullptr);
}

TEST(OpenMPSemaTest, ParallelForConsumesUnrollPartial) {
  // Section 1.1's motivating example.
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp parallel for
      #pragma omp unroll partial(2)
      for (int i = 0; i < N; i += 1)
        body(i);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *PF = F.findStmt<OMPParallelForDirective>("f");
  ASSERT_NE(PF, nullptr);
  // The worksharing loop's helper expressions analyze the *generated*
  // (transformed) loop, whose iteration variable is the strip-mine
  // counter.
  const OMPLoopHelperExprs &H = PF->getLoopHelpers();
  ASSERT_EQ(H.Loops.size(), 1u);
  EXPECT_EQ(H.Loops[0].CounterVar->getName(), "unrolled.iv.i");
}

TEST(OpenMPSemaTest, ConsumingFullUnrollIsAnError) {
  Frontend F(R"(
    void f() {
      #pragma omp parallel for
      #pragma omp unroll full
      for (int i = 0; i < 8; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_directive_needs_loop_result));
}

TEST(OpenMPSemaTest, ConsumingHeuristicUnrollForcesFactor) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp parallel for
      #pragma omp unroll
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  // The paper: "The current implementation uses the unroll factor of two
  // in this case."
  EXPECT_TRUE(F.hasDiag(diag::warn_omp_unroll_factor_forced));
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  EXPECT_NE(Unroll->getTransformedStmt(), nullptr); // materialized lazily
}

TEST(OpenMPSemaTest, TileBuildsTwiceAsManyLoops) {
  Frontend F(R"(
    void body(int x);
    void f(int N, int M) {
      #pragma omp tile sizes(4, 8)
      for (int i = 0; i < N; ++i)
        for (int j = 0; j < M; ++j)
          body(i + j);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *Tile = F.findStmt<OMPTileDirective>("f");
  ASSERT_NE(Tile, nullptr);
  EXPECT_EQ(Tile->getLoopsNumber(), 2u);
  ASSERT_NE(Tile->getTransformedStmt(), nullptr);

  // "Tiling applies to multiple loops nested inside each other and
  // generates twice as many loops" (Section 1.1).
  unsigned LoopCount = 0;
  Stmt *Cur = Tile->getTransformedStmt();
  std::vector<std::string> IVNames;
  while (auto *For = stmt_dyn_cast<ForStmt>(Cur)) {
    ++LoopCount;
    if (auto *DS = stmt_dyn_cast<DeclStmt>(For->getInit()))
      IVNames.emplace_back(DS->getSingleDecl()->getName());
    Cur = For->getBody();
    while (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
      if (CS->size() >= 1 && stmt_dyn_cast<ForStmt>(CS->body()[0]))
        Cur = CS->body()[0];
      else
        break;
    }
  }
  EXPECT_EQ(LoopCount, 4u);
  ASSERT_EQ(IVNames.size(), 4u);
  EXPECT_EQ(IVNames[0], ".floor.0.iv.i");
  EXPECT_EQ(IVNames[1], ".floor.1.iv.j");
  EXPECT_EQ(IVNames[2], ".tile.0.iv.i");
  EXPECT_EQ(IVNames[3], ".tile.1.iv.j");
}

TEST(OpenMPSemaTest, TileRequiresSizes) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp tile
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_tile_requires_sizes));
}

TEST(OpenMPSemaTest, TileSizesMustBePositive) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp tile sizes(0)
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_sizes_requires_positive));
}

TEST(OpenMPSemaTest, TileNeedsDeepEnoughNest) {
  Frontend F(R"(
    void g(int x);
    void f(int N) {
      #pragma omp tile sizes(4, 4)
      for (int i = 0; i < N; ++i)
        g(i);
    }
  )");
  EXPECT_GE(F.errors(), 1u);
}

TEST(OpenMPSemaTest, ForConsumesTileOuterLoop) {
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp for
      #pragma omp tile sizes(16)
      for (int i = 0; i < N; ++i)
        body(i);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(For, nullptr);
  const OMPLoopHelperExprs &H = For->getLoopHelpers();
  ASSERT_EQ(H.Loops.size(), 1u);
  EXPECT_EQ(H.Loops[0].CounterVar->getName(), ".floor.0.iv.i");
}

TEST(OpenMPSemaTest, CollapseOverTileConsumesGeneratedLoops) {
  // After tiling, worksharing may apply to the generated floor loops.
  Frontend F(R"(
    void body(int x);
    void f(int N, int M) {
      #pragma omp for collapse(2)
      #pragma omp tile sizes(4, 4)
      for (int i = 0; i < N; ++i)
        for (int j = 0; j < M; ++j)
          body(i + j);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(For, nullptr);
  const OMPLoopHelperExprs &H = For->getLoopHelpers();
  ASSERT_EQ(H.Loops.size(), 2u);
  EXPECT_EQ(H.Loops[0].CounterVar->getName(), ".floor.0.iv.i");
  EXPECT_EQ(H.Loops[1].CounterVar->getName(), ".floor.1.iv.j");
}

TEST(OpenMPSemaTest, CollapseBuildsPerLoopHelpers) {
  Frontend F(R"(
    void body(int x);
    void f(int N, int M) {
      #pragma omp for collapse(2)
      for (int i = 0; i < N; ++i)
        for (int j = 0; j < M; ++j)
          body(i + j);
    }
  )");
  EXPECT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(For, nullptr);
  const OMPLoopHelperExprs &H = For->getLoopHelpers();
  EXPECT_EQ(H.Loops.size(), 2u);
  // 6 per-loop helpers for each of the two loops.
  EXPECT_GE(H.countShadowNodes(), 20u + 12u);
}

TEST(OpenMPSemaTest, DuplicateClauseDiagnosed) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp for schedule(static) schedule(dynamic)
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_duplicate_clause));
}

TEST(OpenMPSemaTest, WrongClauseForDirective) {
  Frontend F(R"(
    void f(int N) {
      #pragma omp unroll sizes(4)
      for (int i = 0; i < N; ++i) ;
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_unknown_clause));
}

TEST(OpenMPSemaTest, UnknownDirective) {
  Frontend F("void f() {\n#pragma omp frobnicate\n ; }");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_unknown_directive));
}

TEST(OpenMPSemaTest, DirectiveNeedsForLoop) {
  Frontend F(R"(
    void f() {
      #pragma omp for
      { }
    }
  )");
  EXPECT_TRUE(F.hasDiag(diag::err_omp_not_for));
}

TEST(OpenMPSemaTest, BarrierIsStandalone) {
  Frontend F("void f() {\n#pragma omp barrier\n}");
  EXPECT_EQ(F.errors(), 0u);
  auto *B = F.findStmt<OMPBarrierDirective>("f");
  ASSERT_NE(B, nullptr);
  EXPECT_FALSE(B->hasAssociatedStmt());
}

// ===--------------------- IRBuilder mode (Section 3) -----------------=== //

TEST(OpenMPIRBuilderModeTest, UnrollWrapsOMPCanonicalLoop) {
  Frontend F(UnrollPartial2, irBuilderMode());
  EXPECT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);

  // Paper Listing 10: OMPUnrollDirective -> OMPCanonicalLoop -> {ForStmt,
  // distance CapturedStmt, loop-var CapturedStmt, DeclRefExpr}.
  auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(Unroll->getAssociatedStmt());
  ASSERT_NE(CL, nullptr);
  EXPECT_NE(stmt_dyn_cast<ForStmt>(CL->getLoopStmt()), nullptr);
  ASSERT_NE(CL->getDistanceFunc(), nullptr);
  ASSERT_NE(CL->getLoopVarFunc(), nullptr);
  ASSERT_NE(CL->getLoopVarRef(), nullptr);
  EXPECT_EQ(CL->getLoopVarRef()->getDecl()->getName(), "i");

  // Distance function: one Result parameter.
  CapturedDecl *DistCD = CL->getDistanceFunc()->getCapturedDecl();
  ASSERT_EQ(DistCD->getNumParams(), 1u);
  EXPECT_EQ(DistCD->getParam(0)->getName(), "Result");
  // Loop-var function: Result + the logical iteration number.
  CapturedDecl *LVCD = CL->getLoopVarFunc()->getCapturedDecl();
  ASSERT_EQ(LVCD->getNumParams(), 2u);
  EXPECT_EQ(LVCD->getParam(0)->getName(), "Result");
  EXPECT_EQ(LVCD->getParam(1)->getName(), "Logical");

  // No shadow transformed statement in this mode.
  EXPECT_EQ(Unroll->getTransformedStmt(), nullptr);

  // children() DOES enumerate the canonical loop's meta-functions (they
  // are regular children, not shadow AST).
  EXPECT_EQ(CL->children().size(), 4u);
}

TEST(OpenMPIRBuilderModeTest, CanonicalLoopIsLosslesslyUnwrappable) {
  Frontend F(UnrollPartial2, irBuilderMode());
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(Unroll->getAssociatedStmt());
  ASSERT_NE(CL, nullptr);
  // Re-analysis of the wrapped loop must succeed as if it were literal.
  OMPLoopInfo Info;
  EXPECT_TRUE(F.Actions->checkOpenMPCanonicalLoop(
      CL, OpenMPDirectiveKind::Unroll, Info));
  EXPECT_EQ(Info.IterVar->getName(), "i");
  EXPECT_EQ(*Info.ConstantTripCount, 4u);
}

TEST(OpenMPIRBuilderModeTest, LoopDirectiveHasNoShadowHelpers) {
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp for
      for (int i = 0; i < N; ++i)
        body(i);
    }
  )",
             irBuilderMode());
  EXPECT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(For, nullptr);
  // The reduction the paper claims: from ~36 shadow nodes to the 3 pieces
  // of meta-information carried by OMPCanonicalLoop.
  EXPECT_EQ(For->getLoopHelpers().countShadowNodes(), 0u);
  auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(For->getAssociatedStmt());
  ASSERT_NE(CL, nullptr);
}

TEST(OpenMPIRBuilderModeTest, ParallelForStillUsesCapturedStmt) {
  // "While the OMPUnrollDirective does not wrap its associated code into a
  // CapturedStmt, other directives such as OMPParallelForDirective still
  // may." (Section 3.1)
  Frontend F(R"(
    void body(int x);
    void f(int N) {
      #pragma omp parallel for
      for (int i = 0; i < N; ++i)
        body(i);
    }
  )",
             irBuilderMode());
  EXPECT_EQ(F.errors(), 0u);
  auto *PF = F.findStmt<OMPParallelForDirective>("f");
  ASSERT_NE(PF, nullptr);
  auto *CS = stmt_dyn_cast<CapturedStmt>(PF->getAssociatedStmt());
  ASSERT_NE(CS, nullptr);
  EXPECT_NE(stmt_dyn_cast<OMPCanonicalLoop>(CS->getCapturedStmt()), nullptr);
}

TEST(OpenMPIRBuilderModeTest, CollapseWrapsEveryMemberLoop) {
  Frontend F(R"(
    void body(int x);
    void f(int N, int M) {
      #pragma omp for collapse(2)
      for (int i = 0; i < N; ++i)
        for (int j = 0; j < M; ++j)
          body(i + j);
    }
  )",
             irBuilderMode());
  EXPECT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(For, nullptr);
  auto *OuterCL = stmt_dyn_cast<OMPCanonicalLoop>(For->getAssociatedStmt());
  ASSERT_NE(OuterCL, nullptr);
  // The inner loop is wrapped too.
  auto *OuterFor = stmt_cast<ForStmt>(OuterCL->getLoopStmt());
  Stmt *Body = OuterFor->getBody();
  while (auto *CS = stmt_dyn_cast<CompoundStmt>(Body))
    Body = CS->body()[0];
  EXPECT_NE(stmt_dyn_cast<OMPCanonicalLoop>(Body), nullptr);
}

// E8: the footprint comparison, asserted at the level the paper states.
TEST(FootprintTest, ShadowHelpersVsCanonicalMetaInfo) {
  const char *Source = R"(
    void body(int x);
    void f(int N) {
      #pragma omp for
      for (int i = 0; i < N; ++i)
        body(i);
    }
  )";
  Frontend Legacy(Source);
  Frontend IRB(Source, irBuilderMode());
  ASSERT_EQ(Legacy.errors(), 0u);
  ASSERT_EQ(IRB.errors(), 0u);

  auto *LegacyFor = Legacy.findStmt<OMPForDirective>("f");
  unsigned ShadowCount = LegacyFor->getLoopHelpers().countShadowNodes();
  // Paper: "up to 30 shadow AST statements ... plus 6 for each loop".
  EXPECT_GE(ShadowCount, 24u);
  EXPECT_LE(ShadowCount, 36u);

  // Canonical loop: 3 pieces of meta-information.
  auto *IRBFor = IRB.findStmt<OMPForDirective>("f");
  auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(IRBFor->getAssociatedStmt());
  ASSERT_NE(CL, nullptr);
  unsigned MetaInfo = (CL->getDistanceFunc() != nullptr) +
                      (CL->getLoopVarFunc() != nullptr) +
                      (CL->getLoopVarRef() != nullptr);
  EXPECT_EQ(MetaInfo, 3u);
  EXPECT_EQ(IRBFor->getLoopHelpers().countShadowNodes(), 0u);
}

} // namespace
