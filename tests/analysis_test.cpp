//===--- analysis_test.cpp - AST static-analysis subsystem tests -----------===//
//
// Covers the three passes of the analysis layer:
//   * the OpenMP race linter (shared-by-default writes in parallel /
//     worksharing regions),
//   * the canonical-loop conformance checker (including generated loops of
//     tile/unroll shadow ASTs),
//   * the post-transform AST verifier (shadow-AST structural invariants),
// plus the -w / -Werror driver plumbing.
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include "analysis/Analysis.h"
#include "driver/CompilerInstance.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

/// Runs the requested subset of the default pipeline over a parsed TU.
void runAnalyses(Frontend &F, bool Linters, bool Verifier) {
  ASSERT_NE(F.TU, nullptr);
  analysis::AnalysisManager AM(F.Ctx, F.Diags);
  analysis::registerDefaultAnalyses(AM, Linters, Verifier);
  AM.run(F.TU);
}

// ---------------------------------------------------------------------------
// OpenMP race linter
// ---------------------------------------------------------------------------

TEST(RaceLinterTest, WarnsOnSharedAccumulator) {
  Frontend F(R"(
    void f(int n) {
      int sum = 0;
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1)
        sum = sum + i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, /*Linters=*/true, /*Verifier=*/true);

  auto Warnings = F.diagsWithID(diag::warn_analysis_shared_write_race);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].Message.find("'sum'"), std::string::npos);
  EXPECT_NE(Warnings[0].Message.find("parallel for"), std::string::npos);
  EXPECT_TRUE(Warnings[0].Loc.isValid());
  EXPECT_TRUE(F.hasDiag(diag::note_analysis_shared_decl_here));
}

TEST(RaceLinterTest, WarnsOnUnprivatizedInnerIV) {
  Frontend F(R"(
    void body(int x, int y);
    void f(int n) {
      int j;
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1)
        for (j = 0; j < 8; j += 1)
          body(i, j);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);

  auto Warnings = F.diagsWithID(diag::warn_analysis_shared_write_race);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].Message.find("'j'"), std::string::npos);
}

TEST(RaceLinterTest, PrivateClauseSuppresses) {
  Frontend F(R"(
    void body(int x, int y);
    void f(int n) {
      int j;
      #pragma omp parallel for private(j)
      for (int i = 0; i < n; i += 1)
        for (j = 0; j < 8; j += 1)
          body(i, j);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_shared_write_race));
}

TEST(RaceLinterTest, ReductionClauseSuppresses) {
  Frontend F(R"(
    void f(int n) {
      int sum = 0;
      #pragma omp parallel for reduction(+: sum)
      for (int i = 0; i < n; i += 1)
        sum = sum + i;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_shared_write_race));
}

TEST(RaceLinterTest, RegionLocalDeclIsThreadPrivate) {
  Frontend F(R"(
    void body(int x);
    void f(int n) {
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1) {
        int tmp = i * 2;
        tmp = tmp + 1;
        body(tmp);
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_shared_write_race));
}

TEST(RaceLinterTest, CriticalSectionSuppresses) {
  Frontend F(R"(
    void f(int n) {
      int sum = 0;
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1) {
        #pragma omp critical
        sum = sum + i;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_shared_write_race));
}

TEST(RaceLinterTest, NestedWorksharingInheritsParallelLocals) {
  // 'tmp' is declared inside the parallel region, so every thread has its
  // own instance; the nested worksharing loop must not warn about it.
  Frontend F(R"(
    void body(int x);
    void f(int n) {
      #pragma omp parallel
      {
        int tmp = 0;
        #pragma omp for
        for (int i = 0; i < n; i += 1) {
          tmp = tmp + i;
          body(tmp);
        }
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_shared_write_race));
}

// The acceptance scenario: the race is inside a loop that also carries a
// transformation, so shadow ASTs with '.capture_expr.'-style internals
// exist — but the diagnostic must land on the user's literal loop.
TEST(RaceLinterTest, DiagnosticPointsAtLiteralLoopNotShadow) {
  Frontend F(R"(
    void f(int n) {
      int sum = 0;
      #pragma omp parallel for
      for (int i = 0; i < 64; i += 1) {
        #pragma omp unroll partial(4)
        for (int k = 0; k < 8; k += 1)
          sum = sum + k;
      }
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);

  auto Warnings = F.diagsWithID(diag::warn_analysis_shared_write_race);
  ASSERT_EQ(Warnings.size(), 1u);
  ASSERT_TRUE(Warnings[0].Loc.isValid());
  // The diagnostic names the user's variable, not a shadow-AST internal.
  EXPECT_NE(Warnings[0].Message.find("'sum'"), std::string::npos);
  for (const Diagnostic &D : F.Consumer.getDiagnostics()) {
    EXPECT_EQ(D.Message.find(".capture_expr."), std::string::npos)
        << D.Message;
    EXPECT_EQ(D.Message.find("unroll_inner"), std::string::npos) << D.Message;
    EXPECT_EQ(D.Message.find("unrolled.iv"), std::string::npos) << D.Message;
  }
  // The generated inner loops' IV 'k' is iteration-local, so exactly one
  // warning (for 'sum') must be emitted.
  EXPECT_EQ(F.warnings(), 1u);
}

// ---------------------------------------------------------------------------
// Canonical-loop conformance checker
// ---------------------------------------------------------------------------

TEST(CanonicalLoopConformanceTest, CleanLoopProducesNoDiagnostics) {
  Frontend F(R"(
    void body(int x);
    void f(int n) {
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_loop_not_canonical));
}

TEST(CanonicalLoopConformanceTest, WarnsWhenCondVarModifiedInBody) {
  Frontend F(R"(
    void f(int n) {
      #pragma omp parallel for
      for (int i = 0; i < n; i += 1)
        n = n - 1;
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, true, true);

  EXPECT_TRUE(F.hasDiag(diag::warn_analysis_loop_not_canonical));
  auto Notes = F.diagsWithID(diag::note_analysis_cond_var_modified_here);
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_NE(Notes[0].Message.find("'n'"), std::string::npos);
  EXPECT_TRUE(Notes[0].Loc.isValid());
}

TEST(CanonicalLoopConformanceTest, DirectCheckNonIntegerIV) {
  Frontend F(R"(
    void sink(double x);
    void f() {
      for (double x = 0.0; x < 4.0; x = x + 1.0)
        sink(x);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<ForStmt>("f");
  ASSERT_NE(For, nullptr);

  EXPECT_FALSE(analysis::checkCanonicalLoopConformance(
      For, OpenMPDirectiveKind::For, F.Diags));
  auto Notes = F.diagsWithID(diag::note_analysis_noninteger_iv);
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_NE(Notes[0].Message.find("'x'"), std::string::npos);
  EXPECT_NE(Notes[0].Message.find("double"), std::string::npos);
}

TEST(CanonicalLoopConformanceTest, DirectCheckNonCanonicalIncrement) {
  Frontend F(R"(
    void body(int x);
    void f() {
      for (int i = 1; i < 100; i = i * 2)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<ForStmt>("f");
  ASSERT_NE(For, nullptr);

  EXPECT_FALSE(analysis::checkCanonicalLoopConformance(
      For, OpenMPDirectiveKind::For, F.Diags));
  EXPECT_TRUE(F.hasDiag(diag::note_analysis_noncanonical_inc));
}

TEST(CanonicalLoopConformanceTest, DirectCheckNonLoop) {
  Frontend F(R"(
    void g();
    void f() { g(); }
  )");
  ASSERT_EQ(F.errors(), 0u);
  Stmt *Body = F.getFunction("f")->getBody();
  ASSERT_NE(Body, nullptr);

  EXPECT_FALSE(analysis::checkCanonicalLoopConformance(
      Body, OpenMPDirectiveKind::For, F.Diags));
  EXPECT_TRUE(F.hasDiag(diag::note_analysis_not_a_loop));
}

TEST(CanonicalLoopConformanceTest, DirectCheckAcceptsCanonicalForms) {
  Frontend F(R"(
    void body(int x);
    void f(int n) {
      for (int i = n; i > 0; i -= 2)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *For = F.findStmt<ForStmt>("f");
  ASSERT_NE(For, nullptr);

  EXPECT_TRUE(analysis::checkCanonicalLoopConformance(
      For, OpenMPDirectiveKind::For, F.Diags));
  EXPECT_EQ(F.warnings(), 0u);
}

// A tampered shadow AST: the generated loop of 'unroll partial' is replaced
// with a non-canonical loop, and the conformance pass must diagnose it.
TEST(CanonicalLoopConformanceTest, ChecksGeneratedLoopsOfShadowAST) {
  Frontend F(R"(
    void body(int x);
    void g() {
      for (int k = 1; k < 64; k = k * 2)
        body(k);
    }
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 16; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  ASSERT_NE(Unroll->getTransformedStmt(), nullptr);

  // The genuine generated loop conforms: no warnings.
  runAnalyses(F, true, /*Verifier=*/false);
  EXPECT_FALSE(F.hasDiag(diag::warn_analysis_loop_not_canonical));

  // Graft g's doubling loop in as the "generated" loop.
  Unroll->setTransformedStmt(F.findStmt<ForStmt>("g"));
  runAnalyses(F, true, /*Verifier=*/false);
  EXPECT_TRUE(F.hasDiag(diag::warn_analysis_loop_not_canonical));
  auto Notes = F.diagsWithID(diag::note_analysis_noncanonical_inc);
  ASSERT_GE(Notes.size(), 1u);
  EXPECT_NE(Notes[0].Message.find("'k'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Post-transform AST verifier
// ---------------------------------------------------------------------------

TEST(TransformVerifierTest, ValidTransformationsVerifyCleanly) {
  Frontend F(R"(
    void body(int x, int y);
    void f() {
      #pragma omp tile sizes(4, 2)
      for (int i = 0; i < 32; i += 1)
        for (int j = 0; j < 8; j += 1)
          body(i, j);
    }
    void h() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 16; i += 1)
        body(i, 0);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  runAnalyses(F, false, /*Verifier=*/true);
  EXPECT_EQ(F.errors(), 0u);
  EXPECT_FALSE(F.hasDiag(diag::err_ast_verifier));
}

TEST(TransformVerifierTest, RejectsTransformedStmtOnFullUnroll) {
  Frontend F(R"(
    void body(int x);
    void g() {
      for (int k = 0; k < 4; k += 1)
        body(k);
    }
    void f() {
      #pragma omp unroll full
      for (int i = 0; i < 16; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  ASSERT_EQ(Unroll->getTransformedStmt(), nullptr);

  Unroll->setTransformedStmt(F.findStmt<ForStmt>("g"));
  EXPECT_FALSE(analysis::verifyLoopTransformation(Unroll, F.Diags));
  auto Errors = F.diagsWithID(diag::err_ast_verifier);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("'unroll full'"), std::string::npos);
}

TEST(TransformVerifierTest, RejectsMalformedUnrollSpine) {
  Frontend F(R"(
    void body(int x);
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 16; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);

  // Replace the generated spine with the literal loop: locations stay in
  // range, but the strip-mined outer loop is gone.
  Unroll->setTransformedStmt(F.findStmt<ForStmt>("f"));
  EXPECT_FALSE(analysis::verifyLoopTransformation(Unroll, F.Diags));
  auto Errors = F.diagsWithID(diag::err_ast_verifier);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("strip-mined"), std::string::npos);
}

TEST(TransformVerifierTest, DetectsShadowLocationEscape) {
  Frontend F(R"(
    void body(int x);
    void g() {
      int stray = 1;
      body(stray);
    }
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 16; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);

  // Pre-inits whose locations point at g's body, far outside the literal
  // loop of f: the verifier must flag the escape.
  Unroll->setPreInits(F.findStmt<DeclStmt>("g"));
  EXPECT_FALSE(analysis::verifyLoopTransformation(Unroll, F.Diags));
  auto Errors = F.diagsWithID(diag::err_ast_verifier);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("outside the literal loop"),
            std::string::npos);
}

TEST(TransformVerifierTest, DetectsImperfectTileNest) {
  Frontend F(R"(
    void body(int x, int y);
    void imperfect() {
      for (int i = 0; i < 8; i += 1) {
        body(i, 0);
        for (int j = 0; j < 8; j += 1)
          body(i, j);
      }
    }
    void f() {
      #pragma omp tile sizes(4, 2)
      for (int i = 0; i < 32; i += 1)
        for (int j = 0; j < 8; j += 1)
          body(i, j);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Tile = F.findStmt<OMPTileDirective>("f");
  ASSERT_NE(Tile, nullptr);

  // Hand-build a tile directive whose associated statement is an imperfect
  // nest (Sema would never produce this).
  auto *Bad = F.Ctx.create<OMPTileDirective>(
      Tile->getSourceRange(), Tile->clauses(),
      F.findStmt<ForStmt>("imperfect"), /*NumLoops=*/2);
  EXPECT_FALSE(analysis::verifyLoopTransformation(Bad, F.Diags));
  auto Errors = F.diagsWithID(diag::err_ast_verifier);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("perfectly nested"), std::string::npos);
}

TEST(TransformVerifierTest, DetectsSizesArityMismatch) {
  Frontend F(R"(
    void body(int x, int y);
    void single() {
      for (int k = 0; k < 8; k += 1)
        body(k, 0);
    }
    void f() {
      #pragma omp tile sizes(4, 2)
      for (int i = 0; i < 32; i += 1)
        for (int j = 0; j < 8; j += 1)
          body(i, j);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Tile = F.findStmt<OMPTileDirective>("f");
  ASSERT_NE(Tile, nullptr);
  ForStmt *Loop = F.findStmt<ForStmt>("single");
  ASSERT_NE(Loop, nullptr);

  // A 1-loop tile carrying a 2-argument sizes clause.
  auto *Bad = F.Ctx.create<OMPTileDirective>(
      Tile->getSourceRange(), Tile->clauses(), Loop, /*NumLoops=*/1);
  Bad->setTransformedStmt(Loop);
  EXPECT_FALSE(analysis::verifyLoopTransformation(Bad, F.Diags));
  auto Errors = F.diagsWithID(diag::err_ast_verifier);
  ASSERT_GE(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("2 arguments"), std::string::npos);
}

TEST(TransformVerifierTest, PassPipelineFlagsTamperedDirective) {
  Frontend F(R"(
    void body(int x);
    void g() {
      for (int k = 0; k < 4; k += 1)
        body(k);
    }
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 16; i += 1)
        body(i);
    }
  )");
  ASSERT_EQ(F.errors(), 0u);
  auto *Unroll = F.findStmt<OMPUnrollDirective>("f");
  ASSERT_NE(Unroll, nullptr);
  Unroll->setTransformedStmt(F.findStmt<ForStmt>("g"));

  analysis::AnalysisManager AM(F.Ctx, F.Diags);
  analysis::registerDefaultAnalyses(AM, /*EnableLinters=*/false);
  EXPECT_FALSE(AM.run(F.TU));
  EXPECT_TRUE(F.hasDiag(diag::err_ast_verifier));
  ASSERT_EQ(AM.getStats().size(), 1u);
  EXPECT_EQ(AM.getStats()[0].Name, "post-transform-verifier");
  EXPECT_GE(AM.getStats()[0].Errors, 1u);
}

// ---------------------------------------------------------------------------
// Driver integration: --analyze, -w, -Werror
// ---------------------------------------------------------------------------

const char *RacyProgram = R"(
  void f(int n) {
    int sum = 0;
    #pragma omp parallel for
    for (int i = 0; i < n; i += 1)
      sum = sum + i;
  }
)";

TEST(AnalysisDriverTest, AnalyzeEmitsWarningButCompiles) {
  CompilerOptions Opts;
  Opts.RunAnalyzers = true;
  CompilerInstance CI(Opts);
  CI.addVirtualFile("input.c", RacyProgram);
  EXPECT_TRUE(CI.parseToAST("input.c"));
  EXPECT_GE(CI.getDiagnostics().getNumWarnings(), 1u);
  EXPECT_NE(CI.renderDiagnostics().find("data race"), std::string::npos);
}

TEST(AnalysisDriverTest, WerrorTurnsRaceWarningIntoFailure) {
  CompilerOptions Opts;
  Opts.RunAnalyzers = true;
  Opts.WarningsAsErrors = true;
  CompilerInstance CI(Opts);
  CI.addVirtualFile("input.c", RacyProgram);
  // The nonzero-exit path of the minicc driver: parseToAST fails.
  EXPECT_FALSE(CI.parseToAST("input.c"));
  EXPECT_TRUE(CI.getDiagnostics().hasErrorOccurred());
  EXPECT_NE(CI.renderDiagnostics().find("error:"), std::string::npos);
}

TEST(AnalysisDriverTest, SuppressWarningsSilencesLinter) {
  CompilerOptions Opts;
  Opts.RunAnalyzers = true;
  Opts.SuppressWarnings = true;
  CompilerInstance CI(Opts);
  CI.addVirtualFile("input.c", RacyProgram);
  EXPECT_TRUE(CI.parseToAST("input.c"));
  EXPECT_EQ(CI.getDiagnostics().getNumWarnings(), 0u);
  // The attached note is dropped along with its warning.
  EXPECT_TRUE(CI.getDiagStore().getDiagnostics().empty());
}

TEST(AnalysisDriverTest, AnalyzersOffByDefault) {
  CompilerInstance CI;
  CI.addVirtualFile("input.c", RacyProgram);
  EXPECT_TRUE(CI.parseToAST("input.c"));
  EXPECT_EQ(CI.getDiagnostics().getNumWarnings(), 0u);
}

} // namespace
