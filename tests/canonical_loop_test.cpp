//===--- canonical_loop_test.cpp - OpenMP canonical loop analysis ---------===//
//
// Exercises the OpenMP 5.1 canonical-loop-form analysis (spec section
// 4.4.1) and the trip-count computation, including the overflow-safety
// property the paper discusses in Section 3.1 (INT32_MIN..INT32_MAX has
// 0xFFFFFFFE iterations, requiring an unsigned logical iteration type).
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

/// Analyzes the first for-loop in a function body "void f(int N) { <loop> }".
struct LoopHarness {
  Frontend F;
  OMPLoopInfo Info;
  bool Valid = false;

  explicit LoopHarness(const std::string &LoopSource)
      : F("void body(int x);\nvoid f(int N, int M) { " + LoopSource + " }") {
    if (auto *For = F.findStmt<ForStmt>("f"))
      Valid = F.Actions->checkOpenMPCanonicalLoop(
          For, OpenMPDirectiveKind::For, Info);
  }
};

TEST(CanonicalLoopTest, SimpleUpwardLoop) {
  LoopHarness H("for (int i = 0; i < N; i++) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(H.Info.IterVar->getName(), "i");
  EXPECT_FALSE(H.Info.Decreasing);
  EXPECT_FALSE(H.Info.InclusiveBound);
  EXPECT_EQ(H.Info.IVType.getAsString(), "int");
  EXPECT_EQ(H.Info.LogicalType.getAsString(), "unsigned int");
  EXPECT_FALSE(H.Info.ConstantTripCount.has_value());
}

TEST(CanonicalLoopTest, PaperExampleTripCount) {
  // The paper's running example: for (int i = 7; i < 17; i += 3) has
  // iterations i = 7, 10, 13, 16 -> trip count 4.
  LoopHarness H("for (int i = 7; i < 17; i += 3) body(i);");
  ASSERT_TRUE(H.Valid);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 4u);
}

TEST(CanonicalLoopTest, InclusiveBound) {
  LoopHarness H("for (int i = 0; i <= 9; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_TRUE(H.Info.InclusiveBound);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 10u);
}

TEST(CanonicalLoopTest, DownwardLoop) {
  LoopHarness H("for (int i = 10; i > 0; i--) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_TRUE(H.Info.Decreasing);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 10u);
}

TEST(CanonicalLoopTest, DownwardInclusive) {
  LoopHarness H("for (int i = 10; i >= 1; i -= 2) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_TRUE(H.Info.Decreasing);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 5u); // 10, 8, 6, 4, 2
}

TEST(CanonicalLoopTest, NegativeConstantStepNormalized) {
  // "i += -3" over a > comparison is a downward loop of step 3.
  LoopHarness H("for (int i = 9; i > 0; i += -3) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_TRUE(H.Info.Decreasing);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 3u); // 9, 6, 3
}

TEST(CanonicalLoopTest, MirroredCondition) {
  // "N > i" is the mirror of "i < N".
  LoopHarness H("for (int i = 0; 10 > i; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_FALSE(H.Info.Decreasing);
  EXPECT_EQ(*H.Info.ConstantTripCount, 10u);
}

TEST(CanonicalLoopTest, NotEqualCondition) {
  LoopHarness H("for (int i = 0; i != 8; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(*H.Info.ConstantTripCount, 8u);
}

TEST(CanonicalLoopTest, AssignmentInit) {
  LoopHarness H("int i; for (i = 0; i < 10; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(H.Info.IterVar->getName(), "i");
}

TEST(CanonicalLoopTest, IncViaAssignment) {
  LoopHarness H("for (int i = 0; i < 12; i = i + 4) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(*H.Info.ConstantTripCount, 3u);
}

TEST(CanonicalLoopTest, IncViaCommutedAssignment) {
  LoopHarness H("for (int i = 0; i < 12; i = 4 + i) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(*H.Info.ConstantTripCount, 3u);
}

TEST(CanonicalLoopTest, UnsignedIV) {
  LoopHarness H("for (unsigned int i = 0; i < 16u; i += 4) body(i);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(*H.Info.ConstantTripCount, 4u);
  EXPECT_EQ(H.Info.LogicalType.getAsString(), "unsigned int");
}

TEST(CanonicalLoopTest, LongIVUsesWideLogicalType) {
  LoopHarness H("for (long i = 0; i < 100l; ++i) body(0);");
  ASSERT_TRUE(H.Valid);
  EXPECT_EQ(H.Info.LogicalType.getAsString(), "unsigned long");
}

// Section 3.1 of the paper: the INT32_MIN..INT32_MAX step-1 loop has a trip
// count that does not fit into a 32-bit *signed* integer — hence the
// unsigned logical iteration counter. (The paper states 0xfffffffe; the
// interval [INT32_MIN, INT32_MAX) in fact contains 0xffffffff values — an
// off-by-one in the paper's text — and either value exceeds the int32
// range, so the design argument is unchanged. See EXPERIMENTS.md.)
TEST(CanonicalLoopTest, FullRangeTripCountIsOverflowSafe) {
  LoopHarness H("for (int i = -2147483647 - 1; i < 2147483647; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 0xFFFFFFFFu);
  EXPECT_GT(*H.Info.ConstantTripCount,
            static_cast<std::uint64_t>(0x7FFFFFFF)); // exceeds int32
}

TEST(CanonicalLoopTest, ZeroTripLoop) {
  LoopHarness H("for (int i = 10; i < 5; ++i) body(i);");
  ASSERT_TRUE(H.Valid);
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value());
  EXPECT_EQ(*H.Info.ConstantTripCount, 0u);
}

TEST(CanonicalLoopTest, PointerIV) {
  LoopHarness H("int a[16]; for (int *p = a; p < a + 16; p += 4) body(0);");
  ASSERT_TRUE(H.Valid);
  EXPECT_TRUE(H.Info.IVType->isPointerType());
  EXPECT_EQ(H.Info.LogicalType.getAsString(), "unsigned long");
}

// --- Rejections ---

TEST(CanonicalLoopTest, RejectsNonForStatement) {
  Frontend F("void f() { int i = 0; while (i < 10) ++i; }");
  auto *W = F.findStmt<WhileStmt>("f");
  ASSERT_NE(W, nullptr);
  OMPLoopInfo Info;
  EXPECT_FALSE(F.Actions->checkOpenMPCanonicalLoop(
      W, OpenMPDirectiveKind::For, Info));
  EXPECT_TRUE(F.hasDiag(diag::err_omp_not_for));
}

TEST(CanonicalLoopTest, RejectsMissingInit) {
  LoopHarness H("int i = 0; for (; i < 10; ++i) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_no_init_var));
}

TEST(CanonicalLoopTest, RejectsEqualityCondition) {
  LoopHarness H("for (int i = 0; i == 10; ++i) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_bad_cond));
}

TEST(CanonicalLoopTest, RejectsConditionNotInvolvingIV) {
  LoopHarness H("for (int i = 0; N < M; ++i) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_bad_cond));
}

TEST(CanonicalLoopTest, RejectsMultiplicativeIncrement) {
  LoopHarness H("for (int i = 1; i < 100; i *= 2) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_bad_incr));
}

TEST(CanonicalLoopTest, RejectsIncrementOfOtherVariable) {
  LoopHarness H("int j = 0; for (int i = 0; i < 10; ++j) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_bad_incr));
}

TEST(CanonicalLoopTest, RejectsZeroStep) {
  LoopHarness H("for (int i = 0; i < 10; i += 0) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_zero_step));
}

TEST(CanonicalLoopTest, RejectsWrongDirection) {
  // Condition says upward but the step is downward.
  LoopHarness H("for (int i = 0; i < 10; --i) body(i);");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_bad_incr));
}

TEST(CanonicalLoopTest, RejectsNonUnitStepWithNotEqual) {
  LoopHarness H("for (int i = 0; i != 10; i += 3) body(i);");
  EXPECT_FALSE(H.Valid);
}

TEST(CanonicalLoopTest, RejectsIVModificationInBody) {
  LoopHarness H("for (int i = 0; i < 10; ++i) { i = 3; }");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_var_modified));
}

TEST(CanonicalLoopTest, RejectsIVIncrementInBody) {
  LoopHarness H("for (int i = 0; i < 10; ++i) { i++; }");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_var_modified));
}

TEST(CanonicalLoopTest, RejectsBreakInBody) {
  LoopHarness H("for (int i = 0; i < 10; ++i) { if (i == 5) break; }");
  EXPECT_FALSE(H.Valid);
  EXPECT_TRUE(H.F.hasDiag(diag::err_omp_loop_break));
}

TEST(CanonicalLoopTest, AllowsBreakInNestedLoop) {
  LoopHarness H("for (int i = 0; i < 10; ++i) { "
                "for (int j = 0; j < 5; ++j) { if (j == 2) break; } }");
  EXPECT_TRUE(H.Valid);
}

TEST(CanonicalLoopTest, AllowsContinue) {
  LoopHarness H("for (int i = 0; i < 10; ++i) { if (i == 5) continue; "
                "body(i); }");
  EXPECT_TRUE(H.Valid);
}

TEST(CanonicalLoopTest, RejectsCallInBound) {
  Frontend F("int limit(void);\n"
             "void f() { for (int i = 0; i < limit(); ++i) ; }");
  auto *For = F.findStmt<ForStmt>("f");
  ASSERT_NE(For, nullptr);
  OMPLoopInfo Info;
  EXPECT_FALSE(F.Actions->checkOpenMPCanonicalLoop(
      For, OpenMPDirectiveKind::For, Info));
  EXPECT_TRUE(F.hasDiag(diag::err_omp_loop_bound_not_invariant));
}

// --- Loop nest analysis ---

TEST(LoopNestTest, PerfectNest) {
  Frontend F("void f(int N) { for (int i = 0; i < N; ++i) "
             "for (int j = 0; j < N; ++j) ; }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  EXPECT_TRUE(F.Actions->analyzeLoopNest(For, OpenMPDirectiveKind::For, 2,
                                         Infos, Pre));
  ASSERT_EQ(Infos.size(), 2u);
  EXPECT_EQ(Infos[0].IterVar->getName(), "i");
  EXPECT_EQ(Infos[1].IterVar->getName(), "j");
}

TEST(LoopNestTest, BracedPerfectNest) {
  Frontend F("void f(int N) { for (int i = 0; i < N; ++i) { "
             "for (int j = 0; j < N; ++j) { } } }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  EXPECT_TRUE(F.Actions->analyzeLoopNest(For, OpenMPDirectiveKind::For, 2,
                                         Infos, Pre));
  EXPECT_EQ(Infos.size(), 2u);
}

TEST(LoopNestTest, RejectsImperfectNest) {
  Frontend F("void g(int x);\n"
             "void f(int N) { for (int i = 0; i < N; ++i) { g(i); "
             "for (int j = 0; j < N; ++j) ; } }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  EXPECT_FALSE(F.Actions->analyzeLoopNest(For, OpenMPDirectiveKind::For, 2,
                                          Infos, Pre));
  EXPECT_TRUE(F.hasDiag(diag::err_omp_not_perfectly_nested));
}

TEST(LoopNestTest, RejectsTooShallowNest) {
  Frontend F("void g(int x);\n"
             "void f(int N) { for (int i = 0; i < N; ++i) g(i); }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  EXPECT_FALSE(F.Actions->analyzeLoopNest(For, OpenMPDirectiveKind::For, 2,
                                          Infos, Pre));
}

TEST(LoopNestTest, RejectsNonRectangularNest) {
  Frontend F("void f(int N) { for (int i = 0; i < N; ++i) "
             "for (int j = i; j < N; ++j) ; }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  EXPECT_FALSE(F.Actions->analyzeLoopNest(For, OpenMPDirectiveKind::For, 2,
                                          Infos, Pre));
  EXPECT_TRUE(F.hasDiag(diag::err_omp_nonrectangular));
}

// --- Trip count expression building (property sweep) ---

struct TripCountCase {
  int LB, UB, Step;
  const char *Rel;
  std::uint64_t Expected;
};

class TripCountSweep : public ::testing::TestWithParam<TripCountCase> {};

TEST_P(TripCountSweep, ConstantFoldsToReferenceCount) {
  const TripCountCase &C = GetParam();
  std::string Loop = "for (int i = " + std::to_string(C.LB) + "; i " +
                     C.Rel + " " + std::to_string(C.UB) + "; i += " +
                     std::to_string(C.Step) + ") body(i);";
  LoopHarness H(Loop);
  ASSERT_TRUE(H.Valid) << Loop;
  ASSERT_TRUE(H.Info.ConstantTripCount.has_value()) << Loop;
  EXPECT_EQ(*H.Info.ConstantTripCount, C.Expected) << Loop;

  // Reference: simulate the loop.
  std::uint64_t Ref = 0;
  if (C.Step > 0)
    for (long long i = C.LB;
         std::string(C.Rel) == "<" ? i < C.UB : i <= C.UB; i += C.Step)
      ++Ref;
  EXPECT_EQ(*H.Info.ConstantTripCount, Ref) << Loop;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TripCountSweep,
    ::testing::Values(TripCountCase{0, 10, 1, "<", 10},
                      TripCountCase{0, 10, 3, "<", 4},
                      TripCountCase{0, 10, 1, "<=", 11},
                      TripCountCase{0, 10, 3, "<=", 4},
                      TripCountCase{7, 17, 3, "<", 4},
                      TripCountCase{5, 5, 1, "<", 0},
                      TripCountCase{5, 5, 1, "<=", 1},
                      TripCountCase{-10, 10, 4, "<", 5},
                      TripCountCase{-10, -5, 2, "<", 3},
                      TripCountCase{0, 1, 100, "<", 1},
                      TripCountCase{10, 0, 1, "<", 0},
                      TripCountCase{0, 1000000, 7, "<", 142858}));

} // namespace
