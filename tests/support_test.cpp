//===--- support_test.cpp - Unit tests for the support layer --------------===//
//
// Covers SourceLocation/SourceRange arithmetic, SourceManager decomposition
// and line tables, FileManager virtual files, the Arena allocator, and the
// DiagnosticsEngine including the transformed-AST location remapping policy
// from Section 2 of the paper.
//
//===----------------------------------------------------------------------===//
#include "support/Arena.h"
#include "support/Diagnostic.h"
#include "support/FileManager.h"
#include "support/JSONWriter.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mcc;

namespace {

TEST(SourceLocationTest, DefaultIsInvalid) {
  SourceLocation Loc;
  EXPECT_TRUE(Loc.isInvalid());
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.getRawEncoding(), 0u);
}

TEST(SourceLocationTest, OffsetArithmetic) {
  SourceLocation L = SourceLocation::getFromRawEncoding(100);
  EXPECT_EQ(L.getLocWithOffset(5).getRawEncoding(), 105u);
  EXPECT_EQ(L.getLocWithOffset(-5).getRawEncoding(), 95u);
  // Offsetting an invalid location stays invalid.
  EXPECT_TRUE(SourceLocation().getLocWithOffset(10).isInvalid());
}

TEST(SourceLocationTest, Ordering) {
  SourceLocation A = SourceLocation::getFromRawEncoding(10);
  SourceLocation B = SourceLocation::getFromRawEncoding(20);
  EXPECT_LT(A, B);
  EXPECT_TRUE(A <= A);
  EXPECT_NE(A, B);
  EXPECT_EQ(A, SourceLocation::getFromRawEncoding(10));
}

TEST(SourceRangeTest, Basics) {
  SourceLocation A = SourceLocation::getFromRawEncoding(10);
  SourceLocation B = SourceLocation::getFromRawEncoding(20);
  SourceRange R(A, B);
  EXPECT_EQ(R.getBegin(), A);
  EXPECT_EQ(R.getEnd(), B);
  EXPECT_TRUE(R.isValid());
  EXPECT_FALSE(SourceRange().isValid());
  SourceRange Single(A);
  EXPECT_EQ(Single.getBegin(), Single.getEnd());
}

TEST(MemoryBufferTest, NulTerminatedAndNamed) {
  auto Buf = MemoryBuffer::getMemBuffer("hello", "file.c");
  EXPECT_EQ(Buf->getSize(), 5u);
  EXPECT_EQ(Buf->getBuffer(), "hello");
  EXPECT_EQ(*Buf->getBufferEnd(), '\0');
  EXPECT_EQ(Buf->getName(), "file.c");
}

TEST(FileManagerTest, VirtualFilesShadow) {
  FileManager FM;
  FM.addVirtualFile("a.c", "int x;");
  EXPECT_TRUE(FM.exists("a.c"));
  const MemoryBuffer *Buf = FM.getBuffer("a.c");
  ASSERT_NE(Buf, nullptr);
  EXPECT_EQ(Buf->getBuffer(), "int x;");
  // Replacing a virtual file changes the content.
  FM.addVirtualFile("a.c", "int y;");
  EXPECT_EQ(FM.getBuffer("a.c")->getBuffer(), "int y;");
}

TEST(FileManagerTest, MissingFile) {
  FileManager FM;
  EXPECT_FALSE(FM.exists("/definitely/not/here.c"));
  EXPECT_EQ(FM.getBuffer("/definitely/not/here.c"), nullptr);
}

TEST(FileManagerTest, IdenticalReRegistrationDedupes) {
  // Re-registering the same content must not allocate a new buffer:
  // sustained repeated compiles of one source (the compile-service hot
  // path) would otherwise leak one buffer per request.
  FileManager FM;
  FM.addVirtualFile("a.c", "int x;");
  const MemoryBuffer *First = FM.getBuffer("a.c");
  for (int I = 0; I < 100; ++I)
    FM.addVirtualFile("a.c", "int x;");
  EXPECT_EQ(FM.getBuffer("a.c"), First);
  EXPECT_EQ(FM.getNumRetiredBuffers(), 0u);
}

TEST(FileManagerTest, ChangedContentRetiresOldBuffer) {
  // A *changed* file gets a fresh buffer, but the old one is retired, not
  // destroyed: SourceLocations already handed out for the previous
  // compile must stay renderable.
  FileManager FM;
  FM.addVirtualFile("a.c", "int x;");
  const MemoryBuffer *Old = FM.getBuffer("a.c");
  FM.addVirtualFile("a.c", "int y;");
  EXPECT_EQ(FM.getBuffer("a.c")->getBuffer(), "int y;");
  EXPECT_EQ(FM.getNumRetiredBuffers(), 1u);
  EXPECT_EQ(Old->getBuffer(), "int x;"); // still alive and intact
}

TEST(SourceManagerTest, CreateFileIDDedupesSameBuffer) {
  // Registering the same buffer again (a re-driven CompilerInstance, a
  // cache-replayed compile) returns the existing FileID instead of
  // growing the entry table per run.
  FileManager FM;
  FM.addVirtualFile("a.c", "int x;\n");
  SourceManager SM;
  FileID FA = SM.createFileID(FM.getBuffer("a.c"));
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(SM.createFileID(FM.getBuffer("a.c")), FA);
  EXPECT_EQ(SM.getNumFiles(), 1u);
}

TEST(SourceManagerTest, DecomposeRoundTrip) {
  FileManager FM;
  FM.addVirtualFile("a.c", "line1\nline2\nline3\n");
  FM.addVirtualFile("b.c", "other\n");
  SourceManager SM;
  FileID FA = SM.createFileID(FM.getBuffer("a.c"));
  FileID FB = SM.createFileID(FM.getBuffer("b.c"));
  EXPECT_EQ(SM.getMainFileID(), FA);

  SourceLocation L = SM.getLoc(FA, 7); // 'i' of line2
  auto [FID, Off] = SM.getDecomposedLoc(L);
  EXPECT_EQ(FID, FA);
  EXPECT_EQ(Off, 7u);

  SourceLocation LB = SM.getLoc(FB, 0);
  EXPECT_EQ(SM.getFileID(LB), FB);
}

TEST(SourceManagerTest, LineAndColumn) {
  FileManager FM;
  FM.addVirtualFile("a.c", "line1\nline2\nline3");
  SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer("a.c"));

  PresumedLoc P = SM.getPresumedLoc(SM.getLoc(F, 0));
  EXPECT_EQ(P.Line, 1u);
  EXPECT_EQ(P.Column, 1u);
  EXPECT_STREQ(P.Filename, "a.c");

  P = SM.getPresumedLoc(SM.getLoc(F, 6)); // first char of line2
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Column, 1u);

  P = SM.getPresumedLoc(SM.getLoc(F, 9)); // 'e' in line2
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Column, 4u);

  P = SM.getPresumedLoc(SM.getLoc(F, 16)); // last char
  EXPECT_EQ(P.Line, 3u);
  EXPECT_EQ(P.Column, 5u);
}

TEST(SourceManagerTest, LineText) {
  FileManager FM;
  FM.addVirtualFile("a.c", "first\nsecond\nthird");
  SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer("a.c"));
  EXPECT_EQ(SM.getLineText(SM.getLoc(F, 8)), "second");
  EXPECT_EQ(SM.getLineText(SM.getLoc(F, 0)), "first");
  EXPECT_EQ(SM.getLineText(SM.getLoc(F, 15)), "third");
}

TEST(SourceManagerTest, InvalidLocationDecomposesGracefully) {
  SourceManager SM;
  EXPECT_FALSE(SM.getPresumedLoc(SourceLocation()).isValid());
  auto [FID, Off] = SM.getDecomposedLoc(SourceLocation());
  EXPECT_FALSE(FID.isValid());
  EXPECT_EQ(Off, 0u);
}

TEST(SourceManagerTest, MultipleFilesDoNotOverlap) {
  FileManager FM;
  FM.addVirtualFile("a.c", "aaa");
  FM.addVirtualFile("b.c", "bbb");
  SourceManager SM;
  FileID FA = SM.createFileID(FM.getBuffer("a.c"));
  FileID FB = SM.createFileID(FM.getBuffer("b.c"));
  // Last location of A (the EOF position) differs from first of B.
  SourceLocation EndA = SM.getLoc(FA, 3);
  SourceLocation StartB = SM.getLoc(FB, 0);
  EXPECT_NE(EndA, StartB);
  EXPECT_EQ(SM.getFileID(EndA), FA);
  EXPECT_EQ(SM.getFileID(StartB), FB);
}

TEST(ArenaTest, AllocatesAlignedMemory) {
  Arena A;
  void *P1 = A.allocate(1, 1);
  void *P8 = A.allocate(8, 8);
  void *P16 = A.allocate(16, 16);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P16) % 16, 0u);
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(ArenaTest, GrowsAcrossSlabs) {
  Arena A(/*SlabSize=*/128);
  for (int I = 0; I < 100; ++I) {
    void *P = A.allocate(64, 8);
    ASSERT_NE(P, nullptr);
    std::memset(P, 0xAB, 64); // must be writable
  }
  EXPECT_GT(A.getNumSlabs(), 1u);
  EXPECT_GE(A.getTotalAllocated(), 6400u);
}

TEST(ArenaTest, OversizedAllocation) {
  Arena A(/*SlabSize=*/64);
  void *P = A.allocate(1024, 16);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0, 1024);
}

TEST(DiagnosticsTest, SeverityTable) {
  EXPECT_EQ(diag::getSeverity(diag::err_expected), diag::Severity::Error);
  EXPECT_EQ(diag::getSeverity(diag::warn_unused_value),
            diag::Severity::Warning);
  EXPECT_EQ(diag::getSeverity(diag::note_previous_definition),
            diag::Severity::Note);
}

TEST(DiagnosticsTest, CountsAndFormatting) {
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Diags.report(SourceLocation(), diag::err_undeclared_identifier) << "foo";
  Diags.report(SourceLocation(), diag::warn_unused_value);
  EXPECT_EQ(Diags.getNumErrors(), 1u);
  EXPECT_EQ(Diags.getNumWarnings(), 1u);
  EXPECT_TRUE(Diags.hasErrorOccurred());
  ASSERT_EQ(Consumer.getDiagnostics().size(), 2u);
  EXPECT_EQ(Consumer.getDiagnostics()[0].Message,
            "use of undeclared identifier 'foo'");
}

TEST(DiagnosticsTest, MultiArgSubstitution) {
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Diags.report(SourceLocation(), diag::err_wrong_arg_count)
      << "f" << 2 << 3;
  EXPECT_EQ(Consumer.getDiagnostics()[0].Message,
            "call to 'f' expects 2 arguments, but 3 were provided");
}

TEST(DiagnosticsTest, NotesDoNotCountAsErrors) {
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  Diags.report(SourceLocation(), diag::note_previous_definition);
  EXPECT_EQ(Diags.getNumErrors(), 0u);
  EXPECT_EQ(Diags.getNumWarnings(), 0u);
}

// The paper (Section 2): diagnostics emitted while analyzing a *transformed*
// (shadow) AST should point at a representative location of the literal loop
// and explain the transformation history with a note.
TEST(DiagnosticsTest, TransformRemapPolicy) {
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);

  SourceLocation LoopLoc = SourceLocation::getFromRawEncoding(42);
  Diags.pushTransformRemap(LoopLoc, "unroll");
  // A diagnostic with no usable location (as happens for synthesized shadow
  // nodes) is retargeted and followed by a history note.
  Diags.report(SourceLocation(), diag::err_omp_loop_zero_step);
  Diags.popTransformRemap();

  ASSERT_EQ(Consumer.getDiagnostics().size(), 2u);
  EXPECT_EQ(Consumer.getDiagnostics()[0].Loc, LoopLoc);
  EXPECT_EQ(Consumer.getDiagnostics()[1].ID, diag::note_omp_transformed_here);
  EXPECT_EQ(Consumer.getDiagnostics()[1].Message,
            "within the loop generated by '#pragma omp unroll' here");
}

TEST(DiagnosticsTest, RemapLeavesRealLocationsAlone) {
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  SourceLocation Rep = SourceLocation::getFromRawEncoding(42);
  SourceLocation Real = SourceLocation::getFromRawEncoding(99);
  Diags.pushTransformRemap(Rep, "tile");
  Diags.report(Real, diag::err_omp_loop_zero_step);
  Diags.popTransformRemap();
  ASSERT_EQ(Consumer.getDiagnostics().size(), 1u);
  EXPECT_EQ(Consumer.getDiagnostics()[0].Loc, Real);
}

TEST(DiagnosticsTest, TextPrinterRendersCaret) {
  FileManager FM;
  FM.addVirtualFile("t.c", "int x = y;\n");
  SourceManager SM;
  FileID F = SM.createFileID(FM.getBuffer("t.c"));

  std::string Out;
  TextDiagnosticPrinter Printer(Out, &SM);
  DiagnosticsEngine Diags(&Printer);
  Diags.report(SM.getLoc(F, 8), diag::err_undeclared_identifier) << "y";

  EXPECT_NE(Out.find("t.c:1:9: error: use of undeclared identifier 'y'"),
            std::string::npos);
  EXPECT_NE(Out.find("int x = y;"), std::string::npos);
  EXPECT_NE(Out.find("        ^"), std::string::npos);
}

TEST(JSONWriterTest, EscapesPerRFC8259) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(json::escape(std::string("nul\x01") + '\x1f'),
            "nul\\u0001\\u001f");
}

TEST(JSONWriterTest, CommasAndNestingAreAutomatic) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.field("a", std::uint64_t(1));
  W.field("b", true);
  W.field("s", "x\"y");
  W.key("nested");
  W.beginObject();
  W.field("c", std::int64_t(-2));
  W.endObject();
  W.key("list");
  W.beginArray();
  W.value(std::uint64_t(1));
  W.value(std::uint64_t(2));
  W.endArray();
  W.endObject();
  EXPECT_EQ(Out, "{\"a\":1,\"b\":true,\"s\":\"x\\\"y\","
                 "\"nested\":{\"c\":-2},\"list\":[1,2]}");
}

TEST(JSONWriterTest, RawValueSplicesWithoutReescaping) {
  std::string Inner;
  {
    json::Writer W(Inner);
    W.beginObject();
    W.field("k", std::uint64_t(7));
    W.endObject();
  }
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.field("first", std::uint64_t(0));
  W.key("inner");
  W.rawValue(Inner);
  W.field("after", std::uint64_t(1));
  W.endObject();
  EXPECT_EQ(Out, "{\"first\":0,\"inner\":{\"k\":7},\"after\":1}");
}

TEST(JSONWriterTest, EmptyContainers) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("o");
  W.beginObject();
  W.endObject();
  W.key("a");
  W.beginArray();
  W.endArray();
  W.endObject();
  EXPECT_EQ(Out, "{\"o\":{},\"a\":[]}");
}

} // namespace
