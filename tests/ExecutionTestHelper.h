//===--- ExecutionTestHelper.h - Compile & execute MiniC in tests -*- C++ -*-===//
#ifndef MCC_TESTS_EXECUTIONTESTHELPER_H
#define MCC_TESTS_EXECUTIONTESTHELPER_H

#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mcc::test {

/// Compiles MiniC source and runs it through the interpreter. The source
/// may declare `void record(long v);` to append values to Recorded
/// (thread-safe), giving tests an observable side-effect channel.
struct Execution {
  CompilerOptions Options;
  std::unique_ptr<CompilerInstance> CI;
  std::unique_ptr<interp::ExecutionEngine> EE;
  std::vector<std::int64_t> Recorded;
  std::mutex RecordMutex;
  bool CompiledOK = false;

  explicit Execution(std::string_view Source, CompilerOptions Opts = {}) {
    Options = Opts;
    CI = std::make_unique<CompilerInstance>(Options);
    CompiledOK = CI->compileSource(Source);
    if (!CompiledOK)
      return;
    rt::OpenMPRuntime::get().setDefaultNumThreads(
        Options.LangOpts.OpenMPDefaultNumThreads);
    EE = std::make_unique<interp::ExecutionEngine>(*CI->getIRModule());
    EE->bindExternal("record", [this](std::span<const interp::RTValue> Args) {
      std::lock_guard<std::mutex> Lock(RecordMutex);
      Recorded.push_back(Args[0].I);
      return interp::RTValue{};
    });
  }

  std::int64_t runMain() {
    EXPECT_TRUE(CompiledOK) << CI->renderDiagnostics();
    if (!CompiledOK)
      return INT64_MIN;
    return EE->runFunction("main", {}).I;
  }

  [[nodiscard]] std::string diagnostics() const {
    return CI->renderDiagnostics();
  }
};

inline CompilerOptions irBuilderOpts() {
  CompilerOptions O;
  O.LangOpts.OpenMPEnableIRBuilder = true;
  return O;
}

inline CompilerOptions midendOpts(bool IRBuilderMode = false) {
  CompilerOptions O;
  O.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  O.RunMidend = true;
  return O;
}

/// Runs \p Source under every pipeline configuration and checks that main
/// returns \p Expected in all of them (the E9 equivalence property).
inline void expectAllPipelinesReturn(const std::string &Source,
                                     std::int64_t Expected) {
  struct Config {
    const char *Name;
    CompilerOptions Opts;
  };
  CompilerOptions Legacy, LegacyO1, IRB, IRBO1;
  LegacyO1.RunMidend = true;
  IRB.LangOpts.OpenMPEnableIRBuilder = true;
  IRBO1.LangOpts.OpenMPEnableIRBuilder = true;
  IRBO1.RunMidend = true;
  const Config Configs[] = {
      {"legacy", Legacy},
      {"legacy+O1", LegacyO1},
      {"irbuilder", IRB},
      {"irbuilder+O1", IRBO1},
  };
  for (const Config &C : Configs) {
    Execution E(Source, C.Opts);
    ASSERT_TRUE(E.CompiledOK) << C.Name << ":\n" << E.diagnostics();
    EXPECT_EQ(E.runMain(), Expected) << "pipeline: " << C.Name;
  }
}

} // namespace mcc::test

#endif // MCC_TESTS_EXECUTIONTESTHELPER_H
