//===--- net_test.cpp - Compile daemon integration --------------------------===//
//
// Exercises the socket front end end-to-end, in process: a real Server
// over a real Unix-domain socket, driven by real Client connections.
// Covers the framed protocol round-trip, concurrent multi-client load
// (zero dropped jobs), cancellation mid-batch, observable admission
// control (typed Busy/Quota/Malformed rejections), the stats and
// shutdown verbs, drain-on-shutdown delivery guarantees, and
// warm-from-disk restarts answering byte-identically over the wire.
//
//===----------------------------------------------------------------------===//
#include "net/Client.h"
#include "net/Server.h"
#include "service/CompileService.h"

#include "gtest/gtest.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mcc;

namespace {

const char *const OkProgram = "int main(void) { return 7; }\n";
const char *const BadProgram = "int main(void) { return nope; }\n";
/// Slow enough under the walker interpreter to hold a worker for a while
/// (the window the cancellation/backpressure tests need), fast enough not
/// to dominate the suite.
const char *const HeavyProgram = "int main(void) {\n"
                                 "  int s = 0;\n"
                                 "  for (int i = 0; i < 2000000; i = i + 1)\n"
                                 "    s += i;\n"
                                 "  return s & 255;\n"
                                 "}\n";

class NetTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Unix socket paths are capped near 108 bytes: keep it short and
    // unique per test process.
    SockPath = "/tmp/mcc_net_" + std::to_string(::getpid()) + "_" +
               std::to_string(++Seq) + ".sock";
  }
  void TearDown() override {
    if (Server)
      Server->shutdown();
    if (Service)
      Service->shutdown();
    ::unlink(SockPath.c_str());
  }

  void startServer(svc::ServiceOptions SO, net::ServerOptions NO) {
    Service = std::make_unique<svc::CompileService>(SO);
    NO.SocketPath = SockPath;
    Server = std::make_unique<net::Server>(*Service, NO);
    std::string Error;
    ASSERT_TRUE(Server->start(Error)) << Error;
  }

  net::Client makeClient() {
    net::Client C;
    std::string Error;
    EXPECT_TRUE(C.connect(SockPath, Error)) << Error;
    return C;
  }

  static net::ClientEvent nextEvent(net::Client &C) {
    net::ClientEvent Ev;
    std::string Error;
    EXPECT_TRUE(C.next(Ev, Error)) << Error;
    return Ev;
  }

  std::string SockPath;
  std::unique_ptr<svc::CompileService> Service;
  std::unique_ptr<net::Server> Server;
  static unsigned Seq;
};

unsigned NetTest::Seq = 0;

} // namespace

TEST_F(NetTest, SubmitRoundTripMatchesInProcessCompile) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 2;
  startServer(SO, {});

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "ok.c", "", OkProgram));
  ASSERT_TRUE(C.submit(2, "bad.c", "", BadProgram));
  ASSERT_TRUE(C.submit(3, "run.c", "-run", OkProgram));

  bool SawOk = false, SawFail = false, SawRun = false;
  std::string WireDiag;
  for (int K = 0; K < 3; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    ASSERT_EQ(Ev.Type, net::MsgType::Result);
    switch (Ev.JobId) {
    case 1:
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
      EXPECT_FALSE(Ev.Result.Executed);
      SawOk = true;
      break;
    case 2:
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::CompileFail);
      EXPECT_FALSE(Ev.Result.Diagnostics.empty());
      WireDiag = Ev.Result.Diagnostics;
      SawFail = true;
      break;
    case 3:
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
      EXPECT_TRUE(Ev.Result.Executed);
      EXPECT_EQ(Ev.Result.ExitValue, 7);
      SawRun = true;
      break;
    default:
      FAIL() << "unexpected job id " << Ev.JobId;
    }
  }
  EXPECT_TRUE(SawOk && SawFail && SawRun);

  // The socket path serves the same bytes the in-process path produces.
  svc::CompileJob Job;
  Job.Path = "bad.c";
  Job.Source = BadProgram;
  EXPECT_EQ(Service->compile(Job).Diagnostics, WireDiag);
}

TEST_F(NetTest, ConcurrentClientsZeroDroppedJobs) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 4;
  net::ServerOptions NO;
  NO.PerClientInFlight = 64; // this test wants load, not rejections
  startServer(SO, NO);

  const unsigned Clients = 6, JobsEach = 8;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> OkCount{0};
  for (unsigned T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      net::Client C = makeClient();
      for (unsigned J = 0; J < JobsEach; ++J) {
        // Unique program per (client, job): every compile is real work.
        std::string Src = "int main(void) { return " +
                          std::to_string(T * 100 + J) + "; }\n";
        ASSERT_TRUE(C.submit(J + 1, "c.c", "-run", Src));
      }
      for (unsigned J = 0; J < JobsEach; ++J) {
        net::ClientEvent Ev = nextEvent(C);
        ASSERT_EQ(Ev.Type, net::MsgType::Result);
        ASSERT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
        // Verify the result is *this* job's, not a cross-wired one.
        EXPECT_EQ(Ev.Result.ExitValue,
                  static_cast<std::int64_t>(T * 100 + (Ev.JobId - 1)));
        OkCount.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(OkCount.load(), Clients * JobsEach);
  net::ServerStatsSnapshot S = Server->statsSnapshot();
  EXPECT_EQ(S.Accepted, Clients * JobsEach);
  EXPECT_EQ(S.Completed, Clients * JobsEach);
  EXPECT_EQ(S.PendingNow, 0u);
  EXPECT_EQ(S.DispatchedNow, 0u);
}

TEST_F(NetTest, CancellationMidBatch) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  net::ServerOptions NO;
  NO.MaxDispatched = 1; // jobs behind the heavy one stay pending
  startServer(SO, NO);

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "heavy.c", "-run", HeavyProgram));
  ASSERT_TRUE(C.submit(2, "a.c", "", OkProgram));
  ASSERT_TRUE(C.submit(3, "b.c", "", "int main(void) { return 3; }\n"));
  ASSERT_TRUE(C.submit(4, "c.c", "", "int main(void) { return 4; }\n"));
  // Jobs 3 and 4 are pending behind the dispatched heavy job: cancelling
  // them must drop them before they ever reach the pool.
  ASSERT_TRUE(C.cancel(3));
  ASSERT_TRUE(C.cancel(4));

  unsigned Cancelled = 0, Completed = 0;
  for (int K = 0; K < 4; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    ASSERT_EQ(Ev.Type, net::MsgType::Result);
    if (Ev.Result.Status == net::ResultStatus::Cancelled) {
      EXPECT_TRUE(Ev.JobId == 3 || Ev.JobId == 4);
      ++Cancelled;
    } else {
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
      EXPECT_TRUE(Ev.JobId == 1 || Ev.JobId == 2);
      ++Completed;
    }
  }
  EXPECT_EQ(Cancelled, 2u);
  EXPECT_EQ(Completed, 2u);
  EXPECT_EQ(Server->statsSnapshot().Cancelled, 2u);

  // Cancelled job ids are reusable afterwards.
  ASSERT_TRUE(C.submit(3, "b.c", "", "int main(void) { return 3; }\n"));
  net::ClientEvent Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Result);
  EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
}

TEST_F(NetTest, QuotaRejectionIsObservableAndTyped) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  net::ServerOptions NO;
  NO.MaxDispatched = 1;
  NO.PerClientInFlight = 2;
  NO.RetryAfterMs = 15;
  startServer(SO, NO);

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "heavy.c", "-run", HeavyProgram));
  ASSERT_TRUE(C.submit(2, "a.c", "", OkProgram));
  ASSERT_TRUE(C.submit(3, "b.c", "", OkProgram)); // over quota
  ASSERT_TRUE(C.submit(4, "c.c", "", OkProgram)); // over quota

  unsigned QuotaRejects = 0, Results = 0;
  for (int K = 0; K < 4; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    if (Ev.Type == net::MsgType::Reject) {
      EXPECT_EQ(Ev.Reject.Code, net::RejectCode::Quota);
      EXPECT_EQ(Ev.Reject.RetryAfterMs, 15u);
      EXPECT_TRUE(Ev.JobId == 3 || Ev.JobId == 4);
      ++QuotaRejects;
    } else {
      ASSERT_EQ(Ev.Type, net::MsgType::Result);
      ++Results;
    }
  }
  EXPECT_EQ(QuotaRejects, 2u);
  EXPECT_EQ(Results, 2u);
  EXPECT_EQ(Server->statsSnapshot().RejectedQuota, 2u);

  // After the batch drains, the same client is admitted again (the quota
  // is an in-flight gauge, not a strike count).
  ASSERT_TRUE(C.submit(5, "d.c", "", OkProgram));
  net::ClientEvent Ev = nextEvent(C);
  EXPECT_EQ(Ev.Type, net::MsgType::Result);
}

TEST_F(NetTest, BusyRejectionWhenAdmissionQueueIsFull) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  net::ServerOptions NO;
  NO.MaxDispatched = 1;
  NO.MaxPendingJobs = 1;
  NO.PerClientInFlight = 100;
  startServer(SO, NO);

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "heavy.c", "-run", HeavyProgram)); // dispatched
  ASSERT_TRUE(C.submit(2, "a.c", "", OkProgram));            // fills the queue
  ASSERT_TRUE(C.submit(3, "b.c", "", OkProgram));            // bounced

  unsigned Busy = 0, Results = 0;
  for (int K = 0; K < 3; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    if (Ev.Type == net::MsgType::Reject) {
      EXPECT_EQ(Ev.Reject.Code, net::RejectCode::Busy);
      EXPECT_GT(Ev.Reject.RetryAfterMs, 0u);
      EXPECT_EQ(Ev.JobId, 3u);
      ++Busy;
    } else {
      ASSERT_EQ(Ev.Type, net::MsgType::Result);
      ++Results;
    }
  }
  EXPECT_EQ(Busy, 1u);
  EXPECT_EQ(Results, 2u);
  EXPECT_EQ(Server->statsSnapshot().RejectedBusy, 1u);
}

TEST_F(NetTest, MalformedSubmitsAreRejectedNotFatal) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  startServer(SO, {});

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "x.c", "-frobnicate", OkProgram));
  net::ClientEvent Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Reject);
  EXPECT_EQ(Ev.Reject.Code, net::RejectCode::Malformed);
  EXPECT_FALSE(Ev.Reject.Message.empty());

  // The connection survives a malformed submit: valid work still flows.
  ASSERT_TRUE(C.submit(2, "x.c", "-O1", OkProgram));
  Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Result);
  EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
  EXPECT_EQ(Server->statsSnapshot().RejectedMalformed, 1u);
}

TEST_F(NetTest, DuplicateActiveJobIdIsMalformed) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  net::ServerOptions NO;
  NO.MaxDispatched = 1;
  startServer(SO, NO);

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "heavy.c", "-run", HeavyProgram));
  ASSERT_TRUE(C.submit(1, "dup.c", "", OkProgram)); // id 1 still active

  net::ClientEvent Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Reject);
  EXPECT_EQ(Ev.Reject.Code, net::RejectCode::Malformed);
  Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Result); // the original still completes
  EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
}

TEST_F(NetTest, StatsVerbTextAndJSON) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  startServer(SO, {});

  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "x.c", "", OkProgram));
  net::ClientEvent Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::Result);

  ASSERT_TRUE(C.requestStats(/*JSON=*/false));
  Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::StatsReply);
  EXPECT_NE(Ev.Text.find("== compile service statistics =="),
            std::string::npos);
  EXPECT_NE(Ev.Text.find("== compile daemon =="), std::string::npos);
  EXPECT_NE(Ev.Text.find("accepted=1"), std::string::npos);

  ASSERT_TRUE(C.requestStats(/*JSON=*/true));
  Ev = nextEvent(C);
  ASSERT_EQ(Ev.Type, net::MsgType::StatsReply);
  EXPECT_EQ(Ev.Text.front(), '{');
  EXPECT_NE(Ev.Text.find("\"service\""), std::string::npos);
  EXPECT_NE(Ev.Text.find("\"daemon\""), std::string::npos);
  EXPECT_NE(Ev.Text.find("\"accepted\":1"), std::string::npos);
}

TEST_F(NetTest, ShutdownVerbDrainsAdmittedJobs) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 2;
  startServer(SO, {});

  net::Client C = makeClient();
  for (std::uint64_t J = 1; J <= 4; ++J)
    ASSERT_TRUE(C.submit(J, "x.c", "-run",
                         "int main(void) { return " + std::to_string(J) +
                             "; }\n"));
  ASSERT_TRUE(C.requestShutdown());

  // Drain guarantee: every admitted job's result arrives, plus the ack —
  // in any interleaving.
  unsigned Results = 0;
  bool Acked = false;
  for (int K = 0; K < 5; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    if (Ev.Type == net::MsgType::ShutdownAck)
      Acked = true;
    else {
      ASSERT_EQ(Ev.Type, net::MsgType::Result);
      ASSERT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
      EXPECT_EQ(Ev.Result.ExitValue, static_cast<std::int64_t>(Ev.JobId));
      ++Results;
    }
  }
  EXPECT_TRUE(Acked);
  EXPECT_EQ(Results, 4u);

  EXPECT_TRUE(Server->waitForShutdownRequest(/*TimeoutMs=*/5000));
  Server->shutdown();
  net::ServerStatsSnapshot S = Server->statsSnapshot();
  EXPECT_EQ(S.Accepted, 4u);
  EXPECT_EQ(S.Completed, 4u);
  EXPECT_EQ(S.PendingNow, 0u);
  EXPECT_EQ(S.DispatchedNow, 0u);
}

TEST_F(NetTest, WarmFromDiskRestartAnswersByteIdenticallyOverTheWire) {
  std::string Root = ::testing::TempDir() + "mcc_net_store_" +
                     std::to_string(::getpid());
  std::filesystem::remove_all(Root);
  svc::ServiceOptions SO;
  SO.NumWorkers = 2;
  SO.DiskStorePath = Root;

  std::string ColdDiag;
  {
    startServer(SO, {});
    net::Client C = makeClient();
    ASSERT_TRUE(C.submit(1, "ok.c", "-O1", OkProgram));
    ASSERT_TRUE(C.submit(2, "bad.c", "", BadProgram));
    for (int K = 0; K < 2; ++K) {
      net::ClientEvent Ev = nextEvent(C);
      ASSERT_EQ(Ev.Type, net::MsgType::Result);
      EXPECT_EQ(Ev.Result.Trace, net::TraceLevel::Cold);
      if (Ev.JobId == 2)
        ColdDiag = Ev.Result.Diagnostics;
    }
    Server->shutdown();
    Service->shutdown(); // flush the store index
    Server.reset();
    Service.reset();
  }

  // "Restart": a fresh service + server on the same store root. The same
  // submissions come back as disk hits with byte-identical outcomes.
  startServer(SO, {});
  net::Client C = makeClient();
  ASSERT_TRUE(C.submit(1, "ok.c", "-O1", OkProgram));
  ASSERT_TRUE(C.submit(2, "bad.c", "", BadProgram));
  for (int K = 0; K < 2; ++K) {
    net::ClientEvent Ev = nextEvent(C);
    ASSERT_EQ(Ev.Type, net::MsgType::Result);
    EXPECT_EQ(Ev.Result.Trace, net::TraceLevel::Disk);
    if (Ev.JobId == 1)
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::Ok);
    else {
      EXPECT_EQ(Ev.Result.Status, net::ResultStatus::CompileFail);
      EXPECT_EQ(Ev.Result.Diagnostics, ColdDiag);
    }
  }
  std::filesystem::remove_all(Root);
}
