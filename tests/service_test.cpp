//===--- service_test.cpp - Compile service cache semantics ----------------===//
//
// Covers the content-addressed cache's key derivation (what shares, what
// diverges, at which level), single-flight deduplication under heavy
// concurrency, LRU eviction against a byte budget, failure caching, and
// execution through cached modules. The concurrency tests run reduced
// widths under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//
#include "service/CompileService.h"
#include "service/ArtifactStore.h"
#include "service/JobSpec.h"

#include "gtest/gtest.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace mcc;
using namespace mcc::svc;

#if defined(__SANITIZE_THREAD__)
#define MCC_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCC_UNDER_TSAN 1
#endif
#endif

namespace {

const char *const SumProgram = "int main(void) {\n"
                               "  int sum = 0;\n"
                               "  for (int i = 0; i < 50; i = i + 1)\n"
                               "    sum += i;\n"
                               "  return sum;\n"
                               "}\n";

CompileJob makeJob(std::string Source, std::string Path = "input.c") {
  CompileJob Job;
  Job.Path = std::move(Path);
  Job.Source = std::move(Source);
  return Job;
}

unsigned stressWidth() {
  unsigned HW = std::max(1u, std::thread::hardware_concurrency());
#ifdef MCC_UNDER_TSAN
  return std::min(2 * HW, 8u); // TSan serializes; keep the fan-in bounded
#else
  return 2 * HW;
#endif
}

} // namespace

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

TEST(ServiceKeys, PathNeverParticipates) {
  CompilerOptions Options;
  EXPECT_EQ(tokenStreamKey(SumProgram, Options),
            tokenStreamKey(SumProgram, Options));
  // tokenStreamKey has no path parameter at all — content addressing is
  // structural. This test documents that fact at the API level.
}

TEST(ServiceKeys, HashingIsPreLex) {
  // The key is derived from raw source bytes *before* lexing, so even a
  // semantically invisible whitespace change is a different L1 key. This
  // is deliberate: token-level canonicalization would break the
  // guarantee that a cached stream replays bit-for-bit what the lexer
  // produced for those exact bytes (and would put a full lex on the hot
  // lookup path, defeating the cache).
  CompilerOptions Options;
  std::string Spaced(SumProgram);
  Spaced.insert(Spaced.find("int sum"), " ");
  EXPECT_NE(tokenStreamKey(SumProgram, Options),
            tokenStreamKey(Spaced, Options));
}

TEST(ServiceKeys, LevelKnobsLandInTheirLevel) {
  CompilerOptions Base;
  const std::uint64_t L1 = tokenStreamKey(SumProgram, Base);
  const std::uint64_t L2 = astKey(L1, Base);

  // Runtime-only: thread width is in NO key.
  CompilerOptions Threads = Base;
  Threads.LangOpts.OpenMPDefaultNumThreads = 17;
  EXPECT_EQ(tokenStreamKey(SumProgram, Threads), L1);
  EXPECT_EQ(astKey(L1, Threads), L2);
  EXPECT_EQ(moduleKey(L2, Threads), moduleKey(L2, Base));

  // Sema-level: lowering mode changes the tree Sema builds.
  CompilerOptions IRB = Base;
  IRB.LangOpts.OpenMPEnableIRBuilder = true;
  EXPECT_EQ(tokenStreamKey(SumProgram, IRB), L1);
  EXPECT_NE(astKey(L1, IRB), L2);

  // Mid-end-level: unroll knobs only reshape the L3 module.
  CompilerOptions Unroll = Base;
  Unroll.UnrollOpts.HeuristicFactor = 8;
  EXPECT_EQ(astKey(L1, Unroll), L2);
  EXPECT_NE(moduleKey(L2, Unroll), moduleKey(L2, Base));

  // Lexer-level: -D changes the token stream.
  CompilerOptions Defined = Base;
  Defined.Defines.emplace_back("N", "50");
  EXPECT_NE(tokenStreamKey(SumProgram, Defined), L1);
}

//===----------------------------------------------------------------------===//
// Cache behaviour through the service
//===----------------------------------------------------------------------===//

TEST(ServiceCache, IdenticalSourceDifferentPathHitsL1) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);

  CompileResult A = Service.compile(makeJob(SumProgram, "alpha.c"));
  ASSERT_TRUE(A.Succeeded) << A.Diagnostics;
  EXPECT_FALSE(A.Trace.L1Hit);

  // Same bytes, different registration path: served entirely from cache.
  CompileResult B = Service.compile(makeJob(SumProgram, "beta.c"));
  ASSERT_TRUE(B.Succeeded) << B.Diagnostics;
  EXPECT_TRUE(B.Trace.L1Hit);
  EXPECT_TRUE(B.Trace.L2Hit);
  EXPECT_TRUE(B.Trace.L3Hit);
  EXPECT_EQ(A.Module.get(), B.Module.get());

  // Different path AND a Sema-level knob change: the chain diverges at
  // L2, which forces an actual L1 *lookup* — it must hit despite the
  // path difference (the stats see the hit; a path-keyed cache would
  // miss here).
  CompileJob C = makeJob(SumProgram, "gamma.c");
  C.Options.LangOpts.HeuristicUnrollFactor = 4;
  CompileResult R = Service.compile(C);
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  EXPECT_TRUE(R.Trace.L1Hit);
  EXPECT_FALSE(R.Trace.L2Hit);
  EXPECT_FALSE(R.Trace.L3Hit);
  EXPECT_EQ(Service.statsSnapshot().L1.Hits, 1u);
  EXPECT_EQ(Service.statsSnapshot().L1.Misses, 1u);
}

TEST(ServiceCache, WhitespaceChangeMissesL1) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);

  ASSERT_TRUE(Service.compile(makeJob(SumProgram)).Succeeded);

  std::string Spaced(SumProgram);
  Spaced.insert(Spaced.find("int sum"), "  ");
  CompileResult R = Service.compile(makeJob(Spaced));
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  EXPECT_FALSE(R.Trace.L1Hit);
  EXPECT_FALSE(R.Trace.L2Hit);
  EXPECT_FALSE(R.Trace.L3Hit);
  EXPECT_EQ(Service.statsSnapshot().L1.Misses, 2u);
  EXPECT_EQ(Service.statsSnapshot().L1.Hits, 0u);
}

TEST(ServiceCache, UnrollFactorOnlyChangeHitsL2MissesL3) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);

  CompileJob A = makeJob(SumProgram);
  A.Options.RunMidend = true;
  A.Options.UnrollOpts.HeuristicFactor = 2;
  ASSERT_TRUE(Service.compile(A).Succeeded);

  CompileJob B = A;
  B.Options.UnrollOpts.HeuristicFactor = 8;
  CompileResult R = Service.compile(B);
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  EXPECT_TRUE(R.Trace.L1Hit);
  EXPECT_TRUE(R.Trace.L2Hit);
  EXPECT_FALSE(R.Trace.L3Hit);

  ServiceStatsSnapshot S = Service.statsSnapshot();
  EXPECT_EQ(S.L2.Hits, 1u);    // shared AST
  EXPECT_EQ(S.L2.Misses, 1u);  // built once
  EXPECT_EQ(S.L3.Misses, 2u);  // one module per factor
  EXPECT_EQ(S.L1.Misses, 1u);  // tokens produced once, never re-consulted
  EXPECT_EQ(S.L1.Hits, 0u);
}

TEST(ServiceCache, FailuresAreCachedToo) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);

  const char *Broken = "int main(void) { return x; }\n";
  CompileResult A = Service.compile(makeJob(Broken));
  EXPECT_FALSE(A.Succeeded);
  EXPECT_FALSE(A.Diagnostics.empty());

  CompileResult B = Service.compile(makeJob(Broken));
  EXPECT_FALSE(B.Succeeded);
  EXPECT_TRUE(B.Trace.L3Hit); // the failure artifact was served from cache
  EXPECT_EQ(A.Diagnostics, B.Diagnostics);
}

TEST(ServiceCache, LRUEvictionRespectsByteBudget) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  SO.CacheBudgetBytes = 96u << 10; // small enough that ~30 programs churn
  CompileService Service(SO);

  for (int K = 0; K < 30; ++K) {
    std::string Source = "int main(void) { return " + std::to_string(K) +
                         "; }\n";
    ASSERT_TRUE(Service.compile(makeJob(Source)).Succeeded);
  }
  ServiceStatsSnapshot S = Service.statsSnapshot();
  EXPECT_GT(S.L1.Evictions + S.L2.Evictions + S.L3.Evictions, 0u);
  EXPECT_LE(S.L1.Bytes, SO.CacheBudgetBytes / 4);

  // An evicted program recompiles from scratch, correctly.
  CompileResult R = Service.compile(makeJob("int main(void) { return 0; }\n"));
  EXPECT_TRUE(R.Succeeded) << R.Diagnostics;
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(ServiceConcurrency, SingleFlightDedupUnderConcurrentIdenticalRequests) {
  ServiceOptions SO;
  SO.NumWorkers = 2;
  CompileService Service(SO);

  const unsigned N = stressWidth();
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<CompileResult> Results(N);
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Ready.fetch_add(1);
      while (!Go.load())
        std::this_thread::yield();
      Results[I] = Service.compile(makeJob(SumProgram));
    });
  while (Ready.load() != N)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();

  const ModuleArtifact *Mod = Results[0].Module.get();
  for (const CompileResult &R : Results) {
    ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
    EXPECT_EQ(R.Module.get(), Mod); // everyone got the one shared artifact
  }

  // Single-flight: each level compiled exactly once; the other N-1
  // requests either blocked on the in-flight producer (waits) or arrived
  // after publication (hits). Nothing compiled redundantly.
  ServiceStatsSnapshot S = Service.statsSnapshot();
  EXPECT_EQ(S.L3.Misses, 1u);
  EXPECT_EQ(S.L3.Hits + S.L3.InFlightWaits, N - 1);
  EXPECT_EQ(S.L2.Misses, 1u);
  EXPECT_EQ(S.L1.Misses, 1u);
  EXPECT_EQ(S.Requests, N);
}

TEST(ServiceConcurrency, WorkerPoolServesQueuedJobs) {
  ServiceOptions SO;
  SO.NumWorkers = 4;
  CompileService Service(SO);

  const unsigned N = 24;
  std::vector<std::future<CompileResult>> Futures;
  Futures.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    // Half the jobs share one program, half are unique: exercises hits,
    // misses and in-flight waits on the pool simultaneously.
    std::string Source =
        I % 2 ? SumProgram
              : "int main(void) { return " + std::to_string(I) + "; }\n";
    CompileJob Job = makeJob(std::move(Source));
    Job.Execute = true;
    Futures.push_back(Service.enqueue(std::move(Job)));
  }
  for (unsigned I = 0; I < N; ++I) {
    CompileResult R = Futures[I].get();
    ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
    ASSERT_TRUE(R.Executed);
    EXPECT_EQ(R.ExitValue, I % 2 ? 1225 : static_cast<std::int64_t>(I));
  }
  EXPECT_EQ(Service.statsSnapshot().Executions, N);
}

TEST(ServiceConcurrency, ThreadWidthSweepSharesOneModule) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);

  const char *Parallel = "int a[64];\n"
                         "int main(void) {\n"
                         "  #pragma omp parallel for\n"
                         "  for (int i = 0; i < 64; i = i + 1)\n"
                         "    a[i] = 3 * i;\n"
                         "  int sum = 0;\n"
                         "  for (int i = 0; i < 64; i = i + 1)\n"
                         "    sum += a[i];\n"
                         "  return sum;\n"
                         "}\n";
  std::int64_t Expected = 3 * (64 * 63 / 2);
  const ModuleArtifact *Shared = nullptr;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    CompileJob Job = makeJob(Parallel);
    Job.Execute = true;
    Job.Options.LangOpts.OpenMPDefaultNumThreads = Threads;
    CompileResult R = Service.compile(Job);
    ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
    EXPECT_EQ(R.ExitValue, Expected) << "threads=" << Threads;
    if (!Shared)
      Shared = R.Module.get();
    else {
      // Thread width is in no cache key: one module serves the sweep.
      EXPECT_TRUE(R.Trace.L3Hit);
      EXPECT_EQ(R.Module.get(), Shared);
    }
  }
  EXPECT_EQ(Service.statsSnapshot().L3.Misses, 1u);
}

//===----------------------------------------------------------------------===//
// Parity with the single-shot pipeline
//===----------------------------------------------------------------------===//

TEST(ServiceParity, CachedModuleMatchesCompilerInstance) {
  for (bool IRBuilder : {false, true}) {
    CompilerOptions Options;
    Options.LangOpts.OpenMPEnableIRBuilder = IRBuilder;
    Options.RunMidend = true;

    CompilerInstance CI(Options);
    ASSERT_TRUE(CI.compileSource(SumProgram)) << CI.renderDiagnostics();

    ServiceOptions SO;
    SO.NumWorkers = 1;
    CompileService Service(SO);
    CompileJob Job = makeJob(SumProgram);
    Job.Options = Options;
    CompileResult R = Service.compile(Job);
    ASSERT_TRUE(R.Succeeded) << R.Diagnostics;

    // Same options, same source: the cached module prints identically to
    // the module the one-shot pipeline produces.
    EXPECT_EQ(ir::printModule(R.Module->module()), CI.getIRText());
  }
}

//===----------------------------------------------------------------------===//
// On-disk artifact store
//===----------------------------------------------------------------------===//

namespace {

/// Fresh store root per test, removed afterwards.
class DiskStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = ::testing::TempDir() + "mcc_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(Root);
  }
  void TearDown() override { std::filesystem::remove_all(Root); }
  std::string Root;
};

} // namespace

TEST_F(DiskStoreTest, RoundTripPreservesEveryByte) {
  DiskArtifact In;
  In.Failed = false;
  In.DiagText = "warning: something\nnote: here\n";
  In.IRText = "func @main() {\n  ret 0\n}\n";
  {
    ArtifactStore Store({Root, 1u << 20});
    ASSERT_TRUE(Store.store(0xDEADBEEFull, In));
    EXPECT_TRUE(Store.contains(0xDEADBEEFull));
    std::optional<DiskArtifact> Out = Store.load(0xDEADBEEFull);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Failed, In.Failed);
    EXPECT_EQ(Out->DiagText, In.DiagText);
    EXPECT_EQ(Out->IRText, In.IRText);
  }
  // A second store process (fresh index) finds the artifact again.
  ArtifactStore Store2({Root, 1u << 20});
  std::optional<DiskArtifact> Out = Store2.load(0xDEADBEEFull);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->IRText, In.IRText);
  EXPECT_EQ(Store2.statsSnapshot().Hits, 1u);
}

TEST_F(DiskStoreTest, CorruptedPayloadIsAVerifiedMiss) {
  ArtifactStore Store({Root, 1u << 20});
  DiskArtifact In;
  In.DiagText = "diagnostics";
  In.IRText = std::string(256, 'x');
  ASSERT_TRUE(Store.store(7, In));

  // Flip one payload byte behind the store's back. FNV-1a is only 64 bits
  // — the header hash must catch this and degrade to a miss, never hand
  // back a wrong artifact.
  std::string Path = Store.objectPath(7);
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(-10, std::ios::end);
    F.put('y');
  }
  ArtifactStore Fresh({Root, 1u << 20});
  EXPECT_FALSE(Fresh.load(7).has_value());
  EXPECT_EQ(Fresh.statsSnapshot().BadArtifacts, 1u);
  // The offending file was unlinked: the next load is a plain miss.
  EXPECT_FALSE(std::filesystem::exists(Path));
  EXPECT_FALSE(Fresh.load(7).has_value());
  EXPECT_EQ(Fresh.statsSnapshot().BadArtifacts, 1u);
}

TEST_F(DiskStoreTest, TruncatedArtifactIsAVerifiedMiss) {
  ArtifactStore Store({Root, 1u << 20});
  DiskArtifact In;
  In.IRText = std::string(512, 'z');
  ASSERT_TRUE(Store.store(9, In));
  std::string Path = Store.objectPath(9);
  std::filesystem::resize_file(Path, std::filesystem::file_size(Path) / 2);

  ArtifactStore Fresh({Root, 1u << 20});
  EXPECT_FALSE(Fresh.load(9).has_value());
  EXPECT_EQ(Fresh.statsSnapshot().BadArtifacts, 1u);
  EXPECT_FALSE(std::filesystem::exists(Path));
}

TEST_F(DiskStoreTest, WrongKeyFileIsRejected) {
  ArtifactStore Store({Root, 1u << 20});
  DiskArtifact In;
  In.IRText = "ir";
  ASSERT_TRUE(Store.store(11, In));
  // A file renamed to another key's slot must not satisfy that key.
  std::filesystem::rename(Store.objectPath(11), Store.objectPath(12));
  ArtifactStore Fresh({Root, 1u << 20});
  EXPECT_FALSE(Fresh.load(12).has_value());
  EXPECT_EQ(Fresh.statsSnapshot().BadArtifacts, 1u);
}

TEST_F(DiskStoreTest, BudgetDrivenLRUSweep) {
  ArtifactStore Store({Root, 4096});
  DiskArtifact Big;
  Big.IRText = std::string(1024, 'm');
  for (std::uint64_t K = 1; K <= 16; ++K)
    ASSERT_TRUE(Store.store(K, Big));

  DiskStoreSnapshot S = Store.statsSnapshot();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Bytes, 4096u);
  // Newest entries survive; the oldest were swept.
  EXPECT_TRUE(Store.contains(16));
  EXPECT_FALSE(Store.contains(1));
  EXPECT_FALSE(std::filesystem::exists(Store.objectPath(1)));
}

TEST_F(DiskStoreTest, IndexFlushPreservesRecencyAcrossRestart) {
  DiskArtifact A;
  A.IRText = std::string(1024, 'r');
  {
    ArtifactStore Store({Root, 1u << 20});
    for (std::uint64_t K = 1; K <= 4; ++K)
      ASSERT_TRUE(Store.store(K, A));
    // Touch key 1 so it becomes most-recent despite being stored first.
    ASSERT_TRUE(Store.load(1).has_value());
    Store.flushIndex();
  }
  // Restart with a budget that only fits two entries: the sweep must
  // honour the flushed recency order (1 was touched; 2 is the LRU tail).
  ArtifactStore Store({Root, 2 * (1024 + 128)});
  EXPECT_TRUE(Store.contains(1));
  EXPECT_FALSE(Store.contains(2));
}

TEST_F(DiskStoreTest, ServiceWarmFromDiskAfterRestart) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  SO.DiskStorePath = Root;

  CompileResult Cold;
  {
    CompileService Service(SO);
    Cold = Service.compile(makeJob(SumProgram));
    ASSERT_TRUE(Cold.Succeeded) << Cold.Diagnostics;
    EXPECT_FALSE(Cold.Trace.DiskHit);
    Service.shutdown(); // flushes the index
  }

  // A new service on the same root answers from disk: no parse, no sema,
  // no lowering — and the outcome contract is byte-identical.
  CompileService Warm(SO);
  CompileResult R = Warm.compile(makeJob(SumProgram));
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  EXPECT_TRUE(R.Trace.DiskHit);
  EXPECT_FALSE(R.Trace.L1Hit); // nothing below L3 was consulted
  EXPECT_EQ(R.Diagnostics, Cold.Diagnostics);
  ASSERT_TRUE(R.Module != nullptr);
  EXPECT_FALSE(R.Module->hasLiveModule()); // a disk stub, not a live module
  EXPECT_EQ(R.Module->irText(), ir::printModule(Cold.Module->module()));
  EXPECT_EQ(Warm.statsSnapshot().Disk.Hits, 1u);
}

TEST_F(DiskStoreTest, FailureVerdictsPersistByteForByte) {
  const char *Broken = "int main(void) { return undeclared; }\n";
  ServiceOptions SO;
  SO.NumWorkers = 1;
  SO.DiskStorePath = Root;

  std::string ColdDiag;
  {
    CompileService Service(SO);
    CompileResult A = Service.compile(makeJob(Broken));
    EXPECT_FALSE(A.Succeeded);
    ColdDiag = A.Diagnostics;
    Service.shutdown();
  }
  CompileService Warm(SO);
  CompileResult B = Warm.compile(makeJob(Broken));
  EXPECT_FALSE(B.Succeeded);
  EXPECT_TRUE(B.Trace.DiskHit);
  EXPECT_EQ(B.Diagnostics, ColdDiag);
}

TEST_F(DiskStoreTest, ExecuteJobsPromoteDiskStubsToLiveModules) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  SO.DiskStorePath = Root;
  {
    CompileService Service(SO);
    ASSERT_TRUE(Service.compile(makeJob(SumProgram)).Succeeded);
    Service.shutdown();
  }

  CompileService Warm(SO);
  // Populate L3 with the disk stub first.
  CompileResult Stub = Warm.compile(makeJob(SumProgram));
  EXPECT_TRUE(Stub.Trace.DiskHit);

  // An execute request cannot run a stub: it must rebuild a live module
  // (promoting the cache slot) and still produce the right answer.
  CompileJob Run = makeJob(SumProgram);
  Run.Execute = true;
  CompileResult R = Warm.compile(Run);
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  ASSERT_TRUE(R.Executed);
  EXPECT_EQ(R.ExitValue, 1225);
  ASSERT_TRUE(R.Module != nullptr);
  EXPECT_TRUE(R.Module->hasLiveModule());

  // The promotion is sticky: the next execute request hits the live
  // module in L3 without recompiling.
  CompileResult Again = Warm.compile(Run);
  ASSERT_TRUE(Again.Succeeded);
  EXPECT_TRUE(Again.Trace.L3Hit);
  EXPECT_EQ(Again.Module.get(), R.Module.get());
}

TEST_F(DiskStoreTest, CorruptedStoreOnlySlowsTheServiceDown) {
  ServiceOptions SO;
  SO.NumWorkers = 1;
  SO.DiskStorePath = Root;
  {
    CompileService Service(SO);
    ASSERT_TRUE(Service.compile(makeJob(SumProgram)).Succeeded);
    Service.shutdown();
  }
  // Corrupt every object in the store.
  for (const auto &E :
       std::filesystem::directory_iterator(Root + "/objects")) {
    std::fstream F(E.path(), std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(-1, std::ios::end);
    F.put('!');
  }
  CompileService Warm(SO);
  CompileResult R = Warm.compile(makeJob(SumProgram));
  ASSERT_TRUE(R.Succeeded) << R.Diagnostics;
  EXPECT_FALSE(R.Trace.DiskHit); // verified miss, recompiled from source
  EXPECT_GE(Warm.statsSnapshot().Disk.BadArtifacts, 1u);
}

//===----------------------------------------------------------------------===//
// Job-spec grammar (shared by job files and the wire protocol)
//===----------------------------------------------------------------------===//

TEST(JobSpec, FlagWordsRoundTripThroughRender) {
  CompileJob Job;
  std::string Error;
  for (const char *W :
       {"-O1", "-run", "-w", "-Werror", "-fopenmp-enable-irbuilder",
        "-num-threads=7", "-unroll-factor=4", "-exec-engine=bytecode",
        "-DN=32", "--analyze=deps"})
    ASSERT_TRUE(parseJobFlagWord(W, Job, Error)) << W << ": " << Error;

  // render -> parse -> render must be a fixed point.
  std::string Flags = renderJobFlags(Job);
  CompileJob Re;
  for (const std::string &W : splitJobWords(Flags))
    ASSERT_TRUE(parseJobFlagWord(W, Re, Error)) << W << ": " << Error;
  EXPECT_EQ(renderJobFlags(Re), Flags);
  EXPECT_EQ(Re.Execute, Job.Execute);
  EXPECT_EQ(Re.Options.RunMidend, Job.Options.RunMidend);
  EXPECT_EQ(Re.Options.UnrollOpts.HeuristicFactor,
            Job.Options.UnrollOpts.HeuristicFactor);
  EXPECT_EQ(Re.Options.LangOpts.OpenMPDefaultNumThreads,
            Job.Options.LangOpts.OpenMPDefaultNumThreads);
  EXPECT_EQ(Re.Options.Defines, Job.Options.Defines);
  EXPECT_EQ(Re.Options.AnalyzePasses, Job.Options.AnalyzePasses);
}

TEST(JobSpec, UnknownFlagsAndBadLinesAreRejected) {
  CompileJob Job;
  std::string Error;
  EXPECT_FALSE(parseJobFlagWord("-frobnicate", Job, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parseJobFlagWord("-exec-engine=quantum", Job, Error));

  std::string File;
  Error.clear();
  EXPECT_FALSE(parseJobSpecLine("# just a comment", Job, File, Error));
  EXPECT_TRUE(Error.empty()); // comments are skipped, not errors
  EXPECT_FALSE(parseJobSpecLine("a.c b.c", Job, File, Error));
  EXPECT_FALSE(Error.empty()); // two file operands
  Error.clear();
  EXPECT_TRUE(parseJobSpecLine("-O1 -run prog.c", Job, File, Error)) << Error;
  EXPECT_EQ(File, "prog.c");
  EXPECT_TRUE(Job.Execute);
  EXPECT_TRUE(Job.Options.RunMidend);
}

TEST(ServiceParity, DiagnosticsMatchCompilerInstance) {
  const char *Warns = "int main(void) {\n"
                      "  int x = 0;\n"
                      "  #pragma omp bogus\n"
                      "  return x;\n"
                      "}\n";
  CompilerInstance CI{CompilerOptions{}};
  bool DirectOK = CI.compileSource(Warns);

  ServiceOptions SO;
  SO.NumWorkers = 1;
  CompileService Service(SO);
  CompileResult R = Service.compile(makeJob(Warns));
  EXPECT_EQ(DirectOK, R.Succeeded);
  EXPECT_EQ(CI.renderDiagnostics(), R.Diagnostics);
}
