//===--- differential_test.cpp - Differential corpus & edge-case regression ===//
//
// Whole-pipeline semantic coverage inherited by every future PR: a
// fixed-seed corpus of fuzz-generated loop-nest programs is compiled down
// every backend (legacy shadow-AST / OMPCanonicalLoop+OpenMPIRBuilder,
// each with and without the mid-end, executed by both the tree-walking
// and the bytecode engine, across 1..2×HW threads for parallel programs)
// and each execution's checksum must match the host-evaluated reference
// bit-for-bit — plus hand-written edge cases pinning the corners named in
// the paper's composition discussion: unroll factor > trip count,
// degenerate and exact tile sizes, descending strided induction, and
// !=-bounded canonical loops.
//
// The corpus size honors MCC_DIFF_COUNT (sanitizer CI runs a reduced
// count); any failure prints the reproducing seed for
// `minicc-fuzz --seed=N --count=1`.
//
//===----------------------------------------------------------------------===//
#include "fuzz/Fuzz.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mcc;
using namespace mcc::fuzz;

namespace {

/// Default seed of the checked-in corpus — must stay in sync with the
/// minicc-fuzz driver default so CTest failures replay verbatim.
constexpr std::uint64_t CorpusSeed = 2021;

unsigned corpusCount() {
  if (const char *Env = std::getenv("MCC_DIFF_COUNT")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 200;
}

void expectProgramAgrees(const ProgramSpec &Spec,
                         const DifferentialRunner &Runner) {
  ProgramResult Result = Runner.runWithVariants(Spec);
  EXPECT_TRUE(Result.ok()) << DifferentialRunner::report(Result);
}

/// Scoped setenv restoring the previous state on destruction.
class ScopedDiffEnv {
public:
  ScopedDiffEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    ::setenv(Name, Value, 1);
  }
  ~ScopedDiffEnv() {
    if (HadOld)
      ::setenv(Name.c_str(), OldValue.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name, OldValue;
  bool HadOld = false;
};

TEST(DifferentialCorpus, FixedSeedCorpusAgreesAcrossAllBackends) {
  DifferentialRunner Runner;
  const unsigned Count = corpusCount();
  unsigned Runs = 0;
  for (unsigned K = 0; K < Count; ++K) {
    ProgramSpec Spec = generateProgram(CorpusSeed + K);
    ProgramResult Result = Runner.runWithVariants(Spec);
    Runs += Result.RunsExecuted;
    ASSERT_TRUE(Result.ok()) << DifferentialRunner::report(Result);
  }
  RecordProperty("programs", static_cast<int>(Count));
  RecordProperty("runs", static_cast<int>(Runs));
  interp::ExecutionEngine::resetOpenMPRuntime();
}

// ===--------------------- Hand-written edge cases --------------------=== //
//
// Each names one corner of the canonical-loop × transformation space and
// pins it as a permanent member of the regression corpus. Building a
// ProgramSpec (rather than raw source) reuses the host reference oracle
// and the full backend matrix.

class DifferentialEdgeCase : public ::testing::Test {
protected:
  DifferentialRunner Runner;

  static ProgramSpec baseSpec(LoopSpec L) {
    ProgramSpec P;
    P.Seed = 0; // hand-written; not reachable from a seed
    P.Loops.push_back(L);
    BodyOp Sum;
    Sum.K = BodyOp::Kind::SumLinear;
    Sum.C[0] = 3;
    Sum.C[1] = -2;
    Sum.C[2] = 1;
    Sum.Bias = 7;
    BodyOp Arr;
    Arr.K = BodyOp::Kind::ArrayUpdate;
    Arr.C[0] = 1;
    Arr.C[1] = 5;
    Arr.C[2] = -4;
    Arr.Bias = 1;
    P.Body = {Sum, Arr};
    return P;
  }
};

TEST_F(DifferentialEdgeCase, UnrollFactorExceedsTripCount) {
  // 5 iterations unrolled by 8: the whole loop lands in the remainder
  // handling of both unroll implementations.
  ProgramSpec P = baseSpec({0, 5, 1, RelOp::LT});
  P.Pragmas.UnrollFactor = 8;
  expectProgramAgrees(P, Runner);

  // And the same under a workshared loop.
  P.Pragmas.ParallelFor = true;
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialEdgeCase, UnrollFullOfSingleAndZeroTripLoops) {
  ProgramSpec P = baseSpec({3, 3, 1, RelOp::LE}); // exactly one iteration
  P.Pragmas.UnrollFull = true;
  expectProgramAgrees(P, Runner);

  ProgramSpec Z = baseSpec({3, 3, 1, RelOp::LT}); // zero iterations
  Z.Pragmas.UnrollFull = true;
  expectProgramAgrees(Z, Runner);
}

TEST_F(DifferentialEdgeCase, TileSizeOne) {
  // Degenerate tiling: every tile holds one iteration; the floor loop
  // must walk the full iteration space alone.
  ProgramSpec P = baseSpec({-4, 17, 3, RelOp::LT});
  P.Pragmas.TileSizes = {1};
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialEdgeCase, TileSizeEqualsTripCount) {
  // One tile spans the whole loop: the floor loop collapses to a single
  // iteration and the tail condition does all the work.
  LoopSpec L{0, 12, 1, RelOp::LT};
  ProgramSpec P = baseSpec(L);
  ASSERT_EQ(L.tripCount(), 12);
  P.Pragmas.TileSizes = {12};
  expectProgramAgrees(P, Runner);

  // Tile larger than the trip count behaves identically.
  P.Pragmas.TileSizes = {13};
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialEdgeCase, NegativeStepDescendingLoops) {
  // Descending strided loops under every transformation the whitelist
  // allows — the logical-iteration normalization's least intuitive side.
  for (LoopSpec L : {LoopSpec{40, -3, -7, RelOp::GT},
                     LoopSpec{19, 0, -1, RelOp::GE}}) {
    ProgramSpec Plain = baseSpec(L);
    expectProgramAgrees(Plain, Runner);

    ProgramSpec Tiled = baseSpec(L);
    Tiled.Pragmas.TileSizes = {4};
    expectProgramAgrees(Tiled, Runner);

    ProgramSpec Unrolled = baseSpec(L);
    Unrolled.Pragmas.UnrollFactor = 3;
    expectProgramAgrees(Unrolled, Runner);

    ProgramSpec Par = baseSpec(L);
    Par.Pragmas.ParallelFor = true;
    Par.Pragmas.Schedule = "dynamic, 2";
    expectProgramAgrees(Par, Runner);
  }
}

TEST_F(DifferentialEdgeCase, NotEqualBoundedCanonicalLoops) {
  // != comparisons are canonical only with |step| == 1; cover both
  // directions, alone and under parallel for / tile / unroll.
  for (LoopSpec L :
       {LoopSpec{-5, 9, 1, RelOp::NE}, LoopSpec{9, -5, -1, RelOp::NE}}) {
    ProgramSpec Plain = baseSpec(L);
    expectProgramAgrees(Plain, Runner);

    ProgramSpec Par = baseSpec(L);
    Par.Pragmas.ParallelFor = true;
    Par.Pragmas.Schedule = "guided";
    expectProgramAgrees(Par, Runner);

    ProgramSpec Tiled = baseSpec(L);
    Tiled.Pragmas.TileSizes = {5};
    Tiled.Pragmas.UnrollFactor = 2;
    expectProgramAgrees(Tiled, Runner);
  }
}

TEST_F(DifferentialEdgeCase, OrphanedWorksharingLoopRestoresContext) {
  // Serial-dispatch regression guard (the PR 2 team-leak fix): an
  // orphaned worksharing loop outside any parallel region must drain and
  // restore the outside-parallel context under every schedule kind.
  for (const char *Sched : {"", "static", "static, 3", "dynamic, 2",
                            "guided"}) {
    ProgramSpec P = baseSpec({0, 23, 2, RelOp::LT});
    P.Pragmas.OrphanFor = true;
    P.Pragmas.Schedule = Sched;
    expectProgramAgrees(P, Runner);
  }
}

TEST_F(DifferentialEdgeCase, ZeroTripLoopsUnderEveryTransformation) {
  LoopSpec Z{8, 8, 1, RelOp::LT};
  ProgramSpec Plain = baseSpec(Z);
  ASSERT_EQ(Plain.totalIterations(), 0);
  expectProgramAgrees(Plain, Runner);

  ProgramSpec Tiled = baseSpec(Z);
  Tiled.Pragmas.TileSizes = {3};
  expectProgramAgrees(Tiled, Runner);

  ProgramSpec Par = baseSpec(Z);
  Par.Pragmas.ParallelFor = true;
  expectProgramAgrees(Par, Runner);
}

// ===------------------- Fuse / distribute edge cases ------------------=== //

/// A canonical-simple sibling member; \p Coef varies the checksum terms so
/// member interleavings are order-observable.
SiblingSpec fuzzSibling(std::int64_t Trip, std::int64_t Coef) {
  SiblingSpec S;
  S.Loop = {0, Trip, 1, RelOp::LT};
  BodyOp Sum;
  Sum.K = BodyOp::Kind::SumLinear;
  Sum.C[0] = Coef;
  Sum.Bias = 1;
  BodyOp Arr;
  Arr.K = BodyOp::Kind::ArrayUpdate;
  Arr.C[0] = Coef;
  Arr.Bias = 2;
  S.Body = {Sum, Arr};
  return S;
}

ProgramSpec fuseSpec(std::vector<SiblingSpec> Sibs) {
  ProgramSpec P;
  P.Seed = 0; // hand-written; not reachable from a seed
  P.Siblings = std::move(Sibs);
  P.Pragmas.Fuse = true;
  return P;
}

class DifferentialFuseDistribute : public ::testing::Test {
protected:
  DifferentialRunner Runner;
};

TEST_F(DifferentialFuseDistribute, FuseUnequalTripCounts) {
  // The shorter member must stop exactly at its own trip count inside
  // the fused loop.
  expectProgramAgrees(fuseSpec({fuzzSibling(7, 3), fuzzSibling(13, -2)}),
                      Runner);
}

TEST_F(DifferentialFuseDistribute, FuseZeroTripMember) {
  expectProgramAgrees(fuseSpec({fuzzSibling(5, 2), fuzzSibling(0, 9)}),
                      Runner);
  expectProgramAgrees(fuseSpec({fuzzSibling(0, 2), fuzzSibling(6, 5)}),
                      Runner);
}

TEST_F(DifferentialFuseDistribute, FuseLooprangeSelectsSubsequence) {
  // looprange(2, 2) fuses members 2..3; member 1 stays an ordinary
  // sibling ahead of the fused loop.
  ProgramSpec P = fuseSpec(
      {fuzzSibling(4, 1), fuzzSibling(9, 2), fuzzSibling(6, -3)});
  P.Pragmas.FuseFirst = 2;
  P.Pragmas.FuseCount = 2;
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialFuseDistribute, WorkshareFusedLoopThreadSweep) {
  // parallel for over the fused loop: the runner sweeps 1..2xHW threads
  // automatically; the reduction and the injective array writes must
  // agree at every width.
  ProgramSpec P = fuseSpec({fuzzSibling(24, 3), fuzzSibling(17, -1)});
  P.Pragmas.ParallelFor = true;
  P.Pragmas.Schedule = "dynamic, 2";
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialFuseDistribute, FuseCarriedDependenceRefusedAndReverified) {
  // An ArrayCarried op in the second member defeats inter-member
  // legality: every backend must refuse conservatively and the runner
  // re-verifies the unfused program against the same reference.
  SiblingSpec Carried = fuzzSibling(10, 4);
  BodyOp Dep;
  Dep.K = BodyOp::Kind::ArrayCarried;
  Dep.C[0] = 1;
  Dep.Bias = 1;
  Dep.Dist = 1;
  Carried.Body.push_back(Dep);
  ProgramSpec P = fuseSpec({fuzzSibling(10, 2), Carried});
  ProgramResult R = Runner.runWithVariants(P);
  EXPECT_TRUE(R.ok()) << DifferentialRunner::report(R);
  EXPECT_GE(R.ConservativeRejections, 1u);
}

TEST_F(DifferentialFuseDistribute, DistributeLoopSplitsStatementGroups) {
  ProgramSpec P;
  P.Seed = 0;
  P.Loops.push_back({0, 16, 1, RelOp::LT});
  P.DirectIndex = true;
  BodyOp Sum;
  Sum.K = BodyOp::Kind::SumLinear;
  Sum.C[0] = 5;
  Sum.Bias = 3;
  BodyOp Arr;
  Arr.K = BodyOp::Kind::ArrayUpdate;
  Arr.C[0] = 2;
  Arr.Bias = 1;
  P.Body = {Sum, Arr};
  P.Pragmas.DistributeLoop = true;
  expectProgramAgrees(P, Runner);
}

TEST_F(DifferentialFuseDistribute, DistributeBackwardDependenceRefused) {
  // Group 2 writes a[i+2], which group 1 touches two iterations later: a
  // backward inter-group dependence the gate must refuse; the runner then
  // re-verifies the undistributed loop.
  ProgramSpec P;
  P.Seed = 0;
  P.Loops.push_back({0, 12, 1, RelOp::LT});
  P.DirectIndex = true;
  BodyOp Arr;
  Arr.K = BodyOp::Kind::ArrayUpdate;
  Arr.C[0] = 1;
  Arr.Bias = 2;
  BodyOp Dep;
  Dep.K = BodyOp::Kind::ArrayCarried;
  Dep.C[0] = 3;
  Dep.Dist = 2;
  P.Body = {Arr, Dep};
  P.Pragmas.DistributeLoop = true;
  ProgramResult R = Runner.runWithVariants(P);
  EXPECT_TRUE(R.ok()) << DifferentialRunner::report(R);
  EXPECT_GE(R.ConservativeRejections, 1u);
}

TEST(DifferentialCorpus, TargetedFuseDistributeModesAgree) {
  // A reduced corpus of the targeted generator modes: every sibling-fuse
  // and distribute_loop program must agree across the full backend
  // matrix, with conservative rejections re-verified untransformed.
  DifferentialRunner Runner;
  unsigned Rejections = 0;
  const unsigned Count = std::min(corpusCount(), 30u);
  for (GenMode Mode : {GenMode::Fuse, GenMode::Distribute})
    for (unsigned K = 0; K < Count; ++K) {
      ProgramSpec Spec = generateProgram(CorpusSeed + K, Mode);
      ProgramResult R = Runner.runWithVariants(Spec);
      Rejections += R.ConservativeRejections;
      ASSERT_TRUE(R.ok()) << DifferentialRunner::report(R);
    }
  RecordProperty("rejections", static_cast<int>(Rejections));
  interp::ExecutionEngine::resetOpenMPRuntime();
}

// ===--------------------- Execution-engine parity ---------------------=== //

TEST(DifferentialEngineParity, CorpusVerdictsIdenticalUnderBothEngines) {
  // Pin the corpus on each engine separately and require byte-identical
  // verdict reports: the bytecode engine must be observationally
  // indistinguishable from the reference walker on every program, not
  // merely "also correct".
  DifferentialOptions WalkerOnly;
  WalkerOnly.Engines = {interp::ExecEngineKind::Walker};
  DifferentialOptions BytecodeOnly;
  BytecodeOnly.Engines = {interp::ExecEngineKind::Bytecode};
  DifferentialRunner Walker(WalkerOnly);
  DifferentialRunner Bytecode(BytecodeOnly);

  const unsigned Count = std::min(corpusCount(), 40u);
  for (unsigned K = 0; K < Count; ++K) {
    ProgramSpec Spec = generateProgram(CorpusSeed + K);
    ProgramResult W = Walker.runWithVariants(Spec);
    ProgramResult BC = Bytecode.runWithVariants(Spec);
    ASSERT_TRUE(W.ok()) << DifferentialRunner::report(W);
    ASSERT_TRUE(BC.ok()) << DifferentialRunner::report(BC);
    EXPECT_EQ(W.Expected, BC.Expected) << "seed " << Spec.Seed;
    EXPECT_EQ(W.RunsExecuted, BC.RunsExecuted) << "seed " << Spec.Seed;
    EXPECT_EQ(DifferentialRunner::report(W),
              DifferentialRunner::report(BC))
        << "seed " << Spec.Seed;
  }
  interp::ExecutionEngine::resetOpenMPRuntime();
}

TEST(DifferentialEngineParity, CorpusVerdictsIdenticalUnderNativeTiers) {
  // Same pinning, one tier up: the template-JIT engines (native and
  // tiered-with-OSR) against the bytecode engine they lower. On hosts
  // without JIT support both degrade to bytecode, so the comparison
  // stays meaningful everywhere. A tiny OSR threshold makes promotion
  // actually fire inside the corpus loops.
  ScopedDiffEnv OSRT("MCC_JIT_OSR_THRESHOLD", "64");
  ScopedDiffEnv CallT("MCC_JIT_CALL_THRESHOLD", "2");
  DifferentialOptions BytecodeOnly;
  BytecodeOnly.Engines = {interp::ExecEngineKind::Bytecode};
  DifferentialOptions NativeOnly;
  NativeOnly.Engines = {interp::ExecEngineKind::Native};
  DifferentialOptions TieredOnly;
  TieredOnly.Engines = {interp::ExecEngineKind::Tiered};
  DifferentialRunner Bytecode(BytecodeOnly);
  DifferentialRunner Native(NativeOnly);
  DifferentialRunner Tiered(TieredOnly);

  const unsigned Count = std::min(corpusCount(), 25u);
  for (unsigned K = 0; K < Count; ++K) {
    ProgramSpec Spec = generateProgram(CorpusSeed + K);
    ProgramResult BC = Bytecode.runWithVariants(Spec);
    ProgramResult NT = Native.runWithVariants(Spec);
    ProgramResult TR = Tiered.runWithVariants(Spec);
    ASSERT_TRUE(BC.ok()) << DifferentialRunner::report(BC);
    ASSERT_TRUE(NT.ok()) << DifferentialRunner::report(NT);
    ASSERT_TRUE(TR.ok()) << DifferentialRunner::report(TR);
    EXPECT_EQ(BC.Expected, NT.Expected) << "seed " << Spec.Seed;
    EXPECT_EQ(BC.Expected, TR.Expected) << "seed " << Spec.Seed;
    EXPECT_EQ(BC.RunsExecuted, NT.RunsExecuted) << "seed " << Spec.Seed;
    EXPECT_EQ(BC.RunsExecuted, TR.RunsExecuted) << "seed " << Spec.Seed;
  }
  interp::ExecutionEngine::resetOpenMPRuntime();
}

TEST(DifferentialEngineParity, BytecodePinnedEdgeCorners) {
  // The hand-written canonical-loop corners, pinned on the bytecode
  // engine alone — a translator bug must not be able to hide behind a
  // passing walker sweep in the same run.
  DifferentialOptions Opts;
  Opts.Engines = {interp::ExecEngineKind::Bytecode};
  DifferentialRunner Runner(Opts);
  for (LoopSpec L : {LoopSpec{40, -3, -7, RelOp::GT},
                     LoopSpec{-5, 9, 1, RelOp::NE},
                     LoopSpec{8, 8, 1, RelOp::LT}}) {
    ProgramSpec P;
    P.Seed = 0;
    P.Loops.push_back(L);
    BodyOp Sum;
    Sum.K = BodyOp::Kind::SumQuadratic;
    Sum.C[0] = 2;
    Sum.C[1] = -1;
    Sum.Bias = 3;
    P.Body = {Sum};
    expectProgramAgrees(P, Runner);

    ProgramSpec Tiled = P;
    Tiled.Pragmas.TileSizes = {4};
    expectProgramAgrees(Tiled, Runner);

    ProgramSpec Par = P;
    Par.Pragmas.ParallelFor = true;
    Par.Pragmas.Schedule = "dynamic, 2";
    expectProgramAgrees(Par, Runner);
  }
  interp::ExecutionEngine::resetOpenMPRuntime();
}

TEST(DifferentialEngineParity, FuseDistributeVerdictsIdenticalOnEveryTier) {
  // The fuse/distribute program modes pinned per engine: identical
  // checksum, run count and conservative-rejection count on every tier —
  // a tier whose legality gate or fused CFG diverges cannot hide behind
  // the aggregate sweep.
  DifferentialOptions W, BC, NT, TR;
  W.Engines = {interp::ExecEngineKind::Walker};
  BC.Engines = {interp::ExecEngineKind::Bytecode};
  NT.Engines = {interp::ExecEngineKind::Native};
  TR.Engines = {interp::ExecEngineKind::Tiered};
  DifferentialRunner Runners[] = {
      DifferentialRunner(W), DifferentialRunner(BC), DifferentialRunner(NT),
      DifferentialRunner(TR)};

  const unsigned Count = std::min(corpusCount(), 12u);
  for (GenMode Mode : {GenMode::Fuse, GenMode::Distribute}) {
    for (unsigned K = 0; K < Count; ++K) {
      ProgramSpec Spec = generateProgram(CorpusSeed + K, Mode);
      ProgramResult Ref = Runners[0].runWithVariants(Spec);
      ASSERT_TRUE(Ref.ok()) << DifferentialRunner::report(Ref);
      for (int E = 1; E < 4; ++E) {
        ProgramResult R = Runners[E].runWithVariants(Spec);
        ASSERT_TRUE(R.ok()) << DifferentialRunner::report(R);
        EXPECT_EQ(Ref.Expected, R.Expected) << "seed " << Spec.Seed;
        EXPECT_EQ(Ref.RunsExecuted, R.RunsExecuted) << "seed " << Spec.Seed;
        EXPECT_EQ(Ref.ConservativeRejections, R.ConservativeRejections)
            << "seed " << Spec.Seed;
      }
    }
  }
  interp::ExecutionEngine::resetOpenMPRuntime();
}

// ===------------------ Compile-service cache parity -------------------=== //

TEST(DifferentialServiceParity, CorpusVerdictsIdenticalWithCacheOnAndOff) {
  // Routing the whole corpus through the CompileService must be
  // observationally invisible: same per-program verdict, same run count,
  // same rendered report, byte for byte. This is the end-to-end guard
  // that content-addressed caching (including replayed token streams and
  // const-shared ASTs/modules) never changes semantics.
  DifferentialOptions Cached;
  Cached.UseService = true;
  DifferentialRunner CachedRunner(Cached);
  DifferentialRunner PlainRunner;

  const unsigned Count = std::min(corpusCount(), 40u);
  for (unsigned K = 0; K < Count; ++K) {
    ProgramSpec Spec = generateProgram(CorpusSeed + K);
    ProgramResult Plain = PlainRunner.runWithVariants(Spec);
    ProgramResult Via = CachedRunner.runWithVariants(Spec);
    ASSERT_EQ(Plain.ok(), Via.ok())
        << DifferentialRunner::report(Plain.ok() ? Via : Plain);
    EXPECT_EQ(Plain.Expected, Via.Expected);
    EXPECT_EQ(Plain.RunsExecuted, Via.RunsExecuted);
    EXPECT_EQ(DifferentialRunner::report(Plain),
              DifferentialRunner::report(Via))
        << "seed " << Spec.Seed;
  }
  interp::ExecutionEngine::resetOpenMPRuntime();
}

// ===----------------------- Oracle self-checks -----------------------=== //

TEST(DifferentialOracle, GenerationIsDeterministic) {
  for (std::uint64_t Seed : {std::uint64_t(1), std::uint64_t(42),
                             CorpusSeed}) {
    ProgramSpec A = generateProgram(Seed);
    ProgramSpec B = generateProgram(Seed);
    EXPECT_EQ(A.render(), B.render()) << "seed " << Seed;
    EXPECT_EQ(A.reference(), B.reference()) << "seed " << Seed;
  }
}

TEST(DifferentialOracle, ShrinkKeepsOracleConsistency) {
  // shrink() of a passing program is the identity (nothing to minimize).
  DifferentialRunner Runner;
  ProgramSpec P = generateProgram(CorpusSeed);
  ProgramSpec S = Runner.shrink(P);
  EXPECT_EQ(S.render(), P.render());
}

TEST(DifferentialOracle, TargetedGenModesProduceTheirShapes) {
  for (unsigned K = 0; K < 25; ++K) {
    ProgramSpec F = generateProgram(CorpusSeed + K, GenMode::Fuse);
    EXPECT_TRUE(F.Pragmas.Fuse) << "seed " << F.Seed;
    EXPECT_GE(F.Siblings.size(), 2u) << "seed " << F.Seed;
    ProgramSpec D = generateProgram(CorpusSeed + K, GenMode::Distribute);
    EXPECT_TRUE(D.Pragmas.DistributeLoop) << "seed " << D.Seed;
    EXPECT_TRUE(D.Siblings.empty()) << "seed " << D.Seed;
    // Determinism extends to the targeted modes.
    EXPECT_EQ(F.render(),
              generateProgram(CorpusSeed + K, GenMode::Fuse).render());
    EXPECT_EQ(D.render(),
              generateProgram(CorpusSeed + K, GenMode::Distribute).render());
  }
}

TEST(DifferentialOracle, StrippingFuseDropsTheRidingWorkshare) {
  // The rejection re-verification program cannot keep `parallel for`
  // above an unfused sibling sequence: a worksharing directive must
  // associate with exactly one loop.
  ProgramSpec P = fuseSpec({fuzzSibling(8, 3), fuzzSibling(11, -1)});
  P.Pragmas.ParallelFor = true;
  ProgramSpec S = P.withoutLoopTransforms();
  EXPECT_FALSE(S.Pragmas.Fuse);
  EXPECT_FALSE(S.Pragmas.ParallelFor);
  EXPECT_EQ(S.render().find("#pragma"), std::string::npos) << S.render();
  // Same siblings, same statements: the reference oracle is unchanged.
  EXPECT_EQ(S.reference(), P.reference());
}

TEST(DifferentialOracle, FactorVariantsPreserveStructure) {
  ProgramSpec P = generateProgram(CorpusSeed);
  P.Pragmas.TileSizes = {4};
  P.Pragmas.UnrollFactor = 3;
  DifferentialRunner Runner;
  auto Variants = Runner.factorVariants(P);
  ASSERT_FALSE(Variants.empty());
  for (const ProgramSpec &V : Variants) {
    EXPECT_EQ(V.Loops.size(), P.Loops.size());
    EXPECT_FALSE(V.Variant.empty());
    // Same iteration space, same reference oracle inputs — only the
    // transformation factors differ, so the reference must be unchanged.
    EXPECT_EQ(V.reference(), P.reference());
  }
}

} // namespace
