//===--- ast_test.cpp - AST infrastructure unit tests ---------------------===//
//
// Covers the pieces of AST machinery the paper's design leans on:
// children() semantics (incl. shadow AST hiding), the visitor hierarchy
// fallbacks, TreeTransform cloning with declaration substitution, constant
// evaluation, and the type system.
//
//===----------------------------------------------------------------------===//
#include "FrontendTestHelper.h"

#include "ast/StmtVisitor.h"

#include <gtest/gtest.h>

using namespace mcc;
using namespace mcc::test;

namespace {

TEST(TypeTest, BuiltinProperties) {
  ASTContext Ctx;
  EXPECT_TRUE(Ctx.getIntType()->isSignedIntegerType());
  EXPECT_TRUE(Ctx.getUIntType()->isUnsignedIntegerType());
  EXPECT_TRUE(Ctx.getBoolType()->isUnsignedIntegerType());
  EXPECT_TRUE(Ctx.getDoubleType()->isFloatingType());
  EXPECT_TRUE(Ctx.getVoidType()->isVoidType());
  EXPECT_EQ(Ctx.getIntType()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getULongType()->getSizeInBytes(), 8u);
}

TEST(TypeTest, DerivedTypesUniqued) {
  ASTContext Ctx;
  QualType P1 = Ctx.getPointerType(Ctx.getIntType());
  QualType P2 = Ctx.getPointerType(Ctx.getIntType());
  EXPECT_EQ(P1.getTypePtr(), P2.getTypePtr());
  QualType A1 = Ctx.getArrayType(Ctx.getIntType(), 8);
  QualType A2 = Ctx.getArrayType(Ctx.getIntType(), 8);
  QualType A3 = Ctx.getArrayType(Ctx.getIntType(), 9);
  EXPECT_EQ(A1.getTypePtr(), A2.getTypePtr());
  EXPECT_NE(A1.getTypePtr(), A3.getTypePtr());
  QualType F1 = Ctx.getFunctionType(Ctx.getVoidType(), {Ctx.getIntType()});
  QualType F2 = Ctx.getFunctionType(Ctx.getVoidType(), {Ctx.getIntType()});
  EXPECT_EQ(F1.getTypePtr(), F2.getTypePtr());
}

TEST(TypeTest, QualTypeConstness) {
  ASTContext Ctx;
  QualType CT = Ctx.getIntType().withConst();
  EXPECT_TRUE(CT.isConstQualified());
  EXPECT_FALSE(CT.withoutConst().isConstQualified());
  EXPECT_TRUE(CT.hasSameTypeAs(Ctx.getIntType()));
  EXPECT_NE(CT, Ctx.getIntType());
  EXPECT_EQ(CT.getAsString(), "const int");
}

TEST(TypeTest, CorrespondingUnsignedType) {
  ASTContext Ctx;
  EXPECT_EQ(Ctx.getCorrespondingUnsignedType(Ctx.getIntType()),
            Ctx.getUIntType());
  EXPECT_EQ(Ctx.getCorrespondingUnsignedType(Ctx.getLongType()),
            Ctx.getULongType());
  EXPECT_EQ(Ctx.getCorrespondingUnsignedType(Ctx.getULongType()),
            Ctx.getULongType());
}

TEST(ChildrenTest, ForStmtChildren) {
  Frontend F("void f(int n) { for (int i = 0; i < n; ++i) ; }");
  auto *For = F.findStmt<ForStmt>("f");
  std::vector<Stmt *> C = For->children();
  ASSERT_EQ(C.size(), 4u); // init, cond, inc, body
  EXPECT_NE(stmt_dyn_cast<DeclStmt>(C[0]), nullptr);
}

TEST(ChildrenTest, DirectiveChildrenExcludeClausesAndShadow) {
  Frontend F(R"(
    void f(int n) {
      #pragma omp for schedule(static) collapse(1)
      for (int i = 0; i < n; ++i) ;
    }
  )");
  auto *Dir = F.findStmt<OMPForDirective>("f");
  ASSERT_NE(Dir, nullptr);
  // Exactly one child (the associated statement); the two clauses and the
  // ~26 shadow helpers are reachable only via dedicated accessors
  // (Section 1.2 footnote).
  EXPECT_EQ(Dir->children().size(), 1u);
  EXPECT_EQ(Dir->getNumClauses(), 2u);
  EXPECT_GE(Dir->getLoopHelpers().countShadowNodes(), 20u);
}

TEST(VisitorTest, StmtVisitorDispatchAndFallback) {
  Frontend F("void f() { for (int i = 0; i < 3; ++i) { i; } }");

  struct Counter : StmtVisitor<Counter, int> {
    int visitForStmt(ForStmt *) { return 1; }
    int visitExpr(Expr *) { return 2; }       // fallback for all exprs
    int visitStmt(Stmt *) { return 3; }       // generic fallback
  } V;

  EXPECT_EQ(V.visit(F.findStmt<ForStmt>("f")), 1);
  EXPECT_EQ(V.visit(F.findStmt<IntegerLiteral>("f")), 2);
  EXPECT_EQ(V.visit(F.findStmt<CompoundStmt>("f")), 3);
}

TEST(VisitorTest, DirectiveHierarchyFallback) {
  Frontend F(R"(
    void f(int n) {
      #pragma omp parallel for
      for (int i = 0; i < n; ++i) ;
    }
  )");
  struct V : StmtVisitor<V, const char *> {
    const char *visitOMPLoopDirective(OMPLoopDirective *) {
      return "loop-directive";
    }
    const char *visitStmt(Stmt *) { return "stmt"; }
  } Visitor;
  // OMPParallelForDirective has no dedicated handler; it must fall back to
  // the OMPLoopDirective level, not all the way to Stmt.
  EXPECT_STREQ(Visitor.visit(F.findStmt<OMPParallelForDirective>("f")),
               "loop-directive");
}

TEST(RecursiveVisitorTest, ShadowASTOptIn) {
  Frontend F(R"(
    void f() {
      #pragma omp unroll partial(2)
      for (int i = 0; i < 8; ++i) ;
    }
  )");
  FunctionDecl *FD = F.getFunction("f");
  // Without opt-in, the synthesized strip-mine IV is invisible.
  EXPECT_EQ(countStmts<AttributedStmt>(FD->getBody(), false), 0u);
  EXPECT_GE(countStmts<AttributedStmt>(FD->getBody(), true), 1u);
}

TEST(TreeTransformTest, CloneIsDeepAndIndependent) {
  Frontend F("void f() { for (int i = 0; i < 4; ++i) { int x = i; } }");
  auto *For = F.findStmt<ForStmt>("f");
  TreeTransform TT(F.Ctx);
  auto *Clone = stmt_cast<ForStmt>(TT.transformStmt(For));
  ASSERT_NE(Clone, nullptr);
  EXPECT_NE(Clone, For);
  EXPECT_NE(Clone->getBody(), For->getBody());

  // Variables declared inside are re-declared, not shared.
  auto *OrigInit = stmt_cast<DeclStmt>(For->getInit());
  auto *CloneInit = stmt_cast<DeclStmt>(Clone->getInit());
  EXPECT_NE(OrigInit->getSingleDecl(), CloneInit->getSingleDecl());
  EXPECT_EQ(OrigInit->getSingleDecl()->getName(),
            CloneInit->getSingleDecl()->getName());

  // References inside the clone bind to the cloned declaration.
  struct RefCheck : RecursiveASTVisitor<RefCheck> {
    const VarDecl *Orig;
    bool SawOrigRef = false;
    bool visitStmt(Stmt *S) {
      if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
        if (DRE->getDecl() == Orig)
          SawOrigRef = true;
      return true;
    }
  } Check;
  Check.Orig = OrigInit->getSingleDecl();
  Check.traverseStmt(Clone);
  EXPECT_FALSE(Check.SawOrigRef);
}

TEST(TreeTransformTest, ExplicitSubstitution) {
  Frontend F("void f(int a, int b) { a + a + b; }");
  FunctionDecl *FD = F.getFunction("f");
  ParmVarDecl *A = FD->parameters()[0];
  ParmVarDecl *B = FD->parameters()[1];

  TreeTransform TT(F.Ctx);
  TT.addDeclSubstitution(A, B); // rewrite a -> b
  Stmt *Clone = TT.transformStmt(FD->getBody());

  struct Count : RecursiveASTVisitor<Count> {
    const ValueDecl *Target;
    unsigned N = 0;
    bool visitStmt(Stmt *S) {
      if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
        if (DRE->getDecl() == Target)
          ++N;
      return true;
    }
  } CountB;
  CountB.Target = B;
  CountB.traverseStmt(Clone);
  EXPECT_EQ(CountB.N, 3u); // both a's now reference b, plus the original b
}

TEST(ConstantEvalTest, Basics) {
  Frontend F("const int K = 6;\n"
             "int a = 2 + 3 * 4;\n"
             "int b = (1 << 4) | 1;\n"
             "int c = 10 / 3;\n"
             "int d = 1 < 2 ? 7 : 8;\n"
             "int e = K * 2;\n");
  auto Val = [&](unsigned I) {
    return evaluateIntegerWithConstVars(
        decl_cast<VarDecl>(F.TU->decls()[I])->getInit());
  };
  EXPECT_EQ(*Val(1), 14);
  EXPECT_EQ(*Val(2), 17);
  EXPECT_EQ(*Val(3), 3);
  EXPECT_EQ(*Val(4), 7);
  EXPECT_EQ(*Val(5), 12);
}

TEST(ConstantEvalTest, NonConstantsRejected) {
  Frontend F("int g = 1;\nint x = g + 1;\n");
  auto *X = decl_cast<VarDecl>(F.TU->decls()[1]);
  EXPECT_FALSE(evaluateInteger(X->getInit()).has_value());
  // Non-const globals are not readable even with const-var reading.
  EXPECT_FALSE(evaluateIntegerWithConstVars(X->getInit()).has_value());
}

TEST(ConstantEvalTest, DivisionByZeroIsNotConstant) {
  Frontend F("void f() { int x = 5; x = x; }"); // host AST for building
  Expr *DivByZero = F.Actions->buildBinOp(
      BinaryOperatorKind::Div, F.Actions->buildIntLiteral(1, F.Ctx.getIntType()),
      F.Actions->buildIntLiteral(0, F.Ctx.getIntType()));
  EXPECT_FALSE(evaluateInteger(DivByZero).has_value());
}

TEST(ConstantEvalTest, ShortCircuit) {
  Frontend F("int g = 1;\nbool a = false && g;\nbool b = true || g;\n");
  EXPECT_EQ(*evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[1])->getInit()),
            0);
  EXPECT_EQ(*evaluateInteger(decl_cast<VarDecl>(F.TU->decls()[2])->getInit()),
            1);
}

TEST(ConstantEvalTest, WidthTruncation) {
  // Value wrapped through an int-typed cast.
  Frontend F("int x = 0;\n");
  Sema &S = *F.Actions;
  Expr *Big = S.buildIntLiteral(0x1FFFFFFFFull, F.Ctx.getLongType());
  Expr *Trunc = S.convertTo(Big, F.Ctx.getIntType(), SourceLocation());
  auto V = evaluateInteger(Trunc);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, static_cast<std::int32_t>(0xFFFFFFFF));
}

TEST(ArenaStatsTest, ContextTracksAllocation) {
  Frontend F("int main() { return 1 + 2 * 3; }");
  EXPECT_GT(F.Ctx.getNumNodes(), 5u);
  EXPECT_GT(F.Ctx.getTotalAllocatedBytes(), 100u);
}

} // namespace
