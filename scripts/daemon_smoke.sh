#!/usr/bin/env bash
# Daemon warm-restart smoke: drives the pinned differential corpus through
# a real `minicc-serve --serve` process twice — cold, then warm from the
# on-disk artifact store after a full daemon restart — and requires the
# two verdict streams to be byte-identical modulo the cache-trace token.
#
#   daemon_smoke.sh <minicc-serve> <minicc-fuzz> <count>
#
# Two legs per daemon lifetime: parse jobs first (these populate, then
# load, the disk store), then -run jobs (these execute; on the warm pass
# they promote disk-loaded stub artifacts to live modules). The legs are
# sequential client invocations so single-flight races between jobs that
# share an L3 key cannot make the trace stream nondeterministic.
set -eu
BIN=$1; FUZZ=$2; COUNT=$3
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$FUZZ" --seed=2021 --count="$COUNT" --quiet --dump-source > "$SMOKE/corpus.txt"
awk -v dir="$SMOKE" '/^\/\/ seed=/{n++} n{print > (dir "/prog" n ".c")}' "$SMOKE/corpus.txt"
: > "$SMOKE/jobs-parse.txt"; : > "$SMOKE/jobs-run.txt"
for f in "$SMOKE"/prog*.c; do
  echo "$f" >> "$SMOKE/jobs-parse.txt"
  echo "-run $f" >> "$SMOKE/jobs-run.txt"
done
# The client exits 1 when corpus jobs FAIL (conservative fuse/distribute
# rejections are part of the corpus), so correctness is asserted on the
# verdict stream, not on exit codes.
run_pass() {  # $1 = pass name
  "$BIN" --serve --socket="$SMOKE/d.sock" --jobs=2 \
         --disk-store="$SMOKE/store" --disk-mb=64 &
  DPID=$!
  for i in $(seq 100); do [ -S "$SMOKE/d.sock" ] && break; sleep 0.1; done
  "$BIN" --client --socket="$SMOKE/d.sock" "$SMOKE/jobs-parse.txt" \
    > "$SMOKE/$1-parse.txt" || true
  "$BIN" --client --socket="$SMOKE/d.sock" "$SMOKE/jobs-run.txt" \
    > "$SMOKE/$1-run.txt" || true
  "$BIN" --client --socket="$SMOKE/d.sock" --shutdown
  wait "$DPID"
  for LEG in parse run; do
    VERDICTS=$(grep -c '^\[' "$SMOKE/$1-$LEG.txt" || true)
    [ "$VERDICTS" -eq "$COUNT" ] || {
      echo "$1/$LEG: expected $COUNT verdicts, got $VERDICTS" >&2; exit 1; }
    if grep -Eq '^\[[0-9]+\] (CANCELLED|ERROR|REJECTED)' "$SMOKE/$1-$LEG.txt"
    then echo "$1/$LEG: dropped or errored jobs" >&2; exit 1; fi
  done
}
run_pass cold
run_pass warm
HITS=$(grep -c 'disk hit' "$SMOKE/warm-parse.txt" || true)
[ "$HITS" -eq "$COUNT" ] || {
  echo "expected $COUNT disk hits after restart, got $HITS" >&2; exit 1; }
for f in cold-parse warm-parse cold-run warm-run; do
  sed -E 's/\((cold|L[123] hit|disk hit)\)/(x)/' "$SMOKE/$f.txt" \
    > "$SMOKE/$f.norm"
done
diff -u "$SMOKE/cold-parse.norm" "$SMOKE/warm-parse.norm"
diff -u "$SMOKE/cold-run.norm" "$SMOKE/warm-run.norm"
echo "daemon smoke OK: $COUNT jobs, warm-restart verdicts byte-identical"
