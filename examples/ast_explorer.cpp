//===--- ast_explorer.cpp - Interactive pipeline inspector -------------------===//
//
// Compiles a file (or a built-in demo) and shows every stage of the
// paper's Fig. 1 pipeline: preprocessed tokens, the AST (optionally with
// shadow subtrees), the IR of both OpenMP pipelines, and the IR after the
// mid-end.
//
//   $ ./ast_explorer [file.c]
//
//===----------------------------------------------------------------------===//
#include "driver/CompilerInstance.h"
#include "lex/Preprocessor.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mcc;

namespace {

const char *DemoSource = R"(
#define FACTOR 2

int data[64];

int main() {
  #pragma omp parallel for schedule(static)
  #pragma omp unroll partial(FACTOR)
  for (int i = 0; i < 64; i += 1)
    data[i] = i * i;
  return data[63];
}
)";

void printTokens(const std::string &Source) {
  FileManager FM;
  SourceManager SM;
  StoringDiagnosticConsumer Consumer;
  DiagnosticsEngine Diags(&Consumer);
  FM.addVirtualFile("input.c", Source);
  Preprocessor PP(FM, SM, Diags);
  PP.enterMainFile("input.c");
  Token Tok;
  unsigned Count = 0;
  std::printf("  ");
  while (true) {
    PP.lex(Tok);
    if (Tok.is(tok::eof))
      break;
    if (Tok.is(tok::annot_pragma_openmp))
      std::printf("[OMP[ ");
    else if (Tok.is(tok::annot_pragma_openmp_end))
      std::printf("]OMP] ");
    else
      std::printf("%.*s ", static_cast<int>(Tok.getText().size()),
                  Tok.getText().data());
    if (++Count % 16 == 0)
      std::printf("\n  ");
  }
  std::printf("\n  (%u tokens)\n", Count);
}

} // namespace

int main(int argc, char **argv) {
  std::string Source = DemoSource;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  std::printf("================ 1. Preprocessed token stream ===========\n");
  printTokens(Source);

  std::printf("\n================ 2. AST (legacy pipeline) ===============\n");
  {
    CompilerInstance CI;
    CI.addVirtualFile("input.c", Source);
    if (!CI.parseToAST("input.c")) {
      std::fputs(CI.renderDiagnostics().c_str(), stderr);
      return 1;
    }
    std::printf("%s", dumpToString(CI.getTranslationUnit()).c_str());

    std::printf("\n================ 3. ... with shadow AST =============\n");
    std::printf("%s", dumpToString(CI.getTranslationUnit(), true).c_str());

    if (CI.emitIR())
      std::printf("\n================ 4. IR (legacy pipeline) ============\n"
                  "%s",
                  CI.getIRText().c_str());
  }

  std::printf("\n================ 5. AST (IRBuilder pipeline) ============\n");
  {
    CompilerOptions Options;
    Options.LangOpts.OpenMPEnableIRBuilder = true;
    Options.RunMidend = true;
    CompilerInstance CI(Options);
    CI.addVirtualFile("input.c", Source);
    if (!CI.parseToAST("input.c")) {
      std::fputs(CI.renderDiagnostics().c_str(), stderr);
      return 1;
    }
    std::printf("%s", dumpToString(CI.getTranslationUnit()).c_str());
    if (CI.emitIR()) {
      std::printf("\n============ 6. IR (IRBuilder pipeline, after "
                  "mid-end) =====\n%s",
                  CI.getIRText().c_str());
      const midend::PipelineStats &MS = CI.getMidendStats();
      std::printf("\nmid-end: %u loops unrolled (%u with remainder), %u "
                  "blocks simplified, %u instructions DCEd\n",
                  MS.Unroll.LoopsUnrolled, MS.Unroll.LoopsWithRemainder,
                  MS.BlocksSimplified, MS.InstructionsDCEd);
    }
  }
  return 0;
}
