//===--- quickstart.cpp - Five-minute tour of the library -------------------===//
//
// Compiles a MiniC + OpenMP source with both of the paper's pipelines,
// prints the AST and the IR, runs the mid-end, and executes the result on
// real threads through the interpreter.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//
#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <cstdio>

using namespace mcc;

namespace {

const char *Program = R"(
int sum = 0;

int main() {
  #pragma omp parallel for reduction(+: sum)
  #pragma omp unroll partial(2)
  for (int i = 0; i < 100; i += 1)
    sum += i * i;
  return sum;
}
)";

void runPipeline(const char *Name, bool IRBuilderMode) {
  std::printf("==========================================================\n");
  std::printf("Pipeline: %s\n", Name);
  std::printf("==========================================================\n");

  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  Options.RunMidend = true;

  CompilerInstance CI(Options);
  if (!CI.compileSource(Program)) {
    std::fputs(CI.renderDiagnostics().c_str(), stderr);
    return;
  }

  // 1. The AST, exactly as `minicc -ast-dump` would print it.
  std::printf("--- AST (main) ---\n%s\n",
              dumpToString(CI.getTranslationUnit()).c_str());

  // 2. Mid-end statistics: the unroll deferral of the paper's Section 2.2
  //    resolves here.
  const midend::PipelineStats &MS = CI.getMidendStats();
  std::printf("--- mid-end: %u loops unrolled, %u blocks simplified, %u "
              "instructions DCEd ---\n\n",
              MS.Unroll.LoopsUnrolled, MS.BlocksSimplified,
              MS.InstructionsDCEd);

  // 3. Execute on a real thread team.
  rt::OpenMPRuntime::get().setDefaultNumThreads(4);
  interp::ExecutionEngine EE(*CI.getIRModule());
  interp::RTValue Result = EE.runFunction("main", {});
  long long Expected = 0;
  for (int I = 0; I < 100; ++I)
    Expected += static_cast<long long>(I) * I;
  std::printf("main() = %lld (expected %lld) — %s\n\n",
              static_cast<long long>(Result.I), Expected,
              Result.I == Expected ? "OK" : "MISMATCH");
}

} // namespace

int main() {
  std::printf("quickstart: '#pragma omp parallel for' over "
              "'#pragma omp unroll partial(2)'\n"
              "(the motivating composition of the paper's Section 1.1)\n\n");
  runPipeline("legacy shadow AST (Section 2)", false);
  runPipeline("OMPCanonicalLoop + OpenMPIRBuilder (Section 3)", true);
  return 0;
}
