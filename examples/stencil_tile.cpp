//===--- stencil_tile.cpp - Tiled 2D stencil (Jacobi sweep) -----------------===//
//
// The classic workload the tile construct targets: a 2D 5-point stencil.
// Demonstrates (1) '#pragma omp tile sizes(T, T)' on the sweep nest,
// (2) consuming the tiled loops with 'parallel for', and (3) verifying the
// numerical result against an untiled reference.
//
//   $ ./stencil_tile [grid-size] [iterations]
//
//===----------------------------------------------------------------------===//
#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace mcc;

namespace {

std::string makeStencilSource(int N, int Steps, bool Tiled, bool Parallel) {
  std::string Pragmas;
  if (Parallel)
    Pragmas += "  #pragma omp parallel for\n";
  if (Tiled)
    Pragmas += "  #pragma omp tile sizes(16, 16)\n";
  std::string S;
  S += "double grid[" + std::to_string(N * N) + "];\n";
  S += "double next[" + std::to_string(N * N) + "];\n";
  S += "int N = " + std::to_string(N) + ";\n";
  S += R"(
void sweep() {
)" + Pragmas + R"(
  for (int i = 1; i < N - 1; ++i)
    for (int j = 1; j < N - 1; ++j)
      next[i * N + j] = 0.25 * (grid[(i - 1) * N + j] +
                                grid[(i + 1) * N + j] +
                                grid[i * N + j - 1] +
                                grid[i * N + j + 1]);
}

void copyBack() {
  for (int i = 1; i < N - 1; ++i)
    for (int j = 1; j < N - 1; ++j)
      grid[i * N + j] = next[i * N + j];
}

void init() {
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j)
      grid[i * N + j] = 0.0;
  for (int j = 0; j < N; ++j)
    grid[j] = 100.0;   /* hot top edge */
}

int main() {
  init();
  for (int s = 0; s < )" + std::to_string(Steps) + R"(; ++s) {
    sweep();
    copyBack();
  }
  return 0;
}
)";
  return S;
}

struct RunResult {
  double Checksum = 0;
  double Millis = 0;
};

RunResult runVariant(int N, int Steps, bool Tiled, bool Parallel,
                     bool IRBuilderMode) {
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  CompilerInstance CI(Options);
  if (!CI.compileSource(makeStencilSource(N, Steps, Tiled, Parallel))) {
    std::fputs(CI.renderDiagnostics().c_str(), stderr);
    std::exit(1);
  }
  rt::OpenMPRuntime::get().setDefaultNumThreads(4);
  interp::ExecutionEngine EE(*CI.getIRModule());

  auto Start = std::chrono::steady_clock::now();
  EE.runFunction("main", {});
  auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  const auto *Grid = static_cast<const double *>(EE.getGlobalAddress("grid"));
  for (int I = 0; I < N * N; ++I)
    R.Checksum += Grid[I];
  return R;
}

} // namespace

int main(int argc, char **argv) {
  int N = argc > 1 ? std::atoi(argv[1]) : 64;
  int Steps = argc > 2 ? std::atoi(argv[2]) : 10;
  std::printf("2D Jacobi stencil, %dx%d grid, %d sweeps (interpreted)\n\n",
              N, N, Steps);
  std::printf("%-42s %12s %10s\n", "variant", "checksum", "time[ms]");

  RunResult Ref = runVariant(N, Steps, false, false, false);
  std::printf("%-42s %12.3f %10.2f\n", "serial reference", Ref.Checksum,
              Ref.Millis);

  struct Variant {
    const char *Name;
    bool Tiled, Parallel, IRB;
  };
  const Variant Variants[] = {
      {"tile sizes(16,16)             [legacy]", true, false, false},
      {"tile sizes(16,16)          [irbuilder]", true, false, true},
      {"parallel for                  [legacy]", false, true, false},
      {"parallel for + tile           [legacy]", true, true, false},
      {"parallel for + tile        [irbuilder]", true, true, true},
  };
  bool AllMatch = true;
  for (const Variant &V : Variants) {
    RunResult R = runVariant(N, Steps, V.Tiled, V.Parallel, V.IRB);
    bool Match = std::abs(R.Checksum - Ref.Checksum) < 1e-6 * (1 + std::abs(Ref.Checksum));
    AllMatch &= Match;
    std::printf("%-42s %12.3f %10.2f %s\n", V.Name, R.Checksum, R.Millis,
                Match ? "" : "  << MISMATCH");
  }
  std::printf("\n%s\n", AllMatch ? "All variants agree with the reference."
                                 : "MISMATCH DETECTED");
  return AllMatch ? 0 : 1;
}
