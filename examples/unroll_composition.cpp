//===--- unroll_composition.cpp - Section 1.1, end to end --------------------===//
//
// Reproduces the paper's motivating example: the separation of algorithm
// and optimization. One algorithm (a dot-product-style reduction), three
// optimization variants selected per "hardware target" via the
// preprocessor — exactly the metadirective/preprocessor pattern the paper
// describes — plus the demonstration that the directive version and the
// manually-unrolled version are semantically equivalent.
//
//   $ ./unroll_composition
//
//===----------------------------------------------------------------------===//
#include "ast/ASTDumper.h"
#include "ast/RecursiveASTVisitor.h"
#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <cstdio>

using namespace mcc;

namespace {

// One algorithm, optimization chosen by -DTARGET=n at "compile" time.
const char *PortableSource = R"(
long a[1024];
long b[1024];
long result = 0;

int main() {
  for (int k = 0; k < 1024; ++k) { a[k] = k % 7; b[k] = k % 5; }

#if TARGET == 1
  /* wide cores: unroll aggressively */
  #pragma omp parallel for reduction(+: result)
  #pragma omp unroll partial(8)
  for (int i = 0; i < 1024; i += 1)
    result += a[i] * b[i];
#elif TARGET == 2
  /* cache-sensitive: tile */
  #pragma omp parallel for reduction(+: result)
  #pragma omp tile sizes(64)
  for (int i = 0; i < 1024; i += 1)
    result += a[i] * b[i];
#else
  /* baseline */
  #pragma omp parallel for reduction(+: result)
  for (int i = 0; i < 1024; i += 1)
    result += a[i] * b[i];
#endif

  int out = result % 1000000;
  return out;
}
)";

// The directive form vs the manual unrolling of the paper's Section 1.1.
const char *DirectiveForm = R"(
int N = 17;
int sum = 0;
void body(int i);
int main() {
  #pragma omp parallel for
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    sum += i;
  return sum;
}
)";

const char *ManualForm = R"(
int N = 17;
int sum = 0;
int main() {
  #pragma omp parallel for
  for (int i = 0; i < N; i += 2) {
    sum += i;
    if (i + 1 < N) sum += i + 1;
  }
  return sum;
}
)";

long long runOnce(const char *Source, CompilerOptions Options) {
  CompilerInstance CI(Options);
  if (!CI.compileSource(Source)) {
    std::fputs(CI.renderDiagnostics().c_str(), stderr);
    std::exit(1);
  }
  rt::OpenMPRuntime::get().setDefaultNumThreads(4);
  interp::ExecutionEngine EE(*CI.getIRModule());
  return EE.runFunction("main", {}).I;
}

} // namespace

int main() {
  std::printf("Part 1: one algorithm, per-target optimization via the "
              "preprocessor\n");
  std::printf("        (paper Section 1.1: \"different optimizations can "
              "be chosen for\n         different hardware ... while using "
              "the same source code\")\n\n");
  for (int Target = 0; Target <= 2; ++Target) {
    CompilerOptions Options;
    Options.Defines.emplace_back("TARGET", std::to_string(Target));
    long long R = runOnce(PortableSource, Options);
    const char *Name = Target == 1   ? "TARGET=1 (unroll partial(8))"
                       : Target == 2 ? "TARGET=2 (tile sizes(64))"
                                     : "TARGET=0 (plain parallel for)";
    std::printf("  %-32s -> %lld\n", Name, R);
  }

  std::printf("\nPart 2: '#pragma omp unroll partial(2)' under 'parallel "
              "for' vs manual unrolling\n\n");
  // Note: sum of 0..16 = 136. Run each form under both pipelines.
  for (bool IRB : {false, true}) {
    CompilerOptions Options;
    Options.LangOpts.OpenMPEnableIRBuilder = IRB;
    long long D = runOnce(DirectiveForm, Options);
    long long M = runOnce(ManualForm, Options);
    std::printf("  pipeline=%-9s directive=%lld manual=%lld  %s\n",
                IRB ? "irbuilder" : "legacy", D, M,
                D == M ? "EQUIVALENT" : "MISMATCH");
  }

  std::printf("\nPart 3: what the directive expands to (the shadow "
              "transformed AST,\n        paper Listing 8)\n\n");
  CompilerInstance CI;
  CI.addVirtualFile("part3.c", DirectiveForm);
  if (CI.parseToAST("part3.c")) {
    // Find the inner unroll directive and print its shadow subtree.
    struct Finder : RecursiveASTVisitor<Finder> {
      OMPUnrollDirective *Found = nullptr;
      bool visitStmt(Stmt *S) {
        if (auto *U = stmt_dyn_cast<OMPUnrollDirective>(S))
          Found = U;
        return true;
      }
    } F;
    for (Decl *D : CI.getTranslationUnit()->decls())
      F.traverseDecl(D);
    if (F.Found && F.Found->getTransformedStmt())
      std::printf("%s\n",
                  dumpToString(F.Found->getTransformedStmt()).c_str());
  }
  return 0;
}
