//===--- bench_compile_modes.cpp - E10: legacy vs IRBuilder compile cost ----===//
//
// Compares front-end cost of the two representations on stacked loop
// transformations (depth = number of stacked unroll partial directives):
// the legacy pipeline pays for TreeTransform-style shadow AST construction
// in Sema; the IRBuilder pipeline defers the work to CodeGen.
//
// Also contains the IRBuilder constant-folding ablation (paper Section
// 1.3: on-the-fly simplification "avoids creating instructions that would
// later be optimized away anyway").
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

#include "codegen/CodeGenModule.h"

using namespace mcc;

namespace {

std::string makeStacked(unsigned Depth) {
  std::string S = "long acc = 0;\nint main() {\n";
  S += "  #pragma omp parallel for reduction(+: acc)\n";
  for (unsigned K = 0; K < Depth; ++K)
    S += "  #pragma omp unroll partial(2)\n";
  S += "  for (int i = 0; i < 1000; i += 1)\n    acc += i;\n";
  S += "  int out = acc;\n  return out;\n}\n";
  return S;
}

void BM_SemaLegacy(benchmark::State &State) {
  std::string Source = makeStacked(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    CompilerInstance CI;
    CI.addVirtualFile("x.c", Source);
    bool OK = CI.parseToAST("x.c");
    benchmark::DoNotOptimize(OK);
  }
}
BENCHMARK(BM_SemaLegacy)->DenseRange(1, 6);

void BM_SemaIRBuilderMode(benchmark::State &State) {
  std::string Source = makeStacked(static_cast<unsigned>(State.range(0)));
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  for (auto _ : State) {
    CompilerInstance CI(Options);
    CI.addVirtualFile("x.c", Source);
    bool OK = CI.parseToAST("x.c");
    benchmark::DoNotOptimize(OK);
  }
}
BENCHMARK(BM_SemaIRBuilderMode)->DenseRange(1, 6);

void BM_FullCompileLegacy(benchmark::State &State) {
  std::string Source = makeStacked(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    CompilerInstance CI;
    bool OK = CI.compileSource(Source);
    benchmark::DoNotOptimize(OK);
  }
}
BENCHMARK(BM_FullCompileLegacy)->DenseRange(1, 6);

void BM_FullCompileIRBuilderMode(benchmark::State &State) {
  std::string Source = makeStacked(static_cast<unsigned>(State.range(0)));
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  for (auto _ : State) {
    CompilerInstance CI(Options);
    bool OK = CI.compileSource(Source);
    benchmark::DoNotOptimize(OK);
  }
}
BENCHMARK(BM_FullCompileIRBuilderMode)->DenseRange(1, 6);

// --- Ablation: IRBuilder on-the-fly folding (Section 1.3) ---

void foldingAblation(benchmark::State &State, bool Fold) {
  // Count instructions materialized when emitting a constant-heavy
  // function directly through the IRBuilder.
  for (auto _ : State) {
    ir::Module M;
    ir::IRBuilder B(M, Fold);
    ir::Function *F = M.createFunction("f", ir::IRType::getI64(),
                                       {ir::IRType::getI64()});
    B.setInsertPoint(F->createBlock("entry"));
    ir::Value *Acc = F->getArg(0);
    for (int I = 0; I < 200; ++I) {
      // Patterns front-ends commonly emit: x*1, x+0, constant subtrees.
      ir::Value *Scaled = B.createMul(Acc, M.getI64(1));
      ir::Value *Offset = B.createAdd(M.getI64(3), M.getI64(4));
      Acc = B.createAdd(Scaled, B.createMul(Offset, M.getI64(0)));
    }
    B.createRet(Acc);
    State.counters["instructions"] =
        static_cast<double>(B.getNumInstructionsCreated());
    State.counters["folds"] = static_cast<double>(B.getNumFolds());
    benchmark::DoNotOptimize(Acc);
  }
}

void BM_IRBuilderWithFolding(benchmark::State &State) {
  foldingAblation(State, true);
}
void BM_IRBuilderNoFolding(benchmark::State &State) {
  foldingAblation(State, false);
}
BENCHMARK(BM_IRBuilderWithFolding);
BENCHMARK(BM_IRBuilderNoFolding);

} // namespace

MCC_BENCHMARK_MAIN()
