//===--- bench_workshare.cpp - E11: scheduling policies under imbalance -----===//
//
// The worksharing-loop construct across schedules (static, static-chunked,
// dynamic, guided) and thread counts, on a deliberately imbalanced body
// (cost grows with the iteration number). The shape to observe: static
// suffers from imbalance, dynamic/guided recover it at the cost of
// dispatch overhead; more threads widen the gap.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string makeImbalanced(const std::string &Schedule) {
  // work(i) ~ i: late iterations are much more expensive.
  return R"(
long total = 0;
int main() {
  total = 0;
  #pragma omp parallel for schedule()" +
         Schedule + R"() reduction(+: total)
  for (int i = 0; i < 256; ++i) {
    long w = 0;
    for (int k = 0; k < i * 4; ++k)
      w += k;
    total += w;
  }
  int out = total % 1000000;
  return out;
}
)";
}

void runSchedule(benchmark::State &State, const std::string &Schedule,
                 interp::ExecEngineKind Engine =
                     interp::ExecEngineKind::Default) {
  int Threads = static_cast<int>(State.range(0));
  auto CI = compileOrDie(makeImbalanced(Schedule));
  rt::OpenMPRuntime::get().setDefaultNumThreads(Threads);
  interp::ExecutionEngine EE(*CI->getIRModule(), Engine);

  std::int64_t Expected = -1;
  for (auto _ : State) {
    std::int64_t R = EE.runFunction("main", {}).I;
    if (Expected == -1)
      Expected = R;
    else if (R != Expected) {
      State.SkipWithError("nondeterministic result");
      return;
    }
  }
  State.counters["threads"] = Threads;
}

void BM_ScheduleStatic(benchmark::State &State) {
  runSchedule(State, "static");
}
void BM_ScheduleStaticChunk8(benchmark::State &State) {
  runSchedule(State, "static, 8");
}
void BM_ScheduleDynamic8(benchmark::State &State) {
  runSchedule(State, "dynamic, 8");
}
void BM_ScheduleGuided(benchmark::State &State) {
  runSchedule(State, "guided");
}

// Engine dimension: the imbalanced dynamic schedule — where per-iteration
// interpreter cost is the denominator of the imbalance recovery — pinned
// to each backend.
void BM_ScheduleDynamic8_Walker(benchmark::State &State) {
  runSchedule(State, "dynamic, 8", interp::ExecEngineKind::Walker);
}
void BM_ScheduleDynamic8_Bytecode(benchmark::State &State) {
  runSchedule(State, "dynamic, 8", interp::ExecEngineKind::Bytecode);
}

#define WS_THREADS ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
BENCHMARK(BM_ScheduleStatic) WS_THREADS;
BENCHMARK(BM_ScheduleStaticChunk8) WS_THREADS;
BENCHMARK(BM_ScheduleDynamic8) WS_THREADS;
BENCHMARK(BM_ScheduleGuided) WS_THREADS;
BENCHMARK(BM_ScheduleDynamic8_Walker) WS_THREADS;
BENCHMARK(BM_ScheduleDynamic8_Bytecode) WS_THREADS;

// Fork/join overhead: an empty parallel region per team size.
void BM_ForkJoinOverhead(benchmark::State &State) {
  int Threads = static_cast<int>(State.range(0));
  auto CI = compileOrDie(R"(
int main() {
  #pragma omp parallel
  { ; }
  return 0;
}
)");
  rt::OpenMPRuntime::get().setDefaultNumThreads(Threads);
  interp::ExecutionEngine EE(*CI->getIRModule());
  for (auto _ : State)
    EE.runFunction("main", {});
  State.counters["threads"] = Threads;
}
BENCHMARK(BM_ForkJoinOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

} // namespace

MCC_BENCHMARK_MAIN()
