//===--- bench_tile.cpp - E12: tiling a 2D traversal ------------------------===//
//
// A transposed-access kernel (the classic motivation for tiling): walk a
// 2D array column-major while summing row-major neighbors. On real
// hardware tiling wins through cache locality; on the interpreter the
// observable effects are the preserved semantics, the restructured loop
// nest (4 loops instead of 2), and the control-flow overhead per element
// for different tile sizes — the crossover the user must weigh.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string makeTransposeSum(int N, int Tile) {
  std::string Pragma =
      Tile > 0 ? "  #pragma omp tile sizes(" + std::to_string(Tile) + ", " +
                     std::to_string(Tile) + ")\n"
               : "";
  return "double m[" + std::to_string(N * N) + "];\nlong sig = 0;\n" +
         "int N = " + std::to_string(N) + ";\n" + R"(
int main() {
  sig = 0;
  for (int k = 0; k < N * N; ++k)
    m[k] = k % 13;
)" + Pragma + R"(
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j)
      sig += m[j * N + i];   /* transposed access */
  int out = sig % 1000000;
  return out;
}
)";
}

void runTile(benchmark::State &State, int Tile, bool IRBuilderMode) {
  int N = static_cast<int>(State.range(0));
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  auto CI = compileOrDie(makeTransposeSum(N, Tile), Options);
  interp::ExecutionEngine EE(*CI->getIRModule());

  std::int64_t Expected = -1;
  std::uint64_t Before = EE.getInstructionsExecuted();
  std::uint64_t Runs = 0;
  for (auto _ : State) {
    std::int64_t R = EE.runFunction("main", {}).I;
    if (Expected == -1)
      Expected = R;
    else if (R != Expected) {
      State.SkipWithError("tiling changed the result");
      return;
    }
    ++Runs;
  }
  if (Runs)
    State.counters["insts/elem"] =
        static_cast<double>(EE.getInstructionsExecuted() - Before) /
        (static_cast<double>(Runs) * N * N);
}

void BM_Untiled(benchmark::State &State) { runTile(State, 0, false); }
void BM_Tile4_Legacy(benchmark::State &State) { runTile(State, 4, false); }
void BM_Tile16_Legacy(benchmark::State &State) { runTile(State, 16, false); }
void BM_Tile4_IRBuilder(benchmark::State &State) { runTile(State, 4, true); }
void BM_Tile16_IRBuilder(benchmark::State &State) {
  runTile(State, 16, true);
}

#define TILE_ARGS ->Arg(32)->Arg(96)
BENCHMARK(BM_Untiled) TILE_ARGS;
BENCHMARK(BM_Tile4_Legacy) TILE_ARGS;
BENCHMARK(BM_Tile16_Legacy) TILE_ARGS;
BENCHMARK(BM_Tile4_IRBuilder) TILE_ARGS;
BENCHMARK(BM_Tile16_IRBuilder) TILE_ARGS;

} // namespace

MCC_BENCHMARK_MAIN()
