//===--- bench_runtime_overhead.cpp - KMP runtime micro-overheads ---------===//
//
// EPCC-syncbench-flavored microbenchmarks for the miniature libomp,
// measuring the runtime layer itself (no compiler pipeline involved):
//
//   * ForkJoin     — one empty parallel region per iteration, hot-team
//                    pool vs. per-fork thread spawn (the pre-pool design),
//   * Barrier      — per-phase cost of the sense-reversing spin-then-block
//                    barrier, amortized over many phases per fork,
//   * DispatchNext — per-chunk cost of the lock-free dispatcher for
//                    dynamic / guided / static-chunked schedules.
//
// The fork/join pair quantifies the hot-team win recorded in
// BENCH_runtime.json (EXPERIMENTS.md "E13").
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"
#include "runtime/KMPRuntime.h"

#include <atomic>

namespace {

using mcc::rt::OpenMPRuntime;
using mcc::rt::ScheduleType;

/// benchmark args: {hot-team on/off, team size}.
void BM_ForkJoin(benchmark::State &State) {
  OpenMPRuntime &RT = OpenMPRuntime::get();
  const bool Hot = State.range(0) != 0;
  const int Threads = static_cast<int>(State.range(1));
  RT.shutdown();
  RT.setHotTeamsEnabled(Hot);
  std::atomic<int> Sink{0};
  for (auto _ : State)
    RT.forkCall([&](int) { Sink.fetch_add(1, std::memory_order_relaxed); },
                Threads);
  benchmark::DoNotOptimize(Sink.load());
  State.SetLabel(Hot ? "hot-team" : "spawn");
  State.SetItemsProcessed(State.iterations());
  RT.setHotTeamsEnabled(true);
  RT.shutdown();
}
BENCHMARK(BM_ForkJoin)
    ->ArgsProduct({{1, 0}, {1, 2, 4, 8}})
    ->ArgNames({"hot", "threads"});

/// Per-phase barrier cost: each fork executes many barrier phases so the
/// fork/join overhead amortizes out. items = phases.
void BM_Barrier(benchmark::State &State) {
  OpenMPRuntime &RT = OpenMPRuntime::get();
  const int Threads = static_cast<int>(State.range(0));
  constexpr int PhasesPerFork = 128;
  RT.shutdown();
  std::int64_t Phases = 0;
  for (auto _ : State) {
    RT.forkCall(
        [&](int) {
          for (int P = 0; P < PhasesPerFork; ++P)
            RT.barrier();
        },
        Threads);
    Phases += PhasesPerFork;
  }
  State.SetItemsProcessed(Phases);
  RT.shutdown();
}
BENCHMARK(BM_Barrier)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

/// Per-chunk dispatch cost under contention. items = chunks handed out.
void BM_DispatchNext(benchmark::State &State) {
  OpenMPRuntime &RT = OpenMPRuntime::get();
  const auto Sched = static_cast<std::int32_t>(State.range(0));
  const int Threads = static_cast<int>(State.range(1));
  constexpr std::int64_t Trip = 4096;
  constexpr std::int64_t Chunk = 1;
  RT.shutdown();
  RT.resetStats();
  for (auto _ : State) {
    RT.forkCall(
        [&](int) {
          RT.dispatchInit(Sched, 0, Trip - 1, Chunk);
          std::int32_t Last;
          std::int64_t Lb, Ub;
          std::int64_t Sum = 0;
          while (RT.dispatchNext(&Last, &Lb, &Ub))
            Sum += Ub - Lb + 1;
          benchmark::DoNotOptimize(Sum);
        },
        Threads);
  }
  const OpenMPRuntime::StatsSnapshot S = RT.statsSnapshot();
  State.SetItemsProcessed(static_cast<std::int64_t>(
      S.NumChunksDynamic + S.NumChunksGuided + S.NumChunksStaticChunked));
  switch (Sched) {
  case mcc::rt::SchedDynamic:
    State.SetLabel("dynamic");
    break;
  case mcc::rt::SchedGuided:
    State.SetLabel("guided");
    break;
  default:
    State.SetLabel("static-chunked");
    break;
  }
  RT.shutdown();
}
BENCHMARK(BM_DispatchNext)
    ->ArgsProduct({{mcc::rt::SchedDynamic, mcc::rt::SchedGuided,
                    mcc::rt::SchedStaticChunked},
                   {1, 4}})
    ->ArgNames({"sched", "threads"});

} // namespace

MCC_BENCHMARK_MAIN()
