//===--- bench_exec_transforms.cpp - E9: execution effect of transforms -----===//
//
// Measures the run-time effect (interpreter cost model: instructions
// retired per iteration) of each loop transformation on a reduction
// kernel, across both pipelines:
//
//   baseline               plain loop
//   unroll partial(k)      fewer back-edge/condition instructions per item
//   tile sizes(t)          same iteration count, restructured control flow
//   parallel for           runtime calls + outlining, split across threads
//
// Shape to observe: unrolling reduces instructions/iteration (the mid-end
// removed replicated checks); tiling alone adds a small control overhead;
// parallel-for adds constant runtime overhead amortized by trip count.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string makeKernel(const std::string &Pragmas, long N) {
  return "long acc = 0;\nint main() {\n  acc = 0;\n" + Pragmas +
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += i * 3 + 1;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

void runKernel(benchmark::State &State, const std::string &Pragmas,
               bool IRBuilderMode, int Threads = 1,
               interp::ExecEngineKind Engine = interp::ExecEngineKind::Default) {
  long N = State.range(0);
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  Options.RunMidend = true;
  auto CI = compileOrDie(makeKernel(Pragmas, N), Options);
  rt::OpenMPRuntime::get().setDefaultNumThreads(Threads);
  interp::ExecutionEngine EE(*CI->getIRModule(), Engine);

  std::uint64_t Before = EE.getInstructionsExecuted();
  std::uint64_t Runs = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(EE.runFunction("main", {}).I);
    ++Runs;
  }
  if (Runs)
    State.counters["insts/elem"] =
        static_cast<double>(EE.getInstructionsExecuted() - Before) /
        (static_cast<double>(Runs) * static_cast<double>(N));
}

void BM_Baseline_Legacy(benchmark::State &State) {
  runKernel(State, "", false);
}
void BM_Baseline_IRBuilder(benchmark::State &State) {
  runKernel(State, "", true);
}
void BM_Unroll4_Legacy(benchmark::State &State) {
  runKernel(State, "  #pragma omp unroll partial(4)\n", false);
}
void BM_Unroll4_IRBuilder(benchmark::State &State) {
  runKernel(State, "  #pragma omp unroll partial(4)\n", true);
}
void BM_Tile16_Legacy(benchmark::State &State) {
  runKernel(State, "  #pragma omp tile sizes(16)\n", false);
}
void BM_Tile16_IRBuilder(benchmark::State &State) {
  runKernel(State, "  #pragma omp tile sizes(16)\n", true);
}
void BM_ParallelFor_Legacy(benchmark::State &State) {
  runKernel(State, "  #pragma omp parallel for reduction(+: acc)\n", false,
            4);
}
void BM_ParallelFor_IRBuilder(benchmark::State &State) {
  runKernel(State, "  #pragma omp parallel for reduction(+: acc)\n", true,
            4);
}

// Engine dimension: the same kernels pinned to each execution backend
// (the unsuffixed benchmarks above follow MCC_EXEC_ENGINE).
void BM_Baseline_Walker(benchmark::State &State) {
  runKernel(State, "", true, 1, interp::ExecEngineKind::Walker);
}
void BM_Baseline_Bytecode(benchmark::State &State) {
  runKernel(State, "", true, 1, interp::ExecEngineKind::Bytecode);
}
void BM_Unroll4_Walker(benchmark::State &State) {
  runKernel(State, "  #pragma omp unroll partial(4)\n", true, 1,
            interp::ExecEngineKind::Walker);
}
void BM_Unroll4_Bytecode(benchmark::State &State) {
  runKernel(State, "  #pragma omp unroll partial(4)\n", true, 1,
            interp::ExecEngineKind::Bytecode);
}
void BM_ParallelFor_Walker(benchmark::State &State) {
  runKernel(State, "  #pragma omp parallel for reduction(+: acc)\n", true, 4,
            interp::ExecEngineKind::Walker);
}
void BM_ParallelFor_Bytecode(benchmark::State &State) {
  runKernel(State, "  #pragma omp parallel for reduction(+: acc)\n", true, 4,
            interp::ExecEngineKind::Bytecode);
}

#define EXEC_ARGS ->Arg(1000)->Arg(100000)
BENCHMARK(BM_Baseline_Legacy) EXEC_ARGS;
BENCHMARK(BM_Baseline_IRBuilder) EXEC_ARGS;
BENCHMARK(BM_Unroll4_Legacy) EXEC_ARGS;
BENCHMARK(BM_Unroll4_IRBuilder) EXEC_ARGS;
BENCHMARK(BM_Tile16_Legacy) EXEC_ARGS;
BENCHMARK(BM_Tile16_IRBuilder) EXEC_ARGS;
BENCHMARK(BM_ParallelFor_Legacy)->Arg(100000)->UseRealTime();
BENCHMARK(BM_ParallelFor_IRBuilder)->Arg(100000)->UseRealTime();
BENCHMARK(BM_Baseline_Walker) EXEC_ARGS;
BENCHMARK(BM_Baseline_Bytecode) EXEC_ARGS;
BENCHMARK(BM_Unroll4_Walker) EXEC_ARGS;
BENCHMARK(BM_Unroll4_Bytecode) EXEC_ARGS;
BENCHMARK(BM_ParallelFor_Walker)->Arg(100000)->UseRealTime();
BENCHMARK(BM_ParallelFor_Bytecode)->Arg(100000)->UseRealTime();

} // namespace

MCC_BENCHMARK_MAIN()
