//===--- bench_interp.cpp - E15: bytecode engine vs tree-walking walker ----===//
//
// The headline comparison for the register-allocated bytecode engine:
// identical modules executed by both backends, on the hot-loop kernels
// the engine was built for — plain, unrolled and tiled reductions, and an
// array-sweep whose body is exactly the load -> int-op -> store pattern
// the LoadOpStore superinstruction fuses.
//
// items_per_second is elements/sec (N per main() call), so the
// walker/bytecode ratio of the same kernel reads directly as the speedup
// (EXPERIMENTS.md E15 expects >= 5x on the tiled/unrolled kernels).
// "insts/elem" shows *why*: the bytecode engine retires fewer, cheaper
// instructions (superinstructions fuse the hot patterns; operands are
// frame indices instead of map lookups).
//
// BM_Translate measures the one-time cost the bytecode engine pays that
// the walker does not: full module translation, at engine construction.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

#include "interp/Bytecode.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string plainKernel(long N) {
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += i * 3 + 1;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string unrolledKernel(long N) {
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  #pragma omp unroll partial(8)\n"
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += i * 3 + 1;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string tiledKernel(long N) {
  // Two-level nest, tiled: the restructured control flow multiplies the
  // per-iteration dispatch count — exactly where threaded dispatch pays.
  long Inner = 64;
  long Outer = N / Inner;
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  #pragma omp tile sizes(16, 16)\n"
         "  for (int i = 0; i < " + std::to_string(Outer) +
         "; i += 1)\n"
         "    for (int j = 0; j < " + std::to_string(Inner) +
         "; j += 1)\n      acc += i * 3 + j;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string arraySweepKernel(long N) {
  // a[i] += expr is the load -> add -> store shape LoadOpStore fuses.
  return "long a[1024];\nint main() {\n"
         "  for (int k = 0; k < 1024; k += 1)\n    a[k] = k;\n"
         "  for (int r = 0; r < " + std::to_string(N / 1024) +
         "; r += 1)\n"
         "    for (int i = 0; i < 1024; i += 1)\n"
         "      a[i] += i * 2 + 1;\n"
         "  long acc = 0;\n"
         "  for (int k = 0; k < 1024; k += 1)\n    acc += a[k];\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

void runEngine(benchmark::State &State, const std::string &Source,
               interp::ExecEngineKind Engine) {
  long N = State.range(0);
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  Options.RunMidend = true;
  auto CI = compileOrDie(Source, Options);
  interp::ExecutionEngine EE(*CI->getIRModule(), Engine);

  std::int64_t Expected = -1;
  std::uint64_t Before = EE.getInstructionsExecuted();
  std::uint64_t Runs = 0;
  for (auto _ : State) {
    std::int64_t R = EE.runFunction("main", {}).I;
    ++Runs;
    if (Expected == -1)
      Expected = R;
    else if (R != Expected) {
      State.SkipWithError("nondeterministic result");
      return;
    }
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Runs) * N);
  if (Runs)
    State.counters["insts/elem"] =
        static_cast<double>(EE.getInstructionsExecuted() - Before) /
        (static_cast<double>(Runs) * static_cast<double>(N));
}

void BM_Plain_Walker(benchmark::State &State) {
  runEngine(State, plainKernel(State.range(0)),
            interp::ExecEngineKind::Walker);
}
void BM_Plain_Bytecode(benchmark::State &State) {
  runEngine(State, plainKernel(State.range(0)),
            interp::ExecEngineKind::Bytecode);
}
void BM_Unroll8_Walker(benchmark::State &State) {
  runEngine(State, unrolledKernel(State.range(0)),
            interp::ExecEngineKind::Walker);
}
void BM_Unroll8_Bytecode(benchmark::State &State) {
  runEngine(State, unrolledKernel(State.range(0)),
            interp::ExecEngineKind::Bytecode);
}
void BM_Tile16_Walker(benchmark::State &State) {
  runEngine(State, tiledKernel(State.range(0)),
            interp::ExecEngineKind::Walker);
}
void BM_Tile16_Bytecode(benchmark::State &State) {
  runEngine(State, tiledKernel(State.range(0)),
            interp::ExecEngineKind::Bytecode);
}
void BM_ArraySweep_Walker(benchmark::State &State) {
  runEngine(State, arraySweepKernel(State.range(0)),
            interp::ExecEngineKind::Walker);
}
void BM_ArraySweep_Bytecode(benchmark::State &State) {
  runEngine(State, arraySweepKernel(State.range(0)),
            interp::ExecEngineKind::Bytecode);
}

BENCHMARK(BM_Plain_Walker)->Arg(100000);
BENCHMARK(BM_Plain_Bytecode)->Arg(100000);
BENCHMARK(BM_Unroll8_Walker)->Arg(100000);
BENCHMARK(BM_Unroll8_Bytecode)->Arg(100000);
BENCHMARK(BM_Tile16_Walker)->Arg(65536);
BENCHMARK(BM_Tile16_Bytecode)->Arg(65536);
BENCHMARK(BM_ArraySweep_Walker)->Arg(131072);
BENCHMARK(BM_ArraySweep_Bytecode)->Arg(131072);

// One-time translation cost (whole module, all kernels' worth of IR).
void BM_Translate(benchmark::State &State) {
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  Options.RunMidend = true;
  auto CI = compileOrDie(tiledKernel(65536), Options);
  std::size_t Bytes = 0;
  for (auto _ : State) {
    auto BC = interp::bc::compileToBytecode(*CI->getIRModule());
    Bytes = BC->byteSize();
    benchmark::DoNotOptimize(BC);
  }
  State.counters["bytecode-bytes"] = static_cast<double>(Bytes);
}
BENCHMARK(BM_Translate);

} // namespace

MCC_BENCHMARK_MAIN()
