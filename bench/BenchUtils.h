//===--- BenchUtils.h - Shared helpers for the benchmark harness -*- C++ -*-===//
#ifndef MCC_BENCH_BENCHUTILS_H
#define MCC_BENCH_BENCHUTILS_H

#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

namespace mcc::bench {

/// Compiles MiniC source (aborting on diagnostics) and returns the
/// instance.
inline std::unique_ptr<CompilerInstance>
compileOrDie(const std::string &Source, CompilerOptions Options = {}) {
  auto CI = std::make_unique<CompilerInstance>(Options);
  if (!CI->compileSource(Source)) {
    fprintf(stderr, "benchmark input failed to compile:\n%s\n",
            CI->renderDiagnostics().c_str());
    abort();
  }
  return CI;
}

/// Compile + execute main() once; returns its value.
inline std::int64_t runMain(const std::string &Source,
                            CompilerOptions Options = {},
                            int NumThreads = 4) {
  auto CI = compileOrDie(Source, Options);
  rt::OpenMPRuntime::get().setDefaultNumThreads(NumThreads);
  interp::ExecutionEngine EE(*CI->getIRModule());
  return EE.runFunction("main", {}).I;
}

/// Shared main: injects a short default --benchmark_min_time so the whole
/// harness stays fast, while still honoring user overrides.
inline int benchmarkMain(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  std::string MinTime = "--benchmark_min_time=0.05";
  bool HasMinTime = false;
  for (char *A : Args)
    if (std::string(A).rfind("--benchmark_min_time", 0) == 0)
      HasMinTime = true;
  if (!HasMinTime)
    Args.push_back(MinTime.data());
  int NewArgc = static_cast<int>(Args.size());
  ::benchmark::Initialize(&NewArgc, Args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

} // namespace mcc::bench

#define MCC_BENCHMARK_MAIN()                                                   \
  int main(int argc, char **argv) {                                           \
    return mcc::bench::benchmarkMain(argc, argv);                             \
  }

#endif // MCC_BENCH_BENCHUTILS_H
