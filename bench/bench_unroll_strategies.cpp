//===--- bench_unroll_strategies.cpp - E2: remainder vs conditional ---------===//
//
// The paper's Listing 2 discussion: a typical unroll implementation
// "avoids the conditional within the loop and instead peels the last
// iterations into a remainder loop". This harness compares, on the
// interpreter (cost model: instructions retired), the execution of
//
//   none          no unrolling
//   conditional   metadata unroll, every body copy keeps its exit check
//   remainder     main loop of check-free rounds + remainder loop
//                 (the paper's Listing 2 shape)
//
// for trip counts where N % factor != 0 (the remainder matters).
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string makeSource(long N, int Factor) {
  std::string S = "long acc = 0;\nint main() {\n  acc = 0;\n";
  if (Factor > 1)
    S += "  #pragma omp unroll partial(" + std::to_string(Factor) + ")\n";
  S += "  for (int i = 0; i < " + std::to_string(N) + "; i += 1)\n";
  S += "    acc += i;\n";
  S += "  int out = acc % 1000000;\n  return out;\n}\n";
  return S;
}

enum class Strategy { None, Conditional, Remainder };

void runBench(benchmark::State &State, Strategy Strat) {
  long N = State.range(0);
  int Factor = static_cast<int>(State.range(1));

  CompilerOptions Options;
  // The remainder strategy applies to the canonical skeleton: use the
  // IRBuilder pipeline for both unrolled variants so the comparison is
  // apples to apples.
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  if (Strat != Strategy::None) {
    Options.RunMidend = true;
    Options.UnrollOpts.Strat =
        Strat == Strategy::Conditional
            ? midend::LoopUnrollOptions::Strategy::ConditionalExit
            : midend::LoopUnrollOptions::Strategy::Remainder;
  }
  auto CI = compileOrDie(makeSource(N, Strat == Strategy::None ? 1 : Factor),
                         Options);
  interp::ExecutionEngine EE(*CI->getIRModule());

  long Expected = (N % 2 == 0) ? (N / 2) * (N - 1) : N * ((N - 1) / 2);
  Expected %= 1000000;

  std::uint64_t Before = EE.getInstructionsExecuted();
  std::uint64_t Runs = 0;
  for (auto _ : State) {
    std::int64_t R = EE.runFunction("main", {}).I;
    if (R != Expected) {
      State.SkipWithError("wrong result");
      return;
    }
    ++Runs;
  }
  if (Runs)
    State.counters["insts/iter"] = static_cast<double>(
        (EE.getInstructionsExecuted() - Before) / Runs);
}

void BM_NoUnroll(benchmark::State &State) {
  runBench(State, Strategy::None);
}
void BM_ConditionalExit(benchmark::State &State) {
  runBench(State, Strategy::Conditional);
}
void BM_RemainderLoop(benchmark::State &State) {
  runBench(State, Strategy::Remainder);
}

// N chosen so N % factor != 0: the remainder path is exercised.
#define UNROLL_ARGS                                                           \
  ->Args({1003, 4})->Args({10007, 4})->Args({10007, 8})->Args({100003, 8})

BENCHMARK(BM_NoUnroll) UNROLL_ARGS;
BENCHMARK(BM_ConditionalExit) UNROLL_ARGS;
BENCHMARK(BM_RemainderLoop) UNROLL_ARGS;

} // namespace

MCC_BENCHMARK_MAIN()
