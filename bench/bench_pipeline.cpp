//===--- bench_pipeline.cpp - E1: per-layer front-end cost (Fig. 1) ---------===//
//
// The paper's Fig. 1 shows the component layers a translation unit flows
// through. This harness times each stage separately on synthesized
// translation units with K OpenMP-annotated loops:
//
//   Lex+PP      FileManager/SourceManager/Lexer/Preprocessor (token pull)
//   Parse+Sema  Parser pushing to Sema (AST construction incl. shadow AST)
//   CodeGen     AST -> IR
//   Midend      LoopUnroll + SimplifyCFG + DCE
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

#include "lex/Preprocessor.h"

using namespace mcc;

namespace {

std::string makeTU(unsigned NumLoops) {
  std::string S = "void body(int x);\n";
  for (unsigned K = 0; K < NumLoops; ++K) {
    S += "void f" + std::to_string(K) + "(int n) {\n";
    S += "  int acc = 0;\n";
    S += "  #pragma omp parallel for reduction(+: acc)\n";
    S += "  #pragma omp unroll partial(4)\n";
    S += "  for (int i = 0; i < n; i += 1)\n";
    S += "    acc += i * " + std::to_string(K + 1) + ";\n";
    S += "  body(acc);\n}\n";
  }
  return S;
}

void BM_LexAndPreprocess(benchmark::State &State) {
  std::string Source = makeTU(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    FileManager FM;
    SourceManager SM;
    StoringDiagnosticConsumer Consumer;
    DiagnosticsEngine Diags(&Consumer);
    FM.addVirtualFile("x.c", Source);
    Preprocessor PP(FM, SM, Diags);
    PP.enterMainFile("x.c");
    Token Tok;
    unsigned N = 0;
    do {
      PP.lex(Tok);
      ++N;
    } while (!Tok.is(tok::eof));
    benchmark::DoNotOptimize(N);
  }
  State.counters["loops"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_LexAndPreprocess)->Arg(10)->Arg(100)->Arg(500);

void BM_ParseAndSema(benchmark::State &State) {
  std::string Source = makeTU(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    CompilerInstance CI;
    CI.addVirtualFile("x.c", Source);
    bool OK = CI.parseToAST("x.c");
    benchmark::DoNotOptimize(OK);
  }
  State.counters["loops"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ParseAndSema)->Arg(10)->Arg(100)->Arg(500);

void BM_CodeGen(benchmark::State &State) {
  std::string Source = makeTU(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    State.PauseTiming();
    CompilerInstance CI;
    CI.addVirtualFile("x.c", Source);
    CI.parseToAST("x.c");
    State.ResumeTiming();
    bool OK = CI.emitIR();
    benchmark::DoNotOptimize(OK);
  }
  State.counters["loops"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_CodeGen)->Arg(10)->Arg(100);

void BM_Midend(benchmark::State &State) {
  std::string Source = makeTU(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    State.PauseTiming();
    CompilerInstance CI;
    CI.addVirtualFile("x.c", Source);
    CI.parseToAST("x.c");
    CI.emitIR();
    State.ResumeTiming();
    midend::PipelineStats Stats =
        midend::runDefaultPipeline(*CI.getIRModule());
    benchmark::DoNotOptimize(Stats.Unroll.LoopsUnrolled);
  }
  State.counters["loops"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_Midend)->Arg(10)->Arg(100);

void BM_WholePipeline(benchmark::State &State) {
  std::string Source = makeTU(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    CompilerOptions Options;
    Options.RunMidend = true;
    CompilerInstance CI(Options);
    bool OK = CI.compileSource(Source);
    benchmark::DoNotOptimize(OK);
  }
  State.counters["loops"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_WholePipeline)->Arg(10)->Arg(100);

} // namespace

MCC_BENCHMARK_MAIN()
