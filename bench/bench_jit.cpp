//===--- bench_jit.cpp - E16: template-JIT tier vs bytecode/walker ---------===//
//
// The headline comparison for the native execution tier: the four
// bench_interp kernels run under all four engines. items_per_second is
// elements/sec, so Native/Bytecode per kernel reads directly as the JIT
// speedup (EXPERIMENTS.md E16 expects >= 3x on Plain), and Tiered is
// expected within 10% of Native at steady state.
//
// Warmup is excluded: every engine gets priming runs before the timed
// loop, so the tiered numbers measure post-promotion steady state (the
// unit is compiled and published by the time timing starts) and the
// native numbers exclude the one-time machine-code emission.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

using namespace mcc;
using namespace mcc::bench;

namespace {

std::string plainKernel(long N) {
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += i * 3 + 1;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string unrolledKernel(long N) {
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  #pragma omp unroll partial(8)\n"
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += i * 3 + 1;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string tiledKernel(long N) {
  long Inner = 64;
  long Outer = N / Inner;
  return "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  #pragma omp tile sizes(16, 16)\n"
         "  for (int i = 0; i < " + std::to_string(Outer) +
         "; i += 1)\n"
         "    for (int j = 0; j < " + std::to_string(Inner) +
         "; j += 1)\n      acc += i * 3 + j;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string arraySweepKernel(long N) {
  return "long a[1024];\nint main() {\n"
         "  for (int k = 0; k < 1024; k += 1)\n    a[k] = k;\n"
         "  for (int r = 0; r < " + std::to_string(N / 1024) +
         "; r += 1)\n"
         "    for (int i = 0; i < 1024; i += 1)\n"
         "      a[i] += i * 2 + 1;\n"
         "  long acc = 0;\n"
         "  for (int k = 0; k < 1024; k += 1)\n    acc += a[k];\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string callHeavyKernel(long N) {
  // Tight loop of small defined-function calls: the direct native→native
  // call exhibit. Helper-indirected calls pay a host round-trip (frame
  // vector, executeTiered dispatch) per call; direct calls build the
  // callee frame on the machine stack.
  return "int add3(int a, int b, int c) { return a + b + c; }\n"
         "int mix(int a, int b) { return add3(a, b, a - b); }\n"
         "long acc = 0;\nint main() {\n  acc = 0;\n"
         "  for (int i = 0; i < " + std::to_string(N) +
         "; i += 1)\n    acc += mix(i, i + 1);\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

std::string regPressureKernel(long N) {
  // More live loop-carried accumulators than the allocator's GPR pool:
  // measures how well the hottest slots ride in registers while the
  // overflow runs from frame memory.
  return "long a0 = 0; long a1 = 0; long a2 = 0;\n"
         "long a3 = 0; long a4 = 0; long a5 = 0;\n"
         "int main() {\n"
         "  a0 = 0; a1 = 1; a2 = 2; a3 = 3; a4 = 4; a5 = 5;\n"
         "  for (int i = 0; i < " + std::to_string(N) + "; i += 1) {\n"
         "    a0 += i; a1 += i * 2; a2 += i * 3;\n"
         "    a3 += a0; a4 += a1; a5 += a2;\n"
         "  }\n"
         "  long acc = a0 + a1 + a2 + a3 + a4 + a5;\n"
         "  int out = acc % 1000000;\n  return out;\n}\n";
}

void runEngine(benchmark::State &State, const std::string &Source,
               interp::ExecEngineKind Engine) {
  long N = State.range(0);
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  Options.RunMidend = true;
  auto CI = compileOrDie(Source, Options);
  interp::ExecutionEngine EE(*CI->getIRModule(), Engine);

  // Warmup, excluded from timing: enough calls to cross the tiered
  // call threshold (default 16), so the timed region measures published
  // native code, not promotion machinery.
  std::int64_t Expected = EE.runFunction("main", {}).I;
  for (int W = 0; W < 20; ++W)
    if (EE.runFunction("main", {}).I != Expected) {
      State.SkipWithError("nondeterministic warmup");
      return;
    }

  std::uint64_t Runs = 0;
  for (auto _ : State) {
    std::int64_t R = EE.runFunction("main", {}).I;
    ++Runs;
    if (R != Expected) {
      State.SkipWithError("nondeterministic result");
      return;
    }
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Runs) * N);
  interp::ExecStats S = EE.statsSnapshot();
  State.counters["jit-compiled"] =
      static_cast<double>(S.JITFunctionsCompiled);
  State.counters["jit-fallbacks"] = static_cast<double>(S.JITFallbacks);
  State.counters["osr-promotions"] =
      static_cast<double>(S.JITOSRPromotions);
  State.counters["regalloc-slots"] =
      static_cast<double>(S.JITRegAllocSlots);
  State.counters["direct-calls"] =
      static_cast<double>(S.JITDirectCallSites);
}

#define MCC_JIT_BENCH(KERNEL, FN)                                           \
  void BM_##KERNEL##_Walker(benchmark::State &State) {                      \
    runEngine(State, FN(State.range(0)), interp::ExecEngineKind::Walker);   \
  }                                                                         \
  void BM_##KERNEL##_Bytecode(benchmark::State &State) {                    \
    runEngine(State, FN(State.range(0)),                                    \
              interp::ExecEngineKind::Bytecode);                            \
  }                                                                         \
  void BM_##KERNEL##_Native(benchmark::State &State) {                      \
    runEngine(State, FN(State.range(0)), interp::ExecEngineKind::Native);   \
  }                                                                         \
  void BM_##KERNEL##_Tiered(benchmark::State &State) {                      \
    runEngine(State, FN(State.range(0)), interp::ExecEngineKind::Tiered);   \
  }

MCC_JIT_BENCH(Plain, plainKernel)
MCC_JIT_BENCH(Unroll8, unrolledKernel)
MCC_JIT_BENCH(Tile16, tiledKernel)
MCC_JIT_BENCH(ArraySweep, arraySweepKernel)
MCC_JIT_BENCH(CallHeavy, callHeavyKernel)
MCC_JIT_BENCH(RegPressure, regPressureKernel)

BENCHMARK(BM_Plain_Walker)->Arg(100000);
BENCHMARK(BM_Plain_Bytecode)->Arg(100000);
BENCHMARK(BM_Plain_Native)->Arg(100000);
BENCHMARK(BM_Plain_Tiered)->Arg(100000);
BENCHMARK(BM_Unroll8_Walker)->Arg(100000);
BENCHMARK(BM_Unroll8_Bytecode)->Arg(100000);
BENCHMARK(BM_Unroll8_Native)->Arg(100000);
BENCHMARK(BM_Unroll8_Tiered)->Arg(100000);
BENCHMARK(BM_Tile16_Walker)->Arg(65536);
BENCHMARK(BM_Tile16_Bytecode)->Arg(65536);
BENCHMARK(BM_Tile16_Native)->Arg(65536);
BENCHMARK(BM_Tile16_Tiered)->Arg(65536);
BENCHMARK(BM_ArraySweep_Walker)->Arg(131072);
BENCHMARK(BM_ArraySweep_Bytecode)->Arg(131072);
BENCHMARK(BM_ArraySweep_Native)->Arg(131072);
BENCHMARK(BM_ArraySweep_Tiered)->Arg(131072);
BENCHMARK(BM_CallHeavy_Walker)->Arg(50000);
BENCHMARK(BM_CallHeavy_Bytecode)->Arg(50000);
BENCHMARK(BM_CallHeavy_Native)->Arg(50000);
BENCHMARK(BM_CallHeavy_Tiered)->Arg(50000);
BENCHMARK(BM_RegPressure_Walker)->Arg(100000);
BENCHMARK(BM_RegPressure_Bytecode)->Arg(100000);
BENCHMARK(BM_RegPressure_Native)->Arg(100000);
BENCHMARK(BM_RegPressure_Tiered)->Arg(100000);

} // namespace

MCC_BENCHMARK_MAIN()
