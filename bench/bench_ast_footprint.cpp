//===--- bench_ast_footprint.cpp - E8: the "36 vs 3" representation cost ---===//
//
// Quantifies the paper's central representational claim: OMPLoopDirective
// needs "up to 30 shadow AST statements ... plus 6 for each loop in the
// associated loop nest", while the OMPCanonicalLoop design reduces the
// Sema-resolved meta-information to 3 entries (distance function, loop-var
// function, loop-var reference).
//
// For worksharing nests of depth 1..4, prints per-representation:
//   - shadow helper entries (legacy) vs meta-information entries (canon.)
//   - total AST nodes allocated by Sema for the whole TU
//   - ASTContext arena bytes
//
//===----------------------------------------------------------------------===//
#include "ast/RecursiveASTVisitor.h"
#include "driver/CompilerInstance.h"

#include <cstdio>
#include <string>

using namespace mcc;

namespace {

std::string makeNestSource(unsigned Depth) {
  std::string S = "void body(int x);\nvoid f(int n) {\n";
  S += "  #pragma omp for collapse(" + std::to_string(Depth) + ")\n";
  std::string Idx;
  for (unsigned K = 0; K < Depth; ++K) {
    std::string V = "i" + std::to_string(K);
    S += std::string(2 * (K + 1), ' ') + "for (int " + V + " = 0; " + V +
         " < n; ++" + V + ")\n";
    Idx += (K ? " + " : "") + V;
  }
  S += std::string(2 * (Depth + 1), ' ') + "body(" + Idx + ");\n}\n";
  return S;
}

struct Footprint {
  unsigned MetaEntries = 0; // shadow helpers resp. canonical meta-info
  std::size_t TotalNodes = 0;
  std::size_t ArenaBytes = 0;
};

Footprint measure(unsigned Depth, bool IRBuilderMode) {
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = IRBuilderMode;
  CompilerInstance CI(Options);
  CI.addVirtualFile("x.c", makeNestSource(Depth));
  if (!CI.parseToAST("x.c")) {
    std::fprintf(stderr, "%s", CI.renderDiagnostics().c_str());
    abort();
  }

  struct Finder : RecursiveASTVisitor<Finder> {
    const OMPLoopDirective *Loop = nullptr;
    unsigned CanonicalLoops = 0;
    bool visitStmt(Stmt *S) {
      if (auto *L = stmt_dyn_cast<OMPLoopDirective>(S))
        Loop = L;
      if (stmt_dyn_cast<OMPCanonicalLoop>(S))
        ++CanonicalLoops;
      return true;
    }
  } F;
  for (Decl *D : CI.getTranslationUnit()->decls())
    F.traverseDecl(D);

  Footprint FP;
  if (IRBuilderMode)
    FP.MetaEntries = 3 * F.CanonicalLoops; // distance + loopvar + varref
  else if (F.Loop)
    FP.MetaEntries = F.Loop->getLoopHelpers().countShadowNodes();
  FP.TotalNodes = CI.getASTContext().getNumNodes();
  FP.ArenaBytes = CI.getASTContext().getTotalAllocatedBytes();
  return FP;
}

} // namespace

int main() {
  std::printf(
      "E8: AST footprint of the two representations (paper Section 3:\n"
      "\"This is reduced from the 36 shadow AST nodes required by "
      "OMPLoopDirective\")\n\n");
  std::printf("%-6s | %-28s | %-28s\n", "", "legacy shadow AST",
              "OMPCanonicalLoop");
  std::printf("%-6s | %8s %8s %9s | %8s %8s %9s\n", "depth", "helpers",
              "nodes", "arena[B]", "meta", "nodes", "arena[B]");
  std::printf("-------+------------------------------+---------------------"
              "---------\n");
  for (unsigned Depth = 1; Depth <= 4; ++Depth) {
    Footprint Legacy = measure(Depth, false);
    Footprint Canonical = measure(Depth, true);
    std::printf("%-6u | %8u %8zu %9zu | %8u %8zu %9zu\n", Depth,
                Legacy.MetaEntries, Legacy.TotalNodes, Legacy.ArenaBytes,
                Canonical.MetaEntries, Canonical.TotalNodes,
                Canonical.ArenaBytes);
  }
  std::printf(
      "\nReading: 'helpers' counts OMPLoopDirective's shadow helper\n"
      "expressions (the paper's ~30 + 6/loop); 'meta' counts the canonical\n"
      "representation's per-loop meta-information (3/loop). Node and arena\n"
      "columns cover the whole translation unit, so they include the\n"
      "canonical pipeline's CapturedStmt-encoded distance/loop-var bodies.\n");
  return 0;
}
