//===--- exhibit_ast_dumps.cpp - Regenerates the paper's listings (E3-E7) ---===//
//
// Prints, with our own implementation, the exhibits of the paper:
//
//   astdump      Listing 3:  AST of "#pragma omp parallel for
//                schedule(static)" incl. CapturedStmt machinery
//   shadowast    Listing 6:  AST of stacked "unroll full" over
//                "unroll partial(2)"
//   transformed  Listing 8:  the shadow transformed AST of the partial
//                unroll (strip-mined loop + LoopHintAttr)
//   canonical    Listing 10: OMPCanonicalLoop with distance / loop-var
//                functions (IRBuilder mode)
//   skeleton     Fig. 9:     the IR loop skeleton emitted by
//                OpenMPIRBuilder::createCanonicalLoop
//
//   $ ./exhibit_ast_dumps [--exhibit=NAME]     (default: all)
//
//===----------------------------------------------------------------------===//
#include "ast/RecursiveASTVisitor.h"
#include "driver/CompilerInstance.h"
#include "irbuilder/OpenMPIRBuilder.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace mcc;

namespace {

template <typename T> T *findNode(TranslationUnitDecl *TU) {
  struct Finder : RecursiveASTVisitor<Finder> {
    T *Found = nullptr;
    bool visitStmt(Stmt *S) {
      if (auto *Node = stmt_dyn_cast<T>(S)) {
        Found = Node;
        return false;
      }
      return true;
    }
  } F;
  for (Decl *D : TU->decls())
    if (!F.traverseDecl(D))
      break;
  return F.Found;
}

void banner(const char *Title, const char *PaperRef) {
  std::printf("\n=======================================================\n"
              "Exhibit: %s   (%s)\n"
              "=======================================================\n",
              Title, PaperRef);
}

void exhibitAstDump() {
  banner("astdump", "paper Listing 3 / Fig. 3");
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp parallel for schedule(static)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  std::printf("source:\n%s\nAST:\n", Source);
  CompilerInstance CI;
  CI.addVirtualFile("x.c", Source);
  if (!CI.parseToAST("x.c"))
    return;
  auto *Dir = findNode<OMPParallelForDirective>(CI.getTranslationUnit());
  std::printf("%s", dumpToString(Dir).c_str());
}

void exhibitShadowAst() {
  banner("shadowast", "paper Listing 6");
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  std::printf("source:\n%s\nAST:\n", Source);
  CompilerInstance CI;
  CI.addVirtualFile("x.c", Source);
  if (!CI.parseToAST("x.c"))
    return;
  auto *Dir = findNode<OMPUnrollDirective>(CI.getTranslationUnit());
  std::printf("%s", dumpToString(Dir).c_str());
}

void exhibitTransformed() {
  banner("transformed", "paper Listing 8 (Fig. 8)");
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  std::printf("source:\n%s\nTransformed (shadow) AST of the unroll "
              "directive:\n",
              Source);
  CompilerInstance CI;
  CI.addVirtualFile("x.c", Source);
  if (!CI.parseToAST("x.c"))
    return;
  auto *Dir = findNode<OMPUnrollDirective>(CI.getTranslationUnit());
  if (Dir && Dir->getTransformedStmt())
    std::printf("%s", dumpToString(Dir->getTransformedStmt()).c_str());
}

void exhibitCanonical() {
  banner("canonical", "paper Listing 10");
  const char *Source = R"(
void body(int i);
void f() {
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
)";
  std::printf("source (compiled with -fopenmp-enable-irbuilder):\n%s\nAST:\n",
              Source);
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = true;
  CompilerInstance CI(Options);
  CI.addVirtualFile("x.c", Source);
  if (!CI.parseToAST("x.c"))
    return;
  auto *Dir = findNode<OMPUnrollDirective>(CI.getTranslationUnit());
  std::printf("%s", dumpToString(Dir).c_str());
}

void exhibitSkeleton() {
  banner("skeleton", "paper Fig. 9: createCanonicalLoop output");
  ir::Module M;
  ir::IRBuilder B(M);
  ir::OpenMPIRBuilder OMPB(M);
  ir::Function *F = M.createFunction("f", ir::IRType::getVoid(),
                                     {ir::IRType::getI32()}, {"tripcount"});
  ir::Function *Body =
      M.getOrInsertFunction("body", ir::IRType::getVoid(),
                            {ir::IRType::getI32()});
  B.setInsertPoint(F->createBlock("entry"));
  OMPB.createCanonicalLoop(
      B, F->getArg(0),
      [&](ir::IRBuilder &Bld, ir::Value *IV) { Bld.createCall(Body, {IV}); },
      "omp_loop");
  B.createRetVoid();
  std::printf("%s", ir::printFunction(*F).c_str());
  std::printf("\nCanonicalLoopInfo invariants: preheader/header/cond/body/"
              "latch/exit/after present,\nIV = header phi over [0, "
              "tripcount), trip count identifiable without "
              "ScalarEvolution.\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string Which = "all";
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--exhibit=", 0) == 0)
      Which = Arg.substr(10);
  }
  bool All = Which == "all";
  if (All || Which == "astdump")
    exhibitAstDump();
  if (All || Which == "shadowast")
    exhibitShadowAst();
  if (All || Which == "transformed")
    exhibitTransformed();
  if (All || Which == "canonical")
    exhibitCanonical();
  if (All || Which == "skeleton")
    exhibitSkeleton();
  std::printf("\n");
  return 0;
}
