//===--- bench_service.cpp - E14: compile-service cache throughput ---------===//
//
// Measures what the content-addressed cache buys: cold (every request
// misses all three levels) vs warm (L3 hit) compile cost, partial reuse
// (an unroll-factor sweep sharing one token stream and AST), batch
// throughput on the 4-worker pool, and N concurrent clients hammering a
// warm cache. The acceptance figure for this subsystem is the cold vs
// warm batch-throughput ratio at 4 workers (>= 5x), recorded in
// BENCH_service.json.
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

#include "service/CompileService.h"

#include <atomic>
#include <mutex>

using namespace mcc;

namespace {

/// A program with enough front-end surface (pragmas, nest, macro) that a
/// cold compile is real work.
std::string makeProgram(std::uint64_t Tag) {
  std::string S = "#define N 48\n";
  S += "long acc" + std::to_string(Tag) + " = " + std::to_string(Tag) + ";\n";
  S += "int a[N * N];\n"
       "int main(void) {\n"
       "  #pragma omp parallel for collapse(2)\n"
       "  for (int i = 0; i < N; i = i + 1)\n"
       "    for (int j = 0; j < N; j = j + 1)\n"
       "      a[i * N + j] = i + 2 * j;\n"
       "  long sum = 0;\n"
       "  #pragma omp unroll partial(4)\n"
       "  for (int k = 0; k < N * N; k = k + 1)\n"
       "    sum += a[k];\n"
       "  int out = sum;\n"
       "  return out;\n"
       "}\n";
  return S;
}

svc::CompileJob makeJob(std::string Source) {
  svc::CompileJob Job;
  Job.Source = std::move(Source);
  Job.Options.RunMidend = true;
  return Job;
}

std::atomic<std::uint64_t> UniqueTag{1};

} // namespace

//===----------------------------------------------------------------------===//
// Single-client latency: cold chain vs L3 hit vs partial reuse.
//===----------------------------------------------------------------------===//

void BM_ServiceColdCompile(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  for (auto _ : State) {
    // A tag never seen before: misses L1, L2 and L3.
    svc::CompileResult R =
        Service.compile(makeJob(makeProgram(UniqueTag.fetch_add(1))));
    benchmark::DoNotOptimize(R.Succeeded);
  }
}
BENCHMARK(BM_ServiceColdCompile);

void BM_ServiceWarmHit(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  svc::CompileJob Job = makeJob(makeProgram(0));
  Service.compile(Job); // prime
  for (auto _ : State) {
    svc::CompileResult R = Service.compile(Job);
    benchmark::DoNotOptimize(R.Trace.L3Hit);
  }
}
BENCHMARK(BM_ServiceWarmHit);

void BM_ServiceUnrollSweepSharesFrontend(benchmark::State &State) {
  // Mid-end knob sweep over one program: after the first lap every
  // factor's module is cached; the lap before that reused one token
  // stream and one AST four times (L3-only divergence).
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  std::string Source = makeProgram(0);
  for (auto _ : State) {
    for (unsigned Factor : {2u, 4u, 8u, 16u}) {
      svc::CompileJob Job = makeJob(Source);
      Job.Options.UnrollOpts.HeuristicFactor = Factor;
      svc::CompileResult R = Service.compile(Job);
      benchmark::DoNotOptimize(R.Succeeded);
    }
  }
  State.SetItemsProcessed(State.iterations() * 4);
}
BENCHMARK(BM_ServiceUnrollSweepSharesFrontend);

//===----------------------------------------------------------------------===//
// Batch throughput on the worker pool (the acceptance ratio: warm vs
// cold items/s at 4 workers).
//===----------------------------------------------------------------------===//

constexpr unsigned BatchSize = 32;

void BM_ServiceBatchCold4Workers(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 4;
  svc::CompileService Service(SO);
  for (auto _ : State) {
    std::vector<std::future<svc::CompileResult>> Futures;
    Futures.reserve(BatchSize);
    for (unsigned I = 0; I < BatchSize; ++I)
      Futures.push_back(
          Service.enqueue(makeJob(makeProgram(UniqueTag.fetch_add(1)))));
    for (auto &F : Futures)
      benchmark::DoNotOptimize(F.get().Succeeded);
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);
}
BENCHMARK(BM_ServiceBatchCold4Workers)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceBatchWarm4Workers(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 4;
  svc::CompileService Service(SO);
  // Eight distinct warm programs: requests spread over the cache instead
  // of serializing on one slot's publication.
  std::vector<svc::CompileJob> Jobs;
  for (unsigned I = 0; I < 8; ++I) {
    Jobs.push_back(makeJob(makeProgram(1000 + I)));
    Service.compile(Jobs.back()); // prime
  }
  for (auto _ : State) {
    std::vector<std::future<svc::CompileResult>> Futures;
    Futures.reserve(BatchSize);
    for (unsigned I = 0; I < BatchSize; ++I)
      Futures.push_back(Service.enqueue(Jobs[I % Jobs.size()]));
    for (auto &F : Futures)
      benchmark::DoNotOptimize(F.get().Succeeded);
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);
}
BENCHMARK(BM_ServiceBatchWarm4Workers)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

//===----------------------------------------------------------------------===//
// N-client scaling against one warm service.
//===----------------------------------------------------------------------===//

namespace {
std::once_flag ClientsPrimeFlag;
svc::CompileService *clientsService() {
  static svc::ServiceOptions SO = [] {
    svc::ServiceOptions O;
    O.NumWorkers = 1; // clients call compile() directly; no pool needed
    return O;
  }();
  static svc::CompileService Service(SO);
  return &Service;
}
} // namespace

void BM_ServiceWarmClients(benchmark::State &State) {
  svc::CompileService *Service = clientsService();
  std::call_once(ClientsPrimeFlag, [&] {
    for (unsigned I = 0; I < 8; ++I)
      Service->compile(makeJob(makeProgram(2000 + I)));
  });
  unsigned I = static_cast<unsigned>(State.thread_index());
  for (auto _ : State) {
    svc::CompileResult R =
        Service->compile(makeJob(makeProgram(2000 + (I++ % 8))));
    benchmark::DoNotOptimize(R.Trace.L3Hit);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServiceWarmClients)->ThreadRange(1, 8)->UseRealTime();

MCC_BENCHMARK_MAIN()
