//===--- bench_service.cpp - E14/E17: compile-service + daemon throughput --===//
//
// Measures what the content-addressed cache buys: cold (every request
// misses all three levels) vs warm (L3 hit) compile cost, partial reuse
// (an unroll-factor sweep sharing one token stream and AST), batch
// throughput on the 4-worker pool, and N concurrent clients hammering a
// warm cache. The acceptance figure for this subsystem is the cold vs
// warm batch-throughput ratio at 4 workers (>= 5x), recorded in
// BENCH_service.json.
//
// E17 adds the persistence and daemon layers: cold-start recovery (a
// fresh process answering the same job mix from the on-disk artifact
// store vs recompiling everything; acceptance >= 10x) and multi-client
// socket throughput against one daemon (round-trip and pipelined, up to
// 2x hardware threads, zero dropped jobs).
//
//===----------------------------------------------------------------------===//
#include "BenchUtils.h"

#include "net/Client.h"
#include "net/Server.h"
#include "service/CompileService.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace mcc;

namespace {

/// A program with enough front-end surface (pragmas, nest, macro) that a
/// cold compile is real work.
std::string makeProgram(std::uint64_t Tag) {
  std::string S = "#define N 48\n";
  S += "long acc" + std::to_string(Tag) + " = " + std::to_string(Tag) + ";\n";
  S += "int a[N * N];\n"
       "int main(void) {\n"
       "  #pragma omp parallel for collapse(2)\n"
       "  for (int i = 0; i < N; i = i + 1)\n"
       "    for (int j = 0; j < N; j = j + 1)\n"
       "      a[i * N + j] = i + 2 * j;\n"
       "  long sum = 0;\n"
       "  #pragma omp unroll partial(4)\n"
       "  for (int k = 0; k < N * N; k = k + 1)\n"
       "    sum += a[k];\n"
       "  int out = sum;\n"
       "  return out;\n"
       "}\n";
  return S;
}

svc::CompileJob makeJob(std::string Source) {
  svc::CompileJob Job;
  Job.Source = std::move(Source);
  Job.Options.RunMidend = true;
  return Job;
}

std::atomic<std::uint64_t> UniqueTag{1};

} // namespace

//===----------------------------------------------------------------------===//
// Single-client latency: cold chain vs L3 hit vs partial reuse.
//===----------------------------------------------------------------------===//

void BM_ServiceColdCompile(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  for (auto _ : State) {
    // A tag never seen before: misses L1, L2 and L3.
    svc::CompileResult R =
        Service.compile(makeJob(makeProgram(UniqueTag.fetch_add(1))));
    benchmark::DoNotOptimize(R.Succeeded);
  }
}
BENCHMARK(BM_ServiceColdCompile);

void BM_ServiceWarmHit(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  svc::CompileJob Job = makeJob(makeProgram(0));
  Service.compile(Job); // prime
  for (auto _ : State) {
    svc::CompileResult R = Service.compile(Job);
    benchmark::DoNotOptimize(R.Trace.L3Hit);
  }
}
BENCHMARK(BM_ServiceWarmHit);

void BM_ServiceUnrollSweepSharesFrontend(benchmark::State &State) {
  // Mid-end knob sweep over one program: after the first lap every
  // factor's module is cached; the lap before that reused one token
  // stream and one AST four times (L3-only divergence).
  svc::ServiceOptions SO;
  SO.NumWorkers = 1;
  svc::CompileService Service(SO);
  std::string Source = makeProgram(0);
  for (auto _ : State) {
    for (unsigned Factor : {2u, 4u, 8u, 16u}) {
      svc::CompileJob Job = makeJob(Source);
      Job.Options.UnrollOpts.HeuristicFactor = Factor;
      svc::CompileResult R = Service.compile(Job);
      benchmark::DoNotOptimize(R.Succeeded);
    }
  }
  State.SetItemsProcessed(State.iterations() * 4);
}
BENCHMARK(BM_ServiceUnrollSweepSharesFrontend);

//===----------------------------------------------------------------------===//
// Batch throughput on the worker pool (the acceptance ratio: warm vs
// cold items/s at 4 workers).
//===----------------------------------------------------------------------===//

constexpr unsigned BatchSize = 32;

void BM_ServiceBatchCold4Workers(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 4;
  svc::CompileService Service(SO);
  for (auto _ : State) {
    std::vector<std::future<svc::CompileResult>> Futures;
    Futures.reserve(BatchSize);
    for (unsigned I = 0; I < BatchSize; ++I)
      Futures.push_back(
          Service.enqueue(makeJob(makeProgram(UniqueTag.fetch_add(1)))));
    for (auto &F : Futures)
      benchmark::DoNotOptimize(F.get().Succeeded);
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);
}
BENCHMARK(BM_ServiceBatchCold4Workers)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceBatchWarm4Workers(benchmark::State &State) {
  svc::ServiceOptions SO;
  SO.NumWorkers = 4;
  svc::CompileService Service(SO);
  // Eight distinct warm programs: requests spread over the cache instead
  // of serializing on one slot's publication.
  std::vector<svc::CompileJob> Jobs;
  for (unsigned I = 0; I < 8; ++I) {
    Jobs.push_back(makeJob(makeProgram(1000 + I)));
    Service.compile(Jobs.back()); // prime
  }
  for (auto _ : State) {
    std::vector<std::future<svc::CompileResult>> Futures;
    Futures.reserve(BatchSize);
    for (unsigned I = 0; I < BatchSize; ++I)
      Futures.push_back(Service.enqueue(Jobs[I % Jobs.size()]));
    for (auto &F : Futures)
      benchmark::DoNotOptimize(F.get().Succeeded);
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);
}
BENCHMARK(BM_ServiceBatchWarm4Workers)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

//===----------------------------------------------------------------------===//
// N-client scaling against one warm service.
//===----------------------------------------------------------------------===//

namespace {
std::once_flag ClientsPrimeFlag;
svc::CompileService *clientsService() {
  static svc::ServiceOptions SO = [] {
    svc::ServiceOptions O;
    O.NumWorkers = 1; // clients call compile() directly; no pool needed
    return O;
  }();
  static svc::CompileService Service(SO);
  return &Service;
}
} // namespace

void BM_ServiceWarmClients(benchmark::State &State) {
  svc::CompileService *Service = clientsService();
  std::call_once(ClientsPrimeFlag, [&] {
    for (unsigned I = 0; I < 8; ++I)
      Service->compile(makeJob(makeProgram(2000 + I)));
  });
  unsigned I = static_cast<unsigned>(State.thread_index());
  for (auto _ : State) {
    svc::CompileResult R =
        Service->compile(makeJob(makeProgram(2000 + (I++ % 8))));
    benchmark::DoNotOptimize(R.Trace.L3Hit);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServiceWarmClients)->ThreadRange(1, 8)->UseRealTime();

//===----------------------------------------------------------------------===//
// E17a: cold-start recovery. A fresh service process answering a known
// job mix — once with nothing (full recompiles), once warm-from-disk
// (every job served from the artifact store). The acceptance ratio is
// recovery >= 10x over cold on this mix.
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned RecoveryMix = 8;

/// Heavier than makeProgram: several pragma-annotated nests so a cold
/// compile pays real parse/sema/lowering/mid-end cost. This is the "job
/// mix" the recovery acceptance ratio is measured on.
svc::CompileJob recoveryJob(unsigned I) {
  std::string S = "#define N 32\n";
  S += "long seed" + std::to_string(I) + " = " + std::to_string(I) + ";\n";
  S += "int a[N * N]; int b[N * N]; int c[N * N];\n"
       "int main(void) {\n";
  for (int K = 0; K < 8; ++K) {
    std::string KS = std::to_string(K + 1);
    S += "  #pragma omp parallel for collapse(2)\n"
         "  for (int i = 0; i < N; i = i + 1)\n"
         "    for (int j = 0; j < N; j = j + 1)\n"
         "      c[i * N + j] = a[i * N + j] * " + KS + " + b[j * N + i];\n"
         "  #pragma omp unroll partial(16)\n"
         "  for (int k = 0; k < N * N; k = k + 1)\n"
         "    a[k] = c[k] + " + KS + ";\n"
         // Literal bounds: tile's shadow-node verifier rejects loop
         // bounds spelled via macro expansion (location outside the loop).
         "  #pragma omp tile sizes(4, 4)\n"
         "  for (int t1 = 0; t1 < 32; t1 = t1 + 1)\n"
         "    for (int t2 = 0; t2 < 32; t2 = t2 + 1)\n"
         "      b[t1 * 32 + t2] = b[t1 * 32 + t2] + a[t2 * 32 + t1];\n";
  }
  S += "  long sum = 0;\n"
       "  for (int k = 0; k < N * N; k = k + 1)\n"
       "    sum += a[k];\n"
       "  int out = sum;\n"
       "  return out;\n"
       "}\n";
  return makeJob(std::move(S));
}

/// One-time population of a store root with the recovery mix.
const std::string &recoveryStoreRoot() {
  static const std::string Root = [] {
    std::string R = std::filesystem::temp_directory_path().string() +
                    "/mcc_bench_store_" + std::to_string(::getpid());
    std::filesystem::remove_all(R);
    svc::ServiceOptions SO;
    SO.NumWorkers = 4;
    SO.DiskStorePath = R;
    svc::CompileService Service(SO);
    for (unsigned I = 0; I < RecoveryMix; ++I) {
      // A failing mix would persist (and replay) cheap failure verdicts,
      // silently turning the recovery ratio into a diagnostics benchmark.
      if (!Service.compile(recoveryJob(I)).Succeeded) {
        std::fprintf(stderr, "recovery mix job %u does not compile\n", I);
        std::abort();
      }
    }
    Service.shutdown(); // flushes the index
    return R;
  }();
  return Root;
}

void runColdStart(benchmark::State &State, const std::string &DiskRoot) {
  // Timed: answering the mix on a fresh service, synchronously — the
  // compile-vs-disk-load difference, not worker handoff latency (which
  // swamps the disk arm on small machines). Untimed: spawning and
  // joining the pool and scanning the store index, identical setup cost
  // in both configurations.
  for (auto _ : State) {
    State.PauseTiming();
    svc::ServiceOptions SO;
    SO.NumWorkers = 1;
    SO.DiskStorePath = DiskRoot; // empty = no persistence
    auto Service = std::make_unique<svc::CompileService>(SO);
    State.ResumeTiming();
    for (unsigned I = 0; I < RecoveryMix; ++I)
      benchmark::DoNotOptimize(Service->compile(recoveryJob(I)).Succeeded);
    State.PauseTiming();
    Service->shutdown();
    Service.reset();
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * RecoveryMix);
}

} // namespace

void BM_ServiceColdStartNoStore(benchmark::State &State) {
  runColdStart(State, "");
}
BENCHMARK(BM_ServiceColdStartNoStore)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceColdStartRecovery(benchmark::State &State) {
  runColdStart(State, recoveryStoreRoot());
}
BENCHMARK(BM_ServiceColdStartRecovery)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

//===----------------------------------------------------------------------===//
// E17b: multi-client socket throughput. One daemon (socket front end over
// a 4-worker service), N benchmark threads each holding a connection and
// driving warm jobs — round-trip (one in flight) and pipelined (a window
// of 8). Any dropped or failed job aborts the benchmark.
//===----------------------------------------------------------------------===//

namespace {

const std::string &daemonSocketPath() {
  static const std::string Path =
      std::filesystem::temp_directory_path().string() + "/mcc_bench_" +
      std::to_string(::getpid()) + ".sock";
  return Path;
}

svc::CompileService &daemonService() {
  static svc::ServiceOptions SO = [] {
    svc::ServiceOptions O;
    O.NumWorkers = 4;
    return O;
  }();
  static svc::CompileService Service(SO);
  return Service;
}

net::Server &daemonServer() {
  static net::ServerOptions NO = [] {
    net::ServerOptions O;
    O.SocketPath = daemonSocketPath();
    O.MaxPendingJobs = 4096; // the sweep wants throughput, not rejections
    O.PerClientInFlight = 64;
    return O;
  }();
  static net::Server Server(daemonService(), NO);
  return Server;
}

std::once_flag DaemonFlag;
std::vector<std::string> DaemonSources;

void ensureDaemon() {
  std::call_once(DaemonFlag, [] {
    for (unsigned I = 0; I < 8; ++I) {
      DaemonSources.push_back(makeProgram(4000 + I));
      svc::CompileJob Job = makeJob(DaemonSources.back());
      daemonService().compile(Job); // prime: clients measure the daemon,
                                    // not first-touch compiles
    }
    std::string Error;
    if (!daemonServer().start(Error))
      std::abort();
  });
}

int maxClientThreads() {
  return static_cast<int>(2 * std::max(1u, std::thread::hardware_concurrency()));
}

} // namespace

void BM_DaemonSocketRoundTrip(benchmark::State &State) {
  ensureDaemon();
  net::Client C;
  std::string Error;
  if (!C.connect(daemonSocketPath(), Error)) {
    State.SkipWithError("connect failed");
    return;
  }
  std::uint64_t Id = 0;
  std::size_t Mix = static_cast<std::size_t>(State.thread_index());
  for (auto _ : State) {
    const std::string &Src = DaemonSources[Mix++ % DaemonSources.size()];
    net::ClientEvent Ev;
    if (!C.submit(++Id, "bench.c", "", Src) || !C.next(Ev, Error) ||
        Ev.Type != net::MsgType::Result ||
        Ev.Result.Status != net::ResultStatus::Ok) {
      State.SkipWithError("dropped job"); // acceptance: zero of these
      return;
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DaemonSocketRoundTrip)
    ->ThreadRange(1, maxClientThreads())
    ->UseRealTime();

void BM_DaemonSocketPipelined(benchmark::State &State) {
  ensureDaemon();
  net::Client C;
  std::string Error;
  if (!C.connect(daemonSocketPath(), Error)) {
    State.SkipWithError("connect failed");
    return;
  }
  constexpr unsigned Window = 8;
  std::uint64_t Id = 0;
  unsigned InFlight = 0;
  std::size_t Mix = static_cast<std::size_t>(State.thread_index());
  auto awaitOne = [&]() -> bool {
    net::ClientEvent Ev;
    if (!C.next(Ev, Error) || Ev.Type != net::MsgType::Result ||
        Ev.Result.Status != net::ResultStatus::Ok)
      return false;
    --InFlight;
    return true;
  };
  for (auto _ : State) {
    const std::string &Src = DaemonSources[Mix++ % DaemonSources.size()];
    if (InFlight == Window && !awaitOne()) {
      State.SkipWithError("dropped job");
      return;
    }
    if (!C.submit(++Id, "bench.c", "", Src)) {
      State.SkipWithError("submit failed");
      return;
    }
    ++InFlight;
  }
  while (InFlight > 0)
    if (!awaitOne()) {
      State.SkipWithError("dropped job");
      return;
    }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DaemonSocketPipelined)
    ->ThreadRange(1, maxClientThreads())
    ->UseRealTime();

MCC_BENCHMARK_MAIN()
