//===--- ArtifactStore.h - On-disk content-addressed artifacts -*- C++ -*-===//
//
// Persistence layer under the CompileService's L3 cache: finished compile
// outcomes (verdict + rendered diagnostics + printed IR), keyed by the
// same content hash as the in-memory L3 level, stored as one file per key
// in a store directory that any number of daemons may share.
//
// Guarantees, in order of importance:
//
//  * Never a wrong artifact. The L3 key is a 64-bit FNV-1a hash — strong
//    enough for cache addressing, far too weak to trust a payload that
//    fails its own checks. Every file carries a versioned header with the
//    key, the payload lengths and a payload hash; any mismatch (magic,
//    version, key, length, hash, or a short read) degrades to a cache
//    miss, the file is unlinked, and `BadArtifacts` is counted. A
//    corrupted store can only make the daemon slower, not incorrect.
//
//  * Atomic publication. Artifacts are serialized to a temp file in the
//    same directory and rename(2)d into place, so readers (including
//    other daemons pointed at the same root) observe either the whole
//    artifact or none of it — never a torn write.
//
//  * Bounded size. The store keeps an in-memory LRU index (keys, sizes,
//    recency) and sweeps least-recently-used files whenever the byte
//    budget is exceeded. The index order is flushed to `index.v1` on
//    shutdown so LRU recency survives restarts; on startup the directory
//    scan is the ground truth (crash-safe) and the index file only
//    refines ordering.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SERVICE_ARTIFACTSTORE_H
#define MCC_SERVICE_ARTIFACTSTORE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mcc::svc {

/// The serialized L3 outcome: everything a daemon needs to answer a
/// compile request without redoing the pipeline. Deliberately *not* the
/// live in-memory artifact — ir::Module and bytecode hold raw pointers
/// into arena memory; what persists is the outcome contract (verdict,
/// diagnostics byte-for-byte, printed IR). Execution requests need a live
/// module and therefore recompile (see CompileService "stub promotion").
struct DiskArtifact {
  bool Failed = false;
  std::string DiagText; ///< rendered diagnostics, byte-identical to live
  std::string IRText;   ///< ir::printModule output; empty when Failed
};

struct DiskStoreStats {
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Misses{0};
  /// Files that existed but failed integrity verification (bad magic,
  /// version skew, key mismatch, truncation, payload-hash mismatch).
  /// Each one was unlinked and served as a miss.
  std::atomic<std::uint64_t> BadArtifacts{0};
  std::atomic<std::uint64_t> Stores{0};
  std::atomic<std::uint64_t> StoreFailures{0};
  std::atomic<std::uint64_t> Evictions{0};
  std::atomic<std::uint64_t> Entries{0};
  std::atomic<std::uint64_t> Bytes{0};
};

struct DiskStoreSnapshot {
  std::uint64_t Hits = 0, Misses = 0, BadArtifacts = 0, Stores = 0,
                StoreFailures = 0, Evictions = 0, Entries = 0, Bytes = 0;
};

struct ArtifactStoreOptions {
  std::string Root;                       ///< store directory (created)
  std::size_t BudgetBytes = 1ull << 30;   ///< LRU sweep threshold
};

class ArtifactStore {
public:
  /// On-disk format version; bumping it orphans (and eventually sweeps)
  /// every artifact written by older builds.
  static constexpr std::uint32_t FormatVersion = 1;

  explicit ArtifactStore(ArtifactStoreOptions Opts);
  ~ArtifactStore(); ///< flushes the index
  ArtifactStore(const ArtifactStore &) = delete;
  ArtifactStore &operator=(const ArtifactStore &) = delete;

  /// Returns the artifact stored under \p Key, or nullopt on miss or on
  /// any integrity failure (which also unlinks the offending file).
  std::optional<DiskArtifact> load(std::uint64_t Key);

  /// Publishes \p A under \p Key (write temp + rename). A key already
  /// present is not rewritten (content addressing: same key, same bytes).
  /// Returns false on I/O failure (counted, never fatal: the store is an
  /// accelerator, not a dependency).
  bool store(std::uint64_t Key, const DiskArtifact &A);

  /// True if the index currently knows \p Key (no file I/O).
  bool contains(std::uint64_t Key);

  /// Writes the LRU index to `<root>/index.v1` so recency ordering
  /// survives a restart. Called by the destructor and by daemon shutdown.
  void flushIndex();

  [[nodiscard]] DiskStoreSnapshot statsSnapshot() const;
  [[nodiscard]] const std::string &root() const { return Opts.Root; }

  /// Path of the object file for \p Key (tests corrupt/truncate it).
  [[nodiscard]] std::string objectPath(std::uint64_t Key) const;

private:
  void rebuildIndexLocked();
  void touchLocked(std::uint64_t Key);
  void dropLocked(std::uint64_t Key);
  void sweepOverBudgetLocked(std::uint64_t JustInserted);

  ArtifactStoreOptions Opts;
  DiskStoreStats Stats;

  struct IndexEntry {
    std::uint64_t FileBytes = 0;
    std::list<std::uint64_t>::iterator LRUPos;
  };
  std::mutex M;
  std::unordered_map<std::uint64_t, IndexEntry> Index;
  std::list<std::uint64_t> LRU; ///< front = most recent
  std::uint64_t IndexedBytes = 0;
  std::uint64_t TmpCounter = 0;
};

} // namespace mcc::svc

#endif // MCC_SERVICE_ARTIFACTSTORE_H
