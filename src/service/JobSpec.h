//===--- JobSpec.h - Textual compile-job specification ---------*- C++ -*-===//
//
// The job-spec word grammar shared by every front door to the compile
// service: the legacy minicc-serve job files ("[flags...] <file>", one
// per line), the daemon protocol's Submit frames (flags travel as the
// same words; the client ships the source bytes), and minicc-fuzz's
// corpus emission. One parser means one semantics: a flag word is parsed
// identically whether it arrived from a file, a socket, or a test.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SERVICE_JOBSPEC_H
#define MCC_SERVICE_JOBSPEC_H

#include "service/CompileService.h"

#include <string>
#include <vector>

namespace mcc::svc {

/// Splits \p Line on whitespace.
std::vector<std::string> splitJobWords(const std::string &Line);

/// Parses one flag word (everything in the job grammar except the file
/// operand) into \p Job. Returns false with \p Error set if \p Word is
/// not a recognized flag (including a word that does not start with '-').
bool parseJobFlagWord(const std::string &Word, CompileJob &Job,
                      std::string &Error);

/// Renders the non-default options of \p Job back into flag words (the
/// inverse of parseJobFlagWord, round-trip tested). This is what the
/// client sends over the wire.
std::string renderJobFlags(const CompileJob &Job);

/// Parses a full job line "[flags...] <file>". On success \p File holds
/// the (single) file operand; the caller decides how to load it. Returns
/// false with an empty \p Error for blank/comment lines, false with a
/// message for malformed ones.
bool parseJobSpecLine(const std::string &Line, CompileJob &Job,
                      std::string &File, std::string &Error);

} // namespace mcc::svc

#endif // MCC_SERVICE_JOBSPEC_H
