//===--- CompileService.cpp - Concurrent content-addressed compiles --------===//
//
// Producer implementations for the three cache levels, the request path
// that chains them (each level's producer consults the level below, so a
// warm request touches exactly one cache), and the worker pool.
//
//===----------------------------------------------------------------------===//
#include "service/CompileService.h"

#include "analysis/Analysis.h"
#include "runtime/KMPRuntime.h"
#include "support/ContentHash.h"
#include "support/JSONWriter.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <span>

namespace mcc::svc {

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

namespace {

std::uint64_t hashBool(std::uint64_t H, bool B) {
  return hashCombine(H, B ? 1 : 0);
}

} // namespace

std::uint64_t tokenStreamKey(std::string_view Source,
                             const CompilerOptions &Options) {
  std::uint64_t H = hashBytes(Source);
  H = hashCombine(H, 0x4c31); // level salt
  H = hashBool(H, Options.LangOpts.OpenMP);
  H = hashBool(H, Options.SuppressWarnings);
  H = hashBool(H, Options.WarningsAsErrors);
  H = hashCombine(H, Options.Defines.size());
  for (const auto &[Name, Value] : Options.Defines) {
    H = hashBytes(Name, H);
    H = hashBytes(Value, hashCombine(H, '='));
  }
  H = hashCombine(H, Options.IncludeDirs.size());
  for (const std::string &Dir : Options.IncludeDirs)
    H = hashBytes(Dir, H);
  // NOT hashed: the registration path (content addressing) and
  // OpenMPDefaultNumThreads (runtime-only; see header).
  return H;
}

std::uint64_t astKey(std::uint64_t L1Key, const CompilerOptions &Options) {
  std::uint64_t H = hashCombine(L1Key, 0x4c32);
  // Sema builds different trees per lowering mode: shadow-AST helper
  // expressions vs OMPCanonicalLoop wrappers.
  H = hashBool(H, Options.LangOpts.OpenMPEnableIRBuilder);
  H = hashCombine(H, Options.LangOpts.HeuristicUnrollFactor);
  H = hashBool(H, Options.RunASTVerifier);
  H = hashBool(H, Options.RunAnalyzers);
  return H;
}

std::uint64_t moduleKey(std::uint64_t L2Key, const CompilerOptions &Options) {
  std::uint64_t H = hashCombine(L2Key, 0x4c33);
  H = hashBool(H, Options.RunVerifier);
  H = hashBool(H, Options.RunMidend);
  H = hashCombine(H, static_cast<std::uint64_t>(Options.UnrollOpts.Strat));
  H = hashCombine(H, Options.UnrollOpts.HeuristicFactor);
  H = hashCombine(H, Options.UnrollOpts.HeuristicSizeLimit);
  H = hashCombine(H, Options.UnrollOpts.FullUnrollMax);
  return H;
}

//===----------------------------------------------------------------------===//
// Producers
//===----------------------------------------------------------------------===//

namespace {

std::string renderDiags(const StoringDiagnosticConsumer &Store,
                        const SourceManager &SM) {
  std::string Out;
  TextDiagnosticPrinter Printer(Out, &SM);
  for (const Diagnostic &D : Store.getDiagnostics())
    Printer.handleDiagnostic(D);
  return Out;
}

/// Rough retained size of an IR module for the LRU byte budget.
std::size_t estimateModuleBytes(const ir::Module &M) {
  std::size_t Bytes = 1024;
  for (const auto &F : M.functions()) {
    Bytes += 256;
    for (const auto &B : F->blocks())
      Bytes += 64 + B->instructions().size() * 96;
  }
  for (const auto &G : M.globals())
    Bytes += 128 + G->getSizeInBytes();
  return Bytes;
}

} // namespace

std::string ModuleArtifact::irText() const {
  if (DiskLoaded)
    return IRText;
  return Mod ? ir::printModule(*Mod) : std::string();
}

std::shared_ptr<TokenStreamArtifact>
CompileService::produceTokens(const CompileJob &Job) {
  auto A = std::make_shared<TokenStreamArtifact>();
  A->Diags.setSuppressAllWarnings(Job.Options.SuppressWarnings);
  A->Diags.setWarningsAsErrors(Job.Options.WarningsAsErrors);
  A->FM.addVirtualFile(Job.Path, Job.Source);
  A->PP = std::make_unique<Preprocessor>(A->FM, A->SM, A->Diags);
  A->PP->setOpenMPEnabled(Job.Options.LangOpts.OpenMP);
  for (const auto &[Name, Value] : Job.Options.Defines)
    A->PP->defineCommandLineMacro(Name, Value);
  for (const std::string &Dir : Job.Options.IncludeDirs)
    A->PP->addIncludeDir(Dir);

  if (!A->PP->enterMainFile(Job.Path)) {
    A->Diags.report(SourceLocation(), diag::err_pp_file_not_found) << Job.Path;
    A->Failed = true;
  } else {
    Token Tok;
    do {
      A->PP->lex(Tok);
      A->Tokens.push_back(Tok);
    } while (!Tok.is(tok::eof));
    A->Failed = A->Diags.hasErrorOccurred();
  }
  A->DiagText = renderDiags(A->DiagStore, A->SM);
  A->Bytes = sizeof(TokenStreamArtifact) + Job.Source.size() +
             A->Tokens.capacity() * sizeof(Token) + 4096;
  return A;
}

std::shared_ptr<ASTArtifact>
CompileService::produceAST(std::shared_ptr<const TokenStreamArtifact> Toks,
                           const CompilerOptions &Options) {
  auto A = std::make_shared<ASTArtifact>();
  A->LangOpts = Options.LangOpts;
  A->Tokens = Toks;
  if (Toks->Failed) {
    A->Failed = true;
    A->DiagText = Toks->DiagText;
    A->Bytes = sizeof(ASTArtifact) + 256;
    return A;
  }

  // Parse by *replaying* the cached token stream: a fresh Preprocessor in
  // replay mode never lexes, so the dummy FileManager is never consulted
  // and the shared SourceManager is only read (rendering locations).
  // Diagnostics are per-request state and belong to this production run.
  StoringDiagnosticConsumer Store;
  DiagnosticsEngine Diags(&Store);
  Diags.setSuppressAllWarnings(Options.SuppressWarnings);
  Diags.setWarningsAsErrors(Options.WarningsAsErrors);
  FileManager DummyFM;
  // The artifact's SourceManager is shared between concurrent replays;
  // Preprocessor wants a mutable reference but never mutates it in
  // replay mode (all includes were folded into the recorded stream).
  auto &SM = const_cast<SourceManager &>(Toks->SM);
  Preprocessor RPP(DummyFM, SM, Diags);
  RPP.setOpenMPEnabled(Options.LangOpts.OpenMP);
  RPP.enterTokenStream(std::span<const Token>(Toks->Tokens));

  {
    Sema Actions(A->Ctx, Diags, A->LangOpts);
    Parser P(RPP, Actions);
    A->TU = P.parseTranslationUnit();
  }
  bool OK = A->TU && !Diags.hasErrorOccurred();
  if (OK && (Options.RunASTVerifier || Options.RunAnalyzers)) {
    analysis::AnalysisManager AM(A->Ctx, Diags);
    analysis::registerDefaultAnalyses(AM, Options.RunAnalyzers,
                                      Options.RunASTVerifier);
    AM.run(A->TU);
    OK = !Diags.hasErrorOccurred();
  }
  A->Failed = !OK;
  A->DiagText = Toks->DiagText + renderDiags(Store, Toks->SM);
  A->Bytes =
      sizeof(ASTArtifact) + A->Ctx.getTotalAllocatedBytes() + 4096;
  return A;
}

std::shared_ptr<ModuleArtifact>
CompileService::produceModule(std::shared_ptr<const ASTArtifact> AST,
                              const CompilerOptions &Options) {
  auto A = std::make_shared<ModuleArtifact>();
  A->AST = AST;
  if (AST->Failed) {
    A->Failed = true;
    A->DiagText = AST->DiagText;
    A->Bytes = sizeof(ModuleArtifact) + 256;
    return A;
  }

  StoringDiagnosticConsumer Store;
  DiagnosticsEngine Diags(&Store);
  A->Mod = std::make_unique<ir::Module>("main");
  // The artifact's LangOpts (not the request's): the cached module is a
  // pure function of the L2 artifact plus the L3 knobs. Every LangOption
  // codegen reads is part of the L2 key, so the distinction is invisible
  // to clients.
  CodeGenModule CGM(AST->Ctx, AST->LangOpts, *A->Mod);
  CGM.emitTranslationUnit(AST->TU);

  bool OK = true;
  if (Options.RunVerifier) {
    std::string Err = ir::verifyModule(*A->Mod);
    if (!Err.empty()) {
      Diags.report(SourceLocation(), diag::err_codegen_unsupported)
          << ("invalid IR produced:\n" + Err);
      OK = false;
    }
  }
  if (OK && Options.RunMidend) {
    A->MidendStats = midend::runDefaultPipeline(*A->Mod, Options.UnrollOpts);
    if (Options.RunVerifier) {
      std::string Err = ir::verifyModule(*A->Mod);
      if (!Err.empty()) {
        Diags.report(SourceLocation(), diag::err_codegen_unsupported)
            << ("mid-end produced invalid IR:\n" + Err);
        OK = false;
      }
    }
  }
  A->Failed = !OK;
  A->DiagText = AST->DiagText + renderDiags(Store, AST->Tokens->SM);
  A->Bytes = sizeof(ModuleArtifact) + estimateModuleBytes(*A->Mod);
  if (OK) {
    // Translate to bytecode while we are already the single-flight
    // producer: every execution (and every engine built from this
    // artifact) shares the one translation. Engine choice is not part of
    // the L3 key precisely because the translation is engine-independent.
    A->Bytecode = interp::bc::compileToBytecode(*A->Mod);
    A->Bytes += A->Bytecode->byteSize();
  }
  return A;
}

//===----------------------------------------------------------------------===//
// Request path
//===----------------------------------------------------------------------===//

std::shared_ptr<ModuleArtifact>
CompileService::produceModuleChain(const CompileJob &Job, std::uint64_t K1,
                                   std::uint64_t K2, CacheTrace &Trace) {
  std::shared_ptr<const ASTArtifact> AST =
      L2Cache.getOrProduce(K2, Trace.L2Hit, [&] {
        std::shared_ptr<const TokenStreamArtifact> Toks = L1Cache.getOrProduce(
            K1, Trace.L1Hit, [&] { return produceTokens(Job); });
        return produceAST(std::move(Toks), Job.Options);
      });
  return produceModule(std::move(AST), Job.Options);
}

CompileResult CompileService::compile(const CompileJob &Job) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  CompileResult Res;

  const std::uint64_t K1 = tokenStreamKey(Job.Source, Job.Options);
  const std::uint64_t K2 = astKey(K1, Job.Options);
  const std::uint64_t K3 = moduleKey(K2, Job.Options);

  // Lazy chain: each level's producer consults the level below, so a hit
  // at level N leaves the levels below untouched (their stats do not
  // move). A thread never holds a cache lock while producing, so the
  // nesting cannot deadlock (the consultation order is strictly
  // L3 -> disk -> L2 -> L1).
  std::shared_ptr<const ModuleArtifact> Mod = L3Cache.getOrProduce(
      K3, Res.Trace.L3Hit, [&]() -> std::shared_ptr<ModuleArtifact> {
        // The disk store sits directly under the in-memory L3: a disk
        // hit skips the whole pipeline. Execute requests need a live
        // ir::Module, which the disk record cannot provide, so they go
        // straight to a real compile (store() below dedupes the publish).
        if (Disk && !Job.Execute) {
          if (std::optional<DiskArtifact> DA = Disk->load(K3)) {
            Res.Trace.DiskHit = true;
            auto A = std::make_shared<ModuleArtifact>();
            A->DiskLoaded = true;
            A->Failed = DA->Failed;
            A->DiagText = std::move(DA->DiagText);
            A->IRText = std::move(DA->IRText);
            A->Bytes = sizeof(ModuleArtifact) + A->DiagText.size() +
                       A->IRText.size();
            return A;
          }
        }
        std::shared_ptr<ModuleArtifact> A =
            produceModuleChain(Job, K1, K2, Res.Trace);
        if (Disk) {
          DiskArtifact DA;
          DA.Failed = A->Failed;
          DA.DiagText = A->DiagText;
          if (!A->Failed)
            DA.IRText = ir::printModule(*A->Mod);
          Disk->store(K3, DA);
        }
        return A;
      });

  // Stub promotion: an Execute request that found a disk-loaded outcome
  // in L3 must recompile (no live module to run). The real artifact then
  // replaces the stub so every later request — execute or not — gets the
  // live module. Concurrent promoters may compile redundantly; update()
  // keeps the race benign and the window closes after one promotion.
  if (Job.Execute && Mod && Mod->DiskLoaded) {
    std::shared_ptr<ModuleArtifact> Real =
        produceModuleChain(Job, K1, K2, Res.Trace);
    L3Cache.update(K3, Real);
    Mod = std::move(Real);
  }

  // Cascade the trace: a hit at level N means the request was served at
  // or above every lower level too.
  if (Res.Trace.L3Hit)
    Res.Trace.L2Hit = true;
  if (Res.Trace.L2Hit)
    Res.Trace.L1Hit = true;

  Res.Module = Mod;
  Res.Succeeded = Mod && Mod->ok();
  Res.Diagnostics = Mod ? Mod->DiagText : "compile service internal error\n";

  if (Res.Succeeded && Job.Execute) {
    const ir::Function *Main = Mod->module().getFunction("main");
    if (!Main || Main->isDeclaration()) {
      Res.Succeeded = false;
      Res.Diagnostics += "error: no main() to execute\n";
      return Res;
    }
    // The only option outside every cache key: thread width is applied to
    // the shared runtime at execution time, never baked into the module.
    rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();
    RT.setDefaultNumThreads(Job.Options.LangOpts.OpenMPDefaultNumThreads);
    interp::ExecutionEngine EE(Mod->module(), Job.Options.ExecEngine,
                               Mod->Bytecode);
    Res.ExitValue = EE.runFunction("main", {}).I;
    Res.Executed = true;
    Executions.fetch_add(1, std::memory_order_relaxed);
  }
  return Res;
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

CompileService::CompileService(ServiceOptions O)
    : Opts(O),
      L1Cache(Opts.CacheBudgetBytes / 4, L1Stats),
      L2Cache(Opts.CacheBudgetBytes * 35 / 100, L2Stats),
      L3Cache(Opts.CacheBudgetBytes * 40 / 100, L3Stats) {
  if (!Opts.DiskStorePath.empty()) {
    ArtifactStoreOptions AO;
    AO.Root = Opts.DiskStorePath;
    AO.BudgetBytes = Opts.DiskBudgetBytes;
    Disk = std::make_unique<ArtifactStore>(std::move(AO));
  }
  unsigned N = std::max(1u, Opts.NumWorkers);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService() { shutdown(); }

void CompileService::workerLoop() {
  for (;;) {
    std::packaged_task<CompileResult()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and the queue has drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

std::future<CompileResult> CompileService::enqueue(CompileJob Job) {
  std::packaged_task<CompileResult()> Task(
      [this, J = std::move(Job)] { return compile(J); });
  std::future<CompileResult> F = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // The pool is gone; serve the caller inline rather than returning a
      // future that would never become ready.
      Task();
      return F;
    }
    Queue.push_back(std::move(Task));
  }
  QueueCV.notify_one();
  return F;
}

void CompileService::enqueueAsync(CompileJob Job,
                                  std::function<void(CompileResult)> Done) {
  std::packaged_task<CompileResult()> Task(
      [this, J = std::move(Job), D = std::move(Done)] {
        CompileResult R = compile(J);
        if (D)
          D(R);
        return R;
      });
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      Task(); // pool gone: serve (and notify) inline
      return;
    }
    Queue.push_back(std::move(Task));
  }
  QueueCV.notify_one();
}

void CompileService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping && Workers.empty())
      return;
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  // Persist the disk store's recency ordering now that no producer can
  // publish anymore.
  if (Disk)
    Disk->flushIndex();
  // Quiesce the shared OpenMP runtime: joins the hot-team worker pool so
  // a service shutdown leaves no background threads (the pool respawns
  // lazily if the process forks again).
  rt::OpenMPRuntime::get().shutdown();
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

namespace {

CacheLevelSnapshot snapshotLevel(const CacheLevelStats &S) {
  CacheLevelSnapshot Out;
  Out.Hits = S.Hits.load(std::memory_order_relaxed);
  Out.Misses = S.Misses.load(std::memory_order_relaxed);
  Out.InFlightWaits = S.InFlightWaits.load(std::memory_order_relaxed);
  Out.Evictions = S.Evictions.load(std::memory_order_relaxed);
  Out.Entries = S.Entries.load(std::memory_order_relaxed);
  Out.Bytes = S.Bytes.load(std::memory_order_relaxed);
  return Out;
}

void renderLevel(std::string &Out, const char *Name,
                 const CacheLevelSnapshot &S) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%s: hits=%llu misses=%llu waits=%llu evictions=%llu "
                "entries=%llu bytes=%llu\n",
                Name, static_cast<unsigned long long>(S.Hits),
                static_cast<unsigned long long>(S.Misses),
                static_cast<unsigned long long>(S.InFlightWaits),
                static_cast<unsigned long long>(S.Evictions),
                static_cast<unsigned long long>(S.Entries),
                static_cast<unsigned long long>(S.Bytes));
  Out += Buf;
}

} // namespace

ServiceStatsSnapshot CompileService::statsSnapshot() const {
  ServiceStatsSnapshot S;
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.Executions = Executions.load(std::memory_order_relaxed);
  S.L1 = snapshotLevel(L1Stats);
  S.L2 = snapshotLevel(L2Stats);
  S.L3 = snapshotLevel(L3Stats);
  if (Disk) {
    S.DiskEnabled = true;
    S.Disk = Disk->statsSnapshot();
  }
  return S;
}

std::string CompileService::renderStats() const {
  ServiceStatsSnapshot S = statsSnapshot();
  std::string Out = "== compile service statistics ==\n";
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "requests: total=%llu executed=%llu workers=%u\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.Executions),
                std::max(1u, Opts.NumWorkers));
  Out += Buf;
  renderLevel(Out, "L1 tokens", S.L1);
  renderLevel(Out, "L2 ast   ", S.L2);
  renderLevel(Out, "L3 module", S.L3);
  if (S.DiskEnabled) {
    // Appended only when a store is configured, keeping the established
    // text format byte-identical for disk-less deployments.
    char DBuf[256];
    std::snprintf(DBuf, sizeof(DBuf),
                  "disk     : hits=%llu misses=%llu bad=%llu stores=%llu "
                  "evictions=%llu entries=%llu bytes=%llu\n",
                  static_cast<unsigned long long>(S.Disk.Hits),
                  static_cast<unsigned long long>(S.Disk.Misses),
                  static_cast<unsigned long long>(S.Disk.BadArtifacts),
                  static_cast<unsigned long long>(S.Disk.Stores),
                  static_cast<unsigned long long>(S.Disk.Evictions),
                  static_cast<unsigned long long>(S.Disk.Entries),
                  static_cast<unsigned long long>(S.Disk.Bytes));
    Out += DBuf;
  }
  return Out;
}

namespace {

void writeLevelJSON(json::Writer &W, const char *Name,
                    const CacheLevelSnapshot &S) {
  W.key(Name);
  W.beginObject();
  W.field("hits", S.Hits);
  W.field("misses", S.Misses);
  W.field("waits", S.InFlightWaits);
  W.field("evictions", S.Evictions);
  W.field("entries", S.Entries);
  W.field("bytes", S.Bytes);
  W.endObject();
}

} // namespace

std::string CompileService::renderStatsJSON() const {
  ServiceStatsSnapshot S = statsSnapshot();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.field("requests", S.Requests);
  W.field("executions", S.Executions);
  W.field("workers", static_cast<std::uint64_t>(std::max(1u, Opts.NumWorkers)));
  writeLevelJSON(W, "l1_tokens", S.L1);
  writeLevelJSON(W, "l2_ast", S.L2);
  writeLevelJSON(W, "l3_module", S.L3);
  W.field("disk_enabled", S.DiskEnabled);
  if (S.DiskEnabled) {
    W.key("disk");
    W.beginObject();
    W.field("hits", S.Disk.Hits);
    W.field("misses", S.Disk.Misses);
    W.field("bad_artifacts", S.Disk.BadArtifacts);
    W.field("stores", S.Disk.Stores);
    W.field("store_failures", S.Disk.StoreFailures);
    W.field("evictions", S.Disk.Evictions);
    W.field("entries", S.Disk.Entries);
    W.field("bytes", S.Disk.Bytes);
    W.endObject();
  }
  W.endObject();
  Out += '\n';
  return Out;
}

} // namespace mcc::svc
