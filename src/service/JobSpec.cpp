//===--- JobSpec.cpp - Textual compile-job specification -------------------===//
#include "service/JobSpec.h"

#include <cstring>
#include <sstream>

namespace mcc::svc {

namespace {

bool parseU64Flag(const std::string &Arg, const char *Prefix,
                  std::uint64_t &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + Len, nullptr, 10);
  return true;
}

} // namespace

std::vector<std::string> splitJobWords(const std::string &Line) {
  std::istringstream In(Line);
  std::vector<std::string> Words;
  for (std::string W; In >> W;)
    Words.push_back(std::move(W));
  return Words;
}

bool parseJobFlagWord(const std::string &W, CompileJob &Job,
                      std::string &Error) {
  std::uint64_t N = 0;
  if (W == "-fopenmp")
    Job.Options.LangOpts.OpenMP = true;
  else if (W == "-fno-openmp")
    Job.Options.LangOpts.OpenMP = false;
  else if (W == "-fopenmp-enable-irbuilder")
    Job.Options.LangOpts.OpenMPEnableIRBuilder = true;
  else if (W == "-O1")
    Job.Options.RunMidend = true;
  else if (W == "-run")
    Job.Execute = true;
  else if (W == "--analyze" || W == "-analyze")
    Job.Options.RunAnalyzers = true;
  else if (W.rfind("--analyze=", 0) == 0 || W.rfind("-analyze=", 0) == 0) {
    std::string List = W.substr(W.find('=') + 1);
    std::size_t Pos = 0;
    while (Pos <= List.size()) {
      std::size_t Comma = List.find(',', Pos);
      std::string Name = List.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (!Name.empty())
        Job.Options.AnalyzePasses.push_back(Name);
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
  } else if (W == "-w")
    Job.Options.SuppressWarnings = true;
  else if (W == "-Werror")
    Job.Options.WarningsAsErrors = true;
  else if (parseU64Flag(W, "-num-threads=", N))
    Job.Options.LangOpts.OpenMPDefaultNumThreads = static_cast<unsigned>(N);
  else if (parseU64Flag(W, "-unroll-factor=", N))
    Job.Options.UnrollOpts.HeuristicFactor = static_cast<unsigned>(N);
  else if (W.rfind("-exec-engine=", 0) == 0) {
    if (!interp::parseExecEngineKind(W.substr(std::strlen("-exec-engine=")),
                                     Job.Options.ExecEngine)) {
      Error = "invalid -exec-engine (expected 'walker', 'bytecode', "
              "'native', or 'tiered'): " +
              W;
      return false;
    }
  } else if (W.rfind("-D", 0) == 0 && W.size() > 2) {
    std::string Def = W.substr(2);
    std::size_t Eq = Def.find('=');
    if (Eq == std::string::npos)
      Job.Options.Defines.emplace_back(Def, "1");
    else
      Job.Options.Defines.emplace_back(Def.substr(0, Eq), Def.substr(Eq + 1));
  } else {
    Error = "unknown job flag: " + W;
    return false;
  }
  return true;
}

std::string renderJobFlags(const CompileJob &Job) {
  const CompileJob Defaults;
  std::string Out;
  auto Word = [&Out](const std::string &W) {
    if (!Out.empty())
      Out += ' ';
    Out += W;
  };
  if (!Job.Options.LangOpts.OpenMP)
    Word("-fno-openmp");
  if (Job.Options.LangOpts.OpenMPEnableIRBuilder)
    Word("-fopenmp-enable-irbuilder");
  if (Job.Options.RunMidend)
    Word("-O1");
  if (Job.Execute)
    Word("-run");
  if (Job.Options.RunAnalyzers)
    Word("--analyze");
  if (!Job.Options.AnalyzePasses.empty()) {
    std::string List;
    for (const std::string &P : Job.Options.AnalyzePasses) {
      if (!List.empty())
        List += ',';
      List += P;
    }
    Word("--analyze=" + List);
  }
  if (Job.Options.SuppressWarnings)
    Word("-w");
  if (Job.Options.WarningsAsErrors)
    Word("-Werror");
  if (Job.Options.LangOpts.OpenMPDefaultNumThreads !=
      Defaults.Options.LangOpts.OpenMPDefaultNumThreads)
    Word("-num-threads=" +
         std::to_string(Job.Options.LangOpts.OpenMPDefaultNumThreads));
  if (Job.Options.UnrollOpts.HeuristicFactor !=
      Defaults.Options.UnrollOpts.HeuristicFactor)
    Word("-unroll-factor=" +
         std::to_string(Job.Options.UnrollOpts.HeuristicFactor));
  if (Job.Options.ExecEngine != Defaults.Options.ExecEngine)
    Word(std::string("-exec-engine=") +
         interp::execEngineKindName(Job.Options.ExecEngine));
  for (const auto &[Name, Value] : Job.Options.Defines)
    Word(Value == "1" ? "-D" + Name : "-D" + Name + "=" + Value);
  return Out;
}

bool parseJobSpecLine(const std::string &Line, CompileJob &Job,
                      std::string &File, std::string &Error) {
  Error.clear();
  std::vector<std::string> Words = splitJobWords(Line);
  if (Words.empty() || Words.front()[0] == '#')
    return false;

  File.clear();
  for (const std::string &W : Words) {
    if (!W.empty() && W[0] == '-') {
      if (!parseJobFlagWord(W, Job, Error))
        return false;
    } else if (File.empty())
      File = W;
    else {
      Error = "more than one file on a job line: " + W;
      return false;
    }
  }
  if (File.empty()) {
    Error = "job line has no file";
    return false;
  }
  return true;
}

} // namespace mcc::svc
