//===--- CompileService.h - Concurrent content-addressed compiles -*- C++ -*-===//
//
// An in-process compile server over the whole pipeline of the paper's
// Fig. 1. Many clients submit (source, options) jobs concurrently; the
// service answers through a content-addressed three-level cache that
// mirrors the pipeline's layering:
//
//   L1  (source bytes, preprocessor options)   -> token stream
//   L2  (L1 key, language/OpenMP options)      -> AST + Sema artifacts
//   L3  (L2 key, codegen mode + mid-end knobs) -> finished ir::Module
//
// Keys are pure content hashes: the *path* a buffer is registered under
// never participates, so the same source text submitted under different
// file names shares one L1 chain. Hashing happens *before* lexing — any
// byte difference (even whitespace) is a different program as far as the
// cache is concerned; token-level canonicalization would break the
// replay guarantee that a cached stream is bit-for-bit what the lexer
// produced. `LangOptions::OpenMPDefaultNumThreads` is deliberately in NO
// key: it is consumed by the runtime at execution time and never appears
// in IR, so thread-count sweeps over one program all hit L3.
//
// Each level is an LRU cache with a byte budget and per-key
// single-flight: the first requester of a missing key becomes its
// producer while concurrent requesters for the same key block on the
// producer's slot instead of compiling redundantly (counted as
// `waits` in the statistics). Compile *failures* are artifacts too —
// deterministic inputs fail deterministically, so error results are
// cached like successes.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SERVICE_COMPILESERVICE_H
#define MCC_SERVICE_COMPILESERVICE_H

#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "service/ArtifactStore.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mcc::svc {

//===----------------------------------------------------------------------===//
// Cached artifacts
//===----------------------------------------------------------------------===//

/// L1: a fully preprocessed token stream, together with everything the
/// tokens point into. Token text is a string_view into MemoryBuffers owned
/// by the FileManager (source files) and into strings owned by the
/// Preprocessor (macro-expansion spellings), and token locations resolve
/// through the SourceManager — so the artifact owns all four, plus the
/// diagnostics of the production run.
struct TokenStreamArtifact {
  FileManager FM;
  SourceManager SM;
  StoringDiagnosticConsumer DiagStore;
  DiagnosticsEngine Diags{&DiagStore};
  std::unique_ptr<Preprocessor> PP;
  std::vector<Token> Tokens;

  bool Failed = false;     ///< lexing/preprocessing reported an error
  std::string DiagText;    ///< rendered diagnostics of the production run
  std::size_t Bytes = 0;   ///< retained-size estimate for the LRU budget

  [[nodiscard]] bool ok() const { return !Failed; }
};

/// L2: the built AST. Nodes live in the artifact's ASTContext arena; the
/// token artifact is retained because identifier spellings (string_views)
/// and source locations still point into its buffers. Sema itself is
/// dropped after parsing — the AST is immutable from here on.
struct ASTArtifact {
  std::shared_ptr<const TokenStreamArtifact> Tokens;
  LangOptions LangOpts; ///< options the AST was built under (stable copy)
  ASTContext Ctx;
  TranslationUnitDecl *TU = nullptr;

  bool Failed = false;
  std::string DiagText; ///< L1 diagnostics + parse/sema/analysis diagnostics
  std::size_t Bytes = 0;

  [[nodiscard]] bool ok() const { return !Failed; }
};

/// L3: the finished IR module (post-CodeGen, post-mid-end when enabled).
/// Execution engines take `const ir::Module &`, so one cached module can
/// back any number of concurrent executions.
struct ModuleArtifact {
  std::shared_ptr<const ASTArtifact> AST;
  std::unique_ptr<ir::Module> Mod;
  midend::PipelineStats MidendStats;
  /// Bytecode translation of Mod, compiled once at production time so
  /// every Execute against this artifact — and every ExecutionEngine a
  /// client builds from module() — skips re-translation. Null when the
  /// compile failed. Engine-independent (global addresses stay
  /// relocations), hence shareable across engines and threads.
  std::shared_ptr<const interp::bc::BytecodeModule> Bytecode;

  /// Loaded from the on-disk ArtifactStore: the recorded outcome only
  /// (verdict + diagnostics + printed IR in IRText); Mod/Bytecode are
  /// null and module() must not be called. An Execute request against a
  /// disk-loaded artifact triggers a real compile that replaces this
  /// entry ("stub promotion", see CompileService::compile).
  bool DiskLoaded = false;
  std::string IRText; ///< printed IR for disk artifacts; empty otherwise

  bool Failed = false;
  std::string DiagText;
  std::size_t Bytes = 0;

  [[nodiscard]] bool ok() const { return !Failed; }
  [[nodiscard]] bool hasLiveModule() const { return Mod != nullptr; }
  [[nodiscard]] const ir::Module &module() const { return *Mod; }
  /// Printed IR regardless of provenance (live module or disk record).
  [[nodiscard]] std::string irText() const;
};

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

/// L1 key: source bytes + everything that changes the token stream
/// (OpenMP pragma recognition, -D defines, include search path) or the
/// severity of production diagnostics (-w, -Werror). The registration
/// path is deliberately excluded.
std::uint64_t tokenStreamKey(std::string_view Source,
                             const CompilerOptions &Options);

/// L2 key: L1 key + options consumed by Parser/Sema/analyses. Includes
/// OpenMPEnableIRBuilder because Sema builds different trees per mode
/// (shadow-AST helpers vs OMPCanonicalLoop).
std::uint64_t astKey(std::uint64_t L1Key, const CompilerOptions &Options);

/// L3 key: L2 key + codegen/mid-end knobs (verifier, -O1 pipeline and its
/// unroll strategy/factors).
std::uint64_t moduleKey(std::uint64_t L2Key, const CompilerOptions &Options);

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

struct CacheLevelStats {
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Misses{0};
  /// Requests that found their key mid-production and blocked on the
  /// producer instead of compiling redundantly (single-flight dedup).
  std::atomic<std::uint64_t> InFlightWaits{0};
  std::atomic<std::uint64_t> Evictions{0};
  std::atomic<std::uint64_t> Entries{0};
  std::atomic<std::uint64_t> Bytes{0};
};

struct CacheLevelSnapshot {
  std::uint64_t Hits = 0, Misses = 0, InFlightWaits = 0, Evictions = 0,
                Entries = 0, Bytes = 0;
};

struct ServiceStatsSnapshot {
  std::uint64_t Requests = 0;
  std::uint64_t Executions = 0;
  CacheLevelSnapshot L1, L2, L3;
  /// On-disk store counters; meaningful only when DiskEnabled.
  bool DiskEnabled = false;
  DiskStoreSnapshot Disk;
};

//===----------------------------------------------------------------------===//
// Single-flight LRU cache
//===----------------------------------------------------------------------===//

/// One level of the compilation cache: key -> shared artifact, LRU
/// eviction against a byte budget, and per-key single-flight production.
/// The cache mutex is never held while a producer runs, so a producer may
/// safely consult the next cache level down.
template <typename ArtifactT> class ArtifactCache {
public:
  ArtifactCache(std::size_t BudgetBytes, CacheLevelStats &Stats)
      : Budget(BudgetBytes), Stats(Stats) {}

  /// Returns the artifact for \p Key, producing it via \p Produce on a
  /// miss. Concurrent calls with the same key block until the first
  /// caller publishes (\p WasHit is true for them: they were served a
  /// cached result they did not build). \p Produce runs without the
  /// cache lock.
  std::shared_ptr<ArtifactT>
  getOrProduce(std::uint64_t Key, bool &WasHit,
               const std::function<std::shared_ptr<ArtifactT>()> &Produce) {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      auto It = Slots.find(Key);
      if (It == Slots.end())
        break;
      std::shared_ptr<Slot> S = It->second;
      if (!S->Building) {
        LRU.splice(LRU.begin(), LRU, S->LRUPos);
        Stats.Hits.fetch_add(1, std::memory_order_relaxed);
        WasHit = true;
        return S->Artifact;
      }
      Stats.InFlightWaits.fetch_add(1, std::memory_order_relaxed);
      S->Ready.wait(Lock, [&] { return !S->Building; });
      if (S->Artifact) {
        WasHit = true;
        return S->Artifact;
      }
      // The producer died without publishing (exception); its slot was
      // removed. Loop and race to become the new producer.
    }

    auto S = std::make_shared<Slot>();
    Slots.emplace(Key, S);
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    WasHit = false;
    Lock.unlock();

    std::shared_ptr<ArtifactT> Art;
    try {
      Art = Produce();
    } catch (...) {
      Lock.lock();
      Slots.erase(Key);
      S->Building = false;
      S->Ready.notify_all();
      throw;
    }

    Lock.lock();
    S->Artifact = Art;
    S->Building = false;
    S->LRUPos = LRU.insert(LRU.begin(), Key);
    BytesCached += Art->Bytes;
    Stats.Entries.fetch_add(1, std::memory_order_relaxed);
    evictOverBudgetLocked(Key);
    Stats.Bytes.store(BytesCached, std::memory_order_relaxed);
    S->Ready.notify_all();
    return Art;
  }

private:
public:
  /// Replaces the artifact published under \p Key (or inserts it if the
  /// key was evicted meanwhile). Used by stub promotion: an Execute
  /// request that found a disk-loaded outcome recompiles for real and
  /// upgrades the cached entry so later requests get the live module. A
  /// key still mid-production is left alone (the producer will publish).
  void update(std::uint64_t Key, std::shared_ptr<ArtifactT> Art) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(Key);
    if (It != Slots.end()) {
      if (It->second->Building)
        return;
      BytesCached -= It->second->Artifact->Bytes;
      It->second->Artifact = Art;
      BytesCached += Art->Bytes;
      LRU.splice(LRU.begin(), LRU, It->second->LRUPos);
    } else {
      auto S = std::make_shared<Slot>();
      S->Artifact = Art;
      S->Building = false;
      S->LRUPos = LRU.insert(LRU.begin(), Key);
      Slots.emplace(Key, S);
      BytesCached += Art->Bytes;
      Stats.Entries.fetch_add(1, std::memory_order_relaxed);
    }
    evictOverBudgetLocked(Key);
    Stats.Bytes.store(BytesCached, std::memory_order_relaxed);
  }

private:
  struct Slot {
    std::shared_ptr<ArtifactT> Artifact; ///< null while building
    bool Building = true;
    std::condition_variable Ready;
    typename std::list<std::uint64_t>::iterator LRUPos;
  };

  /// Evicts least-recently-used entries until the level fits its budget.
  /// The entry being published is never evicted by its own insertion, so
  /// an oversized artifact still reaches its (single) requester group.
  void evictOverBudgetLocked(std::uint64_t JustInserted) {
    while (BytesCached > Budget && !LRU.empty()) {
      std::uint64_t Victim = LRU.back();
      if (Victim == JustInserted)
        break;
      auto It = Slots.find(Victim);
      BytesCached -= It->second->Artifact->Bytes;
      LRU.pop_back();
      Slots.erase(It);
      Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
      Stats.Entries.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  std::mutex M;
  // Slot pointers are shared so waiters survive eviction/rehash; the map
  // only tracks membership.
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> Slots;
  std::list<std::uint64_t> LRU; ///< front = most recent
  std::size_t BytesCached = 0;
  std::size_t Budget;
  CacheLevelStats &Stats;
};

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

struct ServiceOptions {
  /// Worker threads serving enqueue()d jobs. compile() is additionally
  /// callable directly from any client thread.
  unsigned NumWorkers = 4;
  /// Total cache budget, split across the levels (L1 25%, L2 35%,
  /// L3 40% — ASTs and modules are the expensive artifacts to rebuild).
  std::size_t CacheBudgetBytes = 256u << 20;
  /// Root directory of the on-disk artifact store; empty disables
  /// persistence. The store is consulted on L3 miss and published on L3
  /// fill, so warm state survives restarts and is shareable between
  /// daemons pointed at the same directory.
  std::string DiskStorePath;
  /// Byte budget for the disk store's LRU sweep.
  std::size_t DiskBudgetBytes = 1ull << 30;
};

/// One compile (and optionally execute) request.
struct CompileJob {
  /// Registration path for the in-memory source. Cosmetic: appears in
  /// rendered diagnostics but never in cache keys.
  std::string Path = "input.c";
  std::string Source;
  CompilerOptions Options;
  /// Run main() after compiling (through the IR interpreter, on the
  /// shared OpenMP runtime).
  bool Execute = false;
};

/// Which cache levels served this request. Bits cascade: a hit at level N
/// implies the levels below were not even consulted, so they are reported
/// as hits too ("the request was served at or above this level").
struct CacheTrace {
  bool L1Hit = false;
  bool L2Hit = false;
  bool L3Hit = false;
  /// Served from the on-disk store (L3 missed in memory; nothing below
  /// was consulted). Mutually exclusive with L3Hit.
  bool DiskHit = false;
};

struct CompileResult {
  bool Succeeded = false;
  std::string Diagnostics; ///< rendered; empty on a clean compile
  /// The cached module chain (success or failure artifact). Holding this
  /// keeps the module alive across eviction.
  std::shared_ptr<const ModuleArtifact> Module;
  bool Executed = false;
  std::int64_t ExitValue = 0; ///< main()'s return value when Executed
  CacheTrace Trace;
};

class CompileService {
public:
  explicit CompileService(ServiceOptions Opts = {});
  ~CompileService();
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Compiles (and executes, if requested) synchronously through the
  /// cache. Safe to call from any number of threads concurrently.
  CompileResult compile(const CompileJob &Job);

  /// Queues the job for the worker pool.
  std::future<CompileResult> enqueue(CompileJob Job);

  /// Queues the job and invokes \p Done with the result on the worker
  /// thread that served it (the daemon's completion path: no future to
  /// park a thread on). If the pool is already stopping, the job runs —
  /// and Done fires — inline on the caller's thread.
  void enqueueAsync(CompileJob Job, std::function<void(CompileResult)> Done);

  /// Drains the queue, joins the workers, flushes the disk store index,
  /// and quiesces the shared OpenMP runtime's hot team. Idempotent; also
  /// run by the destructor.
  void shutdown();

  [[nodiscard]] ServiceStatsSnapshot statsSnapshot() const;
  /// Human-readable counter dump (the `minicc-serve --service-stats`
  /// payload), styled after OpenMPRuntime::renderStats(). Byte-stable
  /// when no disk store is configured; with one, a `disk:` line is
  /// appended.
  [[nodiscard]] std::string renderStats() const;
  /// Machine-readable JSON snapshot (`--service-stats=json`, the daemon
  /// `stats` verb) for scraping.
  [[nodiscard]] std::string renderStatsJSON() const;

  /// The on-disk artifact store, or null when persistence is disabled.
  [[nodiscard]] ArtifactStore *diskStore() { return Disk.get(); }

  [[nodiscard]] const ServiceOptions &getOptions() const { return Opts; }

private:
  std::shared_ptr<TokenStreamArtifact> produceTokens(const CompileJob &Job);
  std::shared_ptr<ASTArtifact>
  produceAST(std::shared_ptr<const TokenStreamArtifact> Toks,
             const CompilerOptions &Options);
  std::shared_ptr<ModuleArtifact>
  produceModule(std::shared_ptr<const ASTArtifact> AST,
                const CompilerOptions &Options);
  /// Produces the full L2+L3 chain for \p Job (publishing to the disk
  /// store on success) — the body of the L3 producer and of stub
  /// promotion.
  std::shared_ptr<ModuleArtifact> produceModuleChain(const CompileJob &Job,
                                                     std::uint64_t K1,
                                                     std::uint64_t K2,
                                                     CacheTrace &Trace);
  void workerLoop();

  ServiceOptions Opts;
  std::unique_ptr<ArtifactStore> Disk; ///< null when persistence disabled

  CacheLevelStats L1Stats, L2Stats, L3Stats;
  ArtifactCache<TokenStreamArtifact> L1Cache;
  ArtifactCache<ASTArtifact> L2Cache;
  ArtifactCache<ModuleArtifact> L3Cache;

  std::atomic<std::uint64_t> Requests{0};
  std::atomic<std::uint64_t> Executions{0};

  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<std::packaged_task<CompileResult()>> Queue;
  std::vector<std::thread> Workers;
  bool Stopping = false; ///< guarded by QueueMutex
};

} // namespace mcc::svc

#endif // MCC_SERVICE_COMPILESERVICE_H
