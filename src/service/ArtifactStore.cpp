//===--- ArtifactStore.cpp - On-disk content-addressed artifacts ----------===//
//
// File format (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     4  magic "MCA\x01"
//        4     4  FormatVersion
//        8     8  L3 key (must equal the file's index key)
//       16     1  Failed flag
//       17     3  zero padding
//       20     4  DiagText length
//       24     4  IRText length
//       28     8  FNV-1a over (key || failed || DiagText || IRText)
//       36     -  DiagText bytes, then IRText bytes
//
// The trailing payload-hash check is what turns every corruption mode —
// flipped bits, truncation, a partially overwritten file from a dying
// writer that bypassed the rename protocol — into a verified miss.
//
//===----------------------------------------------------------------------===//
#include "service/ArtifactStore.h"

#include "support/ContentHash.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

namespace fs = std::filesystem;

namespace mcc::svc {

namespace {

constexpr char Magic[4] = {'M', 'C', 'A', '\x01'};
constexpr std::size_t HeaderBytes = 36;

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xff));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xff));
}

std::uint32_t getU32(const char *P) {
  std::uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<std::uint32_t>(static_cast<unsigned char>(P[I])) << (I * 8);
  return V;
}

std::uint64_t getU64(const char *P) {
  std::uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<std::uint64_t>(static_cast<unsigned char>(P[I])) << (I * 8);
  return V;
}

/// The integrity hash covers the key and flag as well as the payloads, so
/// a header spliced onto the wrong payload (or vice versa) cannot verify.
std::uint64_t payloadHash(std::uint64_t Key, bool Failed,
                          const std::string &Diag, const std::string &IR) {
  std::uint64_t H = hashCombine(FNVOffsetBasis, Key);
  H = hashCombine(H, Failed ? 1 : 0);
  H = hashBytes(Diag, H);
  H = hashBytes(IR, H);
  return H;
}

std::string keyFileName(std::uint64_t Key) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.art",
                static_cast<unsigned long long>(Key));
  return Buf;
}

/// Parses "<16 hex digits>.art"; returns false for foreign files.
bool parseKeyFileName(const std::string &Name, std::uint64_t &Key) {
  if (Name.size() != 20 || Name.compare(16, 4, ".art") != 0)
    return false;
  Key = 0;
  for (int I = 0; I < 16; ++I) {
    char C = Name[I];
    std::uint64_t D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    Key = (Key << 4) | D;
  }
  return true;
}

} // namespace

ArtifactStore::ArtifactStore(ArtifactStoreOptions O) : Opts(std::move(O)) {
  std::error_code EC;
  fs::create_directories(fs::path(Opts.Root) / "objects", EC);
  std::lock_guard<std::mutex> Lock(M);
  rebuildIndexLocked();
  // A restart with a smaller budget (or a store grown by sibling daemons)
  // must converge immediately, not only on the next store().
  sweepOverBudgetLocked(/*JustInserted=*/0);
  Stats.Bytes.store(IndexedBytes, std::memory_order_relaxed);
}

ArtifactStore::~ArtifactStore() { flushIndex(); }

std::string ArtifactStore::objectPath(std::uint64_t Key) const {
  return (fs::path(Opts.Root) / "objects" / keyFileName(Key)).string();
}

//===----------------------------------------------------------------------===//
// Index
//===----------------------------------------------------------------------===//

void ArtifactStore::rebuildIndexLocked() {
  // Ground truth: the directory scan. A crash between publication and
  // index flush must not orphan artifacts, and externally deleted files
  // must not be believed in.
  struct Scanned {
    std::uint64_t Key;
    std::uint64_t Bytes;
    fs::file_time_type MTime;
  };
  std::vector<Scanned> Files;
  std::error_code EC;
  for (const auto &Entry :
       fs::directory_iterator(fs::path(Opts.Root) / "objects", EC)) {
    std::uint64_t Key;
    if (!Entry.is_regular_file(EC) ||
        !parseKeyFileName(Entry.path().filename().string(), Key))
      continue;
    Files.push_back({Key, Entry.file_size(EC), Entry.last_write_time(EC)});
  }
  // Oldest first so the LRU list ends up most-recent-at-front.
  std::sort(Files.begin(), Files.end(),
            [](const Scanned &A, const Scanned &B) { return A.MTime < B.MTime; });

  Index.clear();
  LRU.clear();
  IndexedBytes = 0;
  for (const Scanned &F : Files) {
    LRU.push_front(F.Key);
    Index[F.Key] = {F.Bytes, LRU.begin()};
    IndexedBytes += F.Bytes;
  }

  // The flushed index refines recency: replay its order (written most-
  // recent-first) over the scanned set; keys it does not mention keep
  // their mtime-derived position.
  std::ifstream In(fs::path(Opts.Root) / "index.v1");
  std::string Line;
  if (In && std::getline(In, Line) && Line == "mcc-artifact-index v1") {
    std::vector<std::uint64_t> Order;
    while (std::getline(In, Line)) {
      std::uint64_t Key = std::strtoull(Line.c_str(), nullptr, 16);
      if (Index.count(Key))
        Order.push_back(Key);
    }
    // Re-splice in reverse so the first-listed key ends up frontmost.
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      auto &E = Index[*It];
      LRU.splice(LRU.begin(), LRU, E.LRUPos);
      E.LRUPos = LRU.begin();
    }
  }

  Stats.Entries.store(Index.size(), std::memory_order_relaxed);
  Stats.Bytes.store(IndexedBytes, std::memory_order_relaxed);
}

void ArtifactStore::flushIndex() {
  std::lock_guard<std::mutex> Lock(M);
  std::error_code EC;
  fs::path Tmp = fs::path(Opts.Root) / "index.v1.tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out << "mcc-artifact-index v1\n";
    char Buf[24];
    for (std::uint64_t Key : LRU) { // most recent first
      std::snprintf(Buf, sizeof(Buf), "%016llx\n",
                    static_cast<unsigned long long>(Key));
      Out << Buf;
    }
  }
  fs::rename(Tmp, fs::path(Opts.Root) / "index.v1", EC);
}

void ArtifactStore::touchLocked(std::uint64_t Key) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  LRU.splice(LRU.begin(), LRU, It->second.LRUPos);
  It->second.LRUPos = LRU.begin();
  // Refresh the file's mtime so a crash (no index flush) still rebuilds a
  // usable recency order from the directory scan.
  std::error_code EC;
  fs::last_write_time(objectPath(Key), fs::file_time_type::clock::now(), EC);
}

void ArtifactStore::dropLocked(std::uint64_t Key) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  IndexedBytes -= It->second.FileBytes;
  LRU.erase(It->second.LRUPos);
  Index.erase(It);
  Stats.Entries.fetch_sub(1, std::memory_order_relaxed);
  Stats.Bytes.store(IndexedBytes, std::memory_order_relaxed);
}

void ArtifactStore::sweepOverBudgetLocked(std::uint64_t JustInserted) {
  std::error_code EC;
  while (IndexedBytes > Opts.BudgetBytes && !LRU.empty()) {
    std::uint64_t Victim = LRU.back();
    // Like the in-memory levels: an artifact larger than the whole budget
    // still survives its own insertion (it reaches its requesters, then
    // becomes the next sweep's first victim).
    if (Victim == JustInserted)
      break;
    fs::remove(objectPath(Victim), EC);
    dropLocked(Victim);
    Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Load / store
//===----------------------------------------------------------------------===//

std::optional<DiskArtifact> ArtifactStore::load(std::uint64_t Key) {
  std::unique_lock<std::mutex> Lock(M);
  const std::string Path = objectPath(Key);

  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In) {
    // Another daemon may have swept a file our index still lists.
    dropLocked(Key);
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // One sized read; an istreambuf_iterator loop costs a virtual call per
  // byte, which dominates warm-from-disk restart on large IR payloads.
  const auto End = In.tellg();
  std::string Bytes;
  if (End > 0) {
    Bytes.resize(static_cast<std::size_t>(End));
    In.seekg(0);
    if (!In.read(Bytes.data(), End))
      Bytes.clear();
  }
  In.close();

  auto Reject = [&]() -> std::optional<DiskArtifact> {
    Stats.BadArtifacts.fetch_add(1, std::memory_order_relaxed);
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    std::error_code EC;
    fs::remove(Path, EC);
    dropLocked(Key);
    return std::nullopt;
  };

  if (Bytes.size() < HeaderBytes ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Reject();
  const char *P = Bytes.data();
  if (getU32(P + 4) != FormatVersion || getU64(P + 8) != Key)
    return Reject();
  DiskArtifact A;
  A.Failed = P[16] != 0;
  const std::uint32_t DiagLen = getU32(P + 20);
  const std::uint32_t IRLen = getU32(P + 24);
  const std::uint64_t StoredHash = getU64(P + 28);
  // Exact-length check: a truncated *or* padded file is corrupt.
  if (Bytes.size() != HeaderBytes + static_cast<std::size_t>(DiagLen) + IRLen)
    return Reject();
  A.DiagText.assign(P + HeaderBytes, DiagLen);
  A.IRText.assign(P + HeaderBytes + DiagLen, IRLen);
  if (payloadHash(Key, A.Failed, A.DiagText, A.IRText) != StoredHash)
    return Reject();

  if (!Index.count(Key)) {
    // Published by a sibling daemon after our last scan: adopt it.
    LRU.push_front(Key);
    Index[Key] = {Bytes.size(), LRU.begin()};
    IndexedBytes += Bytes.size();
    Stats.Entries.fetch_add(1, std::memory_order_relaxed);
    Stats.Bytes.store(IndexedBytes, std::memory_order_relaxed);
  }
  touchLocked(Key);
  Stats.Hits.fetch_add(1, std::memory_order_relaxed);
  return A;
}

bool ArtifactStore::store(std::uint64_t Key, const DiskArtifact &A) {
  // Serialize outside the lock; only publication mutates shared state.
  std::string Bytes;
  Bytes.reserve(HeaderBytes + A.DiagText.size() + A.IRText.size());
  Bytes.append(Magic, sizeof(Magic));
  putU32(Bytes, FormatVersion);
  putU64(Bytes, Key);
  Bytes.push_back(A.Failed ? '\x01' : '\x00');
  Bytes.append(3, '\x00');
  putU32(Bytes, static_cast<std::uint32_t>(A.DiagText.size()));
  putU32(Bytes, static_cast<std::uint32_t>(A.IRText.size()));
  putU64(Bytes, payloadHash(Key, A.Failed, A.DiagText, A.IRText));
  Bytes += A.DiagText;
  Bytes += A.IRText;

  std::unique_lock<std::mutex> Lock(M);
  if (Index.count(Key))
    return true; // content-addressed: same key, same bytes — nothing to do

  char TmpName[64];
  std::snprintf(TmpName, sizeof(TmpName), ".tmp.%016llx.%llu",
                static_cast<unsigned long long>(Key),
                static_cast<unsigned long long>(++TmpCounter));
  fs::path Tmp = fs::path(Opts.Root) / "objects" / TmpName;
  fs::path Final = objectPath(Key);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Bytes.data(),
                           static_cast<std::streamsize>(Bytes.size()))) {
      Stats.StoreFailures.fetch_add(1, std::memory_order_relaxed);
      std::error_code EC;
      fs::remove(Tmp, EC);
      return false;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, Final, EC); // atomic publication
  if (EC) {
    Stats.StoreFailures.fetch_add(1, std::memory_order_relaxed);
    fs::remove(Tmp, EC);
    return false;
  }

  LRU.push_front(Key);
  Index[Key] = {Bytes.size(), LRU.begin()};
  IndexedBytes += Bytes.size();
  Stats.Stores.fetch_add(1, std::memory_order_relaxed);
  Stats.Entries.fetch_add(1, std::memory_order_relaxed);
  sweepOverBudgetLocked(Key);
  Stats.Bytes.store(IndexedBytes, std::memory_order_relaxed);
  return true;
}

bool ArtifactStore::contains(std::uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  return Index.count(Key) != 0;
}

DiskStoreSnapshot ArtifactStore::statsSnapshot() const {
  DiskStoreSnapshot S;
  S.Hits = Stats.Hits.load(std::memory_order_relaxed);
  S.Misses = Stats.Misses.load(std::memory_order_relaxed);
  S.BadArtifacts = Stats.BadArtifacts.load(std::memory_order_relaxed);
  S.Stores = Stats.Stores.load(std::memory_order_relaxed);
  S.StoreFailures = Stats.StoreFailures.load(std::memory_order_relaxed);
  S.Evictions = Stats.Evictions.load(std::memory_order_relaxed);
  S.Entries = Stats.Entries.load(std::memory_order_relaxed);
  S.Bytes = Stats.Bytes.load(std::memory_order_relaxed);
  return S;
}

} // namespace mcc::svc
