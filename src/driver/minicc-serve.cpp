//===--- minicc-serve.cpp - Compile-service driver -------------------------===//
//
// Front door for the CompileService (src/service) in three modes:
//
//  * Inline (default): reads newline-delimited job specs from a file or
//    stdin, fans them out over an in-process worker pool, prints one
//    verdict line per job. Repeated or identical jobs are answered from
//    the content-addressed cache (and, with --disk-store, from previous
//    processes' runs).
//
//  * Daemon (--serve): binds a Unix-domain socket and serves the framed
//    protocol (src/net) to any number of concurrent clients, with
//    admission control (bounded queue, per-client quotas, fair
//    round-robin). SIGINT/SIGTERM or the protocol's shutdown verb drain
//    in-flight jobs, flush the disk store index, and print final stats.
//
//  * Client (--client): submits a job file to a running daemon over the
//    socket, keeping a bounded window in flight, retrying typed
//    Busy/Quota rejections after the daemon's retry-after hint, and
//    printing verdict lines byte-identical to the inline mode's.
//
//   minicc-serve [options] [jobfile]
//     --jobs=N                worker threads (default 4)
//     --cache-mb=N            total in-memory cache budget MiB (default 256)
//     --disk-store=DIR        on-disk artifact store root (persistence)
//     --disk-mb=N             disk store budget in MiB (default 1024)
//     --repeat=N              submit the whole job list N times (default 1)
//     --service-stats[=json]  print service statistics after the run
//     --quiet                 verdict lines only on failure
//   daemon mode:
//     --serve --socket=PATH   serve the framed protocol on PATH
//     --max-pending=N         admission queue bound (default 256)
//     --per-client-inflight=N per-connection job quota (default 32)
//     --max-dispatched=N      jobs in the pool at once (default 2x workers)
//   client mode:
//     --client --socket=PATH [jobfile]
//     --window=N              max jobs in flight (default 16)
//     --stats[=json]          fetch daemon statistics after the batch
//     --shutdown              ask the daemon to drain and exit
//
// Job spec grammar (one job per line; '#' starts a comment):
//   [flags...] <file>
// with per-job flags a subset of minicc's:
//   -fno-openmp -fopenmp-enable-irbuilder -O1 -run -w -Werror
//   --analyze -num-threads=N -unroll-factor=N -DNAME[=VALUE]
//   -exec-engine=walker|bytecode|native|tiered (backend for -run jobs)
//
//===----------------------------------------------------------------------===//
#include "net/Client.h"
#include "net/Server.h"
#include "service/CompileService.h"
#include "service/JobSpec.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace mcc;

namespace {

volatile std::sig_atomic_t GSignal = 0;
void onSignal(int) { GSignal = 1; }

void printUsage() {
  std::fprintf(
      stderr,
      "usage: minicc-serve [options] [jobfile]\n"
      "  --jobs=N                worker threads (default 4)\n"
      "  --cache-mb=N            in-memory cache budget MiB (default 256)\n"
      "  --disk-store=DIR        on-disk artifact store root\n"
      "  --disk-mb=N             disk store budget MiB (default 1024)\n"
      "  --repeat=N              submit the job list N times (default 1)\n"
      "  --service-stats[=json]  print service statistics after the run\n"
      "  --quiet                 only print failing jobs\n"
      "daemon mode:\n"
      "  --serve --socket=PATH   serve the framed protocol on PATH\n"
      "  --max-pending=N         admission queue bound (default 256)\n"
      "  --per-client-inflight=N per-connection quota (default 32)\n"
      "  --max-dispatched=N      pool release cap (default 2x workers)\n"
      "client mode:\n"
      "  --client --socket=PATH [jobfile]\n"
      "  --window=N              max jobs in flight (default 16)\n"
      "  --stats[=json]          fetch daemon statistics after the batch\n"
      "  --shutdown              ask the daemon to drain and exit\n"
      "job spec: one per line: [flags...] <file>\n"
      "  flags: -fno-openmp -fopenmp-enable-irbuilder -O1 -run -w\n"
      "         -Werror --analyze -num-threads=N -unroll-factor=N\n"
      "         -DNAME[=VALUE]\n"
      "         -exec-engine=walker|bytecode|native|tiered\n");
}

bool parseU64(const std::string &Arg, const char *Prefix, std::uint64_t &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + Len, nullptr, 10);
  return true;
}

/// Parses one job-spec line and loads the file operand's bytes. Returns
/// false with a message on a malformed line; empty/comment lines yield
/// false with an empty message.
bool loadJobLine(const std::string &Line, svc::CompileJob &Job,
                 std::string &Error) {
  std::string File;
  if (!svc::parseJobSpecLine(Line, Job, File, Error))
    return false;
  std::ifstream Src(File, std::ios::binary);
  if (!Src) {
    Error = "cannot read " + File;
    return false;
  }
  std::ostringstream SS;
  SS << Src.rdbuf();
  Job.Path = File;
  Job.Source = SS.str();
  return true;
}

const char *traceSpelling(const svc::CacheTrace &T) {
  if (T.DiskHit)
    return "disk hit";
  if (T.L3Hit)
    return "L3 hit";
  if (T.L2Hit)
    return "L2 hit";
  if (T.L1Hit)
    return "L1 hit";
  return "cold";
}

struct Options {
  svc::ServiceOptions Svc;
  net::ServerOptions Net;
  std::uint64_t Repeat = 1;
  std::uint64_t Window = 16;
  bool ShowStats = false;
  bool StatsJSON = false;
  bool Quiet = false;
  bool Serve = false;
  bool ClientMode = false;
  bool ClientStats = false;
  bool ClientStatsJSON = false;
  bool ClientShutdown = false;
  std::string JobFile;
};

/// Reads the job list (file or stdin). Returns false after printing a
/// diagnostic for a malformed line.
bool readJobList(const std::string &JobFile,
                 std::vector<svc::CompileJob> &JobList) {
  std::istream *In = &std::cin;
  std::ifstream FileIn;
  if (!JobFile.empty()) {
    FileIn.open(JobFile);
    if (!FileIn) {
      std::fprintf(stderr, "minicc-serve: cannot read job file '%s'\n",
                   JobFile.c_str());
      return false;
    }
    In = &FileIn;
  }
  unsigned LineNo = 0;
  for (std::string Line; std::getline(*In, Line);) {
    ++LineNo;
    svc::CompileJob Job;
    std::string Error;
    if (loadJobLine(Line, Job, Error))
      JobList.push_back(std::move(Job));
    else if (!Error.empty()) {
      std::fprintf(stderr, "minicc-serve: line %u: %s\n", LineNo,
                   Error.c_str());
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Inline mode (the original minicc-serve behaviour)
//===----------------------------------------------------------------------===//

int runInline(const Options &O) {
  std::vector<svc::CompileJob> JobList;
  if (!readJobList(O.JobFile, JobList))
    return 1;
  if (JobList.empty()) {
    std::fprintf(stderr, "minicc-serve: no jobs\n");
    return 1;
  }

  svc::CompileService Service(O.Svc);
  std::vector<std::future<svc::CompileResult>> Futures;
  Futures.reserve(JobList.size() * O.Repeat);
  for (std::uint64_t R = 0; R < std::max<std::uint64_t>(1, O.Repeat); ++R)
    for (const svc::CompileJob &Job : JobList)
      Futures.push_back(Service.enqueue(Job));

  unsigned Failures = 0;
  for (std::size_t K = 0; K < Futures.size(); ++K) {
    svc::CompileResult Res = Futures[K].get();
    const svc::CompileJob &Job = JobList[K % JobList.size()];
    if (!Res.Succeeded) {
      ++Failures;
      std::printf("[%zu] FAIL %s (%s)\n", K, Job.Path.c_str(),
                  traceSpelling(Res.Trace));
      std::fputs(Res.Diagnostics.c_str(), stderr);
    } else if (!O.Quiet) {
      if (Res.Executed)
        std::printf("[%zu] OK %s (%s) main=%lld\n", K, Job.Path.c_str(),
                    traceSpelling(Res.Trace),
                    static_cast<long long>(Res.ExitValue));
      else
        std::printf("[%zu] OK %s (%s)\n", K, Job.Path.c_str(),
                    traceSpelling(Res.Trace));
    }
  }

  Service.shutdown();
  if (O.ShowStats)
    std::fputs((O.StatsJSON ? Service.renderStatsJSON() : Service.renderStats())
                   .c_str(),
               stdout);
  return Failures == 0 ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Daemon mode
//===----------------------------------------------------------------------===//

int runDaemon(const Options &O) {
  svc::CompileService Service(O.Svc);
  net::Server Server(Service, O.Net);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "minicc-serve: %s\n", Error.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::fprintf(stderr,
               "minicc-serve: listening on %s (workers=%u pending<=%u "
               "per-client<=%u disk=%s)\n",
               O.Net.SocketPath.c_str(), O.Svc.NumWorkers,
               O.Net.MaxPendingJobs, O.Net.PerClientInFlight,
               O.Svc.DiskStorePath.empty() ? "off"
                                           : O.Svc.DiskStorePath.c_str());
  // The signal handler only flips a flag (async-signal-safe); the wait
  // loop notices it and begins the drain from a normal thread.
  for (;;) {
    if (Server.waitForShutdownRequest(/*TimeoutMs=*/200))
      break;
    if (GSignal) {
      Server.requestShutdown();
      break;
    }
  }
  std::fprintf(stderr, "minicc-serve: draining...\n");
  Server.shutdown();
  Service.shutdown(); // flushes the disk store index
  std::fputs(Server.renderStats(O.StatsJSON).c_str(), stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// Client mode
//===----------------------------------------------------------------------===//

struct WireJob {
  std::string Path;
  std::string Flags;
  std::string Source;
};

struct Verdict {
  std::string Line;
  std::string Diag;
  bool Failed = false;
  bool Quietable = false; ///< an OK line, suppressed under --quiet
};

int runClient(const Options &O) {
  // Unlike inline mode, stdin is never a job source here: a bare
  // `--client --stats` must not block on the terminal.
  std::vector<WireJob> List;
  if (!O.JobFile.empty()) {
    std::vector<svc::CompileJob> Jobs;
    if (!readJobList(O.JobFile, Jobs))
      return 1;
    for (svc::CompileJob &J : Jobs) {
      WireJob W;
      W.Path = J.Path;
      W.Flags = svc::renderJobFlags(J);
      W.Source = std::move(J.Source);
      List.push_back(std::move(W));
    }
  }

  net::Client Client;
  std::string Error;
  if (!Client.connect(O.Net.SocketPath, Error)) {
    std::fprintf(stderr, "minicc-serve: %s\n", Error.c_str());
    return 1;
  }

  const std::size_t Total =
      List.size() * static_cast<std::size_t>(std::max<std::uint64_t>(1, O.Repeat));
  std::size_t NextSubmit = 0, Completed = 0, NextPrint = 0;
  unsigned Failures = 0;
  std::unordered_map<std::uint64_t, std::size_t> Active; // job id -> index
  std::map<std::size_t, Verdict> Ready; // out-of-order results, print in order

  auto submitIndex = [&](std::size_t Idx) -> bool {
    const WireJob &J = List[Idx % List.size()];
    if (!Client.submit(Idx + 1, J.Path, J.Flags, J.Source)) {
      std::fprintf(stderr, "minicc-serve: lost connection to daemon\n");
      return false;
    }
    Active.emplace(Idx + 1, Idx);
    return true;
  };
  auto flushReady = [&] {
    while (true) {
      auto It = Ready.find(NextPrint);
      if (It == Ready.end())
        break;
      const Verdict &V = It->second;
      if (V.Failed || !(O.Quiet && V.Quietable))
        std::printf("%s\n", V.Line.c_str());
      if (!V.Diag.empty())
        std::fputs(V.Diag.c_str(), stderr);
      Ready.erase(It);
      ++NextPrint;
    }
  };

  while (Completed < Total) {
    while (NextSubmit < Total && Active.size() < O.Window)
      if (!submitIndex(NextSubmit++))
        return 1;
    net::ClientEvent Ev;
    if (!Client.next(Ev, Error)) {
      std::fprintf(stderr, "minicc-serve: %s\n",
                   Error.empty() ? "daemon closed the connection"
                                 : Error.c_str());
      return 1;
    }
    auto It = Active.find(Ev.JobId);
    if (It == Active.end())
      continue; // stale frame for an id we no longer track
    const std::size_t Idx = It->second;
    const WireJob &J = List[Idx % List.size()];

    if (Ev.Type == net::MsgType::Result) {
      Active.erase(It);
      ++Completed;
      Verdict V;
      switch (Ev.Result.Status) {
      case net::ResultStatus::Ok:
        V.Quietable = true;
        V.Line = "[" + std::to_string(Idx) + "] OK " + J.Path + " (" +
                 net::traceLevelName(Ev.Result.Trace) + ")";
        if (Ev.Result.Executed)
          V.Line += " main=" + std::to_string(
                                   static_cast<long long>(Ev.Result.ExitValue));
        break;
      case net::ResultStatus::CompileFail:
        V.Failed = true;
        ++Failures;
        V.Line = "[" + std::to_string(Idx) + "] FAIL " + J.Path + " (" +
                 net::traceLevelName(Ev.Result.Trace) + ")";
        V.Diag = Ev.Result.Diagnostics;
        break;
      case net::ResultStatus::Cancelled:
        V.Line = "[" + std::to_string(Idx) + "] CANCELLED " + J.Path;
        break;
      case net::ResultStatus::InternalError:
        V.Failed = true;
        ++Failures;
        V.Line = "[" + std::to_string(Idx) + "] ERROR " + J.Path;
        V.Diag = Ev.Result.Diagnostics;
        break;
      }
      Ready.emplace(Idx, std::move(V));
      flushReady();
      continue;
    }

    if (Ev.Type == net::MsgType::Reject) {
      Active.erase(It);
      if (Ev.Reject.Code == net::RejectCode::Busy ||
          Ev.Reject.Code == net::RejectCode::Quota) {
        // Backpressure: honour the daemon's retry hint, then resubmit the
        // same job (same id; the daemon no longer tracks it).
        unsigned Ms = Ev.Reject.RetryAfterMs ? Ev.Reject.RetryAfterMs : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
        if (!submitIndex(Idx))
          return 1;
      } else {
        ++Completed;
        ++Failures;
        Verdict V;
        V.Failed = true;
        V.Line = "[" + std::to_string(Idx) + "] REJECTED " + J.Path + " (" +
                 net::rejectCodeName(Ev.Reject.Code) + ")";
        V.Diag = "minicc-serve: " + Ev.Reject.Message + "\n";
        Ready.emplace(Idx, std::move(V));
        flushReady();
      }
      continue;
    }
  }

  if (O.ClientStats) {
    if (!Client.requestStats(O.ClientStatsJSON)) {
      std::fprintf(stderr, "minicc-serve: lost connection to daemon\n");
      return 1;
    }
    net::ClientEvent Ev;
    while (Client.next(Ev, Error)) {
      if (Ev.Type == net::MsgType::StatsReply) {
        std::fputs(Ev.Text.c_str(), stdout);
        break;
      }
    }
    if (!Error.empty()) {
      std::fprintf(stderr, "minicc-serve: %s\n", Error.c_str());
      return 1;
    }
  }

  if (O.ClientShutdown) {
    if (!Client.requestShutdown()) {
      std::fprintf(stderr, "minicc-serve: lost connection to daemon\n");
      return 1;
    }
    net::ClientEvent Ev;
    while (Client.next(Ev, Error))
      if (Ev.Type == net::MsgType::ShutdownAck)
        break;
  }

  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  Options O;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::uint64_t N = 0;
    if (parseU64(Arg, "--jobs=", N))
      O.Svc.NumWorkers = static_cast<unsigned>(N);
    else if (parseU64(Arg, "--cache-mb=", N))
      O.Svc.CacheBudgetBytes = static_cast<std::size_t>(N) << 20;
    else if (parseU64(Arg, "--disk-mb=", N))
      O.Svc.DiskBudgetBytes = static_cast<std::size_t>(N) << 20;
    else if (Arg.rfind("--disk-store=", 0) == 0)
      O.Svc.DiskStorePath = Arg.substr(std::strlen("--disk-store="));
    else if (parseU64(Arg, "--repeat=", O.Repeat) ||
             parseU64(Arg, "--window=", O.Window))
      ;
    else if (parseU64(Arg, "--max-pending=", N))
      O.Net.MaxPendingJobs = static_cast<unsigned>(N);
    else if (parseU64(Arg, "--per-client-inflight=", N))
      O.Net.PerClientInFlight = static_cast<unsigned>(N);
    else if (parseU64(Arg, "--max-dispatched=", N))
      O.Net.MaxDispatched = static_cast<unsigned>(N);
    else if (Arg.rfind("--socket=", 0) == 0)
      O.Net.SocketPath = Arg.substr(std::strlen("--socket="));
    else if (Arg == "--serve")
      O.Serve = true;
    else if (Arg == "--client")
      O.ClientMode = true;
    else if (Arg == "--service-stats")
      O.ShowStats = true;
    else if (Arg == "--service-stats=json") {
      O.ShowStats = true;
      O.StatsJSON = true;
    } else if (Arg == "--stats")
      O.ClientStats = true;
    else if (Arg == "--stats=json") {
      O.ClientStats = true;
      O.ClientStatsJSON = true;
    } else if (Arg == "--shutdown")
      O.ClientShutdown = true;
    else if (Arg == "--quiet")
      O.Quiet = true;
    else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "minicc-serve: unknown argument: '%s'\n",
                   Arg.c_str());
      printUsage();
      return 1;
    } else
      O.JobFile = Arg;
  }

  if (O.Serve && O.ClientMode) {
    std::fprintf(stderr, "minicc-serve: --serve and --client are exclusive\n");
    return 1;
  }
  if ((O.Serve || O.ClientMode) && O.Net.SocketPath.empty()) {
    std::fprintf(stderr, "minicc-serve: %s requires --socket=PATH\n",
                 O.Serve ? "--serve" : "--client");
    return 1;
  }

  if (!O.ClientMode) {
    if (std::string EnvErr = interp::execEngineEnvError(); !EnvErr.empty()) {
      std::fprintf(stderr, "minicc-serve: %s\n", EnvErr.c_str());
      return 1;
    }
    if (std::string EnvErr = interp::jitEnvError(); !EnvErr.empty()) {
      std::fprintf(stderr, "minicc-serve: %s\n", EnvErr.c_str());
      return 1;
    }
  }

  if (O.Serve)
    return runDaemon(O);
  if (O.ClientMode)
    return runClient(O);
  return runInline(O);
}
