//===--- minicc-serve.cpp - In-process compile-server driver ---------------===//
//
// Front door for the CompileService (src/service). Reads newline-delimited
// job specs from a file or stdin, fans them out over the service's worker
// pool, and prints one verdict line per job. Repeated or identical jobs
// are answered from the content-addressed cache; --service-stats shows
// the per-level hit/miss/eviction counters afterwards.
//
//   minicc-serve [options] [jobfile]
//     --jobs=N            worker threads (default 4)
//     --cache-mb=N        total cache budget in MiB (default 256)
//     --repeat=N          submit the whole job list N times (default 1)
//     --service-stats     print cache statistics after the run
//     --quiet             verdict lines only on failure
//
// Job spec grammar (one job per line; '#' starts a comment):
//   [flags...] <file>
// with per-job flags a subset of minicc's:
//   -fno-openmp -fopenmp-enable-irbuilder -O1 -run -w -Werror
//   --analyze -num-threads=N -unroll-factor=N -DNAME[=VALUE]
//   -exec-engine=walker|bytecode|native|tiered (backend for -run jobs)
//
//===----------------------------------------------------------------------===//
#include "service/CompileService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace mcc;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: minicc-serve [options] [jobfile]\n"
               "  --jobs=N         worker threads (default 4)\n"
               "  --cache-mb=N     total cache budget in MiB (default 256)\n"
               "  --repeat=N       submit the job list N times (default 1)\n"
               "  --service-stats  print cache statistics after the run\n"
               "  --quiet          only print failing jobs\n"
               "job spec: one per line: [flags...] <file>\n"
               "  flags: -fno-openmp -fopenmp-enable-irbuilder -O1 -run -w\n"
               "         -Werror --analyze -num-threads=N -unroll-factor=N\n"
               "         -DNAME[=VALUE]\n"
               "         -exec-engine=walker|bytecode|native|tiered\n");
}

bool parseU64(const std::string &Arg, const char *Prefix, std::uint64_t &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + Len, nullptr, 10);
  return true;
}

/// Parses one job-spec line. Returns false (with a message) on a malformed
/// line; empty/comment lines yield false with an empty message.
bool parseJobLine(const std::string &Line, svc::CompileJob &Job,
                  std::string &Error) {
  std::istringstream In(Line);
  std::vector<std::string> Words;
  for (std::string W; In >> W;)
    Words.push_back(std::move(W));
  if (Words.empty() || Words.front()[0] == '#')
    return false;

  std::string File;
  for (const std::string &W : Words) {
    std::uint64_t N = 0;
    if (W == "-fopenmp")
      Job.Options.LangOpts.OpenMP = true;
    else if (W == "-fno-openmp")
      Job.Options.LangOpts.OpenMP = false;
    else if (W == "-fopenmp-enable-irbuilder")
      Job.Options.LangOpts.OpenMPEnableIRBuilder = true;
    else if (W == "-O1")
      Job.Options.RunMidend = true;
    else if (W == "-run")
      Job.Execute = true;
    else if (W == "--analyze" || W == "-analyze")
      Job.Options.RunAnalyzers = true;
    else if (W.rfind("--analyze=", 0) == 0 || W.rfind("-analyze=", 0) == 0) {
      std::string List = W.substr(W.find('=') + 1);
      std::size_t Pos = 0;
      while (Pos <= List.size()) {
        std::size_t Comma = List.find(',', Pos);
        std::string Name = List.substr(
            Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
        if (!Name.empty())
          Job.Options.AnalyzePasses.push_back(Name);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    }
    else if (W == "-w")
      Job.Options.SuppressWarnings = true;
    else if (W == "-Werror")
      Job.Options.WarningsAsErrors = true;
    else if (parseU64(W, "-num-threads=", N))
      Job.Options.LangOpts.OpenMPDefaultNumThreads =
          static_cast<unsigned>(N);
    else if (parseU64(W, "-unroll-factor=", N))
      Job.Options.UnrollOpts.HeuristicFactor = static_cast<unsigned>(N);
    else if (W.rfind("-exec-engine=", 0) == 0) {
      if (!interp::parseExecEngineKind(W.substr(std::strlen("-exec-engine=")),
                                       Job.Options.ExecEngine)) {
        Error = "invalid -exec-engine (expected 'walker', 'bytecode', "
                "'native', or 'tiered'): " +
                W;
        return false;
      }
    }
    else if (W.rfind("-D", 0) == 0) {
      std::string Def = W.substr(2);
      std::size_t Eq = Def.find('=');
      if (Eq == std::string::npos)
        Job.Options.Defines.emplace_back(Def, "1");
      else
        Job.Options.Defines.emplace_back(Def.substr(0, Eq),
                                         Def.substr(Eq + 1));
    } else if (W[0] == '-') {
      Error = "unknown job flag: " + W;
      return false;
    } else if (File.empty())
      File = W;
    else {
      Error = "more than one file on a job line: " + W;
      return false;
    }
  }
  if (File.empty()) {
    Error = "job line has no file";
    return false;
  }

  std::ifstream Src(File, std::ios::binary);
  if (!Src) {
    Error = "cannot read " + File;
    return false;
  }
  std::ostringstream SS;
  SS << Src.rdbuf();
  Job.Path = File;
  Job.Source = SS.str();
  return true;
}

const char *traceSpelling(const svc::CacheTrace &T) {
  if (T.L3Hit)
    return "L3 hit";
  if (T.L2Hit)
    return "L2 hit";
  if (T.L1Hit)
    return "L1 hit";
  return "cold";
}

} // namespace

int main(int argc, char **argv) {
  svc::ServiceOptions Opts;
  std::uint64_t Jobs = 4, CacheMB = 256, Repeat = 1;
  bool ShowStats = false, Quiet = false;
  std::string JobFile;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (parseU64(Arg, "--jobs=", Jobs) ||
        parseU64(Arg, "--cache-mb=", CacheMB) ||
        parseU64(Arg, "--repeat=", Repeat))
      continue;
    if (Arg == "--service-stats")
      ShowStats = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "minicc-serve: unknown argument: '%s'\n",
                   Arg.c_str());
      printUsage();
      return 1;
    } else
      JobFile = Arg;
  }

  if (std::string EnvErr = interp::execEngineEnvError(); !EnvErr.empty()) {
    std::fprintf(stderr, "minicc-serve: %s\n", EnvErr.c_str());
    return 1;
  }

  // Read job specs before spinning up the pool so malformed input fails
  // fast.
  std::vector<svc::CompileJob> JobList;
  std::istream *In = &std::cin;
  std::ifstream FileIn;
  if (!JobFile.empty()) {
    FileIn.open(JobFile);
    if (!FileIn) {
      std::fprintf(stderr, "minicc-serve: cannot read job file '%s'\n",
                   JobFile.c_str());
      return 1;
    }
    In = &FileIn;
  }
  unsigned LineNo = 0;
  for (std::string Line; std::getline(*In, Line);) {
    ++LineNo;
    svc::CompileJob Job;
    std::string Error;
    if (parseJobLine(Line, Job, Error))
      JobList.push_back(std::move(Job));
    else if (!Error.empty()) {
      std::fprintf(stderr, "minicc-serve: line %u: %s\n", LineNo,
                   Error.c_str());
      return 1;
    }
  }
  if (JobList.empty()) {
    std::fprintf(stderr, "minicc-serve: no jobs\n");
    return 1;
  }

  Opts.NumWorkers = static_cast<unsigned>(Jobs);
  Opts.CacheBudgetBytes = static_cast<std::size_t>(CacheMB) << 20;
  svc::CompileService Service(Opts);

  std::vector<std::future<svc::CompileResult>> Futures;
  Futures.reserve(JobList.size() * Repeat);
  for (std::uint64_t R = 0; R < std::max<std::uint64_t>(1, Repeat); ++R)
    for (const svc::CompileJob &Job : JobList)
      Futures.push_back(Service.enqueue(Job));

  unsigned Failures = 0;
  for (std::size_t K = 0; K < Futures.size(); ++K) {
    svc::CompileResult Res = Futures[K].get();
    const svc::CompileJob &Job = JobList[K % JobList.size()];
    if (!Res.Succeeded) {
      ++Failures;
      std::printf("[%zu] FAIL %s (%s)\n", K, Job.Path.c_str(),
                  traceSpelling(Res.Trace));
      std::fputs(Res.Diagnostics.c_str(), stderr);
    } else if (!Quiet) {
      if (Res.Executed)
        std::printf("[%zu] OK %s (%s) main=%lld\n", K, Job.Path.c_str(),
                    traceSpelling(Res.Trace),
                    static_cast<long long>(Res.ExitValue));
      else
        std::printf("[%zu] OK %s (%s)\n", K, Job.Path.c_str(),
                    traceSpelling(Res.Trace));
    }
  }

  Service.shutdown();
  if (ShowStats)
    std::fputs(Service.renderStats().c_str(), stdout);
  return Failures == 0 ? 0 : 1;
}
