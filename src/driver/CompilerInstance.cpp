#include "driver/CompilerInstance.h"

#include "analysis/Analysis.h"

namespace mcc {

CompilerInstance::CompilerInstance(CompilerOptions Opts)
    : Options(std::move(Opts)), Diags(&DiagStore) {
  Diags.setSuppressAllWarnings(Options.SuppressWarnings);
  Diags.setWarningsAsErrors(Options.WarningsAsErrors);
}

CompilerInstance::~CompilerInstance() = default;

void CompilerInstance::addVirtualFile(const std::string &Path,
                                      std::string_view Contents) {
  FM.addVirtualFile(Path, Contents);
}

bool CompilerInstance::parseToAST(const std::string &MainFile) {
  // Per-run state reset: a CompilerInstance may be driven more than once
  // (tests, the compile service's cold path). Diagnostics and their
  // counters belong to the *run*, not the instance — without this, a
  // second compile would inherit the first run's error count and refuse
  // to proceed.
  DiagStore.clear();
  Diags.reset();
  PP = std::make_unique<Preprocessor>(FM, SM, Diags);
  PP->setOpenMPEnabled(Options.LangOpts.OpenMP);
  for (const auto &[Name, Value] : Options.Defines)
    PP->defineCommandLineMacro(Name, Value);
  for (const std::string &Dir : Options.IncludeDirs)
    PP->addIncludeDir(Dir);
  if (!PP->enterMainFile(MainFile)) {
    Diags.report(SourceLocation(), diag::err_pp_file_not_found) << MainFile;
    return false;
  }
  Actions = std::make_unique<Sema>(Ctx, Diags, Options.LangOpts);
  Parser P(*PP, *Actions);
  TU = P.parseTranslationUnit();
  if (!TU || Diags.hasErrorOccurred())
    return false;

  if (Options.RunASTVerifier || Options.RunAnalyzers ||
      !Options.AnalyzePasses.empty()) {
    analysis::AnalysisManager AM(Ctx, Diags);
    if (!Options.AnalyzePasses.empty()) {
      std::string Unknown = analysis::registerAnalysesByName(
          AM, Options.AnalyzePasses, Options.RunASTVerifier);
      if (!Unknown.empty()) {
        Diags.report(SourceLocation(), diag::err_drv_unknown_analysis_pass)
            << Unknown << analysis::getKnownAnalysisPassNames();
        return false;
      }
    } else {
      analysis::registerDefaultAnalyses(AM, Options.RunAnalyzers,
                                        Options.RunASTVerifier);
    }
    AM.run(TU);
  }
  return !Diags.hasErrorOccurred();
}

bool CompilerInstance::emitIR() {
  assert(TU && "parseToAST must succeed first");
  IRModule = std::make_unique<ir::Module>("main");
  CodeGenModule CGM(Ctx, Options.LangOpts, *IRModule);
  CGM.emitTranslationUnit(TU);

  if (Options.RunVerifier) {
    std::string Err = ir::verifyModule(*IRModule);
    if (!Err.empty()) {
      Diags.report(SourceLocation(), diag::err_codegen_unsupported)
          << ("invalid IR produced:\n" + Err);
      return false;
    }
  }
  if (Options.RunMidend) {
    MidendStats = midend::runDefaultPipeline(*IRModule, Options.UnrollOpts);
    if (Options.RunVerifier) {
      std::string Err = ir::verifyModule(*IRModule);
      if (!Err.empty()) {
        Diags.report(SourceLocation(), diag::err_codegen_unsupported)
            << ("mid-end produced invalid IR:\n" + Err);
        return false;
      }
    }
  }
  return true;
}

bool CompilerInstance::compileSource(std::string_view Source) {
  addVirtualFile("input.c", Source);
  return parseToAST("input.c") && emitIR();
}

std::string CompilerInstance::renderDiagnostics() const {
  std::string Out;
  TextDiagnosticPrinter Printer(Out, &SM);
  for (const Diagnostic &D : DiagStore.getDiagnostics())
    Printer.handleDiagnostic(D);
  return Out;
}

} // namespace mcc
