//===--- CompilerInstance.h - Whole-pipeline orchestration ------*- C++ -*-===//
//
// Owns every layer of the paper's Fig. 1 and drives source -> tokens ->
// AST -> IR (-> mid-end). The library entry point used by the minicc
// driver, the examples, the tests and the benchmarks.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_DRIVER_COMPILERINSTANCE_H
#define MCC_DRIVER_COMPILERINSTANCE_H

#include "ast/ASTDumper.h"
#include "codegen/CodeGenModule.h"
#include "interp/Interpreter.h"
#include "lex/Preprocessor.h"
#include "midend/Passes.h"
#include "parse/Parser.h"
#include "sema/Sema.h"

#include <memory>
#include <string>

namespace mcc {

struct CompilerOptions {
  LangOptions LangOpts;
  bool RunVerifier = true;    // IR verifier after CodeGen / mid-end
  bool RunASTVerifier = true; // post-transform shadow-AST verifier
  bool RunAnalyzers = false;  // --analyze: race linter + loop conformance
  /// --analyze=<comma-list>: run exactly these AST analyses (registered in
  /// the canonical pipeline order regardless of the order given). Empty =
  /// the default set selected by RunAnalyzers. An unknown name is a driver
  /// error (err_drv_unknown_analysis_pass).
  std::vector<std::string> AnalyzePasses;
  bool SuppressWarnings = false; // -w
  bool WarningsAsErrors = false; // -Werror
  bool RunMidend = false; // -O1: LoopUnroll + SimplifyCFG + DCE
  midend::LoopUnrollOptions UnrollOpts;
  std::vector<std::pair<std::string, std::string>> Defines; // -DNAME=VAL
  std::vector<std::string> IncludeDirs;
  /// Which execution backend -run / Execute jobs use. Default defers to
  /// the MCC_EXEC_ENGINE environment variable (bytecode when unset); only
  /// executing consumers link mcc_interp, the enum itself is header-only.
  interp::ExecEngineKind ExecEngine = interp::ExecEngineKind::Default;
};

class CompilerInstance {
public:
  explicit CompilerInstance(CompilerOptions Options = {});
  ~CompilerInstance();

  /// Registers an in-memory file (tests, examples).
  void addVirtualFile(const std::string &Path, std::string_view Contents);

  /// Front-end only: source -> AST. Returns false on any error.
  bool parseToAST(const std::string &MainFile);

  /// AST -> IR (and the mid-end pipeline when enabled). parseToAST must
  /// have succeeded. Returns false if the verifier rejects the module.
  bool emitIR();

  /// Convenience: full pipeline over in-memory source.
  bool compileSource(std::string_view Source);

  // --- Results ---
  [[nodiscard]] TranslationUnitDecl *getTranslationUnit() { return TU; }
  [[nodiscard]] ir::Module *getIRModule() { return IRModule.get(); }
  [[nodiscard]] ASTContext &getASTContext() { return Ctx; }
  [[nodiscard]] Sema &getSema() { return *Actions; }
  [[nodiscard]] DiagnosticsEngine &getDiagnostics() { return Diags; }
  [[nodiscard]] const StoringDiagnosticConsumer &getDiagStore() const {
    return DiagStore;
  }
  [[nodiscard]] SourceManager &getSourceManager() { return SM; }

  /// Rendered diagnostics (file:line:col: severity: message + caret).
  [[nodiscard]] std::string renderDiagnostics() const;

  [[nodiscard]] std::string getIRText() const {
    return IRModule ? ir::printModule(*IRModule) : std::string();
  }

  [[nodiscard]] const midend::PipelineStats &getMidendStats() const {
    return MidendStats;
  }

  [[nodiscard]] const CompilerOptions &getOptions() const { return Options; }

private:
  CompilerOptions Options;
  FileManager FM;
  SourceManager SM;
  StoringDiagnosticConsumer DiagStore;
  DiagnosticsEngine Diags;
  ASTContext Ctx;
  std::unique_ptr<Preprocessor> PP;
  std::unique_ptr<Sema> Actions;
  TranslationUnitDecl *TU = nullptr;
  std::unique_ptr<ir::Module> IRModule;
  midend::PipelineStats MidendStats;
};

} // namespace mcc

#endif // MCC_DRIVER_COMPILERINSTANCE_H
