//===--- minicc-fuzz.cpp - Differential loop-nest fuzzing driver -----------===//
//
// Generates seeded random loop-nest programs and cross-checks every
// execution path of the compiler against a host-evaluated reference
// checksum (see src/fuzz/Fuzz.h). Exits non-zero on the first mismatch,
// printing the reproducing seed and — with --shrink — a minimized
// failing program.
//
//   minicc-fuzz [options]
//     --seed=N          first seed (default 2021)
//     --count=N         number of programs (default 200)
//     --gen=M           program modes: all | fuse | distribute
//                       (fuse/distribute restrict generation to the
//                       sibling-fusion / loop-distribution cases)
//     --shrink          minimize a failing program before reporting
//     --no-thread-sweep run parallel programs at the default width only
//     --no-factor-sweep skip tile-size/unroll-factor variants
//     --service         compile through the CompileService cache
//     --exec-engine=E   walker | bytecode | native | tiered | both
//                       (both = the full four-engine matrix; default both)
//     --dump-source     print each program before running it
//     --quiet           no progress output
//
//===----------------------------------------------------------------------===//
#include "fuzz/Fuzz.h"
#include "runtime/KMPRuntime.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mcc;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: minicc-fuzz [options]\n"
               "  --seed=N           first seed (default 2021)\n"
               "  --count=N          number of programs (default 200)\n"
               "  --gen=M            program modes: all | fuse | "
               "distribute\n"
               "  --shrink           minimize the failing program\n"
               "  --no-thread-sweep  default thread width only\n"
               "  --no-factor-sweep  skip tile/unroll factor variants\n"
               "  --service          compile through the CompileService "
               "cache\n"
               "  --exec-engine=E    execution engines to sweep: walker |\n"
               "                     bytecode | native | tiered | both\n"
               "                     (both = all four; default both)\n"
               "  --dump-source      print each generated program\n"
               "  --quiet            no progress output\n");
}

bool parseU64(const std::string &Arg, const char *Prefix,
              std::uint64_t &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + Len, nullptr, 10);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::uint64_t Seed = 2021, Count = 200;
  bool Shrink = false, DumpSource = false, Quiet = false;
  fuzz::GenMode Mode = fuzz::GenMode::All;
  fuzz::DifferentialOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (parseU64(Arg, "--seed=", Seed) || parseU64(Arg, "--count=", Count))
      continue;
    if (Arg.rfind("--gen=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--gen="));
      if (Name == "all")
        Mode = fuzz::GenMode::All;
      else if (Name == "fuse")
        Mode = fuzz::GenMode::Fuse;
      else if (Name == "distribute")
        Mode = fuzz::GenMode::Distribute;
      else {
        std::fprintf(stderr,
                     "minicc-fuzz: invalid --gen '%s' (expected 'all', "
                     "'fuse' or 'distribute')\n",
                     Name.c_str());
        return 1;
      }
    } else if (Arg == "--shrink")
      Shrink = true;
    else if (Arg == "--no-thread-sweep")
      Opts.SweepThreads = false;
    else if (Arg == "--no-factor-sweep")
      Opts.SweepFactors = false;
    else if (Arg == "--service")
      Opts.UseService = true;
    else if (Arg.rfind("--exec-engine=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--exec-engine="));
      interp::ExecEngineKind Kind;
      if (Name == "both")
        Opts.Engines = {interp::ExecEngineKind::Walker,
                        interp::ExecEngineKind::Bytecode,
                        interp::ExecEngineKind::Native,
                        interp::ExecEngineKind::Tiered};
      else if (interp::parseExecEngineKind(Name, Kind))
        Opts.Engines = {Kind};
      else {
        std::fprintf(stderr,
                     "minicc-fuzz: invalid --exec-engine '%s' (expected "
                     "'walker', 'bytecode', 'native', 'tiered' or "
                     "'both')\n",
                     Name.c_str());
        return 1;
      }
    }
    else if (Arg == "--dump-source")
      DumpSource = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "minicc-fuzz: unknown argument: '%s'\n",
                   Arg.c_str());
      printUsage();
      return 1;
    }
  }

  if (std::string EnvErr = interp::execEngineEnvError(); !EnvErr.empty()) {
    std::fprintf(stderr, "minicc-fuzz: %s\n", EnvErr.c_str());
    return 1;
  }
  if (std::string EnvErr = interp::jitEnvError(); !EnvErr.empty()) {
    std::fprintf(stderr, "minicc-fuzz: %s\n", EnvErr.c_str());
    return 1;
  }

  fuzz::DifferentialRunner Runner(Opts);
  std::uint64_t TotalRuns = 0, TotalRejections = 0;
  std::uint64_t FuseRejections = 0, DistributeRejections = 0;
  for (std::uint64_t K = 0; K < Count; ++K) {
    fuzz::ProgramSpec Spec = fuzz::generateProgram(Seed + K, Mode);
    if (DumpSource)
      std::printf("// %s\n%s\n", Spec.describe().c_str(),
                  Spec.render().c_str());
    fuzz::ProgramResult Result = Runner.runWithVariants(Spec);
    TotalRuns += Result.RunsExecuted;
    TotalRejections += Result.ConservativeRejections;
    if (Spec.Pragmas.Fuse)
      FuseRejections += Result.ConservativeRejections;
    else if (Spec.Pragmas.DistributeLoop)
      DistributeRejections += Result.ConservativeRejections;
    if (!Result.ok()) {
      std::fputs(fuzz::DifferentialRunner::report(Result).c_str(), stderr);
      if (Shrink) {
        fuzz::ProgramSpec Min = Runner.shrink(Result.Spec);
        fuzz::ProgramResult MinResult = Runner.run(Min);
        if (!MinResult.ok()) {
          std::fputs("=== minimized reproducer ===\n", stderr);
          std::fputs(fuzz::DifferentialRunner::report(MinResult).c_str(),
                     stderr);
        }
      }
      rt::OpenMPRuntime::get().shutdown();
      return 1;
    }
    if (!Quiet && (K + 1) % 25 == 0)
      std::fprintf(stderr, "minicc-fuzz: %llu/%llu programs ok (%llu runs)\n",
                   static_cast<unsigned long long>(K + 1),
                   static_cast<unsigned long long>(Count),
                   static_cast<unsigned long long>(TotalRuns));
  }
  if (!Quiet)
    std::fprintf(stderr,
                 "minicc-fuzz: %llu programs x backend matrix = %llu runs, "
                 "0 mismatches, %llu conservative transform rejections "
                 "(%llu fuse, %llu distribute_loop, %llu reverse/"
                 "interchange; every rejection re-verified untransformed) "
                 "(seeds %llu..%llu)\n",
                 static_cast<unsigned long long>(Count),
                 static_cast<unsigned long long>(TotalRuns),
                 static_cast<unsigned long long>(TotalRejections),
                 static_cast<unsigned long long>(FuseRejections),
                 static_cast<unsigned long long>(DistributeRejections),
                 static_cast<unsigned long long>(
                     TotalRejections - FuseRejections -
                     DistributeRejections),
                 static_cast<unsigned long long>(Seed),
                 static_cast<unsigned long long>(Seed + Count - 1));
  rt::OpenMPRuntime::get().shutdown();
  return 0;
}
