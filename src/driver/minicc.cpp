//===--- minicc.cpp - Command-line compiler driver --------------------------===//
//
// A clang-flavored driver for the MiniC + OpenMP front-end:
//
//   minicc [options] file.c
//     -fopenmp / -fno-openmp       enable/disable OpenMP pragma handling
//     -fopenmp-enable-irbuilder    use the OMPCanonicalLoop/OpenMPIRBuilder
//                                  pipeline (paper Section 3)
//     -ast-dump                    print the AST (clang style)
//     -ast-dump-shadow             ... including shadow AST subtrees
//     -emit-ir                     print the generated IR
//     -O1                          run the mid-end (LoopUnroll, SimplifyCFG,
//                                  DCE) before printing/running
//     -run [args...]               interpret main() and print its result
//     -syntax-only                 stop after semantic analysis
//     --analyze                    run the AST static analyses (OpenMP race
//                                  linter, canonical-loop conformance)
//     --analyze=<pass,...>         run exactly the named analyses
//                                  (openmp-race-linter,
//                                  canonical-loop-conformance, deps)
//     -w                           suppress all warnings
//     -Werror                      treat warnings as errors
//     -DNAME[=VALUE]               predefine a macro
//     -I <dir>                     add an include search directory
//     -num-threads N               default OpenMP thread count
//     --rt-stats                   print OpenMP runtime counters after -run
//     --exec-engine=walker|bytecode|native|tiered
//                                  execution backend for -run (default:
//                                  bytecode, or MCC_EXEC_ENGINE)
//     --exec-stats                 print execution engine counters after -run
//
//===----------------------------------------------------------------------===//
#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mcc;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: minicc [options] file.c\n"
      "  -fopenmp | -fno-openmp      OpenMP pragma handling (default on)\n"
      "  -fopenmp-enable-irbuilder   OMPCanonicalLoop/OpenMPIRBuilder "
      "pipeline\n"
      "  -ast-dump                   print the AST\n"
      "  -ast-dump-shadow            print the AST incl. shadow subtrees\n"
      "  -emit-ir                    print generated IR\n"
      "  -O1                         run the mid-end pipeline\n"
      "  -run                        interpret main()\n"
      "  -syntax-only                stop after Sema\n"
      "  --analyze                   run AST static analyses (race linter,\n"
      "                              canonical-loop conformance)\n"
      "  --analyze=<pass,...>        run exactly these analyses; names:\n"
      "                              openmp-race-linter,\n"
      "                              canonical-loop-conformance, deps\n"
      "  -w                          suppress all warnings\n"
      "  -Werror                     treat warnings as errors\n"
      "  -DNAME[=VALUE]              define macro\n"
      "  -I <dir>                    include search directory\n"
      "  -num-threads N              default OpenMP thread count\n"
      "  --rt-stats                  print OpenMP runtime counters (forks,\n"
      "                              team reuses, chunks, barrier wakes)\n"
      "                              to stderr after -run\n"
      "  --exec-engine=<e>           execution backend for -run: walker |\n"
      "                              bytecode | native | tiered (default:\n"
      "                              bytecode, or the MCC_EXEC_ENGINE\n"
      "                              environment variable)\n"
      "  --exec-stats                print execution engine counters\n"
      "                              (translation, dispatch mode,\n"
      "                              instructions, superinstruction hits)\n"
      "                              to stderr after -run\n"
      "  --exec-stats=json           same counters as one JSON object\n");
}

} // namespace

int main(int argc, char **argv) {
  CompilerOptions Options;
  bool ASTDump = false, ASTDumpShadow = false, EmitIR = false, Run = false,
       SyntaxOnly = false, RTStats = false, ExecStats = false,
       ExecStatsJSON = false;
  std::string InputFile;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-fopenmp")
      Options.LangOpts.OpenMP = true;
    else if (Arg == "-fno-openmp")
      Options.LangOpts.OpenMP = false;
    else if (Arg == "-fopenmp-enable-irbuilder")
      Options.LangOpts.OpenMPEnableIRBuilder = true;
    else if (Arg == "-ast-dump")
      ASTDump = true;
    else if (Arg == "-ast-dump-shadow")
      ASTDump = ASTDumpShadow = true;
    else if (Arg == "-emit-ir")
      EmitIR = true;
    else if (Arg == "-O1")
      Options.RunMidend = true;
    else if (Arg == "-run")
      Run = true;
    else if (Arg == "-syntax-only")
      SyntaxOnly = true;
    else if (Arg == "--analyze" || Arg == "-analyze")
      Options.RunAnalyzers = true;
    else if (Arg.rfind("--analyze=", 0) == 0 ||
             Arg.rfind("-analyze=", 0) == 0) {
      std::string List = Arg.substr(Arg.find('=') + 1);
      std::size_t Pos = 0;
      while (Pos <= List.size()) {
        std::size_t Comma = List.find(',', Pos);
        std::string Name = List.substr(
            Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
        if (!Name.empty())
          Options.AnalyzePasses.push_back(Name);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
      if (Options.AnalyzePasses.empty()) {
        std::fprintf(stderr,
                     "minicc: --analyze= requires at least one pass name\n");
        return 1;
      }
    }
    else if (Arg == "--rt-stats" || Arg == "-rt-stats")
      RTStats = true;
    else if (Arg == "--exec-stats" || Arg == "-exec-stats")
      ExecStats = true;
    else if (Arg == "--exec-stats=json" || Arg == "-exec-stats=json")
      ExecStats = ExecStatsJSON = true;
    else if (Arg.rfind("--exec-engine=", 0) == 0 ||
             Arg.rfind("-exec-engine=", 0) == 0) {
      std::string Name = Arg.substr(Arg.find('=') + 1);
      if (!interp::parseExecEngineKind(Name, Options.ExecEngine)) {
        std::fprintf(stderr,
                     "minicc: invalid --exec-engine '%s' (expected "
                     "'walker', 'bytecode', 'native', or 'tiered')\n",
                     Name.c_str());
        return 1;
      }
    }
    else if (Arg == "-w")
      Options.SuppressWarnings = true;
    else if (Arg == "-Werror")
      Options.WarningsAsErrors = true;
    else if (Arg == "-num-threads" && I + 1 < argc)
      Options.LangOpts.OpenMPDefaultNumThreads =
          static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg.rfind("-D", 0) == 0) {
      std::string Def = Arg.substr(2);
      auto Eq = Def.find('=');
      if (Eq == std::string::npos)
        Options.Defines.emplace_back(Def, "1");
      else
        Options.Defines.emplace_back(Def.substr(0, Eq), Def.substr(Eq + 1));
    } else if (Arg == "-I" && I + 1 < argc)
      Options.IncludeDirs.emplace_back(argv[++I]);
    else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "minicc: unknown argument: '%s'\n", Arg.c_str());
      return 1;
    } else {
      InputFile = Arg;
    }
  }

  if (InputFile.empty()) {
    std::fprintf(stderr, "minicc: error: no input files\n");
    printUsage();
    return 1;
  }

  // A typo'd MCC_EXEC_ENGINE must fail as loudly as a typo'd
  // --exec-engine= flag, not silently run the default engine.
  if (std::string EnvErr = interp::execEngineEnvError(); !EnvErr.empty()) {
    std::fprintf(stderr, "minicc: %s\n", EnvErr.c_str());
    return 1;
  }
  // Same loudness for the native-tier knobs (thresholds, forced-fallback
  // op): the engine keeps its defaults on garbage, the driver refuses it.
  if (std::string EnvErr = interp::jitEnvError(); !EnvErr.empty()) {
    std::fprintf(stderr, "minicc: %s\n", EnvErr.c_str());
    return 1;
  }

  CompilerInstance CI(Options);
  bool FrontendOK = CI.parseToAST(InputFile);
  std::string DiagText = CI.renderDiagnostics();
  if (!DiagText.empty())
    std::fputs(DiagText.c_str(), stderr);
  if (!FrontendOK)
    return 1;

  if (ASTDump) {
    std::string Out = dumpToString(CI.getTranslationUnit(), ASTDumpShadow);
    std::fputs(Out.c_str(), stdout);
  }
  if (SyntaxOnly)
    return 0;

  if (!CI.emitIR()) {
    std::fputs(CI.renderDiagnostics().c_str(), stderr);
    return 1;
  }

  if (EmitIR)
    std::fputs(CI.getIRText().c_str(), stdout);

  if (Run) {
    rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();
    RT.setDefaultNumThreads(Options.LangOpts.OpenMPDefaultNumThreads);
    if (RTStats)
      RT.resetStats();
    interp::ExecutionEngine EE(*CI.getIRModule(), Options.ExecEngine);
    const ir::Function *Main = CI.getIRModule()->getFunction("main");
    if (!Main || Main->isDeclaration()) {
      std::fprintf(stderr, "minicc: error: no main() to run\n");
      return 1;
    }
    try {
      interp::RTValue Result = EE.runFunction(Main, {});
      if (!Main->getReturnType()->isVoid())
        std::printf("main returned %lld\n",
                    static_cast<long long>(Result.I));
    } catch (const std::exception &Ex) {
      std::fprintf(stderr, "minicc: runtime error: %s\n", Ex.what());
      return 1;
    }
    if (RTStats)
      std::fputs(RT.renderStats().c_str(), stderr);
    if (ExecStats)
      std::fputs(ExecStatsJSON ? EE.renderExecStatsJSON().c_str()
                               : EE.renderExecStats().c_str(),
                 stderr);
    // Park nothing across exit: join the hot-team pool so process
    // teardown (and TSan) never races worker shutdown.
    RT.shutdown();
  }
  return 0;
}
