//===--- ASTContext.h - AST allocation and type uniquing --------*- C++ -*-===//
//
// Owns all AST nodes (arena-allocated, never individually destroyed, like
// Clang) and uniques types. Also interns identifier strings so AST nodes
// can hold cheap string_views.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_ASTCONTEXT_H
#define MCC_AST_ASTCONTEXT_H

#include "ast/Decl.h"
#include "ast/Type.h"
#include "support/Arena.h"

#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace mcc {

class ASTContext {
public:
  ASTContext();
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  // --- Node allocation ---

  template <typename T, typename... Args> T *create(Args &&...As) {
    ++NumNodes;
    return Alloc.create<T>(std::forward<Args>(As)...);
  }

  /// Copies a vector into arena storage and returns a stable span.
  template <typename T> std::span<T> allocateCopy(const std::vector<T> &V) {
    if (V.empty())
      return {};
    T *Mem = Alloc.allocateArray<T>(V.size());
    for (std::size_t I = 0; I < V.size(); ++I)
      ::new (static_cast<void *>(Mem + I)) T(V[I]);
    return std::span<T>(Mem, V.size());
  }

  /// Interns a string; the result outlives the context's users.
  std::string_view internString(std::string_view S) {
    InternedStrings.emplace_back(S);
    return InternedStrings.back();
  }

  // --- Builtin types ---

  [[nodiscard]] QualType getVoidType() const { return QualType(&VoidTy); }
  [[nodiscard]] QualType getBoolType() const { return QualType(&BoolTy); }
  [[nodiscard]] QualType getCharType() const { return QualType(&CharTy); }
  [[nodiscard]] QualType getIntType() const { return QualType(&IntTy); }
  [[nodiscard]] QualType getUIntType() const { return QualType(&UIntTy); }
  [[nodiscard]] QualType getLongType() const { return QualType(&LongTy); }
  [[nodiscard]] QualType getULongType() const { return QualType(&ULongTy); }
  [[nodiscard]] QualType getFloatType() const { return QualType(&FloatTy); }
  [[nodiscard]] QualType getDoubleType() const { return QualType(&DoubleTy); }
  /// size_t in this front-end (the paper's logical iteration counter uses
  /// an unsigned type of sufficient width).
  [[nodiscard]] QualType getSizeType() const { return getULongType(); }

  /// The unsigned integer type with the same width as \p T (used for the
  /// overflow-safe logical iteration counter, Section 3.1).
  [[nodiscard]] QualType getCorrespondingUnsignedType(QualType T) const;

  // --- Derived types (uniqued) ---

  QualType getPointerType(QualType Pointee);
  QualType getArrayType(QualType Element, std::uint64_t Size);
  QualType getFunctionType(QualType Result,
                           const std::vector<QualType> &Params);

  // --- Statistics (E8 footprint experiment) ---

  [[nodiscard]] std::size_t getNumNodes() const { return NumNodes; }
  [[nodiscard]] std::size_t getTotalAllocatedBytes() const {
    return Alloc.getTotalAllocated();
  }

  [[nodiscard]] Arena &getAllocator() { return Alloc; }

private:
  Arena Alloc;
  std::deque<std::string> InternedStrings;
  std::size_t NumNodes = 0;

  BuiltinType VoidTy, BoolTy, CharTy, IntTy, UIntTy, LongTy, ULongTy, FloatTy,
      DoubleTy;

  std::map<const Type *, const PointerType *> PointerTypes;
  std::map<std::pair<const Type *, std::uint64_t>, const ArrayType *>
      ArrayTypes;
  std::vector<const FunctionType *> FunctionTypes;
};

} // namespace mcc

#endif // MCC_AST_ASTCONTEXT_H
