//===--- StmtOpenMP.h - OpenMP directive AST nodes --------------*- C++ -*-===//
//
// Reproduces the class hierarchy of the paper's Figures 4 and 5:
//
//   Stmt
//    `- OMPExecutableDirective
//        |- OMPParallelDirective, OMPBarrierDirective, ...
//        `- OMPLoopBasedDirective              (new in the paper, red)
//            |- OMPLoopDirective
//            |   |- OMPForDirective
//            |   |- OMPParallelForDirective
//            |   `- ...
//            |- OMPTileDirective               (new, green)
//            `- OMPUnrollDirective             (new, green)
//
// and the OMPCanonicalLoop meta node of Section 3 (declared in Stmt.h's
// StmtClass enum; class below).
//
// Shadow AST: OMPLoopDirective carries up to ~30 whole-nest helper
// expressions plus 6 per associated loop that represent pre-computed pieces
// of code generation (Section 1.2). OMPTileDirective/OMPUnrollDirective
// carry the *transformed statement*. None of these are enumerated by
// children() — exactly like Clang, they are reachable only through the
// dedicated accessors and are hidden from the default AST dump.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_STMTOPENMP_H
#define MCC_AST_STMTOPENMP_H

#include "ast/Expr.h"
#include "ast/OpenMPClause.h"
#include "ast/OpenMPKinds.h"
#include "ast/Stmt.h"

namespace mcc {

/// Base class for all OpenMP directives that may appear wherever a base
/// language statement can appear.
class OMPExecutableDirective : public Stmt {
public:
  [[nodiscard]] OpenMPDirectiveKind getDirectiveKind() const { return DKind; }

  [[nodiscard]] std::span<OMPClause *const> clauses() const { return Clauses; }
  [[nodiscard]] unsigned getNumClauses() const {
    return static_cast<unsigned>(Clauses.size());
  }

  /// The first clause of the given kind, or null.
  template <typename ClauseT>
  [[nodiscard]] const ClauseT *getSingleClause() const {
    for (const OMPClause *C : Clauses)
      if (const auto *Typed = clause_dyn_cast<ClauseT>(C))
        return Typed;
    return nullptr;
  }

  /// The statement the directive is associated with (may be null for
  /// standalone directives like barrier). For directives that outline, this
  /// is a CapturedStmt; for the OpenMPIRBuilder path of loop directives it
  /// is (or contains) an OMPCanonicalLoop.
  [[nodiscard]] Stmt *getAssociatedStmt() const { return AssociatedStmt; }
  [[nodiscard]] bool hasAssociatedStmt() const {
    return AssociatedStmt != nullptr;
  }

  /// Strips CapturedStmt wrappers to reach the innermost associated
  /// statement (e.g. the loop of a worksharing directive).
  [[nodiscard]] Stmt *getInnermostAssociatedStmt() const;

  static bool classof(const Stmt *S) {
    return S->getStmtClass() >= StmtClass::firstOMPExecutable &&
           S->getStmtClass() <= StmtClass::lastOMPExecutable;
  }

protected:
  OMPExecutableDirective(StmtClass SC, SourceRange Range,
                         OpenMPDirectiveKind DKind,
                         std::span<OMPClause *const> Clauses,
                         Stmt *AssociatedStmt)
      : Stmt(SC, Range), DKind(DKind), Clauses(Clauses),
        AssociatedStmt(AssociatedStmt) {}

private:
  OpenMPDirectiveKind DKind;
  std::span<OMPClause *const> Clauses;
  Stmt *AssociatedStmt;
};

/// #pragma omp parallel
class OMPParallelDirective final : public OMPExecutableDirective {
public:
  OMPParallelDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                       Stmt *AssociatedStmt)
      : OMPExecutableDirective(StmtClass::OMPParallelDirective, Range,
                               OpenMPDirectiveKind::Parallel, Clauses,
                               AssociatedStmt) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPParallelDirective;
  }
};

/// #pragma omp barrier (standalone)
class OMPBarrierDirective final : public OMPExecutableDirective {
public:
  explicit OMPBarrierDirective(SourceRange Range)
      : OMPExecutableDirective(StmtClass::OMPBarrierDirective, Range,
                               OpenMPDirectiveKind::Barrier, {}, nullptr) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPBarrierDirective;
  }
};

/// #pragma omp critical
class OMPCriticalDirective final : public OMPExecutableDirective {
public:
  OMPCriticalDirective(SourceRange Range, Stmt *AssociatedStmt)
      : OMPExecutableDirective(StmtClass::OMPCriticalDirective, Range,
                               OpenMPDirectiveKind::Critical, {},
                               AssociatedStmt) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPCriticalDirective;
  }
};

/// #pragma omp single
class OMPSingleDirective final : public OMPExecutableDirective {
public:
  OMPSingleDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                     Stmt *AssociatedStmt)
      : OMPExecutableDirective(StmtClass::OMPSingleDirective, Range,
                               OpenMPDirectiveKind::Single, Clauses,
                               AssociatedStmt) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPSingleDirective;
  }
};

/// #pragma omp master
class OMPMasterDirective final : public OMPExecutableDirective {
public:
  OMPMasterDirective(SourceRange Range, Stmt *AssociatedStmt)
      : OMPExecutableDirective(StmtClass::OMPMasterDirective, Range,
                               OpenMPDirectiveKind::Master, {},
                               AssociatedStmt) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPMasterDirective;
  }
};

/// The class the paper's Fig. 5 introduces (in red) between
/// OMPExecutableDirective and OMPLoopDirective: base of everything
/// associated with a canonical loop nest, *without* committing to the ~36
/// shadow helper expressions that OMPLoopDirective carries.
class OMPLoopBasedDirective : public OMPExecutableDirective {
public:
  /// Number of associated loops, as determined by the collapse clause /
  /// sizes clause ("the directive's association depth").
  [[nodiscard]] unsigned getLoopsNumber() const { return NumAssociatedLoops; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() >= StmtClass::firstOMPLoopBased &&
           S->getStmtClass() <= StmtClass::lastOMPLoopBased;
  }

protected:
  OMPLoopBasedDirective(StmtClass SC, SourceRange Range,
                        OpenMPDirectiveKind DKind,
                        std::span<OMPClause *const> Clauses,
                        Stmt *AssociatedStmt, unsigned NumAssociatedLoops)
      : OMPExecutableDirective(SC, Range, DKind, Clauses, AssociatedStmt),
        NumAssociatedLoops(NumAssociatedLoops) {}

private:
  unsigned NumAssociatedLoops;
};

/// The shadow helper expressions of OMPLoopDirective. Sema (legacy
/// pipeline) pre-computes these; CodeGen consumes them. The paper counts
/// "up to 30 shadow AST statements ... plus 6 for each loop in the
/// associated loop nest"; countShadowNodes() reproduces that accounting for
/// the E8 footprint experiment.
struct OMPLoopHelperExprs {
  // --- Whole-nest helpers (logical iteration space, normalized to
  //     0 .. NumIterations-1 with the IV's unsigned type) ---
  VarDecl *IterationVar = nullptr; //  1: .omp.iv
  Expr *IterationVarRef = nullptr; //  2
  Expr *LastIteration = nullptr;   //  3: NumIterations - 1
  Expr *NumIterations = nullptr;   //  4: total trip count
  Expr *CalcLastIteration = nullptr; // 5: assignment computing (3)
  Expr *PreCond = nullptr;         //  6: "is there at least one iteration"
  Expr *Init = nullptr;            //  7: .omp.iv = .omp.lb
  Expr *Cond = nullptr;            //  8: .omp.iv <= .omp.ub
  Expr *Inc = nullptr;             //  9: ++.omp.iv
  VarDecl *LowerBoundVar = nullptr;  // 10: .omp.lb
  VarDecl *UpperBoundVar = nullptr;  // 11: .omp.ub
  VarDecl *StrideVar = nullptr;      // 12: .omp.stride
  VarDecl *IsLastIterVar = nullptr;  // 13: .omp.is_last
  Expr *LowerBoundRef = nullptr;   // 14
  Expr *UpperBoundRef = nullptr;   // 15
  Expr *StrideRef = nullptr;       // 16
  Expr *IsLastIterRef = nullptr;   // 17
  Expr *EnsureUpperBound = nullptr; // 18: ub = min(ub, last-iteration)
  Expr *NextLowerBound = nullptr;  // 19: lb += stride (static chunked)
  Expr *NextUpperBound = nullptr;  // 20: ub += stride
  Stmt *PreInits = nullptr;        // 21: decls evaluated before the loop
  Expr *DistCond = nullptr;        // 22: distribute-loop condition

  // --- Per-loop helpers (6 per associated loop) ---
  struct LoopData {
    VarDecl *CounterVar = nullptr;  // 1: the (privatized) original IV
    Expr *CounterRef = nullptr;     // 2
    Expr *CounterInit = nullptr;    // 3: lower-bound expression
    Expr *CounterStep = nullptr;    // 4: step expression
    Expr *CounterUpdate = nullptr;  // 5: i = lb + iv*step (de-normalize)
    Expr *NumIterationsExpr = nullptr; // 6: this loop's own trip count
  };
  std::span<LoopData> Loops;

  /// The innermost loop body to execute per logical iteration. Not counted
  /// as a shadow node (it is shared with the syntactic AST, not
  /// synthesized).
  Stmt *Body = nullptr;

  /// Number of non-null shadow AST entries (for the E8 experiment).
  [[nodiscard]] unsigned countShadowNodes() const {
    unsigned N = 0;
    const Expr *WholeNest[] = {IterationVarRef, LastIteration, NumIterations,
                               CalcLastIteration, PreCond, Init, Cond, Inc,
                               LowerBoundRef, UpperBoundRef, StrideRef,
                               IsLastIterRef, EnsureUpperBound, NextLowerBound,
                               NextUpperBound, DistCond};
    for (const Expr *E : WholeNest)
      N += E != nullptr;
    const void *Vars[] = {IterationVar, LowerBoundVar, UpperBoundVar,
                          StrideVar, IsLastIterVar, PreInits};
    for (const void *V : Vars)
      N += V != nullptr;
    for (const LoopData &L : Loops) {
      const void *PerLoop[] = {L.CounterVar,    L.CounterRef,
                               L.CounterInit,   L.CounterStep,
                               L.CounterUpdate, L.NumIterationsExpr};
      for (const void *P : PerLoop)
        N += P != nullptr;
    }
    return N;
  }
};

/// Base class of all loop *worksharing/simd* directives, carrying the full
/// shadow helper set ("a significant portion of the code generation already
/// takes place when creating the AST", Section 1.2).
class OMPLoopDirective : public OMPLoopBasedDirective {
public:
  [[nodiscard]] const OMPLoopHelperExprs &getLoopHelpers() const {
    return Helpers;
  }
  /// Sema fills the helpers in after construction (the one sanctioned
  /// mutation, mirroring Clang's setters on OMPLoopDirective).
  void setLoopHelpers(const OMPLoopHelperExprs &H) { Helpers = H; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() >= StmtClass::firstOMPLoop &&
           S->getStmtClass() <= StmtClass::lastOMPLoop;
  }

protected:
  using OMPLoopBasedDirective::OMPLoopBasedDirective;

private:
  OMPLoopHelperExprs Helpers;
};

/// #pragma omp for
class OMPForDirective final : public OMPLoopDirective {
public:
  OMPForDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                  Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopDirective(StmtClass::OMPForDirective, Range,
                         OpenMPDirectiveKind::For, Clauses, AssociatedStmt,
                         NumLoops) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPForDirective;
  }
};

/// #pragma omp parallel for (combined directive)
class OMPParallelForDirective final : public OMPLoopDirective {
public:
  OMPParallelForDirective(SourceRange Range,
                          std::span<OMPClause *const> Clauses,
                          Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopDirective(StmtClass::OMPParallelForDirective, Range,
                         OpenMPDirectiveKind::ParallelFor, Clauses,
                         AssociatedStmt, NumLoops) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPParallelForDirective;
  }
};

/// #pragma omp simd
class OMPSimdDirective final : public OMPLoopDirective {
public:
  OMPSimdDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                   Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopDirective(StmtClass::OMPSimdDirective, Range,
                         OpenMPDirectiveKind::Simd, Clauses, AssociatedStmt,
                         NumLoops) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPSimdDirective;
  }
};

/// #pragma omp for simd (composite directive)
class OMPForSimdDirective final : public OMPLoopDirective {
public:
  OMPForSimdDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                      Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopDirective(StmtClass::OMPForSimdDirective, Range,
                         OpenMPDirectiveKind::ForSimd, Clauses, AssociatedStmt,
                         NumLoops) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPForSimdDirective;
  }
};

/// Common base of the loop transformation directives: they carry the
/// *transformed statement* shadow AST (Section 2) that consuming directives
/// re-analyze via getTransformedStmt().
class OMPLoopTransformationDirective : public OMPLoopBasedDirective {
public:
  /// The loop nest that semantically replaces this directive, or null if
  /// no replacement was generated (e.g. full unroll, heuristic unroll not
  /// consumed by another directive). This is a *shadow* child: it is not
  /// part of children() and hidden from the default AST dump.
  [[nodiscard]] Stmt *getTransformedStmt() const { return TransformedStmt; }
  void setTransformedStmt(Stmt *S) { TransformedStmt = S; }

  /// Declarations that must be emitted before the transformed statement
  /// (e.g. variables holding computed trip counts). Also shadow AST.
  [[nodiscard]] Stmt *getPreInits() const { return PreInits; }
  void setPreInits(Stmt *S) { PreInits = S; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPTileDirective ||
           S->getStmtClass() == StmtClass::OMPUnrollDirective ||
           S->getStmtClass() == StmtClass::OMPReverseDirective ||
           S->getStmtClass() == StmtClass::OMPInterchangeDirective ||
           S->getStmtClass() == StmtClass::OMPFuseDirective ||
           S->getStmtClass() == StmtClass::OMPDistributeLoopDirective;
  }

protected:
  using OMPLoopBasedDirective::OMPLoopBasedDirective;

private:
  Stmt *TransformedStmt = nullptr;
  Stmt *PreInits = nullptr;
};

/// #pragma omp tile sizes(...)
class OMPTileDirective final : public OMPLoopTransformationDirective {
public:
  OMPTileDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                   Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopTransformationDirective(StmtClass::OMPTileDirective, Range,
                                       OpenMPDirectiveKind::Tile, Clauses,
                                       AssociatedStmt, NumLoops) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPTileDirective;
  }
};

/// #pragma omp unroll [full | partial(k)]
class OMPUnrollDirective final : public OMPLoopTransformationDirective {
public:
  OMPUnrollDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                     Stmt *AssociatedStmt)
      : OMPLoopTransformationDirective(StmtClass::OMPUnrollDirective, Range,
                                       OpenMPDirectiveKind::Unroll, Clauses,
                                       AssociatedStmt, /*NumLoops=*/1) {}

  [[nodiscard]] bool hasFullClause() const {
    return getSingleClause<OMPFullClause>() != nullptr;
  }
  [[nodiscard]] bool hasPartialClause() const {
    return getSingleClause<OMPPartialClause>() != nullptr;
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPUnrollDirective;
  }
};

/// #pragma omp reverse (OpenMP 6.0): iterate the associated loop in the
/// opposite order. Only legal when no loop-carried dependence would be
/// violated; Sema consults the DependenceAnalysis oracle before building
/// the transformed statement.
class OMPReverseDirective final : public OMPLoopTransformationDirective {
public:
  OMPReverseDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                      Stmt *AssociatedStmt)
      : OMPLoopTransformationDirective(StmtClass::OMPReverseDirective, Range,
                                       OpenMPDirectiveKind::Reverse, Clauses,
                                       AssociatedStmt, /*NumLoops=*/1) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPReverseDirective;
  }
};

/// #pragma omp interchange [permutation(p1, ..., pn)] (OpenMP 6.0):
/// permute the loops of a perfect nest. Without a permutation clause the
/// outermost two loops are swapped.
class OMPInterchangeDirective final : public OMPLoopTransformationDirective {
public:
  OMPInterchangeDirective(SourceRange Range,
                          std::span<OMPClause *const> Clauses,
                          Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopTransformationDirective(StmtClass::OMPInterchangeDirective,
                                       Range, OpenMPDirectiveKind::Interchange,
                                       Clauses, AssociatedStmt, NumLoops) {}

  /// The permutation applied: Perm[K] is the 0-based original position of
  /// the loop placed at depth K. Identity-extended default is (1, 0): swap.
  [[nodiscard]] std::vector<unsigned> getPermutation() const {
    if (const auto *PC = getSingleClause<OMPPermutationClause>()) {
      std::vector<unsigned> Perm;
      for (unsigned I = 0; I < PC->getNumArgs(); ++I)
        Perm.push_back(static_cast<unsigned>(PC->getArg(I) - 1));
      return Perm;
    }
    return {1, 0};
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPInterchangeDirective;
  }
};

/// #pragma omp fuse [looprange(first, count)] (OpenMP 6.0): fuse a
/// sequence of adjacent canonical sibling loops into a single loop.
/// The associated statement is a CompoundStmt whose top-level statements
/// are the sibling loops (each a plain canonical loop or the result of a
/// preceding loop transformation). With a looprange clause only the
/// 1-based [first, first+count-1] subrange is fused; siblings outside the
/// range are kept as-is around the fused loop. Legality is gated by
/// DependenceAnalysis::isLegalFuse over every ordered pair of fused
/// siblings.
class OMPFuseDirective final : public OMPLoopTransformationDirective {
public:
  OMPFuseDirective(SourceRange Range, std::span<OMPClause *const> Clauses,
                   Stmt *AssociatedStmt, unsigned NumLoops)
      : OMPLoopTransformationDirective(StmtClass::OMPFuseDirective, Range,
                                       OpenMPDirectiveKind::Fuse, Clauses,
                                       AssociatedStmt, NumLoops) {}

  /// 0-based index of the first fused sibling (looprange 'first' - 1;
  /// 0 without the clause). getLoopsNumber() is the fused count.
  [[nodiscard]] unsigned getFirstLoopIndex() const {
    if (const auto *LR = getSingleClause<OMPLoopRangeClause>())
      return static_cast<unsigned>(LR->getFirst() - 1);
    return 0;
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPFuseDirective;
  }
};

/// #pragma omp distribute_loop: split one canonical loop whose body is a
/// sequence of statement groups into one loop per group, run in source
/// order. (Named distribute_loop to avoid clashing with OpenMP's
/// teams-distribute worksharing directive.) Legal only when no
/// loop-carried dependence flows from a textually later group to an
/// earlier one; gated by DependenceAnalysis::isLegalDistribute.
class OMPDistributeLoopDirective final
    : public OMPLoopTransformationDirective {
public:
  OMPDistributeLoopDirective(SourceRange Range,
                             std::span<OMPClause *const> Clauses,
                             Stmt *AssociatedStmt)
      : OMPLoopTransformationDirective(StmtClass::OMPDistributeLoopDirective,
                                       Range,
                                       OpenMPDirectiveKind::DistributeLoop,
                                       Clauses, AssociatedStmt,
                                       /*NumLoops=*/1) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPDistributeLoopDirective;
  }
};

/// The meta AST node of the paper's Section 3: wraps a literal loop
/// (ForStmt) and guarantees that the OpenMP canonical-loop semantic
/// requirements are met. Can be losslessly removed again. Carries the
/// three pieces of meta-information that must be resolved in Sema:
///   1. the distance function  (trip count),
///   2. the loop user-variable function (logical iteration -> value),
///   3. the loop user-variable reference.
class OMPCanonicalLoop final : public Stmt {
public:
  OMPCanonicalLoop(Stmt *LoopStmt, CapturedStmt *DistanceFunc,
                   CapturedStmt *LoopVarFunc, DeclRefExpr *LoopVarRef)
      : Stmt(StmtClass::OMPCanonicalLoop, LoopStmt->getSourceRange()),
        LoopStmt(LoopStmt), DistanceFunc(DistanceFunc),
        LoopVarFunc(LoopVarFunc), LoopVarRef(LoopVarRef) {}

  /// The wrapped ForStmt; unwrapping is lossless.
  [[nodiscard]] Stmt *getLoopStmt() const { return LoopStmt; }

  /// "[&](LogicalTy &Result) { Result = <trip count>; }"
  [[nodiscard]] CapturedStmt *getDistanceFunc() const { return DistanceFunc; }

  /// "[&, __begin](T &Result, LogicalTy I) { Result = __begin + I * step; }"
  [[nodiscard]] CapturedStmt *getLoopVarFunc() const { return LoopVarFunc; }

  /// The user-visible variable updated before each body execution.
  [[nodiscard]] DeclRefExpr *getLoopVarRef() const { return LoopVarRef; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::OMPCanonicalLoop;
  }

private:
  Stmt *LoopStmt;
  CapturedStmt *DistanceFunc;
  CapturedStmt *LoopVarFunc;
  DeclRefExpr *LoopVarRef;
};

} // namespace mcc

#endif // MCC_AST_STMTOPENMP_H
