#include "ast/ExprConstant.h"

namespace mcc {

namespace {

std::optional<std::int64_t> evalImpl(const Expr *E, bool ReadConstVars) {
  switch (E->getStmtClass()) {
  case Stmt::StmtClass::IntegerLiteral:
    return static_cast<std::int64_t>(
        stmt_cast<IntegerLiteral>(E)->getValue());
  case Stmt::StmtClass::BoolLiteral:
    return stmt_cast<BoolLiteral>(E)->getValue() ? 1 : 0;
  case Stmt::StmtClass::ConstantExpr:
    return stmt_cast<ConstantExpr>(E)->getResult();
  case Stmt::StmtClass::ParenExpr:
    return evalImpl(stmt_cast<ParenExpr>(E)->getSubExpr(), ReadConstVars);
  case Stmt::StmtClass::ImplicitCastExpr: {
    const auto *ICE = stmt_cast<ImplicitCastExpr>(E);
    auto Sub = evalImpl(ICE->getSubExpr(), ReadConstVars);
    if (!Sub)
      return std::nullopt;
    switch (ICE->getCastKind()) {
    case CastKind::LValueToRValue:
    case CastKind::NoOp:
      return Sub;
    case CastKind::IntegralToBoolean:
      return *Sub != 0 ? 1 : 0;
    case CastKind::IntegralCast: {
      // Truncate / extend to the destination width and signedness.
      const Type *T = ICE->getType().getTypePtr();
      unsigned Bytes = T->getSizeInBytes();
      if (Bytes >= 8)
        return Sub;
      std::uint64_t Mask = (1ULL << (Bytes * 8)) - 1;
      std::uint64_t Truncated = static_cast<std::uint64_t>(*Sub) & Mask;
      if (T->isSignedIntegerType()) {
        std::uint64_t SignBit = 1ULL << (Bytes * 8 - 1);
        if (Truncated & SignBit)
          Truncated |= ~Mask;
      }
      return static_cast<std::int64_t>(Truncated);
    }
    default:
      return std::nullopt; // floating casts are not integral constants
    }
  }
  case Stmt::StmtClass::DeclRefExpr: {
    if (!ReadConstVars)
      return std::nullopt;
    const auto *DRE = stmt_cast<DeclRefExpr>(E);
    const auto *VD = decl_dyn_cast<VarDecl>(DRE->getDecl());
    if (!VD || !VD->getType().isConstQualified() || !VD->hasInit())
      return std::nullopt;
    return evalImpl(VD->getInit(), ReadConstVars);
  }
  case Stmt::StmtClass::UnaryOperator: {
    const auto *UO = stmt_cast<UnaryOperator>(E);
    auto Sub = evalImpl(UO->getSubExpr(), ReadConstVars);
    if (!Sub)
      return std::nullopt;
    switch (UO->getOpcode()) {
    case UnaryOperatorKind::Plus:
      return Sub;
    case UnaryOperatorKind::Minus:
      return -*Sub;
    case UnaryOperatorKind::LNot:
      return *Sub == 0 ? 1 : 0;
    case UnaryOperatorKind::Not:
      return ~*Sub;
    default:
      return std::nullopt; // ++/--/deref/addrof are not constants
    }
  }
  case Stmt::StmtClass::BinaryOperator: {
    const auto *BO = stmt_cast<BinaryOperator>(E);
    if (BO->isAssignmentOp())
      return std::nullopt;
    auto L = evalImpl(BO->getLHS(), ReadConstVars);
    if (!L)
      return std::nullopt;
    // Short-circuit operators may be constant even with a non-constant RHS.
    if (BO->getOpcode() == BinaryOperatorKind::LAnd && *L == 0)
      return 0;
    if (BO->getOpcode() == BinaryOperatorKind::LOr && *L != 0)
      return 1;
    auto R = evalImpl(BO->getRHS(), ReadConstVars);
    if (!R)
      return std::nullopt;
    bool IsUnsigned = BO->getLHS()->getType()->isUnsignedIntegerType();
    switch (BO->getOpcode()) {
    case BinaryOperatorKind::Mul:
      return *L * *R;
    case BinaryOperatorKind::Div:
      if (*R == 0)
        return std::nullopt;
      if (IsUnsigned)
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(*L) /
                                         static_cast<std::uint64_t>(*R));
      return *L / *R;
    case BinaryOperatorKind::Rem:
      if (*R == 0)
        return std::nullopt;
      if (IsUnsigned)
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(*L) %
                                         static_cast<std::uint64_t>(*R));
      return *L % *R;
    case BinaryOperatorKind::Add:
      return *L + *R;
    case BinaryOperatorKind::Sub:
      return *L - *R;
    case BinaryOperatorKind::Shl:
      return *L << (*R & 63);
    case BinaryOperatorKind::Shr:
      if (IsUnsigned)
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(*L) >>
                                         (*R & 63));
      return *L >> (*R & 63);
    case BinaryOperatorKind::LT:
      return IsUnsigned ? (static_cast<std::uint64_t>(*L) <
                           static_cast<std::uint64_t>(*R))
                        : (*L < *R);
    case BinaryOperatorKind::GT:
      return IsUnsigned ? (static_cast<std::uint64_t>(*L) >
                           static_cast<std::uint64_t>(*R))
                        : (*L > *R);
    case BinaryOperatorKind::LE:
      return IsUnsigned ? (static_cast<std::uint64_t>(*L) <=
                           static_cast<std::uint64_t>(*R))
                        : (*L <= *R);
    case BinaryOperatorKind::GE:
      return IsUnsigned ? (static_cast<std::uint64_t>(*L) >=
                           static_cast<std::uint64_t>(*R))
                        : (*L >= *R);
    case BinaryOperatorKind::EQ:
      return *L == *R;
    case BinaryOperatorKind::NE:
      return *L != *R;
    case BinaryOperatorKind::And:
      return *L & *R;
    case BinaryOperatorKind::Xor:
      return *L ^ *R;
    case BinaryOperatorKind::Or:
      return *L | *R;
    case BinaryOperatorKind::LAnd:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOperatorKind::LOr:
      return (*L != 0 || *R != 0) ? 1 : 0;
    case BinaryOperatorKind::Comma:
      return R;
    default:
      return std::nullopt;
    }
  }
  case Stmt::StmtClass::ConditionalOperator: {
    const auto *CO = stmt_cast<ConditionalOperator>(E);
    auto C = evalImpl(CO->getCond(), ReadConstVars);
    if (!C)
      return std::nullopt;
    return evalImpl(*C ? CO->getTrueExpr() : CO->getFalseExpr(),
                    ReadConstVars);
  }
  default:
    return std::nullopt;
  }
}

} // namespace

std::optional<std::int64_t> evaluateInteger(const Expr *E) {
  return evalImpl(E, /*ReadConstVars=*/false);
}

std::optional<std::int64_t> evaluateIntegerWithConstVars(const Expr *E) {
  return evalImpl(E, /*ReadConstVars=*/true);
}

} // namespace mcc
