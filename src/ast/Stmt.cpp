#include "ast/StmtOpenMP.h"

namespace mcc {

const char *Stmt::getStmtClassName() const {
  switch (SC) {
#define STMT(Class)                                                            \
  case StmtClass::Class:                                                       \
    return #Class;
#include "ast/StmtNodes.def"
  default:
    return "<unknown>";
  }
}

const char *Decl::getDeclClassName() const {
  switch (DC) {
  case DeclClass::TranslationUnit:
    return "TranslationUnitDecl";
  case DeclClass::Var:
    return "VarDecl";
  case DeclClass::ParmVar:
    return "ParmVarDecl";
  case DeclClass::ImplicitParam:
    return "ImplicitParamDecl";
  case DeclClass::Function:
    return "FunctionDecl";
  case DeclClass::Captured:
    return "CapturedDecl";
  }
  return "<unknown>";
}

std::vector<Stmt *> Stmt::children() const {
  std::vector<Stmt *> C;
  auto Add = [&C](Stmt *S) {
    if (S)
      C.push_back(S);
  };

  switch (SC) {
  case StmtClass::NullStmt:
  case StmtClass::BreakStmt:
  case StmtClass::ContinueStmt:
  case StmtClass::IntegerLiteral:
  case StmtClass::FloatingLiteral:
  case StmtClass::BoolLiteral:
  case StmtClass::StringLiteral:
  case StmtClass::DeclRefExpr:
    break;
  case StmtClass::CompoundStmt:
    for (Stmt *S : stmt_cast<CompoundStmt>(this)->body())
      Add(S);
    break;
  case StmtClass::DeclStmt:
    // The initializers are reachable through the declarations; like Clang,
    // DeclStmt::children() exposes the init expressions.
    for (VarDecl *D : stmt_cast<DeclStmt>(this)->decls())
      Add(D->getInit());
    break;
  case StmtClass::IfStmt: {
    const auto *S = stmt_cast<IfStmt>(this);
    Add(S->getCond());
    Add(S->getThen());
    Add(S->getElse());
    break;
  }
  case StmtClass::WhileStmt: {
    const auto *S = stmt_cast<WhileStmt>(this);
    Add(S->getCond());
    Add(S->getBody());
    break;
  }
  case StmtClass::DoStmt: {
    const auto *S = stmt_cast<DoStmt>(this);
    Add(S->getBody());
    Add(S->getCond());
    break;
  }
  case StmtClass::ForStmt: {
    const auto *S = stmt_cast<ForStmt>(this);
    Add(S->getInit());
    Add(S->getCond());
    Add(S->getInc());
    Add(S->getBody());
    break;
  }
  case StmtClass::ReturnStmt:
    Add(stmt_cast<ReturnStmt>(this)->getValue());
    break;
  case StmtClass::AttributedStmt:
    Add(stmt_cast<AttributedStmt>(this)->getSubStmt());
    break;
  case StmtClass::CapturedStmt:
    Add(stmt_cast<CapturedStmt>(this)->getCapturedStmt());
    break;
  case StmtClass::OMPCanonicalLoop: {
    const auto *S = stmt_cast<OMPCanonicalLoop>(this);
    Add(S->getLoopStmt());
    Add(S->getDistanceFunc());
    Add(S->getLoopVarFunc());
    Add(S->getLoopVarRef());
    break;
  }
  case StmtClass::ImplicitCastExpr:
    Add(stmt_cast<ImplicitCastExpr>(this)->getSubExpr());
    break;
  case StmtClass::ParenExpr:
    Add(stmt_cast<ParenExpr>(this)->getSubExpr());
    break;
  case StmtClass::UnaryOperator:
    Add(stmt_cast<UnaryOperator>(this)->getSubExpr());
    break;
  case StmtClass::BinaryOperator: {
    const auto *E = stmt_cast<BinaryOperator>(this);
    Add(E->getLHS());
    Add(E->getRHS());
    break;
  }
  case StmtClass::ConditionalOperator: {
    const auto *E = stmt_cast<ConditionalOperator>(this);
    Add(E->getCond());
    Add(E->getTrueExpr());
    Add(E->getFalseExpr());
    break;
  }
  case StmtClass::CallExpr: {
    const auto *E = stmt_cast<CallExpr>(this);
    Add(E->getCallee());
    for (Expr *A : E->arguments())
      Add(A);
    break;
  }
  case StmtClass::ArraySubscriptExpr: {
    const auto *E = stmt_cast<ArraySubscriptExpr>(this);
    Add(E->getBase());
    Add(E->getIndex());
    break;
  }
  case StmtClass::ConstantExpr:
    Add(stmt_cast<ConstantExpr>(this)->getSubExpr());
    break;
  // OpenMP directives: only the associated statement. Clauses and shadow
  // AST (transformed statements, loop helpers) are intentionally NOT
  // enumerated (paper Section 1.2, footnote 1).
  case StmtClass::OMPParallelDirective:
  case StmtClass::OMPBarrierDirective:
  case StmtClass::OMPCriticalDirective:
  case StmtClass::OMPSingleDirective:
  case StmtClass::OMPMasterDirective:
  case StmtClass::OMPForDirective:
  case StmtClass::OMPParallelForDirective:
  case StmtClass::OMPSimdDirective:
  case StmtClass::OMPForSimdDirective:
  case StmtClass::OMPTileDirective:
  case StmtClass::OMPUnrollDirective:
  case StmtClass::OMPReverseDirective:
  case StmtClass::OMPInterchangeDirective:
  case StmtClass::OMPFuseDirective:
  case StmtClass::OMPDistributeLoopDirective:
    Add(stmt_cast<OMPExecutableDirective>(this)->getAssociatedStmt());
    break;
  case StmtClass::NUM_STMT_CLASSES:
    break;
  }
  return C;
}

Expr *Expr::ignoreParenImpCasts() {
  Expr *E = this;
  while (true) {
    if (auto *P = stmt_dyn_cast<ParenExpr>(E)) {
      E = P->getSubExpr();
      continue;
    }
    if (auto *C = stmt_dyn_cast<ImplicitCastExpr>(E)) {
      E = C->getSubExpr();
      continue;
    }
    if (auto *CE = stmt_dyn_cast<ConstantExpr>(E)) {
      E = CE->getSubExpr();
      continue;
    }
    return E;
  }
}

Expr *Expr::ignoreParens() {
  Expr *E = this;
  while (auto *P = stmt_dyn_cast<ParenExpr>(E))
    E = P->getSubExpr();
  return E;
}

FunctionDecl *CallExpr::getDirectCallee() const {
  const Expr *C = Callee->ignoreParenImpCasts();
  if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(C))
    return decl_dyn_cast<FunctionDecl>(DRE->getDecl());
  return nullptr;
}

Stmt *OMPExecutableDirective::getInnermostAssociatedStmt() const {
  Stmt *S = AssociatedStmt;
  while (auto *CS = stmt_dyn_cast<CapturedStmt>(S))
    S = CS->getCapturedStmt();
  return S;
}

const char *getCastKindName(CastKind CK) {
  switch (CK) {
  case CastKind::LValueToRValue:
    return "LValueToRValue";
  case CastKind::IntegralCast:
    return "IntegralCast";
  case CastKind::IntegralToBoolean:
    return "IntegralToBoolean";
  case CastKind::IntegralToFloating:
    return "IntegralToFloating";
  case CastKind::FloatingToIntegral:
    return "FloatingToIntegral";
  case CastKind::FloatingCast:
    return "FloatingCast";
  case CastKind::FloatingToBoolean:
    return "FloatingToBoolean";
  case CastKind::PointerToBoolean:
    return "PointerToBoolean";
  case CastKind::ArrayToPointerDecay:
    return "ArrayToPointerDecay";
  case CastKind::FunctionToPointerDecay:
    return "FunctionToPointerDecay";
  case CastKind::NoOp:
    return "NoOp";
  }
  return "?";
}

const char *getUnaryOperatorSpelling(UnaryOperatorKind Op) {
  switch (Op) {
  case UnaryOperatorKind::PostInc:
  case UnaryOperatorKind::PreInc:
    return "++";
  case UnaryOperatorKind::PostDec:
  case UnaryOperatorKind::PreDec:
    return "--";
  case UnaryOperatorKind::Plus:
    return "+";
  case UnaryOperatorKind::Minus:
    return "-";
  case UnaryOperatorKind::LNot:
    return "!";
  case UnaryOperatorKind::Not:
    return "~";
  case UnaryOperatorKind::Deref:
    return "*";
  case UnaryOperatorKind::AddrOf:
    return "&";
  }
  return "?";
}

const char *getBinaryOperatorSpelling(BinaryOperatorKind Op) {
  switch (Op) {
  case BinaryOperatorKind::Mul:
    return "*";
  case BinaryOperatorKind::Div:
    return "/";
  case BinaryOperatorKind::Rem:
    return "%";
  case BinaryOperatorKind::Add:
    return "+";
  case BinaryOperatorKind::Sub:
    return "-";
  case BinaryOperatorKind::Shl:
    return "<<";
  case BinaryOperatorKind::Shr:
    return ">>";
  case BinaryOperatorKind::LT:
    return "<";
  case BinaryOperatorKind::GT:
    return ">";
  case BinaryOperatorKind::LE:
    return "<=";
  case BinaryOperatorKind::GE:
    return ">=";
  case BinaryOperatorKind::EQ:
    return "==";
  case BinaryOperatorKind::NE:
    return "!=";
  case BinaryOperatorKind::And:
    return "&";
  case BinaryOperatorKind::Xor:
    return "^";
  case BinaryOperatorKind::Or:
    return "|";
  case BinaryOperatorKind::LAnd:
    return "&&";
  case BinaryOperatorKind::LOr:
    return "||";
  case BinaryOperatorKind::Assign:
    return "=";
  case BinaryOperatorKind::MulAssign:
    return "*=";
  case BinaryOperatorKind::DivAssign:
    return "/=";
  case BinaryOperatorKind::RemAssign:
    return "%=";
  case BinaryOperatorKind::AddAssign:
    return "+=";
  case BinaryOperatorKind::SubAssign:
    return "-=";
  case BinaryOperatorKind::AndAssign:
    return "&=";
  case BinaryOperatorKind::XorAssign:
    return "^=";
  case BinaryOperatorKind::OrAssign:
    return "|=";
  case BinaryOperatorKind::Comma:
    return ",";
  }
  return "?";
}

} // namespace mcc
