//===--- Decl.h - MiniC declaration AST nodes -------------------*- C++ -*-===//
//
// The Decl hierarchy. As in Clang, Decl is unrelated to Stmt in the class
// hierarchy (there is no common AST-node base class); each hierarchy has its
// own visitor.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_DECL_H
#define MCC_AST_DECL_H

#include "ast/Type.h"
#include "support/SourceLocation.h"

#include <span>
#include <string_view>

namespace mcc {

class Expr;
class Stmt;
class CompoundStmt;

class Decl {
public:
  enum class DeclClass {
    TranslationUnit,
    Var,
    ParmVar,
    ImplicitParam,
    Function,
    Captured,
  };

  [[nodiscard]] DeclClass getDeclClass() const { return DC; }
  [[nodiscard]] SourceLocation getLocation() const { return Loc; }

  /// True for declarations synthesized by Sema rather than written in
  /// source (implicit parameters, transformation-internal variables...).
  [[nodiscard]] bool isImplicit() const { return Implicit; }
  void setImplicit(bool V = true) { Implicit = V; }

  [[nodiscard]] const char *getDeclClassName() const;

protected:
  Decl(DeclClass DC, SourceLocation Loc) : DC(DC), Loc(Loc) {}

private:
  DeclClass DC;
  SourceLocation Loc;
  bool Implicit = false;
};

class NamedDecl : public Decl {
public:
  /// Name storage is interned in the ASTContext and outlives the node.
  [[nodiscard]] std::string_view getName() const { return Name; }

  static bool classof(const Decl *D) {
    return D->getDeclClass() != DeclClass::TranslationUnit &&
           D->getDeclClass() != DeclClass::Captured;
  }

protected:
  NamedDecl(DeclClass DC, SourceLocation Loc, std::string_view Name)
      : Decl(DC, Loc), Name(Name) {}

private:
  std::string_view Name;
};

class ValueDecl : public NamedDecl {
public:
  [[nodiscard]] QualType getType() const { return Ty; }
  void setType(QualType T) { Ty = T; }

  static bool classof(const Decl *D) { return NamedDecl::classof(D); }

protected:
  ValueDecl(DeclClass DC, SourceLocation Loc, std::string_view Name,
            QualType Ty)
      : NamedDecl(DC, Loc, Name), Ty(Ty) {}

private:
  QualType Ty;
};

/// A variable declaration, possibly with an initializer.
class VarDecl : public ValueDecl {
public:
  VarDecl(SourceLocation Loc, std::string_view Name, QualType Ty,
          Expr *Init = nullptr)
      : ValueDecl(DeclClass::Var, Loc, Name, Ty), Init(Init) {}

  [[nodiscard]] Expr *getInit() const { return Init; }
  void setInit(Expr *E) { Init = E; }
  [[nodiscard]] bool hasInit() const { return Init != nullptr; }

  /// File-scope variables become IR globals.
  [[nodiscard]] bool isFileScope() const { return FileScope; }
  void setFileScope(bool V = true) { FileScope = V; }

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::Var ||
           D->getDeclClass() == DeclClass::ParmVar ||
           D->getDeclClass() == DeclClass::ImplicitParam;
  }

protected:
  VarDecl(DeclClass DC, SourceLocation Loc, std::string_view Name, QualType Ty)
      : ValueDecl(DC, Loc, Name, Ty) {}

private:
  Expr *Init = nullptr;
  bool FileScope = false;
};

/// A function parameter written in source.
class ParmVarDecl final : public VarDecl {
public:
  ParmVarDecl(SourceLocation Loc, std::string_view Name, QualType Ty)
      : VarDecl(DeclClass::ParmVar, Loc, Name, Ty) {}

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::ParmVar;
  }
};

/// A parameter synthesized by Sema for a CapturedDecl, e.g. the
/// ".global_tid." / ".bound_tid." / "__context" parameters the paper's
/// Listing 3 shows, or the "Result" / logical-iteration parameters of the
/// OMPCanonicalLoop distance and loop-variable functions.
class ImplicitParamDecl final : public VarDecl {
public:
  ImplicitParamDecl(SourceLocation Loc, std::string_view Name, QualType Ty)
      : VarDecl(DeclClass::ImplicitParam, Loc, Name, Ty) {
    setImplicit();
  }

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::ImplicitParam;
  }
};

class FunctionDecl final : public ValueDecl {
public:
  FunctionDecl(SourceLocation Loc, std::string_view Name, QualType Ty,
               std::span<ParmVarDecl *const> Params)
      : ValueDecl(DeclClass::Function, Loc, Name, Ty), Params(Params) {}

  [[nodiscard]] const FunctionType *getFunctionType() const {
    return type_cast<FunctionType>(getType().getTypePtr());
  }
  [[nodiscard]] QualType getReturnType() const {
    return getFunctionType()->getResultType();
  }

  [[nodiscard]] std::span<ParmVarDecl *const> parameters() const {
    return Params;
  }
  [[nodiscard]] unsigned getNumParams() const {
    return static_cast<unsigned>(Params.size());
  }

  [[nodiscard]] Stmt *getBody() const { return Body; }
  void setBody(Stmt *B) { Body = B; }
  [[nodiscard]] bool hasBody() const { return Body != nullptr; }

  /// Functions without bodies are external (bound by the interpreter to
  /// native implementations, e.g. the OpenMP runtime entry points).
  [[nodiscard]] bool isExternal() const { return Body == nullptr; }

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::Function;
  }

private:
  std::span<ParmVarDecl *const> Params;
  Stmt *Body = nullptr;
};

/// The 'lambda function' definition carried by a CapturedStmt (see the
/// paper's Listing 3): holds the captured statement and the implicit
/// parameters of the outlined function.
class CapturedDecl final : public Decl {
public:
  CapturedDecl(SourceLocation Loc, Stmt *Body,
               std::span<ImplicitParamDecl *const> Params)
      : Decl(DeclClass::Captured, Loc), Body(Body), Params(Params) {
    setImplicit();
  }

  [[nodiscard]] Stmt *getBody() const { return Body; }
  [[nodiscard]] std::span<ImplicitParamDecl *const> parameters() const {
    return Params;
  }
  [[nodiscard]] unsigned getNumParams() const {
    return static_cast<unsigned>(Params.size());
  }
  [[nodiscard]] ImplicitParamDecl *getParam(unsigned I) const {
    return Params[I];
  }

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::Captured;
  }

private:
  Stmt *Body;
  std::span<ImplicitParamDecl *const> Params;
};

class TranslationUnitDecl final : public Decl {
public:
  explicit TranslationUnitDecl(std::span<Decl *const> Decls)
      : Decl(DeclClass::TranslationUnit, SourceLocation()), Decls(Decls) {}

  [[nodiscard]] std::span<Decl *const> decls() const { return Decls; }

  static bool classof(const Decl *D) {
    return D->getDeclClass() == DeclClass::TranslationUnit;
  }

private:
  std::span<Decl *const> Decls;
};

template <typename To> To *decl_dyn_cast(Decl *D) {
  return (D && To::classof(D)) ? static_cast<To *>(D) : nullptr;
}
template <typename To> const To *decl_dyn_cast(const Decl *D) {
  return (D && To::classof(D)) ? static_cast<const To *>(D) : nullptr;
}
template <typename To> To *decl_cast(Decl *D) {
  assert(D && To::classof(D) && "bad decl_cast");
  return static_cast<To *>(D);
}
template <typename To> const To *decl_cast(const Decl *D) {
  assert(D && To::classof(D) && "bad decl_cast");
  return static_cast<const To *>(D);
}

} // namespace mcc

#endif // MCC_AST_DECL_H
