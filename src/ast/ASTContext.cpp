#include "ast/ASTContext.h"

namespace mcc {

ASTContext::ASTContext()
    : VoidTy(BuiltinType::Kind::Void), BoolTy(BuiltinType::Kind::Bool),
      CharTy(BuiltinType::Kind::Char), IntTy(BuiltinType::Kind::Int),
      UIntTy(BuiltinType::Kind::UInt), LongTy(BuiltinType::Kind::Long),
      ULongTy(BuiltinType::Kind::ULong), FloatTy(BuiltinType::Kind::Float),
      DoubleTy(BuiltinType::Kind::Double) {}

QualType ASTContext::getCorrespondingUnsignedType(QualType T) const {
  const auto *BT = type_dyn_cast<BuiltinType>(T.getTypePtr());
  if (!BT)
    return getULongType(); // pointers etc. use the widest unsigned
  switch (BT->getKind()) {
  case BuiltinType::Kind::Char:
  case BuiltinType::Kind::Bool:
  case BuiltinType::Kind::Int:
  case BuiltinType::Kind::UInt:
    return getUIntType();
  case BuiltinType::Kind::Long:
  case BuiltinType::Kind::ULong:
    return getULongType();
  default:
    return getULongType();
  }
}

QualType ASTContext::getPointerType(QualType Pointee) {
  // Note: uniquing ignores the pointee's const qualifier for simplicity;
  // "const T *" and "T *" share a canonical node but QualType-level
  // qualification on the pointer itself is preserved.
  auto It = PointerTypes.find(Pointee.getTypePtr());
  if (It != PointerTypes.end())
    return QualType(It->second);
  const auto *PT = Alloc.create<PointerType>(Pointee);
  PointerTypes[Pointee.getTypePtr()] = PT;
  return QualType(PT);
}

QualType ASTContext::getArrayType(QualType Element, std::uint64_t Size) {
  auto Key = std::make_pair(Element.getTypePtr(), Size);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return QualType(It->second);
  const auto *AT = Alloc.create<ArrayType>(Element, Size);
  ArrayTypes[Key] = AT;
  return QualType(AT);
}

QualType ASTContext::getFunctionType(QualType Result,
                                     const std::vector<QualType> &Params) {
  for (const FunctionType *FT : FunctionTypes) {
    if (FT->getResultType() != Result ||
        FT->getNumParams() != Params.size())
      continue;
    bool Same = true;
    for (unsigned I = 0; I < Params.size(); ++I)
      if (FT->getParamTypes()[I] != Params[I]) {
        Same = false;
        break;
      }
    if (Same)
      return QualType(FT);
  }
  std::span<QualType> Stored = allocateCopy(Params);
  const auto *FT = Alloc.create<FunctionType>(
      Result, std::span<const QualType>(Stored.data(), Stored.size()));
  FunctionTypes.push_back(FT);
  return QualType(FT);
}

} // namespace mcc
