#include "ast/Type.h"

namespace mcc {

bool Type::isIntegerType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->isInteger();
  return false;
}

bool Type::isSignedIntegerType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->isSignedInteger();
  return false;
}

bool Type::isUnsignedIntegerType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->isUnsignedInteger();
  return false;
}

bool Type::isFloatingType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->isFloating();
  return false;
}

bool Type::isBooleanType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->getKind() == BuiltinType::Kind::Bool;
  return false;
}

bool Type::isVoidType() const {
  if (const auto *BT = type_dyn_cast<BuiltinType>(this))
    return BT->getKind() == BuiltinType::Kind::Void;
  return false;
}

unsigned Type::getSizeInBytes() const {
  switch (TC) {
  case TypeClass::Builtin:
    return type_cast<BuiltinType>(this)->getSizeInBytes();
  case TypeClass::Pointer:
    return 8;
  case TypeClass::Array: {
    const auto *AT = type_cast<ArrayType>(this);
    return static_cast<unsigned>(AT->getNumElements() *
                                 AT->getElementType()->getSizeInBytes());
  }
  case TypeClass::Function:
    return 8; // decays to a pointer
  }
  return 0;
}

std::string Type::getAsString() const {
  switch (TC) {
  case TypeClass::Builtin:
    switch (type_cast<BuiltinType>(this)->getKind()) {
    case BuiltinType::Kind::Void:
      return "void";
    case BuiltinType::Kind::Bool:
      return "bool";
    case BuiltinType::Kind::Char:
      return "char";
    case BuiltinType::Kind::Int:
      return "int";
    case BuiltinType::Kind::UInt:
      return "unsigned int";
    case BuiltinType::Kind::Long:
      return "long";
    case BuiltinType::Kind::ULong:
      return "unsigned long";
    case BuiltinType::Kind::Float:
      return "float";
    case BuiltinType::Kind::Double:
      return "double";
    }
    return "?";
  case TypeClass::Pointer: {
    QualType Pointee = type_cast<PointerType>(this)->getPointeeType();
    std::string S = Pointee.getAsString();
    S += " *";
    return S;
  }
  case TypeClass::Array: {
    // C convention: outermost dimension first ("int[4][8]").
    const Type *T = this;
    std::string Dims;
    while (const auto *AT = type_dyn_cast<ArrayType>(T)) {
      Dims += "[" + std::to_string(AT->getNumElements()) + "]";
      T = AT->getElementType().getTypePtr();
    }
    return T->getAsString() + Dims;
  }
  case TypeClass::Function: {
    const auto *FT = type_cast<FunctionType>(this);
    std::string S = FT->getResultType().getAsString() + " (";
    bool First = true;
    for (QualType P : FT->getParamTypes()) {
      if (!First)
        S += ", ";
      S += P.getAsString();
      First = false;
    }
    S += ")";
    return S;
  }
  }
  return "?";
}

std::string QualType::getAsString() const {
  if (!Ty)
    return "<null>";
  std::string S;
  if (Const)
    S += "const ";
  S += Ty->getAsString();
  return S;
}

} // namespace mcc
