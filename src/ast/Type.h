//===--- Type.h - MiniC type system -----------------------------*- C++ -*-===//
//
// A small, ASTContext-uniqued type system: builtin scalar types, pointers,
// constant-size arrays and function types. QualType carries a const
// qualifier bit next to the canonical Type pointer, like Clang.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_TYPE_H
#define MCC_AST_TYPE_H

#include <cassert>
#include <cstdint>
#include <span>
#include <string>

namespace mcc {

class Type;

/// A (possibly const-qualified) reference to a canonical type.
class QualType {
public:
  QualType() = default;
  QualType(const Type *Ty, bool Const = false) : Ty(Ty), Const(Const) {}

  [[nodiscard]] const Type *getTypePtr() const { return Ty; }
  [[nodiscard]] bool isConstQualified() const { return Const; }
  [[nodiscard]] bool isNull() const { return Ty == nullptr; }

  [[nodiscard]] QualType withConst() const { return QualType(Ty, true); }
  [[nodiscard]] QualType withoutConst() const { return QualType(Ty, false); }

  const Type *operator->() const { return Ty; }
  const Type &operator*() const { return *Ty; }

  friend bool operator==(QualType A, QualType B) {
    return A.Ty == B.Ty && A.Const == B.Const;
  }
  friend bool operator!=(QualType A, QualType B) { return !(A == B); }

  /// Type equality ignoring qualifiers.
  [[nodiscard]] bool hasSameTypeAs(QualType Other) const {
    return Ty == Other.Ty;
  }

  [[nodiscard]] std::string getAsString() const;

private:
  const Type *Ty = nullptr;
  bool Const = false;
};

class Type {
public:
  enum class TypeClass { Builtin, Pointer, Array, Function };

  [[nodiscard]] TypeClass getTypeClass() const { return TC; }

  [[nodiscard]] bool isBuiltinType() const {
    return TC == TypeClass::Builtin;
  }
  [[nodiscard]] bool isPointerType() const {
    return TC == TypeClass::Pointer;
  }
  [[nodiscard]] bool isArrayType() const { return TC == TypeClass::Array; }
  [[nodiscard]] bool isFunctionType() const {
    return TC == TypeClass::Function;
  }

  [[nodiscard]] bool isIntegerType() const;
  [[nodiscard]] bool isSignedIntegerType() const;
  [[nodiscard]] bool isUnsignedIntegerType() const;
  [[nodiscard]] bool isFloatingType() const;
  [[nodiscard]] bool isArithmeticType() const {
    return isIntegerType() || isFloatingType();
  }
  [[nodiscard]] bool isBooleanType() const;
  [[nodiscard]] bool isVoidType() const;
  /// Integer, floating-point or pointer.
  [[nodiscard]] bool isScalarType() const {
    return isArithmeticType() || isPointerType();
  }

  /// Size in bytes (asserts for void/function types).
  [[nodiscard]] unsigned getSizeInBytes() const;

  [[nodiscard]] std::string getAsString() const;

protected:
  explicit Type(TypeClass TC) : TC(TC) {}

private:
  TypeClass TC;
};

class BuiltinType final : public Type {
public:
  enum class Kind { Void, Bool, Char, Int, UInt, Long, ULong, Float, Double };

  explicit BuiltinType(Kind K) : Type(TypeClass::Builtin), K(K) {}

  [[nodiscard]] Kind getKind() const { return K; }

  [[nodiscard]] bool isSignedInteger() const {
    return K == Kind::Char || K == Kind::Int || K == Kind::Long;
  }
  [[nodiscard]] bool isUnsignedInteger() const {
    return K == Kind::Bool || K == Kind::UInt || K == Kind::ULong;
  }
  [[nodiscard]] bool isInteger() const {
    return isSignedInteger() || isUnsignedInteger();
  }
  [[nodiscard]] bool isFloating() const {
    return K == Kind::Float || K == Kind::Double;
  }

  [[nodiscard]] unsigned getSizeInBytes() const {
    switch (K) {
    case Kind::Void:
      return 0;
    case Kind::Bool:
    case Kind::Char:
      return 1;
    case Kind::Int:
    case Kind::UInt:
    case Kind::Float:
      return 4;
    case Kind::Long:
    case Kind::ULong:
    case Kind::Double:
      return 8;
    }
    return 0;
  }

  /// Integer conversion rank for the usual arithmetic conversions.
  [[nodiscard]] unsigned getIntegerRank() const {
    switch (K) {
    case Kind::Bool:
      return 1;
    case Kind::Char:
      return 2;
    case Kind::Int:
    case Kind::UInt:
      return 4;
    case Kind::Long:
    case Kind::ULong:
      return 5;
    default:
      return 0;
    }
  }

  static bool classof(const Type *T) { return T->isBuiltinType(); }

private:
  Kind K;
};

class PointerType final : public Type {
public:
  explicit PointerType(QualType Pointee)
      : Type(TypeClass::Pointer), Pointee(Pointee) {}

  [[nodiscard]] QualType getPointeeType() const { return Pointee; }

  static bool classof(const Type *T) { return T->isPointerType(); }

private:
  QualType Pointee;
};

class ArrayType final : public Type {
public:
  ArrayType(QualType Element, std::uint64_t Size)
      : Type(TypeClass::Array), Element(Element), Size(Size) {}

  [[nodiscard]] QualType getElementType() const { return Element; }
  [[nodiscard]] std::uint64_t getNumElements() const { return Size; }

  static bool classof(const Type *T) { return T->isArrayType(); }

private:
  QualType Element;
  std::uint64_t Size;
};

class FunctionType final : public Type {
public:
  FunctionType(QualType Result, std::span<const QualType> Params)
      : Type(TypeClass::Function), Result(Result), Params(Params) {}

  [[nodiscard]] QualType getResultType() const { return Result; }
  [[nodiscard]] std::span<const QualType> getParamTypes() const {
    return Params;
  }
  [[nodiscard]] unsigned getNumParams() const {
    return static_cast<unsigned>(Params.size());
  }

  static bool classof(const Type *T) { return T->isFunctionType(); }

private:
  QualType Result;
  std::span<const QualType> Params; // storage owned by ASTContext
};

/// LLVM-style dyn_cast helpers specialized for our tiny hierarchy.
template <typename To> const To *type_dyn_cast(const Type *T) {
  return (T && To::classof(T)) ? static_cast<const To *>(T) : nullptr;
}
template <typename To> const To *type_cast(const Type *T) {
  assert(T && To::classof(T) && "bad type_cast");
  return static_cast<const To *>(T);
}

} // namespace mcc

#endif // MCC_AST_TYPE_H
