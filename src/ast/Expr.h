//===--- Expr.h - MiniC expression AST nodes --------------------*- C++ -*-===//
//
// Expressions. As in Clang, Expr derives from Stmt (an expression can be
// used as a statement with its result ignored). Sema inserts
// ImplicitCastExpr nodes so that every operator sees operands of its
// computation type, and lvalue-to-rvalue conversions are explicit.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_EXPR_H
#define MCC_AST_EXPR_H

#include "ast/Stmt.h"

#include <cstdint>
#include <optional>
#include <string_view>

namespace mcc {

class Expr : public Stmt {
public:
  [[nodiscard]] QualType getType() const { return Ty; }
  void setType(QualType T) { Ty = T; }

  [[nodiscard]] bool isLValue() const { return LValue; }
  void setIsLValue(bool V) { LValue = V; }

  /// Strips ParenExpr, ImplicitCastExpr and ConstantExpr wrappers.
  [[nodiscard]] Expr *ignoreParenImpCasts();
  [[nodiscard]] const Expr *ignoreParenImpCasts() const {
    return const_cast<Expr *>(this)->ignoreParenImpCasts();
  }
  /// Strips ParenExpr wrappers only.
  [[nodiscard]] Expr *ignoreParens();

  static bool classof(const Stmt *S) {
    return S->getStmtClass() >= StmtClass::firstExpr &&
           S->getStmtClass() <= StmtClass::lastExpr;
  }

protected:
  Expr(StmtClass SC, SourceRange Range, QualType Ty, bool LValue = false)
      : Stmt(SC, Range), Ty(Ty), LValue(LValue) {}

private:
  QualType Ty;
  bool LValue = false;
};

class IntegerLiteral final : public Expr {
public:
  IntegerLiteral(SourceLocation Loc, QualType Ty, std::uint64_t Value)
      : Expr(StmtClass::IntegerLiteral, SourceRange(Loc), Ty), Value(Value) {}

  [[nodiscard]] std::uint64_t getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::IntegerLiteral;
  }

private:
  std::uint64_t Value;
};

class FloatingLiteral final : public Expr {
public:
  FloatingLiteral(SourceLocation Loc, QualType Ty, double Value)
      : Expr(StmtClass::FloatingLiteral, SourceRange(Loc), Ty), Value(Value) {}

  [[nodiscard]] double getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::FloatingLiteral;
  }

private:
  double Value;
};

class BoolLiteral final : public Expr {
public:
  BoolLiteral(SourceLocation Loc, QualType Ty, bool Value)
      : Expr(StmtClass::BoolLiteral, SourceRange(Loc), Ty), Value(Value) {}

  [[nodiscard]] bool getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::BoolLiteral;
  }

private:
  bool Value;
};

class StringLiteral final : public Expr {
public:
  StringLiteral(SourceLocation Loc, QualType Ty, std::string_view Value)
      : Expr(StmtClass::StringLiteral, SourceRange(Loc), Ty, /*LValue=*/true),
        Value(Value) {}

  [[nodiscard]] std::string_view getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::StringLiteral;
  }

private:
  std::string_view Value; // interned in ASTContext
};

/// A reference to a declared value (variable, parameter or function).
class DeclRefExpr final : public Expr {
public:
  DeclRefExpr(SourceLocation Loc, ValueDecl *D, QualType Ty)
      : Expr(StmtClass::DeclRefExpr, SourceRange(Loc), Ty, /*LValue=*/true),
        D(D) {}

  [[nodiscard]] ValueDecl *getDecl() const { return D; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::DeclRefExpr;
  }

private:
  ValueDecl *D;
};

enum class CastKind {
  LValueToRValue,
  IntegralCast,
  IntegralToBoolean,
  IntegralToFloating,
  FloatingToIntegral,
  FloatingCast,
  FloatingToBoolean,
  PointerToBoolean,
  ArrayToPointerDecay,
  FunctionToPointerDecay,
  NoOp,
};

const char *getCastKindName(CastKind CK);

/// A conversion inserted by Sema (semantic-only node; the paper notes
/// Clang's AST mixes such nodes with syntax-only ones in one tree).
class ImplicitCastExpr final : public Expr {
public:
  ImplicitCastExpr(QualType Ty, CastKind CK, Expr *Op)
      : Expr(StmtClass::ImplicitCastExpr, Op->getSourceRange(), Ty), CK(CK),
        Op(Op) {}

  [[nodiscard]] CastKind getCastKind() const { return CK; }
  [[nodiscard]] Expr *getSubExpr() const { return Op; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ImplicitCastExpr;
  }

private:
  CastKind CK;
  Expr *Op;
};

/// "(expr)" — a syntax-only node preserved for fidelity of the AST dump.
class ParenExpr final : public Expr {
public:
  ParenExpr(SourceRange Range, Expr *Op)
      : Expr(StmtClass::ParenExpr, Range, Op->getType(), Op->isLValue()),
        Op(Op) {}

  [[nodiscard]] Expr *getSubExpr() const { return Op; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ParenExpr;
  }

private:
  Expr *Op;
};

enum class UnaryOperatorKind {
  PostInc,
  PostDec,
  PreInc,
  PreDec,
  Plus,
  Minus,
  LNot,
  Not, // bitwise ~
  Deref,
  AddrOf,
};

const char *getUnaryOperatorSpelling(UnaryOperatorKind Op);

class UnaryOperator final : public Expr {
public:
  UnaryOperator(SourceRange Range, UnaryOperatorKind Opc, QualType Ty,
                Expr *Operand, bool LValue = false)
      : Expr(StmtClass::UnaryOperator, Range, Ty, LValue), Opc(Opc),
        Operand(Operand) {}

  [[nodiscard]] UnaryOperatorKind getOpcode() const { return Opc; }
  [[nodiscard]] Expr *getSubExpr() const { return Operand; }

  [[nodiscard]] bool isIncrementDecrementOp() const {
    return Opc == UnaryOperatorKind::PostInc ||
           Opc == UnaryOperatorKind::PostDec ||
           Opc == UnaryOperatorKind::PreInc ||
           Opc == UnaryOperatorKind::PreDec;
  }
  [[nodiscard]] bool isIncrementOp() const {
    return Opc == UnaryOperatorKind::PostInc ||
           Opc == UnaryOperatorKind::PreInc;
  }
  [[nodiscard]] bool isPrefix() const {
    return Opc == UnaryOperatorKind::PreInc ||
           Opc == UnaryOperatorKind::PreDec;
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::UnaryOperator;
  }

private:
  UnaryOperatorKind Opc;
  Expr *Operand;
};

enum class BinaryOperatorKind {
  // Arithmetic / bitwise
  Mul,
  Div,
  Rem,
  Add,
  Sub,
  Shl,
  Shr,
  // Relational / equality
  LT,
  GT,
  LE,
  GE,
  EQ,
  NE,
  // Bitwise
  And,
  Xor,
  Or,
  // Logical (short-circuit)
  LAnd,
  LOr,
  // Assignment
  Assign,
  MulAssign,
  DivAssign,
  RemAssign,
  AddAssign,
  SubAssign,
  AndAssign,
  XorAssign,
  OrAssign,
  // Sequencing
  Comma,
};

const char *getBinaryOperatorSpelling(BinaryOperatorKind Op);

class BinaryOperator final : public Expr {
public:
  BinaryOperator(SourceRange Range, BinaryOperatorKind Opc, QualType Ty,
                 Expr *LHS, Expr *RHS, bool LValue = false)
      : Expr(StmtClass::BinaryOperator, Range, Ty, LValue), Opc(Opc), LHS(LHS),
        RHS(RHS) {}

  [[nodiscard]] BinaryOperatorKind getOpcode() const { return Opc; }
  [[nodiscard]] Expr *getLHS() const { return LHS; }
  [[nodiscard]] Expr *getRHS() const { return RHS; }

  [[nodiscard]] bool isAssignmentOp() const {
    return Opc >= BinaryOperatorKind::Assign &&
           Opc <= BinaryOperatorKind::OrAssign;
  }
  [[nodiscard]] bool isCompoundAssignmentOp() const {
    return Opc > BinaryOperatorKind::Assign &&
           Opc <= BinaryOperatorKind::OrAssign;
  }
  [[nodiscard]] bool isRelationalOp() const {
    return Opc >= BinaryOperatorKind::LT && Opc <= BinaryOperatorKind::GE;
  }
  [[nodiscard]] bool isEqualityOp() const {
    return Opc == BinaryOperatorKind::EQ || Opc == BinaryOperatorKind::NE;
  }
  [[nodiscard]] bool isComparisonOp() const {
    return isRelationalOp() || isEqualityOp();
  }
  [[nodiscard]] bool isAdditiveOp() const {
    return Opc == BinaryOperatorKind::Add || Opc == BinaryOperatorKind::Sub;
  }
  [[nodiscard]] bool isLogicalOp() const {
    return Opc == BinaryOperatorKind::LAnd || Opc == BinaryOperatorKind::LOr;
  }

  /// For compound assignments, the underlying arithmetic opcode
  /// (AddAssign -> Add etc.).
  [[nodiscard]] BinaryOperatorKind getCompoundOpcode() const {
    switch (Opc) {
    case BinaryOperatorKind::MulAssign:
      return BinaryOperatorKind::Mul;
    case BinaryOperatorKind::DivAssign:
      return BinaryOperatorKind::Div;
    case BinaryOperatorKind::RemAssign:
      return BinaryOperatorKind::Rem;
    case BinaryOperatorKind::AddAssign:
      return BinaryOperatorKind::Add;
    case BinaryOperatorKind::SubAssign:
      return BinaryOperatorKind::Sub;
    case BinaryOperatorKind::AndAssign:
      return BinaryOperatorKind::And;
    case BinaryOperatorKind::XorAssign:
      return BinaryOperatorKind::Xor;
    case BinaryOperatorKind::OrAssign:
      return BinaryOperatorKind::Or;
    default:
      assert(false && "not a compound assignment");
      return Opc;
    }
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::BinaryOperator;
  }

private:
  BinaryOperatorKind Opc;
  Expr *LHS;
  Expr *RHS;
};

class ConditionalOperator final : public Expr {
public:
  ConditionalOperator(SourceRange Range, QualType Ty, Expr *Cond,
                      Expr *TrueExpr, Expr *FalseExpr)
      : Expr(StmtClass::ConditionalOperator, Range, Ty), Cond(Cond),
        TrueExpr(TrueExpr), FalseExpr(FalseExpr) {}

  [[nodiscard]] Expr *getCond() const { return Cond; }
  [[nodiscard]] Expr *getTrueExpr() const { return TrueExpr; }
  [[nodiscard]] Expr *getFalseExpr() const { return FalseExpr; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ConditionalOperator;
  }

private:
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
};

class CallExpr final : public Expr {
public:
  CallExpr(SourceRange Range, QualType Ty, Expr *Callee,
           std::span<Expr *const> Args)
      : Expr(StmtClass::CallExpr, Range, Ty), Callee(Callee), Args(Args) {}

  [[nodiscard]] Expr *getCallee() const { return Callee; }
  [[nodiscard]] std::span<Expr *const> arguments() const { return Args; }
  [[nodiscard]] unsigned getNumArgs() const {
    return static_cast<unsigned>(Args.size());
  }

  /// The FunctionDecl being called, if the callee is a direct reference.
  [[nodiscard]] FunctionDecl *getDirectCallee() const;

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::CallExpr;
  }

private:
  Expr *Callee;
  std::span<Expr *const> Args;
};

class ArraySubscriptExpr final : public Expr {
public:
  ArraySubscriptExpr(SourceRange Range, QualType Ty, Expr *Base, Expr *Index)
      : Expr(StmtClass::ArraySubscriptExpr, Range, Ty, /*LValue=*/true),
        Base(Base), Index(Index) {}

  [[nodiscard]] Expr *getBase() const { return Base; }
  [[nodiscard]] Expr *getIndex() const { return Index; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ArraySubscriptExpr;
  }

private:
  Expr *Base;
  Expr *Index;
};

/// Wraps an expression that Sema has evaluated as an integral constant,
/// caching the value — the paper's Listing 6 shows this node wrapping the
/// argument of OMPPartialClause ("ConstantExpr ... value: Int 2").
class ConstantExpr final : public Expr {
public:
  ConstantExpr(Expr *Sub, std::int64_t Value)
      : Expr(StmtClass::ConstantExpr, Sub->getSourceRange(), Sub->getType()),
        Sub(Sub), Value(Value) {}

  [[nodiscard]] Expr *getSubExpr() const { return Sub; }
  [[nodiscard]] std::int64_t getResult() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ConstantExpr;
  }

private:
  Expr *Sub;
  std::int64_t Value;
};

} // namespace mcc

#endif // MCC_AST_EXPR_H
