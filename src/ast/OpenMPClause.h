//===--- OpenMPClause.h - OpenMP clause AST nodes ---------------*- C++ -*-===//
//
// The OMPClause hierarchy (paper Fig. 6). Clauses are AST nodes but, like in
// Clang, are unrelated to Stmt/Decl/Type in the class hierarchy — they have
// their own base class and their own visitor. In particular they are not
// enumerated by Stmt::children() (see the footnote in Section 1.2 of the
// paper).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_OPENMPCLAUSE_H
#define MCC_AST_OPENMPCLAUSE_H

#include "ast/Expr.h"
#include "ast/OpenMPKinds.h"

#include <span>

namespace mcc {

class OMPClause {
public:
  [[nodiscard]] OpenMPClauseKind getClauseKind() const { return Kind; }
  [[nodiscard]] SourceLocation getBeginLoc() const {
    return Range.getBegin();
  }
  [[nodiscard]] SourceRange getSourceRange() const { return Range; }

  [[nodiscard]] std::string_view getClauseName() const {
    return getOpenMPClauseName(Kind);
  }

protected:
  OMPClause(OpenMPClauseKind Kind, SourceRange Range)
      : Kind(Kind), Range(Range) {}

private:
  OpenMPClauseKind Kind;
  SourceRange Range;
};

template <typename To> const To *clause_dyn_cast(const OMPClause *C) {
  return (C && To::classof(C)) ? static_cast<const To *>(C) : nullptr;
}
template <typename To> const To *clause_cast(const OMPClause *C) {
  assert(C && To::classof(C) && "bad clause_cast");
  return static_cast<const To *>(C);
}

/// num_threads(expr)
class OMPNumThreadsClause final : public OMPClause {
public:
  OMPNumThreadsClause(SourceRange Range, Expr *NumThreads)
      : OMPClause(OpenMPClauseKind::NumThreads, Range),
        NumThreads(NumThreads) {}

  [[nodiscard]] Expr *getNumThreads() const { return NumThreads; }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::NumThreads;
  }

private:
  Expr *NumThreads;
};

/// schedule(kind[, chunk])
class OMPScheduleClause final : public OMPClause {
public:
  OMPScheduleClause(SourceRange Range, OpenMPScheduleKind Kind, Expr *Chunk)
      : OMPClause(OpenMPClauseKind::Schedule, Range), Kind(Kind),
        Chunk(Chunk) {}

  [[nodiscard]] OpenMPScheduleKind getScheduleKind() const { return Kind; }
  [[nodiscard]] Expr *getChunkSize() const { return Chunk; }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Schedule;
  }

private:
  OpenMPScheduleKind Kind;
  Expr *Chunk; // may be null
};

/// collapse(n) — n must be a constant positive integer.
class OMPCollapseClause final : public OMPClause {
public:
  OMPCollapseClause(SourceRange Range, ConstantExpr *Num)
      : OMPClause(OpenMPClauseKind::Collapse, Range), Num(Num) {}

  [[nodiscard]] ConstantExpr *getNumForLoops() const { return Num; }
  [[nodiscard]] unsigned getCollapseCount() const {
    return static_cast<unsigned>(Num->getResult());
  }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Collapse;
  }

private:
  ConstantExpr *Num;
};

/// full — request complete unrolling (paper Fig. 6, green).
class OMPFullClause final : public OMPClause {
public:
  explicit OMPFullClause(SourceRange Range)
      : OMPClause(OpenMPClauseKind::Full, Range) {}

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Full;
  }
};

/// partial(k) — request partial unrolling with factor k (paper Fig. 6).
/// The factor may be omitted, in which case the implementation chooses.
class OMPPartialClause final : public OMPClause {
public:
  OMPPartialClause(SourceRange Range, ConstantExpr *Factor)
      : OMPClause(OpenMPClauseKind::Partial, Range), Factor(Factor) {}

  /// Null when "partial" was written without an argument.
  [[nodiscard]] ConstantExpr *getFactor() const { return Factor; }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Partial;
  }

private:
  ConstantExpr *Factor;
};

/// sizes(s1, ..., sn) — tile sizes (paper Fig. 6).
class OMPSizesClause final : public OMPClause {
public:
  OMPSizesClause(SourceRange Range, std::span<ConstantExpr *const> Sizes)
      : OMPClause(OpenMPClauseKind::Sizes, Range), Sizes(Sizes) {}

  [[nodiscard]] std::span<ConstantExpr *const> getSizesRefs() const {
    return Sizes;
  }
  [[nodiscard]] unsigned getNumSizes() const {
    return static_cast<unsigned>(Sizes.size());
  }
  [[nodiscard]] std::int64_t getSize(unsigned I) const {
    return Sizes[I]->getResult();
  }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Sizes;
  }

private:
  std::span<ConstantExpr *const> Sizes;
};

/// permutation(p1, ..., pn) — interchange loop order (OpenMP 6.0). Each
/// argument is a 1-based original loop position; together they must form a
/// permutation of 1..n.
class OMPPermutationClause final : public OMPClause {
public:
  OMPPermutationClause(SourceRange Range, std::span<ConstantExpr *const> Args)
      : OMPClause(OpenMPClauseKind::Permutation, Range), Args(Args) {}

  [[nodiscard]] std::span<ConstantExpr *const> getArgRefs() const {
    return Args;
  }
  [[nodiscard]] unsigned getNumArgs() const {
    return static_cast<unsigned>(Args.size());
  }
  [[nodiscard]] std::int64_t getArg(unsigned I) const {
    return Args[I]->getResult();
  }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Permutation;
  }

private:
  std::span<ConstantExpr *const> Args;
};

/// looprange(first, count) — selects the 1-based contiguous subrange of
/// sibling loops a 'fuse' directive applies to (OpenMP 6.0). Both
/// arguments are positive integer constants; count must be >= 2.
class OMPLoopRangeClause final : public OMPClause {
public:
  OMPLoopRangeClause(SourceRange Range, ConstantExpr *First,
                     ConstantExpr *Count)
      : OMPClause(OpenMPClauseKind::LoopRange, Range), First(First),
        Count(Count) {}

  [[nodiscard]] ConstantExpr *getFirstRef() const { return First; }
  [[nodiscard]] ConstantExpr *getCountRef() const { return Count; }
  [[nodiscard]] std::int64_t getFirst() const { return First->getResult(); }
  [[nodiscard]] std::int64_t getCount() const { return Count->getResult(); }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::LoopRange;
  }

private:
  ConstantExpr *First;
  ConstantExpr *Count;
};

/// Base for clauses carrying a list of variables.
class OMPVarListClause : public OMPClause {
public:
  [[nodiscard]] std::span<DeclRefExpr *const> getVarRefs() const {
    return Vars;
  }
  [[nodiscard]] unsigned getNumVars() const {
    return static_cast<unsigned>(Vars.size());
  }

  static bool classof(const OMPClause *C) {
    OpenMPClauseKind K = C->getClauseKind();
    return K == OpenMPClauseKind::Private ||
           K == OpenMPClauseKind::FirstPrivate ||
           K == OpenMPClauseKind::Shared ||
           K == OpenMPClauseKind::Reduction;
  }

protected:
  OMPVarListClause(OpenMPClauseKind Kind, SourceRange Range,
                   std::span<DeclRefExpr *const> Vars)
      : OMPClause(Kind, Range), Vars(Vars) {}

private:
  std::span<DeclRefExpr *const> Vars;
};

class OMPPrivateClause final : public OMPVarListClause {
public:
  OMPPrivateClause(SourceRange Range, std::span<DeclRefExpr *const> Vars)
      : OMPVarListClause(OpenMPClauseKind::Private, Range, Vars) {}

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Private;
  }
};

class OMPFirstPrivateClause final : public OMPVarListClause {
public:
  OMPFirstPrivateClause(SourceRange Range, std::span<DeclRefExpr *const> Vars)
      : OMPVarListClause(OpenMPClauseKind::FirstPrivate, Range, Vars) {}

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::FirstPrivate;
  }
};

class OMPSharedClause final : public OMPVarListClause {
public:
  OMPSharedClause(SourceRange Range, std::span<DeclRefExpr *const> Vars)
      : OMPVarListClause(OpenMPClauseKind::Shared, Range, Vars) {}

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Shared;
  }
};

class OMPReductionClause final : public OMPVarListClause {
public:
  OMPReductionClause(SourceRange Range, OpenMPReductionOp Op,
                     std::span<DeclRefExpr *const> Vars)
      : OMPVarListClause(OpenMPClauseKind::Reduction, Range, Vars), Op(Op) {}

  [[nodiscard]] OpenMPReductionOp getOperator() const { return Op; }

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::Reduction;
  }

private:
  OpenMPReductionOp Op;
};

class OMPNoWaitClause final : public OMPClause {
public:
  explicit OMPNoWaitClause(SourceRange Range)
      : OMPClause(OpenMPClauseKind::NoWait, Range) {}

  static bool classof(const OMPClause *C) {
    return C->getClauseKind() == OpenMPClauseKind::NoWait;
  }
};

} // namespace mcc

#endif // MCC_AST_OPENMPCLAUSE_H
