#include "ast/TreeTransform.h"

namespace mcc {

VarDecl *TreeTransform::transformOwnedVarDecl(VarDecl *D) {
  Expr *NewInit = D->getInit() ? transformExpr(D->getInit()) : nullptr;
  VarDecl *NewD;
  switch (D->getDeclClass()) {
  case Decl::DeclClass::ParmVar:
    NewD = Ctx.create<ParmVarDecl>(D->getLocation(), D->getName(),
                                   D->getType());
    break;
  case Decl::DeclClass::ImplicitParam:
    NewD = Ctx.create<ImplicitParamDecl>(D->getLocation(), D->getName(),
                                         D->getType());
    break;
  default:
    NewD = Ctx.create<VarDecl>(D->getLocation(), D->getName(), D->getType(),
                               NewInit);
    break;
  }
  if (D->isImplicit())
    NewD->setImplicit();
  addDeclSubstitution(D, NewD);
  return NewD;
}

Expr *TreeTransform::transformExpr(Expr *E) {
  if (!E)
    return nullptr;
  return static_cast<Expr *>(transformStmt(E));
}

OMPClause *TreeTransform::transformClause(OMPClause *C) {
  // Clauses referencing variables must be re-built so private/reduction
  // lists follow declaration substitutions; value clauses are immutable and
  // contain only constant expressions, which we clone for ownership
  // consistency.
  switch (C->getClauseKind()) {
  case OpenMPClauseKind::Private:
  case OpenMPClauseKind::FirstPrivate:
  case OpenMPClauseKind::Shared:
  case OpenMPClauseKind::Reduction: {
    const auto *VL = clause_cast<OMPVarListClause>(C);
    std::vector<DeclRefExpr *> NewVars;
    for (DeclRefExpr *Ref : VL->getVarRefs())
      NewVars.push_back(static_cast<DeclRefExpr *>(transformExpr(Ref)));
    auto Stored = Ctx.allocateCopy(NewVars);
    std::span<DeclRefExpr *const> Span(Stored.data(), Stored.size());
    switch (C->getClauseKind()) {
    case OpenMPClauseKind::Private:
      return Ctx.create<OMPPrivateClause>(C->getSourceRange(), Span);
    case OpenMPClauseKind::FirstPrivate:
      return Ctx.create<OMPFirstPrivateClause>(C->getSourceRange(), Span);
    case OpenMPClauseKind::Shared:
      return Ctx.create<OMPSharedClause>(C->getSourceRange(), Span);
    default:
      return Ctx.create<OMPReductionClause>(
          C->getSourceRange(),
          clause_cast<OMPReductionClause>(C)->getOperator(), Span);
    }
  }
  default:
    return C; // value clauses hold no decl references
  }
}

Stmt *TreeTransform::transformStmt(Stmt *S) {
  if (!S)
    return nullptr;

  SourceRange R = S->getSourceRange();
  switch (S->getStmtClass()) {
  case Stmt::StmtClass::NullStmt:
    return Ctx.create<NullStmt>(R.getBegin());
  case Stmt::StmtClass::BreakStmt:
    return Ctx.create<BreakStmt>(R.getBegin());
  case Stmt::StmtClass::ContinueStmt:
    return Ctx.create<ContinueStmt>(R.getBegin());
  case Stmt::StmtClass::CompoundStmt: {
    const auto *CS = stmt_cast<CompoundStmt>(S);
    std::vector<Stmt *> Body;
    for (Stmt *Child : CS->body())
      Body.push_back(transformStmt(Child));
    auto Stored = Ctx.allocateCopy(Body);
    return Ctx.create<CompoundStmt>(
        R, std::span<Stmt *const>(Stored.data(), Stored.size()));
  }
  case Stmt::StmtClass::DeclStmt: {
    const auto *DS = stmt_cast<DeclStmt>(S);
    std::vector<VarDecl *> NewDecls;
    for (VarDecl *D : DS->decls())
      NewDecls.push_back(transformOwnedVarDecl(D));
    auto Stored = Ctx.allocateCopy(NewDecls);
    return Ctx.create<DeclStmt>(
        R, std::span<VarDecl *const>(Stored.data(), Stored.size()));
  }
  case Stmt::StmtClass::IfStmt: {
    const auto *IS = stmt_cast<IfStmt>(S);
    return Ctx.create<IfStmt>(R, transformExpr(IS->getCond()),
                              transformStmt(IS->getThen()),
                              transformStmt(IS->getElse()));
  }
  case Stmt::StmtClass::WhileStmt: {
    const auto *WS = stmt_cast<WhileStmt>(S);
    return Ctx.create<WhileStmt>(R, transformExpr(WS->getCond()),
                                 transformStmt(WS->getBody()));
  }
  case Stmt::StmtClass::DoStmt: {
    const auto *DS = stmt_cast<DoStmt>(S);
    return Ctx.create<DoStmt>(R, transformStmt(DS->getBody()),
                              transformExpr(DS->getCond()));
  }
  case Stmt::StmtClass::ForStmt: {
    const auto *FS = stmt_cast<ForStmt>(S);
    // Explicit sequencing: the init statement may declare the iteration
    // variable, and its substitution must be registered before the
    // condition/increment/body are transformed (function argument
    // evaluation order is unspecified).
    Stmt *NewInit = transformStmt(FS->getInit());
    Expr *NewCond = transformExpr(FS->getCond());
    Expr *NewInc = transformExpr(FS->getInc());
    Stmt *NewBody = transformStmt(FS->getBody());
    return Ctx.create<ForStmt>(R, NewInit, NewCond, NewInc, NewBody);
  }
  case Stmt::StmtClass::ReturnStmt:
    return Ctx.create<ReturnStmt>(
        R, transformExpr(stmt_cast<ReturnStmt>(S)->getValue()));
  case Stmt::StmtClass::AttributedStmt: {
    const auto *AS = stmt_cast<AttributedStmt>(S);
    return Ctx.create<AttributedStmt>(R, AS->getAttrs(),
                                      transformStmt(AS->getSubStmt()));
  }
  case Stmt::StmtClass::CapturedStmt: {
    const auto *CS = stmt_cast<CapturedStmt>(S);
    CapturedDecl *CD = CS->getCapturedDecl();
    std::vector<ImplicitParamDecl *> NewParams;
    for (ImplicitParamDecl *P : CD->parameters())
      NewParams.push_back(
          static_cast<ImplicitParamDecl *>(transformOwnedVarDecl(P)));
    Stmt *NewBody = transformStmt(CD->getBody());
    auto StoredParams = Ctx.allocateCopy(NewParams);
    auto *NewCD = Ctx.create<CapturedDecl>(
        CD->getLocation(), NewBody,
        std::span<ImplicitParamDecl *const>(StoredParams.data(),
                                            StoredParams.size()));
    std::vector<CapturedStmt::Capture> NewCaptures;
    for (const CapturedStmt::Capture &Cap : CS->captures()) {
      ValueDecl *Mapped = transformDecl(Cap.Var);
      NewCaptures.push_back(
          {static_cast<VarDecl *>(Mapped), Cap.ByRef});
    }
    auto StoredCaps = Ctx.allocateCopy(NewCaptures);
    return Ctx.create<CapturedStmt>(
        R, NewCD,
        std::span<const CapturedStmt::Capture>(StoredCaps.data(),
                                               StoredCaps.size()));
  }
  case Stmt::StmtClass::OMPCanonicalLoop: {
    const auto *CL = stmt_cast<OMPCanonicalLoop>(S);
    return Ctx.create<OMPCanonicalLoop>(
        transformStmt(CL->getLoopStmt()),
        static_cast<CapturedStmt *>(transformStmt(CL->getDistanceFunc())),
        static_cast<CapturedStmt *>(transformStmt(CL->getLoopVarFunc())),
        static_cast<DeclRefExpr *>(transformExpr(CL->getLoopVarRef())));
  }

  // --- Expressions ---
  case Stmt::StmtClass::IntegerLiteral: {
    const auto *E = stmt_cast<IntegerLiteral>(S);
    return Ctx.create<IntegerLiteral>(R.getBegin(), E->getType(),
                                      E->getValue());
  }
  case Stmt::StmtClass::FloatingLiteral: {
    const auto *E = stmt_cast<FloatingLiteral>(S);
    return Ctx.create<FloatingLiteral>(R.getBegin(), E->getType(),
                                       E->getValue());
  }
  case Stmt::StmtClass::BoolLiteral: {
    const auto *E = stmt_cast<BoolLiteral>(S);
    return Ctx.create<BoolLiteral>(R.getBegin(), E->getType(), E->getValue());
  }
  case Stmt::StmtClass::StringLiteral: {
    const auto *E = stmt_cast<StringLiteral>(S);
    return Ctx.create<StringLiteral>(R.getBegin(), E->getType(),
                                     E->getValue());
  }
  case Stmt::StmtClass::DeclRefExpr: {
    const auto *E = stmt_cast<DeclRefExpr>(S);
    ValueDecl *NewD = transformDecl(E->getDecl());
    return Ctx.create<DeclRefExpr>(R.getBegin(), NewD, NewD->getType());
  }
  case Stmt::StmtClass::ImplicitCastExpr: {
    const auto *E = stmt_cast<ImplicitCastExpr>(S);
    return Ctx.create<ImplicitCastExpr>(E->getType(), E->getCastKind(),
                                        transformExpr(E->getSubExpr()));
  }
  case Stmt::StmtClass::ParenExpr:
    return Ctx.create<ParenExpr>(
        R, transformExpr(stmt_cast<ParenExpr>(S)->getSubExpr()));
  case Stmt::StmtClass::UnaryOperator: {
    const auto *E = stmt_cast<UnaryOperator>(S);
    return Ctx.create<UnaryOperator>(R, E->getOpcode(), E->getType(),
                                     transformExpr(E->getSubExpr()),
                                     E->isLValue());
  }
  case Stmt::StmtClass::BinaryOperator: {
    const auto *E = stmt_cast<BinaryOperator>(S);
    return Ctx.create<BinaryOperator>(R, E->getOpcode(), E->getType(),
                                      transformExpr(E->getLHS()),
                                      transformExpr(E->getRHS()),
                                      E->isLValue());
  }
  case Stmt::StmtClass::ConditionalOperator: {
    const auto *E = stmt_cast<ConditionalOperator>(S);
    return Ctx.create<ConditionalOperator>(
        R, E->getType(), transformExpr(E->getCond()),
        transformExpr(E->getTrueExpr()), transformExpr(E->getFalseExpr()));
  }
  case Stmt::StmtClass::CallExpr: {
    const auto *E = stmt_cast<CallExpr>(S);
    std::vector<Expr *> Args;
    for (Expr *A : E->arguments())
      Args.push_back(transformExpr(A));
    auto Stored = Ctx.allocateCopy(Args);
    return Ctx.create<CallExpr>(
        R, E->getType(), transformExpr(E->getCallee()),
        std::span<Expr *const>(Stored.data(), Stored.size()));
  }
  case Stmt::StmtClass::ArraySubscriptExpr: {
    const auto *E = stmt_cast<ArraySubscriptExpr>(S);
    return Ctx.create<ArraySubscriptExpr>(R, E->getType(),
                                          transformExpr(E->getBase()),
                                          transformExpr(E->getIndex()));
  }
  case Stmt::StmtClass::ConstantExpr: {
    const auto *E = stmt_cast<ConstantExpr>(S);
    return Ctx.create<ConstantExpr>(transformExpr(E->getSubExpr()),
                                    E->getResult());
  }

  // --- OpenMP directives ---
  default: {
    const auto *D = stmt_cast<OMPExecutableDirective>(S);
    std::vector<OMPClause *> NewClauses;
    for (OMPClause *C : D->clauses())
      NewClauses.push_back(transformClause(C));
    auto StoredClauses = Ctx.allocateCopy(NewClauses);
    std::span<OMPClause *const> ClauseSpan(StoredClauses.data(),
                                           StoredClauses.size());
    Stmt *NewAssoc = transformStmt(D->getAssociatedStmt());
    switch (S->getStmtClass()) {
    case Stmt::StmtClass::OMPParallelDirective:
      return Ctx.create<OMPParallelDirective>(R, ClauseSpan, NewAssoc);
    case Stmt::StmtClass::OMPBarrierDirective:
      return Ctx.create<OMPBarrierDirective>(R);
    case Stmt::StmtClass::OMPCriticalDirective:
      return Ctx.create<OMPCriticalDirective>(R, NewAssoc);
    case Stmt::StmtClass::OMPSingleDirective:
      return Ctx.create<OMPSingleDirective>(R, ClauseSpan, NewAssoc);
    case Stmt::StmtClass::OMPMasterDirective:
      return Ctx.create<OMPMasterDirective>(R, NewAssoc);
    case Stmt::StmtClass::OMPForDirective: {
      const auto *LD = stmt_cast<OMPLoopBasedDirective>(S);
      return Ctx.create<OMPForDirective>(R, ClauseSpan, NewAssoc,
                                         LD->getLoopsNumber());
    }
    case Stmt::StmtClass::OMPParallelForDirective: {
      const auto *LD = stmt_cast<OMPLoopBasedDirective>(S);
      return Ctx.create<OMPParallelForDirective>(R, ClauseSpan, NewAssoc,
                                                 LD->getLoopsNumber());
    }
    case Stmt::StmtClass::OMPSimdDirective: {
      const auto *LD = stmt_cast<OMPLoopBasedDirective>(S);
      return Ctx.create<OMPSimdDirective>(R, ClauseSpan, NewAssoc,
                                          LD->getLoopsNumber());
    }
    case Stmt::StmtClass::OMPForSimdDirective: {
      const auto *LD = stmt_cast<OMPLoopBasedDirective>(S);
      return Ctx.create<OMPForSimdDirective>(R, ClauseSpan, NewAssoc,
                                             LD->getLoopsNumber());
    }
    case Stmt::StmtClass::OMPTileDirective: {
      const auto *LD = stmt_cast<OMPTileDirective>(S);
      auto *NewD = Ctx.create<OMPTileDirective>(R, ClauseSpan, NewAssoc,
                                                LD->getLoopsNumber());
      NewD->setTransformedStmt(transformStmt(LD->getTransformedStmt()));
      NewD->setPreInits(transformStmt(LD->getPreInits()));
      return NewD;
    }
    case Stmt::StmtClass::OMPUnrollDirective: {
      const auto *LD = stmt_cast<OMPUnrollDirective>(S);
      auto *NewD = Ctx.create<OMPUnrollDirective>(R, ClauseSpan, NewAssoc);
      NewD->setTransformedStmt(transformStmt(LD->getTransformedStmt()));
      NewD->setPreInits(transformStmt(LD->getPreInits()));
      return NewD;
    }
    default:
      assert(false && "unhandled statement class in TreeTransform");
      return nullptr;
    }
  }
  }
}

} // namespace mcc
