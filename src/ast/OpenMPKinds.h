//===--- OpenMPKinds.h - OpenMP directive and clause kinds ------*- C++ -*-===//
//
// Enumerations for the OpenMP 5.1 subset this front-end implements:
// the loop-associated constructs plus the loop *transformation* constructs
// (tile, unroll) that are the subject of the paper.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_OPENMPKINDS_H
#define MCC_AST_OPENMPKINDS_H

#include <string_view>

namespace mcc {

enum class OpenMPDirectiveKind {
  Unknown,
  Parallel,    // #pragma omp parallel
  For,         // #pragma omp for
  ParallelFor, // #pragma omp parallel for (combined)
  Simd,        // #pragma omp simd
  ForSimd,     // #pragma omp for simd (composite)
  Tile,        // #pragma omp tile   (OpenMP 5.1 loop transformation)
  Unroll,      // #pragma omp unroll (OpenMP 5.1 loop transformation)
  Reverse,     // #pragma omp reverse     (OpenMP 6.0 loop transformation)
  Interchange, // #pragma omp interchange (OpenMP 6.0 loop transformation)
  Fuse,        // #pragma omp fuse (OpenMP 6.0 loop transformation; fuses a
               // sequence of adjacent canonical sibling loops)
  DistributeLoop, // #pragma omp distribute_loop (loop distribution: splits
                  // one canonical body into per-statement-group loops)
  Barrier,     // #pragma omp barrier
  Critical,    // #pragma omp critical
  Single,      // #pragma omp single
  Master,      // #pragma omp master
};

enum class OpenMPClauseKind {
  Unknown,
  NumThreads,
  Schedule,
  Collapse,
  Full,    // unroll full
  Partial, // unroll partial(k)
  Sizes,       // tile sizes(s1, ..., sn)
  Permutation, // interchange permutation(p1, ..., pn)
  LoopRange,   // fuse looprange(first, count) — 1-based subrange selector
  Private,
  FirstPrivate,
  Shared,
  Reduction,
  NoWait,
};

enum class OpenMPScheduleKind {
  Unknown,
  Static,
  Dynamic,
  Guided,
  Auto,
  Runtime,
};

enum class OpenMPReductionOp {
  Add,
  Mul,
  Min,
  Max,
  BitAnd,
  BitOr,
  BitXor,
  LogAnd,
  LogOr,
};

std::string_view getOpenMPDirectiveName(OpenMPDirectiveKind Kind);
OpenMPDirectiveKind parseOpenMPDirectiveKind(std::string_view Name);

std::string_view getOpenMPClauseName(OpenMPClauseKind Kind);
OpenMPClauseKind parseOpenMPClauseKind(std::string_view Name);

std::string_view getOpenMPScheduleKindName(OpenMPScheduleKind Kind);
OpenMPScheduleKind parseOpenMPScheduleKind(std::string_view Name);

std::string_view getOpenMPReductionOpName(OpenMPReductionOp Op);

/// True for directives that are associated with a canonical loop nest
/// (anything derived from OMPLoopBasedDirective in the class hierarchy).
bool isOpenMPLoopAssociatedDirective(OpenMPDirectiveKind Kind);

/// True for the OpenMP 5.1 loop transformation constructs.
bool isOpenMPLoopTransformationDirective(OpenMPDirectiveKind Kind);

/// True for directives containing a 'parallel' region (outlining required).
bool isOpenMPParallelDirective(OpenMPDirectiveKind Kind);

/// True for directives with a worksharing-loop region.
bool isOpenMPWorksharingDirective(OpenMPDirectiveKind Kind);

/// True if clause \p Clause may appear on directive \p Directive.
bool isAllowedClauseForDirective(OpenMPDirectiveKind Directive,
                                 OpenMPClauseKind Clause);

} // namespace mcc

#endif // MCC_AST_OPENMPKINDS_H
