//===--- ASTDumper.h - clang-style -ast-dump output -------------*- C++ -*-===//
//
// Renders the AST in the tree format of "clang -Xclang -ast-dump", which the
// paper's Listings 3, 6, 8 and 10 show. By default shadow AST children
// (transformed statements, loop directive helpers) are hidden exactly like
// in Clang ("presumably ... to not print excessive output", Section 1.2);
// setShowShadowAST(true) reveals them for debugging.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_ASTDUMPER_H
#define MCC_AST_ASTDUMPER_H

#include "ast/StmtOpenMP.h"

#include <string>

namespace mcc {

class ASTDumper {
public:
  explicit ASTDumper(std::string &OS) : OS(OS) {}

  /// Print node addresses like Clang does. Off by default so test
  /// expectations are stable.
  void setShowAddresses(bool V) { ShowAddresses = V; }

  /// Also dump shadow AST subtrees (annotated as such).
  void setShowShadowAST(bool V) { ShowShadowAST = V; }

  void dumpStmt(const Stmt *S);
  void dumpDecl(const Decl *D);
  void dumpClause(const OMPClause *C);

private:
  struct ChildList;
  void writeLine(const std::string &Label);
  void withChildren(const std::string &Label, ChildList &Children);

  std::string stmtLabel(const Stmt *S);
  std::string declLabel(const Decl *D);
  std::string clauseLabel(const OMPClause *C);
  std::string addr(const void *P) const;

  std::string &OS;
  std::string Prefix;
  bool ShowAddresses = false;
  bool ShowShadowAST = false;
};

/// Convenience: dump a statement subtree to a string.
std::string dumpToString(const Stmt *S, bool ShowShadowAST = false);
std::string dumpToString(const Decl *D, bool ShowShadowAST = false);

} // namespace mcc

#endif // MCC_AST_ASTDUMPER_H
