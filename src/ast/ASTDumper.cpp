#include "ast/ASTDumper.h"

#include <functional>
#include <sstream>

namespace mcc {

/// A list of deferred child-printing actions, so the dumper knows which
/// child is last (printed with "`-" and a blank continuation) versus
/// intermediate ("|-" with a "| " continuation).
struct ASTDumper::ChildList {
  std::vector<std::function<void()>> Actions;

  void add(std::function<void()> F) { Actions.push_back(std::move(F)); }
};

std::string ASTDumper::addr(const void *P) const {
  if (!ShowAddresses)
    return {};
  std::ostringstream SS;
  SS << ' ' << P;
  return SS.str();
}

void ASTDumper::writeLine(const std::string &Label) {
  OS += Prefix;
  OS += Label;
  OS += '\n';
}

void ASTDumper::withChildren(const std::string &Label, ChildList &Children) {
  writeLine(Label);
  std::string Saved = Prefix;
  // Lines of child subtrees start where this node's connector was; for a
  // root node the prefix is empty.
  for (std::size_t I = 0; I < Children.Actions.size(); ++I) {
    bool Last = I + 1 == Children.Actions.size();
    Prefix = Saved;
    // Replace this node's own connector with the continuation piece.
    if (!Prefix.empty()) {
      std::string Cont = Prefix.substr(0, Prefix.size() - 2);
      Cont += (Prefix.substr(Prefix.size() - 2) == "`-") ? "  " : "| ";
      Prefix = Cont;
    }
    Prefix += Last ? "`-" : "|-";
    Children.Actions[I]();
  }
  Prefix = Saved;
}

std::string ASTDumper::clauseLabel(const OMPClause *C) {
  std::string L = "OMP";
  // Camel-case the clause name: "num_threads" -> "NumThreads".
  std::string_view Name = C->getClauseName();
  bool Upper = true;
  for (char Ch : Name) {
    if (Ch == '_') {
      Upper = true;
      continue;
    }
    L += Upper ? static_cast<char>(std::toupper(Ch)) : Ch;
    Upper = false;
  }
  L += "Clause";
  if (const auto *SC = clause_dyn_cast<OMPScheduleClause>(C)) {
    L += " ";
    L += getOpenMPScheduleKindName(SC->getScheduleKind());
  }
  if (const auto *RC = clause_dyn_cast<OMPReductionClause>(C)) {
    L += " '";
    L += getOpenMPReductionOpName(RC->getOperator());
    L += "'";
  }
  return L;
}

void ASTDumper::dumpClause(const OMPClause *C) {
  ChildList Children;
  if (const auto *NT = clause_dyn_cast<OMPNumThreadsClause>(C))
    Children.add([this, NT] { dumpStmt(NT->getNumThreads()); });
  if (const auto *SC = clause_dyn_cast<OMPScheduleClause>(C))
    if (SC->getChunkSize())
      Children.add([this, SC] { dumpStmt(SC->getChunkSize()); });
  if (const auto *CC = clause_dyn_cast<OMPCollapseClause>(C))
    Children.add([this, CC] { dumpStmt(CC->getNumForLoops()); });
  if (const auto *PC = clause_dyn_cast<OMPPartialClause>(C))
    if (PC->getFactor())
      Children.add([this, PC] { dumpStmt(PC->getFactor()); });
  if (const auto *SZ = clause_dyn_cast<OMPSizesClause>(C))
    for (ConstantExpr *E : SZ->getSizesRefs())
      Children.add([this, E] { dumpStmt(E); });
  if (const auto *PM = clause_dyn_cast<OMPPermutationClause>(C))
    for (ConstantExpr *E : PM->getArgRefs())
      Children.add([this, E] { dumpStmt(E); });
  if (const auto *LR = clause_dyn_cast<OMPLoopRangeClause>(C)) {
    Children.add([this, LR] { dumpStmt(LR->getFirstRef()); });
    Children.add([this, LR] { dumpStmt(LR->getCountRef()); });
  }
  if (const auto *VL = clause_dyn_cast<OMPVarListClause>(C))
    for (DeclRefExpr *E : VL->getVarRefs())
      Children.add([this, E] { dumpStmt(E); });
  withChildren(clauseLabel(C), Children);
}

std::string ASTDumper::stmtLabel(const Stmt *S) {
  std::string L = S->getStmtClassName();
  L += addr(S);

  if (const auto *E = stmt_dyn_cast<Expr>(S)) {
    L += " '";
    L += E->getType().getAsString();
    L += "'";
    if (E->isLValue())
      L += " lvalue";
  }

  switch (S->getStmtClass()) {
  case Stmt::StmtClass::IntegerLiteral:
    L += " " + std::to_string(
                   static_cast<std::int64_t>(
                       stmt_cast<IntegerLiteral>(S)->getValue()));
    break;
  case Stmt::StmtClass::FloatingLiteral: {
    std::ostringstream SS;
    SS << ' ' << stmt_cast<FloatingLiteral>(S)->getValue();
    L += SS.str();
    break;
  }
  case Stmt::StmtClass::BoolLiteral:
    L += stmt_cast<BoolLiteral>(S)->getValue() ? " true" : " false";
    break;
  case Stmt::StmtClass::StringLiteral:
    L += " \"" + std::string(stmt_cast<StringLiteral>(S)->getValue()) + "\"";
    break;
  case Stmt::StmtClass::DeclRefExpr: {
    const auto *DRE = stmt_cast<DeclRefExpr>(S);
    const ValueDecl *D = DRE->getDecl();
    L += " ";
    // Clang prints the declaration kind without the "Decl" suffix: Var,
    // ParmVar, Function, ...
    std::string KindName = D->getDeclClassName();
    if (KindName.size() > 4 && KindName.ends_with("Decl"))
      KindName.resize(KindName.size() - 4);
    L += KindName;
    L += addr(D);
    L += " '" + std::string(D->getName()) + "' '" +
         D->getType().getAsString() + "'";
    break;
  }
  case Stmt::StmtClass::ImplicitCastExpr:
    L += " <";
    L += getCastKindName(stmt_cast<ImplicitCastExpr>(S)->getCastKind());
    L += ">";
    break;
  case Stmt::StmtClass::UnaryOperator: {
    const auto *UO = stmt_cast<UnaryOperator>(S);
    L += UO->isIncrementDecrementOp() && !UO->isPrefix() ? " postfix"
                                                         : " prefix";
    L += " '";
    L += getUnaryOperatorSpelling(UO->getOpcode());
    L += "'";
    break;
  }
  case Stmt::StmtClass::BinaryOperator:
    L += " '";
    L += getBinaryOperatorSpelling(stmt_cast<BinaryOperator>(S)->getOpcode());
    L += "'";
    break;
  default:
    break;
  }
  return L;
}

void ASTDumper::dumpStmt(const Stmt *S) {
  if (!S) {
    writeLine("<<<NULL>>>");
    return;
  }

  ChildList Children;

  auto AddStmt = [this, &Children](const Stmt *Child) {
    Children.add([this, Child] { dumpStmt(Child); });
  };
  auto AddDecl = [this, &Children](const Decl *Child) {
    Children.add([this, Child] { dumpDecl(Child); });
  };

  switch (S->getStmtClass()) {
  case Stmt::StmtClass::ForStmt: {
    // Clang dumps all five slots including <<<NULL>>> placeholders.
    const auto *F = stmt_cast<ForStmt>(S);
    AddStmt(F->getInit());
    AddStmt(F->getCond());
    AddStmt(F->getInc());
    AddStmt(F->getBody());
    break;
  }
  case Stmt::StmtClass::IfStmt: {
    const auto *I = stmt_cast<IfStmt>(S);
    AddStmt(I->getCond());
    AddStmt(I->getThen());
    if (I->hasElse())
      AddStmt(I->getElse());
    break;
  }
  case Stmt::StmtClass::DeclStmt:
    for (const VarDecl *D : stmt_cast<DeclStmt>(S)->decls())
      AddDecl(D);
    break;
  case Stmt::StmtClass::CapturedStmt:
    AddDecl(stmt_cast<CapturedStmt>(S)->getCapturedDecl());
    break;
  case Stmt::StmtClass::ConstantExpr: {
    const auto *CE = stmt_cast<ConstantExpr>(S);
    // Clang prints the cached value as a "value: Int N" line.
    std::string ValueLine =
        "value: Int " + std::to_string(CE->getResult());
    Children.add([this, ValueLine] { writeLine(ValueLine); });
    AddStmt(CE->getSubExpr());
    break;
  }
  case Stmt::StmtClass::AttributedStmt: {
    const auto *AS = stmt_cast<AttributedStmt>(S);
    for (const Attr *A : AS->getAttrs()) {
      const auto *LH = static_cast<const LoopHintAttr *>(A);
      std::string AttrLabel = "LoopHintAttr";
      if (LH->isImplicit())
        AttrLabel += " Implicit";
      AttrLabel += " loop ";
      AttrLabel += LH->getOptionName();
      if (LH->getValue()) {
        AttrLabel += " Numeric";
        const Expr *Value = LH->getValue();
        Children.add([this, AttrLabel, Value] {
          ChildList AttrChildren;
          AttrChildren.add([this, Value] { dumpStmt(Value); });
          withChildren(AttrLabel, AttrChildren);
        });
      } else {
        Children.add([this, AttrLabel] { writeLine(AttrLabel); });
      }
    }
    AddStmt(AS->getSubStmt());
    break;
  }
  default: {
    // OpenMP directives print their clauses first (via the specialized
    // path, since children() does not include them), then the associated
    // statement.
    if (const auto *D = stmt_dyn_cast<OMPExecutableDirective>(S)) {
      for (const OMPClause *C : D->clauses())
        Children.add([this, C] { dumpClause(C); });
      if (D->hasAssociatedStmt())
        AddStmt(D->getAssociatedStmt());
      if (ShowShadowAST) {
        if (const auto *LT =
                stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
          if (const Stmt *PI = LT->getPreInits())
            Children.add([this, PI] {
              ChildList Sub;
              Sub.add([this, PI] { dumpStmt(PI); });
              withChildren("shadow: PreInits", Sub);
            });
          if (const Stmt *TS = LT->getTransformedStmt())
            Children.add([this, TS] {
              ChildList Sub;
              Sub.add([this, TS] { dumpStmt(TS); });
              withChildren("shadow: TransformedStmt", Sub);
            });
        }
      }
      break;
    }
    for (Stmt *Child : S->children())
      AddStmt(Child);
    break;
  }
  }

  withChildren(stmtLabel(S), Children);
}

std::string ASTDumper::declLabel(const Decl *D) {
  std::string L = D->getDeclClassName();
  L += addr(D);
  if (D->getDeclClass() == Decl::DeclClass::Captured) {
    L += " nothrow";
    return L;
  }
  if (const auto *ND = decl_dyn_cast<NamedDecl>(D)) {
    if (D->isImplicit())
      L += " implicit";
    L += " " + std::string(ND->getName());
  }
  if (const auto *VD = decl_dyn_cast<ValueDecl>(D))
    L += " '" + VD->getType().getAsString() + "'";
  if (const auto *Var = decl_dyn_cast<VarDecl>(D))
    if (Var->hasInit())
      L += " cinit";
  return L;
}

void ASTDumper::dumpDecl(const Decl *D) {
  if (!D) {
    writeLine("<<<NULL>>>");
    return;
  }

  ChildList Children;
  if (const auto *TU = decl_dyn_cast<TranslationUnitDecl>(D)) {
    for (const Decl *Child : TU->decls())
      Children.add([this, Child] { dumpDecl(Child); });
  } else if (const auto *FD = decl_dyn_cast<FunctionDecl>(D)) {
    for (const ParmVarDecl *P : FD->parameters())
      Children.add([this, P] { dumpDecl(P); });
    if (FD->hasBody())
      Children.add([this, FD] { dumpStmt(FD->getBody()); });
  } else if (const auto *CD = decl_dyn_cast<CapturedDecl>(D)) {
    // Clang's order: the captured statement first, then the implicit
    // parameters (see the paper's Listing 3).
    Children.add([this, CD] { dumpStmt(CD->getBody()); });
    for (const ImplicitParamDecl *P : CD->parameters())
      Children.add([this, P] { dumpDecl(P); });
  } else if (const auto *VD = decl_dyn_cast<VarDecl>(D)) {
    if (VD->hasInit())
      Children.add([this, VD] { dumpStmt(VD->getInit()); });
  }

  withChildren(declLabel(D), Children);
}

std::string dumpToString(const Stmt *S, bool ShowShadowAST) {
  std::string Out;
  ASTDumper D(Out);
  D.setShowShadowAST(ShowShadowAST);
  D.dumpStmt(S);
  return Out;
}

std::string dumpToString(const Decl *D, bool ShowShadowAST) {
  std::string Out;
  ASTDumper Dumper(Out);
  Dumper.setShowShadowAST(ShowShadowAST);
  Dumper.dumpDecl(D);
  return Out;
}

} // namespace mcc
