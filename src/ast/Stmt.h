//===--- Stmt.h - MiniC statement AST nodes ---------------------*- C++ -*-===//
//
// The Stmt hierarchy. Mirrors Clang's design decisions that the paper
// discusses: nodes are immutable once built (with narrow exceptions used by
// Sema during construction), Expr derives from Stmt, and OpenMP directives
// keep *shadow AST* children that children() deliberately does not
// enumerate.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_STMT_H
#define MCC_AST_STMT_H

#include "ast/Decl.h"
#include "support/SourceLocation.h"

#include <span>
#include <vector>

namespace mcc {

class Expr;
class Attr;

class Stmt {
public:
  enum class StmtClass {
#define STMT(Class) Class,
#include "ast/StmtNodes.def"
    NUM_STMT_CLASSES,
    // Range markers for classof range checks.
    firstExpr = IntegerLiteral,
    lastExpr = ConstantExpr,
    firstOMPExecutable = OMPParallelDirective,
    lastOMPExecutable = OMPDistributeLoopDirective,
    firstOMPLoopBased = OMPForDirective,
    lastOMPLoopBased = OMPDistributeLoopDirective,
    firstOMPLoop = OMPForDirective,
    lastOMPLoop = OMPForSimdDirective,
  };

  [[nodiscard]] StmtClass getStmtClass() const { return SC; }
  [[nodiscard]] const char *getStmtClassName() const;

  [[nodiscard]] SourceLocation getBeginLoc() const { return Range.getBegin(); }
  [[nodiscard]] SourceLocation getEndLoc() const { return Range.getEnd(); }
  [[nodiscard]] SourceRange getSourceRange() const { return Range; }

  /// The syntactic children of this node. Per the paper (Section 1.2),
  /// OpenMP directives have additional *shadow* children that are NOT
  /// returned here; they are reachable only through dedicated accessors
  /// such as OMPUnrollDirective::getTransformedStmt().
  [[nodiscard]] std::vector<Stmt *> children() const;

protected:
  Stmt(StmtClass SC, SourceRange Range) : SC(SC), Range(Range) {}

private:
  StmtClass SC;
  SourceRange Range;
};

template <typename To> To *stmt_dyn_cast(Stmt *S) {
  return (S && To::classof(S)) ? static_cast<To *>(S) : nullptr;
}
template <typename To> const To *stmt_dyn_cast(const Stmt *S) {
  return (S && To::classof(S)) ? static_cast<const To *>(S) : nullptr;
}
template <typename To> To *stmt_cast(Stmt *S) {
  assert(S && To::classof(S) && "bad stmt_cast");
  return static_cast<To *>(S);
}
template <typename To> const To *stmt_cast(const Stmt *S) {
  assert(S && To::classof(S) && "bad stmt_cast");
  return static_cast<const To *>(S);
}

/// ";" with no effect.
class NullStmt final : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc)
      : Stmt(StmtClass::NullStmt, SourceRange(Loc)) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::NullStmt;
  }
};

/// "{ stmt... }"
class CompoundStmt final : public Stmt {
public:
  CompoundStmt(SourceRange Range, std::span<Stmt *const> Body)
      : Stmt(StmtClass::CompoundStmt, Range), Body(Body) {}

  [[nodiscard]] std::span<Stmt *const> body() const { return Body; }
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(Body.size());
  }
  [[nodiscard]] bool isEmpty() const { return Body.empty(); }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::CompoundStmt;
  }

private:
  std::span<Stmt *const> Body;
};

/// A statement declaring one or more variables.
class DeclStmt final : public Stmt {
public:
  DeclStmt(SourceRange Range, std::span<VarDecl *const> Decls)
      : Stmt(StmtClass::DeclStmt, Range), Decls(Decls) {}

  [[nodiscard]] std::span<VarDecl *const> decls() const { return Decls; }
  [[nodiscard]] bool isSingleDecl() const { return Decls.size() == 1; }
  [[nodiscard]] VarDecl *getSingleDecl() const {
    assert(isSingleDecl());
    return Decls[0];
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::DeclStmt;
  }

private:
  std::span<VarDecl *const> Decls;
};

class IfStmt final : public Stmt {
public:
  IfStmt(SourceRange Range, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtClass::IfStmt, Range), Cond(Cond), Then(Then), Else(Else) {}

  [[nodiscard]] Expr *getCond() const { return Cond; }
  [[nodiscard]] Stmt *getThen() const { return Then; }
  [[nodiscard]] Stmt *getElse() const { return Else; }
  [[nodiscard]] bool hasElse() const { return Else != nullptr; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::IfStmt;
  }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt final : public Stmt {
public:
  WhileStmt(SourceRange Range, Expr *Cond, Stmt *Body)
      : Stmt(StmtClass::WhileStmt, Range), Cond(Cond), Body(Body) {}

  [[nodiscard]] Expr *getCond() const { return Cond; }
  [[nodiscard]] Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::WhileStmt;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoStmt final : public Stmt {
public:
  DoStmt(SourceRange Range, Stmt *Body, Expr *Cond)
      : Stmt(StmtClass::DoStmt, Range), Body(Body), Cond(Cond) {}

  [[nodiscard]] Stmt *getBody() const { return Body; }
  [[nodiscard]] Expr *getCond() const { return Cond; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::DoStmt;
  }

private:
  Stmt *Body;
  Expr *Cond;
};

/// A C for-loop. Init may be a DeclStmt or an expression statement (or
/// null); Cond and Inc may be null. This is the node loop-transformation
/// analysis consumes; it is the same node whether or not an OpenMP
/// directive is associated with it (paper Section 1.2).
class ForStmt final : public Stmt {
public:
  ForStmt(SourceRange Range, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(StmtClass::ForStmt, Range), Init(Init), Cond(Cond), Inc(Inc),
        Body(Body) {}

  [[nodiscard]] Stmt *getInit() const { return Init; }
  [[nodiscard]] Expr *getCond() const { return Cond; }
  [[nodiscard]] Expr *getInc() const { return Inc; }
  [[nodiscard]] Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ForStmt;
  }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
};

class ReturnStmt final : public Stmt {
public:
  ReturnStmt(SourceRange Range, Expr *Value)
      : Stmt(StmtClass::ReturnStmt, Range), Value(Value) {}

  [[nodiscard]] Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ReturnStmt;
  }

private:
  Expr *Value;
};

class BreakStmt final : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc)
      : Stmt(StmtClass::BreakStmt, SourceRange(Loc)) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::BreakStmt;
  }
};

class ContinueStmt final : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc)
      : Stmt(StmtClass::ContinueStmt, SourceRange(Loc)) {}

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::ContinueStmt;
  }
};

/// Attribute attached to a statement by AttributedStmt. The only attribute
/// this front-end needs is the loop hint that the shadow-AST unroll
/// implementation uses to defer unrolling to the mid-end LoopUnroll pass
/// (paper Fig. 8: "LoopHintAttr Implicit loop UnrollCount Numeric").
class Attr {
public:
  enum class Kind { LoopHint };

  [[nodiscard]] Kind getKind() const { return K; }

protected:
  explicit Attr(Kind K) : K(K) {}

private:
  Kind K;
};

class LoopHintAttr final : public Attr {
public:
  enum class OptionKind {
    UnrollCount,  // llvm.loop.unroll.count(N)
    UnrollEnable, // llvm.loop.unroll.enable (heuristic)
    UnrollFull,   // llvm.loop.unroll.full
    Vectorize,    // llvm.loop.vectorize.enable (simd)
  };

  LoopHintAttr(OptionKind Option, Expr *Value, bool Implicit)
      : Attr(Kind::LoopHint), Option(Option), Value(Value),
        Implicit(Implicit) {}

  [[nodiscard]] OptionKind getOption() const { return Option; }
  [[nodiscard]] Expr *getValue() const { return Value; }
  /// True when synthesized by a loop transformation rather than written via
  /// "#pragma clang loop ...".
  [[nodiscard]] bool isImplicit() const { return Implicit; }

  [[nodiscard]] const char *getOptionName() const {
    switch (Option) {
    case OptionKind::UnrollCount:
      return "UnrollCount";
    case OptionKind::UnrollEnable:
      return "UnrollEnable";
    case OptionKind::UnrollFull:
      return "UnrollFull";
    case OptionKind::Vectorize:
      return "Vectorize";
    }
    return "?";
  }

  static bool classof(const Attr *A) { return A->getKind() == Kind::LoopHint; }

private:
  OptionKind Option;
  Expr *Value;
  bool Implicit;
};

class AttributedStmt final : public Stmt {
public:
  AttributedStmt(SourceRange Range, std::span<const Attr *const> Attrs,
                 Stmt *SubStmt)
      : Stmt(StmtClass::AttributedStmt, Range), Attrs(Attrs),
        SubStmt(SubStmt) {}

  [[nodiscard]] std::span<const Attr *const> getAttrs() const { return Attrs; }
  [[nodiscard]] Stmt *getSubStmt() const { return SubStmt; }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::AttributedStmt;
  }

private:
  std::span<const Attr *const> Attrs;
  Stmt *SubStmt;
};

/// Borrowing from the lambda/block implementation (paper Section 1.2):
/// represents a statement whose execution is outlined into a separate
/// 'captured' function so it can be called from other threads. Tracks which
/// variables cross the boundary.
class CapturedStmt final : public Stmt {
public:
  struct Capture {
    VarDecl *Var;
    bool ByRef; // false: by-copy (e.g. __begin in the loop-var function)
  };

  CapturedStmt(SourceRange Range, CapturedDecl *CD,
               std::span<const Capture> Captures)
      : Stmt(StmtClass::CapturedStmt, Range), CDecl(CD), Captures(Captures) {}

  [[nodiscard]] CapturedDecl *getCapturedDecl() const { return CDecl; }
  [[nodiscard]] Stmt *getCapturedStmt() const { return CDecl->getBody(); }
  [[nodiscard]] std::span<const Capture> captures() const { return Captures; }

  [[nodiscard]] bool capturesVariable(const VarDecl *V) const {
    for (const Capture &C : Captures)
      if (C.Var == V)
        return true;
    return false;
  }

  static bool classof(const Stmt *S) {
    return S->getStmtClass() == StmtClass::CapturedStmt;
  }

private:
  CapturedDecl *CDecl;
  std::span<const Capture> Captures;
};

} // namespace mcc

#endif // MCC_AST_STMT_H
