//===--- ExprConstant.h - Integral constant expression evaluation -*- C++ -*-===//
//
// Compile-time evaluation of integral constant expressions (Clang's
// Expr::EvaluateAsInt analogue). Used by Sema to validate clause arguments
// (tile sizes, unroll factors, collapse counts), to fold trip counts of
// loops with constant bounds, and by the shadow-AST transformations.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_EXPRCONSTANT_H
#define MCC_AST_EXPRCONSTANT_H

#include "ast/Expr.h"

#include <optional>

namespace mcc {

/// Evaluates \p E as an integral constant. Returns std::nullopt if the
/// expression is not a constant (references non-const variables, calls
/// functions, divides by zero, ...). Signedness follows the expression's
/// type; the returned value is the sign-extended representation.
std::optional<std::int64_t> evaluateInteger(const Expr *E);

/// Like evaluateInteger but also reads through const-qualified variables
/// with constant initializers.
std::optional<std::int64_t> evaluateIntegerWithConstVars(const Expr *E);

} // namespace mcc

#endif // MCC_AST_EXPRCONSTANT_H
