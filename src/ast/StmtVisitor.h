//===--- StmtVisitor.h - Visitor pattern for the Stmt hierarchy -*- C++ -*-===//
//
// As the paper notes, each of Clang's AST hierarchies (Stmt, Decl, Type,
// OMPClause) needs its own visitor because they share no common base.
// These are CRTP dispatchers, like Clang's.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_STMTVISITOR_H
#define MCC_AST_STMTVISITOR_H

#include "ast/StmtOpenMP.h"

namespace mcc {

/// CRTP visitor over the Stmt hierarchy. Derive and implement
/// visit<Class>(Class *) for the node classes of interest; unhandled
/// classes fall back up the class hierarchy to visitStmt.
template <typename Derived, typename RetTy = void> class StmtVisitor {
public:
  RetTy visit(Stmt *S) {
    switch (S->getStmtClass()) {
#define STMT(Class)                                                            \
  case Stmt::StmtClass::Class:                                                 \
    return getDerived().visit##Class(static_cast<Class *>(S));
#include "ast/StmtNodes.def"
    default:
      return getDerived().visitStmt(S);
    }
  }

  // Fallbacks follow the class hierarchy.
  RetTy visitStmt(Stmt *) { return RetTy(); }
  RetTy visitExpr(Expr *E) { return getDerived().visitStmt(E); }
  RetTy visitOMPExecutableDirective(OMPExecutableDirective *S) {
    return getDerived().visitStmt(S);
  }
  RetTy visitOMPLoopBasedDirective(OMPLoopBasedDirective *S) {
    return getDerived().visitOMPExecutableDirective(S);
  }
  RetTy visitOMPLoopDirective(OMPLoopDirective *S) {
    return getDerived().visitOMPLoopBasedDirective(S);
  }
  RetTy visitOMPLoopTransformationDirective(OMPLoopTransformationDirective *S) {
    return getDerived().visitOMPLoopBasedDirective(S);
  }

  // Per-class defaults delegating to the base class handler.
#define DELEGATE(Class, Base)                                                  \
  RetTy visit##Class(Class *S) { return getDerived().visit##Base(S); }

  DELEGATE(NullStmt, Stmt)
  DELEGATE(CompoundStmt, Stmt)
  DELEGATE(DeclStmt, Stmt)
  DELEGATE(IfStmt, Stmt)
  DELEGATE(WhileStmt, Stmt)
  DELEGATE(DoStmt, Stmt)
  DELEGATE(ForStmt, Stmt)
  DELEGATE(ReturnStmt, Stmt)
  DELEGATE(BreakStmt, Stmt)
  DELEGATE(ContinueStmt, Stmt)
  DELEGATE(AttributedStmt, Stmt)
  DELEGATE(CapturedStmt, Stmt)
  DELEGATE(OMPCanonicalLoop, Stmt)
  DELEGATE(IntegerLiteral, Expr)
  DELEGATE(FloatingLiteral, Expr)
  DELEGATE(BoolLiteral, Expr)
  DELEGATE(StringLiteral, Expr)
  DELEGATE(DeclRefExpr, Expr)
  DELEGATE(ImplicitCastExpr, Expr)
  DELEGATE(ParenExpr, Expr)
  DELEGATE(UnaryOperator, Expr)
  DELEGATE(BinaryOperator, Expr)
  DELEGATE(ConditionalOperator, Expr)
  DELEGATE(CallExpr, Expr)
  DELEGATE(ArraySubscriptExpr, Expr)
  DELEGATE(ConstantExpr, Expr)
  DELEGATE(OMPParallelDirective, OMPExecutableDirective)
  DELEGATE(OMPBarrierDirective, OMPExecutableDirective)
  DELEGATE(OMPCriticalDirective, OMPExecutableDirective)
  DELEGATE(OMPSingleDirective, OMPExecutableDirective)
  DELEGATE(OMPMasterDirective, OMPExecutableDirective)
  DELEGATE(OMPForDirective, OMPLoopDirective)
  DELEGATE(OMPParallelForDirective, OMPLoopDirective)
  DELEGATE(OMPSimdDirective, OMPLoopDirective)
  DELEGATE(OMPForSimdDirective, OMPLoopDirective)
  DELEGATE(OMPTileDirective, OMPLoopTransformationDirective)
  DELEGATE(OMPUnrollDirective, OMPLoopTransformationDirective)
  DELEGATE(OMPReverseDirective, OMPLoopTransformationDirective)
  DELEGATE(OMPInterchangeDirective, OMPLoopTransformationDirective)
  DELEGATE(OMPFuseDirective, OMPLoopTransformationDirective)
  DELEGATE(OMPDistributeLoopDirective, OMPLoopTransformationDirective)
#undef DELEGATE

private:
  Derived &getDerived() { return *static_cast<Derived *>(this); }
};

/// Visitor over the OMPClause hierarchy.
template <typename Derived, typename RetTy = void> class OMPClauseVisitor {
public:
  RetTy visit(const OMPClause *C) {
    switch (C->getClauseKind()) {
    case OpenMPClauseKind::NumThreads:
      return getDerived().visitNumThreadsClause(
          clause_cast<OMPNumThreadsClause>(C));
    case OpenMPClauseKind::Schedule:
      return getDerived().visitScheduleClause(
          clause_cast<OMPScheduleClause>(C));
    case OpenMPClauseKind::Collapse:
      return getDerived().visitCollapseClause(
          clause_cast<OMPCollapseClause>(C));
    case OpenMPClauseKind::Full:
      return getDerived().visitFullClause(clause_cast<OMPFullClause>(C));
    case OpenMPClauseKind::Partial:
      return getDerived().visitPartialClause(clause_cast<OMPPartialClause>(C));
    case OpenMPClauseKind::Sizes:
      return getDerived().visitSizesClause(clause_cast<OMPSizesClause>(C));
    case OpenMPClauseKind::Private:
      return getDerived().visitPrivateClause(clause_cast<OMPPrivateClause>(C));
    case OpenMPClauseKind::FirstPrivate:
      return getDerived().visitFirstPrivateClause(
          clause_cast<OMPFirstPrivateClause>(C));
    case OpenMPClauseKind::Shared:
      return getDerived().visitSharedClause(clause_cast<OMPSharedClause>(C));
    case OpenMPClauseKind::Reduction:
      return getDerived().visitReductionClause(
          clause_cast<OMPReductionClause>(C));
    case OpenMPClauseKind::NoWait:
      return getDerived().visitNoWaitClause(clause_cast<OMPNoWaitClause>(C));
    case OpenMPClauseKind::Permutation:
      return getDerived().visitPermutationClause(
          clause_cast<OMPPermutationClause>(C));
    case OpenMPClauseKind::LoopRange:
      return getDerived().visitLoopRangeClause(
          clause_cast<OMPLoopRangeClause>(C));
    case OpenMPClauseKind::Unknown:
      break;
    }
    return getDerived().visitClause(C);
  }

  RetTy visitClause(const OMPClause *) { return RetTy(); }
#define DELEGATE(Name, Class)                                                  \
  RetTy visit##Name(const Class *C) { return getDerived().visitClause(C); }
  DELEGATE(NumThreadsClause, OMPNumThreadsClause)
  DELEGATE(ScheduleClause, OMPScheduleClause)
  DELEGATE(CollapseClause, OMPCollapseClause)
  DELEGATE(FullClause, OMPFullClause)
  DELEGATE(PartialClause, OMPPartialClause)
  DELEGATE(SizesClause, OMPSizesClause)
  DELEGATE(PrivateClause, OMPPrivateClause)
  DELEGATE(FirstPrivateClause, OMPFirstPrivateClause)
  DELEGATE(SharedClause, OMPSharedClause)
  DELEGATE(ReductionClause, OMPReductionClause)
  DELEGATE(NoWaitClause, OMPNoWaitClause)
  DELEGATE(PermutationClause, OMPPermutationClause)
  DELEGATE(LoopRangeClause, OMPLoopRangeClause)
#undef DELEGATE

private:
  Derived &getDerived() { return *static_cast<Derived *>(this); }
};

} // namespace mcc

#endif // MCC_AST_STMTVISITOR_H
