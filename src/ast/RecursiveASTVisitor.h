//===--- RecursiveASTVisitor.h - Depth-first AST traversal ------*- C++ -*-===//
//
// A simplified analogue of Clang's RecursiveASTVisitor: walks the syntactic
// children() of every statement depth-first, calling a per-node callback.
// Shadow AST subtrees are not traversed unless explicitly enabled, matching
// the visibility rules discussed in the paper.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_RECURSIVEASTVISITOR_H
#define MCC_AST_RECURSIVEASTVISITOR_H

#include "ast/StmtOpenMP.h"

namespace mcc {

template <typename Derived> class RecursiveASTVisitor {
public:
  /// Traverse into shadow AST (transformed statements of loop
  /// transformations, loop directive helpers) as well.
  bool ShouldVisitShadowAST = false;

  /// Walks \p S depth-first. Returns false if the traversal was aborted by
  /// a callback returning false.
  bool traverseStmt(Stmt *S) {
    if (!S)
      return true;
    if (!getDerived().visitStmt(S))
      return false;
    for (Stmt *Child : S->children())
      if (!traverseStmt(Child))
        return false;
    if (ShouldVisitShadowAST) {
      if (auto *LT = stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
        if (!traverseStmt(LT->getPreInits()))
          return false;
        if (!traverseStmt(LT->getTransformedStmt()))
          return false;
      }
    }
    return true;
  }

  bool traverseDecl(Decl *D) {
    if (!D)
      return true;
    if (!getDerived().visitDecl(D))
      return false;
    if (auto *TU = decl_dyn_cast<TranslationUnitDecl>(D)) {
      for (Decl *Child : TU->decls())
        if (!traverseDecl(Child))
          return false;
    } else if (auto *FD = decl_dyn_cast<FunctionDecl>(D)) {
      for (ParmVarDecl *P : FD->parameters())
        if (!traverseDecl(P))
          return false;
      if (!traverseStmt(FD->getBody()))
        return false;
    } else if (auto *VD = decl_dyn_cast<VarDecl>(D)) {
      if (!traverseStmt(VD->getInit()))
        return false;
    } else if (auto *CD = decl_dyn_cast<CapturedDecl>(D)) {
      for (ImplicitParamDecl *P : CD->parameters())
        if (!traverseDecl(P))
          return false;
      if (!traverseStmt(CD->getBody()))
        return false;
    }
    return true;
  }

  // Default callbacks: continue traversal.
  bool visitStmt(Stmt *) { return true; }
  bool visitDecl(Decl *) { return true; }

private:
  Derived &getDerived() { return *static_cast<Derived *>(this); }
};

} // namespace mcc

#endif // MCC_AST_RECURSIVEASTVISITOR_H
