//===--- TreeTransform.h - AST subtree cloning with substitution -*- C++ -*-===//
//
// Because the AST is immutable, transformations produce *copies* of
// subtrees with changes applied — Clang's TreeTransform (paper Section 1.3,
// primarily used for template instantiation there). Our uses:
//
//   * shadow-AST construction for tile/unroll: the original loop body is
//     cloned into the transformed loop nest, with references to the
//     original iteration variable rebound to the transformation's
//     materialized copy;
//   * privatization: cloning bodies with variables remapped to private
//     copies.
//
// Variables declared *inside* the cloned subtree are re-declared so the
// clone never aliases declarations of the original (a requirement for
// correctness when the clone is instantiated multiple times, e.g. by
// unrolling).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_AST_TREETRANSFORM_H
#define MCC_AST_TREETRANSFORM_H

#include "ast/ASTContext.h"
#include "ast/StmtOpenMP.h"

#include <map>

namespace mcc {

class TreeTransform {
public:
  explicit TreeTransform(ASTContext &Ctx) : Ctx(Ctx) {}
  virtual ~TreeTransform() = default;

  /// Registers a substitution: references to \p Old are rebound to \p New.
  void addDeclSubstitution(const ValueDecl *Old, ValueDecl *New) {
    DeclMap[Old] = New;
  }

  /// Deep-clones \p S applying all substitutions.
  Stmt *transformStmt(Stmt *S);
  Expr *transformExpr(Expr *E);

protected:
  /// Maps a referenced declaration. Default: apply the substitution map;
  /// unmapped declarations are shared with the original tree (they are
  /// declared outside the cloned subtree).
  virtual ValueDecl *transformDecl(ValueDecl *D) {
    auto It = DeclMap.find(D);
    return It == DeclMap.end() ? D : It->second;
  }

  /// Clones a VarDecl declared inside the transformed subtree and records
  /// the mapping so later references rebind.
  VarDecl *transformOwnedVarDecl(VarDecl *D);

  OMPClause *transformClause(OMPClause *C);

  ASTContext &Ctx;
  std::map<const ValueDecl *, ValueDecl *> DeclMap;
};

} // namespace mcc

#endif // MCC_AST_TREETRANSFORM_H
