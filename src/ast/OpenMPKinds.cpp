#include "ast/OpenMPKinds.h"

namespace mcc {

std::string_view getOpenMPDirectiveName(OpenMPDirectiveKind Kind) {
  switch (Kind) {
  case OpenMPDirectiveKind::Unknown:
    return "unknown";
  case OpenMPDirectiveKind::Parallel:
    return "parallel";
  case OpenMPDirectiveKind::For:
    return "for";
  case OpenMPDirectiveKind::ParallelFor:
    return "parallel for";
  case OpenMPDirectiveKind::Simd:
    return "simd";
  case OpenMPDirectiveKind::ForSimd:
    return "for simd";
  case OpenMPDirectiveKind::Tile:
    return "tile";
  case OpenMPDirectiveKind::Unroll:
    return "unroll";
  case OpenMPDirectiveKind::Reverse:
    return "reverse";
  case OpenMPDirectiveKind::Interchange:
    return "interchange";
  case OpenMPDirectiveKind::Fuse:
    return "fuse";
  case OpenMPDirectiveKind::DistributeLoop:
    return "distribute_loop";
  case OpenMPDirectiveKind::Barrier:
    return "barrier";
  case OpenMPDirectiveKind::Critical:
    return "critical";
  case OpenMPDirectiveKind::Single:
    return "single";
  case OpenMPDirectiveKind::Master:
    return "master";
  }
  return "unknown";
}

OpenMPDirectiveKind parseOpenMPDirectiveKind(std::string_view Name) {
  if (Name == "parallel")
    return OpenMPDirectiveKind::Parallel;
  if (Name == "for")
    return OpenMPDirectiveKind::For;
  if (Name == "simd")
    return OpenMPDirectiveKind::Simd;
  if (Name == "tile")
    return OpenMPDirectiveKind::Tile;
  if (Name == "unroll")
    return OpenMPDirectiveKind::Unroll;
  if (Name == "reverse")
    return OpenMPDirectiveKind::Reverse;
  if (Name == "interchange")
    return OpenMPDirectiveKind::Interchange;
  if (Name == "fuse")
    return OpenMPDirectiveKind::Fuse;
  if (Name == "distribute_loop")
    return OpenMPDirectiveKind::DistributeLoop;
  if (Name == "barrier")
    return OpenMPDirectiveKind::Barrier;
  if (Name == "critical")
    return OpenMPDirectiveKind::Critical;
  if (Name == "single")
    return OpenMPDirectiveKind::Single;
  if (Name == "master")
    return OpenMPDirectiveKind::Master;
  return OpenMPDirectiveKind::Unknown;
}

std::string_view getOpenMPClauseName(OpenMPClauseKind Kind) {
  switch (Kind) {
  case OpenMPClauseKind::Unknown:
    return "unknown";
  case OpenMPClauseKind::NumThreads:
    return "num_threads";
  case OpenMPClauseKind::Schedule:
    return "schedule";
  case OpenMPClauseKind::Collapse:
    return "collapse";
  case OpenMPClauseKind::Full:
    return "full";
  case OpenMPClauseKind::Partial:
    return "partial";
  case OpenMPClauseKind::Sizes:
    return "sizes";
  case OpenMPClauseKind::Permutation:
    return "permutation";
  case OpenMPClauseKind::LoopRange:
    return "looprange";
  case OpenMPClauseKind::Private:
    return "private";
  case OpenMPClauseKind::FirstPrivate:
    return "firstprivate";
  case OpenMPClauseKind::Shared:
    return "shared";
  case OpenMPClauseKind::Reduction:
    return "reduction";
  case OpenMPClauseKind::NoWait:
    return "nowait";
  }
  return "unknown";
}

OpenMPClauseKind parseOpenMPClauseKind(std::string_view Name) {
  if (Name == "num_threads")
    return OpenMPClauseKind::NumThreads;
  if (Name == "schedule")
    return OpenMPClauseKind::Schedule;
  if (Name == "collapse")
    return OpenMPClauseKind::Collapse;
  if (Name == "full")
    return OpenMPClauseKind::Full;
  if (Name == "partial")
    return OpenMPClauseKind::Partial;
  if (Name == "sizes")
    return OpenMPClauseKind::Sizes;
  if (Name == "permutation")
    return OpenMPClauseKind::Permutation;
  if (Name == "looprange")
    return OpenMPClauseKind::LoopRange;
  if (Name == "private")
    return OpenMPClauseKind::Private;
  if (Name == "firstprivate")
    return OpenMPClauseKind::FirstPrivate;
  if (Name == "shared")
    return OpenMPClauseKind::Shared;
  if (Name == "reduction")
    return OpenMPClauseKind::Reduction;
  if (Name == "nowait")
    return OpenMPClauseKind::NoWait;
  return OpenMPClauseKind::Unknown;
}

std::string_view getOpenMPScheduleKindName(OpenMPScheduleKind Kind) {
  switch (Kind) {
  case OpenMPScheduleKind::Unknown:
    return "unknown";
  case OpenMPScheduleKind::Static:
    return "static";
  case OpenMPScheduleKind::Dynamic:
    return "dynamic";
  case OpenMPScheduleKind::Guided:
    return "guided";
  case OpenMPScheduleKind::Auto:
    return "auto";
  case OpenMPScheduleKind::Runtime:
    return "runtime";
  }
  return "unknown";
}

OpenMPScheduleKind parseOpenMPScheduleKind(std::string_view Name) {
  if (Name == "static")
    return OpenMPScheduleKind::Static;
  if (Name == "dynamic")
    return OpenMPScheduleKind::Dynamic;
  if (Name == "guided")
    return OpenMPScheduleKind::Guided;
  if (Name == "auto")
    return OpenMPScheduleKind::Auto;
  if (Name == "runtime")
    return OpenMPScheduleKind::Runtime;
  return OpenMPScheduleKind::Unknown;
}

std::string_view getOpenMPReductionOpName(OpenMPReductionOp Op) {
  switch (Op) {
  case OpenMPReductionOp::Add:
    return "+";
  case OpenMPReductionOp::Mul:
    return "*";
  case OpenMPReductionOp::Min:
    return "min";
  case OpenMPReductionOp::Max:
    return "max";
  case OpenMPReductionOp::BitAnd:
    return "&";
  case OpenMPReductionOp::BitOr:
    return "|";
  case OpenMPReductionOp::BitXor:
    return "^";
  case OpenMPReductionOp::LogAnd:
    return "&&";
  case OpenMPReductionOp::LogOr:
    return "||";
  }
  return "?";
}

bool isOpenMPLoopAssociatedDirective(OpenMPDirectiveKind Kind) {
  switch (Kind) {
  case OpenMPDirectiveKind::For:
  case OpenMPDirectiveKind::ParallelFor:
  case OpenMPDirectiveKind::Simd:
  case OpenMPDirectiveKind::ForSimd:
  case OpenMPDirectiveKind::Tile:
  case OpenMPDirectiveKind::Unroll:
  case OpenMPDirectiveKind::Reverse:
  case OpenMPDirectiveKind::Interchange:
  case OpenMPDirectiveKind::Fuse:
  case OpenMPDirectiveKind::DistributeLoop:
    return true;
  default:
    return false;
  }
}

bool isOpenMPLoopTransformationDirective(OpenMPDirectiveKind Kind) {
  return Kind == OpenMPDirectiveKind::Tile ||
         Kind == OpenMPDirectiveKind::Unroll ||
         Kind == OpenMPDirectiveKind::Reverse ||
         Kind == OpenMPDirectiveKind::Interchange ||
         Kind == OpenMPDirectiveKind::Fuse ||
         Kind == OpenMPDirectiveKind::DistributeLoop;
}

bool isOpenMPParallelDirective(OpenMPDirectiveKind Kind) {
  return Kind == OpenMPDirectiveKind::Parallel ||
         Kind == OpenMPDirectiveKind::ParallelFor;
}

bool isOpenMPWorksharingDirective(OpenMPDirectiveKind Kind) {
  return Kind == OpenMPDirectiveKind::For ||
         Kind == OpenMPDirectiveKind::ParallelFor ||
         Kind == OpenMPDirectiveKind::ForSimd;
}

bool isAllowedClauseForDirective(OpenMPDirectiveKind Directive,
                                 OpenMPClauseKind Clause) {
  using D = OpenMPDirectiveKind;
  using C = OpenMPClauseKind;
  switch (Directive) {
  case D::Parallel:
    return Clause == C::NumThreads || Clause == C::Private ||
           Clause == C::FirstPrivate || Clause == C::Shared ||
           Clause == C::Reduction;
  case D::For:
    return Clause == C::Schedule || Clause == C::Collapse ||
           Clause == C::Private || Clause == C::FirstPrivate ||
           Clause == C::Reduction || Clause == C::NoWait;
  case D::ParallelFor:
    return Clause == C::NumThreads || Clause == C::Schedule ||
           Clause == C::Collapse || Clause == C::Private ||
           Clause == C::FirstPrivate || Clause == C::Shared ||
           Clause == C::Reduction;
  case D::Simd:
  case D::ForSimd:
    return Clause == C::Collapse || Clause == C::Private ||
           Clause == C::Reduction;
  case D::Tile:
    return Clause == C::Sizes;
  case D::Unroll:
    return Clause == C::Full || Clause == C::Partial;
  case D::Reverse:
    return false;
  case D::Interchange:
    return Clause == C::Permutation;
  case D::Fuse:
    return Clause == C::LoopRange;
  case D::DistributeLoop:
    return false;
  case D::Single:
    return Clause == C::Private || Clause == C::FirstPrivate ||
           Clause == C::NoWait;
  case D::Barrier:
  case D::Critical:
  case D::Master:
    return false;
  case D::Unknown:
    return false;
  }
  return false;
}

} // namespace mcc
