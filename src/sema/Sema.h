//===--- Sema.h - Semantic analysis and AST construction --------*- C++ -*-===//
//
// The Sema layer of the paper's Fig. 1. The parser pushes syntactic
// elements here; Sema performs name lookup, type checking, inserts implicit
// AST nodes and builds the (immutable) AST.
//
// The OpenMP part implements BOTH representations the paper describes:
//   * LegacyShadowAST: OMPLoopDirective shadow helper expressions and
//     transformed-statement construction for tile/unroll (Section 2);
//   * IRBuilder mode:  OMPCanonicalLoop wrapping with distance / loop-var
//     functions (Section 3), leaving code generation to OpenMPIRBuilder.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SEMA_SEMA_H
#define MCC_SEMA_SEMA_H

#include "ast/ASTContext.h"
#include "ast/ASTDumper.h"
#include "ast/ExprConstant.h"
#include "ast/StmtOpenMP.h"
#include "ast/TreeTransform.h"
#include "lex/Token.h"
#include "sema/LangOptions.h"
#include "support/Diagnostic.h"

#include <map>
#include <memory>
#include <vector>

namespace mcc {

/// One lexical scope of name bindings.
class Scope {
public:
  explicit Scope(Scope *Parent) : Parent(Parent) {}

  [[nodiscard]] Scope *getParent() const { return Parent; }

  NamedDecl *lookupLocal(std::string_view Name) const {
    auto It = Decls.find(Name);
    return It == Decls.end() ? nullptr : It->second;
  }

  NamedDecl *lookup(std::string_view Name) const {
    for (const Scope *S = this; S; S = S->Parent)
      if (NamedDecl *D = S->lookupLocal(Name))
        return D;
    return nullptr;
  }

  void addDecl(NamedDecl *D) { Decls[D->getName()] = D; }

private:
  Scope *Parent;
  std::map<std::string_view, NamedDecl *, std::less<>> Decls;
};

/// Result of analyzing one loop of an OpenMP canonical loop nest
/// (OpenMP 5.1 section 4.4.1 "Canonical Loop Nest Form").
struct OMPLoopInfo {
  ForStmt *Loop = nullptr;
  VarDecl *IterVar = nullptr;    // the *loop iteration variable*
  Expr *LowerBound = nullptr;    // IV start value (rvalue expr)
  Expr *UpperBound = nullptr;    // bound tested against (rvalue expr)
  Expr *Step = nullptr;          // positive magnitude of the increment
  bool Decreasing = false;       // IV moves downward
  bool InclusiveBound = false;   // <= / >= comparison
  QualType IVType;
  QualType LogicalType;          // unsigned type of the logical counter

  /// Constant trip count if all of LB/UB/Step fold.
  std::optional<std::uint64_t> ConstantTripCount;
};

class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticsEngine &Diags, const LangOptions &Opts);
  ~Sema();
  Sema(const Sema &) = delete;
  Sema &operator=(const Sema &) = delete;

  [[nodiscard]] ASTContext &getASTContext() { return Ctx; }
  [[nodiscard]] DiagnosticsEngine &getDiagnostics() { return Diags; }
  [[nodiscard]] const LangOptions &getLangOpts() const { return Opts; }

  // --- Scope management (driven by the parser) ---
  void pushScope();
  void popScope();
  [[nodiscard]] Scope *getCurScope() { return CurScope; }

  void incrementLoopDepth() { ++LoopDepth; }
  void decrementLoopDepth() { --LoopDepth; }

  // --- Declarations ---
  VarDecl *ActOnVarDecl(SourceLocation Loc, std::string_view Name, QualType Ty,
                        Expr *Init, bool FileScope);
  FunctionDecl *ActOnFunctionDecl(SourceLocation Loc, std::string_view Name,
                                  QualType RetTy,
                                  std::vector<ParmVarDecl *> Params);
  ParmVarDecl *ActOnParamDecl(SourceLocation Loc, std::string_view Name,
                              QualType Ty);
  void ActOnStartFunctionBody(FunctionDecl *FD);
  void ActOnFinishFunctionBody(FunctionDecl *FD, Stmt *Body);
  TranslationUnitDecl *ActOnEndOfTranslationUnit(std::vector<Decl *> Decls);

  // --- Expressions ---
  Expr *ActOnIntegerLiteral(const Token &Tok);
  Expr *ActOnFloatingLiteral(const Token &Tok);
  Expr *ActOnBoolLiteral(SourceLocation Loc, bool Value);
  Expr *ActOnIdExpression(SourceLocation Loc, std::string_view Name);
  Expr *ActOnParenExpr(SourceRange R, Expr *Sub);
  Expr *ActOnUnaryOp(SourceLocation OpLoc, UnaryOperatorKind Opc, Expr *Sub);
  Expr *ActOnBinaryOp(SourceLocation OpLoc, BinaryOperatorKind Opc, Expr *LHS,
                      Expr *RHS);
  Expr *ActOnConditionalOp(SourceLocation QLoc, Expr *Cond, Expr *TrueE,
                           Expr *FalseE);
  Expr *ActOnCallExpr(SourceRange R, Expr *Callee, std::vector<Expr *> Args);
  Expr *ActOnArraySubscript(SourceRange R, Expr *Base, Expr *Index);

  // --- Statements ---
  Stmt *ActOnNullStmt(SourceLocation Loc);
  Stmt *ActOnCompoundStmt(SourceRange R, std::vector<Stmt *> Body);
  Stmt *ActOnDeclStmt(SourceRange R, std::vector<VarDecl *> Decls);
  Stmt *ActOnExprStmt(Expr *E);
  Stmt *ActOnIfStmt(SourceRange R, Expr *Cond, Stmt *Then, Stmt *Else);
  Stmt *ActOnWhileStmt(SourceRange R, Expr *Cond, Stmt *Body);
  Stmt *ActOnDoStmt(SourceRange R, Stmt *Body, Expr *Cond);
  Stmt *ActOnForStmt(SourceRange R, Stmt *Init, Expr *Cond, Expr *Inc,
                     Stmt *Body);
  Stmt *ActOnReturnStmt(SourceRange R, Expr *Value);
  Stmt *ActOnBreakStmt(SourceLocation Loc);
  Stmt *ActOnContinueStmt(SourceLocation Loc);

  // --- Conversions (exposed for SemaOpenMP and tests) ---

  /// Lvalue-to-rvalue, array-to-pointer, function-to-pointer.
  Expr *defaultFunctionArrayLvalueConversion(Expr *E);
  /// Converts \p E to \p Ty, inserting implicit casts; diagnoses
  /// incompatibility at \p Loc.
  Expr *convertTo(Expr *E, QualType Ty, SourceLocation Loc);
  /// Converts to a boolean condition.
  Expr *convertToBoolean(Expr *E);
  /// Applies the usual arithmetic conversions, returning the common type
  /// (and rewriting both operands).
  QualType usualArithmeticConversions(Expr *&LHS, Expr *&RHS);

  // --- Synthesized-AST helpers (shared by the shadow transformations) ---
  IntegerLiteral *buildIntLiteral(std::uint64_t Value, QualType Ty);
  DeclRefExpr *buildDeclRef(ValueDecl *D);
  Expr *buildRValueRef(ValueDecl *D);
  Expr *buildBinOp(BinaryOperatorKind Opc, Expr *LHS, Expr *RHS);
  /// Synthesizes an internal variable (marked implicit, like Clang's
  /// '.capture_expr.' internals the paper quotes in a diagnostic).
  VarDecl *buildInternalVar(std::string_view Name, QualType Ty, Expr *Init);

  // ====================== OpenMP (SemaOpenMP.cpp) ======================

  // Clause actions (validation).
  OMPClause *ActOnOpenMPNumThreadsClause(SourceRange R, Expr *NumThreads);
  OMPClause *ActOnOpenMPScheduleClause(SourceRange R, OpenMPScheduleKind Kind,
                                       Expr *Chunk);
  OMPClause *ActOnOpenMPCollapseClause(SourceRange R, Expr *Num);
  OMPClause *ActOnOpenMPFullClause(SourceRange R);
  OMPClause *ActOnOpenMPPartialClause(SourceRange R, Expr *Factor);
  OMPClause *ActOnOpenMPSizesClause(SourceRange R, std::vector<Expr *> Sizes);
  OMPClause *ActOnOpenMPPermutationClause(SourceRange R,
                                          std::vector<Expr *> Args);
  OMPClause *ActOnOpenMPLoopRangeClause(SourceRange R,
                                        std::vector<Expr *> Args);
  OMPClause *ActOnOpenMPVarListClause(OpenMPClauseKind Kind, SourceRange R,
                                      std::vector<Expr *> Vars,
                                      OpenMPReductionOp RedOp);
  OMPClause *ActOnOpenMPNoWaitClause(SourceRange R);

  /// Main directive action. \p AStmt is the statement following the pragma
  /// (null for standalone directives). Returns null on error.
  Stmt *ActOnOpenMPExecutableDirective(OpenMPDirectiveKind Kind,
                                       std::vector<OMPClause *> Clauses,
                                       Stmt *AStmt, SourceRange R);

  /// Analyzes the loop nest associated with a directive requiring
  /// \p NumLoops canonical loops. Loop transformation directives already
  /// applied to inner nests are consumed via getTransformedStmt() (legacy)
  /// — the mechanism of the paper's Section 2. Fills \p Infos; returns
  /// false after diagnosing.
  bool analyzeLoopNest(Stmt *AStmt, OpenMPDirectiveKind Kind,
                       unsigned NumLoops, std::vector<OMPLoopInfo> &Infos,
                       std::vector<Stmt *> &PreInitsFromTransforms);

  /// Analyzes a single loop for OpenMP canonical form. Public for tests.
  bool checkOpenMPCanonicalLoop(Stmt *S, OpenMPDirectiveKind Kind,
                                OMPLoopInfo &Info);

  /// Builds the expression for the number of iterations in the loop's
  /// *unsigned* logical type, computed overflow-safely (Section 3.1).
  Expr *buildNumIterationsExpr(const OMPLoopInfo &Info);

  /// Builds "IterVar = LB + Counter * Step" (resp. "-" for decreasing
  /// loops): the de-normalization / loop-user-value update.
  Expr *buildCounterUpdate(const OMPLoopInfo &Info, Expr *CounterRValue);

  // --- Legacy pipeline (Section 2) ---

  /// Builds the transformed (shadow) AST for "#pragma omp tile".
  Stmt *buildTileTransformation(OMPTileDirective *Dir,
                                const std::vector<OMPLoopInfo> &Infos);
  /// Builds the transformed (shadow) AST for "#pragma omp unroll
  /// partial(k)": strip-mined loop whose inner loop carries a LoopHintAttr
  /// (paper Listing 8).
  Stmt *buildUnrollPartialTransformation(OMPUnrollDirective *Dir,
                                         const OMPLoopInfo &Info,
                                         unsigned Factor);
  /// Builds the transformed (shadow) AST for "#pragma omp reverse": one
  /// loop over the logical iteration space, fed through in reverse order.
  Stmt *buildReverseTransformation(OMPReverseDirective *Dir,
                                   const OMPLoopInfo &Info);
  /// Builds the transformed (shadow) AST for "#pragma omp interchange":
  /// the nest rebuilt over the permuted logical iteration spaces.
  Stmt *buildInterchangeTransformation(OMPInterchangeDirective *Dir,
                                       const std::vector<OMPLoopInfo> &Infos,
                                       std::span<const unsigned> Perm);
  /// Builds the transformed (shadow) AST for "#pragma omp fuse": one loop
  /// over the maximal logical iteration space whose body runs iteration t
  /// of every fused sibling (guarded when trip counts may differ). \p Infos
  /// holds one entry per *fused* sibling; siblings outside the looprange
  /// are re-emitted around the fused loop unchanged.
  Stmt *buildFuseTransformation(OMPFuseDirective *Dir,
                                const std::vector<OMPLoopInfo> &Infos,
                                std::span<Stmt *const> Siblings,
                                unsigned FirstIdx,
                                std::vector<Stmt *> &PreInits);
  /// Builds the transformed (shadow) AST for "#pragma omp distribute_loop":
  /// one loop per top-level statement group of the original body, run in
  /// source order over the full logical iteration space.
  Stmt *buildDistributeTransformation(OMPDistributeLoopDirective *Dir,
                                      const OMPLoopInfo &Info);
  /// Fills the ~30+6n shadow helper expressions of an OMPLoopDirective.
  void buildLoopDirectiveHelpers(OMPLoopDirective *Dir,
                                 const std::vector<OMPLoopInfo> &Infos,
                                 Stmt *PreInits);

  // --- IRBuilder pipeline (Section 3) ---

  /// Wraps \p Info's loop in an OMPCanonicalLoop with the three pieces of
  /// meta-information: distance function, loop-var function, loop-var ref.
  OMPCanonicalLoop *buildOMPCanonicalLoop(const OMPLoopInfo &Info);

  /// Builds a CapturedStmt outlining \p S, capturing every variable
  /// declared outside it, with the standard implicit parameters
  /// (.global_tid., .bound_tid., __context).
  CapturedStmt *buildCaptureForOutlining(Stmt *S,
                                         std::vector<VarDecl *> ExtraCaptures);

private:
  // Helpers for directive construction.
  Stmt *buildLoopDirective(OpenMPDirectiveKind Kind,
                           std::vector<OMPClause *> Clauses, Stmt *AStmt,
                           SourceRange R);
  Stmt *buildTileDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                           SourceRange R);
  Stmt *buildUnrollDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                             SourceRange R);
  Stmt *buildReverseDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                              SourceRange R);
  Stmt *buildInterchangeDirective(std::vector<OMPClause *> Clauses,
                                  Stmt *AStmt, SourceRange R);
  Stmt *buildFuseDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                           SourceRange R);
  Stmt *buildDistributeLoopDirective(std::vector<OMPClause *> Clauses,
                                     Stmt *AStmt, SourceRange R);

  /// Returns the statement the dependence oracle should analyze for a
  /// loop-transformation directive: the recorded shadow AST in legacy
  /// mode, or one rebuilt on the fly in IRBuilder mode (where Sema leaves
  /// TransformedStmt null). Null when no analyzable loop results (full
  /// unroll, or a composition the oracle does not model).
  Stmt *buildTransformedForAnalysis(OMPLoopTransformationDirective *TD);

  /// Consults the dependence-analysis oracle on the *syntactic* loop nest:
  /// refuses (with an error naming the violated dependence, or what made
  /// the nest unprovable) unless the transformation is provably
  /// order-preserving. \p Perm is empty for reverse (level 0).
  bool checkTransformDependences(Stmt *AStmt, OpenMPDirectiveKind Kind,
                                 unsigned NumLoops,
                                 std::span<const unsigned> Perm,
                                 SourceRange R);

  /// Collects every VarDecl referenced by \p S but declared outside it.
  std::vector<VarDecl *> computeCaptures(Stmt *S);

  bool checkDuplicateClauses(const std::vector<OMPClause *> &Clauses,
                             OpenMPDirectiveKind Kind);

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  LangOptions Opts;

  std::vector<std::unique_ptr<Scope>> ScopeStorage;
  Scope *CurScope = nullptr;
  unsigned LoopDepth = 0;
  FunctionDecl *CurFunction = nullptr;
  unsigned InternalNameCounter = 0;
};

} // namespace mcc

#endif // MCC_SEMA_SEMA_H
