//===--- LangOptions.h - Language / pipeline options ------------*- C++ -*-===//
#ifndef MCC_SEMA_LANGOPTIONS_H
#define MCC_SEMA_LANGOPTIONS_H

namespace mcc {

struct LangOptions {
  /// -fopenmp: recognize OpenMP pragmas.
  bool OpenMP = true;

  /// -fopenmp-enable-irbuilder: use the OMPCanonicalLoop + OpenMPIRBuilder
  /// pipeline (the paper's Section 3) instead of the shadow-AST pipeline
  /// (Section 2).
  bool OpenMPEnableIRBuilder = false;

  /// Default number of threads for parallel regions without num_threads.
  unsigned OpenMPDefaultNumThreads = 4;

  /// Unroll factor assumed when a heuristic "#pragma omp unroll" (no
  /// full/partial clause) is consumed by an enclosing directive. The paper
  /// documents that the current implementation uses two.
  unsigned HeuristicUnrollFactor = 2;
};

} // namespace mcc

#endif // MCC_SEMA_LANGOPTIONS_H
