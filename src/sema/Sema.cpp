//===--- Sema.cpp - Core semantic analysis ---------------------------------===//
#include "sema/Sema.h"

#include <charconv>

namespace mcc {

Sema::Sema(ASTContext &Ctx, DiagnosticsEngine &Diags, const LangOptions &Opts)
    : Ctx(Ctx), Diags(Diags), Opts(Opts) {
  pushScope(); // translation-unit scope
}

Sema::~Sema() = default;

void Sema::pushScope() {
  ScopeStorage.push_back(std::make_unique<Scope>(CurScope));
  CurScope = ScopeStorage.back().get();
}

void Sema::popScope() {
  assert(CurScope && "scope underflow");
  CurScope = CurScope->getParent();
}

// ===------------------------------------------------------------------=== //
// Declarations
// ===------------------------------------------------------------------=== //

VarDecl *Sema::ActOnVarDecl(SourceLocation Loc, std::string_view Name,
                            QualType Ty, Expr *Init, bool FileScope) {
  if (NamedDecl *Prev = CurScope->lookupLocal(Name)) {
    Diags.report(Loc, diag::err_redefinition) << std::string(Name);
    Diags.report(Prev->getLocation(), diag::note_previous_definition);
    return nullptr;
  }
  if (Init) {
    // Initializing an array from a scalar is rejected; everything else is
    // converted to the declared type.
    if (!Ty->isArrayType())
      Init = convertTo(Init, Ty.withoutConst(), Loc);
  }
  auto *VD =
      Ctx.create<VarDecl>(Loc, Ctx.internString(Name), Ty, Init);
  VD->setFileScope(FileScope);
  CurScope->addDecl(VD);
  return VD;
}

ParmVarDecl *Sema::ActOnParamDecl(SourceLocation Loc, std::string_view Name,
                                  QualType Ty) {
  // Arrays in parameter position decay to pointers, as in C.
  if (const auto *AT = type_dyn_cast<ArrayType>(Ty.getTypePtr()))
    Ty = Ctx.getPointerType(AT->getElementType());
  return Ctx.create<ParmVarDecl>(Loc, Ctx.internString(Name), Ty);
}

FunctionDecl *Sema::ActOnFunctionDecl(SourceLocation Loc,
                                      std::string_view Name, QualType RetTy,
                                      std::vector<ParmVarDecl *> Params) {
  std::vector<QualType> ParamTys;
  ParamTys.reserve(Params.size());
  for (const ParmVarDecl *P : Params)
    ParamTys.push_back(P->getType());
  QualType FnTy = Ctx.getFunctionType(RetTy, ParamTys);

  if (NamedDecl *Prev = CurScope->lookupLocal(Name)) {
    auto *PrevFn = decl_dyn_cast<FunctionDecl>(Prev);
    if (PrevFn && PrevFn->getType() == FnTy && !PrevFn->hasBody()) {
      // Redeclaration of a prototype: reuse the original (parameter decls
      // of the definition take effect when the body starts).
      return PrevFn;
    }
    Diags.report(Loc, diag::err_redefinition) << std::string(Name);
    Diags.report(Prev->getLocation(), diag::note_previous_definition);
    return nullptr;
  }

  auto StoredParams = Ctx.allocateCopy(Params);
  auto *FD = Ctx.create<FunctionDecl>(
      Loc, Ctx.internString(Name), FnTy,
      std::span<ParmVarDecl *const>(StoredParams.data(), StoredParams.size()));
  CurScope->addDecl(FD);
  return FD;
}

void Sema::ActOnStartFunctionBody(FunctionDecl *FD) {
  CurFunction = FD;
  pushScope();
  for (ParmVarDecl *P : FD->parameters())
    CurScope->addDecl(P);
}

void Sema::ActOnFinishFunctionBody(FunctionDecl *FD, Stmt *Body) {
  FD->setBody(Body);
  popScope();
  CurFunction = nullptr;
}

TranslationUnitDecl *
Sema::ActOnEndOfTranslationUnit(std::vector<Decl *> Decls) {
  auto Stored = Ctx.allocateCopy(Decls);
  return Ctx.create<TranslationUnitDecl>(
      std::span<Decl *const>(Stored.data(), Stored.size()));
}

// ===------------------------------------------------------------------=== //
// Conversions
// ===------------------------------------------------------------------=== //

Expr *Sema::defaultFunctionArrayLvalueConversion(Expr *E) {
  if (!E)
    return nullptr;
  QualType Ty = E->getType();
  if (const auto *AT = type_dyn_cast<ArrayType>(Ty.getTypePtr())) {
    QualType PtrTy = Ctx.getPointerType(AT->getElementType());
    return Ctx.create<ImplicitCastExpr>(PtrTy, CastKind::ArrayToPointerDecay,
                                        E);
  }
  if (Ty->isFunctionType()) {
    QualType PtrTy = Ctx.getPointerType(Ty);
    return Ctx.create<ImplicitCastExpr>(
        PtrTy, CastKind::FunctionToPointerDecay, E);
  }
  if (E->isLValue())
    return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(),
                                        CastKind::LValueToRValue, E);
  return E;
}

Expr *Sema::convertToBoolean(Expr *E) {
  if (!E)
    return nullptr;
  E = defaultFunctionArrayLvalueConversion(E);
  QualType Ty = E->getType();
  if (Ty->isBooleanType())
    return E;
  if (Ty->isIntegerType())
    return Ctx.create<ImplicitCastExpr>(Ctx.getBoolType(),
                                        CastKind::IntegralToBoolean, E);
  if (Ty->isFloatingType())
    return Ctx.create<ImplicitCastExpr>(Ctx.getBoolType(),
                                        CastKind::FloatingToBoolean, E);
  if (Ty->isPointerType())
    return Ctx.create<ImplicitCastExpr>(Ctx.getBoolType(),
                                        CastKind::PointerToBoolean, E);
  Diags.report(E->getBeginLoc(), diag::err_incompatible_types)
      << Ty.getAsString() << "bool";
  return E;
}

Expr *Sema::convertTo(Expr *E, QualType Ty, SourceLocation Loc) {
  if (!E)
    return nullptr;
  E = defaultFunctionArrayLvalueConversion(E);
  QualType From = E->getType();
  if (From.hasSameTypeAs(Ty))
    return E;

  const Type *FromTy = From.getTypePtr();
  const Type *ToTy = Ty.getTypePtr();

  if (ToTy->isBooleanType())
    return convertToBoolean(E);
  if (FromTy->isIntegerType() && ToTy->isIntegerType())
    return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(),
                                        CastKind::IntegralCast, E);
  if (FromTy->isIntegerType() && ToTy->isFloatingType())
    return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(),
                                        CastKind::IntegralToFloating, E);
  if (FromTy->isFloatingType() && ToTy->isIntegerType())
    return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(),
                                        CastKind::FloatingToIntegral, E);
  if (FromTy->isFloatingType() && ToTy->isFloatingType())
    return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(),
                                        CastKind::FloatingCast, E);
  if (FromTy->isPointerType() && ToTy->isPointerType()) {
    // Permit conversions between pointer types that differ only in
    // qualification of the pointee; anything else is diagnosed.
    const auto *FP = type_cast<PointerType>(FromTy);
    const auto *TP = type_cast<PointerType>(ToTy);
    if (FP->getPointeeType().hasSameTypeAs(TP->getPointeeType()) ||
        TP->getPointeeType()->isVoidType() ||
        FP->getPointeeType()->isVoidType())
      return Ctx.create<ImplicitCastExpr>(Ty.withoutConst(), CastKind::NoOp,
                                          E);
  }

  Diags.report(Loc.isValid() ? Loc : E->getBeginLoc(),
               diag::err_incompatible_types)
      << From.getAsString() << Ty.getAsString();
  return E;
}

QualType Sema::usualArithmeticConversions(Expr *&LHS, Expr *&RHS) {
  LHS = defaultFunctionArrayLvalueConversion(LHS);
  RHS = defaultFunctionArrayLvalueConversion(RHS);

  QualType L = LHS->getType();
  QualType R = RHS->getType();
  if (L.hasSameTypeAs(R) && !L->isBooleanType() &&
      L->getSizeInBytes() >= 4)
    return L;

  auto Rank = [](QualType T) -> int {
    if (T->isFloatingType())
      return T->getSizeInBytes() == 8 ? 100 : 99;
    const auto *BT = type_cast<BuiltinType>(T.getTypePtr());
    return static_cast<int>(BT->getIntegerRank());
  };

  QualType Common;
  if (L->isFloatingType() || R->isFloatingType()) {
    Common = Rank(L) >= Rank(R) ? L : R;
    if (!Common->isFloatingType())
      Common = Rank(L) >= Rank(R) ? L : R; // unreachable safety
  } else {
    // Integer promotions: everything below int promotes to int.
    QualType PL = Rank(L) < 4 ? Ctx.getIntType() : L;
    QualType PR = Rank(R) < 4 ? Ctx.getIntType() : R;
    if (PL.hasSameTypeAs(PR))
      Common = PL;
    else if (Rank(PL) != Rank(PR))
      Common = Rank(PL) > Rank(PR) ? PL : PR;
    else
      // Same rank, different signedness: unsigned wins.
      Common = PL->isUnsignedIntegerType() ? PL : PR;
  }
  Common = Common.withoutConst();
  LHS = convertTo(LHS, Common, LHS->getBeginLoc());
  RHS = convertTo(RHS, Common, RHS->getBeginLoc());
  return Common;
}

// ===------------------------------------------------------------------=== //
// Expressions
// ===------------------------------------------------------------------=== //

Expr *Sema::ActOnIntegerLiteral(const Token &Tok) {
  std::string Text(Tok.getText());
  bool IsUnsigned = false, IsLong = false;
  while (!Text.empty()) {
    char C = Text.back();
    if (C == 'u' || C == 'U') {
      IsUnsigned = true;
      Text.pop_back();
    } else if (C == 'l' || C == 'L') {
      IsLong = true;
      Text.pop_back();
    } else {
      break;
    }
  }
  std::uint64_t Value = 0;
  int Base = 10;
  const char *Begin = Text.data();
  const char *End = Text.data() + Text.size();
  if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X')) {
    Base = 16;
    Begin += 2;
  }
  auto [Ptr, Ec] = std::from_chars(Begin, End, Value, Base);
  if (Ec != std::errc() || Ptr != End) {
    Diags.report(Tok.getLocation(), diag::err_invalid_number)
        << std::string(Tok.getText());
    Value = 0;
  }

  QualType Ty;
  if (IsLong)
    Ty = IsUnsigned ? Ctx.getULongType() : Ctx.getLongType();
  else if (IsUnsigned)
    Ty = Value <= 0xFFFFFFFFull ? Ctx.getUIntType() : Ctx.getULongType();
  else if (Value <= 0x7FFFFFFFull)
    Ty = Ctx.getIntType();
  else
    Ty = Ctx.getLongType();
  return Ctx.create<IntegerLiteral>(Tok.getLocation(), Ty, Value);
}

Expr *Sema::ActOnFloatingLiteral(const Token &Tok) {
  std::string Text(Tok.getText());
  bool IsFloat = false;
  while (!Text.empty() && (Text.back() == 'f' || Text.back() == 'F')) {
    IsFloat = true;
    Text.pop_back();
  }
  double Value = 0;
  try {
    Value = std::stod(Text);
  } catch (...) {
    Diags.report(Tok.getLocation(), diag::err_invalid_number)
        << std::string(Tok.getText());
  }
  return Ctx.create<FloatingLiteral>(
      Tok.getLocation(), IsFloat ? Ctx.getFloatType() : Ctx.getDoubleType(),
      Value);
}

Expr *Sema::ActOnBoolLiteral(SourceLocation Loc, bool Value) {
  return Ctx.create<BoolLiteral>(Loc, Ctx.getBoolType(), Value);
}

Expr *Sema::ActOnIdExpression(SourceLocation Loc, std::string_view Name) {
  NamedDecl *D = CurScope->lookup(Name);
  if (!D) {
    Diags.report(Loc, diag::err_undeclared_identifier) << std::string(Name);
    return nullptr;
  }
  auto *VD = decl_cast<ValueDecl>(D);
  return Ctx.create<DeclRefExpr>(Loc, VD, VD->getType());
}

Expr *Sema::ActOnParenExpr(SourceRange R, Expr *Sub) {
  if (!Sub)
    return nullptr;
  return Ctx.create<ParenExpr>(R, Sub);
}

Expr *Sema::ActOnUnaryOp(SourceLocation OpLoc, UnaryOperatorKind Opc,
                         Expr *Sub) {
  if (!Sub)
    return nullptr;
  SourceRange R(OpLoc, Sub->getEndLoc());
  switch (Opc) {
  case UnaryOperatorKind::Plus:
  case UnaryOperatorKind::Minus: {
    Sub = defaultFunctionArrayLvalueConversion(Sub);
    QualType Ty = Sub->getType();
    if (!Ty->isArithmeticType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << Ty.getAsString() << Ty.getAsString();
      return nullptr;
    }
    if (Ty->isIntegerType() && Ty->getSizeInBytes() < 4) {
      Sub = convertTo(Sub, Ctx.getIntType(), OpLoc);
      Ty = Ctx.getIntType();
    }
    return Ctx.create<UnaryOperator>(R, Opc, Ty, Sub);
  }
  case UnaryOperatorKind::LNot:
    Sub = convertToBoolean(Sub);
    return Ctx.create<UnaryOperator>(R, Opc, Ctx.getBoolType(), Sub);
  case UnaryOperatorKind::Not: {
    Sub = defaultFunctionArrayLvalueConversion(Sub);
    if (!Sub->getType()->isIntegerType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << Sub->getType().getAsString() << Sub->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<UnaryOperator>(R, Opc, Sub->getType(), Sub);
  }
  case UnaryOperatorKind::Deref: {
    Sub = defaultFunctionArrayLvalueConversion(Sub);
    const auto *PT = type_dyn_cast<PointerType>(Sub->getType().getTypePtr());
    if (!PT) {
      Diags.report(OpLoc, diag::err_deref_non_pointer)
          << Sub->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<UnaryOperator>(R, Opc, PT->getPointeeType(), Sub,
                                     /*LValue=*/true);
  }
  case UnaryOperatorKind::AddrOf: {
    if (!Sub->isLValue()) {
      Diags.report(OpLoc, diag::err_not_assignable);
      return nullptr;
    }
    QualType PtrTy = Ctx.getPointerType(Sub->getType());
    return Ctx.create<UnaryOperator>(R, Opc, PtrTy, Sub);
  }
  case UnaryOperatorKind::PreInc:
  case UnaryOperatorKind::PreDec:
  case UnaryOperatorKind::PostInc:
  case UnaryOperatorKind::PostDec: {
    if (!Sub->isLValue() || Sub->getType().isConstQualified()) {
      Diags.report(OpLoc, diag::err_not_assignable);
      return nullptr;
    }
    return Ctx.create<UnaryOperator>(R, Opc, Sub->getType().withoutConst(),
                                     Sub);
  }
  }
  return nullptr;
}

Expr *Sema::ActOnBinaryOp(SourceLocation OpLoc, BinaryOperatorKind Opc,
                          Expr *LHS, Expr *RHS) {
  if (!LHS || !RHS)
    return nullptr;
  SourceRange R(LHS->getBeginLoc(), RHS->getEndLoc());

  // Assignments.
  if (Opc == BinaryOperatorKind::Assign ||
      (Opc >= BinaryOperatorKind::MulAssign &&
       Opc <= BinaryOperatorKind::OrAssign)) {
    if (!LHS->isLValue() || LHS->getType().isConstQualified()) {
      Diags.report(OpLoc, diag::err_not_assignable);
      return nullptr;
    }
    QualType LTy = LHS->getType().withoutConst();
    // Pointer arithmetic compound assignments keep an integer RHS.
    if (LTy->isPointerType() && (Opc == BinaryOperatorKind::AddAssign ||
                                 Opc == BinaryOperatorKind::SubAssign)) {
      RHS = defaultFunctionArrayLvalueConversion(RHS);
      if (!RHS->getType()->isIntegerType()) {
        Diags.report(OpLoc, diag::err_invalid_operands)
            << LTy.getAsString() << RHS->getType().getAsString();
        return nullptr;
      }
      return Ctx.create<BinaryOperator>(R, Opc, LTy, LHS, RHS);
    }
    RHS = convertTo(RHS, LTy, OpLoc);
    return Ctx.create<BinaryOperator>(R, Opc, LTy, LHS, RHS);
  }

  switch (Opc) {
  case BinaryOperatorKind::Add:
  case BinaryOperatorKind::Sub: {
    Expr *L = defaultFunctionArrayLvalueConversion(LHS);
    Expr *RR = defaultFunctionArrayLvalueConversion(RHS);
    bool LPtr = L->getType()->isPointerType();
    bool RPtr = RR->getType()->isPointerType();
    if (LPtr && RPtr && Opc == BinaryOperatorKind::Sub)
      return Ctx.create<BinaryOperator>(R, Opc, Ctx.getLongType(), L, RR);
    if (LPtr && RR->getType()->isIntegerType())
      return Ctx.create<BinaryOperator>(R, Opc, L->getType(), L, RR);
    if (RPtr && L->getType()->isIntegerType() &&
        Opc == BinaryOperatorKind::Add)
      return Ctx.create<BinaryOperator>(R, Opc, RR->getType(), L, RR);
    if (LPtr || RPtr) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << L->getType().getAsString() << RR->getType().getAsString();
      return nullptr;
    }
    LHS = L;
    RHS = RR;
    QualType Common = usualArithmeticConversions(LHS, RHS);
    return Ctx.create<BinaryOperator>(R, Opc, Common, LHS, RHS);
  }
  case BinaryOperatorKind::Mul:
  case BinaryOperatorKind::Div: {
    QualType Common = usualArithmeticConversions(LHS, RHS);
    if (!Common->isArithmeticType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << LHS->getType().getAsString() << RHS->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<BinaryOperator>(R, Opc, Common, LHS, RHS);
  }
  case BinaryOperatorKind::Rem:
  case BinaryOperatorKind::And:
  case BinaryOperatorKind::Xor:
  case BinaryOperatorKind::Or: {
    QualType Common = usualArithmeticConversions(LHS, RHS);
    if (!Common->isIntegerType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << LHS->getType().getAsString() << RHS->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<BinaryOperator>(R, Opc, Common, LHS, RHS);
  }
  case BinaryOperatorKind::Shl:
  case BinaryOperatorKind::Shr: {
    LHS = defaultFunctionArrayLvalueConversion(LHS);
    RHS = defaultFunctionArrayLvalueConversion(RHS);
    if (!LHS->getType()->isIntegerType() ||
        !RHS->getType()->isIntegerType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << LHS->getType().getAsString() << RHS->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<BinaryOperator>(R, Opc, LHS->getType(), LHS, RHS);
  }
  case BinaryOperatorKind::LT:
  case BinaryOperatorKind::GT:
  case BinaryOperatorKind::LE:
  case BinaryOperatorKind::GE:
  case BinaryOperatorKind::EQ:
  case BinaryOperatorKind::NE: {
    Expr *L = defaultFunctionArrayLvalueConversion(LHS);
    Expr *RR = defaultFunctionArrayLvalueConversion(RHS);
    if (L->getType()->isPointerType() && RR->getType()->isPointerType())
      return Ctx.create<BinaryOperator>(R, Opc, Ctx.getBoolType(), L, RR);
    LHS = L;
    RHS = RR;
    QualType Common = usualArithmeticConversions(LHS, RHS);
    if (!Common->isArithmeticType()) {
      Diags.report(OpLoc, diag::err_invalid_operands)
          << LHS->getType().getAsString() << RHS->getType().getAsString();
      return nullptr;
    }
    return Ctx.create<BinaryOperator>(R, Opc, Ctx.getBoolType(), LHS, RHS);
  }
  case BinaryOperatorKind::LAnd:
  case BinaryOperatorKind::LOr:
    LHS = convertToBoolean(LHS);
    RHS = convertToBoolean(RHS);
    return Ctx.create<BinaryOperator>(R, Opc, Ctx.getBoolType(), LHS, RHS);
  case BinaryOperatorKind::Comma:
    LHS = defaultFunctionArrayLvalueConversion(LHS);
    RHS = defaultFunctionArrayLvalueConversion(RHS);
    return Ctx.create<BinaryOperator>(R, Opc, RHS->getType(), LHS, RHS);
  default:
    return nullptr;
  }
}

Expr *Sema::ActOnConditionalOp(SourceLocation QLoc, Expr *Cond, Expr *TrueE,
                               Expr *FalseE) {
  if (!Cond || !TrueE || !FalseE)
    return nullptr;
  Cond = convertToBoolean(Cond);
  SourceRange R(Cond->getBeginLoc(), FalseE->getEndLoc());
  TrueE = defaultFunctionArrayLvalueConversion(TrueE);
  FalseE = defaultFunctionArrayLvalueConversion(FalseE);
  QualType Ty;
  if (TrueE->getType().hasSameTypeAs(FalseE->getType()))
    Ty = TrueE->getType();
  else if (TrueE->getType()->isArithmeticType() &&
           FalseE->getType()->isArithmeticType())
    Ty = usualArithmeticConversions(TrueE, FalseE);
  else {
    Diags.report(QLoc, diag::err_incompatible_types)
        << TrueE->getType().getAsString() << FalseE->getType().getAsString();
    return nullptr;
  }
  return Ctx.create<ConditionalOperator>(R, Ty, Cond, TrueE, FalseE);
}

Expr *Sema::ActOnCallExpr(SourceRange R, Expr *Callee,
                          std::vector<Expr *> Args) {
  if (!Callee)
    return nullptr;
  const FunctionType *FT = nullptr;
  QualType CalleeTy = Callee->getType();
  if (CalleeTy->isFunctionType())
    FT = type_cast<FunctionType>(CalleeTy.getTypePtr());
  else if (const auto *PT =
               type_dyn_cast<PointerType>(CalleeTy.getTypePtr()))
    FT = type_dyn_cast<FunctionType>(PT->getPointeeType().getTypePtr());
  if (!FT) {
    std::string Name = "<expression>";
    if (const auto *DRE =
            stmt_dyn_cast<DeclRefExpr>(Callee->ignoreParenImpCasts()))
      Name = std::string(DRE->getDecl()->getName());
    Diags.report(R.getBegin(), diag::err_not_a_function) << Name;
    return nullptr;
  }
  if (Args.size() != FT->getNumParams()) {
    std::string Name = "<function>";
    if (const auto *DRE =
            stmt_dyn_cast<DeclRefExpr>(Callee->ignoreParenImpCasts()))
      Name = std::string(DRE->getDecl()->getName());
    Diags.report(R.getBegin(), diag::err_wrong_arg_count)
        << Name << FT->getNumParams()
        << static_cast<unsigned>(Args.size());
    return nullptr;
  }
  for (unsigned I = 0; I < Args.size(); ++I) {
    if (!Args[I])
      return nullptr;
    Args[I] = convertTo(Args[I], FT->getParamTypes()[I],
                        Args[I]->getBeginLoc());
  }
  auto Stored = Ctx.allocateCopy(Args);
  return Ctx.create<CallExpr>(
      R, FT->getResultType(), Callee,
      std::span<Expr *const>(Stored.data(), Stored.size()));
}

Expr *Sema::ActOnArraySubscript(SourceRange R, Expr *Base, Expr *Index) {
  if (!Base || !Index)
    return nullptr;
  Base = defaultFunctionArrayLvalueConversion(Base);
  const auto *PT = type_dyn_cast<PointerType>(Base->getType().getTypePtr());
  if (!PT) {
    Diags.report(R.getBegin(), diag::err_subscript_non_pointer);
    return nullptr;
  }
  Index = defaultFunctionArrayLvalueConversion(Index);
  if (!Index->getType()->isIntegerType()) {
    Diags.report(Index->getBeginLoc(), diag::err_incompatible_types)
        << Index->getType().getAsString() << "integer";
    return nullptr;
  }
  return Ctx.create<ArraySubscriptExpr>(R, PT->getPointeeType(), Base,
                                        Index);
}

// ===------------------------------------------------------------------=== //
// Statements
// ===------------------------------------------------------------------=== //

Stmt *Sema::ActOnNullStmt(SourceLocation Loc) {
  return Ctx.create<NullStmt>(Loc);
}

Stmt *Sema::ActOnCompoundStmt(SourceRange R, std::vector<Stmt *> Body) {
  // Drop statements that failed to build (error recovery).
  std::erase(Body, nullptr);
  auto Stored = Ctx.allocateCopy(Body);
  return Ctx.create<CompoundStmt>(
      R, std::span<Stmt *const>(Stored.data(), Stored.size()));
}

Stmt *Sema::ActOnDeclStmt(SourceRange R, std::vector<VarDecl *> Decls) {
  std::erase(Decls, nullptr);
  auto Stored = Ctx.allocateCopy(Decls);
  return Ctx.create<DeclStmt>(
      R, std::span<VarDecl *const>(Stored.data(), Stored.size()));
}

Stmt *Sema::ActOnExprStmt(Expr *E) { return E; }

Stmt *Sema::ActOnIfStmt(SourceRange R, Expr *Cond, Stmt *Then, Stmt *Else) {
  if (!Cond || !Then)
    return nullptr;
  return Ctx.create<IfStmt>(R, convertToBoolean(Cond), Then, Else);
}

Stmt *Sema::ActOnWhileStmt(SourceRange R, Expr *Cond, Stmt *Body) {
  if (!Cond || !Body)
    return nullptr;
  return Ctx.create<WhileStmt>(R, convertToBoolean(Cond), Body);
}

Stmt *Sema::ActOnDoStmt(SourceRange R, Stmt *Body, Expr *Cond) {
  if (!Cond || !Body)
    return nullptr;
  return Ctx.create<DoStmt>(R, Body, convertToBoolean(Cond));
}

Stmt *Sema::ActOnForStmt(SourceRange R, Stmt *Init, Expr *Cond, Expr *Inc,
                         Stmt *Body) {
  if (!Body)
    return nullptr;
  if (Cond)
    Cond = convertToBoolean(Cond);
  return Ctx.create<ForStmt>(R, Init, Cond, Inc, Body);
}

Stmt *Sema::ActOnReturnStmt(SourceRange R, Expr *Value) {
  QualType RetTy =
      CurFunction ? CurFunction->getReturnType() : Ctx.getIntType();
  if (Value) {
    if (RetTy->isVoidType()) {
      Diags.report(R.getBegin(), diag::err_return_type_mismatch)
          << Value->getType().getAsString() << "void";
      return nullptr;
    }
    Value = convertTo(Value, RetTy, R.getBegin());
  } else if (!RetTy->isVoidType()) {
    Diags.report(R.getBegin(), diag::err_return_missing_value);
    return nullptr;
  }
  return Ctx.create<ReturnStmt>(R, Value);
}

Stmt *Sema::ActOnBreakStmt(SourceLocation Loc) {
  if (LoopDepth == 0) {
    Diags.report(Loc, diag::err_break_outside_loop);
    return nullptr;
  }
  return Ctx.create<BreakStmt>(Loc);
}

Stmt *Sema::ActOnContinueStmt(SourceLocation Loc) {
  if (LoopDepth == 0) {
    Diags.report(Loc, diag::err_continue_outside_loop);
    return nullptr;
  }
  return Ctx.create<ContinueStmt>(Loc);
}

// ===------------------------------------------------------------------=== //
// Synthesized-AST helpers
// ===------------------------------------------------------------------=== //

IntegerLiteral *Sema::buildIntLiteral(std::uint64_t Value, QualType Ty) {
  return Ctx.create<IntegerLiteral>(SourceLocation(), Ty, Value);
}

DeclRefExpr *Sema::buildDeclRef(ValueDecl *D) {
  return Ctx.create<DeclRefExpr>(D->getLocation(), D, D->getType());
}

Expr *Sema::buildRValueRef(ValueDecl *D) {
  return defaultFunctionArrayLvalueConversion(buildDeclRef(D));
}

Expr *Sema::buildBinOp(BinaryOperatorKind Opc, Expr *LHS, Expr *RHS) {
  return ActOnBinaryOp(SourceLocation(), Opc, LHS, RHS);
}

VarDecl *Sema::buildInternalVar(std::string_view Name, QualType Ty,
                                Expr *Init) {
  std::string Unique(Name);
  if (Init)
    Init = convertTo(Init, Ty.withoutConst(), SourceLocation());
  auto *VD =
      Ctx.create<VarDecl>(SourceLocation(), Ctx.internString(Unique), Ty,
                          Init);
  VD->setImplicit();
  return VD;
}

} // namespace mcc
