//===--- SemaOpenMPTransform.cpp - Shadow-AST & canonical loop building ---===//
//
// Implements both representations of the paper:
//
//  Section 2 (shadow AST): buildUnrollPartialTransformation and
//  buildTileTransformation construct the *transformed statement* — a loop
//  nest over the logical iteration space whose innermost body materializes
//  the original iteration variables and re-uses (a clone of) the original
//  body. buildLoopDirectiveHelpers constructs the ~30+6n helper expressions
//  of OMPLoopDirective.
//
//  Section 3 (canonical loop): buildOMPCanonicalLoop wraps a literal loop
//  with the three pieces of meta-information (distance function, loop-
//  user-variable function, loop-variable reference), each a CapturedStmt.
//
//===----------------------------------------------------------------------===//
#include "sema/Sema.h"

#include "analysis/DependenceAnalysis.h"

#include <set>

namespace mcc {

namespace {

/// Clones an expression (the AST is immutable; reusing a node in two
/// places would create a DAG).
Expr *cloneExpr(ASTContext &Ctx, Expr *E) {
  if (!E)
    return nullptr;
  TreeTransform TT(Ctx);
  return TT.transformExpr(E);
}

/// Builds the de-normalized loop-variable *value* for a logical iteration:
///   lb + counter * step   (or lb - counter * step for decreasing loops).
Expr *buildCounterValue(Sema &S, const OMPLoopInfo &Info, Expr *CounterRV) {
  ASTContext &Ctx = S.getASTContext();
  QualType LT = Info.LogicalType;

  Expr *StepU = S.convertTo(cloneExpr(Ctx, Info.Step), LT, SourceLocation());
  Expr *Prod = S.buildBinOp(BinaryOperatorKind::Mul,
                            S.convertTo(CounterRV, LT, SourceLocation()),
                            StepU);
  BinaryOperatorKind AddOp =
      Info.Decreasing ? BinaryOperatorKind::Sub : BinaryOperatorKind::Add;

  Expr *LB = S.defaultFunctionArrayLvalueConversion(
      cloneExpr(Ctx, Info.LowerBound));
  if (Info.IVType->isPointerType()) {
    // Pointer arithmetic: the offset operand must be a (signed) integer.
    Expr *Offset =
        S.convertTo(Prod, Ctx.getLongType(), SourceLocation());
    return S.buildBinOp(AddOp, LB, Offset);
  }
  Expr *Value = S.buildBinOp(
      AddOp, S.convertTo(LB, LT, SourceLocation()), Prod);
  return S.convertTo(Value, Info.IVType.withoutConst(), SourceLocation());
}

} // namespace

Expr *Sema::buildNumIterationsExpr(const OMPLoopInfo &Info) {
  QualType LT = Info.LogicalType;

  if (Info.ConstantTripCount)
    return buildIntLiteral(*Info.ConstantTripCount, LT);

  // Distance, computed with unsigned wrap-around so the full value range
  // of the iteration variable is supported (Section 3.1).
  Expr *Range;
  Expr *Lo = defaultFunctionArrayLvalueConversion(
      cloneExpr(Ctx, Info.LowerBound));
  Expr *Hi = defaultFunctionArrayLvalueConversion(
      cloneExpr(Ctx, Info.UpperBound));
  if (Info.Decreasing)
    std::swap(Lo, Hi);
  if (Info.IVType->isPointerType()) {
    Expr *Diff = buildBinOp(BinaryOperatorKind::Sub, Hi, Lo); // long
    Range = convertTo(Diff, LT, SourceLocation());
  } else {
    Range = buildBinOp(BinaryOperatorKind::Sub,
                       convertTo(Hi, LT, SourceLocation()),
                       convertTo(Lo, LT, SourceLocation()));
  }
  if (Info.InclusiveBound)
    Range = buildBinOp(BinaryOperatorKind::Add, Range,
                       buildIntLiteral(1, LT));

  Expr *Count = Range;
  auto StepConst = evaluateInteger(Info.Step);
  if (!(StepConst && *StepConst == 1)) {
    // ceil(range / step) == (range + step - 1) / step
    Expr *StepU =
        convertTo(cloneExpr(Ctx, Info.Step), LT, SourceLocation());
    Expr *Adjust = buildBinOp(BinaryOperatorKind::Sub, StepU,
                              buildIntLiteral(1, LT));
    Expr *Sum = buildBinOp(BinaryOperatorKind::Add, Range, Adjust);
    Count = buildBinOp(
        BinaryOperatorKind::Div, Sum,
        convertTo(cloneExpr(Ctx, Info.Step), LT, SourceLocation()));
  }

  // Guard against zero-trip loops: (lb REL ub) ? count : 0. Without the
  // guard the unsigned subtraction would wrap to a huge value.
  BinaryOperatorKind PreRel;
  if (!Info.Decreasing)
    PreRel = Info.InclusiveBound ? BinaryOperatorKind::LE
                                 : BinaryOperatorKind::LT;
  else
    PreRel = Info.InclusiveBound ? BinaryOperatorKind::GE
                                 : BinaryOperatorKind::GT;
  Expr *PreCond = buildBinOp(
      PreRel,
      defaultFunctionArrayLvalueConversion(cloneExpr(Ctx, Info.LowerBound)),
      defaultFunctionArrayLvalueConversion(cloneExpr(Ctx, Info.UpperBound)));
  return ActOnConditionalOp(SourceLocation(), PreCond, Count,
                            buildIntLiteral(0, LT));
}

Expr *Sema::buildCounterUpdate(const OMPLoopInfo &Info, Expr *CounterRValue) {
  Expr *Value = buildCounterValue(*this, Info, CounterRValue);
  return buildBinOp(BinaryOperatorKind::Assign, buildDeclRef(Info.IterVar),
                    Value);
}

// ===------------------------------------------------------------------=== //
// Section 2: shadow-AST transformations
// ===------------------------------------------------------------------=== //

Stmt *Sema::buildUnrollPartialTransformation(OMPUnrollDirective *Dir,
                                             const OMPLoopInfo &Info,
                                             unsigned Factor) {
  (void)Dir;
  QualType LT = Info.LogicalType;
  std::string BaseName(Info.IterVar->getName());

  // Outer (strip-mined) loop over the logical iteration space:
  //   for (LT unrolled.iv.NAME = 0; unrolled.iv < N; unrolled.iv += F)
  VarDecl *OuterIV = buildInternalVar(
      Ctx.internString("unrolled.iv." + BaseName), LT,
      buildIntLiteral(0, LT));
  std::vector<VarDecl *> OuterDecls{OuterIV};
  auto OuterStored = Ctx.allocateCopy(OuterDecls);
  Stmt *OuterInit = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(OuterStored.data(), 1));
  Expr *OuterCond = buildBinOp(BinaryOperatorKind::LT,
                               buildRValueRef(OuterIV),
                               buildNumIterationsExpr(Info));
  Expr *OuterInc =
      buildBinOp(BinaryOperatorKind::AddAssign, buildDeclRef(OuterIV),
                 buildIntLiteral(Factor, LT));

  // Inner loop: kept as a loop annotated with a LoopHintAttr (paper Fig. 8)
  // instead of duplicating the body; the mid-end LoopUnroll pass performs
  // the duplication.
  //   for (LT unroll_inner.iv = unrolled.iv;
  //        unroll_inner.iv < unrolled.iv + F && unroll_inner.iv < N;
  //        ++unroll_inner.iv)
  VarDecl *InnerIV = buildInternalVar(
      Ctx.internString("unroll_inner.iv." + BaseName), LT,
      buildRValueRef(OuterIV));
  std::vector<VarDecl *> InnerDecls{InnerIV};
  auto InnerStored = Ctx.allocateCopy(InnerDecls);
  Stmt *InnerInit = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(InnerStored.data(), 1));
  Expr *TileEnd =
      buildBinOp(BinaryOperatorKind::Add, buildRValueRef(OuterIV),
                 buildIntLiteral(Factor, LT));
  Expr *InnerCond = buildBinOp(
      BinaryOperatorKind::LAnd,
      buildBinOp(BinaryOperatorKind::LT, buildRValueRef(InnerIV), TileEnd),
      buildBinOp(BinaryOperatorKind::LT, buildRValueRef(InnerIV),
                 buildNumIterationsExpr(Info)));
  Expr *InnerInc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                                buildDeclRef(InnerIV));

  // Innermost body: materialize the original iteration variable from the
  // logical iteration number, then the (cloned, re-bound) original body.
  VarDecl *UserIV = Ctx.create<VarDecl>(
      Info.IterVar->getLocation(), Info.IterVar->getName(), Info.IVType,
      buildCounterValue(*this, Info, buildRValueRef(InnerIV)));
  std::vector<VarDecl *> UserDecls{UserIV};
  auto UserStored = Ctx.allocateCopy(UserDecls);
  Stmt *UserInit = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(UserStored.data(), 1));

  TreeTransform BodyClone(Ctx);
  BodyClone.addDeclSubstitution(Info.IterVar, UserIV);
  Stmt *ClonedBody = BodyClone.transformStmt(Info.Loop->getBody());

  std::vector<Stmt *> BodyStmts{UserInit, ClonedBody};
  auto BodyStored = Ctx.allocateCopy(BodyStmts);
  Stmt *InnerBody = Ctx.create<CompoundStmt>(
      Info.Loop->getBody()->getSourceRange(),
      std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));

  Stmt *InnerLoop = Ctx.create<ForStmt>(Info.Loop->getSourceRange(),
                                        InnerInit, InnerCond, InnerInc,
                                        InnerBody);

  const Attr *Hint = Ctx.create<LoopHintAttr>(
      LoopHintAttr::OptionKind::UnrollCount,
      buildIntLiteral(Factor, Ctx.getIntType()), /*Implicit=*/true);
  std::vector<const Attr *> Attrs{Hint};
  auto AttrStored = Ctx.allocateCopy(Attrs);
  Stmt *Attributed = Ctx.create<AttributedStmt>(
      Info.Loop->getSourceRange(),
      std::span<const Attr *const>(AttrStored.data(), AttrStored.size()),
      InnerLoop);

  return Ctx.create<ForStmt>(Info.Loop->getSourceRange(), OuterInit,
                             OuterCond, OuterInc, Attributed);
}

Stmt *Sema::buildTileTransformation(OMPTileDirective *Dir,
                                    const std::vector<OMPLoopInfo> &Infos) {
  const auto *Sizes = Dir->getSingleClause<OMPSizesClause>();
  assert(Sizes && Sizes->getNumSizes() == Infos.size());
  unsigned N = static_cast<unsigned>(Infos.size());

  // Build the 2n loops inside-out: first the innermost body (original IV
  // materialization + cloned original body), then tile loops n-1..0, then
  // floor loops n-1..0.
  std::vector<VarDecl *> FloorIVs(N), TileIVs(N);
  for (unsigned K = 0; K < N; ++K) {
    std::string BaseName(Infos[K].IterVar->getName());
    QualType LT = Infos[K].LogicalType;
    FloorIVs[K] = buildInternalVar(
        Ctx.internString(".floor." + std::to_string(K) + ".iv." + BaseName),
        LT, buildIntLiteral(0, LT));
    TileIVs[K] = buildInternalVar(
        Ctx.internString(".tile." + std::to_string(K) + ".iv." + BaseName),
        LT, buildRValueRef(FloorIVs[K]));
  }

  // Innermost: materialize user IVs and clone the body.
  TreeTransform BodyClone(Ctx);
  std::vector<Stmt *> BodyStmts;
  for (unsigned K = 0; K < N; ++K) {
    VarDecl *UserIV = Ctx.create<VarDecl>(
        Infos[K].IterVar->getLocation(), Infos[K].IterVar->getName(),
        Infos[K].IVType,
        buildCounterValue(*this, Infos[K], buildRValueRef(TileIVs[K])));
    BodyClone.addDeclSubstitution(Infos[K].IterVar, UserIV);
    std::vector<VarDecl *> Decls{UserIV};
    auto Stored = Ctx.allocateCopy(Decls);
    BodyStmts.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1)));
  }
  BodyStmts.push_back(
      BodyClone.transformStmt(Infos[N - 1].Loop->getBody()));
  auto BodyStored = Ctx.allocateCopy(BodyStmts);
  Stmt *Inner = Ctx.create<CompoundStmt>(
      Infos[N - 1].Loop->getBody()->getSourceRange(),
      std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));

  // Tile loops, innermost first.
  for (unsigned K = N; K-- > 0;) {
    QualType LT = Infos[K].LogicalType;
    std::int64_t TileSize = Sizes->getSize(K);
    std::vector<VarDecl *> Decls{TileIVs[K]};
    auto Stored = Ctx.allocateCopy(Decls);
    Stmt *Init = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1));
    Expr *TileEnd = buildBinOp(
        BinaryOperatorKind::Add, buildRValueRef(FloorIVs[K]),
        buildIntLiteral(static_cast<std::uint64_t>(TileSize), LT));
    Expr *Cond = buildBinOp(
        BinaryOperatorKind::LAnd,
        buildBinOp(BinaryOperatorKind::LT, buildRValueRef(TileIVs[K]),
                   TileEnd),
        buildBinOp(BinaryOperatorKind::LT, buildRValueRef(TileIVs[K]),
                   buildNumIterationsExpr(Infos[K])));
    Expr *Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                             buildDeclRef(TileIVs[K]));
    Inner = Ctx.create<ForStmt>(Infos[K].Loop->getSourceRange(), Init, Cond,
                                Inc, Inner);
  }

  // Floor loops, innermost first.
  for (unsigned K = N; K-- > 0;) {
    QualType LT = Infos[K].LogicalType;
    std::int64_t TileSize = Sizes->getSize(K);
    std::vector<VarDecl *> Decls{FloorIVs[K]};
    auto Stored = Ctx.allocateCopy(Decls);
    Stmt *Init = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1));
    Expr *Cond =
        buildBinOp(BinaryOperatorKind::LT, buildRValueRef(FloorIVs[K]),
                   buildNumIterationsExpr(Infos[K]));
    Expr *Inc = buildBinOp(
        BinaryOperatorKind::AddAssign, buildDeclRef(FloorIVs[K]),
        buildIntLiteral(static_cast<std::uint64_t>(TileSize), LT));
    Inner = Ctx.create<ForStmt>(Infos[K].Loop->getSourceRange(), Init, Cond,
                                Inc, Inner);
  }

  return Inner;
}

Stmt *Sema::buildReverseTransformation(OMPReverseDirective *Dir,
                                       const OMPLoopInfo &Info) {
  (void)Dir;
  QualType LT = Info.LogicalType;
  std::string BaseName(Info.IterVar->getName());

  // One loop over the logical iteration space:
  //   for (LT reversed.iv.NAME = 0; reversed.iv < N; ++reversed.iv)
  VarDecl *RevIV = buildInternalVar(
      Ctx.internString("reversed.iv." + BaseName), LT,
      buildIntLiteral(0, LT));
  std::vector<VarDecl *> Decls{RevIV};
  auto Stored = Ctx.allocateCopy(Decls);
  Stmt *Init = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(Stored.data(), 1));
  Expr *Cond = buildBinOp(BinaryOperatorKind::LT, buildRValueRef(RevIV),
                          buildNumIterationsExpr(Info));
  Expr *Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                           buildDeclRef(RevIV));

  // Body: materialize the user variable from the *mirrored* logical
  // iteration (N-1) - reversed.iv, then the cloned original body.
  Expr *Mirrored = buildBinOp(
      BinaryOperatorKind::Sub,
      buildBinOp(BinaryOperatorKind::Sub, buildNumIterationsExpr(Info),
                 buildIntLiteral(1, LT)),
      buildRValueRef(RevIV));
  VarDecl *UserIV = Ctx.create<VarDecl>(
      Info.IterVar->getLocation(), Info.IterVar->getName(), Info.IVType,
      buildCounterValue(*this, Info, Mirrored));
  std::vector<VarDecl *> UserDecls{UserIV};
  auto UserStored = Ctx.allocateCopy(UserDecls);
  Stmt *UserInit = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(UserStored.data(), 1));

  TreeTransform BodyClone(Ctx);
  BodyClone.addDeclSubstitution(Info.IterVar, UserIV);
  Stmt *ClonedBody = BodyClone.transformStmt(Info.Loop->getBody());

  std::vector<Stmt *> BodyStmts{UserInit, ClonedBody};
  auto BodyStored = Ctx.allocateCopy(BodyStmts);
  Stmt *Body = Ctx.create<CompoundStmt>(
      Info.Loop->getBody()->getSourceRange(),
      std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));

  return Ctx.create<ForStmt>(Info.Loop->getSourceRange(), Init, Cond, Inc,
                             Body);
}

Stmt *Sema::buildInterchangeTransformation(
    OMPInterchangeDirective *Dir, const std::vector<OMPLoopInfo> &Infos,
    std::span<const unsigned> Perm) {
  (void)Dir;
  unsigned N = static_cast<unsigned>(Infos.size());

  // Position-indexed internal IVs: position P iterates the logical space
  // of original level Perm[P].
  std::vector<VarDecl *> PosIVs(N);
  std::vector<unsigned> PosOfLevel(N);
  for (unsigned P = 0; P < N; ++P) {
    unsigned L = Perm[P];
    PosOfLevel[L] = P;
    PosIVs[P] = buildInternalVar(
        Ctx.internString(".interchange." + std::to_string(P) + ".iv." +
                         std::string(Infos[L].IterVar->getName())),
        Infos[L].LogicalType, buildIntLiteral(0, Infos[L].LogicalType));
  }

  // Innermost body: materialize the user variables (in original level
  // order) from their position's counter, then the cloned original body.
  TreeTransform BodyClone(Ctx);
  std::vector<Stmt *> BodyStmts;
  for (unsigned K = 0; K < N; ++K) {
    VarDecl *UserIV = Ctx.create<VarDecl>(
        Infos[K].IterVar->getLocation(), Infos[K].IterVar->getName(),
        Infos[K].IVType,
        buildCounterValue(*this, Infos[K],
                          buildRValueRef(PosIVs[PosOfLevel[K]])));
    BodyClone.addDeclSubstitution(Infos[K].IterVar, UserIV);
    std::vector<VarDecl *> Decls{UserIV};
    auto Stored = Ctx.allocateCopy(Decls);
    BodyStmts.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1)));
  }
  BodyStmts.push_back(BodyClone.transformStmt(Infos[N - 1].Loop->getBody()));
  auto BodyStored = Ctx.allocateCopy(BodyStmts);
  Stmt *Inner = Ctx.create<CompoundStmt>(
      Infos[N - 1].Loop->getBody()->getSourceRange(),
      std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));

  // Loops, innermost position first.
  for (unsigned P = N; P-- > 0;) {
    unsigned L = Perm[P];
    std::vector<VarDecl *> Decls{PosIVs[P]};
    auto Stored = Ctx.allocateCopy(Decls);
    Stmt *Init = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1));
    Expr *Cond = buildBinOp(BinaryOperatorKind::LT, buildRValueRef(PosIVs[P]),
                            buildNumIterationsExpr(Infos[L]));
    Expr *Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                             buildDeclRef(PosIVs[P]));
    Inner = Ctx.create<ForStmt>(Infos[L].Loop->getSourceRange(), Init, Cond,
                                Inc, Inner);
  }
  return Inner;
}

void Sema::buildLoopDirectiveHelpers(OMPLoopDirective *Dir,
                                     const std::vector<OMPLoopInfo> &Infos,
                                     Stmt *ExtraPreInits) {
  unsigned N = static_cast<unsigned>(Infos.size());

  // The logical iteration space of the (possibly collapsed) nest uses the
  // widest unsigned type: collapse products can exceed 32 bits, and the
  // runtime's loop bookkeeping ABI (__kmpc_for_static_init et al.) works
  // on 64-bit logical bounds.
  QualType LT = Ctx.getULongType();

  OMPLoopHelperExprs H;

  // PreInits: capture each loop's trip count once ('.capture_expr.', the
  // internal naming the paper quotes in its diagnostics discussion).
  std::vector<Stmt *> PreInitStmts;
  if (ExtraPreInits)
    PreInitStmts.push_back(ExtraPreInits);
  std::vector<VarDecl *> TripCountVars(N);
  std::vector<OMPLoopHelperExprs::LoopData> LoopData(N);
  for (unsigned K = 0; K < N; ++K) {
    Expr *NumIterK =
        convertTo(buildNumIterationsExpr(Infos[K]), LT, SourceLocation());
    TripCountVars[K] = buildInternalVar(
        Ctx.internString(".capture_expr.n" + std::to_string(K)), LT,
        NumIterK);
    std::vector<VarDecl *> Decls{TripCountVars[K]};
    auto Stored = Ctx.allocateCopy(Decls);
    PreInitStmts.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(Stored.data(), 1)));
  }
  auto PreStored = Ctx.allocateCopy(PreInitStmts);
  H.PreInits = Ctx.create<CompoundStmt>(
      SourceRange(),
      std::span<Stmt *const>(PreStored.data(), PreStored.size()));

  // Whole-nest iteration count: the product of the member counts.
  auto BuildNumIterations = [&]() {
    Expr *Total = buildRValueRef(TripCountVars[0]);
    for (unsigned K = 1; K < N; ++K)
      Total = buildBinOp(BinaryOperatorKind::Mul, Total,
                         buildRValueRef(TripCountVars[K]));
    return Total;
  };
  H.NumIterations = BuildNumIterations();
  H.LastIteration = buildBinOp(BinaryOperatorKind::Sub, BuildNumIterations(),
                               buildIntLiteral(1, LT));
  H.PreCond = buildBinOp(BinaryOperatorKind::GT, BuildNumIterations(),
                         buildIntLiteral(0, LT));

  // Normalized loop control variables.
  H.IterationVar =
      buildInternalVar(Ctx.internString(".omp.iv"), LT, nullptr);
  H.IterationVarRef = buildRValueRef(H.IterationVar);
  H.LowerBoundVar = buildInternalVar(Ctx.internString(".omp.lb"), LT,
                                     buildIntLiteral(0, LT));
  H.UpperBoundVar =
      buildInternalVar(Ctx.internString(".omp.ub"), LT,
                       buildBinOp(BinaryOperatorKind::Sub,
                                  BuildNumIterations(),
                                  buildIntLiteral(1, LT)));
  H.StrideVar = buildInternalVar(Ctx.internString(".omp.stride"), LT,
                                 buildIntLiteral(1, LT));
  H.IsLastIterVar =
      buildInternalVar(Ctx.internString(".omp.is_last"), Ctx.getIntType(),
                       buildIntLiteral(0, Ctx.getIntType()));
  H.LowerBoundRef = buildRValueRef(H.LowerBoundVar);
  H.UpperBoundRef = buildRValueRef(H.UpperBoundVar);
  H.StrideRef = buildRValueRef(H.StrideVar);
  H.IsLastIterRef = buildRValueRef(H.IsLastIterVar);

  // iv = lb; iv <= ub; ++iv
  H.Init = buildBinOp(BinaryOperatorKind::Assign,
                      buildDeclRef(H.IterationVar),
                      buildRValueRef(H.LowerBoundVar));
  H.Cond = buildBinOp(BinaryOperatorKind::LE, buildRValueRef(H.IterationVar),
                      buildRValueRef(H.UpperBoundVar));
  H.Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                       buildDeclRef(H.IterationVar));

  // ub = min(ub, last-iteration): after the runtime assigned a chunk, clamp
  // to the global bound.
  H.EnsureUpperBound = buildBinOp(
      BinaryOperatorKind::Assign, buildDeclRef(H.UpperBoundVar),
      ActOnConditionalOp(
          SourceLocation(),
          buildBinOp(BinaryOperatorKind::GT,
                     buildRValueRef(H.UpperBoundVar),
                     buildBinOp(BinaryOperatorKind::Sub,
                                BuildNumIterations(),
                                buildIntLiteral(1, LT))),
          buildBinOp(BinaryOperatorKind::Sub, BuildNumIterations(),
                     buildIntLiteral(1, LT)),
          buildRValueRef(H.UpperBoundVar)));

  // lb += stride; ub += stride (chunked static schedules).
  H.NextLowerBound =
      buildBinOp(BinaryOperatorKind::AddAssign, buildDeclRef(H.LowerBoundVar),
                 buildRValueRef(H.StrideVar));
  H.NextUpperBound =
      buildBinOp(BinaryOperatorKind::AddAssign, buildDeclRef(H.UpperBoundVar),
                 buildRValueRef(H.StrideVar));

  // Per-loop: de-normalization "i_k = lb_k + ((iv / prod(n_{k+1..})) % n_k)
  // * step_k".
  for (unsigned K = 0; K < N; ++K) {
    OMPLoopHelperExprs::LoopData &L = LoopData[K];
    L.CounterVar = Infos[K].IterVar;
    L.CounterRef = buildDeclRef(Infos[K].IterVar);
    L.CounterInit = defaultFunctionArrayLvalueConversion(
        cloneExpr(Ctx, Infos[K].LowerBound));
    L.CounterStep = defaultFunctionArrayLvalueConversion(
        cloneExpr(Ctx, Infos[K].Step));
    L.NumIterationsExpr = buildRValueRef(TripCountVars[K]);

    Expr *Scaled = buildRValueRef(H.IterationVar);
    for (unsigned J = K + 1; J < N; ++J)
      Scaled = buildBinOp(BinaryOperatorKind::Div, Scaled,
                          buildRValueRef(TripCountVars[J]));
    if (K > 0)
      Scaled = buildBinOp(BinaryOperatorKind::Rem, Scaled,
                          buildRValueRef(TripCountVars[K]));
    L.CounterUpdate = buildCounterUpdate(Infos[K], Scaled);
  }
  auto LoopStored = Ctx.allocateCopy(LoopData);
  H.Loops = std::span<OMPLoopHelperExprs::LoopData>(LoopStored.data(),
                                                    LoopStored.size());
  H.Body = Infos[N - 1].Loop->getBody();

  Dir->setLoopHelpers(H);
}

// ===------------------------------------------------------------------=== //
// Section 3: OMPCanonicalLoop construction
// ===------------------------------------------------------------------=== //

OMPCanonicalLoop *Sema::buildOMPCanonicalLoop(const OMPLoopInfo &Info) {
  QualType LT = Info.LogicalType;

  auto MakeCaptured = [&](Stmt *Body,
                          std::vector<ImplicitParamDecl *> Params)
      -> CapturedStmt * {
    auto StoredParams = Ctx.allocateCopy(Params);
    auto *CD = Ctx.create<CapturedDecl>(
        Body->getBeginLoc(), Body,
        std::span<ImplicitParamDecl *const>(StoredParams.data(),
                                            StoredParams.size()));
    // Everything referenced from outside is captured by reference; the
    // by-value __begin capture of the paper is only needed for C++
    // iterators whose value mutates, which MiniC loop bounds cannot.
    std::vector<VarDecl *> Caps = computeCaptures(Body);
    std::vector<CapturedStmt::Capture> Captures;
    for (VarDecl *V : Caps) {
      bool IsParam = false;
      for (ImplicitParamDecl *P : Params)
        if (P == V)
          IsParam = true;
      if (!IsParam)
        Captures.push_back({V, /*ByRef=*/true});
    }
    auto StoredCaps = Ctx.allocateCopy(Captures);
    return Ctx.create<CapturedStmt>(
        Body->getSourceRange(), CD,
        std::span<const CapturedStmt::Capture>(StoredCaps.data(),
                                               StoredCaps.size()));
  };

  // Distance function: "[&](LogicalTy &Result) { Result = <trip count>; }".
  // MiniC has no references, so Result is pointer-typed and assigned
  // through a dereference.
  auto *DistResult = Ctx.create<ImplicitParamDecl>(
      SourceLocation(), Ctx.internString("Result"),
      Ctx.getPointerType(LT));
  Expr *DistAssign = buildBinOp(
      BinaryOperatorKind::Assign,
      ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::Deref,
                   buildRValueRef(DistResult)),
      buildNumIterationsExpr(Info));
  CapturedStmt *DistanceFunc = MakeCaptured(DistAssign, {DistResult});

  // Loop-variable function:
  // "[&](T &Result, LogicalTy Logical) { Result = lb + Logical * step; }".
  auto *LVResult = Ctx.create<ImplicitParamDecl>(
      SourceLocation(), Ctx.internString("Result"),
      Ctx.getPointerType(Info.IVType.withoutConst()));
  auto *LVLogical = Ctx.create<ImplicitParamDecl>(
      SourceLocation(), Ctx.internString("Logical"), LT);
  Expr *LVAssign = buildBinOp(
      BinaryOperatorKind::Assign,
      ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::Deref,
                   buildRValueRef(LVResult)),
      buildCounterValue(*this, Info, buildRValueRef(LVLogical)));
  CapturedStmt *LoopVarFunc = MakeCaptured(LVAssign, {LVResult, LVLogical});

  return Ctx.create<OMPCanonicalLoop>(Info.Loop, DistanceFunc, LoopVarFunc,
                                      buildDeclRef(Info.IterVar));
}

// ===------------------------------------------------------------------=== //
// Directive construction
// ===------------------------------------------------------------------=== //

namespace {

/// Replaces the (unique) occurrence of \p Target within \p S, rebuilding
/// enclosing CompoundStmts as needed. Used to wrap inner loops of a nest in
/// OMPCanonicalLoop nodes.
Stmt *replaceStmt(ASTContext &Ctx, Stmt *S, Stmt *Target, Stmt *Replacement) {
  if (S == Target)
    return Replacement;
  if (auto *CS = stmt_dyn_cast<CompoundStmt>(S)) {
    std::vector<Stmt *> NewBody;
    bool Changed = false;
    for (Stmt *Child : CS->body()) {
      Stmt *NewChild = replaceStmt(Ctx, Child, Target, Replacement);
      Changed |= NewChild != Child;
      NewBody.push_back(NewChild);
    }
    if (!Changed)
      return S;
    auto Stored = Ctx.allocateCopy(NewBody);
    return Ctx.create<CompoundStmt>(
        CS->getSourceRange(),
        std::span<Stmt *const>(Stored.data(), Stored.size()));
  }
  return S;
}

} // namespace

Stmt *Sema::buildLoopDirective(OpenMPDirectiveKind Kind,
                               std::vector<OMPClause *> Clauses, Stmt *AStmt,
                               SourceRange R) {
  if (!AStmt)
    return nullptr;
  unsigned NumLoops = 1;
  for (const OMPClause *C : Clauses)
    if (const auto *CC = clause_dyn_cast<OMPCollapseClause>(C))
      NumLoops = CC->getCollapseCount();

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, Kind, NumLoops, Infos, TransformPreInits))
    return nullptr;

  Stmt *Assoc = AStmt;
  bool ConsumesIRBuilderTransform =
      Opts.OpenMPEnableIRBuilder && Infos.size() < NumLoops;

  if (Opts.OpenMPEnableIRBuilder && !ConsumesIRBuilderTransform) {
    // Wrap every member loop of the nest in an OMPCanonicalLoop,
    // innermost first (outer loops are rebuilt so their bodies point at
    // the wrapped inner loops).
    Stmt *Wrapped = nullptr;
    for (unsigned K = static_cast<unsigned>(Infos.size()); K-- > 0;) {
      ForStmt *Loop = Infos[K].Loop;
      Stmt *NewLoop = Loop;
      if (Wrapped) {
        Stmt *NewBody =
            replaceStmt(Ctx, Loop->getBody(), Infos[K + 1].Loop, Wrapped);
        NewLoop = Ctx.create<ForStmt>(Loop->getSourceRange(),
                                      Loop->getInit(), Loop->getCond(),
                                      Loop->getInc(), NewBody);
      }
      OMPLoopInfo WrapInfo = Infos[K];
      WrapInfo.Loop = stmt_cast<ForStmt>(NewLoop);
      Wrapped = buildOMPCanonicalLoop(WrapInfo);
    }
    Assoc = Wrapped;
  }

  if (isOpenMPParallelDirective(Kind))
    Assoc = buildCaptureForOutlining(Assoc, {});

  auto Stored = Ctx.allocateCopy(Clauses);
  std::span<OMPClause *const> ClauseSpan(Stored.data(), Stored.size());

  OMPLoopDirective *Dir = nullptr;
  switch (Kind) {
  case OpenMPDirectiveKind::For:
    Dir = Ctx.create<OMPForDirective>(R, ClauseSpan, Assoc, NumLoops);
    break;
  case OpenMPDirectiveKind::ParallelFor:
    Dir = Ctx.create<OMPParallelForDirective>(R, ClauseSpan, Assoc, NumLoops);
    break;
  case OpenMPDirectiveKind::Simd:
    Dir = Ctx.create<OMPSimdDirective>(R, ClauseSpan, Assoc, NumLoops);
    break;
  case OpenMPDirectiveKind::ForSimd:
    Dir = Ctx.create<OMPForSimdDirective>(R, ClauseSpan, Assoc, NumLoops);
    break;
  default:
    return nullptr;
  }

  if (!Opts.OpenMPEnableIRBuilder) {
    Stmt *ExtraPreInits = nullptr;
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      ExtraPreInits = Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size()));
    }
    buildLoopDirectiveHelpers(Dir, Infos, ExtraPreInits);
  }
  return Dir;
}

Stmt *Sema::buildTileDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                               SourceRange R) {
  if (!AStmt)
    return nullptr;
  const OMPSizesClause *Sizes = nullptr;
  for (const OMPClause *C : Clauses)
    if (const auto *SC = clause_dyn_cast<OMPSizesClause>(C))
      Sizes = SC;
  if (!Sizes) {
    Diags.report(R.getBegin(), diag::err_omp_tile_requires_sizes);
    return nullptr;
  }
  unsigned NumLoops = Sizes->getNumSizes();

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, OpenMPDirectiveKind::Tile, NumLoops, Infos,
                       TransformPreInits))
    return nullptr;

  Stmt *Assoc = AStmt;
  bool ConsumesIRBuilderTransform =
      Opts.OpenMPEnableIRBuilder && Infos.size() < NumLoops;
  if (Opts.OpenMPEnableIRBuilder && !ConsumesIRBuilderTransform) {
    // Tile in IRBuilder mode supports a perfect nest of literal loops;
    // wrap each member loop.
    Stmt *Wrapped = nullptr;
    for (unsigned K = static_cast<unsigned>(Infos.size()); K-- > 0;) {
      ForStmt *Loop = Infos[K].Loop;
      Stmt *NewLoop = Loop;
      if (Wrapped) {
        Stmt *NewBody =
            replaceStmt(Ctx, Loop->getBody(), Infos[K + 1].Loop, Wrapped);
        NewLoop = Ctx.create<ForStmt>(Loop->getSourceRange(),
                                      Loop->getInit(), Loop->getCond(),
                                      Loop->getInc(), NewBody);
      }
      OMPLoopInfo WrapInfo = Infos[K];
      WrapInfo.Loop = stmt_cast<ForStmt>(NewLoop);
      Wrapped = buildOMPCanonicalLoop(WrapInfo);
    }
    Assoc = Wrapped;
  }

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPTileDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc,
      NumLoops);

  if (!Opts.OpenMPEnableIRBuilder) {
    Dir->setTransformedStmt(buildTileTransformation(Dir, Infos));
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      Dir->setPreInits(Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size())));
    }
  }
  return Dir;
}

Stmt *Sema::buildUnrollDirective(std::vector<OMPClause *> Clauses,
                                 Stmt *AStmt, SourceRange R) {
  if (!AStmt)
    return nullptr;

  const OMPFullClause *Full = nullptr;
  const OMPPartialClause *Partial = nullptr;
  for (const OMPClause *C : Clauses) {
    if (const auto *FC = clause_dyn_cast<OMPFullClause>(C))
      Full = FC;
    if (const auto *PC = clause_dyn_cast<OMPPartialClause>(C))
      Partial = PC;
  }
  if (Full && Partial) {
    Diags.report(R.getBegin(), diag::err_omp_unroll_full_with_partial);
    return nullptr;
  }

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, OpenMPDirectiveKind::Unroll, 1, Infos,
                       TransformPreInits))
    return nullptr;

  bool ConsumesIRBuilderTransform =
      Opts.OpenMPEnableIRBuilder && Infos.empty();

  if (Full && !ConsumesIRBuilderTransform &&
      !Infos.front().ConstantTripCount) {
    Diags.report(Infos.front().Loop->getBeginLoc(),
                 diag::err_omp_unroll_full_variable_trip_count);
    return nullptr;
  }

  Stmt *Assoc = AStmt;
  if (Opts.OpenMPEnableIRBuilder && !ConsumesIRBuilderTransform)
    Assoc = buildOMPCanonicalLoop(Infos.front());

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPUnrollDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc);

  if (!Opts.OpenMPEnableIRBuilder) {
    // A transformed AST is only necessary if the replacement can be
    // associated with another directive, which OpenMP only permits when
    // the partial clause is present. Full/heuristic unrolling is deferred
    // to the mid-end via loop metadata instead (Section 2.2).
    if (Partial) {
      unsigned Factor = Partial->getFactor()
                            ? static_cast<unsigned>(
                                  Partial->getFactor()->getResult())
                            : Opts.HeuristicUnrollFactor;
      Dir->setTransformedStmt(
          buildUnrollPartialTransformation(Dir, Infos.front(), Factor));
    }
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      Dir->setPreInits(Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size())));
    }
  }
  return Dir;
}

bool Sema::checkTransformDependences(Stmt *AStmt, OpenMPDirectiveKind Kind,
                                     unsigned NumLoops,
                                     std::span<const unsigned> Perm,
                                     SourceRange R) {
  // The oracle works on the literal (syntactic) nest; a nested
  // transformation directive or anything else it cannot model makes the
  // transform unprovable and therefore refused — these directives reorder
  // iterations, so "cannot prove" must not degrade to "assume legal".
  using analysis::DependenceInfo;
  using analysis::Legality;
  DependenceInfo Info = DependenceInfo::analyze(AStmt, NumLoops);
  Legality L = Perm.empty() ? Info.isLegalReverse(0)
                            : Info.isLegalInterchange(Perm);
  if (L)
    return true;
  std::string Name(getOpenMPDirectiveName(Kind));
  if (L.Blocking) {
    Diags.report(R.getBegin(), diag::err_omp_transform_illegal_dep)
        << Name << L.Reason;
    if (L.Blocking->SrcLoc.isValid())
      Diags.report(L.Blocking->SrcLoc, diag::note_omp_dependence_source)
          << (L.Blocking->Base ? std::string(L.Blocking->Base->getName())
                               : std::string("<unknown>"));
  } else {
    Diags.report(R.getBegin(), diag::err_omp_transform_not_analyzable)
        << Name << L.Reason;
  }
  return false;
}

Stmt *Sema::buildReverseDirective(std::vector<OMPClause *> Clauses,
                                  Stmt *AStmt, SourceRange R) {
  if (!AStmt)
    return nullptr;

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, OpenMPDirectiveKind::Reverse, 1, Infos,
                       TransformPreInits))
    return nullptr;

  if (!checkTransformDependences(AStmt, OpenMPDirectiveKind::Reverse, 1, {},
                                 R))
    return nullptr;

  bool ConsumesIRBuilderTransform =
      Opts.OpenMPEnableIRBuilder && Infos.empty();
  Stmt *Assoc = AStmt;
  if (Opts.OpenMPEnableIRBuilder && !ConsumesIRBuilderTransform)
    Assoc = buildOMPCanonicalLoop(Infos.front());

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPReverseDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc);

  if (!Opts.OpenMPEnableIRBuilder) {
    Dir->setTransformedStmt(buildReverseTransformation(Dir, Infos.front()));
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      Dir->setPreInits(Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size())));
    }
  }
  return Dir;
}

Stmt *Sema::buildTransformedForAnalysis(OMPLoopTransformationDirective *TD) {
  if (Stmt *T = TD->getTransformedStmt())
    return T;
  // IRBuilder mode leaves TransformedStmt null (the transformation is
  // composed on CanonicalLoopInfo handles in CodeGen). The dependence
  // oracle still needs a syntactic loop to reason about, so rebuild the
  // Section-2 shadow AST for analysis only; it is never emitted.
  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> Pre;
  switch (TD->getDirectiveKind()) {
  case OpenMPDirectiveKind::Tile: {
    auto *Dir = stmt_cast<OMPTileDirective>(TD);
    unsigned N = Dir->getLoopsNumber();
    if (!analyzeLoopNest(Dir->getAssociatedStmt(), OpenMPDirectiveKind::Tile,
                         N, Infos, Pre) ||
        Infos.size() < N)
      return nullptr;
    return buildTileTransformation(Dir, Infos);
  }
  case OpenMPDirectiveKind::Unroll: {
    auto *Dir = stmt_cast<OMPUnrollDirective>(TD);
    if (Dir->hasFullClause())
      return nullptr;
    if (!analyzeLoopNest(Dir->getAssociatedStmt(),
                         OpenMPDirectiveKind::Unroll, 1, Infos, Pre) ||
        Infos.empty())
      return nullptr;
    unsigned Factor = Opts.HeuristicUnrollFactor;
    if (const auto *PC = Dir->getSingleClause<OMPPartialClause>())
      if (PC->getFactor())
        Factor = static_cast<unsigned>(PC->getFactor()->getResult());
    return buildUnrollPartialTransformation(Dir, Infos.front(), Factor);
  }
  case OpenMPDirectiveKind::Reverse: {
    auto *Dir = stmt_cast<OMPReverseDirective>(TD);
    if (!analyzeLoopNest(Dir->getAssociatedStmt(),
                         OpenMPDirectiveKind::Reverse, 1, Infos, Pre) ||
        Infos.empty())
      return nullptr;
    return buildReverseTransformation(Dir, Infos.front());
  }
  case OpenMPDirectiveKind::Interchange: {
    auto *Dir = stmt_cast<OMPInterchangeDirective>(TD);
    std::vector<unsigned> Perm{1, 0};
    if (const auto *PC = Dir->getSingleClause<OMPPermutationClause>()) {
      Perm.clear();
      for (unsigned I = 0; I < PC->getNumArgs(); ++I)
        Perm.push_back(static_cast<unsigned>(PC->getArg(I) - 1));
    }
    unsigned N = static_cast<unsigned>(Perm.size());
    if (!analyzeLoopNest(Dir->getAssociatedStmt(),
                         OpenMPDirectiveKind::Interchange, N, Infos, Pre) ||
        Infos.size() < N)
      return nullptr;
    return buildInterchangeTransformation(Dir, Infos, Perm);
  }
  default:
    // fuse/distribute_loop compositions stay opaque to the oracle.
    return nullptr;
  }
}

Stmt *Sema::buildFuseDirective(std::vector<OMPClause *> Clauses, Stmt *AStmt,
                               SourceRange R) {
  if (!AStmt)
    return nullptr;
  auto *CS = stmt_dyn_cast<CompoundStmt>(AStmt);
  if (!CS || CS->size() < 2) {
    Diags.report(AStmt->getBeginLoc(), diag::err_omp_fuse_needs_loop_seq);
    return nullptr;
  }
  std::span<Stmt *const> Sibs = CS->body();
  unsigned NumSibs = static_cast<unsigned>(Sibs.size());

  unsigned First = 0, Count = NumSibs;
  for (const OMPClause *C : Clauses)
    if (const auto *LR = clause_dyn_cast<OMPLoopRangeClause>(C)) {
      First = static_cast<unsigned>(LR->getFirst() - 1);
      Count = static_cast<unsigned>(LR->getCount());
      if (First + Count > NumSibs) {
        Diags.report(LR->getBeginLoc(), diag::err_omp_looprange_out_of_range)
            << static_cast<unsigned>(LR->getFirst())
            << static_cast<unsigned>(LR->getCount()) << (First + Count)
            << NumSibs;
        return nullptr;
      }
    }

  // Canonical-loop analysis per fused sibling. In IRBuilder mode a sibling
  // that is itself a transformation directive yields no OMPLoopInfo; the
  // fusion is then composed on CanonicalLoopInfo handles in CodeGen.
  std::vector<std::optional<OMPLoopInfo>> PerSib(Count);
  std::vector<Stmt *> TransformPreInits;
  std::vector<Stmt *> AnalysisRoots;
  for (unsigned K = 0; K < Count; ++K) {
    Stmt *Sib = Sibs[First + K];
    std::vector<OMPLoopInfo> SibInfos;
    if (!analyzeLoopNest(Sib, OpenMPDirectiveKind::Fuse, 1, SibInfos,
                         TransformPreInits))
      return nullptr;
    if (!SibInfos.empty())
      PerSib[K] = SibInfos.front();

    // The oracle analyzes the literal loop, or for a sibling produced by a
    // preceding transformation its (possibly rebuilt) shadow AST — the
    // composition is judged post-transform instead of refused outright.
    Stmt *Root = Sib;
    Stmt *Inner = Sib;
    while (auto *W = stmt_dyn_cast<CompoundStmt>(Inner)) {
      if (W->size() != 1)
        break;
      Inner = W->body()[0];
    }
    if (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(Inner)) {
      Root = buildTransformedForAnalysis(TD);
      if (!Root) {
        Diags.report(R.getBegin(), diag::err_omp_transform_not_analyzable)
            << std::string("fuse")
            << ("the result of '#pragma omp " +
                std::string(
                    getOpenMPDirectiveName(TD->getDirectiveKind())) +
                "' cannot be modeled");
        return nullptr;
      }
    }
    AnalysisRoots.push_back(Root);
  }

  // Legality: every textually earlier member must be fusable with every
  // later one (fusion runs iteration t of each member in sibling order).
  {
    using analysis::DependenceInfo;
    using analysis::Legality;
    std::vector<DependenceInfo> DI;
    DI.reserve(AnalysisRoots.size());
    for (Stmt *Root : AnalysisRoots)
      DI.push_back(DependenceInfo::analyze(Root, 1));
    for (unsigned I = 0; I < DI.size(); ++I)
      for (unsigned J = I + 1; J < DI.size(); ++J) {
        Legality L = DependenceInfo::isLegalFuse(DI[I], DI[J]);
        if (L)
          continue;
        if (L.Blocking) {
          Diags.report(R.getBegin(), diag::err_omp_transform_illegal_dep)
              << std::string("fuse") << L.Reason;
          if (L.Blocking->SrcLoc.isValid())
            Diags.report(L.Blocking->SrcLoc,
                         diag::note_omp_dependence_source)
                << (L.Blocking->Base
                        ? std::string(L.Blocking->Base->getName())
                        : std::string("<unknown>"));
        } else {
          Diags.report(R.getBegin(), diag::err_omp_transform_not_analyzable)
              << std::string("fuse") << L.Reason;
        }
        return nullptr;
      }
  }

  Stmt *Assoc = AStmt;
  if (Opts.OpenMPEnableIRBuilder) {
    // Wrap each fused *literal* sibling in an OMPCanonicalLoop; siblings
    // that are transformation directives keep contributing their
    // CanonicalLoopInfo through recursive emission.
    std::vector<Stmt *> NewBody(Sibs.begin(), Sibs.end());
    for (unsigned K = 0; K < Count; ++K)
      if (PerSib[K])
        NewBody[First + K] = buildOMPCanonicalLoop(*PerSib[K]);
    auto BodyStored = Ctx.allocateCopy(NewBody);
    Assoc = Ctx.create<CompoundStmt>(
        CS->getSourceRange(),
        std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));
  }

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPFuseDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc,
      Count);

  if (!Opts.OpenMPEnableIRBuilder) {
    std::vector<OMPLoopInfo> FusedInfos;
    for (const auto &I : PerSib)
      FusedInfos.push_back(*I); // legacy mode always fills every slot
    Dir->setTransformedStmt(buildFuseTransformation(
        Dir, FusedInfos, Sibs, First, TransformPreInits));
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      Dir->setPreInits(Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size())));
    }
  }
  return Dir;
}

Stmt *Sema::buildFuseTransformation(OMPFuseDirective *Dir,
                                    const std::vector<OMPLoopInfo> &Infos,
                                    std::span<Stmt *const> Siblings,
                                    unsigned FirstIdx,
                                    std::vector<Stmt *> &PreInits) {
  (void)Dir;
  unsigned N = static_cast<unsigned>(Infos.size());
  QualType LT = Ctx.getULongType();

  // Whether every member has the same constant trip count — then the
  // per-member guards are provably always true and are omitted.
  bool AllEqualConst = true;
  std::optional<std::uint64_t> CommonTC;
  for (const OMPLoopInfo &I : Infos) {
    if (!I.ConstantTripCount) {
      AllEqualConst = false;
      break;
    }
    if (!CommonTC)
      CommonTC = *I.ConstantTripCount;
    else if (*CommonTC != *I.ConstantTripCount) {
      AllEqualConst = false;
      break;
    }
  }

  // Trip counts captured once in PreInits ('.capture_expr.' style) so the
  // fused bound and the guards agree, and the transformed statement stays
  // consumable by an enclosing directive.
  std::vector<VarDecl *> NVars(N);
  for (unsigned K = 0; K < N; ++K) {
    NVars[K] = buildInternalVar(
        Ctx.internString(".fuse.n" + std::to_string(K)), LT,
        convertTo(buildNumIterationsExpr(Infos[K]), LT, SourceLocation()));
    std::vector<VarDecl *> Decls{NVars[K]};
    auto DeclStored = Ctx.allocateCopy(Decls);
    PreInits.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(DeclStored.data(), 1)));
  }
  Expr *MaxInit = buildRValueRef(NVars[0]);
  for (unsigned K = 1; K < N; ++K) {
    Expr *Gt = buildBinOp(BinaryOperatorKind::GT, buildRValueRef(NVars[K]),
                          cloneExpr(Ctx, MaxInit));
    MaxInit = ActOnConditionalOp(SourceLocation(), Gt,
                                 buildRValueRef(NVars[K]), MaxInit);
  }
  VarDecl *MaxVar =
      buildInternalVar(Ctx.internString(".fuse.max"), LT, MaxInit);
  {
    std::vector<VarDecl *> Decls{MaxVar};
    auto DeclStored = Ctx.allocateCopy(Decls);
    PreInits.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(DeclStored.data(), 1)));
  }

  // One loop over the maximal logical iteration space:
  //   for (ULong fused.iv = 0; fused.iv < .fuse.max; ++fused.iv)
  VarDecl *FusedIV = buildInternalVar(Ctx.internString("fused.iv"), LT,
                                      buildIntLiteral(0, LT));
  std::vector<VarDecl *> IVDecls{FusedIV};
  auto IVStored = Ctx.allocateCopy(IVDecls);
  Stmt *Init = Ctx.create<DeclStmt>(
      SourceRange(), std::span<VarDecl *const>(IVStored.data(), 1));
  Expr *Cond = buildBinOp(BinaryOperatorKind::LT, buildRValueRef(FusedIV),
                          buildRValueRef(MaxVar));
  Expr *Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                           buildDeclRef(FusedIV));

  // Body: iteration t of every member in sibling order — materialize the
  // member's iteration variable, then its cloned body, guarded by
  // "fused.iv < n_k" when trip counts may differ.
  std::vector<Stmt *> BodyStmts;
  for (unsigned K = 0; K < N; ++K) {
    VarDecl *UserIV = Ctx.create<VarDecl>(
        Infos[K].IterVar->getLocation(), Infos[K].IterVar->getName(),
        Infos[K].IVType,
        buildCounterValue(*this, Infos[K], buildRValueRef(FusedIV)));
    std::vector<VarDecl *> UserDecls{UserIV};
    auto UserStored = Ctx.allocateCopy(UserDecls);
    Stmt *UserInit = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(UserStored.data(), 1));

    TreeTransform Clone(Ctx);
    Clone.addDeclSubstitution(Infos[K].IterVar, UserIV);
    Stmt *ClonedBody = Clone.transformStmt(Infos[K].Loop->getBody());

    std::vector<Stmt *> Part{UserInit, ClonedBody};
    auto PartStored = Ctx.allocateCopy(Part);
    Stmt *Member = Ctx.create<CompoundStmt>(
        Infos[K].Loop->getBody()->getSourceRange(),
        std::span<Stmt *const>(PartStored.data(), PartStored.size()));
    if (!AllEqualConst) {
      Expr *Guard =
          buildBinOp(BinaryOperatorKind::LT, buildRValueRef(FusedIV),
                     buildRValueRef(NVars[K]));
      Member = ActOnIfStmt(SourceRange(), Guard, Member, nullptr);
    }
    BodyStmts.push_back(Member);
  }
  auto BodyStored = Ctx.allocateCopy(BodyStmts);
  SourceRange FusedRange(Siblings[FirstIdx]->getBeginLoc(),
                         Siblings[FirstIdx + N - 1]->getEndLoc());
  Stmt *Body = Ctx.create<CompoundStmt>(
      FusedRange,
      std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));
  Stmt *FusedLoop = Ctx.create<ForStmt>(FusedRange, Init, Cond, Inc, Body);

  // Siblings outside the looprange are re-emitted around the fused loop.
  std::vector<Stmt *> Out;
  for (unsigned K = 0; K < FirstIdx; ++K)
    Out.push_back(Siblings[K]);
  Out.push_back(FusedLoop);
  for (unsigned K = FirstIdx + N; K < Siblings.size(); ++K)
    Out.push_back(Siblings[K]);
  auto OutStored = Ctx.allocateCopy(Out);
  return Ctx.create<CompoundStmt>(
      FusedRange, std::span<Stmt *const>(OutStored.data(), OutStored.size()));
}

namespace {

/// Collects every variable declared anywhere within \p S.
void collectLocalDecls(const Stmt *S, std::set<const VarDecl *> &Out) {
  if (!S)
    return;
  if (const auto *DS = stmt_dyn_cast<DeclStmt>(S))
    for (VarDecl *D : DS->decls())
      Out.insert(D);
  for (const Stmt *Child : S->children())
    collectLocalDecls(Child, Out);
}

/// First reference within \p S to any variable in \p Vars; null if none.
const DeclRefExpr *findRefToAny(const Stmt *S,
                                const std::set<const VarDecl *> &Vars) {
  if (!S)
    return nullptr;
  if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
    if (const auto *VD = decl_dyn_cast<VarDecl>(DRE->getDecl()))
      if (Vars.count(VD))
        return DRE;
  for (const Stmt *Child : S->children())
    if (const DeclRefExpr *Found = findRefToAny(Child, Vars))
      return Found;
  return nullptr;
}

} // namespace

Stmt *Sema::buildDistributeLoopDirective(std::vector<OMPClause *> Clauses,
                                         Stmt *AStmt, SourceRange R) {
  if (!AStmt)
    return nullptr;

  // The multi-statement body of the *original* loop defines the statement
  // groups; applying distribution to another transformation's generated
  // loop would split synthesized internals, so it is refused in both
  // pipelines.
  Stmt *Unwrapped = AStmt;
  while (auto *W = stmt_dyn_cast<CompoundStmt>(Unwrapped)) {
    if (W->size() != 1)
      break;
    Unwrapped = W->body()[0];
  }
  if (stmt_dyn_cast<OMPLoopTransformationDirective>(Unwrapped)) {
    Diags.report(R.getBegin(), diag::err_omp_distribute_over_transform);
    return nullptr;
  }

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, OpenMPDirectiveKind::DistributeLoop, 1, Infos,
                       TransformPreInits))
    return nullptr;
  const OMPLoopInfo &Info = Infos.front();

  auto *Body = stmt_dyn_cast<CompoundStmt>(Info.Loop->getBody());
  if (!Body || Body->size() < 2) {
    Diags.report(Info.Loop->getBody()->getBeginLoc(),
                 diag::err_omp_distribute_no_groups);
    return nullptr;
  }

  // A variable declared in one statement group and referenced from another
  // cannot survive the split into per-group loops.
  {
    std::vector<std::set<const VarDecl *>> GroupDecls;
    for (const Stmt *G : Body->body()) {
      GroupDecls.emplace_back();
      collectLocalDecls(G, GroupDecls.back());
    }
    unsigned GIdx = 0;
    for (const Stmt *G : Body->body()) {
      for (unsigned H = 0; H < GroupDecls.size(); ++H) {
        if (H == GIdx)
          continue;
        if (const DeclRefExpr *Ref = findRefToAny(G, GroupDecls[H])) {
          Diags.report(Ref->getBeginLoc(),
                       diag::err_omp_distribute_local_across_groups)
              << std::string(Ref->getDecl()->getName());
          return nullptr;
        }
      }
      ++GIdx;
    }
  }

  // Legality: refused when a loop-carried dependence flows from a later
  // statement group back to an earlier one.
  {
    using analysis::DependenceInfo;
    using analysis::Legality;
    DependenceInfo DI = DependenceInfo::analyze(AStmt, 1);
    Legality L = DI.isLegalDistribute();
    if (!L) {
      std::string Name(
          getOpenMPDirectiveName(OpenMPDirectiveKind::DistributeLoop));
      if (L.Blocking) {
        Diags.report(R.getBegin(), diag::err_omp_transform_illegal_dep)
            << Name << L.Reason;
        if (L.Blocking->SrcLoc.isValid())
          Diags.report(L.Blocking->SrcLoc, diag::note_omp_dependence_source)
              << (L.Blocking->Base
                      ? std::string(L.Blocking->Base->getName())
                      : std::string("<unknown>"));
      } else {
        Diags.report(R.getBegin(), diag::err_omp_transform_not_analyzable)
            << Name << L.Reason;
      }
      return nullptr;
    }
  }

  Stmt *Assoc = AStmt;
  if (Opts.OpenMPEnableIRBuilder)
    Assoc = buildOMPCanonicalLoop(Info);

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPDistributeLoopDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc);
  if (!Opts.OpenMPEnableIRBuilder)
    Dir->setTransformedStmt(buildDistributeTransformation(Dir, Info));
  return Dir;
}

Stmt *Sema::buildDistributeTransformation(OMPDistributeLoopDirective *Dir,
                                          const OMPLoopInfo &Info) {
  (void)Dir;
  QualType LT = Info.LogicalType;
  const auto *Body = stmt_cast<CompoundStmt>(Info.Loop->getBody());
  std::string BaseName(Info.IterVar->getName());

  // Shared trip count, evaluated once before the loop sequence.
  VarDecl *NVar =
      buildInternalVar(Ctx.internString(".distribute.n." + BaseName), LT,
                       buildNumIterationsExpr(Info));
  std::vector<Stmt *> Out;
  {
    std::vector<VarDecl *> Decls{NVar};
    auto DeclStored = Ctx.allocateCopy(Decls);
    Out.push_back(Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(DeclStored.data(), 1)));
  }

  // One loop per statement group, in source order, each over the full
  // logical iteration space.
  unsigned G = 0;
  for (Stmt *GroupStmt : Body->body()) {
    VarDecl *DistIV = buildInternalVar(
        Ctx.internString("distributed." + std::to_string(G) + ".iv." +
                         BaseName),
        LT, buildIntLiteral(0, LT));
    std::vector<VarDecl *> IVDecls{DistIV};
    auto IVStored = Ctx.allocateCopy(IVDecls);
    Stmt *Init = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(IVStored.data(), 1));
    Expr *Cond = buildBinOp(BinaryOperatorKind::LT, buildRValueRef(DistIV),
                            buildRValueRef(NVar));
    Expr *Inc = ActOnUnaryOp(SourceLocation(), UnaryOperatorKind::PreInc,
                             buildDeclRef(DistIV));

    VarDecl *UserIV = Ctx.create<VarDecl>(
        Info.IterVar->getLocation(), Info.IterVar->getName(), Info.IVType,
        buildCounterValue(*this, Info, buildRValueRef(DistIV)));
    std::vector<VarDecl *> UserDecls{UserIV};
    auto UserStored = Ctx.allocateCopy(UserDecls);
    Stmt *UserInit = Ctx.create<DeclStmt>(
        SourceRange(), std::span<VarDecl *const>(UserStored.data(), 1));

    TreeTransform Clone(Ctx);
    Clone.addDeclSubstitution(Info.IterVar, UserIV);
    Stmt *ClonedGroup = Clone.transformStmt(GroupStmt);

    std::vector<Stmt *> LoopBody{UserInit, ClonedGroup};
    auto BodyStored = Ctx.allocateCopy(LoopBody);
    Stmt *BodyCS = Ctx.create<CompoundStmt>(
        GroupStmt->getSourceRange(),
        std::span<Stmt *const>(BodyStored.data(), BodyStored.size()));
    Out.push_back(Ctx.create<ForStmt>(Info.Loop->getSourceRange(), Init,
                                      Cond, Inc, BodyCS));
    ++G;
  }
  auto OutStored = Ctx.allocateCopy(Out);
  return Ctx.create<CompoundStmt>(
      Info.Loop->getSourceRange(),
      std::span<Stmt *const>(OutStored.data(), OutStored.size()));
}

Stmt *Sema::buildInterchangeDirective(std::vector<OMPClause *> Clauses,
                                      Stmt *AStmt, SourceRange R) {
  if (!AStmt)
    return nullptr;

  // The permutation clause fixes the associated loop count; without it the
  // outermost two loops are swapped.
  const OMPPermutationClause *PermC = nullptr;
  for (const OMPClause *C : Clauses)
    if (const auto *PC = clause_dyn_cast<OMPPermutationClause>(C))
      PermC = PC;

  std::vector<unsigned> Perm;
  if (PermC) {
    unsigned N = PermC->getNumArgs();
    std::vector<bool> Used(N, false);
    for (unsigned I = 0; I < N; ++I) {
      std::int64_t V = PermC->getArg(I);
      if (V < 1 || V > N || Used[static_cast<unsigned>(V - 1)]) {
        Diags.report(PermC->getBeginLoc(), diag::err_omp_permutation_invalid)
            << N;
        return nullptr;
      }
      Used[static_cast<unsigned>(V - 1)] = true;
      Perm.push_back(static_cast<unsigned>(V - 1));
    }
  } else {
    Perm = {1, 0};
  }
  unsigned NumLoops = static_cast<unsigned>(Perm.size());

  std::vector<OMPLoopInfo> Infos;
  std::vector<Stmt *> TransformPreInits;
  if (!analyzeLoopNest(AStmt, OpenMPDirectiveKind::Interchange, NumLoops,
                       Infos, TransformPreInits))
    return nullptr;
  if (PermC && !Infos.empty() && Infos.size() != NumLoops) {
    Diags.report(PermC->getBeginLoc(), diag::err_omp_permutation_arity)
        << NumLoops << static_cast<unsigned>(Infos.size());
    return nullptr;
  }

  if (!checkTransformDependences(AStmt, OpenMPDirectiveKind::Interchange,
                                 NumLoops, Perm, R))
    return nullptr;

  bool ConsumesIRBuilderTransform =
      Opts.OpenMPEnableIRBuilder && Infos.size() < NumLoops;
  Stmt *Assoc = AStmt;
  if (Opts.OpenMPEnableIRBuilder && !ConsumesIRBuilderTransform) {
    Stmt *Wrapped = nullptr;
    for (unsigned K = static_cast<unsigned>(Infos.size()); K-- > 0;) {
      ForStmt *Loop = Infos[K].Loop;
      Stmt *NewLoop = Loop;
      if (Wrapped) {
        Stmt *NewBody =
            replaceStmt(Ctx, Loop->getBody(), Infos[K + 1].Loop, Wrapped);
        NewLoop = Ctx.create<ForStmt>(Loop->getSourceRange(),
                                      Loop->getInit(), Loop->getCond(),
                                      Loop->getInc(), NewBody);
      }
      OMPLoopInfo WrapInfo = Infos[K];
      WrapInfo.Loop = stmt_cast<ForStmt>(NewLoop);
      Wrapped = buildOMPCanonicalLoop(WrapInfo);
    }
    Assoc = Wrapped;
  }

  auto Stored = Ctx.allocateCopy(Clauses);
  auto *Dir = Ctx.create<OMPInterchangeDirective>(
      R, std::span<OMPClause *const>(Stored.data(), Stored.size()), Assoc,
      NumLoops);

  if (!Opts.OpenMPEnableIRBuilder) {
    Dir->setTransformedStmt(
        buildInterchangeTransformation(Dir, Infos, Perm));
    if (!TransformPreInits.empty()) {
      auto PreStored = Ctx.allocateCopy(TransformPreInits);
      Dir->setPreInits(Ctx.create<CompoundStmt>(
          SourceRange(),
          std::span<Stmt *const>(PreStored.data(), PreStored.size())));
    }
  }
  return Dir;
}

} // namespace mcc
