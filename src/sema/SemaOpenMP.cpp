//===--- SemaOpenMP.cpp - OpenMP directive & canonical loop analysis ------===//
//
// Implements clause validation, directive construction, and the OpenMP 5.1
// canonical-loop-form analysis (section 4.4.1 of the specification). The
// transformed-AST construction lives in SemaOpenMPTransform.cpp.
//
//===----------------------------------------------------------------------===//
#include "ast/RecursiveASTVisitor.h"
#include "sema/Sema.h"

#include <set>

namespace mcc {

namespace {

/// Collects all variables declared within a subtree.
class DeclCollector : public RecursiveASTVisitor<DeclCollector> {
public:
  std::set<const VarDecl *> Declared;

  bool visitStmt(Stmt *S) {
    if (auto *DS = stmt_dyn_cast<DeclStmt>(S))
      for (VarDecl *D : DS->decls())
        Declared.insert(D);
    if (auto *CS = stmt_dyn_cast<CapturedStmt>(S))
      for (ImplicitParamDecl *P : CS->getCapturedDecl()->parameters())
        Declared.insert(P);
    // Loop-transformation shadow trees also declare variables.
    return true;
  }
};

/// Collects all variables referenced within a subtree.
class RefCollector : public RecursiveASTVisitor<RefCollector> {
public:
  std::vector<const VarDecl *> Referenced;
  std::set<const VarDecl *> Seen;

  bool visitStmt(Stmt *S) {
    if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
      if (auto *VD = decl_dyn_cast<VarDecl>(DRE->getDecl()))
        if (Seen.insert(VD).second)
          Referenced.push_back(VD);
    return true;
  }
};

/// Checks whether \p Var is written (assigned, incremented, decremented or
/// address-taken) anywhere in the subtree.
bool isVarModifiedIn(const Stmt *S, const VarDecl *Var) {
  if (!S)
    return false;
  if (const auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
    if (BO->isAssignmentOp()) {
      const Expr *LHS = BO->getLHS()->ignoreParenImpCasts();
      if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(LHS))
        if (DRE->getDecl() == Var)
          return true;
    }
  }
  if (const auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
    if (UO->isIncrementDecrementOp() ||
        UO->getOpcode() == UnaryOperatorKind::AddrOf) {
      const Expr *Sub = UO->getSubExpr()->ignoreParenImpCasts();
      if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(Sub))
        if (DRE->getDecl() == Var)
          return true;
    }
  }
  for (const Stmt *Child : S->children())
    if (isVarModifiedIn(Child, Var))
      return true;
  return false;
}

/// True if the subtree contains a break statement that would leave the
/// current loop (i.e. not nested inside an inner loop).
bool containsLoopBreak(const Stmt *S) {
  if (!S)
    return false;
  if (stmt_dyn_cast<BreakStmt>(S))
    return true;
  // A break inside a nested loop terminates that loop, which is fine.
  if (stmt_dyn_cast<ForStmt>(S) || stmt_dyn_cast<WhileStmt>(S) ||
      stmt_dyn_cast<DoStmt>(S))
    return false;
  for (const Stmt *Child : S->children())
    if (containsLoopBreak(Child))
      return true;
  return false;
}

/// True if \p E references any of the variables in \p Vars.
bool referencesAnyVar(const Expr *E, const std::set<const VarDecl *> &Vars) {
  if (!E)
    return false;
  if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(E))
    if (Vars.count(decl_dyn_cast<VarDecl>(DRE->getDecl())))
      return true;
  for (const Stmt *Child : E->children())
    if (const auto *CE = stmt_dyn_cast<Expr>(Child))
      if (referencesAnyVar(CE, Vars))
        return true;
  return false;
}

/// True if the expression contains a function call (used to enforce
/// loop-invariant, re-evaluable bounds).
bool containsCall(const Expr *E) {
  if (!E)
    return false;
  if (stmt_dyn_cast<CallExpr>(E))
    return true;
  for (const Stmt *Child : E->children())
    if (const auto *CE = stmt_dyn_cast<Expr>(Child))
      if (containsCall(CE))
        return true;
  return false;
}

} // namespace

// ===------------------------------------------------------------------=== //
// Clause actions
// ===------------------------------------------------------------------=== //

OMPClause *Sema::ActOnOpenMPNumThreadsClause(SourceRange R,
                                             Expr *NumThreads) {
  if (!NumThreads)
    return nullptr;
  NumThreads = defaultFunctionArrayLvalueConversion(NumThreads);
  if (auto V = evaluateIntegerWithConstVars(NumThreads); V && *V <= 0) {
    Diags.report(R.getBegin(), diag::err_omp_num_threads_requires_positive);
    return nullptr;
  }
  return Ctx.create<OMPNumThreadsClause>(R, NumThreads);
}

OMPClause *Sema::ActOnOpenMPScheduleClause(SourceRange R,
                                           OpenMPScheduleKind Kind,
                                           Expr *Chunk) {
  if (Chunk)
    Chunk = defaultFunctionArrayLvalueConversion(Chunk);
  return Ctx.create<OMPScheduleClause>(R, Kind, Chunk);
}

OMPClause *Sema::ActOnOpenMPCollapseClause(SourceRange R, Expr *Num) {
  if (!Num)
    return nullptr;
  auto V = evaluateIntegerWithConstVars(Num);
  if (!V) {
    Diags.report(Num->getBeginLoc(), diag::err_omp_expected_constant);
    return nullptr;
  }
  if (*V <= 0) {
    Diags.report(Num->getBeginLoc(),
                 diag::err_omp_collapse_requires_positive);
    return nullptr;
  }
  auto *CE = Ctx.create<ConstantExpr>(Num, *V);
  return Ctx.create<OMPCollapseClause>(R, CE);
}

OMPClause *Sema::ActOnOpenMPFullClause(SourceRange R) {
  return Ctx.create<OMPFullClause>(R);
}

OMPClause *Sema::ActOnOpenMPPartialClause(SourceRange R, Expr *Factor) {
  ConstantExpr *CE = nullptr;
  if (Factor) {
    auto V = evaluateIntegerWithConstVars(Factor);
    if (!V) {
      Diags.report(Factor->getBeginLoc(), diag::err_omp_expected_constant);
      return nullptr;
    }
    if (*V <= 0) {
      Diags.report(Factor->getBeginLoc(),
                   diag::err_omp_partial_requires_positive);
      return nullptr;
    }
    CE = Ctx.create<ConstantExpr>(Factor, *V);
  }
  return Ctx.create<OMPPartialClause>(R, CE);
}

OMPClause *Sema::ActOnOpenMPSizesClause(SourceRange R,
                                        std::vector<Expr *> Sizes) {
  std::vector<ConstantExpr *> Consts;
  unsigned Index = 0;
  for (Expr *E : Sizes) {
    ++Index;
    if (!E)
      return nullptr;
    auto V = evaluateIntegerWithConstVars(E);
    if (!V) {
      Diags.report(E->getBeginLoc(), diag::err_omp_expected_constant);
      return nullptr;
    }
    if (*V <= 0) {
      Diags.report(E->getBeginLoc(), diag::err_omp_sizes_requires_positive)
          << Index;
      return nullptr;
    }
    Consts.push_back(Ctx.create<ConstantExpr>(E, *V));
  }
  auto Stored = Ctx.allocateCopy(Consts);
  return Ctx.create<OMPSizesClause>(
      R, std::span<ConstantExpr *const>(Stored.data(), Stored.size()));
}

OMPClause *Sema::ActOnOpenMPPermutationClause(SourceRange R,
                                              std::vector<Expr *> Args) {
  // Each argument must be a positive integer constant; whether the values
  // form a permutation of 1..n is checked when the directive is built (the
  // associated loop count is not known here).
  std::vector<ConstantExpr *> Consts;
  for (Expr *E : Args) {
    if (!E)
      return nullptr;
    auto V = evaluateIntegerWithConstVars(E);
    if (!V) {
      Diags.report(E->getBeginLoc(), diag::err_omp_expected_constant);
      return nullptr;
    }
    if (*V <= 0) {
      Diags.report(E->getBeginLoc(), diag::err_omp_permutation_invalid)
          << static_cast<unsigned>(Args.size());
      return nullptr;
    }
    Consts.push_back(Ctx.create<ConstantExpr>(E, *V));
  }
  auto Stored = Ctx.allocateCopy(Consts);
  return Ctx.create<OMPPermutationClause>(
      R, std::span<ConstantExpr *const>(Stored.data(), Stored.size()));
}

OMPClause *Sema::ActOnOpenMPLoopRangeClause(SourceRange R,
                                            std::vector<Expr *> Args) {
  if (Args.size() != 2) {
    Diags.report(R.getBegin(), diag::err_omp_looprange_two_args);
    return nullptr;
  }
  std::vector<ConstantExpr *> Consts;
  unsigned Index = 0;
  for (Expr *E : Args) {
    ++Index;
    if (!E)
      return nullptr;
    auto V = evaluateIntegerWithConstVars(E);
    if (!V) {
      Diags.report(E->getBeginLoc(), diag::err_omp_expected_constant);
      return nullptr;
    }
    if (*V <= 0) {
      Diags.report(E->getBeginLoc(),
                   diag::err_omp_looprange_requires_positive)
          << Index;
      return nullptr;
    }
    Consts.push_back(Ctx.create<ConstantExpr>(E, *V));
  }
  if (Consts[1]->getResult() < 2) {
    Diags.report(Consts[1]->getBeginLoc(),
                 diag::err_omp_looprange_count_too_small);
    return nullptr;
  }
  return Ctx.create<OMPLoopRangeClause>(R, Consts[0], Consts[1]);
}

OMPClause *Sema::ActOnOpenMPVarListClause(OpenMPClauseKind Kind,
                                          SourceRange R,
                                          std::vector<Expr *> Vars,
                                          OpenMPReductionOp RedOp) {
  std::vector<DeclRefExpr *> Refs;
  for (Expr *E : Vars) {
    if (!E)
      return nullptr;
    auto *DRE = stmt_dyn_cast<DeclRefExpr>(E->ignoreParenImpCasts());
    if (!DRE || !decl_dyn_cast<VarDecl>(DRE->getDecl())) {
      Diags.report(E->getBeginLoc(), diag::err_expected_identifier);
      return nullptr;
    }
    Refs.push_back(DRE);
  }
  auto Stored = Ctx.allocateCopy(Refs);
  std::span<DeclRefExpr *const> Span(Stored.data(), Stored.size());
  switch (Kind) {
  case OpenMPClauseKind::Private:
    return Ctx.create<OMPPrivateClause>(R, Span);
  case OpenMPClauseKind::FirstPrivate:
    return Ctx.create<OMPFirstPrivateClause>(R, Span);
  case OpenMPClauseKind::Shared:
    return Ctx.create<OMPSharedClause>(R, Span);
  case OpenMPClauseKind::Reduction:
    return Ctx.create<OMPReductionClause>(R, RedOp, Span);
  default:
    return nullptr;
  }
}

OMPClause *Sema::ActOnOpenMPNoWaitClause(SourceRange R) {
  return Ctx.create<OMPNoWaitClause>(R);
}

// ===------------------------------------------------------------------=== //
// Canonical loop analysis (OpenMP 5.1 section 4.4.1)
// ===------------------------------------------------------------------=== //

bool Sema::checkOpenMPCanonicalLoop(Stmt *S, OpenMPDirectiveKind Kind,
                                    OMPLoopInfo &Info) {
  // An OMPCanonicalLoop wrapper can be losslessly removed for re-analysis
  // (paper Section 3.1).
  if (auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(S))
    S = CL->getLoopStmt();

  auto *For = stmt_dyn_cast<ForStmt>(S);
  if (!For) {
    Diags.report(S ? S->getBeginLoc() : SourceLocation(),
                 diag::err_omp_not_for)
        << std::string(getOpenMPDirectiveName(Kind));
    return false;
  }
  Info.Loop = For;

  // --- init-expr: "T var = lb" or "var = lb" ---
  VarDecl *IV = nullptr;
  Expr *LB = nullptr;
  if (auto *DS = stmt_dyn_cast<DeclStmt>(For->getInit())) {
    if (DS->isSingleDecl() && DS->getSingleDecl()->hasInit()) {
      IV = DS->getSingleDecl();
      LB = IV->getInit();
    }
  } else if (auto *E = stmt_dyn_cast<Expr>(For->getInit())) {
    if (auto *BO = stmt_dyn_cast<BinaryOperator>(E->ignoreParens())) {
      if (BO->getOpcode() == BinaryOperatorKind::Assign) {
        if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(
                BO->getLHS()->ignoreParenImpCasts())) {
          IV = decl_dyn_cast<VarDecl>(DRE->getDecl());
          LB = BO->getRHS();
        }
      }
    }
  }
  if (!IV || !LB) {
    Diags.report(For->getBeginLoc(), diag::err_omp_loop_no_init_var);
    Diags.report(For->getBeginLoc(), diag::note_omp_canonical_requirement);
    return false;
  }
  Info.IterVar = IV;
  Info.LowerBound = LB;
  Info.IVType = IV->getType().withoutConst();
  Info.LogicalType = Info.IVType->isPointerType()
                         ? Ctx.getULongType()
                         : Ctx.getCorrespondingUnsignedType(Info.IVType);

  std::string IVName(IV->getName());

  // --- test-expr: "var relop b" or "b relop var" ---
  Expr *Cond = For->getCond();
  const BinaryOperator *CondBO =
      Cond ? stmt_dyn_cast<BinaryOperator>(Cond->ignoreParenImpCasts())
           : nullptr;
  auto RefsIV = [IV](const Expr *E) {
    const auto *DRE = stmt_dyn_cast<DeclRefExpr>(E->ignoreParenImpCasts());
    return DRE && DRE->getDecl() == IV;
  };
  BinaryOperatorKind Rel{};
  Expr *UB = nullptr;
  bool Mirrored = false;
  if (CondBO && CondBO->isComparisonOp() &&
      CondBO->getOpcode() != BinaryOperatorKind::EQ) {
    if (RefsIV(CondBO->getLHS())) {
      Rel = CondBO->getOpcode();
      UB = CondBO->getRHS();
    } else if (RefsIV(CondBO->getRHS())) {
      UB = CondBO->getLHS();
      Mirrored = true;
      switch (CondBO->getOpcode()) {
      case BinaryOperatorKind::LT:
        Rel = BinaryOperatorKind::GT;
        break;
      case BinaryOperatorKind::GT:
        Rel = BinaryOperatorKind::LT;
        break;
      case BinaryOperatorKind::LE:
        Rel = BinaryOperatorKind::GE;
        break;
      case BinaryOperatorKind::GE:
        Rel = BinaryOperatorKind::LE;
        break;
      default:
        Rel = BinaryOperatorKind::NE;
        break;
      }
    }
  }
  if (!UB) {
    Diags.report(Cond ? Cond->getBeginLoc() : For->getBeginLoc(),
                 diag::err_omp_loop_bad_cond)
        << IVName;
    Diags.report(For->getBeginLoc(), diag::note_omp_canonical_requirement);
    return false;
  }
  (void)Mirrored;
  Info.UpperBound = UB;

  // --- incr-expr ---
  Expr *Inc = For->getInc();
  Expr *Step = nullptr;
  bool Decreasing = false;
  bool StepKnown = false;
  if (Inc) {
    Expr *IncStripped = Inc->ignoreParenImpCasts();
    if (auto *UO = stmt_dyn_cast<UnaryOperator>(IncStripped)) {
      if (UO->isIncrementDecrementOp() && RefsIV(UO->getSubExpr())) {
        Step = buildIntLiteral(1, Ctx.getIntType());
        Decreasing = !UO->isIncrementOp();
        StepKnown = true;
      }
    } else if (auto *BO = stmt_dyn_cast<BinaryOperator>(IncStripped)) {
      if ((BO->getOpcode() == BinaryOperatorKind::AddAssign ||
           BO->getOpcode() == BinaryOperatorKind::SubAssign) &&
          RefsIV(BO->getLHS())) {
        Step = BO->getRHS();
        Decreasing = BO->getOpcode() == BinaryOperatorKind::SubAssign;
        StepKnown = true;
      } else if (BO->getOpcode() == BinaryOperatorKind::Assign &&
                 RefsIV(BO->getLHS())) {
        // var = var + c | var = c + var | var = var - c
        if (auto *RHSBO = stmt_dyn_cast<BinaryOperator>(
                BO->getRHS()->ignoreParenImpCasts())) {
          if (RHSBO->isAdditiveOp()) {
            if (RefsIV(RHSBO->getLHS())) {
              Step = RHSBO->getRHS();
              Decreasing = RHSBO->getOpcode() == BinaryOperatorKind::Sub;
              StepKnown = true;
            } else if (RefsIV(RHSBO->getRHS()) &&
                       RHSBO->getOpcode() == BinaryOperatorKind::Add) {
              Step = RHSBO->getLHS();
              StepKnown = true;
            }
          }
        }
      }
    }
  }
  if (!StepKnown) {
    Diags.report(Inc ? Inc->getBeginLoc() : For->getBeginLoc(),
                 diag::err_omp_loop_bad_incr)
        << IVName;
    Diags.report(For->getBeginLoc(), diag::note_omp_canonical_requirement);
    return false;
  }

  // Normalize constant steps: "i += -3" is a decreasing loop of step 3.
  if (auto SV = evaluateInteger(Step)) {
    if (*SV == 0) {
      Diags.report(Inc->getBeginLoc(), diag::err_omp_loop_zero_step);
      return false;
    }
    if (*SV < 0) {
      Decreasing = !Decreasing;
      Step = buildIntLiteral(static_cast<std::uint64_t>(-*SV),
                             Ctx.getLongType());
    }
  }
  Info.Step = Step;
  Info.Decreasing = Decreasing;

  // Direction must agree with the comparison.
  switch (Rel) {
  case BinaryOperatorKind::LT:
  case BinaryOperatorKind::LE:
    if (Decreasing) {
      Diags.report(Inc->getBeginLoc(), diag::err_omp_loop_bad_incr) << IVName;
      return false;
    }
    Info.InclusiveBound = Rel == BinaryOperatorKind::LE;
    break;
  case BinaryOperatorKind::GT:
  case BinaryOperatorKind::GE:
    if (!Decreasing) {
      Diags.report(Inc->getBeginLoc(), diag::err_omp_loop_bad_incr) << IVName;
      return false;
    }
    Info.InclusiveBound = Rel == BinaryOperatorKind::GE;
    break;
  default: { // NE: requires a step of constant magnitude 1
    auto SV = evaluateInteger(Step);
    if (!SV || *SV != 1) {
      Diags.report(Cond->getBeginLoc(), diag::err_omp_loop_bad_cond)
          << IVName;
      return false;
    }
    Info.InclusiveBound = false;
    break;
  }
  }

  // Loop-invariant bounds: no calls permitted (see DESIGN.md; stricter
  // than Clang, which evaluates bounds once into captures).
  for (const Expr *BoundExpr : {Info.LowerBound, Info.UpperBound, Info.Step})
    if (containsCall(BoundExpr)) {
      Diags.report(BoundExpr->getBeginLoc(),
                   diag::err_omp_loop_bound_not_invariant);
      return false;
    }

  // The iteration variable must not be modified in the body.
  if (isVarModifiedIn(For->getBody(), IV)) {
    Diags.report(For->getBody()->getBeginLoc(),
                 diag::err_omp_loop_var_modified)
        << IVName;
    return false;
  }

  // No break out of the associated loop.
  if (containsLoopBreak(For->getBody())) {
    Diags.report(For->getBody()->getBeginLoc(), diag::err_omp_loop_break);
    return false;
  }

  // Constant trip count, computed in the unsigned logical type so that
  // INT_MIN..INT_MAX loops fold correctly (Section 3.1).
  auto LBC = evaluateIntegerWithConstVars(Info.LowerBound);
  auto UBC = evaluateIntegerWithConstVars(Info.UpperBound);
  auto STC = evaluateInteger(Info.Step);
  if (LBC && UBC && STC && *STC > 0) {
    std::uint64_t Dist;
    bool HasIterations;
    if (!Decreasing) {
      HasIterations = Info.InclusiveBound ? (*LBC <= *UBC) : (*LBC < *UBC);
      Dist = static_cast<std::uint64_t>(*UBC) -
             static_cast<std::uint64_t>(*LBC);
    } else {
      HasIterations = Info.InclusiveBound ? (*LBC >= *UBC) : (*LBC > *UBC);
      Dist = static_cast<std::uint64_t>(*LBC) -
             static_cast<std::uint64_t>(*UBC);
    }
    // Truncate the distance to the logical type's width (wrap-around
    // arithmetic, e.g. for unsigned IVs).
    unsigned Bits = Info.LogicalType->getSizeInBytes() * 8;
    if (Bits < 64)
      Dist &= (1ULL << Bits) - 1;
    if (Info.InclusiveBound)
      Dist += 1;
    std::uint64_t S = static_cast<std::uint64_t>(*STC);
    Info.ConstantTripCount =
        HasIterations ? (Dist + S - 1 + (Info.InclusiveBound ? 0 : 0)) / S
                      : 0;
    if (Info.InclusiveBound && HasIterations)
      Info.ConstantTripCount = (Dist + S - 1) / S;
  }
  return true;
}

bool Sema::analyzeLoopNest(Stmt *AStmt, OpenMPDirectiveKind Kind,
                           unsigned NumLoops, std::vector<OMPLoopInfo> &Infos,
                           std::vector<Stmt *> &PreInitsFromTransforms) {
  Stmt *Cur = AStmt;
  std::set<const VarDecl *> OuterIVs;

  for (unsigned Depth = 0; Depth < NumLoops; ++Depth) {
    // Allow braces around nested loops, but nothing else (perfect nesting).
    while (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
      if (CS->size() != 1) {
        Diags.report(Cur->getBeginLoc(), Depth == 0
                                             ? diag::err_omp_not_for
                                             : diag::err_omp_not_perfectly_nested)
            << std::string(getOpenMPDirectiveName(Kind));
        return false;
      }
      Cur = CS->body()[0];
    }

    // A nested loop-transformation directive: consume its generated loop
    // via the transformed statement (the mechanism of Section 2).
    while (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(Cur)) {
      if (stmt_dyn_cast<OMPDistributeLoopDirective>(TD)) {
        // distribute_loop generates a *sequence* of loops, which no
        // loop-associated directive can consume as a single nest.
        Diags.report(TD->getBeginLoc(),
                     diag::err_omp_distribute_result_consumed)
            << std::string(getOpenMPDirectiveName(Kind));
        return false;
      }
      if (auto *UD = stmt_dyn_cast<OMPUnrollDirective>(TD)) {
        if (UD->hasFullClause()) {
          // Full unrolling leaves no loop to associate with.
          Diags.report(UD->getBeginLoc(),
                       diag::err_omp_directive_needs_loop_result)
              << std::string(getOpenMPDirectiveName(Kind));
          return false;
        }
        if (!UD->getTransformedStmt() && !UD->hasPartialClause() &&
            !Opts.OpenMPEnableIRBuilder) {
          // Heuristic unroll consumed by another directive: the unroll
          // factor becomes observable, so a concrete factor must be chosen
          // now. The implementation (like Clang's) uses a factor of two.
          Diags.report(UD->getBeginLoc(),
                       diag::warn_omp_unroll_factor_forced)
              << Opts.HeuristicUnrollFactor;
          OMPLoopInfo Inner;
          if (!checkOpenMPCanonicalLoop(UD->getAssociatedStmt(),
                                        OpenMPDirectiveKind::Unroll, Inner))
            return false;
          UD->setTransformedStmt(buildUnrollPartialTransformation(
              UD, Inner, Opts.HeuristicUnrollFactor));
        }
      }
      if (!TD->getTransformedStmt()) {
        // IRBuilder mode: transformations are applied on CanonicalLoopInfo
        // handles in CodeGen; Sema cannot descend further. The directive's
        // loops were validated when the inner directive was built.
        if (Opts.OpenMPEnableIRBuilder)
          return true;
        Diags.report(TD->getBeginLoc(),
                     diag::err_omp_directive_needs_loop_result)
            << std::string(getOpenMPDirectiveName(Kind));
        return false;
      }
      if (Stmt *PI = TD->getPreInits())
        PreInitsFromTransforms.push_back(PI);
      Cur = TD->getTransformedStmt();
      while (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
        if (CS->size() != 1)
          break;
        Cur = CS->body()[0];
      }
    }

    OMPLoopInfo Info;
    // While analyzing a transformed (shadow) loop, retarget diagnostics
    // without usable locations at the directive and explain the history
    // with a note (the representative-location policy of Section 2).
    bool InTransformed = !PreInitsFromTransforms.empty() ||
                         Cur->getBeginLoc().isInvalid();
    if (InTransformed)
      Diags.pushTransformRemap(AStmt->getBeginLoc(),
                               std::string(getOpenMPDirectiveName(Kind)));
    bool LoopOK = checkOpenMPCanonicalLoop(Cur, Kind, Info);
    if (InTransformed)
      Diags.popTransformRemap();
    if (!LoopOK) {
      if (Depth > 0)
        Diags.report(AStmt->getBeginLoc(), diag::err_omp_not_enough_loops)
            << std::string(getOpenMPDirectiveName(Kind)) << NumLoops << Depth;
      return false;
    }

    // Rectangularity: the bounds of an inner loop must not depend on the
    // iteration variable of an enclosing loop.
    for (const Expr *BoundExpr : {Info.LowerBound, Info.UpperBound, Info.Step})
      if (referencesAnyVar(BoundExpr, OuterIVs)) {
        std::string Offender;
        for (const VarDecl *V : OuterIVs)
          if (referencesAnyVar(BoundExpr, {V}))
            Offender = std::string(V->getName());
        Diags.report(BoundExpr->getBeginLoc(), diag::err_omp_nonrectangular)
            << Offender;
        return false;
      }

    OuterIVs.insert(Info.IterVar);
    Infos.push_back(Info);
    Cur = Info.Loop->getBody();
  }
  return true;
}

// ===------------------------------------------------------------------=== //
// Directive actions
// ===------------------------------------------------------------------=== //

bool Sema::checkDuplicateClauses(const std::vector<OMPClause *> &Clauses,
                                 OpenMPDirectiveKind Kind) {
  bool OK = true;
  std::set<OpenMPClauseKind> Seen;
  for (const OMPClause *C : Clauses) {
    if (!C)
      continue;
    OpenMPClauseKind CK = C->getClauseKind();
    // Variable-list clauses may be repeated.
    if (CK == OpenMPClauseKind::Private ||
        CK == OpenMPClauseKind::FirstPrivate ||
        CK == OpenMPClauseKind::Shared || CK == OpenMPClauseKind::Reduction)
      continue;
    if (!Seen.insert(CK).second) {
      Diags.report(C->getBeginLoc(), diag::err_omp_duplicate_clause)
          << std::string(getOpenMPClauseName(CK))
          << std::string(getOpenMPDirectiveName(Kind));
      OK = false;
    }
  }
  return OK;
}

std::vector<VarDecl *> Sema::computeCaptures(Stmt *S) {
  DeclCollector Declared;
  Declared.ShouldVisitShadowAST = true;
  Declared.traverseStmt(S);
  RefCollector Refs;
  Refs.ShouldVisitShadowAST = true;
  Refs.traverseStmt(S);

  std::vector<VarDecl *> Captures;
  for (const VarDecl *V : Refs.Referenced) {
    if (Declared.Declared.count(V))
      continue;
    if (V->isFileScope())
      continue; // globals are accessed directly, not captured
    Captures.push_back(const_cast<VarDecl *>(V));
  }
  return Captures;
}

CapturedStmt *
Sema::buildCaptureForOutlining(Stmt *S, std::vector<VarDecl *> ExtraCaptures) {
  std::vector<VarDecl *> Captured = computeCaptures(S);
  for (VarDecl *V : ExtraCaptures)
    if (std::find(Captured.begin(), Captured.end(), V) == Captured.end())
      Captured.push_back(V);

  // The implicit parameters of the outlined 'lambda' (paper Listing 3):
  // thread identifiers and the context structure with the captures.
  QualType IntPtr = Ctx.getPointerType(Ctx.getIntType());
  QualType VoidPtr = Ctx.getPointerType(Ctx.getVoidType());
  std::vector<ImplicitParamDecl *> Params = {
      Ctx.create<ImplicitParamDecl>(SourceLocation(),
                                    Ctx.internString(".global_tid."),
                                    IntPtr.withConst()),
      Ctx.create<ImplicitParamDecl>(SourceLocation(),
                                    Ctx.internString(".bound_tid."),
                                    IntPtr.withConst()),
      Ctx.create<ImplicitParamDecl>(SourceLocation(),
                                    Ctx.internString("__context"), VoidPtr),
  };
  auto StoredParams = Ctx.allocateCopy(Params);
  auto *CD = Ctx.create<CapturedDecl>(
      S->getBeginLoc(), S,
      std::span<ImplicitParamDecl *const>(StoredParams.data(),
                                          StoredParams.size()));

  std::vector<CapturedStmt::Capture> Caps;
  for (VarDecl *V : Captured)
    Caps.push_back({V, /*ByRef=*/true});
  auto StoredCaps = Ctx.allocateCopy(Caps);
  return Ctx.create<CapturedStmt>(
      S->getSourceRange(), CD,
      std::span<const CapturedStmt::Capture>(StoredCaps.data(),
                                             StoredCaps.size()));
}

Stmt *Sema::ActOnOpenMPExecutableDirective(OpenMPDirectiveKind Kind,
                                           std::vector<OMPClause *> Clauses,
                                           Stmt *AStmt, SourceRange R) {
  // Clause validation failures surface as null clauses.
  if (std::find(Clauses.begin(), Clauses.end(), nullptr) != Clauses.end())
    return nullptr;
  if (!checkDuplicateClauses(Clauses, Kind))
    return nullptr;

  switch (Kind) {
  case OpenMPDirectiveKind::Parallel: {
    if (!AStmt)
      return nullptr;
    CapturedStmt *CS = buildCaptureForOutlining(AStmt, {});
    auto Stored = Ctx.allocateCopy(Clauses);
    return Ctx.create<OMPParallelDirective>(
        R, std::span<OMPClause *const>(Stored.data(), Stored.size()), CS);
  }
  case OpenMPDirectiveKind::Barrier:
    return Ctx.create<OMPBarrierDirective>(R);
  case OpenMPDirectiveKind::Critical:
    return AStmt ? Ctx.create<OMPCriticalDirective>(R, AStmt) : nullptr;
  case OpenMPDirectiveKind::Master:
    return AStmt ? Ctx.create<OMPMasterDirective>(R, AStmt) : nullptr;
  case OpenMPDirectiveKind::Single: {
    if (!AStmt)
      return nullptr;
    auto Stored = Ctx.allocateCopy(Clauses);
    return Ctx.create<OMPSingleDirective>(
        R, std::span<OMPClause *const>(Stored.data(), Stored.size()), AStmt);
  }
  case OpenMPDirectiveKind::For:
  case OpenMPDirectiveKind::ParallelFor:
  case OpenMPDirectiveKind::Simd:
  case OpenMPDirectiveKind::ForSimd:
    return buildLoopDirective(Kind, std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Tile:
    return buildTileDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Unroll:
    return buildUnrollDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Reverse:
    return buildReverseDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Interchange:
    return buildInterchangeDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Fuse:
    return buildFuseDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::DistributeLoop:
    return buildDistributeLoopDirective(std::move(Clauses), AStmt, R);
  case OpenMPDirectiveKind::Unknown:
    return nullptr;
  }
  return nullptr;
}

} // namespace mcc
