//===--- Interpreter.cpp - IR execution engine ------------------------------===//
//
// Engine-independent machinery (globals, externals, runtime dispatch,
// statistics) plus the tree-walking reference backend. The bytecode
// backend's translation lives in BytecodeCompiler.cpp and its dispatch
// loop in BytecodeInterpreter.cpp; both backends share the scalar
// semantics in InterpOps.h and the per-thread FrameStack.
//
//===----------------------------------------------------------------------===//
#include "interp/Interpreter.h"

#include "interp/FrameStack.h"
#include "interp/InterpOps.h"
#include "interp/JITTier.h" // complete JITState for the engine destructor
#include "runtime/KMPRuntime.h"
#include "support/JSONWriter.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace mcc::interp {

using namespace ir;
using ops::signExtend;
using ops::zeroExtend;

bool parseExecEngineKind(std::string_view Name, ExecEngineKind &Out) {
  if (Name == "walker") {
    Out = ExecEngineKind::Walker;
    return true;
  }
  if (Name == "bytecode") {
    Out = ExecEngineKind::Bytecode;
    return true;
  }
  if (Name == "native") {
    Out = ExecEngineKind::Native;
    return true;
  }
  if (Name == "tiered") {
    Out = ExecEngineKind::Tiered;
    return true;
  }
  Out = ExecEngineKind::Default;
  return false;
}

const char *execEngineKindName(ExecEngineKind K) {
  switch (K) {
  case ExecEngineKind::Walker:
    return "walker";
  case ExecEngineKind::Bytecode:
    return "bytecode";
  case ExecEngineKind::Native:
    return "native";
  case ExecEngineKind::Tiered:
    return "tiered";
  case ExecEngineKind::Default:
    return "default";
  }
  return "?";
}

ExecEngineKind resolveExecEngineKind(ExecEngineKind K) {
  if (K != ExecEngineKind::Default)
    return K;
  if (const char *Env = std::getenv("MCC_EXEC_ENGINE")) {
    ExecEngineKind FromEnv;
    if (parseExecEngineKind(Env, FromEnv))
      return FromEnv;
  }
  return ExecEngineKind::Bytecode;
}

std::string execEngineEnvError() {
  const char *Env = std::getenv("MCC_EXEC_ENGINE");
  if (!Env)
    return {};
  ExecEngineKind K;
  if (parseExecEngineKind(Env, K))
    return {};
  return std::string("invalid MCC_EXEC_ENGINE value '") + Env +
         "' (expected walker, bytecode, native, or tiered)";
}

ExecutionEngine::ExecutionEngine(
    const ir::Module &M, ExecEngineKind RequestedKind,
    std::shared_ptr<const bc::BytecodeModule> Precompiled)
    : M(M), Kind(resolveExecEngineKind(RequestedKind)) {
  // Allocate and initialize global storage.
  for (const auto &G : M.globals()) {
    std::size_t Size = static_cast<std::size_t>(G->getSizeInBytes());
    void *Mem = ::operator new(Size < 1 ? 1 : Size);
    std::memset(Mem, 0, Size);
    if (!G->IntInit.empty() || !G->FPInit.empty()) {
      unsigned ElemSize = G->getElementType()->getSizeInBytes();
      char *P = static_cast<char *>(Mem);
      if (G->getElementType()->isDouble()) {
        for (std::size_t I = 0; I < G->FPInit.size(); ++I)
          std::memcpy(P + I * ElemSize, &G->FPInit[I], sizeof(double));
      } else {
        for (std::size_t I = 0; I < G->IntInit.size(); ++I) {
          std::int64_t V = G->IntInit[I];
          std::memcpy(P + I * ElemSize, &V, ElemSize);
        }
      }
    }
    GlobalStorage[G.get()] = Mem;
  }

  if (Kind != ExecEngineKind::Walker) {
    // Bytecode, native and tiered all start from the bytecode translation
    // (the native tier compiles machine code *from* it and falls back to
    // it per function).
    // Take the shared translation when it matches this module (an L3
    // compile-service artifact); translate once otherwise. Afterwards the
    // table is immutable: team threads read it without synchronization.
    if (Precompiled && Precompiled->Source == &M)
      BCMod = std::move(Precompiled);
    else {
      BCMod = bc::compileToBytecode(M);
      TranslatedHere = true;
    }
    // Engine-private frame prefix templates: the shared constant pools
    // with this engine's global addresses patched in.
    PoolOffsets.reserve(BCMod->Functions.size());
    for (const bc::BCFunction &F : BCMod->Functions) {
      std::size_t Off = PatchedPools.size();
      PoolOffsets.push_back(Off);
      for (std::uint32_t K = 0; K < F.NumConsts; ++K) {
        RTValue V;
        V.I = F.ConstPoolInts[K];
        V.D = F.ConstPoolFPs[K];
        PatchedPools.push_back(V);
      }
      for (const auto &[Slot, G] : F.GlobalRelocs)
        PatchedPools[Off + Slot] = RTValue::ofPtr(GlobalStorage.at(G));
    }
    if (Kind == ExecEngineKind::Native || Kind == ExecEngineKind::Tiered)
      initJITTier();
  } else {
    // Walker backend: precompute slot numbering and the per-frame alloca
    // arena layout for every defined function (the module is immutable
    // afterwards, so these maps can be read concurrently).
    for (const auto &F : M.functions()) {
      if (F->isDeclaration())
        continue;
      FunctionInfo Info;
      ValueNumbering VN = numberFunctionValues(*F);
      Info.NumSlots = VN.NumValues;
      for (const auto &[V, Idx] : VN.Index)
        Info.Slots[V] = Idx;
      std::size_t Offset = 0;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions()) {
          if (I->getOpcode() != Opcode::Alloca)
            continue;
          const auto *N = ir_dyn_cast<ConstantInt>(I->getOperand(0));
          if (!N)
            continue; // variable count: stays a heap allocation
          std::size_t Size = static_cast<std::size_t>(N->getValue()) *
                             I->ElemTy->getSizeInBytes();
          if (Size < 1)
            Size = 1;
          Info.FixedAllocas[I.get()] = {Offset, Size};
          Offset = (Offset + Size + 15) & ~std::size_t(15);
        }
      Info.ArenaBytes = Offset;
      Infos[F.get()] = std::move(Info);
    }
  }

  // Default externals: debugging prints.
  Externals["print_i64"] = [](std::span<const RTValue> Args) {
    std::printf("%lld\n", static_cast<long long>(Args[0].I));
    return RTValue{};
  };
  Externals["print_f64"] = [](std::span<const RTValue> Args) {
    std::printf("%g\n", Args[0].D);
    return RTValue{};
  };
}

ExecutionEngine::~ExecutionEngine() {
  for (auto &[G, Mem] : GlobalStorage)
    ::operator delete(Mem);
}

void ExecutionEngine::bindExternal(const std::string &Name, ExternalFn Fn) {
  Externals[Name] = std::move(Fn);
}

void *ExecutionEngine::getGlobalAddress(const std::string &Name) const {
  const GlobalVariable *G = M.getGlobal(Name);
  if (!G)
    return nullptr;
  auto It = GlobalStorage.find(G);
  return It == GlobalStorage.end() ? nullptr : It->second;
}

const ExecutionEngine::FunctionInfo &
ExecutionEngine::getInfo(const ir::Function *F) {
  auto It = Infos.find(F);
  assert(It != Infos.end() && "function not prepared");
  return It->second;
}

RTValue ExecutionEngine::runFunction(const std::string &Name,
                                     std::vector<RTValue> Args) {
  const Function *F = M.getFunction(Name);
  if (!F)
    throw std::runtime_error("no such function: " + Name);
  return runFunction(F, std::move(Args));
}

RTValue ExecutionEngine::runFunction(const ir::Function *F,
                                     std::vector<RTValue> Args) {
  return invokeDefined(F, Args);
}

RTValue ExecutionEngine::invokeDefined(const ir::Function *F,
                                       std::span<const RTValue> Args) {
  assert(!F->isDeclaration() && "cannot execute a declaration");
  if (Kind != ExecEngineKind::Walker) {
    auto It = BCMod->Index.find(F);
    if (It == BCMod->Index.end())
      throw std::runtime_error("bytecode: unknown function: " +
                               F->getName());
    return executeTiered(It->second, Args);
  }
  return interpret(F, Args);
}

void ExecutionEngine::resetOpenMPRuntime() {
  rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();
  RT.shutdown();
  RT.resetStats();
}

ExecStats ExecutionEngine::statsSnapshot() const {
  ExecStats S;
  S.Engine = Kind;
  S.TranslatedHere = TranslatedHere;
  if (Kind != ExecEngineKind::Walker) {
    S.Dispatch = (Kind == ExecEngineKind::Native ||
                  Kind == ExecEngineKind::Tiered)
                     ? "template-jit"
                     : bc::dispatchModeName();
    S.FunctionsPrepared = BCMod->Functions.size();
    S.BytecodeBytes = BCMod->byteSize();
    S.SuperinstsEmitted = BCMod->superinstsEmitted();
  } else {
    S.Dispatch = "tree-walk";
    S.FunctionsPrepared = Infos.size();
  }
  S.InstructionsExecuted =
      InstructionsExecuted.load(std::memory_order_relaxed);
  S.SuperinstHits = SuperinstHits.load(std::memory_order_relaxed);
  S.FramesExecuted = FramesExecuted.load(std::memory_order_relaxed);
  S.RuntimeCalls = RuntimeCalls.load(std::memory_order_relaxed);
  S.JITFunctionsCompiled = JITCompiled.load(std::memory_order_relaxed);
  S.JITCodeBytes = JITCodeBytes.load(std::memory_order_relaxed);
  S.JITOSRPromotions = JITOSRPromotions.load(std::memory_order_relaxed);
  S.JITFallbacks = JITFallbackFns.load(std::memory_order_relaxed);
  S.JITNativeFrames = JITNativeFrames.load(std::memory_order_relaxed);
  S.JITRegAllocSlots = JITRegAllocSlots.load(std::memory_order_relaxed);
  S.JITSpills = JITSpillSites.load(std::memory_order_relaxed);
  S.JITFusedTemplates = JITFusedTemplates.load(std::memory_order_relaxed);
  S.JITDirectCallSites =
      JITDirectCallSites.load(std::memory_order_relaxed);
  return S;
}

std::string ExecutionEngine::renderExecStats() const {
  ExecStats S = statsSnapshot();
  char Buf[1024];
  int Len = std::snprintf(
      Buf, sizeof(Buf),
      "== execution engine statistics ==\n"
      "engine:    %s dispatch=%s\n"
      "translate: functions=%llu bytecode-bytes=%llu superinsts=%llu "
      "source=%s\n"
      "execute:   instructions=%llu superinst-hits=%llu frames=%llu "
      "runtime-calls=%llu\n",
      execEngineKindName(S.Engine), S.Dispatch,
      static_cast<unsigned long long>(S.FunctionsPrepared),
      static_cast<unsigned long long>(S.BytecodeBytes),
      static_cast<unsigned long long>(S.SuperinstsEmitted),
      S.Engine == ExecEngineKind::Walker ? "n/a"
      : S.TranslatedHere                 ? "translated"
                                         : "precompiled",
      static_cast<unsigned long long>(S.InstructionsExecuted),
      static_cast<unsigned long long>(S.SuperinstHits),
      static_cast<unsigned long long>(S.FramesExecuted),
      static_cast<unsigned long long>(S.RuntimeCalls));
  if ((S.Engine == ExecEngineKind::Native ||
       S.Engine == ExecEngineKind::Tiered) &&
      Len > 0 && static_cast<std::size_t>(Len) < sizeof(Buf))
    std::snprintf(
        Buf + Len, sizeof(Buf) - static_cast<std::size_t>(Len),
        "jit:       compiled=%llu code-bytes=%llu fallbacks=%llu "
        "native-frames=%llu osr-promotions=%llu regalloc-slots=%llu "
        "spills=%llu fused-templates=%llu direct-calls=%llu\n",
        static_cast<unsigned long long>(S.JITFunctionsCompiled),
        static_cast<unsigned long long>(S.JITCodeBytes),
        static_cast<unsigned long long>(S.JITFallbacks),
        static_cast<unsigned long long>(S.JITNativeFrames),
        static_cast<unsigned long long>(S.JITOSRPromotions),
        static_cast<unsigned long long>(S.JITRegAllocSlots),
        static_cast<unsigned long long>(S.JITSpills),
        static_cast<unsigned long long>(S.JITFusedTemplates),
        static_cast<unsigned long long>(S.JITDirectCallSites));
  return Buf;
}

std::string ExecutionEngine::renderExecStatsJSON() const {
  ExecStats S = statsSnapshot();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.field("engine", execEngineKindName(S.Engine));
  W.field("dispatch", S.Dispatch);
  W.key("translate");
  W.beginObject();
  W.field("functions", S.FunctionsPrepared);
  W.field("bytecode_bytes", S.BytecodeBytes);
  W.field("superinsts", S.SuperinstsEmitted);
  W.field("source", S.Engine == ExecEngineKind::Walker ? "n/a"
                    : S.TranslatedHere                 ? "translated"
                                                       : "precompiled");
  W.endObject();
  W.key("execute");
  W.beginObject();
  W.field("instructions", S.InstructionsExecuted);
  W.field("superinst_hits", S.SuperinstHits);
  W.field("frames", S.FramesExecuted);
  W.field("runtime_calls", S.RuntimeCalls);
  W.endObject();
  if (S.Engine == ExecEngineKind::Native ||
      S.Engine == ExecEngineKind::Tiered) {
    W.key("jit");
    W.beginObject();
    W.field("compiled", S.JITFunctionsCompiled);
    W.field("code_bytes", S.JITCodeBytes);
    W.field("fallbacks", S.JITFallbacks);
    W.field("native_frames", S.JITNativeFrames);
    W.field("osr_promotions", S.JITOSRPromotions);
    W.field("regalloc_slots", S.JITRegAllocSlots);
    W.field("spills", S.JITSpills);
    W.field("fused_templates", S.JITFusedTemplates);
    W.field("direct_calls", S.JITDirectCallSites);
    W.endObject();
  }
  W.endObject();
  Out += '\n';
  return Out;
}

RTValue ExecutionEngine::callRuntime(const std::string &Name,
                                     std::span<const RTValue> Args) {
  return callRuntimeResolved(bc::resolveRuntimeCallee(Name), Name, Args);
}

RTValue ExecutionEngine::callRuntimeResolved(bc::RTCallee Callee,
                                             const std::string &Name,
                                             std::span<const RTValue> Args) {
  RuntimeCalls.fetch_add(1, std::memory_order_relaxed);
  rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();

  switch (Callee) {
  case bc::RTCallee::ForkCall: {
    const auto *Outlined = static_cast<const Function *>(Args[0].asPtr());
    // Args[1] = number of captured pointers (context layout), Args[2] =
    // context (array of capture addresses), Args[3] = requested threads.
    void *Context = Args[2].asPtr();
    int NumThreads = static_cast<int>(Args[3].I);
    RT.forkCall(
        [this, Outlined, Context](int Tid) {
          std::int32_t TidLocal = Tid;
          RTValue OutlinedArgs[3] = {RTValue::ofPtr(&TidLocal),
                                     RTValue::ofPtr(&TidLocal),
                                     RTValue::ofPtr(Context)};
          invokeDefined(Outlined, OutlinedArgs);
        },
        NumThreads);
    return RTValue{};
  }
  case bc::RTCallee::GlobalThreadNum:
    return RTValue::ofInt(RT.getThreadNum());
  case bc::RTCallee::NumThreads:
    return RTValue::ofInt(RT.getNumThreads());
  case bc::RTCallee::ForStaticInit:
    RT.forStaticInit(static_cast<std::int32_t>(Args[1].I),
                     static_cast<std::int32_t *>(Args[2].asPtr()),
                     static_cast<std::int64_t *>(Args[3].asPtr()),
                     static_cast<std::int64_t *>(Args[4].asPtr()),
                     static_cast<std::int64_t *>(Args[5].asPtr()), Args[6].I,
                     Args[7].I);
    return RTValue{};
  case bc::RTCallee::ForStaticFini:
    RT.forStaticFini();
    return RTValue{};
  case bc::RTCallee::DispatchInit:
    RT.dispatchInit(static_cast<std::int32_t>(Args[1].I), Args[2].I,
                    Args[3].I, Args[4].I);
    return RTValue{};
  case bc::RTCallee::DispatchNext: {
    bool More =
        RT.dispatchNext(static_cast<std::int32_t *>(Args[1].asPtr()),
                        static_cast<std::int64_t *>(Args[2].asPtr()),
                        static_cast<std::int64_t *>(Args[3].asPtr()));
    return RTValue::ofInt(More ? 1 : 0);
  }
  case bc::RTCallee::DispatchFini:
    RT.dispatchFini();
    return RTValue{};
  case bc::RTCallee::Barrier:
    RT.barrier();
    return RTValue{};
  case bc::RTCallee::Critical:
    RT.critical();
    return RTValue{};
  case bc::RTCallee::EndCritical:
    RT.endCritical();
    return RTValue{};
  case bc::RTCallee::External:
    break;
  }

  auto It = Externals.find(Name);
  if (It == Externals.end())
    throw std::runtime_error("call to unbound external function: " + Name);
  return It->second(Args);
}

RTValue ExecutionEngine::interpret(const ir::Function *F,
                                   std::span<const RTValue> Args) {
  assert(!F->isDeclaration() && "cannot interpret a declaration");
  const FunctionInfo &Info = getInfo(F);

  FrameStack &FS = threadFrameStack();
  std::uint64_t LocalCount = 0;
  std::vector<void *> HeapAllocas;

  // Releases the frame and flushes counters on return *and* on unwinding
  // (division traps must not leak the frame mark).
  struct Cleanup {
    ExecutionEngine &EE;
    FrameStack &FS;
    FrameStack::Mark M;
    std::vector<void *> &Heap;
    std::uint64_t &Count;
    ~Cleanup() {
      for (void *P : Heap)
        ::operator delete(P);
      FS.release(M);
      EE.InstructionsExecuted.fetch_add(Count, std::memory_order_relaxed);
      EE.FramesExecuted.fetch_add(1, std::memory_order_relaxed);
    }
  } Guard{*this, FS, FS.mark(), HeapAllocas, LocalCount};

  // One frame allocation: [value slots][coalesced alloca arena].
  char *Mem = static_cast<char *>(
      FS.allocate(Info.NumSlots * sizeof(RTValue) + Info.ArenaBytes));
  auto *Frame = reinterpret_cast<RTValue *>(Mem);
  char *Arena = Mem + Info.NumSlots * sizeof(RTValue);
  std::memset(static_cast<void *>(Frame), 0,
              Info.NumSlots * sizeof(RTValue));

  for (unsigned I = 0; I < F->getNumArgs(); ++I)
    Frame[Info.Slots.at(F->getArg(I))] = Args[I];

  auto Eval = [&](const Value *V) -> RTValue {
    switch (V->getValueKind()) {
    case Value::ValueKind::ConstantInt:
      return RTValue::ofInt(ir_cast<ConstantInt>(V)->getValue());
    case Value::ValueKind::ConstantFP:
      return RTValue::ofDouble(ir_cast<ConstantFP>(V)->getValue());
    case Value::ValueKind::ConstantNull:
      return RTValue::ofInt(0);
    case Value::ValueKind::Global:
      return RTValue::ofPtr(
          GlobalStorage.at(ir_cast<GlobalVariable>(V)));
    case Value::ValueKind::Function:
      return RTValue::ofPtr(
          const_cast<Function *>(ir_cast<Function>(V)));
    default:
      return Frame[Info.Slots.at(V)];
    }
  };

  const BasicBlock *Block = F->getEntryBlock();
  const BasicBlock *PrevBlock = nullptr;
  RTValue ReturnValue{};

  while (true) {
    // Phis first: evaluate them all against the *old* frame before
    // writing, to honor parallel-copy semantics.
    std::size_t InstIdx = 0;
    {
      std::vector<std::pair<unsigned, RTValue>> PhiWrites;
      while (InstIdx < Block->size() &&
             Block->instructions()[InstIdx]->getOpcode() == Opcode::Phi) {
        const Instruction &Phi = *Block->instructions()[InstIdx];
        bool Found = false;
        for (unsigned P = 0; P < Phi.getNumIncoming(); ++P)
          if (Phi.getIncomingBlock(P) == PrevBlock) {
            PhiWrites.emplace_back(Info.Slots.at(&Phi),
                                   Eval(Phi.getIncomingValue(P)));
            Found = true;
            break;
          }
        if (!Found)
          throw std::runtime_error("phi has no incoming for predecessor");
        ++InstIdx;
        ++LocalCount;
      }
      for (auto &[Slot, V] : PhiWrites)
        Frame[Slot] = V;
    }

    for (; InstIdx < Block->size(); ++InstIdx) {
      const Instruction &I = *Block->instructions()[InstIdx];
      ++LocalCount;
      unsigned Bits = I.getType()->getBitWidth();

      switch (I.getOpcode()) {
      case Opcode::Alloca: {
        auto FA = Info.FixedAllocas.find(&I);
        if (FA != Info.FixedAllocas.end()) {
          // Coalesced into the frame arena; zeroed per execution, like
          // the fresh heap block it replaces.
          char *P = Arena + FA->second.first;
          std::memset(P, 0, FA->second.second);
          Frame[Info.Slots.at(&I)] = RTValue::ofPtr(P);
          break;
        }
        std::int64_t N = Eval(I.getOperand(0)).I;
        std::size_t Size = static_cast<std::size_t>(N) *
                           I.ElemTy->getSizeInBytes();
        void *Mem2 = ::operator new(Size < 1 ? 1 : Size);
        std::memset(Mem2, 0, Size < 1 ? 1 : Size);
        HeapAllocas.push_back(Mem2);
        Frame[Info.Slots.at(&I)] = RTValue::ofPtr(Mem2);
        break;
      }
      case Opcode::Load: {
        void *P = Eval(I.getOperand(0)).asPtr();
        RTValue R{};
        switch (I.ElemTy->getKind()) {
        case TypeKind::I1:
        case TypeKind::I8: {
          std::int8_t V;
          std::memcpy(&V, P, 1);
          R.I = V;
          break;
        }
        case TypeKind::I32: {
          std::int32_t V;
          std::memcpy(&V, P, 4);
          R.I = V;
          break;
        }
        case TypeKind::I64:
        case TypeKind::Ptr: {
          std::int64_t V;
          std::memcpy(&V, P, 8);
          R.I = V;
          break;
        }
        case TypeKind::Double: {
          std::memcpy(&R.D, P, 8);
          break;
        }
        case TypeKind::Void:
          break;
        }
        Frame[Info.Slots.at(&I)] = R;
        break;
      }
      case Opcode::Store: {
        RTValue V = Eval(I.getOperand(0));
        void *P = Eval(I.getOperand(1)).asPtr();
        const IRType *Ty = I.getOperand(0)->getType();
        switch (Ty->getKind()) {
        case TypeKind::I1:
        case TypeKind::I8: {
          std::int8_t B = static_cast<std::int8_t>(V.I);
          std::memcpy(P, &B, 1);
          break;
        }
        case TypeKind::I32: {
          std::int32_t W = static_cast<std::int32_t>(V.I);
          std::memcpy(P, &W, 4);
          break;
        }
        case TypeKind::I64:
        case TypeKind::Ptr:
          std::memcpy(P, &V.I, 8);
          break;
        case TypeKind::Double:
          std::memcpy(P, &V.D, 8);
          break;
        case TypeKind::Void:
          break;
        }
        break;
      }
      case Opcode::GEP: {
        char *Base = static_cast<char *>(Eval(I.getOperand(0)).asPtr());
        std::int64_t Index = Eval(I.getOperand(1)).I;
        Frame[Info.Slots.at(&I)] =
            RTValue::ofPtr(Base + Index * I.ElemTy->getSizeInBytes());
        break;
      }

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::UDiv:
      case Opcode::SRem:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::AShr:
      case Opcode::LShr: {
        std::int64_t A = Eval(I.getOperand(0)).I;
        std::int64_t B = Eval(I.getOperand(1)).I;
        Frame[Info.Slots.at(&I)] =
            RTValue::ofInt(ops::evalIntBinop(I.getOpcode(), A, B, Bits));
        break;
      }

      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv: {
        double A = Eval(I.getOperand(0)).D;
        double B = Eval(I.getOperand(1)).D;
        double R = 0;
        switch (I.getOpcode()) {
        case Opcode::FAdd:
          R = A + B;
          break;
        case Opcode::FSub:
          R = A - B;
          break;
        case Opcode::FMul:
          R = A * B;
          break;
        case Opcode::FDiv:
          R = A / B;
          break;
        default:
          break;
        }
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(R);
        break;
      }
      case Opcode::FNeg:
        Frame[Info.Slots.at(&I)] =
            RTValue::ofDouble(-Eval(I.getOperand(0)).D);
        break;

      case Opcode::ICmp: {
        unsigned OpBits = I.getOperand(0)->getType()->getBitWidth();
        std::int64_t A = Eval(I.getOperand(0)).I;
        std::int64_t B = Eval(I.getOperand(1)).I;
        Frame[Info.Slots.at(&I)] =
            RTValue::ofInt(ops::evalICmp(I.Pred, A, B, OpBits) ? 1 : 0);
        break;
      }
      case Opcode::FCmp: {
        double A = Eval(I.getOperand(0)).D;
        double B = Eval(I.getOperand(1)).D;
        Frame[Info.Slots.at(&I)] =
            RTValue::ofInt(ops::evalFCmp(I.Pred, A, B) ? 1 : 0);
        break;
      }

      case Opcode::ZExt:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(static_cast<std::int64_t>(
            zeroExtend(Eval(I.getOperand(0)).I,
                       I.getOperand(0)->getType()->getBitWidth())));
        break;
      case Opcode::SExt:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(
            signExtend(Eval(I.getOperand(0)).I,
                       I.getOperand(0)->getType()->getBitWidth()));
        break;
      case Opcode::Trunc:
        Frame[Info.Slots.at(&I)] =
            RTValue::ofInt(signExtend(Eval(I.getOperand(0)).I, Bits));
        break;
      case Opcode::SIToFP:
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(
            static_cast<double>(signExtend(Eval(I.getOperand(0)).I,
                                           I.getOperand(0)->getType()
                                               ->getBitWidth())));
        break;
      case Opcode::UIToFP:
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(
            static_cast<double>(zeroExtend(Eval(I.getOperand(0)).I,
                                           I.getOperand(0)->getType()
                                               ->getBitWidth())));
        break;
      case Opcode::FPToSI:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(
            signExtend(static_cast<std::int64_t>(Eval(I.getOperand(0)).D),
                       Bits));
        break;
      case Opcode::FPToUI:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(static_cast<std::int64_t>(
            static_cast<std::uint64_t>(Eval(I.getOperand(0)).D)));
        break;
      case Opcode::FPExt:
        Frame[Info.Slots.at(&I)] = Eval(I.getOperand(0));
        break;

      case Opcode::Select: {
        RTValue C = Eval(I.getOperand(0));
        Frame[Info.Slots.at(&I)] =
            C.I ? Eval(I.getOperand(1)) : Eval(I.getOperand(2));
        break;
      }

      case Opcode::Call: {
        const auto *Callee = ir_cast<Function>(I.getOperand(0));
        std::vector<RTValue> CallArgs;
        CallArgs.reserve(I.getNumOperands() - 1);
        for (unsigned A = 1; A < I.getNumOperands(); ++A)
          CallArgs.push_back(Eval(I.getOperand(A)));
        RTValue R;
        if (Callee->isDeclaration())
          R = callRuntime(Callee->getName(), CallArgs);
        else
          R = interpret(Callee, CallArgs);
        if (!I.getType()->isVoid())
          Frame[Info.Slots.at(&I)] = R;
        break;
      }

      case Opcode::Br: {
        if (I.isConditionalBr()) {
          RTValue C = Eval(I.getOperand(0));
          PrevBlock = Block;
          Block = I.getSuccessor(C.I ? 0 : 1);
        } else {
          PrevBlock = Block;
          Block = I.getSuccessor(0);
        }
        goto NextBlock;
      }
      case Opcode::Ret:
        if (I.getNumOperands() > 0)
          ReturnValue = Eval(I.getOperand(0));
        return ReturnValue;
      case Opcode::Unreachable:
        throw std::runtime_error("executed 'unreachable'");
      case Opcode::Phi:
        throw std::runtime_error("phi after non-phi instruction");
      }
    }
    // Falling off a block without a terminator is a verifier error.
    throw std::runtime_error("block without terminator executed");

  NextBlock:;
  }
}

} // namespace mcc::interp
