//===--- Interpreter.cpp - IR execution engine ------------------------------===//
#include "interp/Interpreter.h"

#include "runtime/KMPRuntime.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mcc::interp {

using namespace ir;

namespace {

std::int64_t signExtend(std::int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  std::uint64_t Mask = (1ULL << Bits) - 1;
  std::uint64_t U = static_cast<std::uint64_t>(V) & Mask;
  if (U & (1ULL << (Bits - 1)))
    U |= ~Mask;
  return static_cast<std::int64_t>(U);
}

std::uint64_t zeroExtend(std::int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<std::uint64_t>(V);
  return static_cast<std::uint64_t>(V) & ((1ULL << Bits) - 1);
}

} // namespace

ExecutionEngine::ExecutionEngine(const ir::Module &M) : M(M) {
  // Allocate and initialize global storage.
  for (const auto &G : M.globals()) {
    std::size_t Size = static_cast<std::size_t>(G->getSizeInBytes());
    void *Mem = ::operator new(Size < 1 ? 1 : Size);
    std::memset(Mem, 0, Size);
    if (!G->IntInit.empty() || !G->FPInit.empty()) {
      unsigned ElemSize = G->getElementType()->getSizeInBytes();
      char *P = static_cast<char *>(Mem);
      if (G->getElementType()->isDouble()) {
        for (std::size_t I = 0; I < G->FPInit.size(); ++I)
          std::memcpy(P + I * ElemSize, &G->FPInit[I], sizeof(double));
      } else {
        for (std::size_t I = 0; I < G->IntInit.size(); ++I) {
          std::int64_t V = G->IntInit[I];
          std::memcpy(P + I * ElemSize, &V, ElemSize);
        }
      }
    }
    GlobalStorage[G.get()] = Mem;
  }

  // Precompute slot numbering for every defined function (the module is
  // immutable afterwards, so this map can be read concurrently).
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    FunctionInfo Info;
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      Info.Slots[F->getArg(I)] = Info.NumSlots++;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (!I->getType()->isVoid())
          Info.Slots[I.get()] = Info.NumSlots++;
    Infos[F.get()] = std::move(Info);
  }

  // Default externals: debugging prints.
  Externals["print_i64"] = [](std::span<const RTValue> Args) {
    std::printf("%lld\n", static_cast<long long>(Args[0].I));
    return RTValue{};
  };
  Externals["print_f64"] = [](std::span<const RTValue> Args) {
    std::printf("%g\n", Args[0].D);
    return RTValue{};
  };
}

ExecutionEngine::~ExecutionEngine() {
  for (auto &[G, Mem] : GlobalStorage)
    ::operator delete(Mem);
}

void ExecutionEngine::bindExternal(const std::string &Name, ExternalFn Fn) {
  Externals[Name] = std::move(Fn);
}

void *ExecutionEngine::getGlobalAddress(const std::string &Name) const {
  const GlobalVariable *G = M.getGlobal(Name);
  if (!G)
    return nullptr;
  auto It = GlobalStorage.find(G);
  return It == GlobalStorage.end() ? nullptr : It->second;
}

const ExecutionEngine::FunctionInfo &
ExecutionEngine::getInfo(const ir::Function *F) {
  auto It = Infos.find(F);
  assert(It != Infos.end() && "function not prepared");
  return It->second;
}

RTValue ExecutionEngine::runFunction(const std::string &Name,
                                     std::vector<RTValue> Args) {
  const Function *F = M.getFunction(Name);
  if (!F)
    throw std::runtime_error("no such function: " + Name);
  return runFunction(F, std::move(Args));
}

RTValue ExecutionEngine::runFunction(const ir::Function *F,
                                     std::vector<RTValue> Args) {
  return interpret(F, Args);
}

void ExecutionEngine::resetOpenMPRuntime() {
  rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();
  RT.shutdown();
  RT.resetStats();
}

RTValue ExecutionEngine::callRuntime(const std::string &Name,
                                     std::span<const RTValue> Args) {
  rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();

  if (Name == "__kmpc_fork_call") {
    const auto *Outlined =
        static_cast<const Function *>(Args[0].asPtr());
    // Args[1] = number of captured pointers (context layout), Args[2] =
    // context (array of capture addresses), Args[3] = requested threads.
    void *Context = Args[2].asPtr();
    int NumThreads = static_cast<int>(Args[3].I);
    RT.forkCall(
        [this, Outlined, Context](int Tid) {
          std::int32_t TidLocal = Tid;
          std::vector<RTValue> OutlinedArgs = {
              RTValue::ofPtr(&TidLocal), RTValue::ofPtr(&TidLocal),
              RTValue::ofPtr(Context)};
          interpret(Outlined, OutlinedArgs);
        },
        NumThreads);
    return RTValue{};
  }
  if (Name == "__kmpc_global_thread_num" || Name == "omp_get_thread_num")
    return RTValue::ofInt(RT.getThreadNum());
  if (Name == "omp_get_num_threads")
    return RTValue::ofInt(RT.getNumThreads());
  if (Name == "__kmpc_for_static_init") {
    RT.forStaticInit(static_cast<std::int32_t>(Args[1].I),
                     static_cast<std::int32_t *>(Args[2].asPtr()),
                     static_cast<std::int64_t *>(Args[3].asPtr()),
                     static_cast<std::int64_t *>(Args[4].asPtr()),
                     static_cast<std::int64_t *>(Args[5].asPtr()), Args[6].I,
                     Args[7].I);
    return RTValue{};
  }
  if (Name == "__kmpc_for_static_fini") {
    RT.forStaticFini();
    return RTValue{};
  }
  if (Name == "__kmpc_dispatch_init") {
    RT.dispatchInit(static_cast<std::int32_t>(Args[1].I), Args[2].I,
                    Args[3].I, Args[4].I);
    return RTValue{};
  }
  if (Name == "__kmpc_dispatch_next") {
    bool More =
        RT.dispatchNext(static_cast<std::int32_t *>(Args[1].asPtr()),
                        static_cast<std::int64_t *>(Args[2].asPtr()),
                        static_cast<std::int64_t *>(Args[3].asPtr()));
    return RTValue::ofInt(More ? 1 : 0);
  }
  if (Name == "__kmpc_dispatch_fini") {
    RT.dispatchFini();
    return RTValue{};
  }
  if (Name == "__kmpc_barrier") {
    RT.barrier();
    return RTValue{};
  }
  if (Name == "__kmpc_critical") {
    RT.critical();
    return RTValue{};
  }
  if (Name == "__kmpc_end_critical") {
    RT.endCritical();
    return RTValue{};
  }

  auto It = Externals.find(Name);
  if (It == Externals.end())
    throw std::runtime_error("call to unbound external function: " + Name);
  return It->second(Args);
}

RTValue ExecutionEngine::interpret(const ir::Function *F,
                                   std::span<const RTValue> Args) {
  assert(!F->isDeclaration() && "cannot interpret a declaration");
  const FunctionInfo &Info = getInfo(F);

  std::vector<RTValue> Frame(Info.NumSlots);
  std::vector<void *> FrameAllocas;
  std::uint64_t LocalCount = 0;

  for (unsigned I = 0; I < F->getNumArgs(); ++I)
    Frame[Info.Slots.at(F->getArg(I))] = Args[I];

  auto Eval = [&](const Value *V) -> RTValue {
    switch (V->getValueKind()) {
    case Value::ValueKind::ConstantInt:
      return RTValue::ofInt(ir_cast<ConstantInt>(V)->getValue());
    case Value::ValueKind::ConstantFP:
      return RTValue::ofDouble(ir_cast<ConstantFP>(V)->getValue());
    case Value::ValueKind::ConstantNull:
      return RTValue::ofInt(0);
    case Value::ValueKind::Global:
      return RTValue::ofPtr(
          GlobalStorage.at(ir_cast<GlobalVariable>(V)));
    case Value::ValueKind::Function:
      return RTValue::ofPtr(
          const_cast<Function *>(ir_cast<Function>(V)));
    default:
      return Frame[Info.Slots.at(V)];
    }
  };

  auto Cleanup = [&] {
    for (void *P : FrameAllocas)
      ::operator delete(P);
    InstructionsExecuted.fetch_add(LocalCount, std::memory_order_relaxed);
  };

  const BasicBlock *Block = F->getEntryBlock();
  const BasicBlock *PrevBlock = nullptr;
  RTValue ReturnValue{};

  while (true) {
    // Phis first: evaluate them all against the *old* frame before
    // writing, to honor parallel-copy semantics.
    std::size_t InstIdx = 0;
    {
      std::vector<std::pair<unsigned, RTValue>> PhiWrites;
      while (InstIdx < Block->size() &&
             Block->instructions()[InstIdx]->getOpcode() == Opcode::Phi) {
        const Instruction &Phi = *Block->instructions()[InstIdx];
        bool Found = false;
        for (unsigned P = 0; P < Phi.getNumIncoming(); ++P)
          if (Phi.getIncomingBlock(P) == PrevBlock) {
            PhiWrites.emplace_back(Info.Slots.at(&Phi),
                                   Eval(Phi.getIncomingValue(P)));
            Found = true;
            break;
          }
        if (!Found)
          throw std::runtime_error("phi has no incoming for predecessor");
        ++InstIdx;
        ++LocalCount;
      }
      for (auto &[Slot, V] : PhiWrites)
        Frame[Slot] = V;
    }

    for (; InstIdx < Block->size(); ++InstIdx) {
      const Instruction &I = *Block->instructions()[InstIdx];
      ++LocalCount;
      unsigned Bits = I.getType()->getBitWidth();

      switch (I.getOpcode()) {
      case Opcode::Alloca: {
        std::int64_t N = Eval(I.getOperand(0)).I;
        std::size_t Size = static_cast<std::size_t>(N) *
                           I.ElemTy->getSizeInBytes();
        void *Mem = ::operator new(Size < 1 ? 1 : Size);
        std::memset(Mem, 0, Size);
        FrameAllocas.push_back(Mem);
        Frame[Info.Slots.at(&I)] = RTValue::ofPtr(Mem);
        break;
      }
      case Opcode::Load: {
        void *P = Eval(I.getOperand(0)).asPtr();
        RTValue R{};
        switch (I.ElemTy->getKind()) {
        case TypeKind::I1:
        case TypeKind::I8: {
          std::int8_t V;
          std::memcpy(&V, P, 1);
          R.I = V;
          break;
        }
        case TypeKind::I32: {
          std::int32_t V;
          std::memcpy(&V, P, 4);
          R.I = V;
          break;
        }
        case TypeKind::I64:
        case TypeKind::Ptr: {
          std::int64_t V;
          std::memcpy(&V, P, 8);
          R.I = V;
          break;
        }
        case TypeKind::Double: {
          std::memcpy(&R.D, P, 8);
          break;
        }
        case TypeKind::Void:
          break;
        }
        Frame[Info.Slots.at(&I)] = R;
        break;
      }
      case Opcode::Store: {
        RTValue V = Eval(I.getOperand(0));
        void *P = Eval(I.getOperand(1)).asPtr();
        const IRType *Ty = I.getOperand(0)->getType();
        switch (Ty->getKind()) {
        case TypeKind::I1:
        case TypeKind::I8: {
          std::int8_t B = static_cast<std::int8_t>(V.I);
          std::memcpy(P, &B, 1);
          break;
        }
        case TypeKind::I32: {
          std::int32_t W = static_cast<std::int32_t>(V.I);
          std::memcpy(P, &W, 4);
          break;
        }
        case TypeKind::I64:
        case TypeKind::Ptr:
          std::memcpy(P, &V.I, 8);
          break;
        case TypeKind::Double:
          std::memcpy(P, &V.D, 8);
          break;
        case TypeKind::Void:
          break;
        }
        break;
      }
      case Opcode::GEP: {
        char *Base = static_cast<char *>(Eval(I.getOperand(0)).asPtr());
        std::int64_t Index = Eval(I.getOperand(1)).I;
        Frame[Info.Slots.at(&I)] =
            RTValue::ofPtr(Base + Index * I.ElemTy->getSizeInBytes());
        break;
      }

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::UDiv:
      case Opcode::SRem:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::AShr:
      case Opcode::LShr: {
        std::int64_t A = Eval(I.getOperand(0)).I;
        std::int64_t B = Eval(I.getOperand(1)).I;
        std::int64_t R = 0;
        switch (I.getOpcode()) {
        case Opcode::Add:
          R = A + B;
          break;
        case Opcode::Sub:
          R = A - B;
          break;
        case Opcode::Mul:
          R = A * B;
          break;
        case Opcode::SDiv:
          if (B == 0)
            throw std::runtime_error("integer division by zero");
          R = (A == INT64_MIN && B == -1) ? A : A / B;
          break;
        case Opcode::UDiv:
          if (B == 0)
            throw std::runtime_error("integer division by zero");
          R = static_cast<std::int64_t>(zeroExtend(A, Bits) /
                                        zeroExtend(B, Bits));
          break;
        case Opcode::SRem:
          if (B == 0)
            throw std::runtime_error("integer remainder by zero");
          R = (A == INT64_MIN && B == -1) ? 0 : A % B;
          break;
        case Opcode::URem:
          if (B == 0)
            throw std::runtime_error("integer remainder by zero");
          R = static_cast<std::int64_t>(zeroExtend(A, Bits) %
                                        zeroExtend(B, Bits));
          break;
        case Opcode::And:
          R = A & B;
          break;
        case Opcode::Or:
          R = A | B;
          break;
        case Opcode::Xor:
          R = A ^ B;
          break;
        case Opcode::Shl:
          R = A << (B & (Bits - 1));
          break;
        case Opcode::AShr:
          R = signExtend(A, Bits) >> (B & (Bits - 1));
          break;
        case Opcode::LShr:
          R = static_cast<std::int64_t>(zeroExtend(A, Bits) >>
                                        (B & (Bits - 1)));
          break;
        default:
          break;
        }
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(signExtend(R, Bits));
        break;
      }

      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv: {
        double A = Eval(I.getOperand(0)).D;
        double B = Eval(I.getOperand(1)).D;
        double R = 0;
        switch (I.getOpcode()) {
        case Opcode::FAdd:
          R = A + B;
          break;
        case Opcode::FSub:
          R = A - B;
          break;
        case Opcode::FMul:
          R = A * B;
          break;
        case Opcode::FDiv:
          R = A / B;
          break;
        default:
          break;
        }
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(R);
        break;
      }
      case Opcode::FNeg:
        Frame[Info.Slots.at(&I)] =
            RTValue::ofDouble(-Eval(I.getOperand(0)).D);
        break;

      case Opcode::ICmp: {
        unsigned OpBits = I.getOperand(0)->getType()->getBitWidth();
        std::int64_t A = Eval(I.getOperand(0)).I;
        std::int64_t B = Eval(I.getOperand(1)).I;
        std::int64_t SA = signExtend(A, OpBits), SB = signExtend(B, OpBits);
        std::uint64_t UA = zeroExtend(A, OpBits), UB = zeroExtend(B, OpBits);
        bool R = false;
        switch (I.Pred) {
        case CmpPred::EQ:
          R = UA == UB;
          break;
        case CmpPred::NE:
          R = UA != UB;
          break;
        case CmpPred::SLT:
          R = SA < SB;
          break;
        case CmpPred::SLE:
          R = SA <= SB;
          break;
        case CmpPred::SGT:
          R = SA > SB;
          break;
        case CmpPred::SGE:
          R = SA >= SB;
          break;
        case CmpPred::ULT:
          R = UA < UB;
          break;
        case CmpPred::ULE:
          R = UA <= UB;
          break;
        case CmpPred::UGT:
          R = UA > UB;
          break;
        case CmpPred::UGE:
          R = UA >= UB;
          break;
        default:
          break;
        }
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(R ? 1 : 0);
        break;
      }
      case Opcode::FCmp: {
        double A = Eval(I.getOperand(0)).D;
        double B = Eval(I.getOperand(1)).D;
        bool R = false;
        switch (I.Pred) {
        case CmpPred::OEQ:
          R = A == B;
          break;
        case CmpPred::ONE:
          R = A != B;
          break;
        case CmpPred::OLT:
          R = A < B;
          break;
        case CmpPred::OLE:
          R = A <= B;
          break;
        case CmpPred::OGT:
          R = A > B;
          break;
        case CmpPred::OGE:
          R = A >= B;
          break;
        default:
          break;
        }
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(R ? 1 : 0);
        break;
      }

      case Opcode::ZExt:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(static_cast<std::int64_t>(
            zeroExtend(Eval(I.getOperand(0)).I,
                       I.getOperand(0)->getType()->getBitWidth())));
        break;
      case Opcode::SExt:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(
            signExtend(Eval(I.getOperand(0)).I,
                       I.getOperand(0)->getType()->getBitWidth()));
        break;
      case Opcode::Trunc:
        Frame[Info.Slots.at(&I)] =
            RTValue::ofInt(signExtend(Eval(I.getOperand(0)).I, Bits));
        break;
      case Opcode::SIToFP:
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(
            static_cast<double>(signExtend(Eval(I.getOperand(0)).I,
                                           I.getOperand(0)->getType()
                                               ->getBitWidth())));
        break;
      case Opcode::UIToFP:
        Frame[Info.Slots.at(&I)] = RTValue::ofDouble(
            static_cast<double>(zeroExtend(Eval(I.getOperand(0)).I,
                                           I.getOperand(0)->getType()
                                               ->getBitWidth())));
        break;
      case Opcode::FPToSI:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(
            signExtend(static_cast<std::int64_t>(Eval(I.getOperand(0)).D),
                       Bits));
        break;
      case Opcode::FPToUI:
        Frame[Info.Slots.at(&I)] = RTValue::ofInt(static_cast<std::int64_t>(
            static_cast<std::uint64_t>(Eval(I.getOperand(0)).D)));
        break;
      case Opcode::FPExt:
        Frame[Info.Slots.at(&I)] = Eval(I.getOperand(0));
        break;

      case Opcode::Select: {
        RTValue C = Eval(I.getOperand(0));
        Frame[Info.Slots.at(&I)] =
            C.I ? Eval(I.getOperand(1)) : Eval(I.getOperand(2));
        break;
      }

      case Opcode::Call: {
        const auto *Callee = ir_cast<Function>(I.getOperand(0));
        std::vector<RTValue> CallArgs;
        CallArgs.reserve(I.getNumOperands() - 1);
        for (unsigned A = 1; A < I.getNumOperands(); ++A)
          CallArgs.push_back(Eval(I.getOperand(A)));
        RTValue R;
        if (Callee->isDeclaration())
          R = callRuntime(Callee->getName(), CallArgs);
        else
          R = interpret(Callee, CallArgs);
        if (!I.getType()->isVoid())
          Frame[Info.Slots.at(&I)] = R;
        break;
      }

      case Opcode::Br: {
        if (I.isConditionalBr()) {
          RTValue C = Eval(I.getOperand(0));
          PrevBlock = Block;
          Block = I.getSuccessor(C.I ? 0 : 1);
        } else {
          PrevBlock = Block;
          Block = I.getSuccessor(0);
        }
        goto NextBlock;
      }
      case Opcode::Ret:
        if (I.getNumOperands() > 0)
          ReturnValue = Eval(I.getOperand(0));
        Cleanup();
        return ReturnValue;
      case Opcode::Unreachable:
        Cleanup();
        throw std::runtime_error("executed 'unreachable'");
      case Opcode::Phi:
        throw std::runtime_error("phi after non-phi instruction");
      }
    }
    // Falling off a block without a terminator is a verifier error.
    Cleanup();
    throw std::runtime_error("block without terminator executed");

  NextBlock:;
  }
}

} // namespace mcc::interp
