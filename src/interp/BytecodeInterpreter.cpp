//===--- BytecodeInterpreter.cpp - Threaded bytecode dispatch loop ---------===//
//
// The execution half of the bytecode backend: a direct-threaded dispatch
// loop over the flat instruction array BytecodeCompiler produced. With
// MCC_THREADED_DISPATCH (and a compiler providing computed goto) every
// handler jumps straight to the next handler through a label table —
// there is no central loop, so the branch predictor sees one indirect
// jump per *handler* rather than one shared, unpredictable jump. The
// portable fallback is a switch in a loop, bit-for-bit identical in
// behaviour.
//
// Frames live on the calling thread's FrameStack: one bump allocation
// covers the register file and the coalesced alloca arena, the constant
// pool is memcpy'd into the frame prefix, and everything is released by
// mark on exit (exception-safe via the guard). Nothing here takes a lock:
// the bytecode table is immutable after engine construction, so hot-team
// threads execute outlined regions concurrently with zero re-translation.
//
//===----------------------------------------------------------------------===//
#include "interp/Bytecode.h"
#include "interp/FrameStack.h"
#include "interp/InterpOps.h"
#include "interp/Interpreter.h"

#include <cstring>
#include <stdexcept>

#ifndef MCC_THREADED_DISPATCH
#define MCC_THREADED_DISPATCH 1
#endif

#if MCC_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define MCC_BC_THREADED 1
#else
#define MCC_BC_THREADED 0
#endif

namespace mcc::interp {

namespace bc {
const char *dispatchModeName() {
  return MCC_BC_THREADED ? "threaded" : "switch";
}
} // namespace bc

namespace {

inline std::int64_t applyFused(bc::FusedOp O, std::int64_t A,
                               std::int64_t B) {
  switch (O) {
  case bc::FusedOp::Add:
    return A + B;
  case bc::FusedOp::Sub:
    return A - B;
  case bc::FusedOp::Mul:
    return A * B;
  case bc::FusedOp::And:
    return A & B;
  case bc::FusedOp::Or:
    return A | B;
  case bc::FusedOp::Xor:
    return A ^ B;
  }
  return 0;
}

} // namespace

RTValue ExecutionEngine::executeBytecode(std::uint32_t FnIdx,
                                         std::span<const RTValue> Args) {
  const bc::BCFunction &BF = BCMod->Functions[FnIdx];
  const RTValue *Pool = PatchedPools.data() + PoolOffsets[FnIdx];

  FrameStack &FS = threadFrameStack();
  std::uint64_t Insts = 0, Super = 0;
  std::vector<void *> DynAllocas;

  // Releases the frame, frees dynamic allocas and flushes the local
  // counters — on return and on unwinding (division traps, unreachable).
  struct Cleanup {
    ExecutionEngine &EE;
    FrameStack &FS;
    FrameStack::Mark M;
    std::vector<void *> &Dyn;
    std::uint64_t &Insts, &Super;
    ~Cleanup() {
      for (void *P : Dyn)
        ::operator delete(P);
      FS.release(M);
      EE.InstructionsExecuted.fetch_add(Insts, std::memory_order_relaxed);
      EE.SuperinstHits.fetch_add(Super, std::memory_order_relaxed);
      EE.FramesExecuted.fetch_add(1, std::memory_order_relaxed);
    }
  } Guard{*this, FS, FS.mark(), DynAllocas, Insts, Super};

  // One allocation: [registers][alloca arena]. RTValue slots are 16 bytes,
  // so the arena tail stays 16-aligned.
  char *Mem = static_cast<char *>(
      FS.allocate(BF.NumFrame * sizeof(RTValue) + BF.ArenaBytes));
  auto *Frame = reinterpret_cast<RTValue *>(Mem);
  char *Arena = Mem + BF.NumFrame * sizeof(RTValue);
  std::memcpy(Frame, Pool, BF.NumConsts * sizeof(RTValue));
  std::memset(static_cast<void *>(Frame + BF.NumConsts), 0,
              (BF.NumFrame - BF.NumConsts) * sizeof(RTValue));
  for (std::uint32_t K = 0; K < BF.NumArgs; ++K)
    Frame[BF.NumConsts + K] = Args[K];

  const bc::Inst *Code = BF.Code.data();
  const bc::Inst *IP = Code;

  // OSR probe state, armed only in tiered mode: every taken backward
  // branch bumps the counter, and crossing the threshold promotes this
  // *running* frame to native code (the frame layout is shared, so the
  // handoff is just "resume natively at the branch target"). A fallback
  // verdict disarms the probe — this frame stays on bytecode for good.
  bool OSRCheck = OSRActive;
  std::uint64_t BackEdges = 0;
#define MCC_BC_BACKEDGE(OldIP)                                              \
  do {                                                                      \
    if (OSRCheck && IP <= (OldIP) && ++BackEdges >= OSRThreshold) {         \
      RTValue OSRRet;                                                       \
      if (tryOSR(FnIdx, Frame, Arena,                                       \
                 static_cast<std::uint32_t>(IP - Code), DynAllocas,         \
                 OSRRet))                                                   \
        return OSRRet;                                                      \
      OSRCheck = false;                                                     \
    }                                                                       \
  } while (0)

#if MCC_BC_THREADED
#define VMCASE(name) Lbl_##name
#define VMNEXT()                                                            \
  do {                                                                      \
    ++Insts;                                                                \
    goto *JumpTable[static_cast<std::uint8_t>(IP->Code)];                   \
  } while (0)
  // Must mirror bc::Op declaration order exactly.
  static const void *const JumpTable[] = {
      &&Lbl_Mov,    &&Lbl_Add,     &&Lbl_Sub,        &&Lbl_Mul,
      &&Lbl_SDiv,   &&Lbl_UDiv,    &&Lbl_SRem,       &&Lbl_URem,
      &&Lbl_And,    &&Lbl_Or,      &&Lbl_Xor,        &&Lbl_Shl,
      &&Lbl_AShr,   &&Lbl_LShr,    &&Lbl_FAdd,       &&Lbl_FSub,
      &&Lbl_FMul,   &&Lbl_FDiv,    &&Lbl_FNeg,       &&Lbl_ICmp,
      &&Lbl_FCmp,   &&Lbl_SExt,    &&Lbl_ZExt,       &&Lbl_Trunc,
      &&Lbl_SIToFP, &&Lbl_UIToFP,  &&Lbl_FPToSI,     &&Lbl_FPToUI,
      &&Lbl_Load1,  &&Lbl_Load4,   &&Lbl_Load8,      &&Lbl_LoadF64,
      &&Lbl_Store1, &&Lbl_Store4,  &&Lbl_Store8,     &&Lbl_StoreF64,
      &&Lbl_Gep,    &&Lbl_AllocaFixed, &&Lbl_AllocaDyn, &&Lbl_Select,
      &&Lbl_Jmp,    &&Lbl_CondBr,  &&Lbl_Ret,        &&Lbl_Unreachable,
      &&Lbl_CallBC, &&Lbl_CallRT,  &&Lbl_CmpBr,      &&Lbl_LoadOpStore4,
      &&Lbl_LoadOpStore8,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) ==
                static_cast<std::size_t>(bc::Op::NumOps));
  VMNEXT();
#else
#define VMCASE(name) case bc::Op::name
#define VMNEXT() break
  for (;;) {
    ++Insts;
    switch (IP->Code) {
#endif

  VMCASE(Mov) : {
    const bc::Inst &In = *IP;
    Frame[In.A] = Frame[In.B];
    ++IP;
    VMNEXT();
  }
  VMCASE(Add) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(Frame[In.B].I + Frame[In.C].I, In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(Sub) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(Frame[In.B].I - Frame[In.C].I, In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(Mul) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(Frame[In.B].I * Frame[In.C].I, In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(SDiv) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I =
        ops::evalIntBinop(ir::Opcode::SDiv, Frame[In.B].I, Frame[In.C].I,
                          In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(UDiv) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I =
        ops::evalIntBinop(ir::Opcode::UDiv, Frame[In.B].I, Frame[In.C].I,
                          In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(SRem) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I =
        ops::evalIntBinop(ir::Opcode::SRem, Frame[In.B].I, Frame[In.C].I,
                          In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(URem) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I =
        ops::evalIntBinop(ir::Opcode::URem, Frame[In.B].I, Frame[In.C].I,
                          In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(And) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = Frame[In.B].I & Frame[In.C].I;
    ++IP;
    VMNEXT();
  }
  VMCASE(Or) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = Frame[In.B].I | Frame[In.C].I;
    ++IP;
    VMNEXT();
  }
  VMCASE(Xor) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = Frame[In.B].I ^ Frame[In.C].I;
    ++IP;
    VMNEXT();
  }
  VMCASE(Shl) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(
        Frame[In.B].I << (Frame[In.C].I & (In.W - 1)), In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(AShr) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(
        ops::signExtend(Frame[In.B].I, In.W) >> (Frame[In.C].I & (In.W - 1)),
        In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(LShr) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(
        static_cast<std::int64_t>(ops::zeroExtend(Frame[In.B].I, In.W) >>
                                  (Frame[In.C].I & (In.W - 1))),
        In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(FAdd) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D = Frame[In.B].D + Frame[In.C].D;
    ++IP;
    VMNEXT();
  }
  VMCASE(FSub) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D = Frame[In.B].D - Frame[In.C].D;
    ++IP;
    VMNEXT();
  }
  VMCASE(FMul) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D = Frame[In.B].D * Frame[In.C].D;
    ++IP;
    VMNEXT();
  }
  VMCASE(FDiv) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D = Frame[In.B].D / Frame[In.C].D;
    ++IP;
    VMNEXT();
  }
  VMCASE(FNeg) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D = -Frame[In.B].D;
    ++IP;
    VMNEXT();
  }
  VMCASE(ICmp) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::evalICmp(static_cast<ir::CmpPred>(In.Sub),
                                  Frame[In.B].I, Frame[In.C].I, In.W)
                        ? 1
                        : 0;
    ++IP;
    VMNEXT();
  }
  VMCASE(FCmp) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::evalFCmp(static_cast<ir::CmpPred>(In.Sub),
                                  Frame[In.B].D, Frame[In.C].D)
                        ? 1
                        : 0;
    ++IP;
    VMNEXT();
  }
  VMCASE(SExt) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(Frame[In.B].I, In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(ZExt) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I =
        static_cast<std::int64_t>(ops::zeroExtend(Frame[In.B].I, In.W));
    ++IP;
    VMNEXT();
  }
  VMCASE(Trunc) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(Frame[In.B].I, In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(SIToFP) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D =
        static_cast<double>(ops::signExtend(Frame[In.B].I, In.W));
    ++IP;
    VMNEXT();
  }
  VMCASE(UIToFP) : {
    const bc::Inst &In = *IP;
    Frame[In.A].D =
        static_cast<double>(ops::zeroExtend(Frame[In.B].I, In.W));
    ++IP;
    VMNEXT();
  }
  VMCASE(FPToSI) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = ops::signExtend(
        static_cast<std::int64_t>(Frame[In.B].D), In.W);
    ++IP;
    VMNEXT();
  }
  VMCASE(FPToUI) : {
    const bc::Inst &In = *IP;
    Frame[In.A].I = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(Frame[In.B].D));
    ++IP;
    VMNEXT();
  }
  VMCASE(Load1) : {
    const bc::Inst &In = *IP;
    std::int8_t V;
    std::memcpy(&V, Frame[In.B].asPtr(), 1);
    Frame[In.A].I = V;
    ++IP;
    VMNEXT();
  }
  VMCASE(Load4) : {
    const bc::Inst &In = *IP;
    std::int32_t V;
    std::memcpy(&V, Frame[In.B].asPtr(), 4);
    Frame[In.A].I = V;
    ++IP;
    VMNEXT();
  }
  VMCASE(Load8) : {
    const bc::Inst &In = *IP;
    std::int64_t V;
    std::memcpy(&V, Frame[In.B].asPtr(), 8);
    Frame[In.A].I = V;
    ++IP;
    VMNEXT();
  }
  VMCASE(LoadF64) : {
    const bc::Inst &In = *IP;
    std::memcpy(&Frame[In.A].D, Frame[In.B].asPtr(), 8);
    ++IP;
    VMNEXT();
  }
  VMCASE(Store1) : {
    const bc::Inst &In = *IP;
    auto V = static_cast<std::int8_t>(Frame[In.A].I);
    std::memcpy(Frame[In.B].asPtr(), &V, 1);
    ++IP;
    VMNEXT();
  }
  VMCASE(Store4) : {
    const bc::Inst &In = *IP;
    auto V = static_cast<std::int32_t>(Frame[In.A].I);
    std::memcpy(Frame[In.B].asPtr(), &V, 4);
    ++IP;
    VMNEXT();
  }
  VMCASE(Store8) : {
    const bc::Inst &In = *IP;
    std::memcpy(Frame[In.B].asPtr(), &Frame[In.A].I, 8);
    ++IP;
    VMNEXT();
  }
  VMCASE(StoreF64) : {
    const bc::Inst &In = *IP;
    std::memcpy(Frame[In.B].asPtr(), &Frame[In.A].D, 8);
    ++IP;
    VMNEXT();
  }
  VMCASE(Gep) : {
    const bc::Inst &In = *IP;
    Frame[In.A] = RTValue::ofPtr(static_cast<char *>(Frame[In.B].asPtr()) +
                                 Frame[In.C].I * In.Imm);
    ++IP;
    VMNEXT();
  }
  VMCASE(AllocaFixed) : {
    const bc::Inst &In = *IP;
    char *P = Arena + In.Imm;
    std::memset(P, 0, In.B);
    Frame[In.A] = RTValue::ofPtr(P);
    ++IP;
    VMNEXT();
  }
  VMCASE(AllocaDyn) : {
    const bc::Inst &In = *IP;
    auto Size = static_cast<std::size_t>(Frame[In.B].I) *
                static_cast<std::size_t>(In.Imm);
    if (Size < 1)
      Size = 1;
    void *P = ::operator new(Size);
    std::memset(P, 0, Size);
    DynAllocas.push_back(P);
    Frame[In.A] = RTValue::ofPtr(P);
    ++IP;
    VMNEXT();
  }
  VMCASE(Select) : {
    const bc::Inst &In = *IP;
    Frame[In.A] = Frame[In.B].I ? Frame[In.C] : Frame[In.D];
    ++IP;
    VMNEXT();
  }
  VMCASE(Jmp) : {
    const bc::Inst *Old = IP;
    IP = Code + IP->A;
    MCC_BC_BACKEDGE(Old);
    VMNEXT();
  }
  VMCASE(CondBr) : {
    const bc::Inst &In = *IP;
    const bc::Inst *Old = IP;
    IP = Code + (Frame[In.A].I ? In.B : In.C);
    MCC_BC_BACKEDGE(Old);
    VMNEXT();
  }
  VMCASE(Ret) : {
    const bc::Inst &In = *IP;
    return In.Sub ? Frame[In.A] : RTValue{};
  }
  VMCASE(Unreachable) : {
    throw std::runtime_error("executed 'unreachable'");
  }
  VMCASE(CallBC) : {
    const bc::Inst &In = *IP;
    const std::uint32_t *AP = BF.ArgPool.data() + In.C;
    RTValue ArgBuf[12];
    RTValue R;
    if (In.D <= 12) {
      for (std::uint32_t K = 0; K < In.D; ++K)
        ArgBuf[K] = Frame[AP[K]];
      std::span<const RTValue> CallArgs(ArgBuf, In.D);
      R = JIT ? executeTiered(In.B, CallArgs)
              : executeBytecode(In.B, CallArgs);
    } else {
      std::vector<RTValue> Big(In.D);
      for (std::uint32_t K = 0; K < In.D; ++K)
        Big[K] = Frame[AP[K]];
      R = JIT ? executeTiered(In.B, Big) : executeBytecode(In.B, Big);
    }
    Frame[In.A] = R;
    ++IP;
    VMNEXT();
  }
  VMCASE(CallRT) : {
    const bc::Inst &In = *IP;
    const std::uint32_t *AP = BF.ArgPool.data() + In.C;
    RTValue ArgBuf[12];
    RTValue R;
    if (In.D <= 12) {
      for (std::uint32_t K = 0; K < In.D; ++K)
        ArgBuf[K] = Frame[AP[K]];
      R = callRuntimeResolved(static_cast<bc::RTCallee>(In.Sub),
                              BCMod->ExternalNames[In.B],
                              std::span<const RTValue>(ArgBuf, In.D));
    } else {
      std::vector<RTValue> Big(In.D);
      for (std::uint32_t K = 0; K < In.D; ++K)
        Big[K] = Frame[AP[K]];
      R = callRuntimeResolved(static_cast<bc::RTCallee>(In.Sub),
                              BCMod->ExternalNames[In.B], Big);
    }
    Frame[In.A] = R;
    ++IP;
    VMNEXT();
  }
  VMCASE(CmpBr) : {
    const bc::Inst &In = *IP;
    bool R = ops::evalICmp(static_cast<ir::CmpPred>(In.Sub), Frame[In.B].I,
                           Frame[In.C].I, In.W);
    Frame[In.A].I = R ? 1 : 0;
    const bc::Inst *Old = IP;
    IP = Code + (R ? static_cast<std::uint32_t>(In.Imm)
                   : static_cast<std::uint32_t>(In.Imm >> 32));
    ++Super;
    MCC_BC_BACKEDGE(Old);
    VMNEXT();
  }
  VMCASE(LoadOpStore4) : {
    const bc::Inst &In = *IP;
    char *P = static_cast<char *>(Frame[In.A].asPtr());
    std::int32_t L;
    std::memcpy(&L, P, 4);
    Frame[In.C].I = L;
    // Read the rhs only now: it may be the load's own register (x op x).
    std::int64_t R = ops::signExtend(
        applyFused(static_cast<bc::FusedOp>(In.Sub), Frame[In.C].I,
                   Frame[In.B].I),
        32);
    Frame[In.D].I = R;
    auto S = static_cast<std::int32_t>(R);
    std::memcpy(P, &S, 4);
    ++Super;
    ++IP;
    VMNEXT();
  }
  VMCASE(LoadOpStore8) : {
    const bc::Inst &In = *IP;
    char *P = static_cast<char *>(Frame[In.A].asPtr());
    std::int64_t L;
    std::memcpy(&L, P, 8);
    Frame[In.C].I = L;
    std::int64_t R = applyFused(static_cast<bc::FusedOp>(In.Sub),
                                Frame[In.C].I, Frame[In.B].I);
    Frame[In.D].I = R;
    std::memcpy(P, &R, 8);
    ++Super;
    ++IP;
    VMNEXT();
  }

#if !MCC_BC_THREADED
    default:
      throw std::runtime_error("bytecode: corrupt opcode");
    }
  }
#endif
#undef VMCASE
#undef VMNEXT
#undef MCC_BC_BACKEDGE
}

} // namespace mcc::interp
