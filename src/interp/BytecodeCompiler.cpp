//===--- BytecodeCompiler.cpp - ir::Function -> flat bytecode --------------===//
//
// One-time translation pass (per module) behind the bytecode backend.
// Pipeline, per function:
//
//   1. constant collection   every constant operand gets a pool slot
//                            (globals become relocations)
//   2. register allocation   ir::numberFunctionValues -> dense frame
//                            indices; fixed-size allocas laid out in a
//                            per-frame arena
//   3. linear emission       blocks in order, branch targets as fixups;
//                            `cmp + cond-br` and `load + int-op + store`
//                            windows fuse into superinstructions
//   4. phi pre-resolution    each CFG edge into a phi-bearing block gets
//                            an out-of-line parallel-copy trampoline
//                            (sequentialized moves, cycles broken through
//                            the scratch register) ending in a jump
//   5. fixup patching        edges resolve to trampolines where they
//                            exist, block starts otherwise
//
//===----------------------------------------------------------------------===//
#include "interp/Bytecode.h"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace mcc::interp::bc {

using namespace ir;

RTCallee resolveRuntimeCallee(std::string_view Name) {
  if (Name == "__kmpc_fork_call")
    return RTCallee::ForkCall;
  if (Name == "__kmpc_global_thread_num" || Name == "omp_get_thread_num")
    return RTCallee::GlobalThreadNum;
  if (Name == "omp_get_num_threads")
    return RTCallee::NumThreads;
  if (Name == "__kmpc_for_static_init")
    return RTCallee::ForStaticInit;
  if (Name == "__kmpc_for_static_fini")
    return RTCallee::ForStaticFini;
  if (Name == "__kmpc_dispatch_init")
    return RTCallee::DispatchInit;
  if (Name == "__kmpc_dispatch_next")
    return RTCallee::DispatchNext;
  if (Name == "__kmpc_dispatch_fini")
    return RTCallee::DispatchFini;
  if (Name == "__kmpc_barrier")
    return RTCallee::Barrier;
  if (Name == "__kmpc_critical")
    return RTCallee::Critical;
  if (Name == "__kmpc_end_critical")
    return RTCallee::EndCritical;
  return RTCallee::External;
}

namespace {

bool isConstantOperand(const Value *V) {
  switch (V->getValueKind()) {
  case Value::ValueKind::ConstantInt:
  case Value::ValueKind::ConstantFP:
  case Value::ValueKind::ConstantNull:
  case Value::ValueKind::Global:
  case Value::ValueKind::Function:
    return true;
  default:
    return false;
  }
}

Op intBinopOp(Opcode O) {
  switch (O) {
  case Opcode::Add:
    return Op::Add;
  case Opcode::Sub:
    return Op::Sub;
  case Opcode::Mul:
    return Op::Mul;
  case Opcode::SDiv:
    return Op::SDiv;
  case Opcode::UDiv:
    return Op::UDiv;
  case Opcode::SRem:
    return Op::SRem;
  case Opcode::URem:
    return Op::URem;
  case Opcode::And:
    return Op::And;
  case Opcode::Or:
    return Op::Or;
  case Opcode::Xor:
    return Op::Xor;
  case Opcode::Shl:
    return Op::Shl;
  case Opcode::AShr:
    return Op::AShr;
  case Opcode::LShr:
    return Op::LShr;
  default:
    throw std::runtime_error("not an integer binop");
  }
}

/// Trap-free binops eligible for load-op-store fusion.
bool fusableIntOp(Opcode O, FusedOp &Out) {
  switch (O) {
  case Opcode::Add:
    Out = FusedOp::Add;
    return true;
  case Opcode::Sub:
    Out = FusedOp::Sub;
    return true;
  case Opcode::Mul:
    Out = FusedOp::Mul;
    return true;
  case Opcode::And:
    Out = FusedOp::And;
    return true;
  case Opcode::Or:
    Out = FusedOp::Or;
    return true;
  case Opcode::Xor:
    Out = FusedOp::Xor;
    return true;
  default:
    return false;
  }
}

class FunctionCompiler {
public:
  FunctionCompiler(const Function &F, BytecodeModule &Mod,
                   std::unordered_map<std::string, std::uint32_t> &ExtIndex)
      : F(F), Mod(Mod), ExtIndex(ExtIndex), VN(numberFunctionValues(F)) {}

  BCFunction compile() {
    Out.IRFn = &F;
    collectConstants();
    layoutAllocas();
    Out.NumConsts = static_cast<std::uint32_t>(Out.ConstPoolInts.size());
    Out.NumArgs = VN.NumArgs;
    Scratch = Out.NumConsts + VN.NumValues;
    Out.NumFrame = Scratch + 1;

    for (const auto &BB : F.blocks())
      emitBlock(*BB);
    emitPhiTrampolines();
    patchFixups();
    computeSlotMeta();
    return std::move(Out);
  }

private:
  enum Field { FieldA, FieldB, FieldC, FieldImmLo, FieldImmHi };
  struct Fixup {
    std::size_t Idx;
    Field Where;
    const BasicBlock *From;
    const BasicBlock *To;
  };

  const Function &F;
  BytecodeModule &Mod;
  std::unordered_map<std::string, std::uint32_t> &ExtIndex;
  ValueNumbering VN;
  BCFunction Out;
  std::uint32_t Scratch = 0;
  std::unordered_map<const Value *, std::uint32_t> ConstSlot;
  std::unordered_map<const BasicBlock *, std::uint32_t> BlockStart;
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, std::uint32_t>
      EdgeTramp;
  std::vector<Fixup> Fixups;

  // --- Phase 1: constants ------------------------------------------------

  void addConstant(const Value *V) {
    if (ConstSlot.count(V))
      return;
    auto Slot = static_cast<std::uint32_t>(Out.ConstPoolInts.size());
    std::int64_t I = 0;
    double D = 0.0;
    switch (V->getValueKind()) {
    case Value::ValueKind::ConstantInt:
      I = ir_cast<ConstantInt>(V)->getValue();
      break;
    case Value::ValueKind::ConstantFP:
      D = ir_cast<ConstantFP>(V)->getValue();
      break;
    case Value::ValueKind::ConstantNull:
      break;
    case Value::ValueKind::Global:
      // Address is engine state, not translation state: record a
      // relocation and let each engine patch its private pool copy.
      Out.GlobalRelocs.emplace_back(Slot, ir_cast<GlobalVariable>(V));
      break;
    case Value::ValueKind::Function:
      // Function "addresses" are the ir nodes themselves (the runtime's
      // fork trampoline casts them back), identical for every engine.
      I = static_cast<std::int64_t>(
          reinterpret_cast<std::intptr_t>(ir_cast<Function>(V)));
      break;
    default:
      return;
    }
    ConstSlot[V] = Slot;
    Out.ConstPoolInts.push_back(I);
    Out.ConstPoolFPs.push_back(D);
  }

  void collectConstants() {
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions()) {
        switch (I->getOpcode()) {
        case Opcode::Call:
          for (unsigned K = 1; K < I->getNumOperands(); ++K)
            if (isConstantOperand(I->getOperand(K)))
              addConstant(I->getOperand(K));
          break;
        case Opcode::Phi:
          for (unsigned K = 0; K < I->getNumIncoming(); ++K)
            if (isConstantOperand(I->getIncomingValue(K)))
              addConstant(I->getIncomingValue(K));
          break;
        case Opcode::Br:
          if (I->isConditionalBr() && isConstantOperand(I->getOperand(0)))
            addConstant(I->getOperand(0));
          break;
        default:
          for (const Value *V : I->operands())
            if (isConstantOperand(V))
              addConstant(V);
          break;
        }
      }
  }

  // --- Phase 2: frame layout ---------------------------------------------

  std::map<const Instruction *, std::uint32_t> AllocaOffset;
  std::map<const Instruction *, std::uint32_t> AllocaSize;

  void layoutAllocas() {
    std::size_t Offset = 0;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions()) {
        if (I->getOpcode() != Opcode::Alloca)
          continue;
        const auto *N = ir_dyn_cast<ConstantInt>(I->getOperand(0));
        if (!N)
          continue; // variable count: stays a heap allocation
        std::size_t Size = static_cast<std::size_t>(N->getValue()) *
                           I->ElemTy->getSizeInBytes();
        if (Size < 1)
          Size = 1;
        if (Size > UINT32_MAX / 2)
          continue;
        AllocaOffset[I.get()] = static_cast<std::uint32_t>(Offset);
        AllocaSize[I.get()] = static_cast<std::uint32_t>(Size);
        Offset = (Offset + Size + 15) & ~std::size_t(15);
      }
    Out.ArenaBytes = static_cast<std::uint32_t>(Offset);
  }

  std::uint32_t operandIndex(const Value *V) {
    if (isConstantOperand(V))
      return ConstSlot.at(V);
    auto It = VN.Index.find(V);
    if (It == VN.Index.end())
      throw std::runtime_error("bytecode: operand without a register: " +
                               V->getName());
    return Out.NumConsts + It->second;
  }

  /// Result register; void-producing calls write the scratch slot so the
  /// dispatch loop needs no has-result branch.
  std::uint32_t destIndex(const Instruction &I) {
    if (I.getType()->isVoid())
      return Scratch;
    return Out.NumConsts + VN.Index.at(&I);
  }

  // --- Phase 3: emission -------------------------------------------------

  Inst &emit(Op Code) {
    Inst In;
    In.Code = Code;
    Out.Code.push_back(In);
    return Out.Code.back();
  }

  void branchFixup(Field Where, const BasicBlock *From,
                   const BasicBlock *To) {
    Fixups.push_back({Out.Code.size() - 1, Where, From, To});
  }

  std::uint32_t externalNameIndex(const std::string &Name) {
    auto It = ExtIndex.find(Name);
    if (It != ExtIndex.end())
      return It->second;
    auto Idx = static_cast<std::uint32_t>(Mod.ExternalNames.size());
    Mod.ExternalNames.push_back(Name);
    ExtIndex.emplace(Name, Idx);
    return Idx;
  }

  static bool loadWidthForFusion(const Instruction &Load, Op &Fused) {
    if (!Load.ElemTy)
      return false;
    switch (Load.ElemTy->getKind()) {
    case TypeKind::I32:
      Fused = Op::LoadOpStore4;
      return true;
    case TypeKind::I64:
      Fused = Op::LoadOpStore8;
      return true;
    default:
      return false;
    }
  }

  /// Peeks at Insts[Idx..Idx+2] for `x = load p; y = x op rhs; store y, p`.
  bool tryFuseLoadOpStore(const BasicBlock &BB, std::size_t Idx) {
    const auto &Insts = BB.instructions();
    if (Idx + 2 >= Insts.size())
      return false;
    const Instruction &Load = *Insts[Idx];
    const Instruction &Math = *Insts[Idx + 1];
    const Instruction &Stor = *Insts[Idx + 2];
    Op Fused;
    FusedOp FO;
    if (Load.getOpcode() != Opcode::Load || !loadWidthForFusion(Load, Fused))
      return false;
    if (!fusableIntOp(Math.getOpcode(), FO) ||
        Math.getOperand(0) != &Load ||
        Math.getType() != Load.ElemTy)
      return false;
    if (Stor.getOpcode() != Opcode::Store || Stor.getOperand(0) != &Math ||
        Stor.getOperand(1) != Load.getOperand(0))
      return false;
    Inst &In = emit(Fused);
    In.Sub = static_cast<std::uint8_t>(FO);
    In.A = operandIndex(Load.getOperand(0));
    In.B = operandIndex(Math.getOperand(1));
    In.C = destIndex(Load);
    In.D = destIndex(Math);
    ++Out.NumSuperinsts;
    return true;
  }

  /// Peeks for `c = icmp ...; br c, t, f` ending the block.
  bool tryFuseCmpBr(const BasicBlock &BB, std::size_t Idx) {
    const auto &Insts = BB.instructions();
    if (Idx + 1 >= Insts.size())
      return false;
    const Instruction &Cmp = *Insts[Idx];
    const Instruction &Br = *Insts[Idx + 1];
    if (Cmp.getOpcode() != Opcode::ICmp || !Br.isConditionalBr() ||
        Br.getOperand(0) != &Cmp)
      return false;
    Inst &In = emit(Op::CmpBr);
    In.Sub = static_cast<std::uint8_t>(Cmp.Pred);
    In.W = static_cast<std::uint16_t>(
        Cmp.getOperand(0)->getType()->getBitWidth());
    In.A = destIndex(Cmp);
    In.B = operandIndex(Cmp.getOperand(0));
    In.C = operandIndex(Cmp.getOperand(1));
    branchFixup(FieldImmLo, &BB, Br.getSuccessor(0));
    branchFixup(FieldImmHi, &BB, Br.getSuccessor(1));
    ++Out.NumSuperinsts;
    return true;
  }

  void emitBlock(const BasicBlock &BB) {
    BlockStart[&BB] = static_cast<std::uint32_t>(Out.Code.size());
    const auto &Insts = BB.instructions();
    std::size_t Idx = 0;
    while (Idx < Insts.size() && Insts[Idx]->getOpcode() == Opcode::Phi)
      ++Idx; // phis become edge trampolines, not in-block code
    for (; Idx < Insts.size(); ++Idx) {
      const Instruction &I = *Insts[Idx];
      if (tryFuseLoadOpStore(BB, Idx)) {
        Idx += 2;
        continue;
      }
      if (tryFuseCmpBr(BB, Idx)) {
        ++Idx;
        continue;
      }
      emitOne(BB, I);
    }
    if (!BB.getTerminator())
      throw std::runtime_error("bytecode: block without terminator");
  }

  void emitOne(const BasicBlock &BB, const Instruction &I) {
    unsigned Bits = I.getType()->getBitWidth();
    switch (I.getOpcode()) {
    case Opcode::Alloca: {
      auto It = AllocaOffset.find(&I);
      if (It != AllocaOffset.end()) {
        Inst &In = emit(Op::AllocaFixed);
        In.A = destIndex(I);
        In.B = AllocaSize.at(&I);
        In.Imm = It->second;
      } else {
        Inst &In = emit(Op::AllocaDyn);
        In.A = destIndex(I);
        In.B = operandIndex(I.getOperand(0));
        In.Imm = I.ElemTy->getSizeInBytes();
      }
      break;
    }
    case Opcode::Load: {
      Op Code;
      switch (I.ElemTy->getKind()) {
      case TypeKind::I1:
      case TypeKind::I8:
        Code = Op::Load1;
        break;
      case TypeKind::I32:
        Code = Op::Load4;
        break;
      case TypeKind::Double:
        Code = Op::LoadF64;
        break;
      default:
        Code = Op::Load8;
        break;
      }
      Inst &In = emit(Code);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      break;
    }
    case Opcode::Store: {
      Op Code;
      switch (I.getOperand(0)->getType()->getKind()) {
      case TypeKind::I1:
      case TypeKind::I8:
        Code = Op::Store1;
        break;
      case TypeKind::I32:
        Code = Op::Store4;
        break;
      case TypeKind::Double:
        Code = Op::StoreF64;
        break;
      default:
        Code = Op::Store8;
        break;
      }
      Inst &In = emit(Code);
      In.A = operandIndex(I.getOperand(0));
      In.B = operandIndex(I.getOperand(1));
      break;
    }
    case Opcode::GEP: {
      Inst &In = emit(Op::Gep);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      In.Imm = I.ElemTy->getSizeInBytes();
      break;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::AShr:
    case Opcode::LShr: {
      Inst &In = emit(intBinopOp(I.getOpcode()));
      In.W = static_cast<std::uint16_t>(Bits);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      break;
    }
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      Op Code = I.getOpcode() == Opcode::FAdd   ? Op::FAdd
                : I.getOpcode() == Opcode::FSub ? Op::FSub
                : I.getOpcode() == Opcode::FMul ? Op::FMul
                                                : Op::FDiv;
      Inst &In = emit(Code);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      break;
    }
    case Opcode::FNeg: {
      Inst &In = emit(Op::FNeg);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      break;
    }
    case Opcode::ICmp: {
      Inst &In = emit(Op::ICmp);
      In.Sub = static_cast<std::uint8_t>(I.Pred);
      In.W = static_cast<std::uint16_t>(
          I.getOperand(0)->getType()->getBitWidth());
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      break;
    }
    case Opcode::FCmp: {
      Inst &In = emit(Op::FCmp);
      In.Sub = static_cast<std::uint8_t>(I.Pred);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      break;
    }
    case Opcode::SExt:
    case Opcode::ZExt:
    case Opcode::SIToFP:
    case Opcode::UIToFP: {
      Op Code = I.getOpcode() == Opcode::SExt   ? Op::SExt
                : I.getOpcode() == Opcode::ZExt ? Op::ZExt
                : I.getOpcode() == Opcode::SIToFP ? Op::SIToFP
                                                  : Op::UIToFP;
      Inst &In = emit(Code);
      In.W = static_cast<std::uint16_t>(
          I.getOperand(0)->getType()->getBitWidth());
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      break;
    }
    case Opcode::Trunc:
    case Opcode::FPToSI:
    case Opcode::FPToUI: {
      Op Code = I.getOpcode() == Opcode::Trunc   ? Op::Trunc
                : I.getOpcode() == Opcode::FPToSI ? Op::FPToSI
                                                  : Op::FPToUI;
      Inst &In = emit(Code);
      In.W = static_cast<std::uint16_t>(Bits);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      break;
    }
    case Opcode::FPExt: {
      Inst &In = emit(Op::Mov);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      break;
    }
    case Opcode::Select: {
      Inst &In = emit(Op::Select);
      In.A = destIndex(I);
      In.B = operandIndex(I.getOperand(0));
      In.C = operandIndex(I.getOperand(1));
      In.D = operandIndex(I.getOperand(2));
      break;
    }
    case Opcode::Call: {
      const auto *Callee = ir_cast<Function>(I.getOperand(0));
      auto Start = static_cast<std::uint32_t>(Out.ArgPool.size());
      for (unsigned K = 1; K < I.getNumOperands(); ++K)
        Out.ArgPool.push_back(operandIndex(I.getOperand(K)));
      if (Callee->isDeclaration()) {
        Inst &In = emit(Op::CallRT);
        In.Sub =
            static_cast<std::uint8_t>(resolveRuntimeCallee(Callee->getName()));
        In.A = destIndex(I);
        In.B = externalNameIndex(Callee->getName());
        In.C = Start;
        In.D = I.getNumOperands() - 1;
      } else {
        Inst &In = emit(Op::CallBC);
        In.A = destIndex(I);
        In.B = Mod.Index.at(Callee);
        In.C = Start;
        In.D = I.getNumOperands() - 1;
      }
      break;
    }
    case Opcode::Br: {
      if (I.isConditionalBr()) {
        Inst &In = emit(Op::CondBr);
        In.A = operandIndex(I.getOperand(0));
        branchFixup(FieldB, &BB, I.getSuccessor(0));
        branchFixup(FieldC, &BB, I.getSuccessor(1));
      } else {
        emit(Op::Jmp);
        branchFixup(FieldA, &BB, I.getSuccessor(0));
      }
      break;
    }
    case Opcode::Ret: {
      Inst &In = emit(Op::Ret);
      if (I.getNumOperands() > 0) {
        In.Sub = 1;
        In.A = operandIndex(I.getOperand(0));
      }
      break;
    }
    case Opcode::Unreachable:
      emit(Op::Unreachable);
      break;
    case Opcode::Phi:
      throw std::runtime_error("bytecode: phi after non-phi instruction");
    }
  }

  // --- Phase 4: phi edge trampolines -------------------------------------

  /// Emits the parallel copy for one CFG edge as a sequential Mov run:
  /// ready moves (dst not read by any pending move) first; when only
  /// cycles remain, the first pending destination is parked in the
  /// scratch register and its readers retargeted.
  void emitParallelCopy(std::vector<std::pair<std::uint32_t, std::uint32_t>>
                            Moves /* (dst, src) */) {
    while (!Moves.empty()) {
      bool Progress = false;
      for (std::size_t K = 0; K < Moves.size(); ++K) {
        bool Read = false;
        for (const auto &Other : Moves)
          if (Other.second == Moves[K].first) {
            Read = true;
            break;
          }
        if (Read)
          continue;
        Inst &In = emit(Op::Mov);
        In.A = Moves[K].first;
        In.B = Moves[K].second;
        Moves.erase(Moves.begin() + static_cast<std::ptrdiff_t>(K));
        Progress = true;
        break;
      }
      if (Progress)
        continue;
      // Pure cycle(s): spill the first destination, retarget its readers.
      std::uint32_t Parked = Moves.front().first;
      Inst &In = emit(Op::Mov);
      In.A = Scratch;
      In.B = Parked;
      for (auto &Mv : Moves)
        if (Mv.second == Parked)
          Mv.second = Scratch;
    }
  }

  void emitPhiTrampolines() {
    for (const Fixup &Fx : Fixups) {
      auto Key = std::make_pair(Fx.From, Fx.To);
      if (EdgeTramp.count(Key))
        continue;
      const auto &Insts = Fx.To->instructions();
      std::vector<std::pair<std::uint32_t, std::uint32_t>> Moves;
      for (const auto &I : Insts) {
        if (I->getOpcode() != Opcode::Phi)
          break;
        const Value *In = nullptr;
        for (unsigned P = 0; P < I->getNumIncoming(); ++P)
          if (I->getIncomingBlock(P) == Fx.From) {
            In = I->getIncomingValue(P);
            break;
          }
        if (!In)
          throw std::runtime_error("phi has no incoming for predecessor");
        std::uint32_t Dst = destIndex(*I);
        std::uint32_t Src = operandIndex(In);
        if (Dst != Src)
          Moves.emplace_back(Dst, Src);
      }
      if (Moves.empty())
        continue; // edge falls through to the block start directly
      EdgeTramp[Key] = static_cast<std::uint32_t>(Out.Code.size());
      emitParallelCopy(std::move(Moves));
      Inst &In = emit(Op::Jmp);
      In.A = BlockStart.at(Fx.To);
    }
  }

  // --- Phase 6: slot metadata for the native tier ------------------------

  /// Invokes Fn(Slot, IsRead) for every frame-slot operand of In. Branch
  /// targets and immediates are not slots; call arguments come from the
  /// ArgPool run the instruction names.
  template <typename FnT> void forEachSlotUse(const Inst &In, FnT Fn) const {
    switch (In.Code) {
    case Op::Mov:
      Fn(In.A, false);
      Fn(In.B, true);
      break;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::SDiv:
    case Op::UDiv:
    case Op::SRem:
    case Op::URem:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::AShr:
    case Op::LShr:
    case Op::FAdd:
    case Op::FSub:
    case Op::FMul:
    case Op::FDiv:
    case Op::ICmp:
    case Op::FCmp:
    case Op::Gep:
      Fn(In.A, false);
      Fn(In.B, true);
      Fn(In.C, true);
      break;
    case Op::FNeg:
    case Op::SExt:
    case Op::ZExt:
    case Op::Trunc:
    case Op::SIToFP:
    case Op::UIToFP:
    case Op::FPToSI:
    case Op::FPToUI:
    case Op::Load1:
    case Op::Load4:
    case Op::Load8:
    case Op::LoadF64:
    case Op::AllocaDyn:
      Fn(In.A, false);
      Fn(In.B, true);
      break;
    case Op::Store1:
    case Op::Store4:
    case Op::Store8:
    case Op::StoreF64:
      Fn(In.A, true); // value
      Fn(In.B, true); // pointer
      break;
    case Op::AllocaFixed:
      Fn(In.A, false);
      break;
    case Op::Select:
      Fn(In.A, false);
      Fn(In.B, true);
      Fn(In.C, true);
      Fn(In.D, true);
      break;
    case Op::Jmp:
    case Op::Unreachable:
    case Op::NumOps:
      break;
    case Op::CondBr:
      Fn(In.A, true);
      break;
    case Op::Ret:
      if (In.Sub)
        Fn(In.A, true);
      break;
    case Op::CallBC:
    case Op::CallRT:
      Fn(In.A, false);
      for (std::uint32_t K = 0; K < In.D; ++K)
        Fn(Out.ArgPool[In.C + K], true);
      break;
    case Op::CmpBr:
      Fn(In.A, false);
      Fn(In.B, true);
      Fn(In.C, true);
      break;
    case Op::LoadOpStore4:
    case Op::LoadOpStore8:
      Fn(In.A, true);  // pointer
      Fn(In.B, true);  // rhs
      Fn(In.C, false); // load dst
      Fn(In.D, false); // op dst
      break;
    }
  }

  /// Fills BCFunction::Slots: live intervals, read counts and back-edge
  /// weighted use counts over the final instruction array. Intervals are
  /// widened over every backward-branch range they intersect, so covering
  /// an instruction index is a sound "may be live here" test — the native
  /// tier's spill filter at helper-call sites and the input to its
  /// register allocation ranking.
  void computeSlotMeta() {
    const auto N = static_cast<std::uint32_t>(Out.Code.size());
    Out.Slots.assign(Out.NumFrame, SlotMeta{});
    std::vector<bool> Touched(Out.NumFrame, false);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> BackRanges;
    std::vector<std::int32_t> DepthDelta(N + 1, 0);
    for (std::uint32_t I = 0; I < N; ++I) {
      const Inst &In = Out.Code[I];
      auto Range = [&](std::uint32_t T) {
        if (T <= I) {
          BackRanges.emplace_back(T, I);
          ++DepthDelta[T];
          --DepthDelta[I + 1];
        }
      };
      if (In.Code == Op::Jmp)
        Range(In.A);
      else if (In.Code == Op::CondBr) {
        Range(In.B);
        Range(In.C);
      } else if (In.Code == Op::CmpBr) {
        Range(static_cast<std::uint32_t>(In.Imm & 0xffffffff));
        Range(static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(In.Imm) >> 32));
      }
    }

    std::int64_t Depth = 0;
    for (std::uint32_t I = 0; I < N; ++I) {
      Depth += DepthDelta[I];
      const std::uint64_t W = Depth > 0 ? 16 : 1;
      forEachSlotUse(Out.Code[I], [&](std::uint32_t S, bool IsRead) {
        if (S >= Out.NumFrame)
          return;
        SlotMeta &M = Out.Slots[S];
        if (!Touched[S]) {
          Touched[S] = true;
          M.LiveBegin = I;
          M.LiveEnd = I;
        }
        if (IsRead)
          ++M.Reads;
        if (I > M.LiveEnd)
          M.LiveEnd = I;
        M.Weight += W;
      });
    }
    // Constants and arguments are initialized by frame setup: live-in.
    for (std::uint32_t S = 0; S < Out.NumConsts + Out.NumArgs; ++S)
      if (Touched[S])
        Out.Slots[S].LiveBegin = 0;
    // Widen every interval over the backward ranges it intersects, to a
    // fixpoint (loop-carried values are live across their whole loop).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &[T, B] : BackRanges)
        for (std::uint32_t S = 0; S < Out.NumFrame; ++S) {
          if (!Touched[S])
            continue;
          SlotMeta &M = Out.Slots[S];
          if (M.LiveBegin <= B && M.LiveEnd >= T &&
              (M.LiveBegin > T || M.LiveEnd < B)) {
            M.LiveBegin = std::min(M.LiveBegin, T);
            M.LiveEnd = std::max(M.LiveEnd, B);
            Changed = true;
          }
        }
    }
  }

  // --- Phase 5: fixups ---------------------------------------------------

  void patchFixups() {
    for (const Fixup &Fx : Fixups) {
      auto It = EdgeTramp.find({Fx.From, Fx.To});
      std::uint32_t Target =
          It != EdgeTramp.end() ? It->second : BlockStart.at(Fx.To);
      Inst &In = Out.Code[Fx.Idx];
      switch (Fx.Where) {
      case FieldA:
        In.A = Target;
        break;
      case FieldB:
        In.B = Target;
        break;
      case FieldC:
        In.C = Target;
        break;
      case FieldImmLo:
        In.Imm = (In.Imm & ~std::int64_t(0xFFFFFFFF)) | Target;
        break;
      case FieldImmHi:
        In.Imm = (In.Imm & 0xFFFFFFFF) |
                 (static_cast<std::int64_t>(Target) << 32);
        break;
      }
    }
  }
};

} // namespace

std::shared_ptr<const BytecodeModule> compileToBytecode(const ir::Module &M) {
  auto Mod = std::make_shared<BytecodeModule>();
  Mod->Source = &M;
  std::uint32_t NextIdx = 0;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Mod->Index[F.get()] = NextIdx++;
  Mod->Functions.resize(NextIdx);
  std::unordered_map<std::string, std::uint32_t> ExtIndex;
  for (const auto &[F, Idx] : Mod->Index)
    Mod->Functions[Idx] = FunctionCompiler(*F, *Mod, ExtIndex).compile();
  return Mod;
}

} // namespace mcc::interp::bc
