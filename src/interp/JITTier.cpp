//===--- JITTier.cpp - Native execution tier and OSR glue ------------------===//
//
// Everything that connects the template JIT (src/jit) to the execution
// engine: the host helpers generated code calls through the indirection
// table, lazy compile-and-publish, whole-frame native execution, and
// on-stack replacement of hot bytecode frames.
//
// Exception protocol: C++ unwinding cannot cross the frameless generated
// code, so every helper is a catch-all that parks the exception in the
// invocation context and raises the trap flag; generated code checks the
// flag after each helper call and returns with a nonzero status, and
// enterNative() rethrows on the host side. Division traps therefore
// surface with byte-identical what() strings across all engines.
//
//===----------------------------------------------------------------------===//
#include "interp/JITTier.h"

#include "interp/FrameStack.h"
#include "interp/InterpOps.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace mcc::interp {

namespace {

std::uint32_t envU32(const char *Name, std::uint32_t Def) {
  if (const char *V = std::getenv(Name)) {
    char *End = nullptr;
    unsigned long N = std::strtoul(V, &End, 10);
    if (End && *End == '\0' && N > 0 && N <= 0xffffffffUL)
      return static_cast<std::uint32_t>(N);
  }
  return Def;
}

/// True when \p V is a complete positive decimal that fits u32 — exactly
/// the inputs envU32 accepts. Anything else is a typo worth diagnosing.
bool validEnvU32(const char *V) {
  char *End = nullptr;
  unsigned long N = std::strtoul(V, &End, 10);
  return End && End != V && *End == '\0' && N > 0 && N <= 0xffffffffUL;
}

} // namespace

std::string jitEnvError() {
  for (const char *Name : {"MCC_JIT_CALL_THRESHOLD", "MCC_JIT_OSR_THRESHOLD"})
    if (const char *V = std::getenv(Name))
      if (!validEnvU32(V))
        return std::string(Name) + "='" + V +
               "' is not a positive 32-bit integer";
  if (const char *V = std::getenv("MCC_JIT_FORCE_FALLBACK_OP")) {
    bc::Op O;
    if (!jit::parseOpName(V, O))
      return std::string("MCC_JIT_FORCE_FALLBACK_OP='") + V +
             "' names no bytecode op (see opName in jit/JIT.h)";
  }
  if (const char *V = std::getenv("MCC_JIT_DIRECT_CALLS"))
    if (std::strcmp(V, "0") != 0 && std::strcmp(V, "1") != 0)
      return std::string("MCC_JIT_DIRECT_CALLS='") + V +
             "' (expected 0 or 1)";
  return {};
}

//===----------------------------------------------------------------------===//
// Host helpers (called from generated code via JITHostOps)
//===----------------------------------------------------------------------===//

struct JITHelpers {
  static ExecutionEngine &engine(jit::JITInvocation *Inv) {
    return *static_cast<ExecutionEngine *>(Inv->Host);
  }
  static void park(jit::JITInvocation *Inv) {
    Inv->Pending = std::current_exception();
    Inv->Trap = 1;
  }

  static void callBC(jit::JITInvocation *Inv, const bc::Inst *In) noexcept {
    try {
      const std::uint32_t *AP = Inv->BF->ArgPool.data() + In->C;
      RTValue *Frame = Inv->Frame;
      RTValue R;
      if (In->D <= 12) {
        RTValue Buf[12];
        for (std::uint32_t K = 0; K < In->D; ++K)
          Buf[K] = Frame[AP[K]];
        R = engine(Inv).executeTiered(
            In->B, std::span<const RTValue>(Buf, In->D));
      } else {
        std::vector<RTValue> Big(In->D);
        for (std::uint32_t K = 0; K < In->D; ++K)
          Big[K] = Frame[AP[K]];
        R = engine(Inv).executeTiered(In->B, Big);
      }
      Frame[In->A] = R;
    } catch (...) {
      park(Inv);
    }
  }

  static void callRT(jit::JITInvocation *Inv, const bc::Inst *In) noexcept {
    try {
      const std::uint32_t *AP = Inv->BF->ArgPool.data() + In->C;
      RTValue *Frame = Inv->Frame;
      const std::string &Name = Inv->Mod->ExternalNames[In->B];
      auto Callee = static_cast<bc::RTCallee>(In->Sub);
      RTValue R;
      if (In->D <= 12) {
        RTValue Buf[12];
        for (std::uint32_t K = 0; K < In->D; ++K)
          Buf[K] = Frame[AP[K]];
        R = engine(Inv).callRuntimeResolved(
            Callee, Name, std::span<const RTValue>(Buf, In->D));
      } else {
        std::vector<RTValue> Big(In->D);
        for (std::uint32_t K = 0; K < In->D; ++K)
          Big[K] = Frame[AP[K]];
        R = engine(Inv).callRuntimeResolved(Callee, Name, Big);
      }
      Frame[In->A] = R;
    } catch (...) {
      park(Inv);
    }
  }

  static void allocaDyn(jit::JITInvocation *Inv,
                        const bc::Inst *In) noexcept {
    try {
      auto Size = static_cast<std::size_t>(Inv->Frame[In->B].I) *
                  static_cast<std::size_t>(In->Imm);
      if (Size < 1)
        Size = 1;
      void *P = ::operator new(Size);
      std::memset(P, 0, Size);
      Inv->DynAllocas->push_back(P);
      Inv->Frame[In->A] = RTValue::ofPtr(P);
    } catch (...) {
      park(Inv);
    }
  }

  static void intDiv(jit::JITInvocation *Inv, const bc::Inst *In) noexcept {
    try {
      ir::Opcode Op = ir::Opcode::SDiv;
      switch (In->Code) {
      case bc::Op::SDiv:
        Op = ir::Opcode::SDiv;
        break;
      case bc::Op::UDiv:
        Op = ir::Opcode::UDiv;
        break;
      case bc::Op::SRem:
        Op = ir::Opcode::SRem;
        break;
      default:
        Op = ir::Opcode::URem;
        break;
      }
      Inv->Frame[In->A].I = ops::evalIntBinop(
          Op, Inv->Frame[In->B].I, Inv->Frame[In->C].I, In->W);
    } catch (...) {
      park(Inv);
    }
  }

  static void uiToFP(jit::JITInvocation *Inv, const bc::Inst *In) noexcept {
    Inv->Frame[In->A].D =
        static_cast<double>(ops::zeroExtend(Inv->Frame[In->B].I, In->W));
  }

  static void fpToUI(jit::JITInvocation *Inv, const bc::Inst *In) noexcept {
    Inv->Frame[In->A].I = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(Inv->Frame[In->B].D));
  }

  static void unreachable(jit::JITInvocation *Inv,
                          const bc::Inst *) noexcept {
    try {
      throw std::runtime_error("executed 'unreachable'");
    } catch (...) {
      park(Inv);
    }
  }
};

//===----------------------------------------------------------------------===//
// Engine-side tier machinery
//===----------------------------------------------------------------------===//

void ExecutionEngine::initJITTier() {
  JIT = std::make_unique<JITState>(BCMod->Functions.size());
  JIT->CallThreshold = envU32("MCC_JIT_CALL_THRESHOLD", 16);
  OSRThreshold = envU32("MCC_JIT_OSR_THRESHOLD", 1024);
  if (const char *V = std::getenv("MCC_JIT_FORCE_FALLBACK_OP")) {
    bc::Op O;
    if (jit::parseOpName(V, O))
      JIT->Opts.ForceUnsupported = O;
  }
  jit::JITHostOps &Ops = JIT->HostOps;
  Ops.Fns[jit::HelperCallBC] = &JITHelpers::callBC;
  Ops.Fns[jit::HelperCallRT] = &JITHelpers::callRT;
  Ops.Fns[jit::HelperAllocaDyn] = &JITHelpers::allocaDyn;
  Ops.Fns[jit::HelperIntDiv] = &JITHelpers::intDiv;
  Ops.Fns[jit::HelperUIToFP] = &JITHelpers::uiToFP;
  Ops.Fns[jit::HelperFPToUI] = &JITHelpers::fpToUI;
  Ops.Fns[jit::HelperUnreachable] = &JITHelpers::unreachable;
  // Module context for direct native→native calls. PatchedPools is fully
  // built before initJITTier() runs (engine ctor ordering), so the pool
  // base pointers baked into direct-call sites are stable.
  // MCC_JIT_DIRECT_CALLS=0 withholds the context, so every CallBC goes
  // through the host helper — the baseline the direct-call speedup is
  // measured against, and a useful bisection point when a call-related
  // miscompile is suspected.
  const char *DC = std::getenv("MCC_JIT_DIRECT_CALLS");
  if (!DC || std::strcmp(DC, "0") != 0) {
    JIT->Pools.resize(BCMod->Functions.size());
    for (std::size_t I = 0; I < BCMod->Functions.size(); ++I)
      JIT->Pools[I] = PatchedPools.data() + PoolOffsets[I];
    JIT->Opts.Mod = BCMod.get();
    JIT->Opts.EntryCells = JIT->EntryCells.data();
    JIT->Opts.Pools = JIT->Pools.data();
  }
  OSRActive = Kind == ExecEngineKind::Tiered && jit::isSupported();
  if (Kind == ExecEngineKind::Native)
    for (std::uint32_t I = 0; I < BCMod->Functions.size(); ++I)
      jitUnitFor(I); // eager: native mode compiles everything up front
}

const jit::CompiledFunction *
ExecutionEngine::jitUnitFor(std::uint32_t FnIdx) {
  const jit::CompiledFunction *P =
      JIT->Table[FnIdx].load(std::memory_order_acquire);
  if (P)
    return P;
  std::lock_guard<std::mutex> Lock(JIT->CompileMutex);
  P = JIT->Table[FnIdx].load(std::memory_order_relaxed);
  if (P)
    return P;
  auto CF = jit::compileFunction(BCMod->Functions[FnIdx], JIT->Opts);
  if (CF->Supported) {
    JITCompiled.fetch_add(1, std::memory_order_relaxed);
    JITCodeBytes.fetch_add(CF->Code.size(), std::memory_order_relaxed);
    JITRegAllocSlots.fetch_add(CF->Regs.size(), std::memory_order_relaxed);
    JITSpillSites.fetch_add(CF->SpillSites, std::memory_order_relaxed);
    JITFusedTemplates.fetch_add(CF->FusedTemplates,
                                std::memory_order_relaxed);
    JITDirectCallSites.fetch_add(CF->DirectCallSites,
                                 std::memory_order_relaxed);
  } else {
    JITFallbackFns.fetch_add(1, std::memory_order_relaxed);
  }
  P = CF.get();
  JIT->Owned.push_back(std::move(CF));
  JIT->Table[FnIdx].store(P, std::memory_order_release);
  // Publish the direct-call entry: this release store retro-patches every
  // caller whose CallBC fast path polls this cell (the store is the last
  // step, after the unit itself is reachable through Table).
  if (P->Supported && jit::isDirectCallable(BCMod->Functions[FnIdx]))
    JIT->EntryCells[FnIdx].store(
        reinterpret_cast<const void *>(P->entry()),
        std::memory_order_release);
  return P;
}

RTValue ExecutionEngine::executeTiered(std::uint32_t FnIdx,
                                       std::span<const RTValue> Args) {
  if (!JIT)
    return executeBytecode(FnIdx, Args);
  const jit::CompiledFunction *CF =
      JIT->Table[FnIdx].load(std::memory_order_acquire);
  if (!CF && Kind == ExecEngineKind::Tiered &&
      JIT->CallCounts[FnIdx].fetch_add(1, std::memory_order_relaxed) + 1 >=
          JIT->CallThreshold)
    CF = jitUnitFor(FnIdx);
  if (CF && CF->Supported)
    return runNative(FnIdx, *CF, Args);
  return executeBytecode(FnIdx, Args);
}

RTValue ExecutionEngine::runNative(std::uint32_t FnIdx,
                                   const jit::CompiledFunction &CF,
                                   std::span<const RTValue> Args) {
  const bc::BCFunction &BF = BCMod->Functions[FnIdx];
  const RTValue *Pool = PatchedPools.data() + PoolOffsets[FnIdx];

  FrameStack &FS = threadFrameStack();
  std::vector<void *> DynAllocas;
  struct Cleanup {
    ExecutionEngine &EE;
    FrameStack &FS;
    FrameStack::Mark M;
    std::vector<void *> &Dyn;
    ~Cleanup() {
      for (void *P : Dyn)
        ::operator delete(P);
      FS.release(M);
      EE.FramesExecuted.fetch_add(1, std::memory_order_relaxed);
      EE.JITNativeFrames.fetch_add(1, std::memory_order_relaxed);
    }
  } Guard{*this, FS, FS.mark(), DynAllocas};

  // Byte-for-byte the bytecode engine's frame setup — the shared layout
  // is the OSR contract.
  char *Mem = static_cast<char *>(
      FS.allocate(BF.NumFrame * sizeof(RTValue) + BF.ArenaBytes));
  auto *Frame = reinterpret_cast<RTValue *>(Mem);
  char *Arena = Mem + BF.NumFrame * sizeof(RTValue);
  std::memcpy(Frame, Pool, BF.NumConsts * sizeof(RTValue));
  std::memset(static_cast<void *>(Frame + BF.NumConsts), 0,
              (BF.NumFrame - BF.NumConsts) * sizeof(RTValue));
  for (std::uint32_t K = 0; K < BF.NumArgs; ++K)
    Frame[BF.NumConsts + K] = Args[K];

  return enterNative(CF, BF, Frame, Arena, &DynAllocas, 0);
}

RTValue ExecutionEngine::enterNative(const jit::CompiledFunction &CF,
                                     const bc::BCFunction &BF,
                                     RTValue *Frame, char *Arena,
                                     std::vector<void *> *Dyn,
                                     std::uint32_t ResumeIdx) {
  jit::JITInvocation Inv;
  Inv.Ops = &JIT->HostOps;
  Inv.Host = this;
  Inv.BF = &BF;
  Inv.Mod = BCMod.get();
  Inv.Frame = Frame;
  Inv.DynAllocas = Dyn;
  int Status = CF.entry()(&Inv, Frame, Arena, CF.resumeAt(ResumeIdx));
  if (Status) {
    if (Inv.Pending)
      std::rethrow_exception(Inv.Pending);
    throw std::runtime_error("jit: trap without pending exception");
  }
  return Inv.Ret;
}

bool ExecutionEngine::tryOSR(std::uint32_t FnIdx, RTValue *Frame,
                             char *Arena, std::uint32_t TargetIdx,
                             std::vector<void *> &Dyn, RTValue &Out) {
  const jit::CompiledFunction *CF = jitUnitFor(FnIdx);
  if (!CF->Supported)
    return false;
  JITOSRPromotions.fetch_add(1, std::memory_order_relaxed);
  // The running frame (and its arena and dynamic-alloca ledger) carries
  // over untouched; native code resumes at the branch-target boundary.
  Out = enterNative(*CF, BCMod->Functions[FnIdx], Frame, Arena, &Dyn,
                    TargetIdx);
  return true;
}

} // namespace mcc::interp
