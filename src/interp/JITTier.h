//===--- JITTier.h - Engine-side native-tier state --------------*- C++ -*-===//
//
// Private to the interp library (Interpreter.cpp needs the complete type
// for the engine destructor; JITTier.cpp implements everything). The
// public surface stays in Interpreter.h as forward declarations so that
// including the engine does not pull in the jit subsystem.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_JITTIER_H
#define MCC_INTERP_JITTIER_H

#include "interp/Interpreter.h"
#include "jit/JIT.h"

#include <atomic>
#include <mutex>

namespace mcc::interp {

/// Per-engine native-tier state. The publication protocol matches the
/// bytecode table's spirit: executors load-acquire a unit pointer and
/// never block; compilation happens at most once per function under the
/// compile mutex and is published with a release store.
struct ExecutionEngine::JITState {
  explicit JITState(std::size_t NumFunctions)
      : Table(NumFunctions), CallCounts(NumFunctions),
        EntryCells(NumFunctions) {}

  jit::CompileOptions Opts;   ///< forced-fallback knob etc.
  jit::JITHostOps HostOps;    ///< helper table generated code calls into
  std::uint32_t CallThreshold = 0; ///< tiered: invocations before compile

  std::mutex CompileMutex;
  /// Null = not compiled yet; a unit with Supported == false is the
  /// published "stay on bytecode" decision.
  std::vector<std::atomic<const jit::CompiledFunction *>> Table;
  std::vector<std::unique_ptr<jit::CompiledFunction>> Owned; ///< under mutex
  std::vector<std::atomic<std::uint32_t>> CallCounts; ///< tiered hotness

  /// Direct native→native call patching (see CompileOptions in JIT.h):
  /// one cell per function, null until the function compiles Supported
  /// *and* is direct-callable. jitUnitFor's release store into a cell is
  /// the retro-patch — every already-compiled caller's fast path starts
  /// taking the direct route on its next execution of that site.
  std::vector<std::atomic<const void *>> EntryCells;
  /// Per-function engine-patched constant-pool base pointers, stable for
  /// the engine's lifetime, baked into direct-call frame setup.
  std::vector<const RTValue *> Pools;
};

} // namespace mcc::interp

#endif // MCC_INTERP_JITTIER_H
