//===--- Bytecode.h - Register-allocated bytecode format --------*- C++ -*-===//
//
// The flat execution format the BytecodeCompiler lowers each ir::Function
// into, once, at engine construction: every operand is a dense frame index
// resolved at translation time (no per-step map lookups), phi nodes are
// pre-resolved into per-CFG-edge parallel-copy move sequences, branch
// targets are instruction offsets, and fixed-size allocas are coalesced
// into one per-frame arena layout.
//
// Frame layout (16-byte RTValue slots):
//
//   [0, NumConsts)             constant pool, memcpy'd in at frame entry
//                              (globals patched per engine, see GlobalRelocs)
//   [NumConsts, +NumArgs)      incoming arguments
//   [.., NumFrame-1)           SSA registers (ir::numberFunctionValues order)
//   [NumFrame-1]               scratch: phi-cycle breaking, void call results
//
// Constants living in the frame is what makes operand addressing uniform:
// an instruction's A/B/C/D fields index one array regardless of whether
// the ir operand was a constant, argument or instruction.
//
// The module produced by compileToBytecode is immutable and position
// independent (global addresses are pool *relocations*, not baked
// pointers), so one translation is shared by every ExecutionEngine and
// read concurrently by hot-team threads with no locking.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_BYTECODE_H
#define MCC_INTERP_BYTECODE_H

#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mcc::interp {
struct RTValue;
}

namespace mcc::interp::bc {

enum class Op : std::uint8_t {
  Mov, // A = dst, B = src
  // Integer binops: A = dst, B = lhs, C = rhs, W = result bits. Same
  // order as ir::Opcode's integer block (FusedOp below relies on it).
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  LShr,
  // Floating point: A = dst, B = lhs, C = rhs (FNeg: B only).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  // Comparisons: A = dst, B = lhs, C = rhs; Sub = CmpPred; ICmp W =
  // operand bits.
  ICmp,
  FCmp,
  // Casts: A = dst, B = src; W = source bits (extensions, *IToFP) or
  // destination bits (Trunc, FPToSI). FPExt lowers to Mov.
  SExt,
  ZExt,
  Trunc,
  SIToFP,
  UIToFP,
  FPToSI,
  FPToUI,
  // Memory: A = dst/value, B = pointer.
  Load1,
  Load4,
  Load8,
  LoadF64,
  Store1,
  Store4,
  Store8,
  StoreF64,
  Gep,         // A = dst, B = base, C = index, Imm = element size
  AllocaFixed, // A = dst, Imm = arena offset, B = bytes to zero
  AllocaDyn,   // A = dst, B = count reg, Imm = element size
  Select,      // A = dst, B = cond, C = true value, D = false value
  // Control flow: targets are instruction offsets.
  Jmp,    // A = target
  CondBr, // A = cond, B = true target, C = false target
  Ret,    // Sub = 1 -> A = value
  Unreachable,
  // Calls: arguments are ArgPool[C .. C+D), each an operand frame index.
  CallBC, // A = dst, B = callee index in BytecodeModule::Functions
  CallRT, // A = dst, Sub = RTCallee, B = ExternalNames index
  // Superinstructions (the hot loop-body patterns).
  CmpBr,        // icmp + cond-br: A = dst, B/C = operands, Sub = pred,
                // W = operand bits, Imm = true-target | false-target << 32
  LoadOpStore4, // load p; r = load OP rhs; store r, p (32-bit element):
  LoadOpStore8, // A = pointer, B = rhs, C = load dst, D = op dst,
                // Sub = FusedOp
  NumOps,
};

/// The int-binop subset eligible for load-op-store fusion (no traps).
enum class FusedOp : std::uint8_t { Add, Sub, Mul, And, Or, Xor };

/// Pre-resolved runtime callees: the walker's per-call string comparison
/// chain, done once at translation time.
enum class RTCallee : std::uint8_t {
  ForkCall,
  GlobalThreadNum,
  NumThreads,
  ForStaticInit,
  ForStaticFini,
  DispatchInit,
  DispatchNext,
  DispatchFini,
  Barrier,
  Critical,
  EndCritical,
  External, ///< dispatched through ExecutionEngine::Externals by name
};

/// Maps a declared callee name to its pre-resolved runtime entry.
RTCallee resolveRuntimeCallee(std::string_view Name);

/// One fixed-width (32-byte) instruction. Operand fields are frame
/// indices unless the opcode comment above says otherwise.
struct Inst {
  Op Code = Op::Unreachable;
  std::uint8_t Sub = 0;
  std::uint16_t W = 0;
  std::uint32_t A = 0;
  std::uint32_t B = 0;
  std::uint32_t C = 0;
  std::uint32_t D = 0;
  std::int64_t Imm = 0;
};

/// Per-frame-slot facts computed once at translation time, consumed by
/// the native tier's register allocator (JITCompiler). The interval is
/// conservative: it starts at 0 when the slot is live-in (constants,
/// arguments, any read-before-write) and is widened to enclose every
/// backward-branch range it intersects, so "live at instruction I" is a
/// sound spill filter at any helper-call site or OSR entry boundary.
struct SlotMeta {
  std::uint32_t LiveBegin = 0; ///< first instruction index live (0 = live-in)
  std::uint32_t LiveEnd = 0;   ///< last instruction index touching the slot
  std::uint32_t Reads = 0;     ///< static count of read accesses
  std::uint64_t Weight = 0;    ///< use count, x16 inside back-edge ranges
};

struct BCFunction {
  const ir::Function *IRFn = nullptr;
  std::vector<Inst> Code;
  /// Frame prefix template. Slots named in GlobalRelocs hold a
  /// placeholder; the engine patches a private copy with its global
  /// addresses (see ExecutionEngine's patched pools).
  std::vector<std::int64_t> ConstPoolInts;
  std::vector<double> ConstPoolFPs; ///< parallel to ConstPoolInts
  std::vector<std::pair<std::uint32_t, const ir::GlobalVariable *>>
      GlobalRelocs;
  std::vector<std::uint32_t> ArgPool; ///< call argument index runs
  std::uint32_t NumConsts = 0;
  std::uint32_t NumArgs = 0;
  std::uint32_t NumFrame = 0; ///< total slots incl. trailing scratch
  std::uint32_t ArenaBytes = 0;
  std::uint32_t NumSuperinsts = 0; ///< fused instructions emitted
  /// One entry per frame slot (size NumFrame); see SlotMeta.
  std::vector<SlotMeta> Slots;

  [[nodiscard]] std::size_t byteSize() const {
    return Code.size() * sizeof(Inst) +
           ConstPoolInts.size() * (sizeof(std::int64_t) + sizeof(double)) +
           ArgPool.size() * sizeof(std::uint32_t);
  }
};

struct BytecodeModule {
  const ir::Module *Source = nullptr;
  std::vector<BCFunction> Functions; ///< defined functions only
  std::map<const ir::Function *, std::uint32_t> Index;
  std::vector<std::string> ExternalNames;

  [[nodiscard]] std::size_t byteSize() const {
    std::size_t N = 0;
    for (const BCFunction &F : Functions)
      N += F.byteSize();
    return N;
  }
  [[nodiscard]] std::uint32_t superinstsEmitted() const {
    std::uint32_t N = 0;
    for (const BCFunction &F : Functions)
      N += F.NumSuperinsts;
    return N;
  }
};

/// Translates every defined function of \p M. The result is immutable,
/// engine-independent and safe to share across engines and threads (L3
/// compile-service artifacts cache it alongside the module).
std::shared_ptr<const BytecodeModule> compileToBytecode(const ir::Module &M);

/// "threaded" when compiled with computed-goto dispatch
/// (MCC_THREADED_DISPATCH), "switch" for the portable fallback.
const char *dispatchModeName();

} // namespace mcc::interp::bc

#endif // MCC_INTERP_BYTECODE_H
