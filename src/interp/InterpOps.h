//===--- InterpOps.h - Shared scalar semantics for both engines -*- C++ -*-===//
//
// The single definition of the mini-IR's scalar arithmetic, used by the
// tree-walking reference engine and the bytecode engine alike. Keeping the
// width-extension, shift-masking and division-trap rules in one place is
// what makes "byte-identical verdicts under both engines" a structural
// property rather than a test-enforced hope.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_INTERPOPS_H
#define MCC_INTERP_INTERPOPS_H

#include "ir/IR.h"

#include <cstdint>
#include <stdexcept>

namespace mcc::interp::ops {

inline std::int64_t signExtend(std::int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  std::uint64_t Mask = (1ULL << Bits) - 1;
  std::uint64_t U = static_cast<std::uint64_t>(V) & Mask;
  if (U & (1ULL << (Bits - 1)))
    U |= ~Mask;
  return static_cast<std::int64_t>(U);
}

inline std::uint64_t zeroExtend(std::int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<std::uint64_t>(V);
  return static_cast<std::uint64_t>(V) & ((1ULL << Bits) - 1);
}

/// Integer binary operation at the given result width. Division and
/// remainder trap on zero (std::runtime_error) and pin the INT64_MIN / -1
/// overflow case; every result is sign-extended back to \p Bits.
inline std::int64_t evalIntBinop(ir::Opcode Op, std::int64_t A,
                                 std::int64_t B, unsigned Bits) {
  using ir::Opcode;
  std::int64_t R = 0;
  switch (Op) {
  case Opcode::Add:
    R = A + B;
    break;
  case Opcode::Sub:
    R = A - B;
    break;
  case Opcode::Mul:
    R = A * B;
    break;
  case Opcode::SDiv:
    if (B == 0)
      throw std::runtime_error("integer division by zero");
    R = (A == INT64_MIN && B == -1) ? A : A / B;
    break;
  case Opcode::UDiv:
    if (B == 0)
      throw std::runtime_error("integer division by zero");
    R = static_cast<std::int64_t>(zeroExtend(A, Bits) / zeroExtend(B, Bits));
    break;
  case Opcode::SRem:
    if (B == 0)
      throw std::runtime_error("integer remainder by zero");
    R = (A == INT64_MIN && B == -1) ? 0 : A % B;
    break;
  case Opcode::URem:
    if (B == 0)
      throw std::runtime_error("integer remainder by zero");
    R = static_cast<std::int64_t>(zeroExtend(A, Bits) % zeroExtend(B, Bits));
    break;
  case Opcode::And:
    R = A & B;
    break;
  case Opcode::Or:
    R = A | B;
    break;
  case Opcode::Xor:
    R = A ^ B;
    break;
  case Opcode::Shl:
    R = A << (B & (Bits - 1));
    break;
  case Opcode::AShr:
    R = signExtend(A, Bits) >> (B & (Bits - 1));
    break;
  case Opcode::LShr:
    R = static_cast<std::int64_t>(zeroExtend(A, Bits) >> (B & (Bits - 1)));
    break;
  default:
    throw std::runtime_error("evalIntBinop: not an integer binop");
  }
  return signExtend(R, Bits);
}

/// Integer comparison at the operands' width.
inline bool evalICmp(ir::CmpPred P, std::int64_t A, std::int64_t B,
                     unsigned Bits) {
  using ir::CmpPred;
  std::int64_t SA = signExtend(A, Bits), SB = signExtend(B, Bits);
  std::uint64_t UA = zeroExtend(A, Bits), UB = zeroExtend(B, Bits);
  switch (P) {
  case CmpPred::EQ:
    return UA == UB;
  case CmpPred::NE:
    return UA != UB;
  case CmpPred::SLT:
    return SA < SB;
  case CmpPred::SLE:
    return SA <= SB;
  case CmpPred::SGT:
    return SA > SB;
  case CmpPred::SGE:
    return SA >= SB;
  case CmpPred::ULT:
    return UA < UB;
  case CmpPred::ULE:
    return UA <= UB;
  case CmpPred::UGT:
    return UA > UB;
  case CmpPred::UGE:
    return UA >= UB;
  default:
    return false;
  }
}

/// Ordered floating-point comparison.
inline bool evalFCmp(ir::CmpPred P, double A, double B) {
  using ir::CmpPred;
  switch (P) {
  case CmpPred::OEQ:
    return A == B;
  case CmpPred::ONE:
    return A != B;
  case CmpPred::OLT:
    return A < B;
  case CmpPred::OLE:
    return A <= B;
  case CmpPred::OGT:
    return A > B;
  case CmpPred::OGE:
    return A >= B;
  default:
    return false;
  }
}

} // namespace mcc::interp::ops

#endif // MCC_INTERP_INTERPOPS_H
