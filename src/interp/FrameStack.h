//===--- FrameStack.h - Per-thread LIFO frame allocator ---------*- C++ -*-===//
//
// One bump-allocated stack per interpreter thread, backing both the
// walker's alloca arena and the bytecode engine's register frames. Calls
// nest strictly LIFO (the interpreters recurse on ir Call), so a frame is
// a mark taken on entry and released on exit; allocation is a pointer bump
// and never touches the global heap after warm-up.
//
// Blocks are chained rather than reallocated: a nested call that grows the
// stack appends a new block, leaving every live parent frame's memory
// untouched (parents hold raw pointers into their block across the child
// call). Each thread owns its stack exclusively, so no synchronization is
// needed — team workers parked in the hot pool keep their stacks warm
// across parallel regions.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_FRAMESTACK_H
#define MCC_INTERP_FRAMESTACK_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mcc::interp {

class FrameStack {
public:
  struct Mark {
    std::size_t Block = 0;
    std::size_t Used = 0;
  };

  [[nodiscard]] Mark mark() const { return {Cur, Blocks.empty() ? 0 : Blocks[Cur].Used}; }

  /// Bump-allocates \p Bytes (16-aligned). The returned memory stays valid
  /// until the enclosing mark is released, across nested allocations.
  void *allocate(std::size_t Bytes) {
    Bytes = (Bytes + 15) & ~std::size_t(15);
    if (Blocks.empty())
      Blocks.push_back(makeBlock(Bytes));
    if (Blocks[Cur].Used + Bytes > Blocks[Cur].Size) {
      // Advance to (or create) a block that fits. Skipped blocks keep
      // their Used watermark; release() rewinds them wholesale.
      ++Cur;
      if (Cur == Blocks.size())
        Blocks.push_back(makeBlock(Bytes));
      else if (Blocks[Cur].Size < Bytes) {
        Blocks[Cur] = makeBlock(Bytes);
      }
      Blocks[Cur].Used = 0;
    }
    void *P = Blocks[Cur].Mem.get() + Blocks[Cur].Used;
    Blocks[Cur].Used += Bytes;
    return P;
  }

  /// Rewinds to \p M, freeing every frame allocated since (logically; the
  /// block memory itself is retained for reuse).
  void release(Mark M) {
    if (Blocks.empty())
      return;
    Cur = M.Block;
    Blocks[Cur].Used = M.Used;
  }

private:
  struct Block {
    std::unique_ptr<char[]> Mem;
    std::size_t Size = 0;
    std::size_t Used = 0;
  };

  static Block makeBlock(std::size_t AtLeast) {
    constexpr std::size_t MinBlock = 64 * 1024;
    Block B;
    B.Size = AtLeast > MinBlock ? AtLeast : MinBlock;
    B.Mem = std::make_unique<char[]>(B.Size);
    return B;
  }

  std::vector<Block> Blocks;
  std::size_t Cur = 0;
};

/// The calling thread's frame stack (each interpreter thread has its own).
inline FrameStack &threadFrameStack() {
  static thread_local FrameStack Stack;
  return Stack;
}

} // namespace mcc::interp

#endif // MCC_INTERP_FRAMESTACK_H
